(* Shared runners and a memo cache for the benchmark harness: every figure
   reuses pipeline runs, so each (network, k_r, k_h, variant) combination
   is executed once. The caches are mutex-protected so [prefetch] can fill
   them from the worker pool. *)

module Ast = Configlang.Ast
module Smap = Routing.Device.Smap

type variant = Confmask_v | Strawman1_v | Strawman2_v

let variant_name = function
  | Confmask_v -> "ConfMask"
  | Strawman1_v -> "Strawman1"
  | Strawman2_v -> "Strawman2"

type run = {
  entry : Netgen.Nets.entry;
  k_r : int;
  k_h : int;
  orig_configs : Ast.config list;
  anon_configs : Ast.config list;
  orig_snapshot : Routing.Simulate.snapshot;
  anon_snapshot : Routing.Simulate.snapshot;
  fake_edges : (string * string) list;
  seconds : float;
  stats : (string * int) list;  (* telemetry counter deltas of this run *)
}

let seed = 42

(* Telemetry counters are process-global, so a run's contribution is the
   delta across it. Exact when the run is the only work in flight;
   approximate under parallel [prefetch], where concurrent pipelines tick
   the same counters. *)
let counter_delta before after =
  List.filter_map
    (fun (name, v) ->
      let v0 = Option.value ~default:0 (List.assoc_opt name before) in
      if v > v0 then Some (name, v - v0) else None)
    after

let stat stats name = Option.value ~default:0 (List.assoc_opt name stats)

let hit_rate stats ~reuse ~miss =
  let r = stat stats reuse and m = stat stats miss in
  if r + m = 0 then 0.0 else float_of_int r /. float_of_int (r + m)

(* The pipeline with a pluggable route-fixing stage (step 2.1), so the
   strawman baselines slot into the exact same workflow. All simulations
   run through one incremental engine threaded across the stages;
   [incremental:false] reverts every edit to a full re-simulation (the
   pre-engine cost model, kept as the benchmark baseline). *)
let pipeline ?(incremental = true) ?cache ~variant ~k_r ~k_h configs =
  let rng = Netcore.Rng.create seed in
  let counters0 = Netcore.Telemetry.counters () in
  let t0 = Unix.gettimeofday () in
  (* [cache] rides along on the initial engine: every later stage reuses
     it through [Engine.apply_edit]. *)
  match Routing.Engine.of_configs ~incremental ?cache configs with
  | Error m -> Error m
  | Ok eng0 -> (
      let orig = Routing.Engine.snapshot eng0 in
      let topo = Confmask.Topo_anon.anonymize ~rng ~k:k_r ~orig configs in
      let fixed =
        match variant with
        | Confmask_v ->
            Result.map
              (fun (o : Confmask.Route_equiv.outcome) ->
                (o.configs, o.engine))
              (Confmask.Route_equiv.fix ~engine:eng0 ~orig
                 ~fake_edges:topo.fake_edges topo.configs)
        | Strawman1_v ->
            Result.map
              (fun (o : Confmask.Strawman.outcome) -> (o.configs, eng0))
              (Confmask.Strawman.strawman1 ~engine:eng0 ~orig
                 ~fake_edges:topo.fake_edges topo.configs)
        | Strawman2_v ->
            Result.map
              (fun (o : Confmask.Strawman.outcome) -> (o.configs, eng0))
              (Confmask.Strawman.strawman2 ~engine:eng0 ~orig
                 ~fake_edges:topo.fake_edges topo.configs)
      in
      match fixed with
      | Error m -> Error m
      | Ok (fixed_configs, engine) -> (
          match Confmask.Route_anon.anonymize ~rng ~k_h ~engine fixed_configs with
          | Error m -> Error m
          | Ok anon ->
              let anon_snapshot = Routing.Engine.snapshot anon.engine in
              let seconds = Unix.gettimeofday () -. t0 in
              let stats = counter_delta counters0 (Netcore.Telemetry.counters ()) in
              Ok (orig, anon.configs, anon_snapshot, topo.fake_edges, seconds, stats)))

let cache : (string * int * int * variant, run) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let locked f = Mutex.protect lock f

let get ?(variant = Confmask_v) ~k_r ~k_h id =
  let key = (id, k_r, k_h, variant) in
  match locked (fun () -> Hashtbl.find_opt cache key) with
  | Some r -> r
  | None ->
      let entry = Netgen.Nets.find id in
      let configs = Netgen.Nets.configs entry in
      let r =
        match pipeline ~variant ~k_r ~k_h configs with
        | Ok (orig_snapshot, anon_configs, anon_snapshot, fake_edges, seconds, stats)
          ->
            {
              entry;
              k_r;
              k_h;
              orig_configs = configs;
              anon_configs;
              orig_snapshot;
              anon_snapshot;
              fake_edges;
              seconds;
              stats;
            }
        | Error m ->
            failwith
              (Printf.sprintf "%s (net %s, k_r=%d, k_h=%d): %s"
                 (variant_name variant) id k_r k_h m)
      in
      locked (fun () ->
          if not (Hashtbl.mem cache key) then Hashtbl.replace cache key r);
      r

let prefetch ?pool combos =
  (* Warm the run cache from the pool: distinct (network, k) pipelines are
     independent, and every figure afterwards hits the cache. Results are
     deterministic, so a racing duplicate computation is only wasted work,
     never a wrong answer. *)
  ignore
    (Netcore.Pool.parallel_map ?pool
       (fun (id, k_r, k_h) -> ignore (get ~k_r ~k_h id))
       combos)

let orig_dp_cache : (string, Routing.Dataplane.t) Hashtbl.t = Hashtbl.create 16

let orig_dp r =
  match locked (fun () -> Hashtbl.find_opt orig_dp_cache r.entry.id) with
  | Some dp -> dp
  | None ->
      let dp = Routing.Simulate.dataplane r.orig_snapshot in
      locked (fun () -> Hashtbl.replace orig_dp_cache r.entry.id dp);
      dp

let anon_dp_cache : (string * int * int, Routing.Dataplane.t) Hashtbl.t =
  Hashtbl.create 64

let anon_dp r =
  let key = (r.entry.id, r.k_r, r.k_h) in
  match locked (fun () -> Hashtbl.find_opt anon_dp_cache key) with
  | Some dp -> dp
  | None ->
      let dp = Routing.Simulate.dataplane r.anon_snapshot in
      locked (fun () -> Hashtbl.replace anon_dp_cache key dp);
      dp

let real_hosts r = List.map fst (Smap.bindings r.orig_snapshot.net.hosts)

(* NetHide baseline: obfuscate the router topology, then answer host-level
   forwarding with single deterministic shortest paths in the virtual
   topology. *)
let nethide_paths r =
  let g = Routing.Device.router_graph r.orig_snapshot.net in
  let hosts = real_hosts r in
  let gateway h =
    fst (List.hd (Smap.find h r.orig_snapshot.net.attachments))
  in
  let flows =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun v ->
            if u < v then Some (gateway u, gateway v) else None)
          hosts)
      hosts
    |> List.sort_uniq compare
  in
  let rng = Netcore.Rng.create seed in
  let params = { Nethide.default_params with candidates = 128 } in
  let g' = Nethide.obfuscate ~params ~rng g ~flows in
  List.concat_map
    (fun s ->
      List.filter_map
        (fun d ->
          if String.equal s d then None
          else
            match Nethide.forwarding_path g' (gateway s) (gateway d) with
            | Some p -> Some ((s, d), [ (s :: p) @ [ d ] ])
            | None -> Some ((s, d), []))
        hosts)
    hosts

let all_ids = [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ]
let fast_ids = [ "A"; "B"; "C"; "G" ]
