(* The benchmark harness: one experiment per table/figure of the ConfMask
   evaluation (§7 and Appendix C). Each experiment prints the same rows or
   series the paper reports.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only fig5  -- run one experiment
     dune exec bench/main.exe -- --fast       -- small networks only
     dune exec bench/main.exe -- --jobs 4     -- size of the worker pool
     dune exec bench/main.exe -- --repeat 5   -- timing samples per point
     dune exec bench/main.exe -- --list       -- list experiment ids

   Absolute numbers differ from the paper (our substrate is a native
   simulator and re-seeded synthetic configs; see DESIGN.md), but the
   shapes being checked are stated in each header. *)

let fast = ref false
let repeat = ref 3

let ids () = if !fast then Runs.fast_ids else Runs.all_ids

(* Sub-millisecond measurements are dominated by scheduler and GC noise:
   the timing experiments take the median of [!repeat] samples, with each
   sample's [Gc.minor_words] delta recorded per iteration rather than
   once around the whole batch (which rounded small nets down to 0). *)
let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let header title expectation =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "expected shape: %s\n" expectation;
  Printf.printf "==================================================================\n%!"

(* ---------------- Table 2 ---------------- *)

let table2 () =
  header "Table 2: the evaluation networks"
    "sizes match the paper's |R|, |H|, |E|; line counts in the same order of magnitude";
  Printf.printf "%-3s %-11s %5s %5s %5s %13s  %s\n" "ID" "Network" "|R|" "|H|" "|E|"
    "#config lines" "Type";
  List.iter
    (fun id ->
      let e = Netgen.Nets.find id in
      let configs = Netgen.Nets.configs e in
      let g = Netgen.Netspec.router_graph e.spec in
      let lines =
        Configlang.Count.total (Configlang.Count.of_configs configs)
      in
      Printf.printf "%-3s %-11s %5d %5d %5d %13d  %s\n" e.id e.label
        (Netcore.Graph.num_nodes g)
        (List.length e.spec.Netgen.Netspec.hosts)
        (Netcore.Graph.num_edges g + List.length e.spec.Netgen.Netspec.hosts)
        lines e.network_type)
    (ids ())

(* ---------------- Figure 5 ---------------- *)

let fig5 () =
  header "Figure 5: route anonymity N_r (k_R = 6, k_H = 2)"
    "anonymized N_r above original on every network (paper: avg ~1.93)";
  Printf.printf "%-3s %-11s %12s %12s %10s %10s\n" "ID" "Network" "orig avg" "anon avg"
    "orig min" "anon min";
  let totals = ref (0.0, 0.0, 0) in
  List.iter
    (fun id ->
      let r = Runs.get ~k_r:6 ~k_h:2 id in
      let n0 = Confmask.Metrics.route_anonymity (Runs.orig_dp r) in
      let n1 = Confmask.Metrics.route_anonymity (Runs.anon_dp r) in
      let a, b, n = !totals in
      totals := (a +. n0.nr_avg, b +. n1.nr_avg, n + 1);
      Printf.printf "%-3s %-11s %12.2f %12.2f %10d %10d\n" id r.entry.label n0.nr_avg
        n1.nr_avg n0.nr_min n1.nr_min)
    (ids ());
  let a, b, n = !totals in
  Printf.printf "%-15s %12.2f %12.2f\n" "average" (a /. float_of_int n) (b /. float_of_int n)

(* ---------------- Figure 6 ---------------- *)

let fig6 () =
  header "Figure 6: topology anonymity, min same-degree group (k_R = 6, k_H = 2)"
    "anonymized k >= 6 on every network regardless of structure";
  Printf.printf "%-3s %-11s %10s %10s\n" "ID" "Network" "orig k" "anon k";
  List.iter
    (fun id ->
      let r = Runs.get ~k_r:6 ~k_h:2 id in
      let t0 = Confmask.Metrics.topology_of_snapshot r.orig_snapshot in
      let t1 = Confmask.Metrics.topology_of_snapshot r.anon_snapshot in
      Printf.printf "%-3s %-11s %10d %10d%s\n" id r.entry.label t0.min_degree_group
        t1.min_degree_group
        (if t1.min_degree_group >= 6 then "" else "  << VIOLATION"))
    (ids ())

(* ---------------- Figure 7 ---------------- *)

let fig7 () =
  header "Figure 7: clustering coefficients (k_R = 6, k_H = 2)"
    "anonymized CC close to original on large networks (paper avg diff 0.075); \
     small networks drift more because k_R is large relative to |R|";
  Printf.printf "%-3s %-11s %10s %10s %10s\n" "ID" "Network" "orig CC" "anon CC" "diff";
  List.iter
    (fun id ->
      let r = Runs.get ~k_r:6 ~k_h:2 id in
      let t0 = Confmask.Metrics.topology_of_snapshot r.orig_snapshot in
      let t1 = Confmask.Metrics.topology_of_snapshot r.anon_snapshot in
      Printf.printf "%-3s %-11s %10.3f %10.3f %10.3f\n" id r.entry.label t0.clustering
        t1.clustering
        (Float.abs (t1.clustering -. t0.clustering)))
    (ids ())

(* ---------------- Figure 8 ---------------- *)

let fig8 () =
  header "Figure 8: proportion of exactly kept host-to-host paths"
    "ConfMask 100% on every network; NetHide far below (paper: <30%, avg ~15%)";
  Printf.printf "%-3s %-11s %14s %14s\n" "ID" "Network" "ConfMask" "NetHide";
  List.iter
    (fun id ->
      let r = Runs.get ~k_r:6 ~k_h:2 id in
      let confmask =
        Confmask.Metrics.kept_paths_fraction ~orig:(Runs.orig_dp r)
          ~anon:(Runs.anon_dp r) ~hosts:(Runs.real_hosts r)
      in
      let nethide =
        Confmask.Metrics.kept_paths_fraction_of_pairs
          ~orig:(Routing.Dataplane.all_delivered (Runs.orig_dp r))
          ~anon:(Runs.nethide_paths r)
      in
      Printf.printf "%-3s %-11s %13.1f%% %13.1f%%\n" id r.entry.label
        (100.0 *. confmask) (100.0 *. nethide))
    (ids ())

(* ---------------- Figure 9 ---------------- *)

let fig9 () =
  header "Figure 9: preserved network specifications, Config2Spec (k_R = 6, k_H = 4)"
    "ConfMask keeps ~all original specs (paper 91.3% vs NetHide 65.2%); \
     ConfMask's introduced specs overwhelmingly involve fake hosts (paper 96.9%)";
  Printf.printf "%-3s %-11s | %9s %9s | %11s %11s | %s\n" "ID" "Network" "CM kept"
    "NH kept" "CM intro" "NH intro" "CM intro w/ fakes";
  List.iter
    (fun id ->
      let r = Runs.get ~k_r:6 ~k_h:4 id in
      let orig_specs = Spec.mine (Runs.orig_dp r) in
      let cm = Spec.compare_specs ~orig:orig_specs ~anon:(Spec.mine (Runs.anon_dp r)) in
      let nh =
        Spec.compare_specs ~orig:orig_specs
          ~anon:(Spec.mine_paths (Runs.nethide_paths r))
      in
      let n_orig = float_of_int (List.length orig_specs) in
      let fake_frac =
        if cm.introduced = [] then 0.0
        else
          float_of_int
            (List.length (Spec.introduced_involving cm ~hosts:(Runs.real_hosts r)))
          /. float_of_int (List.length cm.introduced)
      in
      Printf.printf "%-3s %-11s | %8.1f%% %8.1f%% | %10.2fx %10.2fx | %15.1f%%\n" id
        r.entry.label
        (100.0 *. Spec.kept_fraction cm)
        (100.0 *. Spec.kept_fraction nh)
        (float_of_int (List.length cm.introduced) /. n_orig)
        (float_of_int (List.length nh.introduced) /. n_orig)
        (100.0 *. fake_frac))
    (ids ())

(* ---------------- Figure 10 ---------------- *)

let fig10 () =
  header "Figure 10: anonymity (N_r) and utility (U_C) vs the strawman baselines \
          (k_R = 6, k_H = 2)"
    "comparable N_r across the three; strawman 1 injects the most lines \
     (lowest U_C), strawman 2 the fewest (paper: +21.2% / -13.1% vs ConfMask)";
  Printf.printf "%-3s %-11s | %9s %9s %9s | %8s %8s %8s\n" "ID" "Network" "CM N_r"
    "S1 N_r" "S2 N_r" "CM U_C" "S1 U_C" "S2 U_C";
  List.iter
    (fun id ->
      let metrics variant =
        let r = Runs.get ~variant ~k_r:6 ~k_h:2 id in
        let nr = (Confmask.Metrics.route_anonymity (Runs.anon_dp r)).nr_avg in
        let uc =
          Confmask.Metrics.config_utility ~orig:r.orig_configs ~anon:r.anon_configs
        in
        (nr, uc)
      in
      let cm_nr, cm_uc = metrics Runs.Confmask_v in
      let s1_nr, s1_uc = metrics Runs.Strawman1_v in
      let s2_nr, s2_uc = metrics Runs.Strawman2_v in
      Printf.printf "%-3s %-11s | %9.2f %9.2f %9.2f | %8.3f %8.3f %8.3f\n" id
        (Runs.get ~k_r:6 ~k_h:2 id).entry.label cm_nr s1_nr s2_nr cm_uc s1_uc s2_uc)
    (ids ())

(* ---------------- Figures 11-14: parameter sweeps ---------------- *)

let kr_values = [ 2; 6; 10 ]
let kh_values = [ 2; 4; 6 ]

let sweep_table title expectation ~param_values ~param_name ~value =
  header title expectation;
  Printf.printf "%-3s %-11s" "ID" "Network";
  List.iter (fun v -> Printf.printf " %s=%-8d" param_name v) param_values;
  print_newline ();
  List.iter
    (fun id ->
      let label = (Netgen.Nets.find id).label in
      Printf.printf "%-3s %-11s" id label;
      List.iter (fun v -> Printf.printf " %10.3f" (value id v)) param_values;
      print_newline ())
    (ids ())

let fig11 () =
  sweep_table "Figure 11: impact of k_R on route anonymity N_r (k_H = 2)"
    "k_R barely moves N_r (paper: 2.00 / 1.97 / 2.04 across k_R = 2/6/10)"
    ~param_values:kr_values ~param_name:"kR"
    ~value:(fun id k_r ->
      (Confmask.Metrics.route_anonymity (Runs.anon_dp (Runs.get ~k_r ~k_h:2 id))).nr_avg)

let fig12 () =
  sweep_table "Figure 12: impact of k_H on route anonymity N_r (k_R = 6)"
    "N_r grows with k_H (paper: 2.05 / 2.29 / 2.54 across k_H = 2/4/6)"
    ~param_values:kh_values ~param_name:"kH"
    ~value:(fun id k_h ->
      (Confmask.Metrics.route_anonymity (Runs.anon_dp (Runs.get ~k_r:6 ~k_h id))).nr_avg)

let fig13 () =
  sweep_table "Figure 13: impact of k_R on config utility U_C (k_H = 2)"
    "U_C drops as k_R grows (paper: 1% to 20% drop from k_R = 2 to 10)"
    ~param_values:kr_values ~param_name:"kR"
    ~value:(fun id k_r ->
      let r = Runs.get ~k_r ~k_h:2 id in
      Confmask.Metrics.config_utility ~orig:r.orig_configs ~anon:r.anon_configs)

let fig14 () =
  sweep_table "Figure 14: impact of k_H on config utility U_C (k_R = 6)"
    "U_C drops mildly as k_H grows (paper: 0% to 3% drop from k_H = 2 to 6)"
    ~param_values:kh_values ~param_name:"kH"
    ~value:(fun id k_h ->
      let r = Runs.get ~k_r:6 ~k_h id in
      Confmask.Metrics.config_utility ~orig:r.orig_configs ~anon:r.anon_configs)

(* ---------------- Figure 15 ---------------- *)

let fig15 () =
  header "Figure 15: route anonymity (N_r) versus config utility (U_C)"
    "loose negative correlation (paper: Pearson r = -0.36)";
  Printf.printf "%-3s %4s %4s %10s %10s\n" "ID" "kR" "kH" "N_r" "U_C";
  let points = ref [] in
  List.iter
    (fun id ->
      let cases =
        List.map (fun k_r -> (k_r, 2)) kr_values
        @ List.map (fun k_h -> (6, k_h)) kh_values
      in
      List.iter
        (fun (k_r, k_h) ->
          let r = Runs.get ~k_r ~k_h id in
          let nr = (Confmask.Metrics.route_anonymity (Runs.anon_dp r)).nr_avg in
          let uc =
            Confmask.Metrics.config_utility ~orig:r.orig_configs ~anon:r.anon_configs
          in
          points := (nr, uc) :: !points;
          Printf.printf "%-3s %4d %4d %10.2f %10.3f\n" id k_r k_h nr uc)
        (List.sort_uniq compare cases))
    (ids ());
  Printf.printf "Pearson r(N_r, U_C) = %.3f\n" (Confmask.Metrics.pearson !points)

(* ---------------- Figure 16 ---------------- *)

let fig16 () =
  header "Figure 16: end-to-end running time (k_R = 6, k_H = 2)"
    "strawman 1 fastest, ConfMask in between, strawman 2 slowest \
     (paper: s2 takes 8-100x ConfMask; FatTree-08 within minutes). \
     Hit-rate columns show the ConfMask run's engine cache reuse \
     (approximate when runs were prefetched in parallel).";
  Printf.printf "%-3s %-11s %12s %12s %12s %9s %9s %9s\n" "ID" "Network" "Strawman1"
    "ConfMask" "Strawman2" "spf-hit" "fib-hit" "bgp-skip";
  List.iter
    (fun id ->
      let t variant = (Runs.get ~variant ~k_r:6 ~k_h:2 id).seconds in
      let cm = Runs.get ~variant:Runs.Confmask_v ~k_r:6 ~k_h:2 id in
      Printf.printf
        "%-3s %-11s %11.2fs %11.2fs %11.2fs %8.1f%% %8.1f%% %9d\n" id
        (Netgen.Nets.find id).label (t Runs.Strawman1_v) cm.seconds
        (t Runs.Strawman2_v)
        (100.0
        *. Runs.hit_rate cm.stats ~reuse:"engine.spf_reuse"
             ~miss:"engine.spf_full")
        (100.0
        *. Runs.hit_rate cm.stats ~reuse:"engine.fib_reuse"
             ~miss:"engine.fib_build")
        (Runs.stat cm.stats "engine.bgp_skip"))
    (ids ())

(* ---------------- Table 3 ---------------- *)

let table3 () =
  header "Table 3: injected configuration lines by category"
    "filters dominate; interface lines vanish on FatTree (already \
     degree-regular); counts grow with k_R and k_H";
  Printf.printf "%-28s %10s %10s %10s %12s\n" "Network, Parameters" "#Protocol"
    "#Filter" "#Iface" "#Total lines";
  let row id k_r k_h =
    let r = Runs.get ~k_r ~k_h id in
    let b =
      Confmask.Metrics.line_breakdown ~orig:r.orig_configs ~anon:r.anon_configs
    in
    let total =
      Configlang.Count.total (Configlang.Count.of_configs r.anon_configs)
    in
    Printf.printf "%-28s %10d %10d %10d %12d\n"
      (Printf.sprintf "%s, kR=%d, kH=%d" r.entry.label k_r k_h)
      b.protocol_lines b.filter_lines b.interface_lines total
  in
  let sweeps = [ (2, 2); (6, 2); (6, 4); (10, 2) ] in
  let nets = if !fast then [ "CCNP"; "G" ] else [ "D"; "E"; "CCNP"; "H" ] in
  List.iter (fun id -> List.iter (fun (k_r, k_h) -> row id k_r k_h) sweeps) nets;
  if not !fast then row "F" 6 2

(* ---------------- Ablations (design choices of DESIGN.md) ---------------- *)

(* Fake-link cost policy: quantifies the §3.2 strawman discussion. *)
let ablation_cost () =
  header "Ablation: fake-link OSPF cost policy (k_R = 10, topology stage only)"
    "default cost migrates paths (low kept%); large cost keeps paths but no \
     fake link ever carries traffic; min_cost keeps distances and makes fake \
     links plausible (ConfMask's choice)";
  Printf.printf "%-3s %-12s %12s %18s\n" "ID" "policy" "kept paths" "fake links used";
  (* OSPF-only networks: in BGP networks fake eBGP adjacencies are not
     governed by the IGP cost, which would blur the comparison. *)
  let nets = if !fast then [ "G" ] else [ "G"; "D" ] in
  List.iter
    (fun id ->
      let entry = Netgen.Nets.find id in
      let configs = Netgen.Nets.configs entry in
      let orig = Routing.Simulate.run_exn configs in
      let dp0 = Routing.Simulate.dataplane orig in
      let hosts = List.map fst (Routing.Device.Smap.bindings orig.net.hosts) in
      List.iter
        (fun (policy, name) ->
          let rng = Netcore.Rng.create Runs.seed in
          let t =
            Confmask.Topo_anon.anonymize ~cost_policy:policy ~rng ~k:10 ~orig configs
          in
          match Routing.Simulate.run t.configs with
          | Error m -> Printf.printf "%-3s %-12s failed: %s\n" id name m
          | Ok snap ->
              let dp1 = Routing.Simulate.dataplane snap in
              let kept =
                Confmask.Metrics.kept_paths_fraction ~orig:dp0 ~anon:dp1 ~hosts
              in
              let fake_used =
                let used = Hashtbl.create 16 in
                List.iter
                  (fun (_, paths) ->
                    List.iter
                      (fun path ->
                        let rec edges = function
                          | u :: (v :: _ as rest) ->
                              let key = if u < v then (u, v) else (v, u) in
                              if List.mem key t.fake_edges then
                                Hashtbl.replace used key ();
                              edges rest
                          | _ -> ()
                        in
                        edges path)
                      paths)
                  (Routing.Dataplane.all_delivered dp1);
                Hashtbl.length used
              in
              Printf.printf "%-3s %-12s %11.1f%% %10d of %d\n" id name
                (100.0 *. kept) fake_used
                (List.length t.fake_edges))
        [
          (Confmask.Topo_anon.Default_cost, "default");
          (Confmask.Topo_anon.Large_cost, "large");
          (Confmask.Topo_anon.Min_cost, "min_cost");
        ])
    nets

(* Noise coefficient p of Algorithm 2. *)
let ablation_noise () =
  header "Ablation: route-anonymity noise coefficient p (k_R = 10, k_H = 2)"
    "larger p plants more filters (more rolled back on sparse nets); N_r \
     saturates — the paper's p = 0.1 sits at the knee";
  Printf.printf "%-3s %6s %10s %10s %10s\n" "ID" "p" "N_r" "filters" "rolled back";
  let nets = if !fast then [ "C"; "G" ] else [ "C"; "G"; "D" ] in
  List.iter
    (fun id ->
      let entry = Netgen.Nets.find id in
      let configs = Netgen.Nets.configs entry in
      List.iter
        (fun p ->
          let params =
            { Confmask.Workflow.default_params with k_r = 10; k_h = 2; noise = p }
          in
          match Confmask.Workflow.run ~params configs with
          | Error m -> Printf.printf "%-3s %6.2f failed: %s\n" id p m
          | Ok r ->
              let nr =
                Confmask.Metrics.route_anonymity
                  (Routing.Simulate.dataplane r.anon_snapshot)
              in
              Printf.printf "%-3s %6.2f %10.2f %10d %10d\n" id p nr.nr_avg
                r.anon_filters_added r.anon_filters_removed)
        [ 0.0; 0.05; 0.1; 0.3; 0.5 ])
    nets

(* Convergence speed: Algorithm 1 vs strawman 2 (§5.2's claim). *)
let ablation_iters () =
  header "Ablation: route-fixing convergence (k_R = 6)"
    "Algorithm 1 needs fewer simulations than strawman 2 on every network \
     (it repairs all routing-table entries per round, not one hop per pair)";
  Printf.printf "%-3s %-11s %14s %14s %12s %12s\n" "ID" "Network" "Alg1 iters"
    "S2 iters" "Alg1 filt" "S2 filt";
  List.iter
    (fun id ->
      let entry = Netgen.Nets.find id in
      let configs = Netgen.Nets.configs entry in
      let orig = Routing.Simulate.run_exn configs in
      let rng = Netcore.Rng.create Runs.seed in
      let t = Confmask.Topo_anon.anonymize ~rng ~k:6 ~orig configs in
      let alg1 = Confmask.Route_equiv.fix ~orig ~fake_edges:t.fake_edges t.configs in
      let s2 = Confmask.Strawman.strawman2 ~orig ~fake_edges:t.fake_edges t.configs in
      match (alg1, s2) with
      | Ok a, Ok s ->
          Printf.printf "%-3s %-11s %14d %14d %12d %12d\n" id entry.label
            a.iterations s.iterations a.filters_added s.filters_added
      | Error m, _ | _, Error m -> Printf.printf "%-3s %-11s failed: %s\n" id entry.label m)
    (ids ())

(* De-anonymization attacks (§2.2 threat model / §4.3 discussion). *)
let deanon () =
  header "De-anonymization: fake-link identification attacks (k_R = 6, k_H = 2)"
    "the uniform-filter attack recovers Strawman 1's fake links but close to \
     none of ConfMask's; fake links carry fake-host traffic, so the \
     no-traffic attack finds little on either";
  Printf.printf "%-3s %-10s | %22s | %22s | %5s\n" "ID" "variant" "uniform-filter attack"
    "no-traffic attack" "fakes";
  Printf.printf "%-3s %-10s | %10s %11s | %10s %11s |\n" "" "" "recall" "precision"
    "recall" "precision";
  let nets = if !fast then [ "B"; "C" ] else [ "B"; "C"; "D" ] in
  List.iter
    (fun id ->
      List.iter
        (fun variant ->
          let r = Runs.get ~variant ~k_r:6 ~k_h:2 id in
          let uniform =
            Confmask.Deanon.uniform_filter_links r.anon_snapshot r.anon_configs
          in
          let dead = Confmask.Deanon.no_traffic_links r.anon_snapshot in
          let s1 = Confmask.Deanon.assess ~fake_edges:r.fake_edges ~flagged:uniform in
          let s2 = Confmask.Deanon.assess ~fake_edges:r.fake_edges ~flagged:dead in
          Printf.printf "%-3s %-10s | %9.1f%% %10.1f%% | %9.1f%% %10.1f%% | %5d\n" id
            (Runs.variant_name variant)
            (100.0 *. s1.recall) (100.0 *. s1.precision)
            (100.0 *. s2.recall) (100.0 *. s2.precision)
            (List.length r.fake_edges))
        [ Runs.Confmask_v; Runs.Strawman1_v ])
    nets

(* The red-team suite: the measured security budget per network. *)
let redteam () =
  header "Red team: de-anonymization attack suite (k_H = 2, PII scrub on)"
    "prefix_structure recall stays 1.0 (Crypto-PAn preserves the hierarchy \
     fingerprint); the legacy small-int key falls to the brute force; \
     fake-link and re-identification recall stay low at higher k_R";
  Printf.printf "%-3s %4s %-18s %7s %6s %9s %10s %8s\n" "ID" "k_R" "attack"
    "claims" "hits" "relevant" "precision" "recall";
  let nets = if !fast then [ "A"; "B" ] else [ "A"; "B"; "C"; "D" ] in
  List.iter
    (fun id ->
      let configs = Netgen.Nets.configs (Netgen.Nets.find id) in
      List.iter
        (fun k_r ->
          (* The legacy default key (key_of_int seed) is exactly the weak
             configuration the brute-force attack is built to punish. *)
          let params =
            { Confmask.Workflow.default_params with k_r; k_h = 2; pii = true }
          in
          match Confmask.Workflow.run ~params configs with
          | Error m -> Printf.printf "%-3s %4d failed: %s\n" id k_r m
          | Ok r ->
              List.iter
                (fun (s : Redteam.Attack.score) ->
                  Printf.printf "%-3s %4d %-18s %7d %6d %9d %10.3f %8.3f" id
                    k_r s.attack s.claims s.hits s.relevant s.precision
                    s.recall;
                  (match List.assoc_opt "top5_rate" s.detail with
                  | Some v -> Printf.printf "  top5=%.3f" v
                  | None -> ());
                  print_newline ())
                (Confmask.Audit.of_report ~key_range:4096 r))
        [ 2; 6 ])
    nets

(* Network scale obfuscation (§9 extension). *)
let ext_scale () =
  header "Extension: network scale obfuscation by fake router addition (§9)"
    "router count grows, functional equivalence and k-degree anonymity \
     still hold, utility degrades gracefully";
  Printf.printf "%-3s %12s %8s %8s %8s %8s %6s\n" "ID" "fake routers" "|R|" "k"
    "N_r" "U_C" "FE";
  let nets = if !fast then [ "G" ] else [ "G"; "D" ] in
  List.iter
    (fun id ->
      let configs = Netgen.Nets.configs (Netgen.Nets.find id) in
      List.iter
        (fun n ->
          let params =
            { Confmask.Workflow.default_params with k_r = 6; fake_routers = n }
          in
          match Confmask.Workflow.run ~params configs with
          | Error m -> Printf.printf "%-3s %12d failed: %s\n" id n m
          | Ok r ->
              let topo = Confmask.Metrics.topology_of_snapshot r.anon_snapshot in
              let nr =
                Confmask.Metrics.route_anonymity
                  (Routing.Simulate.dataplane r.anon_snapshot)
              in
              let uc =
                Confmask.Metrics.config_utility ~orig:r.orig_configs
                  ~anon:r.anon_configs
              in
              Printf.printf "%-3s %12d %8d %8d %8.2f %8.3f %6b\n" id n topo.routers
                topo.min_degree_group nr.nr_avg uc
                (Confmask.Workflow.functional_equivalence r))
        [ 0; 4; 8 ])
    nets

(* ---------------- Timing: incremental engine vs full re-simulation ------- *)

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let timing () =
  let k_r = 6 and k_h = 2 in
  header
    (Printf.sprintf
       "Timing: ConfMask pipeline wall-clock (k_R = %d, k_H = %d), full \
        re-simulation per edit vs incremental engine"
       k_r k_h)
    "the incremental engine cuts pipeline time; the gap widens with network \
     size (the fixpoints dominate). Hit rates come from the incremental \
     run's engine counters. Results land in BENCH_PR2.json.";
  Printf.printf "%-3s %-11s %14s %14s %9s %9s %9s %9s\n" "ID" "Network"
    "full resim" "incremental" "speedup" "spf-hit" "fib-hit" "bgp-skip";
  let measure id incremental =
    let configs = Netgen.Nets.configs (Netgen.Nets.find id) in
    match
      Runs.pipeline ~incremental ~variant:Runs.Confmask_v ~k_r ~k_h configs
    with
    | Ok (_, _, _, _, seconds, stats) -> (seconds, stats)
    | Error m -> failwith (Printf.sprintf "timing (net %s): %s" id m)
  in
  let rows =
    List.map
      (fun id ->
        let base, _ = measure id false in
        let inc, stats = measure id true in
        let label = (Netgen.Nets.find id).label in
        let spf_hit =
          Runs.hit_rate stats ~reuse:"engine.spf_reuse" ~miss:"engine.spf_full"
        in
        let fib_hit =
          Runs.hit_rate stats ~reuse:"engine.fib_reuse" ~miss:"engine.fib_build"
        in
        let bgp_skips = Runs.stat stats "engine.bgp_skip" in
        Printf.printf
          "%-3s %-11s %13.2fs %13.2fs %8.1fx %8.1f%% %8.1f%% %9d\n%!" id label
          base inc (base /. inc) (100.0 *. spf_hit) (100.0 *. fib_hit)
          bgp_skips;
        (id, label, base, inc, spf_hit, fib_hit, bgp_skips))
      (ids ())
  in
  let out = open_out "BENCH_PR2.json" in
  Printf.fprintf out
    "{\n  \"experiment\": \"confmask pipeline seconds, full re-simulation \
     per edit vs incremental engine, with engine cache-hit rates\",\n\
    \  \"k_r\": %d,\n  \"k_h\": %d,\n  \"seed\": %d,\n  \"jobs\": %d,\n\
    \  \"networks\": [\n"
    k_r k_h Runs.seed
    (Netcore.Pool.jobs (Netcore.Pool.default ()));
  List.iteri
    (fun i (id, label, base, inc, spf_hit, fib_hit, bgp_skips) ->
      Printf.fprintf out
        "    {\"id\": \"%s\", \"label\": \"%s\", \"baseline_seconds\": %.3f, \
         \"incremental_seconds\": %.3f, \"speedup\": %.2f, \
         \"spf_hit_rate\": %.3f, \"fib_hit_rate\": %.3f, \
         \"bgp_skips\": %d}%s\n"
        (json_escape id) (json_escape label) base inc (base /. inc) spf_hit
        fib_hit bgp_skips
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf out "  ]\n}\n";
  close_out out;
  Printf.printf "[wrote BENCH_PR2.json]\n"

(* ---------------- Batch grids: cold vs warm persistent cache ---------- *)

let batch_combos = [ (2, 2); (6, 2); (10, 2); (6, 4); (6, 6) ]

let batch_bench () =
  header
    "Batch grid timing: the fig11-14 (k_R, k_H) grid per network, cold \
     persistent cache vs a warm rerun"
    "the warm rerun restores SPF/BGP/whole-state entries from disk instead \
     of recomputing them: full simulations drop by >= 3x and wall clock \
     follows. Results land in BENCH_PR4.json.";
  let full_sims stats =
    (* Everything the disk cache can spare: full SPF preparations, BGP
       fixpoints and DV recomputations. *)
    Runs.stat stats "engine.spf_full"
    + Runs.stat stats "engine.bgp_compute"
    + Runs.stat stats "engine.dv_recompute"
  in
  let disk_hits stats =
    Runs.stat stats "engine.state_disk"
    + Runs.stat stats "engine.spf_disk"
    + Runs.stat stats "engine.dv_disk"
    + Runs.stat stats "engine.bgp_disk"
  in
  let temp_cache_dir id =
    let f = Filename.temp_file ("confmask-bench-cache-" ^ id) "" in
    Sys.remove f;
    Sys.mkdir f 0o700;
    f
  in
  let grid_pass id cache =
    let configs = Netgen.Nets.configs (Netgen.Nets.find id) in
    let counters0 = Netcore.Telemetry.counters () in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (k_r, k_h) ->
        match
          Runs.pipeline ?cache ~variant:Runs.Confmask_v ~k_r ~k_h configs
        with
        | Ok _ -> ()
        | Error m ->
            failwith
              (Printf.sprintf "batch (net %s, k_r=%d, k_h=%d): %s" id k_r k_h m))
      batch_combos;
    let seconds = Unix.gettimeofday () -. t0 in
    (seconds, Runs.counter_delta counters0 (Netcore.Telemetry.counters ()))
  in
  Printf.printf "%-3s %-11s %10s %10s %8s %10s %10s %10s\n" "ID" "Network"
    "cold" "warm" "speedup" "full-cold" "full-warm" "disk-hits";
  let rows =
    List.map
      (fun id ->
        let label = (Netgen.Nets.find id).label in
        let dir = temp_cache_dir id in
        let cold_s, cold_stats =
          grid_pass id (Some (Routing.Engine.open_cache dir))
        in
        let warm_s, warm_stats =
          grid_pass id (Some (Routing.Engine.open_cache dir))
        in
        let row =
          ( id, label, cold_s, warm_s, full_sims cold_stats,
            full_sims warm_stats, disk_hits warm_stats )
        in
        Printf.printf "%-3s %-11s %9.2fs %9.2fs %7.1fx %10d %10d %10d\n%!" id
          label cold_s warm_s (cold_s /. warm_s) (full_sims cold_stats)
          (full_sims warm_stats) (disk_hits warm_stats);
        row)
      (ids ())
  in
  let out = open_out "BENCH_PR4.json" in
  Printf.fprintf out
    "{\n  \"experiment\": \"confmask batch grid seconds per network, cold \
     persistent cache vs warm rerun, with full-simulation and disk-hit \
     counter deltas\",\n\
    \  \"combos\": [%s],\n  \"seed\": %d,\n  \"jobs\": %d,\n\
    \  \"networks\": [\n"
    (String.concat ", "
       (List.map (fun (r, h) -> Printf.sprintf "[%d, %d]" r h) batch_combos))
    Runs.seed
    (Netcore.Pool.jobs (Netcore.Pool.default ()));
  List.iteri
    (fun i (id, label, cold_s, warm_s, cold_full, warm_full, hits) ->
      Printf.fprintf out
        "    {\"id\": \"%s\", \"label\": \"%s\", \"cold_seconds\": %.3f, \
         \"warm_seconds\": %.3f, \"speedup\": %.2f, \"cold_full_sims\": %d, \
         \"warm_full_sims\": %d, \"warm_disk_hits\": %d}%s\n"
        (json_escape id) (json_escape label) cold_s warm_s (cold_s /. warm_s)
        cold_full warm_full hits
        (if i = List.length rows - 1 then "" else ","))
    rows;
  let tot f = List.fold_left (fun a r -> a +. f r) 0.0 rows in
  let cold_t = tot (fun (_, _, c, _, _, _, _) -> c) in
  let warm_t = tot (fun (_, _, _, w, _, _, _) -> w) in
  Printf.fprintf out
    "  ],\n  \"total_cold_seconds\": %.3f,\n  \"total_warm_seconds\": %.3f,\n\
    \  \"total_speedup\": %.2f\n}\n"
    cold_t warm_t (cold_t /. warm_t);
  close_out out;
  Printf.printf "[wrote BENCH_PR4.json]\n"

(* ---------------- Kernels: legacy map kernels vs compiled core -------- *)

let kernels () =
  header
    "Kernels: cold full simulation + data-plane extraction, legacy map \
     kernels vs compiled core (interned ids, CSR Dijkstra, LPM trie)"
    "the compiled kernels cut wall clock >= 1.5x on the largest networks \
     and allocate far less on the minor heap. Results land in \
     BENCH_PR5.json.";
  Printf.printf "%-3s %-11s %11s %11s %8s %12s %12s %10s\n" "ID" "Network"
    "legacy" "compiled" "speedup" "minor-Mw(l)" "minor-Mw(c)" "major(l/c)";
  let measure mode configs =
    Routing.Compiled.with_kernels mode (fun () ->
        (* Median of [!repeat] samples; each sample gets its own GC delta
           so even sub-millisecond nets report nonzero minor words. *)
        let samples =
          List.init (max 1 !repeat) (fun _ ->
              Gc.full_major ();
              let g0 = Gc.quick_stat () in
              let t0 = Unix.gettimeofday () in
              let snap = Routing.Simulate.run_exn configs in
              let dp = Routing.Simulate.dataplane snap in
              ignore (Sys.opaque_identity dp);
              let dt = Unix.gettimeofday () -. t0 in
              let g1 = Gc.quick_stat () in
              ( dt,
                g1.minor_words -. g0.minor_words,
                g1.major_collections - g0.major_collections ))
        in
        ( median (List.map (fun (d, _, _) -> d) samples),
          median (List.map (fun (_, m, _) -> m) samples),
          List.fold_left (fun a (_, _, c) -> max a c) 0 samples ))
  in
  let rows =
    List.map
      (fun id ->
        let configs = Netgen.Nets.configs (Netgen.Nets.find id) in
        let leg_s, leg_mw, leg_mc = measure `Legacy configs in
        let cmp_s, cmp_mw, cmp_mc = measure `Compiled configs in
        let label = (Netgen.Nets.find id).label in
        Printf.printf
          "%-3s %-11s %10.3fs %10.3fs %7.1fx %11.1f %11.1f %5d/%-4d\n%!" id
          label leg_s cmp_s (leg_s /. cmp_s) (leg_mw /. 1e6) (cmp_mw /. 1e6)
          leg_mc cmp_mc;
        (id, label, leg_s, cmp_s, leg_mw, cmp_mw, leg_mc, cmp_mc))
      (ids ())
  in
  let out = open_out "BENCH_PR5.json" in
  Printf.fprintf out
    "{\n  \"experiment\": \"cold full simulation + data-plane extraction, \
     legacy map kernels vs compiled core (wall seconds, minor-heap words, \
     major collections)\",\n  \"seed\": %d,\n  \"jobs\": %d,\n\
    \  \"networks\": [\n"
    Runs.seed
    (Netcore.Pool.jobs (Netcore.Pool.default ()));
  List.iteri
    (fun i (id, label, leg_s, cmp_s, leg_mw, cmp_mw, leg_mc, cmp_mc) ->
      Printf.fprintf out
        "    {\"id\": \"%s\", \"label\": \"%s\", \"legacy_seconds\": %.3f, \
         \"compiled_seconds\": %.3f, \"speedup\": %.2f, \
         \"legacy_minor_words\": %.0f, \"compiled_minor_words\": %.0f, \
         \"legacy_major_collections\": %d, \
         \"compiled_major_collections\": %d}%s\n"
        (json_escape id) (json_escape label) leg_s cmp_s (leg_s /. cmp_s)
        leg_mw cmp_mw leg_mc cmp_mc
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf out "  ]\n}\n";
  close_out out;
  Printf.printf "[wrote BENCH_PR5.json]\n"

(* ---------------- Scale: 10x-size nets, FEC + batched SPF ------------- *)

let scale_bench () =
  header
    "Scale: cold full simulation + data-plane extraction, FEC collapse + \
     batched SPF selection on (default) vs off (the PR 5 per-pair / \
     per-router path, CONFMASK_FEC=off)"
    "the collapsed pipeline holds >= 3x on the largest Table 2 nets (F, H) \
     and completes the 10x presets (FatTree16, Waxman500/1000) that the \
     per-pair path cannot touch interactively. Results land in \
     BENCH_PR6.json.";
  let entries =
    [ Netgen.Nets.find "F"; Netgen.Nets.find "H" ]
    @ (if !fast then [ Netgen.Nets.find "FT16" ] else Netgen.Nets.scale ())
  in
  let measure mode configs =
    Routing.Fec.with_mode mode (fun () ->
        let samples =
          List.init (max 1 !repeat) (fun _ ->
              Gc.full_major ();
              let c0 = Netcore.Telemetry.counters () in
              let g0 = Gc.quick_stat () in
              let t0 = Unix.gettimeofday () in
              let snap = Routing.Simulate.run_exn configs in
              let dp = Routing.Simulate.dataplane snap in
              ignore (Sys.opaque_identity dp);
              let dt = Unix.gettimeofday () -. t0 in
              let g1 = Gc.quick_stat () in
              let stats =
                Runs.counter_delta c0 (Netcore.Telemetry.counters ())
              in
              (dt, g1.minor_words -. g0.minor_words, stats))
        in
        let stats = (fun (_, _, s) -> s) (List.hd samples) in
        ( median (List.map (fun (d, _, _) -> d) samples),
          median (List.map (fun (_, m, _) -> m) samples),
          stats ))
  in
  Printf.printf "%-5s %-11s %5s %5s %11s %11s %8s %8s %10s %8s\n" "ID"
    "Network" "|R|" "|H|" "full" "fec" "speedup" "classes" "collapsed"
    "traced";
  let rows =
    List.map
      (fun (e : Netgen.Nets.entry) ->
        let configs = Netgen.Nets.configs e in
        let g = Netgen.Netspec.router_graph e.spec in
        let routers = Netcore.Graph.num_nodes g in
        let hosts = List.length e.spec.Netgen.Netspec.hosts in
        let seq_s, seq_mw, _ = measure `Off configs in
        let par_s, par_mw, stats = measure `On configs in
        let classes = Runs.stat stats "fec.classes" in
        let collapsed = Runs.stat stats "fec.collapsed" in
        let traced = Runs.stat stats "fec.traced" in
        Printf.printf
          "%-5s %-11s %5d %5d %10.3fs %10.3fs %7.1fx %8d %10d %8d\n%!" e.id
          e.label routers hosts seq_s par_s (seq_s /. par_s) classes collapsed
          traced;
        ( e.id, e.label, routers, hosts, seq_s, par_s, seq_mw, par_mw, classes,
          collapsed, traced ))
      entries
  in
  (* The acceptance gate of ROADMAP open item 2: the fig5-9 pipeline must
     complete on the 10x fat-tree, not just a single simulation. One full
     ConfMask run (k_R = 6, k_H = 2) plus the fig5 anonymity metric stands
     in for the figure loop; [--fast] skips it. *)
  let ft16 =
    if !fast then None
    else begin
      Printf.printf "FatTree16 fig5-9 pipeline (k_R = 6, k_H = 2): %!";
      let r = Runs.get ~k_r:6 ~k_h:2 "FT16" in
      let n0 = Confmask.Metrics.route_anonymity (Runs.orig_dp r) in
      let n1 = Confmask.Metrics.route_anonymity (Runs.anon_dp r) in
      let t1 = Confmask.Metrics.topology_of_snapshot r.anon_snapshot in
      Printf.printf "%.1fs, N_r %.2f -> %.2f, anon k = %d\n%!" r.seconds
        n0.nr_avg n1.nr_avg t1.min_degree_group;
      Some (r.seconds, n0.nr_avg, n1.nr_avg, t1.min_degree_group)
    end
  in
  let out = open_out "BENCH_PR6.json" in
  Printf.fprintf out
    "{\n  \"experiment\": \"cold full simulation + data-plane extraction at \
     10x scale, FEC collapse + batched SPF selection vs the per-pair \
     baseline (median wall seconds, per-iteration minor words, fec \
     counters)\",\n\
    \  \"seed\": %d,\n  \"jobs\": %d,\n  \"repeat\": %d,\n\
    \  \"networks\": [\n"
    Runs.seed
    (Netcore.Pool.jobs (Netcore.Pool.default ()))
    (max 1 !repeat);
  List.iteri
    (fun i
         ( id, label, routers, hosts, seq_s, par_s, seq_mw, par_mw, classes,
           collapsed, traced ) ->
      Printf.fprintf out
        "    {\"id\": \"%s\", \"label\": \"%s\", \"routers\": %d, \
         \"hosts\": %d, \"full_seconds\": %.3f, \"fec_seconds\": %.3f, \
         \"speedup\": %.2f, \"full_minor_words\": %.0f, \
         \"fec_minor_words\": %.0f, \"fec_classes\": %d, \
         \"fec_collapsed\": %d, \"fec_traced\": %d}%s\n"
        (json_escape id) (json_escape label) routers hosts seq_s par_s
        (seq_s /. par_s) seq_mw par_mw classes collapsed traced
        (if i = List.length rows - 1 then "" else ","))
    rows;
  (match ft16 with
  | None -> Printf.fprintf out "  ]\n}\n"
  | Some (secs, nr0, nr1, k) ->
      Printf.fprintf out
        "  ],\n  \"fattree16_fig59\": {\"k_r\": 6, \"k_h\": 2, \
         \"pipeline_seconds\": %.1f, \"nr_avg_orig\": %.3f, \
         \"nr_avg_anon\": %.3f, \"anon_min_degree_group\": %d}\n}\n"
        secs nr0 nr1 k);
  close_out out;
  Printf.printf "[wrote BENCH_PR6.json]\n"

(* ---------------- Anonfix: legacy vs incremental fixpoint ------------- *)

let anonfix_bench () =
  header
    "Anonfix: full ConfMask workflow (k_R = 6, k_H = 2), legacy \
     full-recompute fixpoint (CONFMASK_ANONFIX=legacy) vs the incremental \
     path (engine deltas, pool-sharded scans, cached parallel walks, \
     indexed edits)"
    "outputs are byte-identical and iteration counts unchanged; the \
     incremental path wins >= 1.5x end to end on the scale presets, where \
     per-iteration full scans dominate. Results land in BENCH_PR10.json.";
  let entries =
    [ Netgen.Nets.find "D"; Netgen.Nets.find "F"; Netgen.Nets.find "H" ]
    @ (if !fast then [ Netgen.Nets.find "FT16" ] else Netgen.Nets.scale ())
  in
  (* Spans are cumulative; phase seconds are the delta of the matching
     paths (the workflow phases nest under workflow.run). *)
  let phase_secs before after name =
    let sum spans =
      List.fold_left
        (fun acc (path, _, s) ->
          if path = name || String.ends_with ~suffix:("/" ^ name) path then
            acc +. s
          else acc)
        0.0 spans
    in
    sum after -. sum before
  in
  let measure mode configs =
    Confmask.Anonfix.with_mode mode (fun () ->
        let samples =
          List.init (max 1 !repeat) (fun _ ->
              Gc.full_major ();
              let c0 = Netcore.Telemetry.counters () in
              let s0 = Netcore.Telemetry.spans () in
              let t0 = Unix.gettimeofday () in
              let r =
                Confmask.Workflow.run_exn
                  ~params:
                    { Confmask.Workflow.default_params with k_r = 6; k_h = 2 }
                  configs
              in
              let dt = Unix.gettimeofday () -. t0 in
              let s1 = Netcore.Telemetry.spans () in
              let stats =
                Runs.counter_delta c0 (Netcore.Telemetry.counters ())
              in
              ( dt,
                phase_secs s0 s1 "workflow.equiv",
                phase_secs s0 s1 "workflow.anon",
                stats, r ))
        in
        let _, _, _, stats, r = List.hd samples in
        ( median (List.map (fun (d, _, _, _, _) -> d) samples),
          median (List.map (fun (_, e, _, _, _) -> e) samples),
          median (List.map (fun (_, _, a, _, _) -> a) samples),
          stats, r ))
  in
  Printf.printf "%-5s %-11s %10s %10s %8s %8s %7s %7s %9s %8s %5s\n" "ID"
    "Network" "legacy" "incr" "speedup" "equiv-x" "eq-it" "rounds" "delta-r"
    "skipped" "same";
  let rows =
    List.map
      (fun (e : Netgen.Nets.entry) ->
        let configs = Netgen.Nets.configs e in
        let leg_s, leg_eq, leg_an, leg_stats, leg_r = measure `Legacy configs in
        let inc_s, inc_eq, inc_an, inc_stats, inc_r =
          measure `Incremental configs
        in
        let identical =
          Confmask.Workflow.anon_texts leg_r = Confmask.Workflow.anon_texts inc_r
        in
        let eq_it = Runs.stat inc_stats "equiv.iterations" in
        let rounds = Runs.stat inc_stats "anon.iterations" in
        let iters_match =
          eq_it = Runs.stat leg_stats "equiv.iterations"
          && rounds = Runs.stat leg_stats "anon.iterations"
        in
        let delta_r = Runs.stat inc_stats "equiv.delta_routers" in
        let skipped = Runs.stat inc_stats "anon.walks_skipped" in
        Printf.printf
          "%-5s %-11s %9.2fs %9.2fs %7.1fx %7.1fx %7d %7d %9d %8d %5s\n%!"
          e.id e.label leg_s inc_s (leg_s /. inc_s)
          (leg_eq /. Float.max inc_eq 1e-9)
          eq_it rounds delta_r skipped
          (if identical && iters_match then "yes" else "<< NO");
        ( e.id, e.label, leg_s, inc_s, leg_eq, inc_eq, leg_an, inc_an, eq_it,
          rounds, delta_r, skipped, identical && iters_match ))
      entries
  in
  let out = open_out "BENCH_PR10.json" in
  Printf.fprintf out
    "{\n  \"experiment\": \"full confmask workflow seconds, legacy \
     full-recompute anonymization fixpoint vs incremental (engine deltas, \
     pool-sharded equivalence scans, cached parallel reachability walks, \
     indexed config edits), with per-phase medians and delta/skip \
     counters\",\n\
    \  \"k_r\": 6,\n  \"k_h\": 2,\n  \"seed\": %d,\n  \"jobs\": %d,\n\
    \  \"repeat\": %d,\n  \"networks\": [\n"
    Runs.seed
    (Netcore.Pool.jobs (Netcore.Pool.default ()))
    (max 1 !repeat);
  List.iteri
    (fun i
         ( id, label, leg_s, inc_s, leg_eq, inc_eq, leg_an, inc_an, eq_it,
           rounds, delta_r, skipped, ok ) ->
      Printf.fprintf out
        "    {\"id\": \"%s\", \"label\": \"%s\", \"legacy_seconds\": %.3f, \
         \"incremental_seconds\": %.3f, \"speedup\": %.2f, \
         \"legacy_equiv_seconds\": %.3f, \"incremental_equiv_seconds\": \
         %.3f, \"legacy_anon_seconds\": %.3f, \"incremental_anon_seconds\": \
         %.3f, \"equiv_iterations\": %d, \"repair_rounds\": %d, \
         \"delta_routers\": %d, \"walks_skipped\": %d, \
         \"identical_output\": %b}%s\n"
        (json_escape id) (json_escape label) leg_s inc_s (leg_s /. inc_s)
        leg_eq inc_eq leg_an inc_an eq_it rounds delta_r skipped ok
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf out "  ]\n}\n";
  close_out out;
  Printf.printf "[wrote BENCH_PR10.json]\n"

(* ---------------- Bechamel microbenchmarks ---------------- *)

let bechamel () =
  header "Bechamel microbenchmarks: stage costs on net A (Enterprise) and G (FatTree04)"
    "simulation dominates; parsing is negligible";
  let open Bechamel in
  let configs_a = Netgen.Nets.configs (Netgen.Nets.find "A") in
  let configs_g = Netgen.Nets.configs (Netgen.Nets.find "G") in
  let text_a =
    String.concat "\n!\n" (List.map Configlang.Printer.to_string configs_a)
  in
  let orig_a = Routing.Simulate.run_exn configs_a in
  let test name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"confmask"
      [
        test "parse-net-A" (fun () ->
            List.map Configlang.Parser.parse_exn (String.split_on_char '!' text_a));
        test "simulate-net-A" (fun () -> Routing.Simulate.run_exn configs_a);
        test "simulate-net-G" (fun () -> Routing.Simulate.run_exn configs_g);
        test "dataplane-net-A" (fun () -> Routing.Simulate.dataplane orig_a);
        test "topo-anon-net-A" (fun () ->
            Confmask.Topo_anon.anonymize ~rng:(Netcore.Rng.create 42) ~k:6
              ~orig:orig_a configs_a);
        test "pipeline-net-A" (fun () ->
            Confmask.Workflow.run_exn
              ~params:{ Confmask.Workflow.default_params with k_r = 6; k_h = 2 }
              configs_a);
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Bechamel.Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances tests in
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  List.iter
    (fun results ->
      Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
      |> List.sort compare
      |> List.iter (fun (name, ols) ->
             let per_run =
               match Analyze.OLS.estimates ols with
               | Some (est :: _) -> Printf.sprintf "%10.3f ms/run" (est /. 1e6)
               | Some [] | None -> "(no estimate)"
             in
             Printf.printf "%-40s %s\n" name per_run))
    (benchmark ())

(* ---------------- driver ---------------- *)

let experiments =
  [
    ("table2", table2);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("table3", table3);
    ("ablation-cost", ablation_cost);
    ("ablation-noise", ablation_noise);
    ("ablation-iters", ablation_iters);
    ("ext-scale", ext_scale);
    ("deanon", deanon);
    ("redteam", redteam);
    ("timing", timing);
    ("batch", batch_bench);
    ("kernels", kernels);
    ("scale", scale_bench);
    ("anonfix", anonfix_bench);
    ("bechamel", bechamel);
  ]

let () =
  (* Counters are cheap (one atomic add each) and the hit-rate columns of
     fig16/timing need them, so the whole harness runs with telemetry on. *)
  Netcore.Telemetry.set_enabled true;
  let only = ref [] in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | "--fast" :: rest ->
        fast := true;
        parse rest
    | "--list" :: _ ->
        List.iter (fun (id, _) -> print_endline id) experiments;
        exit 0
    | "--only" :: id :: rest ->
        only := id :: !only;
        parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> Netcore.Pool.set_default_jobs n
        | _ ->
            Printf.eprintf "--jobs expects a positive integer\n";
            exit 1);
        parse rest
    | "--repeat" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> repeat := n
        | _ ->
            Printf.eprintf "--repeat expects a positive integer\n";
            exit 1);
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse args;
  let selected =
    if !only = [] then experiments
    else
      List.filter (fun (id, _) -> List.mem id !only) experiments
  in
  if selected = [] then begin
    Printf.eprintf "unknown experiment; use --list\n";
    exit 1
  end;
  let t0 = Unix.gettimeofday () in
  (* Full runs warm the cache in parallel: the standard (k_r, k_h) combos
     cover every figure's ConfMask pipelines. *)
  if !only = [] then
    Runs.prefetch
      (List.concat_map
         (fun id ->
           List.map
             (fun (k_r, k_h) -> (id, k_r, k_h))
             [ (6, 2); (6, 4); (2, 2); (10, 2); (6, 6) ])
         (ids ()));
  List.iter (fun (_, f) -> f ()) selected;
  Printf.printf "\n[bench completed in %.1fs]\n" (Unix.gettimeofday () -. t0)
