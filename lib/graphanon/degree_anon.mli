(** k-anonymization of degree sequences (Liu & Terzi, SIGMOD 2008).

    Given a degree sequence, compute a k-anonymous target sequence that
    only *increases* degrees — the variant ConfMask needs, because its
    topology anonymization may only add links, never remove them (§4.2).
    The dynamic program minimizes the total degree increase subject to
    every degree value being shared by at least [k] nodes. *)

val anonymize_sequence : k:int -> int list -> int list
(** [anonymize_sequence ~k degrees] returns the target degree for each
    input position (same order as the input). Every target is >= the
    corresponding input degree, and the multiset of targets is
    k-anonymous. Exactly [k] elements collapse to a single group at the
    maximum degree; the empty list maps to the empty list. Raises
    [Invalid_argument] if [k <= 0], or if [0 < length degrees < k] — a
    sequence shorter than [k] can never be k-anonymous, and silently
    returning the undersized single group would break the contract. *)

val is_k_anonymous : k:int -> int list -> bool
(** Whether every distinct value occurs at least [k] times (vacuously true
    for the empty list). *)

val total_increase : orig:int list -> target:int list -> int
