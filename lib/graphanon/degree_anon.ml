module Imap = Map.Make (Int)

let is_k_anonymous ~k degrees =
  let counts =
    List.fold_left
      (fun m d -> Imap.update d (function None -> Some 1 | Some n -> Some (n + 1)) m)
      Imap.empty degrees
  in
  Imap.for_all (fun _ n -> n >= k) counts

(* Dynamic program over the descending-sorted sequence: group cost of
   positions i..j (inclusive) is the cost of raising every degree in the
   group to the group's maximum (the first element, since sorted). Each
   group must have >= k members; optimal substructure as in Liu-Terzi. *)
let anonymize_sequence ~k degrees =
  if k <= 0 then invalid_arg "Degree_anon.anonymize_sequence: k <= 0";
  (* Fewer than k degrees can never form a size-k group: returning the
     single undersized group would silently break the k-anonymity
     contract, so refuse, consistently with the k <= 0 case. *)
  (match degrees with
  | [] -> ()
  | _ ->
      let n = List.length degrees in
      if n < k then
        invalid_arg
          (Printf.sprintf
             "Degree_anon.anonymize_sequence: %d degrees cannot be \
              %d-anonymous"
             n k));
  match degrees with
  | [] -> []
  | _ ->
      let indexed =
        List.mapi (fun i d -> (i, d)) degrees
        |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
        |> Array.of_list
      in
      let n = Array.length indexed in
      if n <= k then begin
        (* One group: everyone gets the maximum degree. *)
        let maxd = snd indexed.(0) in
        let result = Array.make n 0 in
        Array.iter (fun (i, _) -> result.(i) <- maxd) indexed;
        Array.to_list result
      end
      else begin
        let deg j = snd indexed.(j) in
        (* prefix.(j) = sum of degrees of positions 0..j-1 *)
        let prefix = Array.make (n + 1) 0 in
        for j = 0 to n - 1 do
          prefix.(j + 1) <- prefix.(j) + deg j
        done;
        let group_cost i j =
          (* raise positions i..j to deg i *)
          ((j - i + 1) * deg i) - (prefix.(j + 1) - prefix.(i))
        in
        (* dp.(j) = minimal cost to anonymize positions 0..j-1;
           choice.(j) = start of the last group. *)
        let dp = Array.make (n + 1) max_int in
        let choice = Array.make (n + 1) 0 in
        dp.(0) <- 0;
        for j = 1 to n do
          if j >= k then
            for i = max 0 (j - (2 * k) + 1) to j - k do
              if dp.(i) < max_int then begin
                let c = dp.(i) + group_cost i (j - 1) in
                if c < dp.(j) then begin
                  dp.(j) <- c;
                  choice.(j) <- i
                end
              end
            done
        done;
        let result = Array.make n 0 in
        let rec assign j =
          if j > 0 then begin
            let i = choice.(j) in
            let target = deg i in
            for pos = i to j - 1 do
              let orig_index, _ = indexed.(pos) in
              result.(orig_index) <- target
            done;
            assign i
          end
        in
        assign n;
        Array.to_list result
      end

let total_increase ~orig ~target =
  List.fold_left2 (fun acc o t -> acc + (t - o)) 0 orig target
