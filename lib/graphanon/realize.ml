open Netcore

let c_rounds = Telemetry.counter "graphanon.rounds"
let c_stuck = Telemetry.counter "graphanon.stuck"
let c_added = Telemetry.counter "graphanon.edges_added"

let one_attempt ?(allowed = fun _ _ -> true) ~rng ~k g =
  let n = Graph.num_nodes g in
  let added = ref [] in
  let add u v g =
    Telemetry.incr c_added;
    added := (u, v) :: !added;
    Graph.add_edge u v g
  in
  (* One matching pass: pair up deficient nodes greedily, largest
     deficiency first, random choice among allowed non-adjacent partners. *)
  let matching_pass ~respect_allowed g targets =
    let deficiency = Hashtbl.create 16 in
    List.iter
      (fun (v, t) ->
        let d = t - Graph.degree v g in
        if d > 0 then Hashtbl.replace deficiency v d)
      targets;
    let get v = Option.value ~default:0 (Hashtbl.find_opt deficiency v) in
    let dec v =
      let d = get v - 1 in
      if d <= 0 then Hashtbl.remove deficiency v else Hashtbl.replace deficiency v d
    in
    let rec loop g =
      let deficient =
        Hashtbl.fold (fun v d acc -> (v, d) :: acc) deficiency []
        |> List.sort (fun (a, da) (b, db) ->
               match Int.compare db da with 0 -> String.compare a b | c -> c)
      in
      match deficient with
      | [] | [ _ ] -> g
      | (v, _) :: rest ->
          let candidates =
            List.filter
              (fun (u, _) ->
                (not (Graph.mem_edge u v g))
                && ((not respect_allowed) || allowed u v))
              rest
          in
          if candidates = [] then begin
            (* No partner for the hardest node: drop it for this pass. *)
            Hashtbl.remove deficiency v;
            loop g
          end
          else begin
            let u, _ = Rng.pick rng candidates in
            dec u;
            dec v;
            loop (add u v g)
          end
    in
    loop g
  in
  (* Outer relaxation: recompute targets on current degrees until the
     graph is k-anonymous. Degrees are monotonically non-decreasing and
     bounded by n-1, so this terminates; the guard is belt and braces. *)
  let rec outer g round =
    Telemetry.incr c_rounds;
    if Gmetrics.is_k_degree_anonymous k g then g
    else if round > 4 * n + 8 then g
    else begin
      let nodes = Graph.nodes g in
      let degrees = List.map (fun v -> Graph.degree v g) nodes in
      let targets = Degree_anon.anonymize_sequence ~k degrees in
      let node_targets = List.combine nodes targets in
      let g' = matching_pass ~respect_allowed:true g node_targets in
      let g' =
        if Gmetrics.is_k_degree_anonymous k g' then g'
        else matching_pass ~respect_allowed:false g' node_targets
      in
      if Graph.num_edges g' = Graph.num_edges g then begin
        Telemetry.incr c_stuck;
        (* Stuck: the remaining deficient nodes are pairwise adjacent.
           Connect a uniformly random non-adjacent pair to shake the
           histogram, then retry. Drawn as [Rng.pick] over the (u, v)
           pairs with u < v in sorted-node order would — same count,
           same index, same pair — but by locating the index instead of
           materializing all O(n^2) candidates. *)
        let nodes = Array.of_list (Graph.nodes g') in
        let n_nodes = Array.length nodes in
        let total = (n_nodes * (n_nodes - 1) / 2) - Graph.num_edges g' in
        if total = 0 then g' (* complete graph: trivially anonymous *)
        else begin
          let i = Rng.int rng total in
          (* Walk u in sorted order, skipping each u's count of
             non-neighbors above it, then walk to the i-th such v. *)
          let rec locate pos i =
            let u = nodes.(pos) in
            let nbrs = Graph.neighbors u g' in
            let above = n_nodes - pos - 1 in
            let nbrs_above =
              Graph.Sset.cardinal
                (Graph.Sset.filter (fun v -> String.compare u v < 0) nbrs)
            in
            let count_u = above - nbrs_above in
            if i >= count_u then locate (pos + 1) (i - count_u)
            else
              let rec nth_v vpos i =
                let v = nodes.(vpos) in
                if Graph.Sset.mem v nbrs then nth_v (vpos + 1) i
                else if i = 0 then v
                else nth_v (vpos + 1) (i - 1)
              in
              (u, nth_v (pos + 1) i)
          in
          let u, v = locate 0 i in
          outer (add u v g') (round + 1)
        end
      end
      else outer g' (round + 1)
    end
  in
  let g' = outer g 0 in
  (g', List.rev !added)

let add_edges ?allowed ?(attempts = 3) ~rng ~k g =
  let n = Graph.num_nodes g in
  if n > 0 && k > n then
    invalid_arg
      (Printf.sprintf "Realize.add_edges: k = %d exceeds %d nodes" k n);
  (* The greedy matching is randomized and its edge count varies; keep the
     cheapest of a few attempts (the paper's utility metric counts every
     injected line). *)
  let rec best acc remaining =
    if remaining = 0 then acc
    else
      let candidate = one_attempt ?allowed ~rng:(Rng.split rng) ~k g in
      let acc =
        match acc with
        | Some (_, edges) when List.length edges <= List.length (snd candidate) -> acc
        | _ -> Some candidate
      in
      best acc (remaining - 1)
  in
  match best None (max 1 attempts) with
  | Some result -> result
  | None -> (g, [])
