(** Policy query language and differential verification engine.

    Where {!Spec} mines whole-dataplane policy sets, this module lets an
    operator (or a recipient of anonymized configurations — the Seagull
    consumer) ask targeted questions: four policy classes — the three
    property families of Plankton/Config2Spec (reachability, waypoint,
    isolation) plus load balancing — parsed from a small text or JSON
    policy format, evaluated against an extracted
    {!Routing.Dataplane.t}, and checked differentially on an original
    vs. anonymized network pair with a typed verdict and
    witness/counterexample paths per policy.

    Evaluation is per-policy table lookups on an already-extracted data
    plane, so the expensive part (simulation + FEC-collapsed trace
    extraction) is paid once per network, not per policy: verifying P
    policies costs O(classes) for the extraction plus O(P) lookups, not
    O(host-pairs × P). *)

type policy =
  | Reachability of string * string
      (** [Reachability (src, dst)]: at least one forwarding path *)
  | Waypoint of string * string * string
      (** [Waypoint (src, dst, w)]: [src] reaches [dst] and router [w]
          is on every path *)
  | Isolation of string * string
      (** [Isolation (src, dst)]: no forwarding path at all *)
  | Loadbalance of string * string * int
      (** [Loadbalance (src, dst, n)]: traffic spreads over at least
          [n] paths *)

val to_string : policy -> string
(** Canonical text form, one policy per line in a policy file:
    [reach(s, d)], [waypoint(s, d, w)], [isolation(s, d)],
    [loadbalance(s, d, n)]. {!Spec.policy_to_string} output parses back
    to the corresponding query policy. *)

val endpoints : policy -> string * string

val nodes : policy -> string list
(** Every node the policy references: endpoints plus the waypoint. *)

val map_names : (string -> string) -> policy -> policy
(** Rewrite every referenced node name (used to carry a policy across
    an anonymization's node correspondence). *)

val parse_policy : string -> (policy, string) result
(** One policy from its text form. Accepts the canonical [reach]
    spelling and the long [reachability] synonym; tolerates whitespace
    around names. *)

val parse : string -> (policy list, string) result
(** A whole policy file. Two formats, auto-detected:

    - text: one policy per line, [#] starts a comment, blank lines
      ignored (errors name the offending line number);
    - JSON (first non-blank character is ['[']): an array of objects
      [{"type": "reachability"|"waypoint"|"isolation"|"loadbalance",
      "src": S, "dst": D, "via": W?, "paths": N?}]. *)

(** {1 Evaluation} *)

type outcome = {
  holds : bool;
  witness : Routing.Dataplane.path list;
      (** paths supporting the policy when it holds (all delivered
          paths for reachability/load balance, the via-paths for
          waypoint); capped at {!max_evidence} *)
  counterexample : Routing.Dataplane.path list;
      (** paths refuting it when it does not (waypoint-missing paths,
          the delivered paths violating isolation, the insufficient
          path set for load balance); capped at {!max_evidence} *)
}

val max_evidence : int
(** Cap on recorded witness/counterexample paths (the verdict itself is
    computed from the full path set). *)

val eval : Routing.Dataplane.t -> policy -> outcome
(** Total: a node unknown to the data plane simply has no paths (so
    reachability fails and isolation holds). *)

(** {1 Differential verification} *)

type verdict =
  | Holds_both  (** holds on the original and the anonymized network *)
  | Lost  (** holds on the original only — anonymization broke it *)
  | Introduced  (** holds on the anonymized network only, over real nodes *)
  | Holds_neither  (** an operator policy that holds on neither side *)
  | Fake_only
      (** references a node that does not exist in the original network
          (e.g. a fake host); evaluated on the anonymized side only *)

val verdict_to_string : verdict -> string
(** ["holds_both"], ["lost"], ["introduced"], ["holds_neither"],
    ["fake_only"]. *)

type entry = {
  e_policy : policy;  (** in original-network names *)
  e_verdict : verdict;
  e_orig : outcome option;  (** [None] iff the verdict is [Fake_only] *)
  e_anon : outcome;  (** evaluated after {!map_names} through [rename] *)
}

val differential :
  ?rename:(string -> string) ->
  orig:Routing.Dataplane.t ->
  anon:Routing.Dataplane.t ->
  known:(string -> bool) ->
  policy list ->
  entry list
(** One entry per policy, in input order. Policies are written in
    original-network names; [rename] (default: identity) maps them into
    the anonymized namespace before the anonymized-side evaluation.
    [known] decides whether a referenced node exists in the original
    network — any unknown node makes the verdict [Fake_only]. *)

type summary = {
  total : int;
  holds_both : int;
  lost : int;
  introduced : int;
  holds_neither : int;
  fake_only : int;
  kept_fraction : float;
      (** |holds_both| / (|holds_both| + |lost|); 1.0 when no policy
          held on the original network *)
}

val summarize : entry list -> summary
