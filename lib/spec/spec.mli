(** Network specification mining, after Config2Spec (Birkner et al.,
    NSDI 2020).

    A specification is the set of policies that hold in a network's data
    plane. As in the ConfMask evaluation (Figure 9) we mine the three
    policy families Config2Spec reports — reachability, waypointing, and
    load balancing — and diff the specification sets of the original and
    anonymized networks. *)

type policy =
  | Reachability of string * string
      (** [Reachability (src, dst)]: at least one forwarding path *)
  | Waypoint of string * string * string
      (** [Waypoint (src, dst, w)]: router [w] on every path *)
  | Loadbalance of string * string * int
      (** [Loadbalance (src, dst, n)]: traffic spreads over [n] >= 2 paths *)

val policy_to_string : policy -> string

val endpoints : policy -> string * string

val mine : Routing.Dataplane.t -> policy list
(** Mine the specification of a simulated data plane (sorted,
    deduplicated). *)

val mine_paths : ((string * string) * string list list) list -> policy list
(** Same, from explicit per-pair path sets (used for the NetHide baseline,
    whose forwarding is defined by its virtual topology rather than by a
    simulation). *)

type diff = {
  kept : policy list;  (** policies of the original that still hold *)
  lost : policy list;  (** policies of the original that disappeared *)
  introduced : policy list;  (** new policies not in the original *)
}

val compare_specs : orig:policy list -> anon:policy list -> diff

val kept_fraction : diff -> float
(** |kept| / |orig|; 1.0 for an empty original specification. *)

module Query = Query
(** The policy query language and differential verification engine
    built on top of this miner. *)

val to_query : policy -> Query.policy
(** Lift a mined policy into the query language (load balancing becomes
    the at-least-[n]-paths query, which the mined exact count
    satisfies), so mined specifications can be re-verified with
    {!Query.eval} and checked differentially with
    {!Query.differential}. *)

val introduced_involving : diff -> hosts:string list -> policy list
(** Introduced policies whose endpoints are NOT both in [hosts] — i.e.
    policies that only exist because of fake hosts (the benign kind of
    introduced specification, §7.2). *)
