type policy =
  | Reachability of string * string
  | Waypoint of string * string * string
  | Loadbalance of string * string * int

let policy_to_string = function
  | Reachability (s, d) -> Printf.sprintf "reach(%s, %s)" s d
  | Waypoint (s, d, w) -> Printf.sprintf "waypoint(%s, %s, %s)" s d w
  | Loadbalance (s, d, n) -> Printf.sprintf "loadbalance(%s, %s, %d)" s d n

let endpoints = function
  | Reachability (s, d) | Waypoint (s, d, _) | Loadbalance (s, d, _) -> (s, d)

(* Interior routers shared by every path of the pair. *)
let common_waypoints paths =
  let interior p =
    match p with
    | _ :: rest when rest <> [] -> List.filteri (fun i _ -> i < List.length rest - 1) rest
    | _ -> []
  in
  match List.map interior paths with
  | [] -> []
  | first :: others ->
      List.filter (fun w -> List.for_all (List.mem w) others) first
      |> List.sort_uniq String.compare

let policies_of_pair (s, d) paths =
  if paths = [] then []
  else
    Reachability (s, d)
    :: (List.map (fun w -> Waypoint (s, d, w)) (common_waypoints paths)
       @ if List.length paths >= 2 then [ Loadbalance (s, d, List.length paths) ] else [])

let mine_paths pairs =
  List.concat_map (fun (pair, paths) -> policies_of_pair pair paths) pairs
  |> List.sort_uniq compare

let mine dp = mine_paths (Routing.Dataplane.all_delivered dp)

type diff = {
  kept : policy list;
  lost : policy list;
  introduced : policy list;
}

module Pset = Set.Make (struct
  type t = policy

  let compare = compare
end)

let compare_specs ~orig ~anon =
  let anon_set = Pset.of_list anon in
  let orig_set = Pset.of_list orig in
  {
    kept = Pset.elements (Pset.inter orig_set anon_set);
    lost = Pset.elements (Pset.diff orig_set anon_set);
    introduced = Pset.elements (Pset.diff anon_set orig_set);
  }

let kept_fraction d =
  let total = List.length d.kept + List.length d.lost in
  if total = 0 then 1.0 else float_of_int (List.length d.kept) /. float_of_int total

module Query = Query

let to_query = function
  | Reachability (s, d) -> Query.Reachability (s, d)
  | Waypoint (s, d, w) -> Query.Waypoint (s, d, w)
  | Loadbalance (s, d, n) -> Query.Loadbalance (s, d, n)

let introduced_involving d ~hosts =
  List.filter
    (fun p ->
      let s, dst = endpoints p in
      not (List.mem s hosts && List.mem dst hosts))
    d.introduced
