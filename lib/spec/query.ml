type policy =
  | Reachability of string * string
  | Waypoint of string * string * string
  | Isolation of string * string
  | Loadbalance of string * string * int

let to_string = function
  | Reachability (s, d) -> Printf.sprintf "reach(%s, %s)" s d
  | Waypoint (s, d, w) -> Printf.sprintf "waypoint(%s, %s, %s)" s d w
  | Isolation (s, d) -> Printf.sprintf "isolation(%s, %s)" s d
  | Loadbalance (s, d, n) -> Printf.sprintf "loadbalance(%s, %s, %d)" s d n

let endpoints = function
  | Reachability (s, d) | Waypoint (s, d, _) | Isolation (s, d)
  | Loadbalance (s, d, _) ->
      (s, d)

let nodes = function
  | Reachability (s, d) | Isolation (s, d) | Loadbalance (s, d, _) -> [ s; d ]
  | Waypoint (s, d, w) -> [ s; d; w ]

let map_names f = function
  | Reachability (s, d) -> Reachability (f s, f d)
  | Waypoint (s, d, w) -> Waypoint (f s, f d, f w)
  | Isolation (s, d) -> Isolation (f s, f d)
  | Loadbalance (s, d, n) -> Loadbalance (f s, f d, n)

(* ---- parsing ---- *)

let trim = String.trim

(* A node name: anything the text form cannot confuse with its own
   syntax. The emitters only produce [A-Za-z0-9_-]+ names, but configs
   from disk may carry more; only the delimiters are reserved. *)
let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with
         | '(' | ')' | ',' | '#' -> false
         | c when c <= ' ' -> false
         | _ -> true)
       s

let parse_policy line =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let s = trim line in
  match String.index_opt s '(' with
  | None -> err "expected KIND(ARGS): %s" s
  | Some i ->
      if String.length s = 0 || s.[String.length s - 1] <> ')' then
        err "missing closing parenthesis: %s" s
      else
        let kind = trim (String.sub s 0 i) in
        let args =
          String.sub s (i + 1) (String.length s - i - 2)
          |> String.split_on_char ',' |> List.map trim
        in
        let name what n =
          if valid_name n then Ok n else err "bad %s name %S" what n
        in
        let ( let* ) = Result.bind in
        let arity n =
          if List.length args = n then Ok ()
          else err "%s takes %d arguments, got %d" kind n (List.length args)
        in
        let two mk =
          let* () = arity 2 in
          let* s = name "source" (List.nth args 0) in
          let* d = name "destination" (List.nth args 1) in
          Ok (mk s d)
        in
        match String.lowercase_ascii kind with
        | "reach" | "reachability" -> two (fun s d -> Reachability (s, d))
        | "isolation" | "isolated" -> two (fun s d -> Isolation (s, d))
        | "waypoint" ->
            let* () = arity 3 in
            let* s = name "source" (List.nth args 0) in
            let* d = name "destination" (List.nth args 1) in
            let* w = name "waypoint" (List.nth args 2) in
            Ok (Waypoint (s, d, w))
        | "loadbalance" -> (
            let* () = arity 3 in
            let* s = name "source" (List.nth args 0) in
            let* d = name "destination" (List.nth args 1) in
            match int_of_string_opt (List.nth args 2) with
            | Some n when n >= 1 -> Ok (Loadbalance (s, d, n))
            | Some n -> err "loadbalance path count must be >= 1, got %d" n
            | None -> err "bad loadbalance path count %S" (List.nth args 2))
        | k -> err "unknown policy kind %S" k

let parse_text text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        if trim line = "" then go (n + 1) acc rest
        else
          match parse_policy line with
          | Ok p -> go (n + 1) (p :: acc) rest
          | Error m -> Error (Printf.sprintf "line %d: %s" n m))
  in
  go 1 [] lines

let parse_json text =
  let module J = Netcore.Json in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match J.parse text with
  | Error m -> err "bad JSON: %s" m
  | Ok (J.Arr items) ->
      let policy_of i item =
        let str k = Option.bind (J.member k item) J.str in
        let get k =
          match str k with
          | Some v when valid_name v -> Ok v
          | Some v -> err "policy %d: bad %s name %S" i k v
          | None -> err "policy %d: missing field %S" i k
        in
        let ( let* ) = Result.bind in
        let* s = get "src" in
        let* d = get "dst" in
        match str "type" with
        | Some ("reach" | "reachability") -> Ok (Reachability (s, d))
        | Some ("isolation" | "isolated") -> Ok (Isolation (s, d))
        | Some "waypoint" ->
            let* w = get "via" in
            Ok (Waypoint (s, d, w))
        | Some "loadbalance" -> (
            match Option.bind (J.member "paths" item) J.int with
            | Some n when n >= 1 -> Ok (Loadbalance (s, d, n))
            | Some n -> err "policy %d: paths must be >= 1, got %d" i n
            | None -> err "policy %d: missing integer field \"paths\"" i)
        | Some t -> err "policy %d: unknown type %S" i t
        | None -> err "policy %d: missing field \"type\"" i
      in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match policy_of i item with
            | Ok p -> go (i + 1) (p :: acc) rest
            | Error _ as e -> e)
      in
      go 0 [] items
  | Ok _ -> err "a JSON policy file must be an array of policy objects"

let parse text =
  let rec first i =
    if i >= String.length text then None
    else if text.[i] <= ' ' then first (i + 1)
    else Some text.[i]
  in
  match first 0 with Some '[' -> parse_json text | _ -> parse_text text

(* ---- evaluation ---- *)

type outcome = {
  holds : bool;
  witness : Routing.Dataplane.path list;
  counterexample : Routing.Dataplane.path list;
}

let max_evidence = 8

let cap paths =
  List.filteri (fun i _ -> i < max_evidence) paths

(* Interior routers of [h_s; r_1; ...; r_n; h_d]. *)
let interior = function
  | _ :: (_ :: _ as rest) -> List.filteri (fun i _ -> i < List.length rest - 1) rest
  | _ -> []

let eval dp p =
  let s, d = endpoints p in
  let paths = Routing.Dataplane.paths dp ~src:s ~dst:d in
  match p with
  | Reachability _ ->
      { holds = paths <> []; witness = cap paths; counterexample = [] }
  | Isolation _ -> { holds = paths = []; witness = []; counterexample = cap paths }
  | Waypoint (_, _, w) ->
      let missing = List.filter (fun p -> not (List.mem w (interior p))) paths in
      if paths <> [] && missing = [] then
        { holds = true; witness = cap paths; counterexample = [] }
      else { holds = false; witness = []; counterexample = cap missing }
  | Loadbalance (_, _, n) ->
      if List.length paths >= n then
        { holds = true; witness = cap paths; counterexample = [] }
      else { holds = false; witness = []; counterexample = cap paths }

(* ---- differential verification ---- *)

type verdict = Holds_both | Lost | Introduced | Holds_neither | Fake_only

let verdict_to_string = function
  | Holds_both -> "holds_both"
  | Lost -> "lost"
  | Introduced -> "introduced"
  | Holds_neither -> "holds_neither"
  | Fake_only -> "fake_only"

type entry = {
  e_policy : policy;
  e_verdict : verdict;
  e_orig : outcome option;
  e_anon : outcome;
}

let differential ?(rename = fun n -> n) ~orig ~anon ~known policies =
  List.map
    (fun p ->
      let e_anon = eval anon (map_names rename p) in
      if List.for_all known (nodes p) then
        let e_orig = eval orig p in
        let e_verdict =
          match (e_orig.holds, e_anon.holds) with
          | true, true -> Holds_both
          | true, false -> Lost
          | false, true -> Introduced
          | false, false -> Holds_neither
        in
        { e_policy = p; e_verdict; e_orig = Some e_orig; e_anon }
      else { e_policy = p; e_verdict = Fake_only; e_orig = None; e_anon })
    policies

type summary = {
  total : int;
  holds_both : int;
  lost : int;
  introduced : int;
  holds_neither : int;
  fake_only : int;
  kept_fraction : float;
}

let summarize entries =
  let count v = List.length (List.filter (fun e -> e.e_verdict = v) entries) in
  let holds_both = count Holds_both and lost = count Lost in
  {
    total = List.length entries;
    holds_both;
    lost;
    introduced = count Introduced;
    holds_neither = count Holds_neither;
    fake_only = count Fake_only;
    kept_fraction =
      (if holds_both + lost = 0 then 1.0
       else float_of_int holds_both /. float_of_int (holds_both + lost));
  }
