open Netcore

type failure = {
  f_seed : int;
  f_oracle : string;
  f_message : string;
  f_spec : Netgen.Netspec.t;
  f_minimized : Netgen.Netspec.t option;
  f_shrink_steps : int;
}

type outcome = { cases : int; failures : failure list }

let cases_c = Telemetry.counter "crucible.cases"
let failures_c = Telemetry.counter "crucible.failures"

let check_spec ~oracles ~seed spec =
  List.filter_map
    (fun (o : Oracle.t) ->
      match Oracle.run o ~seed spec with
      | Oracle.Pass -> None
      | Oracle.Fail m ->
          Telemetry.incr failures_c;
          Some
            {
              f_seed = seed;
              f_oracle = o.name;
              f_message = m;
              f_spec = spec;
              f_minimized = None;
              f_shrink_steps = 0;
            })
    oracles

let run_seed ~oracles ~gen seed =
  Telemetry.incr cases_c;
  check_spec ~oracles ~seed (Gen.spec ~params:gen ~seed ())

let minimize ~oracles f =
  match List.find_opt (fun (o : Oracle.t) -> o.name = f.f_oracle) oracles with
  | None -> f
  | Some o ->
      let still_fails s =
        match Oracle.run o ~seed:f.f_seed s with
        | Oracle.Fail _ -> true
        | Oracle.Pass -> false
      in
      let minimized, steps = Shrink.spec ~still_fails f.f_spec in
      { f with f_minimized = Some minimized; f_shrink_steps = steps }

let save_failure ~dir f =
  ignore
    (Corpus.save ~dir
       {
         Corpus.c_name = Printf.sprintf "seed%d-%s" f.f_seed f.f_oracle;
         c_seed = f.f_seed;
         c_oracle = Some f.f_oracle;
         c_spec = Option.value ~default:f.f_spec f.f_minimized;
       })

let run ?(minimize_failures = false) ?corpus_dir ~oracles ~gen ~seed ~cases () =
  let failures = ref [] in
  for i = 0 to cases - 1 do
    let fs = run_seed ~oracles ~gen (seed + i) in
    let fs = if minimize_failures then List.map (minimize ~oracles) fs else fs in
    Option.iter (fun dir -> List.iter (save_failure ~dir) fs) corpus_dir;
    failures := !failures @ fs
  done;
  { cases; failures = !failures }

let replay ~oracles (case : Corpus.case) =
  Telemetry.incr cases_c;
  let oracles =
    match case.c_oracle with
    | None -> oracles
    | Some name -> ( match Oracle.find name with Ok o -> [ o ] | Error m -> failwith m)
  in
  check_spec ~oracles ~seed:case.c_seed case.c_spec
