open Netcore
module Smap = Routing.Device.Smap

type verdict = Pass | Fail of string

type t = {
  name : string;
  doc : string;
  check : seed:int -> Netgen.Netspec.t -> verdict;
}

let oracle_runs = Telemetry.counter "crucible.oracle_runs"

let fibs_equal a b = Smap.equal ( = ) a b

let fail fmt = Printf.ksprintf (fun m -> Fail m) fmt

(* -------------------- differential FIB -------------------- *)

let traces_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k (t : Routing.Dataplane.trace) acc ->
         acc && Hashtbl.find_opt b k = Some t)
       a true

(* Compare the compiled kernels (interned CSR Dijkstra, LPM trie,
   table-driven traceroute) against the legacy map-based ones on one
   config list: whole-simulation FIBs, per-router trie-vs-probe lookups
   on every host address, and the full data plane, which must agree
   trace-for-trace. [compiled] short-circuits the compiled-side
   simulation when the caller already ran one. *)
let kernel_divergence ?compiled configs =
  let compiled_snap =
    match compiled with
    | Some s when Routing.Compiled.use_compiled () -> s
    | _ ->
        Routing.Compiled.with_kernels `Compiled (fun () ->
            Routing.Simulate.run_exn configs)
  in
  let legacy_snap =
    Routing.Compiled.with_kernels `Legacy (fun () ->
        Routing.Simulate.run_exn configs)
  in
  if not (fibs_equal compiled_snap.fibs legacy_snap.fibs) then Some "FIBs"
  else
    let addrs =
      Smap.fold
        (fun _ (h : Routing.Device.host) acc -> h.h_addr :: acc)
        compiled_snap.net.hosts []
    in
    let lpm_diverges =
      Smap.exists
        (fun _ fib ->
          let lpm = Routing.Fib.compile fib in
          List.exists
            (fun a -> Routing.Fib.lookup fib a <> Routing.Fib.lookup_lpm lpm a)
            addrs)
        compiled_snap.fibs
    in
    if lpm_diverges then Some "LPM lookups"
    else
      let dp_compiled =
        Routing.Compiled.with_kernels `Compiled (fun () ->
            Routing.Simulate.dataplane compiled_snap)
      in
      let dp_legacy =
        Routing.Compiled.with_kernels `Legacy (fun () ->
            Routing.Simulate.dataplane legacy_snap)
      in
      if not (traces_equal dp_compiled dp_legacy) then Some "data-plane traces"
      else
        (* FEC collapse must be invisible: the collapsed extraction
           (classify, trace representatives, fan out) and the plain
           per-pair extraction must agree trace for trace. When the
           process already runs with CONFMASK_FEC=off both sides take
           the full path and the check is vacuous. *)
        let dp_full =
          Routing.Fec.with_mode `Off (fun () ->
              Routing.Compiled.with_kernels `Compiled (fun () ->
                  Routing.Simulate.dataplane compiled_snap))
        in
        if not (traces_equal dp_compiled dp_full) then
          Some "FEC-collapsed vs full extraction"
        else None

let diff_fib_check ~seed spec =
  let configs0 = Netgen.Emit.emit spec in
  (* Single- vs multi-domain pool: parallelism must not change results. *)
  let pool1 = Pool.create ~jobs:1 () in
  let seq = Routing.Simulate.run_exn ~pool:pool1 configs0 in
  Pool.shutdown pool1;
  let par = Routing.Simulate.run_exn configs0 in
  if not (fibs_equal seq.fibs par.fibs) then
    Fail "sequential and parallel simulation disagree"
  else
    (* Sharded SPF selection folds per-worker chunks back in a fixed
       order; an explicit oversubscribed pool must still be
       bit-identical to the single-job run. *)
    let par4 =
      let pool4 = Pool.create ~jobs:4 () in
      let s = Routing.Simulate.run_exn ~pool:pool4 configs0 in
      Pool.shutdown pool4;
      s
    in
    if not (fibs_equal seq.fibs par4.fibs) then
      Fail "jobs-4 sharded simulation diverges from sequential"
    else begin
    let eng = ref (Routing.Engine.of_configs_exn configs0) in
    if not (fibs_equal (Routing.Engine.fibs !eng) par.fibs) then
      Fail "engine initial build diverges from from-scratch simulation"
    else begin
      match kernel_divergence ~compiled:par configs0 with
      | Some what ->
          fail "legacy vs compiled kernels diverge on %s (initial build)" what
      | None ->
      (* Edit walk covering every edit family the anonymization pipeline
         issues — deny filters and their rollback (the fixpoints),
         interface additions (fake hosts and fake links), and link-cost
         rewrites (the cost rule of topology anonymization) — each step
         re-checked against a fresh simulation. *)
      let rng = Rng.create (seed lxor 0x2c9277b5) in
      let configs = ref configs0 in
      let denies = ref [] in
      let verdict = ref Pass in
      let step = ref 0 in
      while !verdict = Pass && !step < 4 do
        incr step;
        let net = Routing.Engine.network !eng in
        let hps = List.map fst (Routing.Simulate.host_prefixes net) in
        let adj_routers =
          List.filter (fun (_, adjs) -> adjs <> []) (Smap.bindings net.adjs)
        in
        let kind =
          let k = Rng.int rng 10 in
          if k < 4 then `Deny
          else if k < 6 then if !denies = [] then `Deny else `Undeny
          else if k < 8 then `AddIface
          else `Cost
        in
        (match kind with
        | `Deny -> (
            match (adj_routers, hps) with
            | [], _ | _, [] -> ()
            | _ -> (
                let r, adjs = Rng.pick rng adj_routers in
                let a = Rng.pick rng adjs in
                let hp = Rng.pick rng hps in
                match Confmask.Attach.point net r a.Routing.Device.a_to with
                | None -> ()
                | Some at ->
                    configs :=
                      Confmask.Edits.update !configs r (fun c ->
                          Confmask.Attach.deny_at c at hp);
                    denies := (r, at, hp) :: !denies))
        | `Undeny ->
            let ((r, at, hp) as d) = Rng.pick rng !denies in
            configs :=
              Confmask.Edits.update !configs r (fun c ->
                  Confmask.Attach.undeny_at c at hp);
            denies := List.filter (fun x -> x <> d) !denies
        | `AddIface ->
            let routers =
              List.map fst (Smap.bindings net.Routing.Device.routers)
            in
            let r = Rng.pick rng routers in
            let alloc =
              Prefix.alloc_create
                ~avoid:(Confmask.Edits.used_prefixes !configs)
                ()
            in
            let subnet = Prefix.alloc_fresh alloc ~len:24 in
            let addr = Prefix.host subnet 1 in
            configs :=
              Confmask.Edits.update !configs r (fun c ->
                  let name = Confmask.Edits.fresh_iface_name c in
                  let c =
                    Confmask.Edits.add_interface c ~name ~addr ~plen:24
                      ~desc:"crucible" ()
                  in
                  Confmask.Edits.add_igp_network c subnet)
        | `Cost -> (
            match adj_routers with
            | [] -> ()
            | _ ->
                let r, adjs = Rng.pick rng adj_routers in
                let a = Rng.pick rng adjs in
                let iface = a.Routing.Device.a_out_iface.ifc_name in
                let cost = 1 + Rng.int rng 20 in
                configs :=
                  Confmask.Edits.update !configs r (fun c ->
                      {
                        c with
                        interfaces =
                          List.map
                            (fun (i : Configlang.Ast.interface) ->
                              if String.equal i.if_name iface then
                                { i with if_cost = Some cost }
                              else i)
                            c.interfaces;
                      })));
        eng := Routing.Engine.apply_edit_exn !eng !configs;
        let fresh = Routing.Simulate.run_exn !configs in
        if not (fibs_equal (Routing.Engine.fibs !eng) fresh.fibs) then
          verdict := fail "incremental engine diverges from scratch after edit %d" !step
        else begin
          match kernel_divergence ~compiled:fresh !configs with
          | Some what ->
              verdict :=
                fail "legacy vs compiled kernels diverge on %s after edit %d"
                  what !step
          | None -> ()
        end
      done;
      !verdict
    end
  end

let diff_fib =
  {
    name = "diff_fib";
    doc =
      "engine vs from-scratch vs pool-parallel (jobs 1 and 4) vs \
       legacy-kernel FIBs and traces, FEC-collapsed vs full extraction, \
       with an edit walk";
    check = diff_fib_check;
  }

(* -------------------- workflow invariants -------------------- *)

(* Small ks keep per-case cost low while still forcing fake edges and
   fake hosts on every generated net. *)
let wf_params ~seed =
  { Confmask.Workflow.default_params with k_r = 2; k_h = 2; seed; pii = false }

let workflow_check ~seed spec =
  let configs = Netgen.Emit.emit spec in
  let params = wf_params ~seed in
  match Confmask.Workflow.run ~params configs with
  | Error m -> fail "workflow error: %s" m
  | Ok r ->
      let g = Routing.Device.router_graph r.anon_snapshot.net in
      if not (Gmetrics.is_k_degree_anonymous params.k_r g) then
        fail "anonymized topology is not %d-degree anonymous (min group %d)"
          params.k_r (Gmetrics.min_degree_group g)
      else if not (Confmask.Workflow.functional_equivalence r) then
        Fail "functional equivalence violated (routes or preserved elements)"
      else begin
        (* Determinism: a second run under the same seed must be
           byte-identical, parallel pool and all. *)
        match Confmask.Workflow.run ~params configs with
        | Error m -> fail "workflow error on re-run: %s" m
        | Ok r2 ->
            if Confmask.Workflow.anon_texts r <> Confmask.Workflow.anon_texts r2
            then Fail "output not byte-identical under a fixed seed"
            else Pass
      end

let workflow =
  {
    name = "workflow";
    doc = "k-degree anonymity, functional equivalence, seed determinism";
    check = workflow_check;
  }

(* -------------------- differential anonfix -------------------- *)

(* The anonymization fixpoint is itself an edit walk — every iteration of
   [Route_equiv.fix] and [Route_anon]'s repair loop applies a filter
   batch and re-simulates. Replaying the whole walk in both fixpoint
   modes (legacy full-recompute per iteration vs engine-delta scans with
   cached parallel reachability walks) must produce byte-identical
   configurations and identical iteration/filter counts. *)
let anonfix_check ~seed spec =
  let configs = Netgen.Emit.emit spec in
  let params = wf_params ~seed in
  let in_mode m =
    Confmask.Anonfix.with_mode m (fun () -> Confmask.Workflow.run ~params configs)
  in
  match (in_mode `Legacy, in_mode `Incremental) with
  | Error m, Error m' when String.equal m m' -> Pass
  | Error m, Error m' ->
      fail "modes fail differently: legacy %S vs incremental %S" m m'
  | Error m, Ok _ -> fail "legacy fails (%s) but incremental succeeds" m
  | Ok _, Error m -> fail "incremental fails (%s) but legacy succeeds" m
  | Ok l, Ok i ->
      if Confmask.Workflow.anon_texts l <> Confmask.Workflow.anon_texts i then
        Fail "anonymized outputs differ between legacy and incremental anonfix"
      else if
        l.equiv_iterations <> i.equiv_iterations
        || l.equiv_filters <> i.equiv_filters
      then
        fail "equivalence loop diverged: legacy %d iters / %d filters, incremental %d / %d"
          l.equiv_iterations l.equiv_filters i.equiv_iterations i.equiv_filters
      else if
        l.anon_filters_added <> i.anon_filters_added
        || l.anon_filters_removed <> i.anon_filters_removed
      then
        fail "repair loop diverged: legacy +%d/-%d filters, incremental +%d/-%d"
          l.anon_filters_added l.anon_filters_removed i.anon_filters_added
          i.anon_filters_removed
      else Pass

let anonfix =
  {
    name = "anonfix";
    doc = "legacy vs incremental anonymization fixpoint byte-identity";
    check = anonfix_check;
  }

(* -------------------- metamorphic: router renaming -------------------- *)

let rename_check ~seed spec =
  let rng = Rng.create (seed lxor 0x7ed55d15) in
  let perm = Rng.shuffle rng spec.Netgen.Netspec.routers in
  let map = Hashtbl.create 16 in
  List.iter2 (fun a b -> Hashtbl.replace map a b) spec.routers perm;
  let rn x = Option.value ~default:x (Hashtbl.find_opt map x) in
  (* Same declaration order, new labels: the emitter numbers subnets by
     position, so addresses — and hence path costs and tie-breaks — are
     identical and the FIBs must be equal up to the renaming. *)
  let spec' =
    Netgen.Netspec.v ~name:spec.name
      ~asn:(List.map (fun (r, a) -> (rn r, a)) spec.asn)
      ~igp:spec.igp
      ~routers:(List.map rn spec.routers)
      ~links:(List.map (fun (u, v, c) -> (rn u, rn v, c)) spec.links)
      ~hosts:(List.map (fun (h, r) -> (h, rn r)) spec.hosts)
      ()
  in
  let routes s =
    Routing.Simulate.host_routes (Routing.Simulate.run_exn (Netgen.Emit.emit s))
  in
  let canon rows =
    List.sort compare
      (List.map
         (fun (r, p, nhs) -> (r, Prefix.to_string p, List.sort compare nhs))
         rows)
  in
  let renamed =
    canon (List.map (fun (r, p, nhs) -> (rn r, p, List.map rn nhs)) (routes spec))
  in
  if renamed <> canon (routes spec') then
    Fail "router renaming changed the FIB structure"
  else Pass

let rename =
  {
    name = "rename";
    doc = "permuting router names permutes but does not change the FIBs";
    check = rename_check;
  }

(* -------------------- metamorphic: re-anonymization -------------------- *)

let reanon_check ~seed spec =
  let params = wf_params ~seed in
  match Confmask.Workflow.run ~params (Netgen.Emit.emit spec) with
  | Error m -> fail "workflow error: %s" m
  | Ok r1 -> (
      match
        Confmask.Workflow.run
          ~params:{ params with seed = params.seed + 1 }
          r1.anon_configs
      with
      | Error m -> fail "re-anonymization error: %s" m
      | Ok r2 ->
          let g = Routing.Device.router_graph r2.anon_snapshot.net in
          if not (Gmetrics.is_k_degree_anonymous params.k_r g) then
            fail "re-anonymizing lost k-degree anonymity (min group %d)"
              (Gmetrics.min_degree_group g)
          else Pass)

let reanon =
  {
    name = "reanon";
    doc = "re-anonymizing an anonymized network keeps k-degree anonymity";
    check = reanon_check;
  }

(* -------------------- PII scrub -------------------- *)

(* Kept in sync with [Pii.Scrub.sensitive_keywords], including the
   hyphen-compound rule: a token is sensitive when it equals a keyword
   or extends one with a hyphen (key-string, community-map, ...). *)
let sensitive_keywords =
  [ "password"; "secret"; "community"; "key"; "key-string"; "md5" ]

let is_sensitive_token tok =
  let tok = String.lowercase_ascii tok in
  List.exists
    (fun kw ->
      String.equal tok kw
      || (String.length tok > String.length kw
          && String.sub tok 0 (String.length kw + 1) = kw ^ "-"))
    sensitive_keywords

(* The secret material of a config text: every token following a
   sensitive keyword on its line. Tokens of fewer than 6 characters
   (encryption-type digits, the keyword [ro], ...) are too generic to
   assert absence of. *)
let secrets_of_text text =
  String.split_on_char '\n' text
  |> List.concat_map (fun line ->
         let tokens =
           String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
         in
         let rec after = function
           | [] -> []
           | tok :: rest -> if is_sensitive_token tok then rest else after rest
         in
         after tokens)
  |> List.filter (fun s -> String.length s >= 6)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  nl > 0 && nl <= hl
  && (let found = ref false in
      for i = 0 to hl - nl do
        if (not !found) && String.sub hay i nl = needle then found := true
      done;
      !found)

let scrub_check ~seed spec =
  let configs = Netgen.Emit.emit spec in
  let params = { (wf_params ~seed) with pii = true } in
  match Confmask.Workflow.run ~params configs with
  | Error m -> fail "workflow error: %s" m
  | Ok r ->
      let anon = String.concat "\n" (List.map snd (Confmask.Workflow.anon_texts r)) in
      let secrets =
        List.concat_map
          (fun c -> secrets_of_text (Configlang.Printer.to_string c))
          configs
      in
      let leaked = List.find_opt (fun s -> contains ~needle:s anon) secrets in
      let orig_names = spec.Netgen.Netspec.routers @ List.map fst spec.hosts in
      let name_leak = List.find_opt (fun n -> contains ~needle:n anon) orig_names in
      (match (leaked, name_leak) with
      | Some s, _ -> fail "sensitive token %S survived the scrub" s
      | None, Some n -> fail "original device name %S survived the scrub" n
      | None, None -> Pass)

let scrub =
  {
    name = "scrub";
    doc = "no sensitive token or original device name survives the PII add-on";
    check = scrub_check;
  }

(* -------------------- metamorphic: policy transfer -------------------- *)

module Query = Spec.Query

(* The recipient's view of functional equivalence: every policy mined
   from the original network (reachability, waypoints, load-balance
   width — all between real nodes, all holding on the original by
   construction) must still hold on the anonymized network. Fake
   elements may add capacity but must never break reachability, divert
   traffic off its waypoints, or narrow a load-balanced pair. A [Lost]
   verdict is the interesting failure; any [fake_only] / [introduced] /
   [holds_neither] verdict would mean the differential checker itself
   mis-handled a mined-on-original policy, so those fail too, named
   distinctly. A single-host net mines an empty specification and
   passes vacuously. *)
let policy_transfer_check ~seed spec =
  let params = wf_params ~seed in
  match Confmask.Workflow.run ~params (Netgen.Emit.emit spec) with
  | Error m -> fail "workflow error: %s" m
  | Ok r -> (
      let v = Confmask.Verify.of_report r in
      match
        List.find_opt
          (fun (e : Query.entry) -> e.e_verdict <> Query.Holds_both)
          v.entries
      with
      | None -> Pass
      | Some e ->
          fail "mined policy %s is %s after anonymization"
            (Query.to_string e.e_policy)
            (Query.verdict_to_string e.e_verdict))

let policy_transfer =
  {
    name = "policy_transfer";
    doc =
      "every policy mined from the original network (reach, waypoint, \
       load-balance) still holds on the anonymized one";
    check = policy_transfer_check;
  }

(* -------------------- red-team security budget -------------------- *)

(* Run the de-anonymization attack suite against a PII-scrubbed workflow
   output and assert the guaranteed parts of the security budget. Only
   invariants that hold on *every* generated net are checked — the
   re-identification and filter-pattern rates are measurements, not
   bounds (tiny nets legitimately score high on them; see EXPERIMENTS.md
   known deviations):

   - all precision/recall values land in [0, 1];
   - a planted legacy small-int key is recovered by the brute force
     (recall 1) and a full 64-bit key is not (recall 0) — the measured
     form of the key-width bugfix;
   - the prefix-structure attack scores recall exactly 1 against the
     Crypto-PAn-style map (hierarchy survival is total by design);
   - top-5 re-identification rate is at least top-1;
   - the suite is deterministic: scoring the same report twice yields a
     byte-identical record. *)
let deanon_key_range = 4096

let deanon_budget_check ~seed spec =
  let configs = Netgen.Emit.emit spec in
  let weak_seed = seed land (deanon_key_range - 1) in
  let strong_key =
    match
      Pii.Pan.key_of_string
        (Printf.sprintf "0x%08x5eed5eed" (seed land 0x7fffffff))
    with
    | Ok k -> k
    | Error m -> failwith m
  in
  let params key =
    { (wf_params ~seed) with pii = true; pii_key = Some key }
  in
  let attack name scores =
    List.find
      (fun (s : Redteam.Attack.score) -> String.equal s.attack name)
      scores
  in
  match Confmask.Workflow.run ~params:(params (Pii.Pan.key_of_int weak_seed)) configs with
  | Error m -> fail "workflow error: %s" m
  | Ok r -> (
      let scores = Confmask.Audit.of_report ~key_range:deanon_key_range r in
      let out_of_range (s : Redteam.Attack.score) =
        s.precision < 0.0 || s.precision > 1.0 || s.recall < 0.0
        || s.recall > 1.0
      in
      match List.find_opt out_of_range scores with
      | Some s ->
          fail "attack %s scored outside [0,1] (p=%f r=%f)" s.attack
            s.precision s.recall
      | None ->
          let kb = attack "key_bruteforce" scores in
          let ps = attack "prefix_structure" scores in
          let rid = attack "degree_reid" scores in
          let top5 =
            Option.value ~default:0.0 (List.assoc_opt "top5_rate" rid.detail)
          in
          if kb.recall <> 1.0 then
            fail "planted weak key (seed %d) not recovered (recall %f)"
              weak_seed kb.recall
          else if ps.recall <> 1.0 then
            fail "prefix hierarchy survival %f <> 1 under the Pan map"
              ps.recall
          else if top5 +. 1e-9 < rid.recall then
            fail "top-5 re-id rate %f below top-1 %f" top5 rid.recall
          else if
            Confmask.Audit.record_json scores
            <> Confmask.Audit.record_json
                 (Confmask.Audit.of_report ~key_range:deanon_key_range r)
          then Fail "attack suite is not deterministic on the same report"
          else
            (* Same net under a full-width key: the seed-range scan must
               come back empty-handed. *)
            match Confmask.Workflow.run ~params:(params strong_key) configs with
            | Error m -> fail "workflow error (64-bit key): %s" m
            | Ok r2 ->
                let kb2 =
                  attack "key_bruteforce"
                    (Confmask.Audit.of_report ~key_range:deanon_key_range r2)
                in
                if kb2.recall <> 0.0 then
                  fail "64-bit key recovered by a %d-seed scan (recall %f)"
                    deanon_key_range kb2.recall
                else Pass)

let deanon_budget =
  {
    name = "deanon_budget";
    doc =
      "red-team attack scores stay within the guaranteed budget: weak \
       keys recovered, 64-bit keys not, Pan hierarchy survival 1, \
       deterministic scoring";
    check = deanon_budget_check;
  }

(* -------------------- registry -------------------- *)

let all =
  [
    diff_fib;
    workflow;
    anonfix;
    rename;
    scrub;
    reanon;
    policy_transfer;
    deanon_budget;
  ]

let find name =
  match List.find_opt (fun o -> o.name = name) all with
  | Some o -> Ok o
  | None ->
      Error
        (Printf.sprintf "unknown oracle %S (valid: %s)" name
           (String.concat ", " (List.map (fun o -> o.name) all)))

let run o ~seed spec =
  Telemetry.incr oracle_runs;
  try o.check ~seed spec with
  | Failure m -> Fail ("exception: " ^ m)
  | Invalid_argument m -> Fail ("invalid argument: " ^ m)
  | e -> Fail ("exception: " ^ Printexc.to_string e)
