open Netcore

type params = { max_routers : int; max_hosts : int; bgp_fraction : float }

let default = { max_routers = 12; max_hosts = 8; bgp_fraction = 0.4 }

let spec ?(params = default) ~seed () =
  let rng = Rng.create seed in
  let max_r = max 3 params.max_routers in
  let n = 3 + Rng.int rng (max_r - 2) in
  let router i = Printf.sprintf "cr%02d" i in
  (* Random spanning tree (attach each node to a random earlier one)
     guarantees connectivity whatever the extra-edge model adds. *)
  let tree = List.init (n - 1) (fun i -> (Rng.int rng (i + 1), i + 1)) in
  let have = Hashtbl.create (4 * n) in
  let add_have (i, j) = Hashtbl.replace have (min i j, max i j) () in
  List.iter add_have tree;
  let extras = ref [] in
  let add_extra (i, j) =
    add_have (i, j);
    extras := (min i j, max i j) :: !extras
  in
  (if Rng.bool rng ~p:0.5 then begin
     (* ER-style: each remaining pair independently, with a density that
        keeps the expected extra degree between 1 and 3. *)
     let p = (1.0 +. (2.0 *. Rng.float rng)) /. float_of_int n in
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         if (not (Hashtbl.mem have (i, j))) && Rng.bool rng ~p then add_extra (i, j)
       done
     done
   end
   else begin
     (* Preferential attachment: extra endpoints drawn proportionally to
        current degree, producing the hub-heavy shapes the catalog's
        curated nets never exercise. *)
     let deg = Array.make n 1 in
     List.iter
       (fun (i, j) ->
         deg.(i) <- deg.(i) + 1;
         deg.(j) <- deg.(j) + 1)
       tree;
     let attempts = Rng.int rng (n + 1) in
     for _ = 1 to attempts do
       let u = Rng.int rng n in
       let total = Array.fold_left ( + ) 0 deg in
       let rec weighted k i = if k < deg.(i) then i else weighted (k - deg.(i)) (i + 1) in
       let v = weighted (Rng.int rng total) 0 in
       if u <> v && not (Hashtbl.mem have (min u v, max u v)) then begin
         deg.(u) <- deg.(u) + 1;
         deg.(v) <- deg.(v) + 1;
         add_extra (u, v)
       end
     done
   end);
  let cost () = if Rng.bool rng ~p:0.15 then 1 + Rng.int rng 20 else 10 in
  let links =
    List.map (fun (i, j) -> (router i, router j, cost ())) (tree @ List.rev !extras)
  in
  (* AS partition: cut tree edges, so every AS is internally connected
     through the surviving subtree; cross-partition links (cut tree edges
     and any extras that straddle) become eBGP adjacencies. *)
  let asn =
    if n >= 4 && Rng.bool rng ~p:params.bgp_fraction then begin
      let parts = if n >= 6 && Rng.bool rng ~p:0.4 then 3 else 2 in
      let cut = List.filteri (fun k _ -> k < parts - 1) (Rng.shuffle rng tree) in
      let g =
        List.fold_left (fun g i -> Graph.add_node (router i) g) Graph.empty
          (List.init n Fun.id)
      in
      let g =
        List.fold_left
          (fun g (i, j) ->
            if List.mem (i, j) cut then g else Graph.add_edge (router i) (router j) g)
          g tree
      in
      List.concat
        (List.mapi
           (fun k comp -> List.map (fun r -> (r, 65001 + k)) comp)
           (Gmetrics.components g))
    end
    else []
  in
  let h = 1 + Rng.int rng (max 1 params.max_hosts) in
  let hosts =
    List.init h (fun k -> (Printf.sprintf "ch%02d" k, router (Rng.int rng n)))
  in
  Netgen.Netspec.v
    ~name:(Printf.sprintf "crucible-%d" seed)
    ~asn ~igp:Netgen.Netspec.Ospf
    ~routers:(List.init n router)
    ~links ~hosts ()
