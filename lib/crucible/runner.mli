(** The fuzz loop: generate, check, shrink, persist.

    Case [i] of a run uses seed [base + i], so any failure is replayable
    from its printed seed alone; minimized repros are additionally saved
    as corpus cases when a directory is given. Progress is observable
    through the [crucible.cases], [crucible.oracle_runs],
    [crucible.failures] and [crucible.shrink_steps] telemetry counters
    (enable {!Netcore.Telemetry} to read them). *)

type failure = {
  f_seed : int;
  f_oracle : string;
  f_message : string;
  f_spec : Netgen.Netspec.t;  (** the original failing spec *)
  f_minimized : Netgen.Netspec.t option;
  f_shrink_steps : int;
}

type outcome = { cases : int; failures : failure list }

val run_seed :
  oracles:Oracle.t list -> gen:Gen.params -> int -> failure list
(** Generate the spec for one seed and run every oracle against it;
    one failure per failing oracle, [] when all pass. *)

val minimize : oracles:Oracle.t list -> failure -> failure
(** Shrink the failing spec under the failure's own oracle (no-op if the
    oracle name is unknown), filling [f_minimized] / [f_shrink_steps]. *)

val run :
  ?minimize_failures:bool ->
  ?corpus_dir:string ->
  oracles:Oracle.t list ->
  gen:Gen.params ->
  seed:int ->
  cases:int ->
  unit ->
  outcome
(** The full loop. [corpus_dir] saves each (minimized when requested)
    failure as a [.case] file named [seed<N>-<oracle>]. *)

val replay : oracles:Oracle.t list -> Corpus.case -> failure list
(** Replay a corpus case against its recorded oracle (or, when it names
    none, against [oracles]). *)
