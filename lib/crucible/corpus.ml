type case = {
  c_name : string;
  c_seed : int;
  c_oracle : string option;
  c_spec : Netgen.Netspec.t;
}

let igp_to_string = function
  | Netgen.Netspec.Ospf -> "ospf"
  | Netgen.Netspec.Rip -> "rip"
  | Netgen.Netspec.Eigrp -> "eigrp"

let igp_of_string = function
  | "ospf" -> Some Netgen.Netspec.Ospf
  | "rip" -> Some Netgen.Netspec.Rip
  | "eigrp" -> Some Netgen.Netspec.Eigrp
  | _ -> None

let to_string c =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# crucible corpus case";
  line "name %s" c.c_name;
  line "seed %d" c.c_seed;
  (match c.c_oracle with Some o -> line "oracle %s" o | None -> ());
  line "igp %s" (igp_to_string c.c_spec.igp);
  List.iter
    (fun r ->
      match Netgen.Netspec.as_of c.c_spec r with
      | Some a -> line "router %s as %d" r a
      | None -> line "router %s" r)
    c.c_spec.routers;
  List.iter (fun (u, v, cost) -> line "link %s %s %d" u v cost) c.c_spec.links;
  List.iter (fun (h, r) -> line "host %s %s" h r) c.c_spec.hosts;
  Buffer.contents b

let of_string text =
  let err lineno fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt
  in
  let name = ref None
  and seed = ref None
  and oracle = ref None
  and igp = ref Netgen.Netspec.Ospf
  and routers = ref []
  and asn = ref []
  and links = ref []
  and hosts = ref [] in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) rest
        else
          let tokens =
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          in
          match tokens with
          | [ "name"; n ] ->
              name := Some n;
              go (lineno + 1) rest
          | [ "seed"; s ] -> (
              match int_of_string_opt s with
              | Some n ->
                  seed := Some n;
                  go (lineno + 1) rest
              | None -> err lineno "bad seed %S" s)
          | [ "oracle"; o ] ->
              oracle := Some o;
              go (lineno + 1) rest
          | [ "igp"; i ] -> (
              match igp_of_string i with
              | Some v ->
                  igp := v;
                  go (lineno + 1) rest
              | None -> err lineno "unknown igp %S" i)
          | [ "router"; r ] ->
              routers := r :: !routers;
              go (lineno + 1) rest
          | [ "router"; r; "as"; a ] -> (
              match int_of_string_opt a with
              | Some n ->
                  routers := r :: !routers;
                  asn := (r, n) :: !asn;
                  go (lineno + 1) rest
              | None -> err lineno "bad AS number %S" a)
          | [ "link"; u; v; c ] -> (
              match int_of_string_opt c with
              | Some cost ->
                  links := (u, v, cost) :: !links;
                  go (lineno + 1) rest
              | None -> err lineno "bad link cost %S" c)
          | [ "host"; h; r ] ->
              hosts := (h, r) :: !hosts;
              go (lineno + 1) rest
          | _ -> err lineno "unrecognized statement %S" line)
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> (
      match (!name, !seed) with
      | None, _ -> Error "missing 'name' statement"
      | _, None -> Error "missing 'seed' statement"
      | Some c_name, Some c_seed -> (
          try
            Ok
              {
                c_name;
                c_seed;
                c_oracle = !oracle;
                c_spec =
                  Netgen.Netspec.v ~name:c_name ~asn:(List.rev !asn) ~igp:!igp
                    ~routers:(List.rev !routers)
                    ~links:(List.rev !links)
                    ~hosts:(List.rev !hosts)
                    ();
              }
          with Invalid_argument m -> Error ("invalid spec: " ^ m)))

let save ~dir case =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (case.c_name ^ ".case") in
  let oc = open_out path in
  output_string oc (to_string case);
  close_out oc;
  path

let load_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Result.map_error (fun m -> Printf.sprintf "%s: %s" path m) (of_string text)

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           match load_file path with
           | Ok case -> (path, case)
           | Error m -> failwith m)
