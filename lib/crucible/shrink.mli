(** Greedy spec shrinker.

    Given a predicate [still_fails] (typically an {!Oracle.run} returning
    [Fail]), repeatedly tries structural reductions — dropping a router
    (with its links and hosts), a host, or a link, flattening the AS
    partition to pure OSPF, normalizing link costs — keeping any
    reduction under which the predicate still fails, until a fixpoint.
    Candidates that would disconnect the router graph or leave fewer than
    two routers are never proposed, so the minimized spec stays a valid,
    connected network and the surviving failure is the original defect
    rather than a degenerate-input artifact. *)

val spec :
  still_fails:(Netgen.Netspec.t -> bool) ->
  Netgen.Netspec.t ->
  Netgen.Netspec.t * int
(** [(minimized, steps)] where [steps] counts the accepted reductions
    (also accumulated on the [crucible.shrink_steps] telemetry counter).
    [minimized = input] and [steps = 0] when nothing can be removed. *)
