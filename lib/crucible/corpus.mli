(** Corpus cases: minimized failing specs (or interesting regression
    seeds) serialized for deterministic replay.

    The format is a plain line-based text file, one statement per line,
    [#]-comments ignored:

    {v
    name shrunk-seed42-diff_fib
    seed 42
    oracle diff_fib
    igp ospf
    router cr00
    router cr01 as 65001
    link cr00 cr01 10
    host ch00 cr00
    v}

    [oracle] is optional (absent means replay against the full suite);
    [as] clauses are per-router and must cover every router or none, as
    {!Netgen.Netspec.v} demands. Specs are revalidated on load, so a
    hand-edited case that breaks an invariant is a parse error, not a
    crash later. [test/corpus/*.case] files are replayed by the test
    suite on every [dune runtest]. *)

type case = {
  c_name : string;
  c_seed : int;  (** seed handed to the oracle (drives its internal rng) *)
  c_oracle : string option;  (** [None] replays the full suite *)
  c_spec : Netgen.Netspec.t;
}

val to_string : case -> string
(** Deterministic: structurally equal cases print identically. *)

val of_string : string -> (case, string) result
(** Errors carry the 1-based line number of the first offending line. *)

val save : dir:string -> case -> string
(** Writes [<dir>/<c_name>.case] (creating [dir] if needed) and returns
    the path. *)

val load_file : string -> (case, string) result

val load_dir : string -> (string * case) list
(** [(path, case)] for every [*.case] file, sorted by path; missing
    directory yields []. Raises [Failure] on the first unparsable case —
    a corrupt corpus should fail loudly, not silently shrink. *)
