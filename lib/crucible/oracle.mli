(** The crucible's oracle suite: checks every generated network must pass.

    Each oracle is a named total check over a {!Netgen.Netspec.t}; {!run}
    converts any escaping exception into a {!Fail} verdict so that a
    crash anywhere in the pipeline is a finding rather than a harness
    abort, and so the shrinker can keep reducing a spec that makes the
    pipeline raise.

    The suite:
    - [diff_fib] — differential simulation: sequential vs parallel
      {!Netcore.Pool}, incremental {!Routing.Engine} vs from-scratch
      {!Routing.Simulate}, including a short random deny/undeny edit walk
      re-checked against a fresh simulation after every step;
    - [workflow] — anonymization invariants after {!Confmask.Workflow}:
      k-degree anonymity of the anonymized topology, functional
      equivalence (original nodes/links/hosts preserved and identical
      delivered path sets), and byte-identical output on a second run
      under the same seed;
    - [anonfix] — differential: the whole anonymization workflow replayed
      under [CONFMASK_ANONFIX=legacy] (full recompute per fixpoint
      iteration) and the incremental mode (engine-delta scans, cached
      parallel reachability walks) must produce byte-identical outputs
      and identical iteration/filter counts;
    - [rename] — metamorphic: permuting router names (same declaration
      order, so the emitter assigns identical addresses) must permute the
      FIBs without changing their structure;
    - [reanon] — metamorphic: re-anonymizing an anonymized network must
      keep k-degree anonymity;
    - [scrub] — after the PII add-on, no password/secret/community/key
      token from the original configurations survives, and no original
      device name appears in the shared text;
    - [policy_transfer] — metamorphic: every policy mined from the
      original network ({!Spec.mine} — reachability, waypoints,
      load-balance width, all between real nodes) must still hold on
      the anonymized network ({!Confmask.Verify}); any verdict other
      than [holds_both] is a failure;
    - [deanon_budget] — red team: run the de-anonymization attack suite
      ({!Confmask.Audit}) against a PII-scrubbed output and assert the
      guaranteed budget — planted legacy small-int keys are recovered by
      the brute force, full 64-bit keys are not, prefix-hierarchy
      survival under the Pan map is exactly 1, top-5 re-identification
      dominates top-1, all scores in [0,1], and scoring is
      deterministic. *)

type verdict = Pass | Fail of string

type t = {
  name : string;
  doc : string;
  check : seed:int -> Netgen.Netspec.t -> verdict;
}

val diff_fib : t
val workflow : t
val anonfix : t
val rename : t
val reanon : t
val scrub : t
val policy_transfer : t
val deanon_budget : t

val all : t list
(** In cost order:
    [diff_fib; workflow; anonfix; rename; scrub; reanon; policy_transfer;
     deanon_budget]. *)

val find : string -> (t, string) result
(** Lookup by name; the error lists the valid names. *)

val run : t -> seed:int -> Netgen.Netspec.t -> verdict
(** Exception-safe: raising checks become [Fail] with the exception text.
    Bumps the [crucible.oracle_runs] telemetry counter. *)
