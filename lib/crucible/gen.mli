(** Seeded random network specifications — the crucible's input space.

    Every generated {!Netgen.Netspec.t} is valid by construction (it goes
    through [Netspec.v]) and connected, so any oracle failure on one is a
    genuine pipeline defect rather than a malformed input. Two topology
    models are drawn from: an Erdős–Rényi-style model over a random
    spanning tree (the Waxman-flavoured shape of the catalog WANs) and
    preferential attachment (hub-heavy, the shape fat trees and
    enterprise cores stress). Link costs, host placement and the
    OSPF-only vs BGP+OSPF split (connected AS partitions carved out of
    the spanning tree) are all drawn from the same seeded {!Netcore.Rng}
    stream, so equal seeds yield equal specs. *)

type params = {
  max_routers : int;  (** inclusive upper bound on routers; clamped to >= 3 *)
  max_hosts : int;  (** inclusive upper bound on hosts; at least 1 host is placed *)
  bgp_fraction : float;
      (** probability that a generated net is AS-partitioned BGP+OSPF
          rather than a single-domain OSPF network *)
}

val default : params
(** [{ max_routers = 12; max_hosts = 8; bgp_fraction = 0.4 }] — small
    enough that a full oracle suite runs in milliseconds per case. *)

val spec : ?params:params -> seed:int -> unit -> Netgen.Netspec.t
(** [spec ~seed ()] is a fresh random specification. Deterministic: equal
    seeds and params yield structurally equal specs. Router names are
    [cr00..], host names [ch00..]. *)
