open Netcore

let shrink_steps = Telemetry.counter "crucible.shrink_steps"

let rebuild (s : Netgen.Netspec.t) ~routers ~links ~hosts ~asn =
  (* Revalidate through the smart constructor; a candidate that violates
     spec invariants is simply not proposed. *)
  try
    let spec = Netgen.Netspec.v ~name:s.name ~asn ~igp:s.igp ~routers ~links ~hosts () in
    if Gmetrics.connected (Netgen.Netspec.router_graph spec) then Some spec else None
  with Invalid_argument _ -> None

(* Candidate reductions, biggest first: dropping a router removes its
   links and hosts in one step, so the greedy loop converges in few
   oracle runs. Evaluated lazily — each candidate costs an oracle run. *)
let candidates (s : Netgen.Netspec.t) : (unit -> Netgen.Netspec.t option) list =
  let drop_router r () =
    if List.length s.routers <= 2 then None
    else
      rebuild s
        ~routers:(List.filter (fun x -> x <> r) s.routers)
        ~links:(List.filter (fun (u, v, _) -> u <> r && v <> r) s.links)
        ~hosts:(List.filter (fun (_, x) -> x <> r) s.hosts)
        ~asn:(List.filter (fun (x, _) -> x <> r) s.asn)
  in
  let drop_host h () =
    rebuild s ~routers:s.routers ~links:s.links
      ~hosts:(List.filter (fun (x, _) -> x <> h) s.hosts)
      ~asn:s.asn
  in
  let drop_link l () =
    rebuild s ~routers:s.routers
      ~links:(List.filter (fun x -> x <> l) s.links)
      ~hosts:s.hosts ~asn:s.asn
  in
  let flatten_asn () =
    if s.asn = [] then None
    else rebuild s ~routers:s.routers ~links:s.links ~hosts:s.hosts ~asn:[]
  in
  let normalize_costs () =
    if List.for_all (fun (_, _, c) -> c = 10) s.links then None
    else
      rebuild s ~routers:s.routers
        ~links:(List.map (fun (u, v, _) -> (u, v, 10)) s.links)
        ~hosts:s.hosts ~asn:s.asn
  in
  List.map drop_router s.routers
  @ List.map (fun (h, _) -> drop_host h) s.hosts
  @ List.map drop_link s.links
  @ [ flatten_asn; normalize_costs ]

exception Shrunk of Netgen.Netspec.t

let spec ~still_fails spec0 =
  let cur = ref spec0 in
  let steps = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    try
      List.iter
        (fun cand ->
          match cand () with
          | Some s when still_fails s -> raise (Shrunk s)
          | Some _ | None -> ())
        (candidates !cur)
    with Shrunk s ->
      cur := s;
      incr steps;
      Telemetry.incr shrink_steps;
      progress := true
  done;
  (!cur, !steps)
