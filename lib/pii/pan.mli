(** Prefix-preserving IP address anonymization (Crypto-PAn style; Xu et
    al., ICNP 2002).

    Two addresses sharing a p-bit prefix map to addresses sharing exactly
    a p-bit prefix, so subnet structure survives anonymization while the
    actual address values do not. The bit-flip function is a keyed
    SplitMix-based PRF rather than AES — the functional property ConfMask's
    PII add-on needs is prefix preservation, not cryptographic strength
    (see DESIGN.md substitutions). *)

open Netcore

type key

val key_of_int : int -> key
(** Derive a key from a small integer (pre-mixed so consecutive ints give
    unrelated keys). Convenient for tests and seeded pipelines, but the
    effective key space is the int argument's — a brute-force replay of
    {!addr} over a seed range recovers it (see [Redteam.Addrs]). Use
    {!key_of_string} with a full 64-bit hex key for real deployments. *)

val key_of_string : string -> (key, string) result
(** Parse a full-width key from 1-16 hex digits, with or without a [0x]
    prefix ("0xdeadbeefcafef00d"). All 64 bits are used. Returns [Error]
    with a message on malformed input. *)

val key_to_string : key -> string
(** Canonical hex form ["0x%016x"]; [key_of_string] round-trips it. *)

val key_equal : key -> key -> bool

val addr : key -> Ipv4.t -> Ipv4.t
(** Anonymize one address. Deterministic per key; a bijection on the
    address space. *)

val prefix : key -> Prefix.t -> Prefix.t
(** Anonymize a prefix: the network bits are mapped with {!addr} and the
    length kept, so [mem a p] implies [mem (addr k a) (prefix k p)]. *)
