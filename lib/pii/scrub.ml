open Configlang
open Ast

let default_rename configs =
  let routers, hosts =
    List.partition (fun c -> c.kind = Router) configs
  in
  let sorted cs = List.sort compare (List.map (fun c -> c.hostname) cs) in
  let table = Hashtbl.create 16 in
  List.iteri
    (fun i n -> Hashtbl.replace table n (Printf.sprintf "node%d" (i + 1)))
    (sorted routers);
  List.iteri
    (fun i n -> Hashtbl.replace table n (Printf.sprintf "host%d" (i + 1)))
    (sorted hosts);
  fun name -> Option.value ~default:name (Hashtbl.find_opt table name)

let sensitive_keywords =
  [ "password"; "secret"; "community"; "key"; "key-string"; "md5" ]

let is_space c = c = ' ' || c = '\t'

(* Whole-token equality alone let hyphen-compounded Cisco forms through
   unredacted ("key-string <secret>", "snmp-server community-map ..."),
   so a token also matches when it extends a keyword with a hyphen. *)
let is_sensitive word =
  List.exists
    (fun kw ->
      String.equal word kw
      || (String.length word > String.length kw
          && String.sub word 0 (String.length kw + 1) = kw ^ "-"))
    sensitive_keywords

(* Everything after a sensitive keyword may be secret material — Cisco
   lines interleave encryption-type digits and the secret itself
   ("enable secret 5 $1$abc..."), so redacting only the next token leaks
   the hash. Redact the whole remainder, and slice the original string so
   lines keep their exact whitespace (the old word-split collapsed runs
   of spaces and every tab). *)
let redact_line line =
  let n = String.length line in
  let rec scan i =
    if i >= n then line
    else if is_space line.[i] then scan (i + 1)
    else begin
      let j = ref i in
      while !j < n && not (is_space line.[!j]) do
        incr j
      done;
      let stop = !j in
      let word = String.lowercase_ascii (String.sub line i (stop - i)) in
      let rest = ref stop in
      while !rest < n && is_space line.[!rest] do
        incr rest
      done;
      if is_sensitive word && !rest < n then
        String.sub line 0 stop ^ " <redacted>"
      else scan stop
    end
  in
  scan 0

let scrub ?rename ~key configs =
  let rename =
    match rename with Some f -> f | None -> default_rename configs
  in
  let addr = Pan.addr key in
  let prefix = Pan.prefix key in
  let scrub_iface i =
    {
      i with
      if_address = Option.map (fun (a, len) -> (addr a, len)) i.if_address;
      if_description = Option.map (fun _ -> "link") i.if_description;
      if_extra = List.map redact_line i.if_extra;
    }
  in
  let scrub_config c =
    {
      c with
      hostname = rename c.hostname;
      interfaces = List.map scrub_iface c.interfaces;
      ospf =
        Option.map
          (fun o ->
            {
              o with
              ospf_networks = List.map (fun (p, a) -> (prefix p, a)) o.ospf_networks;
              ospf_extra = List.map redact_line o.ospf_extra;
            })
          c.ospf;
      rip =
        Option.map
          (fun r ->
            {
              r with
              rip_networks = List.map prefix r.rip_networks;
              rip_extra = List.map redact_line r.rip_extra;
            })
          c.rip;
      bgp =
        Option.map
          (fun b ->
            {
              b with
              bgp_router_id = Option.map addr b.bgp_router_id;
              bgp_networks = List.map prefix b.bgp_networks;
              bgp_neighbors =
                List.map (fun n -> { n with nb_addr = addr n.nb_addr }) b.bgp_neighbors;
              bgp_extra = List.map redact_line b.bgp_extra;
            })
          c.bgp;
      prefix_lists =
        List.map
          (fun pl ->
            {
              pl with
              pl_rules =
                List.map (fun r -> { r with rule_prefix = prefix r.rule_prefix }) pl.pl_rules;
            })
          c.prefix_lists;
      acls =
        List.map
          (fun a ->
            {
              a with
              acl_rules =
                List.map
                  (fun r ->
                    {
                      r with
                      acl_src = Option.map prefix r.acl_src;
                      acl_dst = Option.map prefix r.acl_dst;
                    })
                  a.acl_rules;
            })
          c.acls;
      statics =
        List.map
          (fun st ->
            {
              Ast.st_prefix = prefix st.Ast.st_prefix;
              st_next_hop = addr st.Ast.st_next_hop;
            })
          c.statics;
      default_gateway = Option.map addr c.default_gateway;
      extra = List.map redact_line c.extra;
    }
  in
  List.map scrub_config configs
