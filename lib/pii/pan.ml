open Netcore

type key = int64

let key_of_int n =
  (* Pre-mix so small consecutive integers give unrelated keys. *)
  let r = Rng.create n in
  Rng.int64 r

let key_equal = Int64.equal
let key_to_string k = Printf.sprintf "0x%016Lx" k

let is_hex_digit c =
  (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Full-width keys arrive as hex strings because a 64-bit value neither
   fits an OCaml int on all platforms nor survives a JSON number (floats
   hold 53 mantissa bits). Decimal strings stay reserved for the legacy
   [key_of_int] path so callers can route on syntax. *)
let key_of_string s =
  let s =
    if String.length s >= 2 && (String.sub s 0 2 = "0x" || String.sub s 0 2 = "0X")
    then String.sub s 2 (String.length s - 2)
    else s
  in
  let n = String.length s in
  if n = 0 || n > 16 then Error "key must be 1-16 hex digits"
  else if not (String.for_all is_hex_digit s) then
    Error (Printf.sprintf "invalid hex digit in key '%s'" s)
  else
    (* Int64.of_string "0x..." parses the full unsigned 64-bit range. *)
    Ok (Int64.of_string ("0x" ^ s))

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

(* The canonical prefix-preserving construction: output bit i is input bit
   i XOR f(key, input bits 0..i-1). Depending only on the preceding bits
   makes the map a bijection and prefix-preserving. *)
let addr key a =
  let v = Ipv4.to_int a in
  let out = ref 0 in
  for i = 0 to 31 do
    let bit = (v lsr (31 - i)) land 1 in
    let prefix_bits = if i = 0 then 0 else v lsr (32 - i) in
    let pad = Int64.add (Int64.of_int prefix_bits) (Int64.of_int (i lsl 40)) in
    let flip = Int64.to_int (mix (Int64.logxor key pad)) land 1 in
    out := (!out lsl 1) lor (bit lxor flip)
  done;
  Ipv4.of_int !out

let prefix key p =
  Prefix.v (addr key (Prefix.network p)) (Prefix.length p)
