(** PII scrubbing add-on (the NetConan-style final stage of the ConfMask
    workflow, Figure 3).

    Rewrites every IP address and prefix in a set of configurations with
    the prefix-preserving {!Pan} map, renames devices, blanks interface
    descriptions, and redacts password-like tokens in verbatim lines.
    Because {!Pan} is a global bijection, cross-references (BGP neighbor
    addresses, default gateways, prefix-list entries) stay consistent, so
    the scrubbed network still compiles and simulates to an isomorphic
    data plane. *)

open Configlang

val default_rename : Ast.config list -> string -> string
(** Routers become [node1..nodeN], hosts [host1..hostM], in sorted
    hostname order; unknown names map to themselves. *)

val redact_line : string -> string
(** Replaces everything after the first sensitive keyword ([password],
    [secret], [community], [key], [key-string], [md5]; case-insensitive,
    whitespace-delimited) with [<redacted>]. A token matches when it
    equals a keyword or extends one with a hyphen ([community-map],
    [password-encryption]) — Cisco compounds secrets into hyphenated
    forms. The whole remainder goes, not just the next token — Cisco
    lines put encryption-type digits between the keyword and the secret
    ("enable secret 5 $1$..."). Lines without a keyword (or with one as
    their last token) are returned verbatim, whitespace intact. *)

val scrub :
  ?rename:(string -> string) -> key:Pan.key -> Ast.config list -> Ast.config list
(** Full scrub. [rename] defaults to {!default_rename} applied to the
    input. *)
