type t = { cache_dir : string; eff_version : string }

let c_hit = Telemetry.counter "diskcache.hit"
let c_miss = Telemetry.counter "diskcache.miss"
let c_write = Telemetry.counter "diskcache.write"

let dir t = t.cache_dir
let version t = t.eff_version

(* Entry files are self-describing so a reader can reject anything it
   did not write itself: the version and key guard against collisions
   and stale formats, the digest against truncation and bit rot. *)
type entry = {
  e_version : string;
  e_key : string;
  e_digest : string;  (* Digest.string of e_payload *)
  e_payload : string;
}

let index_magic = "confmask-diskcache 1"
let entry_suffix = ".v"

let entry_path t key =
  Filename.concat t.cache_dir (Digest.to_hex (Digest.string key) ^ entry_suffix)

let entry_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f entry_suffix)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()  (* creation race *)
  end

let index_path dir = Filename.concat dir "INDEX"

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

(* Unique-enough temp names: same-process writers are distinguished by
   the counter, concurrent processes by the pid. *)
let tmp_seq = Atomic.make 0

let write_file_atomic ~dir path content =
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ())
         (Atomic.fetch_and_add tmp_seq 1))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let open_dir ?(version = "1") cache_dir =
  let eff_version = version ^ "/ocaml-" ^ Sys.ocaml_version in
  let t = { cache_dir; eff_version } in
  mkdir_p cache_dir;
  let want = index_magic ^ "\n" ^ eff_version ^ "\n" in
  (match read_file (index_path cache_dir) with
  | Some got when String.equal got want -> ()
  | _ ->
      (* Missing, corrupted or version-mismatched index: the directory's
         contents cannot be trusted. Wipe the entries so they do not
         linger (and cannot be picked up by a later open under the old
         version), then stamp the expected version. *)
      List.iter
        (fun f -> try Sys.remove (Filename.concat cache_dir f) with Sys_error _ -> ())
        (entry_files cache_dir);
      write_file_atomic ~dir:cache_dir (index_path cache_dir) want);
  t

let find t key =
  let hit payload =
    Telemetry.incr c_hit;
    Some payload
  in
  let miss () =
    Telemetry.incr c_miss;
    None
  in
  match read_file (entry_path t key) with
  | None -> miss ()
  | Some raw -> (
      (* The whole decode runs under the handler: unmarshalling garbage
         raises, and even a well-formed foreign value trips one of the
         string comparisons before its payload can leak out. *)
      match
        let e = (Marshal.from_string raw 0 : entry) in
        if
          String.equal e.e_version t.eff_version
          && String.equal e.e_key key
          && String.equal e.e_digest (Digest.string e.e_payload)
        then Some e.e_payload
        else None
      with
      | Some payload -> hit payload
      | None | (exception _) -> miss ())

let add t ~key payload =
  let e =
    {
      e_version = t.eff_version;
      e_key = key;
      e_digest = Digest.string payload;
      e_payload = payload;
    }
  in
  match
    write_file_atomic ~dir:t.cache_dir (entry_path t key)
      (Marshal.to_string e [])
  with
  | () -> Telemetry.incr c_write
  | exception Sys_error _ -> ()

let mem t key = Sys.file_exists (entry_path t key)
let entries t = List.length (entry_files t.cache_dir)
