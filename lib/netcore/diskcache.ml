type t = { cache_dir : string; eff_version : string }

let c_hit = Telemetry.counter "diskcache.hit"
let c_miss = Telemetry.counter "diskcache.miss"
let c_write = Telemetry.counter "diskcache.write"

let dir t = t.cache_dir
let version t = t.eff_version

(* Entry files are self-describing {!Codec} envelopes so a reader can
   reject anything it did not write itself: the version and key fields
   guard against collisions and stale formats, the digest against
   truncation and bit rot. The envelope is an explicit portable byte
   format — no [Marshal] — so entries survive compiler upgrades and can
   be shared across builds; callers whose *payloads* are Marshal-pinned
   (the routing engine) carry the compiler version in their own version
   string instead. *)

(* Bumped from "1": the v1 envelope was a Marshaled record. A directory
   written by v1 fails the index check below and is wiped wholesale. *)
let index_magic = "confmask-diskcache 2"
let entry_suffix = ".v"
let tmp_prefix = ".tmp-"

let entry_path t key =
  Filename.concat t.cache_dir (Digest.to_hex (Digest.string key) ^ entry_suffix)

let files_with dir keep =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files -> Array.to_list files |> List.filter keep

let entry_files dir = files_with dir (fun f -> Filename.check_suffix f entry_suffix)

let tmp_files dir =
  files_with dir (fun f ->
      String.length f >= String.length tmp_prefix
      && String.equal (String.sub f 0 (String.length tmp_prefix)) tmp_prefix)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()  (* creation race *)
  end

let index_path dir = Filename.concat dir "INDEX"

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

(* Unique-enough temp names: same-process writers are distinguished by
   the counter, concurrent processes by the pid. *)
let tmp_seq = Atomic.make 0

let write_file_atomic ~dir path content =
  let tmp =
    Filename.concat dir
      (Printf.sprintf "%s%d-%d" tmp_prefix (Unix.getpid ())
         (Atomic.fetch_and_add tmp_seq 1))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let open_dir ?(version = "1") cache_dir =
  let t = { cache_dir; eff_version = version } in
  mkdir_p cache_dir;
  (* A writer that crashed between writing its temp file and renaming it
     leaks the temp file forever — nothing else ever touches that name.
     Sweep them here: any temp file is either stale (its writer is gone)
     or belongs to a concurrent in-flight [add], whose rename then fails
     and is swallowed — the cache contract makes a lost write harmless. *)
  List.iter
    (fun f -> try Sys.remove (Filename.concat cache_dir f) with Sys_error _ -> ())
    (tmp_files cache_dir);
  let want = index_magic ^ "\n" ^ version ^ "\n" in
  (match read_file (index_path cache_dir) with
  | Some got when String.equal got want -> ()
  | _ ->
      (* Missing, corrupted or version-mismatched index: the directory's
         contents cannot be trusted. Wipe the entries so they do not
         linger (and cannot be picked up by a later open under the old
         version), then stamp the expected version. *)
      List.iter
        (fun f -> try Sys.remove (Filename.concat cache_dir f) with Sys_error _ -> ())
        (entry_files cache_dir);
      write_file_atomic ~dir:cache_dir (index_path cache_dir) want);
  t

(* The one decode path: both [find] and [mem] trust an entry only if the
   whole envelope validates — digest, version and key alike. *)
let load t key =
  match read_file (entry_path t key) with
  | None -> None
  | Some raw -> Codec.decode ~version:t.eff_version ~key raw

let find t key =
  match load t key with
  | Some payload ->
      Telemetry.incr c_hit;
      Some payload
  | None ->
      Telemetry.incr c_miss;
      None

let add t ~key payload =
  match
    write_file_atomic ~dir:t.cache_dir (entry_path t key)
      (Codec.encode ~version:t.eff_version ~key payload)
  with
  | () -> Telemetry.incr c_write
  | exception Sys_error _ -> ()

let mem t key = load t key <> None
let entries t = List.length (entry_files t.cache_dir)
