type t = { network : Ipv4.t; len : int }

let mask_of_len len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let v addr len =
  if len < 0 || len > 32 then
    invalid_arg (Printf.sprintf "Prefix.v: bad length %d" len);
  { network = Ipv4.of_int (Ipv4.to_int addr land mask_of_len len); len }

let of_string s =
  match String.index_opt s '/' with
  | None -> Result.map (fun a -> v a 32) (Ipv4.of_string s)
  | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string addr, int_of_string_opt len) with
      | Ok a, Some l when l >= 0 && l <= 32 -> Ok (v a l)
      | Ok _, _ -> Error (Printf.sprintf "invalid prefix length in %S" s)
      | (Error _ as e), _ -> e)

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg msg

let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.network) t.len
let pp ppf t = Format.pp_print_string ppf (to_string t)
let network t = t.network
let length t = t.len
let netmask t = Ipv4.of_int (mask_of_len t.len)
let wildcard t = Ipv4.of_int (lnot (mask_of_len t.len) land 0xFFFFFFFF)
let size t = 1 lsl (32 - t.len)

let mem addr t =
  Ipv4.to_int addr land mask_of_len t.len = Ipv4.to_int t.network

let subset ~sub ~super = sub.len >= super.len && mem sub.network super

let overlaps a b =
  subset ~sub:a ~super:b || subset ~sub:b ~super:a

let host t i = Ipv4.add t.network i

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.len b.len
  | c -> c

let equal a b = compare a b = 0

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

type alloc = {
  base : t;
  avoid : t list;
  mutable cursor : int; (* offset in addresses from the base network *)
  mutable used : t list;
  mutable probes : int;
}

let default_base = v (Ipv4.of_octets 100 64 0 0) 10

exception
  Pool_exhausted of {
    pool : t;
    requested_len : int;
    cursor : int;
    probes : int;
  }

let () =
  Printexc.register_printer (function
    | Pool_exhausted { pool; requested_len; cursor; probes } ->
        Some
          (Printf.sprintf
             "Prefix.alloc_fresh: pool %s exhausted (requested /%d, cursor \
              at offset %d of %d, %d probes)"
             (to_string pool) requested_len cursor (size pool) probes)
    | _ -> None)

let alloc_create ?(base = default_base) ~avoid () =
  { base; avoid; cursor = 0; used = [] ; probes = 0 }

let alloc_fresh a ~len =
  if len < a.base.len then
    invalid_arg
      (Printf.sprintf
         "Prefix.alloc_fresh: requested /%d is larger than the pool %s" len
         (to_string a.base));
  let step = 1 lsl (32 - len) in
  let base_int = Ipv4.to_int a.base.network in
  let rec search offset =
    if offset + step > size a.base then
      raise
        (Pool_exhausted
           {
             pool = a.base;
             requested_len = len;
             cursor = a.cursor;
             probes = a.probes;
           })
    else begin
      a.probes <- a.probes + 1;
      let candidate = v (Ipv4.add a.base.network offset) len in
      let clash p = overlaps candidate p in
      match List.filter clash a.avoid @ List.filter clash a.used with
      | [] ->
          a.cursor <- offset + step;
          a.used <- candidate :: a.used;
          candidate
      | clashes ->
          (* CIDR ranges nest or are disjoint, so every step-aligned
             offset below the furthest clashing range's end also clashes:
             jump there in one probe instead of stepping through, and
             advance the cursor immediately — the avoid set is immutable
             and [used] only grows, so the clash is permanent and no later
             allocation needs to re-scan it. *)
          let next =
            List.fold_left
              (fun acc p -> max acc (Ipv4.to_int p.network + size p - base_int))
              (offset + step) clashes
          in
          let next = (next + step - 1) / step * step in
          a.cursor <- max a.cursor next;
          search next
    end
  in
  (* Align the cursor to the requested size. *)
  search ((a.cursor + step - 1) / step * step)

let alloc_used a = a.used
let alloc_probes a = a.probes
