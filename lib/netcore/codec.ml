let magic = "CMCODEC1"
let header_len = 20 (* magic + three u32 length fields *)
let digest_len = 16

let encode ~version ~key payload =
  let v = String.length version
  and k = String.length key
  and p = String.length payload in
  let total = header_len + v + k + p + digest_len in
  let b = Bytes.create total in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_int32_be b 8 (Int32.of_int v);
  Bytes.set_int32_be b 12 (Int32.of_int k);
  Bytes.set_int32_be b 16 (Int32.of_int p);
  Bytes.blit_string version 0 b header_len v;
  Bytes.blit_string key 0 b (header_len + v) k;
  Bytes.blit_string payload 0 b (header_len + v + k) p;
  let body_len = header_len + v + k + p in
  let digest = Digest.subbytes b 0 body_len in
  Bytes.blit_string digest 0 b body_len digest_len;
  Bytes.unsafe_to_string b

(* A u32 field read as a signed OCaml int: values above 2^31 come back
   negative and fail the >= 0 guard, so no length can index out of
   bounds on any platform we build for. *)
let u32 raw off = Int32.to_int (String.get_int32_be raw off)

let decode_any raw =
  let len = String.length raw in
  if len < header_len + digest_len then None
  else if not (String.equal (String.sub raw 0 8) magic) then None
  else
    let v = u32 raw 8 and k = u32 raw 12 and p = u32 raw 16 in
    if v < 0 || k < 0 || p < 0 then None
    else if
      (* Overflow-safe exact-length check: each field already fits in
         an int, and len bounds their sum. *)
      v > len || k > len || p > len
      || header_len + v + k + p + digest_len <> len
    then None
    else
      let body_len = header_len + v + k + p in
      if
        not
          (String.equal
             (Digest.substring raw 0 body_len)
             (String.sub raw body_len digest_len))
      then None
      else
        Some
          ( String.sub raw header_len v,
            String.sub raw (header_len + v) k,
            String.sub raw (header_len + v + k) p )

let decode ~version ~key raw =
  match decode_any raw with
  | Some (v, k, payload) when String.equal v version && String.equal k key ->
      Some payload
  | _ -> None
