/* Monotonic time for Netcore.Clock.

   OCaml's Unix library exposes only the wall clock (gettimeofday),
   which steps under NTP adjustment and can make an interval measured
   across a step negative or wildly wrong. This stub reads the
   operating system's monotonic clock instead; the wall-clock fallback
   only exists for platforms without CLOCK_MONOTONIC, where stepping is
   the pre-existing behaviour anyway. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value confmask_clock_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000 +
                           (int64_t)tv.tv_usec * 1000);
  }
}
