(** A fixed-size [Domain]-based worker pool.

    Work submitted through {!map} is consumed cooperatively: the calling
    thread participates in its own batch, and pool workers never block on
    a batch's completion, so nested [map] calls (a parallel stage inside a
    parallel stage) are safe and cannot deadlock. Results preserve input
    order, and with equal inputs the output is identical to [List.map] —
    parallelism never changes observable results. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns a pool of [jobs] workers ([jobs - 1]
    background domains plus the caller during a [map]). Defaults to
    [Domain.recommended_domain_count ()]; values [<= 1] yield a pool that
    runs everything sequentially on the caller. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. If any application raises, the first
    exception (by completion order) is re-raised after the batch drains.
    The submitter helps with its own batch, then waits for the stragglers
    with a bounded spin followed by a condition wait — it does not burn a
    core while the last worker finishes a long task. *)

val shutdown : t -> unit
(** Joins the worker domains. Subsequent [map]s run sequentially. *)

val set_default_jobs : int -> unit
(** Size the process-wide shared pool (the [--jobs N] flag). Replaces an
    already-created shared pool; an in-flight {!map} on the displaced
    pool completes normally. Clamped below at 1. *)

val default : unit -> t
(** The process-wide shared pool, created on first use. Safe to call from
    multiple domains concurrently: every caller gets the same pool. *)

val parallel_map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over [pool], defaulting to the shared pool. *)

val in_worker : unit -> bool
(** Whether the calling domain is currently executing a task of a {!map}
    batch (including the submitter while it helps with its own batch).
    Callers about to fan out use this to detect nested parallelism: a
    [map] issued from inside a pool task runs sequentially in place —
    the pool is already saturated by the enclosing batch, so queueing
    more tasks to it would only add scheduling churn. Single-item
    batches and sequential pools do not count as being in a worker. *)

val effective_jobs : ?pool:t -> unit -> int
(** The parallelism a fan-out issued here will actually get: 1 when
    {!in_worker} (nested maps run sequentially), otherwise the job count
    of [pool] (default: the shared pool). Use it to size work chunks. *)

val chunks : into:int -> 'a list -> 'a list list
(** Split a list into at most [into] contiguous runs of near-equal
    length; concatenating them restores the input. [into <= 1] yields a
    single chunk. *)

val chunked_map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!parallel_map} but batches the items into a few contiguous
    chunks per worker instead of one task per item — the right shape for
    many small items (per-prefix Dijkstras, per-pair traces). Equal to
    [List.map f xs] whatever the chunking. *)
