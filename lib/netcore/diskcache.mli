(** Persistent, content-addressed on-disk cache.

    One cache is one directory holding a versioned [INDEX] file plus one
    value file per key. The store is append-only: entries are written
    once under a content-derived key and never mutated — invalidation is
    wholesale, by bumping the version string, which makes a subsequent
    {!open_dir} discard every entry.

    Robustness contract: a cache is a pure accelerator and is never
    trusted. Entry files are self-describing {!Codec} envelopes (magic,
    version, key, payload length, digest — an explicit portable byte
    format, no [Marshal]); a corrupted, truncated, version-mismatched or
    otherwise unreadable entry reads as a miss, and a directory whose
    [INDEX] does not match the expected version is treated as empty (and
    wiped, so stale entries cannot survive a version bump). Writes go
    through a temp file and [rename], so readers — including concurrent
    processes sharing the directory — never observe a partial entry;
    temp files orphaned by a crashed writer are swept at {!open_dir}.

    Because the envelope is Marshal-free, the store itself is readable
    across compiler versions. A caller whose {e payloads} are Marshaled
    (e.g. the routing engine) must fold the compiler version into its
    own version string.

    Usage is observable through the [diskcache.hit], [diskcache.miss]
    and [diskcache.write] telemetry counters. *)

type t

val open_dir : ?version:string -> string -> t
(** [open_dir ~version dir] opens (creating it, parents included, if
    needed) the cache directory [dir] for entries of format [version]
    (default ["1"]). An existing directory whose [INDEX] disagrees —
    including one written by the pre-codec Marshal format — is emptied.
    Stale [.tmp-*] files left by crashed writers are removed. Raises
    [Sys_error] when the directory cannot be created or written. *)

val dir : t -> string
val version : t -> string
(** The version string entries are stamped with. *)

val find : t -> string -> string option
(** [find t key] is the payload stored under [key], or [None] on any
    kind of miss (absent, corrupted, truncated, wrong version, key
    collision). Ticks [diskcache.hit] / [diskcache.miss]. *)

val add : t -> key:string -> string -> unit
(** [add t ~key payload] stores [payload] under [key], atomically
    (write to a temp file, then rename). Last writer wins on a race,
    which is harmless because equal keys hold equal payloads by
    construction. Ticks [diskcache.write]. I/O errors are swallowed: a
    cache that cannot be written degrades to a smaller cache, it never
    fails the computation. *)

val mem : t -> string -> bool
(** [mem t key] is [true] iff {!find} would hit: the entry exists {e and}
    its whole envelope validates (digest, version, key). Shares the
    decode path with {!find} but does not tick counters. A bare
    file-existence check would report hits for corrupt, truncated or
    version-mismatched entries that [find] then rejects. *)

val entries : t -> int
(** Number of entry files currently present. *)
