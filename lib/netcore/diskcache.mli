(** Persistent, content-addressed on-disk cache.

    One cache is one directory holding a versioned [INDEX] file plus one
    value file per key. The store is append-only: entries are written
    once under a content-derived key and never mutated — invalidation is
    wholesale, by bumping the version string, which makes a subsequent
    {!open_dir} discard every entry.

    Robustness contract: a cache is a pure accelerator and is never
    trusted. Entry files are self-describing (version, key, payload
    digest); a corrupted, truncated, version-mismatched or otherwise
    unreadable entry reads as a miss, and a directory whose [INDEX] does
    not match the expected version is treated as empty (and wiped, so
    stale entries cannot survive a version bump). Writes go through a
    temp file and [rename], so readers — including concurrent processes
    sharing the directory — never observe a partial entry.

    Usage is observable through the [diskcache.hit], [diskcache.miss]
    and [diskcache.write] telemetry counters. *)

type t

val open_dir : ?version:string -> string -> t
(** [open_dir ~version dir] opens (creating it, parents included, if
    needed) the cache directory [dir] for entries of format [version]
    (default ["1"]). The effective version also incorporates
    [Sys.ocaml_version], since entries are [Marshal]ed: a cache written
    by a different compiler version reads as empty. An existing
    directory whose [INDEX] disagrees is emptied. Raises [Sys_error]
    when the directory cannot be created or written. *)

val dir : t -> string
val version : t -> string
(** The effective (compiler-qualified) version string. *)

val find : t -> string -> string option
(** [find t key] is the payload stored under [key], or [None] on any
    kind of miss (absent, corrupted, truncated, wrong version, key
    collision). Ticks [diskcache.hit] / [diskcache.miss]. *)

val add : t -> key:string -> string -> unit
(** [add t ~key payload] stores [payload] under [key], atomically
    (write to a temp file, then rename). Last writer wins on a race,
    which is harmless because equal keys hold equal payloads by
    construction. Ticks [diskcache.write]. I/O errors are swallowed: a
    cache that cannot be written degrades to a smaller cache, it never
    fails the computation. *)

val mem : t -> string -> bool
(** Entry-file existence check; does not validate the payload and does
    not tick counters. *)

val entries : t -> int
(** Number of entry files currently present. *)
