(* Entries are (priority, value) int pairs stored structure-of-arrays so
   the sift loops touch unboxed int arrays only. *)
type t = {
  mutable prio : int array;
  mutable value : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0; value = Array.make capacity 0; len = 0 }

let is_empty t = t.len = 0
let size t = t.len
let clear t = t.len <- 0

let grow t =
  let cap = 2 * Array.length t.prio in
  let prio = Array.make cap 0 and value = Array.make cap 0 in
  Array.blit t.prio 0 prio 0 t.len;
  Array.blit t.value 0 value 0 t.len;
  t.prio <- prio;
  t.value <- value

let push t ~prio v =
  if t.len = Array.length t.prio then grow t;
  (* Sift the new entry up from the freshly opened slot. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.prio.(parent) <= prio then continue := false
    else begin
      t.prio.(!i) <- t.prio.(parent);
      t.value.(!i) <- t.value.(parent);
      i := parent
    end
  done;
  t.prio.(!i) <- prio;
  t.value.(!i) <- v

let pop t =
  if t.len = 0 then None
  else begin
    let prio = t.prio.(0) and value = t.value.(0) in
    let last = t.len - 1 in
    t.len <- last;
    if last > 0 then begin
      (* Sift the former last entry down from the root. *)
      let p = t.prio.(last) and v = t.value.(last) in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= last then continue := false
        else begin
          let r = l + 1 in
          let c = if r < last && t.prio.(r) < t.prio.(l) then r else l in
          if t.prio.(c) >= p then continue := false
          else begin
            t.prio.(!i) <- t.prio.(c);
            t.value.(!i) <- t.value.(c);
            i := c
          end
        end
      done;
      t.prio.(!i) <- p;
      t.value.(!i) <- v
    end;
    Some (prio, value)
  end
