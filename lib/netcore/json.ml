type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* ---- parsing: recursive descent over a cursor ---- *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> fail "unexpected end of input at %d" c.pos

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        c.pos <- c.pos + 1;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  let got = next c in
  if got <> ch then fail "expected '%c' at %d, got '%c'" ch (c.pos - 1) got

let literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

(* Encode a Unicode scalar value as UTF-8 into [b]. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let digit () =
    match next c with
    | '0' .. '9' as ch -> Char.code ch - Char.code '0'
    | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
    | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
    | ch -> fail "bad hex digit '%c' at %d" ch (c.pos - 1)
  in
  let a = digit () in
  let b = digit () in
  let d = digit () in
  let e = digit () in
  (((a * 16) + b) * 16 + d) * 16 + e

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match next c with
    | '"' -> Buffer.contents b
    | '\\' ->
        (match next c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' -> add_utf8 b (hex4 c)
        | ch -> fail "bad escape '\\%c' at %d" ch (c.pos - 1));
        go ()
    | ch -> Buffer.add_char b ch; go ()
  in
  go ()

let parse_number c =
  (* RFC 8259 grammar: no leading zeros, no bare '.', at least one digit
     in every digit run — stricter than [float_of_string]. *)
  let start = c.pos in
  let consume () = c.pos <- c.pos + 1 in
  let digits1 what =
    let d0 = c.pos in
    while match peek c with Some '0' .. '9' -> true | _ -> false do
      consume ()
    done;
    if c.pos = d0 then fail "missing %s digits at %d" what c.pos
  in
  (match peek c with Some '-' -> consume () | _ -> ());
  (match peek c with
  | Some '0' -> consume () (* a leading 0 must stand alone *)
  | Some '1' .. '9' -> digits1 "integer"
  | _ -> fail "missing integer digits at %d" c.pos);
  (match peek c with
  | Some '0' .. '9' -> fail "leading zero at %d" start
  | _ -> ());
  (match peek c with
  | Some '.' ->
      consume ();
      digits1 "fraction"
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      consume ();
      (match peek c with Some ('+' | '-') -> consume () | _ -> ());
      digits1 "exponent"
  | _ -> ());
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail "bad number '%s' at %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input at %d" c.pos
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then (expect c '}'; Obj [])
      else
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match next c with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | ch -> fail "expected ',' or '}' at %d, got '%c'" (c.pos - 1) ch
        in
        members []
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then (expect c ']'; Arr [])
      else
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match next c with
          | ',' -> elements (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | ch -> fail "expected ',' or ']' at %d, got '%c'" (c.pos - 1) ch
        in
        elements []
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected '%c' at %d" ch c.pos

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at %d" c.pos)
  | exception Bad m -> Error m

(* ---- printing ---- *)

let escape b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.0f" f)
        else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\":";
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---- accessors ---- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int v =
  match num v with
  | Some f when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
