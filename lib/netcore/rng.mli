(** Deterministic pseudo-random numbers (SplitMix64).

    All randomized stages of the anonymizer thread an explicit generator so
    that every experiment in the paper reproduction is bit-reproducible.
    The global [Stdlib.Random] state is never touched. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is exactly uniform in [0, bound) — modulo bias is
    removed by rejection-sampling the underlying 62-bit draw, redrawing
    the (at most [bound]/2^62 of the space) values above the largest
    multiple of [bound]. Raises on [bound <= 0]. May consume more than
    one state step, but the rejection probability is so small that
    streams coincide with the historical [mod]-based implementation for
    every practical seed and bound. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> p:float -> bool
(** [bool t ~p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice. Raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)
