(* A fixed-size Domain worker pool with a helping scheduler: [map] batches
   are consumed through an atomic work-stealing index, and the submitting
   thread participates until its batch drains. Workers never block on a
   batch, so nested [map] calls from inside a task cannot deadlock; a
   worker reaching an exhausted batch simply returns to the queue. *)

type job = unit -> unit

let c_batches = Telemetry.counter "pool.batches"
let c_tasks = Telemetry.counter "pool.tasks"
let c_steals = Telemetry.counter "pool.steals"
let c_nested = Telemetry.counter "pool.nested_seq"

(* Whether the current domain is executing a task of a [map] batch.
   Tracked per domain so a task can detect that it is already running
   under the pool and keep its own fan-out sequential instead of
   flooding the queue it is being served from (the batch driver or a
   BGP multi-domain simulation already hold the pool). Single-item
   batches and sequential fallbacks do not mark: they add no
   parallelism, so fan-out below them is still free to use the pool. *)
let task_depth = Domain.DLS.new_key (fun () -> ref 0)

let in_worker () = !(Domain.DLS.get task_depth) > 0

type t = {
  jobs : int;
  queue : job Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let worker_loop t =
  let rec next () =
    Mutex.lock t.lock;
    let rec take () =
      if t.stopped then begin
        Mutex.unlock t.lock;
        None
      end
      else if Queue.is_empty t.queue then begin
        Condition.wait t.work_available t.lock;
        take ()
      end
      else begin
        let job = Queue.pop t.queue in
        Mutex.unlock t.lock;
        Some job
      end
    in
    match take () with
    | None -> ()
    | Some job ->
        job ();
        next ()
  in
  next ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopped = false;
      workers = [];
    }
  in
  (* The caller helps during [map], so jobs - 1 background domains give a
     total of [jobs] active workers. *)
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.stopped <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let map t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when t.jobs <= 1 || t.stopped -> List.map f xs
  | _ when in_worker () ->
      (* Nested fan-out from inside a pool task: the pool is already
         busy with the enclosing batch, so run in place. Results are
         identical either way. *)
      Telemetry.incr c_nested;
      List.map f xs
  | _ ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let error = Atomic.make None in
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      Telemetry.incr c_batches;
      Telemetry.add c_tasks n;
      (* The last finisher signals the submitter, which parks on
         [batch_done] once a bounded spin has not seen the batch drain —
         so a long tail task does not pin the submitting core. *)
      let batch_lock = Mutex.create () in
      let batch_done = Condition.create () in
      let finish_one () =
        if Atomic.fetch_and_add completed 1 + 1 = n then begin
          Mutex.lock batch_lock;
          Condition.broadcast batch_done;
          Mutex.unlock batch_lock
        end
      in
      let help ~stolen () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            if stolen then Telemetry.incr c_steals;
            let depth = Domain.DLS.get task_depth in
            incr depth;
            (try results.(i) <- Some (f items.(i))
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set error None (Some (e, bt))));
            decr depth;
            finish_one ();
            go ()
          end
        in
        go ()
      in
      (* Hand a helper to every idle worker; stale helpers popped after the
         batch has drained exit immediately. *)
      let helpers = min (t.jobs - 1) (n - 1) in
      Mutex.lock t.lock;
      for _ = 1 to helpers do
        Queue.push (help ~stolen:true) t.queue
      done;
      Condition.broadcast t.work_available;
      Mutex.unlock t.lock;
      help ~stolen:false ();
      let spins = ref 0 in
      while Atomic.get completed < n && !spins < 10_000 do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get completed < n then begin
        Mutex.lock batch_lock;
        while Atomic.get completed < n do
          Condition.wait batch_done batch_lock
        done;
        Mutex.unlock batch_lock
      end;
      (match Atomic.get error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list (Array.map Option.get results)

(* The process-wide shared pool. Sized by [Domain.recommended_domain_count]
   unless [set_default_jobs] was called first (the [--jobs] flag). *)

(* Both the lazy init and the resize read-modify-write [shared] under one
   mutex: two domains racing [default ()] used to each build a pool, with
   one leaking its worker domains forever. [shutdown] of the displaced
   pool happens outside the lock — it may block on an in-flight [map],
   which completes normally (workers finish the batch they are helping
   with before they notice [stopped]), and new callers already get the
   replacement pool meanwhile. *)

let default_jobs = ref None
let shared = ref None
let shared_lock = Mutex.create ()

let set_default_jobs j =
  let displaced =
    Mutex.protect shared_lock (fun () ->
        default_jobs := Some (max 1 j);
        let p = !shared in
        shared := None;
        p)
  in
  match displaced with Some p -> shutdown p | None -> ()

let default () =
  Mutex.protect shared_lock (fun () ->
      match !shared with
      | Some p -> p
      | None ->
          let p = create ?jobs:!default_jobs () in
          shared := Some p;
          p)

let parallel_map ?pool f xs =
  let t = match pool with Some t -> t | None -> default () in
  map t f xs

let effective_jobs ?pool () =
  if in_worker () then 1
  else match pool with Some t -> t.jobs | None -> jobs (default ())

(* Split [xs] into at most [into] contiguous runs of near-equal length.
   Concatenating the result always gives back [xs]; the boundaries only
   affect scheduling, never results. *)
let chunks ~into xs =
  let n = List.length xs in
  if into <= 1 || n <= 1 then [ xs ]
  else begin
    let into = min into n in
    let q = n / into and r = n mod into in
    let rec take k xs acc =
      if k = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) tl (x :: acc)
    in
    let rec go i xs acc =
      if i = into then List.rev acc
      else
        let size = q + if i < r then 1 else 0 in
        let c, rest = take size xs [] in
        go (i + 1) rest (c :: acc)
    in
    go 0 xs []
  end

let chunked_map ?pool f xs =
  match xs with
  | [] | [ _ ] -> List.map f xs
  | _ ->
      let t = match pool with Some t -> t | None -> default () in
      (* A few chunks per worker so a straggling chunk does not idle the
         rest of the pool. *)
      let into = effective_jobs ~pool:t () * 4 in
      List.concat (map t (List.map f) (chunks ~into xs))
