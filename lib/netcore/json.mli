(** Minimal zero-dependency JSON: just enough for the serve protocol.

    One value type, a total recursive-descent parser, and a printer that
    escapes the same way {!Telemetry.report_json} and the batch records
    do. Numbers are floats (every integer the protocol carries fits a
    double exactly); object member order is preserved; duplicate keys
    keep their first occurrence under {!member}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Whole-string parse: leading/trailing whitespace allowed, anything
    else after the value is an error. Never raises. *)

val to_string : t -> string
(** Compact single-line rendering (no added whitespace), suitable for
    the line-delimited wire protocol. *)

(** {1 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects. *)

val str : t -> string option
val num : t -> float option
val int : t -> int option
(** {!num} rounded; [None] when not within integer range. *)

val bool : t -> bool option
