(** Monotonic time.

    Every duration in the tree — telemetry spans, per-job batch timing,
    server uptime — must come from here, never from [Unix.gettimeofday]:
    the wall clock steps (NTP slews and jumps, manual adjustment), and a
    step across a measured interval records a negative or garbage
    duration. The monotonic clock has an arbitrary epoch and never goes
    backwards.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] through a tiny C stub; on
    platforms without a monotonic clock it degrades to the wall clock. *)

val now : unit -> float
(** Seconds since an arbitrary process-independent epoch. Monotonically
    non-decreasing; only meaningful as a difference of two reads. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0], clamped below at [0.] as a last line
    of defence on fallback platforms. *)
