type t = int

let mask32 = 0xFFFFFFFF
let zero = 0
let of_int n = n land mask32
let to_int t = t

let of_octets a b c d =
  ((a land 0xFF) lsl 24)
  lor ((b land 0xFF) lsl 16)
  lor ((c land 0xFF) lsl 8)
  lor (d land 0xFF)

let to_octets t =
  ((t lsr 24) land 0xFF, (t lsr 16) land 0xFF, (t lsr 8) land 0xFF, t land 0xFF)

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      (* Plain decimal digits only. [int_of_string] also accepts 0x/0o/0b
         radix prefixes, '_' separators and sign characters, none of which
         belong in an IPv4 octet ("0x10.1.2.3" must not parse). *)
      let octet x =
        let len = String.length x in
        if len = 0 || len > 3 || not (String.for_all (fun ch -> ch >= '0' && ch <= '9') x)
        then None
        else
          let n = int_of_string x in
          if n <= 255 then Some n else None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Ok (of_octets a b c d)
      | _ -> Error (Printf.sprintf "invalid IPv4 octet in %S" s))
  | _ -> Error (Printf.sprintf "invalid IPv4 address %S" s)

let of_string_exn s =
  match of_string s with Ok t -> t | Error msg -> invalid_arg msg

let to_string t =
  let a, b, c, d = to_octets t in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let add t n = (t + n) land mask32
let compare = Int.compare
let equal = Int.equal
let pp ppf t = Format.pp_print_string ppf (to_string t)
