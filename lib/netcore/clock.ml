external monotonic_ns : unit -> int64 = "confmask_clock_monotonic_ns"

let now () = Int64.to_float (monotonic_ns ()) /. 1e9
let elapsed t0 = Float.max 0.0 (now () -. t0)
