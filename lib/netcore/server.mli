(** Zero-dependency line-delimited request server.

    The transport layer of [confmask serve]: it owns the listening
    socket, connection handling, a {e bounded} request queue with
    admission control, worker threads, per-request telemetry, and
    graceful drain-then-exit shutdown. It knows nothing about the
    request format beyond "one request per line, one response line per
    request" — the application supplies a [handler : string -> string]
    plus formatters for the server-originated rejections, so the
    protocol (JSON, for confmask) lives entirely in the caller.

    Concurrency model: one accept thread, one thread per connection
    (blocked threads release the runtime lock, so idle connections are
    cheap), and [workers] request-processing threads consuming the
    shared queue. CPU-heavy handlers parallelize internally through
    {!Pool}, whose workers are domains — the server threads only
    schedule and shuttle bytes. Requests on one connection are answered
    in order (pipelining is allowed); requests across connections are
    answered as workers free up.

    Admission control: a request arriving while the queue already holds
    [queue_cap] entries is {e rejected immediately} with the
    application's [rejected Queue_full] response instead of being
    accepted into an unbounded backlog — under overload the server
    degrades to fast typed errors, never to unbounded memory growth or
    silent latency. After {!initiate_shutdown}, new requests are
    rejected with [rejected Draining] while queued and in-flight
    requests complete and their responses are delivered (the graceful
    drain), then {!run} returns.

    Telemetry: each request runs under a ["serve.request"] span;
    [serve.accepted], [serve.served], [serve.rejected] and
    [serve.connections] counters tick process-wide. *)

type addr =
  | Unix_sock of string  (** path of a Unix-domain socket *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare port number (TCP on
    127.0.0.1). *)

val addr_to_string : addr -> string

type reject = Queue_full | Draining
(** Why the server refused a request without running the handler. *)

type config = {
  addr : addr;
  queue_cap : int;  (** bound on queued (not yet executing) requests *)
  workers : int;  (** request-processing threads *)
  handler : string -> string;  (** request line -> response line *)
  rejected : reject -> string;  (** response line for a refused request *)
  on_error : exn -> string;  (** response line when the handler raises *)
}

type t

type stats = {
  uptime_s : float;  (** monotonic seconds since {!create} *)
  accepted : int;  (** requests admitted to the queue *)
  served : int;  (** responses produced by the handler *)
  rejected_full : int;  (** admission-control rejections *)
  rejected_draining : int;  (** rejections after shutdown started *)
  queue_depth : int;  (** requests currently waiting *)
  in_flight : int;  (** requests currently executing *)
  queue_cap : int;
  workers : int;
  connections : int;  (** currently open client connections *)
}

val create : config -> t
(** Binds and listens (unlinking a stale Unix socket first). Raises
    [Unix.Unix_error] when the address cannot be bound. No thread runs
    until {!run}. *)

val run : t -> unit
(** Serves until {!initiate_shutdown} (from a handler, a signal handler
    or another thread), then drains: queued and executing requests
    finish and their responses are written, new requests are rejected,
    connections are closed, worker threads are joined, and a Unix
    socket path is unlinked. Callable once. *)

val initiate_shutdown : t -> unit
(** Starts the graceful drain; idempotent, safe from any thread and
    from OCaml signal handlers. *)

val stats : t -> stats
(** A consistent snapshot; safe from any thread, including handlers. *)

val request : addr -> string -> string
(** One-shot client: connect, send one request line, read one response
    line, close. Raises [Unix.Unix_error] / [Sys_error] when the server
    is unreachable, [End_of_file] when it hangs up without answering. *)

val connect : addr -> in_channel * out_channel
(** A persistent client connection (line-per-request pipelining); close
    with [close_out] on the returned [out_channel]. *)
