(** Lightweight pipeline telemetry: named spans, atomic counters, and the
    engine self-check knob.

    Everything here is process-global and safe to use from any [Domain]:
    counters are [Atomic] cells, span aggregation is mutex-protected, and
    the per-domain span stack lives in domain-local storage so nested
    spans compose correctly across the worker pool.

    Disabled is the default and costs one [Atomic.get] branch per call —
    counters do not tick and spans do not read the clock. Enable with
    {!set_enabled} (the CLI's [--trace] / [--metrics-out] flags and the
    bench harness do) before running the pipeline being measured.

    The self-check period is independent of {!enabled}: when positive,
    [Routing.Engine.apply_edit] shadows every Nth edit with a from-scratch
    [Simulate.run] and fails loudly on FIB divergence. It is seeded from
    the [CONFMASK_SELFCHECK] environment variable at startup and can be
    overridden programmatically (the CLI's [--selfcheck] flag). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Counters} *)

type counter
(** A named atomic counter, interned process-wide by name: two [counter]
    calls with the same name return the same cell. *)

val counter : string -> counter
val incr : counter -> unit
(** No-op while disabled. *)

val add : counter -> int -> unit
(** No-op while disabled. *)

val value : counter -> int
val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

(** {1 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] on the monotonic clock ({!Clock.now},
    so a wall-clock step can never record a negative duration) and aggregates the
    duration under the span's path — [name] prefixed by the names of the
    enclosing spans of the current domain, joined with ["/"]. While
    disabled it is exactly [f ()]. Exceptions propagate; the time until
    the raise is still recorded. *)

val spans : unit -> (string * int * float) list
(** [(path, count, total_seconds)] per recorded span path, sorted. *)

(** {1 Self-check} *)

val selfcheck_period : unit -> int
(** [0] disables the shadow check; [n > 0] shadows every [n]th
    [Engine.apply_edit]. Initialized from [CONFMASK_SELFCHECK]: unset or
    un-parsable as a positive integer means [0], except that any
    non-empty non-numeric value (e.g. ["yes"]) means [1]. *)

val set_selfcheck : int -> unit
(** Clamped below at [0]. *)

(** {1 Reports} *)

val reset : unit -> unit
(** Zeroes every counter and drops all span aggregates. Leaves the
    enabled flag and self-check period alone. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable spans-then-counters report (the [--trace] output). *)

val report_json : unit -> string
(** The same report as a JSON object:
    [{"spans": [{"path", "count", "seconds"}...], "counters": {...}}]. *)
