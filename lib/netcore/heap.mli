(** Mutable array-backed binary min-heap with integer priorities and
    integer payloads — the allocation-free inner queue of the compiled
    Dijkstra kernels. [Pqueue] remains the persistent facade for callers
    that want a functional queue over arbitrary payloads.

    Not thread-safe; use one heap per Dijkstra run. *)

type t

val create : ?capacity:int -> unit -> t

val is_empty : t -> bool
val size : t -> int

val push : t -> prio:int -> int -> unit

val pop : t -> (int * int) option
(** Removes a minimum-priority entry as [(prio, value)]. Ties pop in an
    unspecified order. *)

val clear : t -> unit
(** Empties the heap, keeping its storage for reuse. *)
