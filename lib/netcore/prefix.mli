(** IPv4 prefixes (CIDR blocks) and a fresh-prefix allocator.

    A prefix is stored in canonical form: all bits below the prefix length
    are zero, so structural equality coincides with semantic equality. *)

type t = private { network : Ipv4.t; len : int }

val v : Ipv4.t -> int -> t
(** [v addr len] is the prefix [addr/len], canonicalized by masking the host
    bits of [addr]. Raises [Invalid_argument] if [len] is outside [0, 32]. *)

val of_string : string -> (t, string) result
(** [of_string "10.0.0.0/24"] parses CIDR notation. A bare address parses as
    a /32. *)

val of_string_exn : string -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val network : t -> Ipv4.t
val length : t -> int
val netmask : t -> Ipv4.t
val wildcard : t -> Ipv4.t
(** Cisco-style inverted mask, e.g. [0.0.0.255] for a /24. *)

val size : t -> int
(** Number of addresses covered. *)

val mem : Ipv4.t -> t -> bool
val subset : sub:t -> super:t -> bool
val overlaps : t -> t -> bool

val host : t -> int -> Ipv4.t
(** [host p i] is the [i]-th address inside [p] (0 is the network address). *)

val compare : t -> t -> int
val equal : t -> t -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** {1 Fresh prefix allocation}

    The anonymizer must mint IP prefixes that do not collide with anything
    in the original network (ConfMask §5.3). The allocator hands out
    subprefixes of a base pool, skipping a caller-supplied avoid set. *)

type alloc

exception
  Pool_exhausted of {
    pool : t;  (** The base pool that ran out. *)
    requested_len : int;  (** The prefix length being allocated. *)
    cursor : int;  (** Allocator cursor (address offset) at exhaustion. *)
    probes : int;  (** Candidates examined over the allocator's lifetime. *)
  }
(** Raised by {!alloc_fresh} when no free /[len] remains. Carries the
    allocation context ([Printexc.to_string] renders it readably) so an
    exhausted run can report what it was asking for and how far the
    cursor had advanced. *)

val alloc_create : ?base:t -> avoid:t list -> unit -> alloc
(** [alloc_create ~avoid ()] allocates from [base] (default
    [100.64.0.0/10], the CGNAT range, which never appears in generated
    networks). *)

val alloc_fresh : alloc -> len:int -> t
(** [alloc_fresh a ~len] returns a fresh /[len] disjoint from the avoid set
    and from everything previously returned. Raises {!Pool_exhausted} if
    the pool has run out — in O(1) probes even when huge avoided ranges
    cover it, via the cursor jump — and [Invalid_argument] when [len] is
    shorter than the pool's own length. *)

val alloc_used : alloc -> t list
(** All prefixes handed out so far, most recent first. *)

val alloc_probes : alloc -> int
(** Number of candidate prefixes examined over the allocator's lifetime.
    Each allocation probes at most once per distinct clashing range plus
    one successful candidate — the cursor jumps past a clashing range
    rather than stepping through it, and never revisits it. *)
