let src = Logs.Src.create "confmask.telemetry" ~doc:"ConfMask pipeline telemetry"

module Log = (val Logs.src_log src : Logs.LOG)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ---- counters ---- *)

type counter = { c_name : string; c_cell : int Atomic.t }

let registry_lock = Mutex.create ()
let registry : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { c_name = name; c_cell = Atomic.make 0 } in
          Hashtbl.replace registry name c;
          c)

let add c n =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_cell n)

let incr c = add c 1
let value c = Atomic.get c.c_cell

let counters () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_cell) :: acc) registry [])
  |> List.sort compare

(* ---- spans ---- *)

type span_stat = { mutable s_count : int; mutable s_seconds : float }

let spans_lock = Mutex.create ()
let span_table : (string, span_stat) Hashtbl.t = Hashtbl.create 64

(* Innermost-first stack of enclosing span names, per domain. *)
let span_stack : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let record path seconds =
  Mutex.protect spans_lock (fun () ->
      let s =
        match Hashtbl.find_opt span_table path with
        | Some s -> s
        | None ->
            let s = { s_count = 0; s_seconds = 0.0 } in
            Hashtbl.replace span_table path s;
            s
      in
      s.s_count <- s.s_count + 1;
      s.s_seconds <- s.s_seconds +. seconds)

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get span_stack in
    let path = String.concat "/" (List.rev (name :: stack)) in
    Domain.DLS.set span_stack (name :: stack);
    (* Monotonic, not wall clock: an NTP step inside the span would
       otherwise record a negative or garbage duration. *)
    let t0 = Clock.now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Clock.elapsed t0 in
        Domain.DLS.set span_stack stack;
        record path dt;
        Log.debug (fun m -> m "span %s: %.6fs" path dt))
      f
  end

let spans () =
  Mutex.protect spans_lock (fun () ->
      Hashtbl.fold
        (fun path s acc -> (path, s.s_count, s.s_seconds) :: acc)
        span_table [])
  |> List.sort compare

(* ---- self-check ---- *)

let selfcheck_of_env () =
  match Sys.getenv_opt "CONFMASK_SELFCHECK" with
  | None -> 0
  | Some s -> (
      let s = String.trim s in
      if s = "" then 0
      else
        match int_of_string_opt s with
        | Some n -> max 0 n
        | None -> 1)

let selfcheck = Atomic.make (selfcheck_of_env ())
let selfcheck_period () = Atomic.get selfcheck
let set_selfcheck n = Atomic.set selfcheck (max 0 n)

(* ---- reports ---- *)

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) registry);
  Mutex.protect spans_lock (fun () -> Hashtbl.reset span_table)

let pp_report ppf () =
  let sp = spans () in
  if sp <> [] then begin
    Format.fprintf ppf "spans:@.";
    List.iter
      (fun (path, count, seconds) ->
        Format.fprintf ppf "  %-40s %6d calls %10.3fs@." path count seconds)
      sp
  end;
  Format.fprintf ppf "counters:@.";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-40s %10d@." name v)
    (counters ())

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"spans\": [\n";
  let sp = spans () in
  List.iteri
    (fun i (path, count, seconds) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"path\": \"%s\", \"count\": %d, \"seconds\": %.6f}%s\n"
           (json_escape path) count seconds
           (if i = List.length sp - 1 then "" else ",")))
    sp;
  Buffer.add_string b "  ],\n  \"counters\": {\n";
  let cs = counters () in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "    \"%s\": %d%s\n" (json_escape name) v
           (if i = List.length cs - 1 then "" else ",")))
    cs;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b
