type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 (Steele, Lea, Flood 2014): a tiny, fast, statistically solid
   generator whose whole state is one 64-bit word, making [copy]/[split]
   trivial. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits of the SplitMix64 output
     (dropping to 62 bits keeps the draw a non-negative native int, so
     draws are uniform on [0, 2^62) = [0, max_int]).  A plain [r mod
     bound] over-weights the low residues whenever [bound] does not
     divide 2^62; redrawing the values above the largest multiple of
     [bound] makes every residue exactly equally likely.  [cut] is that
     largest multiple minus one, computed without forming 2^62 (which
     overflows a 63-bit int).  Accepted draws yield the same value the
     pre-rejection implementation did, and the rejection probability is
     below [bound]/2^62, so in practice the stream is unchanged. *)
  let cut = max_int - (((max_int mod bound) + 1) mod bound) in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    if r <= cut then r mod bound else draw ()
  in
  draw ()

let float t =
  let bits53 = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits53 /. 9007199254740992.0

let bool t ~p = float t < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
