(** Dense integer ids for strings.

    Ids are assigned in insertion order starting at 0, so a given
    insertion sequence always produces the same id assignment — outputs
    derived from interned ids stay bit-identical across runs. Both
    directions are O(1): [intern]/[find] hash once, [name] is an array
    index.

    Interning is not thread-safe; build the table fully before sharing
    it. Concurrent {e reads} ([find], [name], [length]) of a fully built
    table are safe. *)

type t

val create : ?capacity:int -> unit -> t

val intern : t -> string -> int
(** The id of the string, assigning the next dense id on first sight. *)

val find : t -> string -> int option
(** The id of an already-interned string. *)

val find_exn : t -> string -> int
(** @raise Not_found when the string was never interned. *)

val name : t -> int -> string
(** The string of an id. @raise Invalid_argument on an out-of-range id. *)

val length : t -> int
(** Number of interned strings; valid ids are [0 .. length - 1]. *)

val iter : t -> (int -> string -> unit) -> unit
(** [iter t f] applies [f id name] in ascending id (= insertion) order. *)
