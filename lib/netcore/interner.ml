type t = {
  mutable names : string array;
  mutable len : int;
  ids : (string, int) Hashtbl.t;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  { names = Array.make capacity ""; len = 0; ids = Hashtbl.create capacity }

let length t = t.len

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = t.len in
      if id = Array.length t.names then begin
        let grown = Array.make (2 * id) "" in
        Array.blit t.names 0 grown 0 id;
        t.names <- grown
      end;
      t.names.(id) <- s;
      t.len <- id + 1;
      Hashtbl.add t.ids s id;
      id

let find t s = Hashtbl.find_opt t.ids s
let find_exn t s = Hashtbl.find t.ids s

let name t id =
  if id < 0 || id >= t.len then
    invalid_arg (Printf.sprintf "Interner.name: id %d out of range" id);
  t.names.(id)

let iter t f =
  for id = 0 to t.len - 1 do
    f id t.names.(id)
  done
