type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  let prefix p =
    String.length s > String.length p
    && String.equal (String.sub s 0 (String.length p)) p
  in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then Ok (Unix_sock (after "unix:"))
  else if prefix "tcp:" then
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | None -> (
        match int_of_string_opt rest with
        | Some p when p > 0 -> Ok (Tcp ("127.0.0.1", p))
        | _ -> Error (Printf.sprintf "bad tcp address '%s' (want tcp:HOST:PORT)" rest))
    | Some i -> (
        let host = String.sub rest 0 i
        and port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && host <> "" -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "bad tcp address '%s' (want tcp:HOST:PORT)" rest))
  else
    match int_of_string_opt s with
    | Some p when p > 0 -> Ok (Tcp ("127.0.0.1", p))
    | _ ->
        Error
          (Printf.sprintf
             "bad listen address '%s' (want unix:PATH, tcp:HOST:PORT or a port)" s)

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type reject = Queue_full | Draining

type config = {
  addr : addr;
  queue_cap : int;
  workers : int;
  handler : string -> string;
  rejected : reject -> string;
  on_error : exn -> string;
}

let c_accepted = Telemetry.counter "serve.accepted"
let c_served = Telemetry.counter "serve.served"
let c_rejected = Telemetry.counter "serve.rejected"
let c_connections = Telemetry.counter "serve.connections"

(* One queued request. The connection thread that read it parks on the
   cell until a worker fills [resp], then writes the response — so each
   connection's responses keep request order. *)
type pending = {
  req : string;
  cell_lock : Mutex.t;
  cell_filled : Condition.t;
  mutable resp : string option;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  started : float;
  (* Signal-handler-safe shutdown request; everything lock-based happens
     on the accept loop after it polls this. *)
  stop : bool Atomic.t;
  lock : Mutex.t;
  nonempty : Condition.t;  (* workers: queue has work (or we stopped) *)
  idle : Condition.t;  (* drain: a request fully completed *)
  queue : pending Queue.t;
  mutable draining : bool;
  mutable stopped : bool;  (* workers may exit once queue is empty *)
  mutable conn_fds : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable accepted : int;
  mutable served : int;
  mutable rejected_full : int;
  mutable rejected_draining : int;
  mutable in_flight : int;
  mutable unwritten : int;  (* admitted requests whose response is not yet on the wire *)
}

type stats = {
  uptime_s : float;
  accepted : int;
  served : int;
  rejected_full : int;
  rejected_draining : int;
  queue_depth : int;
  in_flight : int;
  queue_cap : int;
  workers : int;
  connections : int;
}

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        uptime_s = Clock.elapsed t.started;
        accepted = t.accepted;
        served = t.served;
        rejected_full = t.rejected_full;
        rejected_draining = t.rejected_draining;
        queue_depth = Queue.length t.queue;
        in_flight = t.in_flight;
        queue_cap = t.cfg.queue_cap;
        workers = t.cfg.workers;
        connections = List.length t.conn_fds;
      })

let create (cfg : config) =
  let cfg = { cfg with queue_cap = max 1 cfg.queue_cap; workers = max 1 cfg.workers } in
  let listen_fd =
    match cfg.addr with
    | Unix_sock path ->
        (try Sys.remove path with Sys_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        fd
    | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).h_addr_list.(0)
            with Not_found ->
              raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "gethostbyname", host)))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (ip, port));
        Unix.listen fd 64;
        fd
  in
  {
    cfg;
    listen_fd;
    started = Clock.now ();
    stop = Atomic.make false;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    idle = Condition.create ();
    queue = Queue.create ();
    draining = false;
    stopped = false;
    conn_fds = [];
    conn_threads = [];
    accepted = 0;
    served = 0;
    rejected_full = 0;
    rejected_draining = 0;
    in_flight = 0;
    unwritten = 0;
  }

let initiate_shutdown t = Atomic.set t.stop true

(* ---- worker threads ---- *)

let worker_loop t =
  let rec go () =
    Mutex.lock t.lock;
    let rec take () =
      if not (Queue.is_empty t.queue) then begin
        let p = Queue.pop t.queue in
        t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.lock;
        Some p
      end
      else if t.stopped then begin
        Mutex.unlock t.lock;
        None
      end
      else begin
        Condition.wait t.nonempty t.lock;
        take ()
      end
    in
    match take () with
    | None -> ()
    | Some p ->
        let resp =
          Telemetry.with_span "serve.request" (fun () ->
              try t.cfg.handler p.req with e -> t.cfg.on_error e)
        in
        (* Fill the cell before leaving in-flight, so the drain's
           "in_flight = 0" implies every admitted request has its
           response (the connection threads then get [unwritten] to 0). *)
        Mutex.protect p.cell_lock (fun () ->
            p.resp <- Some resp;
            Condition.broadcast p.cell_filled);
        Mutex.protect t.lock (fun () ->
            t.in_flight <- t.in_flight - 1;
            t.served <- t.served + 1;
            Telemetry.incr c_served;
            Condition.broadcast t.idle);
        go ()
  in
  go ()

(* ---- connection threads ---- *)

(* Strip one trailing CR so netcat-style clients work over TCP. *)
let chomp line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let conn_loop t fd =
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let respond line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let finally () =
    Mutex.protect t.lock (fun () ->
        t.conn_fds <- List.filter (fun f -> f != fd) t.conn_fds;
        Condition.broadcast t.idle);
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  (try
     let rec serve () =
       let line = chomp (input_line ic) in
       let verdict =
         Mutex.protect t.lock (fun () ->
             if t.draining || Atomic.get t.stop then begin
               t.rejected_draining <- t.rejected_draining + 1;
               Telemetry.incr c_rejected;
               `Reject Draining
             end
             else if Queue.length t.queue >= t.cfg.queue_cap then begin
               t.rejected_full <- t.rejected_full + 1;
               Telemetry.incr c_rejected;
               `Reject Queue_full
             end
             else begin
               let p =
                 {
                   req = line;
                   cell_lock = Mutex.create ();
                   cell_filled = Condition.create ();
                   resp = None;
                 }
               in
               Queue.push p t.queue;
               t.accepted <- t.accepted + 1;
               t.unwritten <- t.unwritten + 1;
               Telemetry.incr c_accepted;
               Condition.broadcast t.nonempty;
               `Admitted p
             end)
       in
       (match verdict with
       | `Reject reason -> respond (t.cfg.rejected reason)
       | `Admitted p ->
           let resp =
             Mutex.protect p.cell_lock (fun () ->
                 while p.resp = None do
                   Condition.wait p.cell_filled p.cell_lock
                 done;
                 Option.get p.resp)
           in
           let wrote = try respond resp; true with Sys_error _ -> false in
           Mutex.protect t.lock (fun () ->
               t.unwritten <- t.unwritten - 1;
               Condition.broadcast t.idle);
           if not wrote then raise End_of_file);
       serve ()
     in
     serve ()
   with
  | End_of_file | Sys_error _ -> ()
  | Unix.Unix_error _ -> ());
  finally ()

(* ---- the server loop ---- *)

let run t =
  let workers = List.init t.cfg.workers (fun _ -> Thread.create worker_loop t) in
  (* Accept until shutdown is requested. The 0.2 s select tick is what
     turns the signal-safe atomic flag into lock-based state changes. *)
  let rec accept_loop () =
    if Atomic.get t.stop then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              Telemetry.incr c_connections;
              let th = Thread.create (conn_loop t) fd in
              Mutex.protect t.lock (fun () ->
                  t.conn_fds <- fd :: t.conn_fds;
                  t.conn_threads <- th :: t.conn_threads)
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Graceful drain: stop admitting (connection threads see [draining]),
     let queued and executing requests finish and their responses reach
     the wire, then tear the transport down. *)
  Mutex.protect t.lock (fun () ->
      t.draining <- true;
      while not (Queue.is_empty t.queue && t.in_flight = 0 && t.unwritten = 0) do
        Condition.wait t.idle t.lock
      done;
      t.stopped <- true;
      Condition.broadcast t.nonempty);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.addr with
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ());
  (* Unblock connection threads parked in [input_line]; each closes its
     own fd on the way out. *)
  let fds, threads =
    Mutex.protect t.lock (fun () -> (t.conn_fds, t.conn_threads))
  in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds;
  List.iter Thread.join workers;
  List.iter Thread.join threads

(* ---- client side ---- *)

let connect addr =
  let fd =
    match addr with
    | Unix_sock path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        fd
    | Tcp (host, port) ->
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).h_addr_list.(0)
            with Not_found ->
              raise (Unix.Unix_error (Unix.EADDRNOTAVAIL, "gethostbyname", host)))
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_INET (ip, port))
         with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
        fd
  in
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let request addr line =
  let ic, oc = connect addr in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc line;
      output_char oc '\n';
      flush oc;
      chomp (input_line ic))
