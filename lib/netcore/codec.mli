(** Portable, trust-nothing binary envelope for on-disk cache entries.

    The previous disk-cache envelope was a [Marshal]ed record: compact,
    but readable only by the exact compiler version that wrote it (hence
    the [Sys.ocaml_version] pin), and [Marshal.from_string] on hostile
    bytes can raise or even misbehave. This codec is an explicit byte
    format with no [Marshal] anywhere, so any OCaml (or any language)
    can read and write it, concurrent readers can share a directory
    across builds, and decoding is total: corrupted, truncated or
    foreign input yields [None], never an exception and never a stale
    payload.

    Wire layout (all integers big-endian unsigned 32-bit):

    {v
    offset        size  field
    0             8     magic "CMCODEC1"
    8             4     V  = length of version string
    12            4     K  = length of key string
    16            4     P  = length of payload
    20            V     version bytes
    20+V          K     key bytes
    20+V+K        P     payload bytes
    20+V+K+P      16    MD5 digest of bytes [0, 20+V+K+P)
    v}

    The digest covers the header too, so a flipped bit anywhere — magic,
    lengths, version, key or payload — is caught; the trailing position
    makes truncation detectable without trusting the length fields, and
    an exact total-length check rejects trailing garbage. *)

val magic : string
(** ["CMCODEC1"], 8 bytes. Bump the final digit on any layout change. *)

val encode : version:string -> key:string -> string -> string
(** [encode ~version ~key payload] is the full envelope. *)

val decode : version:string -> key:string -> string -> string option
(** [decode ~version ~key raw] is [Some payload] iff [raw] is a
    well-formed envelope whose digest verifies and whose version and key
    fields equal the expected ones. Any other input — short, corrupted,
    bit-flipped, wrong magic, wrong version, key collision — is [None].
    Never raises. *)

val decode_any : string -> (string * string * string) option
(** [decode_any raw] is [Some (version, key, payload)] for a well-formed
    envelope regardless of its version and key — the inspection path for
    tools and tests. Never raises. *)
