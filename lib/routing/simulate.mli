(** End-to-end control-plane simulation (the Batfish substitute).

    Compiles configurations, runs the protocol engines — one IGP domain
    per AS when BGP is present, a single domain otherwise — merges
    candidate routes into per-router FIBs by administrative distance, and
    exposes the data plane.

    This is the from-scratch reference path; [Routing.Engine] layers
    incremental recomputation on top of the same building blocks and is
    property-tested equivalent to it. Independent IGP domains and
    per-prefix SPF runs execute in parallel through [Netcore.Pool]
    (parallelism never changes results). *)

module Smap = Device.Smap

type snapshot = {
  net : Device.network;
  fibs : Fib.t Smap.t;
  compiled : Compiled.t;
      (** the network's compiled form, shared with data-plane extraction *)
}

val run :
  ?pool:Netcore.Pool.t ->
  Configlang.Ast.config list ->
  (snapshot, string) result

val run_exn : ?pool:Netcore.Pool.t -> Configlang.Ast.config list -> snapshot

val run_net : ?pool:Netcore.Pool.t -> Device.network -> Fib.t Smap.t
(** Protocol computation only, for callers that already compiled. *)

val dataplane : ?max_paths:int -> snapshot -> Dataplane.t

val host_routes : snapshot -> (string * Netcore.Prefix.t * string list) list
(** Flattened FIB view [(router, host prefix, sorted next-hop routers)],
    restricted to destinations that are host subnets — the
    [⟨r, h_d, nxt⟩ ∈ DP] triples iterated by Algorithm 1. *)

val host_prefixes : Device.network -> (Netcore.Prefix.t * string) list
(** [(subnet, host name)] for every host. *)

(** {1 Building blocks shared with the incremental engine} *)

val connected_routes : Device.router -> Fib.route list

val static_routes : Device.network -> Device.router -> Fib.route list
(** Static routes whose next hop resolves over a connected subnet. *)

type igp_domain = {
  dom_key : [ `As of int | `Residual | `Global ];
  dom_members : string list;  (** router names, ascending *)
  dom_scope : string -> bool;  (** evaluated on router names only *)
}

val igp_domains : Device.network -> igp_domain list
(** The disjoint IGP domains of the network: one per AS plus a residual
    domain when BGP is present, a single global domain otherwise. *)

val merge_candidates :
  Fib.route list Smap.t -> Fib.route list Smap.t -> Fib.route list Smap.t
(** Per-router concatenation (left routes first). *)

val domain_candidates :
  ?pool:Netcore.Pool.t ->
  Device.network ->
  igp_domain ->
  Fib.route list Smap.t
(** OSPF @ RIP @ EIGRP candidates of one domain's members. *)

val base_fibs_of_candidates :
  Device.network -> Fib.route list Smap.t -> Fib.t Smap.t
(** Per-router FIBs from connected, static and the given IGP candidates
    (everything except BGP). *)
