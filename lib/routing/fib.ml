open Netcore

type proto = Connected | Static | Ospf | Rip | Eigrp | Ebgp | Ibgp

let admin_distance = function
  | Connected -> 0
  | Static -> 1
  | Ebgp -> 20
  | Eigrp -> 90
  | Ospf -> 110
  | Rip -> 120
  | Ibgp -> 200

let proto_to_string = function
  | Connected -> "connected"
  | Static -> "static"
  | Ospf -> "ospf"
  | Rip -> "rip"
  | Eigrp -> "eigrp"
  | Ebgp -> "ebgp"
  | Ibgp -> "ibgp"

type nexthop = { nh_router : string; nh_iface : string }

type route = {
  rt_prefix : Prefix.t;
  rt_proto : proto;
  rt_metric : int;
  rt_nexthops : nexthop list;
}

(* A FIB is a sorted, duplicate-free array of routes, ordered by prefix.
   The representation is canonical: equal route contents give equal
   values under polymorphic comparison no matter how the FIB was built —
   unlike a balanced tree, whose shape remembers insertion order. The
   engine's structural reuse gates, the crucible's [fibs_equal] oracle
   and the disk cache's marshaled states all lean on that. Updates are
   persistent (copy-on-write), matching the map they replaced. *)
type t = route array

let empty = [||]

let merge_nexthops a b =
  List.sort_uniq
    (fun x y ->
      match String.compare x.nh_router y.nh_router with
      | 0 -> String.compare x.nh_iface y.nh_iface
      | c -> c)
    (a @ b)

let better a b =
  (* Lower administrative distance wins; within a protocol, lower metric. *)
  match Int.compare (admin_distance a.rt_proto) (admin_distance b.rt_proto) with
  | 0 -> Int.compare a.rt_metric b.rt_metric
  | c -> c

(* [merge_into existing r] is the installed result of offering candidate
   [r] while [existing] holds the slot — the single merge rule every
   construction path below shares. *)
let merge_into existing r =
  match better r existing with
  | c when c < 0 -> r
  | 0 ->
      {
        existing with
        rt_nexthops = merge_nexthops existing.rt_nexthops r.rt_nexthops;
      }
  | _ -> existing

let add_candidate r t =
  let n = Array.length t in
  let rec go lo hi =
    if lo >= hi then begin
      let out = Array.make (n + 1) r in
      Array.blit t 0 out 0 lo;
      Array.blit t lo out (lo + 1) (n - lo);
      out
    end
    else
      let mid = (lo + hi) / 2 in
      let c = Prefix.compare r.rt_prefix t.(mid).rt_prefix in
      if c = 0 then begin
        let out = Array.copy t in
        out.(mid) <- merge_into t.(mid) r;
        out
      end
      else if c < 0 then go lo mid
      else go (mid + 1) hi
  in
  go 0 n

(* Bulk construction: exactly [List.fold_left (fun t r -> add_candidate
   r t) empty cs], but one sort and a linear merge instead of a
   persistent insert per candidate. Sorting boxed routes spends its time
   on cache misses, so each candidate is condensed to one int —
   [network * 33 + len] orders prefixes exactly like [Prefix.compare],
   and the arrival index in the low bits makes the sort stable, keeping
   same-prefix candidates in arrival order for [merge_into] just as the
   incremental adds would. *)
let idx_bits = 24

(* Monomorphic in-place int sort (middle-pivot quicksort with insertion
   sort below 16): the comparator indirection of [Array.sort] costs more
   than the comparisons themselves on int keys. *)
let sort_ints (a : int array) =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec qsort lo hi =
    if hi - lo > 16 then begin
      let p = a.((lo + hi) / 2) in
      let i = ref lo and j = ref (hi - 1) in
      while !i <= !j do
        while a.(!i) < p do
          incr i
        done;
        while a.(!j) > p do
          decr j
        done;
        if !i <= !j then begin
          swap !i !j;
          incr i;
          decr j
        end
      done;
      qsort lo (!j + 1);
      qsort !i hi
    end
    else
      for i = lo + 1 to hi - 1 do
        let v = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > v do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- v
      done
  in
  qsort 0 (Array.length a)

let of_candidates cs =
  match cs with
  | [] -> empty
  | first :: _ ->
      let arr = Array.of_list cs in
      let n = Array.length arr in
      if n >= 1 lsl idx_bits then
        (* Unreachably many candidates for one router; stay correct. *)
        List.fold_left (fun t r -> add_candidate r t) empty cs
      else begin
        let keys = Array.make n 0 in
        for i = 0 to n - 1 do
          let p = arr.(i).rt_prefix in
          keys.(i) <-
            (((Ipv4.to_int (Prefix.network p) * 33) + Prefix.length p)
            lsl idx_bits)
            lor i
        done;
        sort_ints keys;
        let mask = (1 lsl idx_bits) - 1 in
        let distinct = ref 1 in
        for i = 1 to n - 1 do
          if keys.(i) lsr idx_bits <> keys.(i - 1) lsr idx_bits then
            incr distinct
        done;
        let out = Array.make !distinct first in
        let j = ref 0 in
        let cur = ref arr.(keys.(0) land mask) in
        for i = 1 to n - 1 do
          let r = arr.(keys.(i) land mask) in
          if keys.(i) lsr idx_bits = keys.(i - 1) lsr idx_bits then
            cur := merge_into !cur r
          else begin
            out.(!j) <- !cur;
            incr j;
            cur := r
          end
        done;
        out.(!j) <- !cur;
        out
      end

(* [add_sorted_desc t cs]: exactly [List.fold_left (fun t r ->
   add_candidate r t) t cs] when [cs] is strictly descending by prefix
   (the order batched OSPF selection emits) — one linear merge instead of
   a persistent insert per candidate. Any order violation falls back to
   the fold, so the equation holds unconditionally. *)
let add_sorted_desc t cs =
  match cs with
  | [] -> t
  | _ ->
      let m = List.length cs in
      let arr = Array.make m (List.hd cs) in
      (* Reverse the descending list into ascending order, verifying
         strictness on the way. *)
      let sorted = ref true in
      let i = ref (m - 1) in
      List.iter
        (fun r ->
          arr.(!i) <- r;
          if
            !i < m - 1
            && Prefix.compare r.rt_prefix arr.(!i + 1).rt_prefix >= 0
          then sorted := false;
          decr i)
        cs;
      if not !sorted then List.fold_left (fun t r -> add_candidate r t) t cs
      else begin
        let n = Array.length t in
        let out = Array.make (n + m) arr.(0) in
        let i = ref 0 and j = ref 0 and k = ref 0 in
        while !i < n && !j < m do
          let c = Prefix.compare t.(!i).rt_prefix arr.(!j).rt_prefix in
          if c < 0 then begin
            out.(!k) <- t.(!i);
            incr i
          end
          else if c > 0 then begin
            out.(!k) <- arr.(!j);
            incr j
          end
          else begin
            out.(!k) <- merge_into t.(!i) arr.(!j);
            incr i;
            incr j
          end;
          incr k
        done;
        while !i < n do
          out.(!k) <- t.(!i);
          incr i;
          incr k
        done;
        while !j < m do
          out.(!k) <- arr.(!j);
          incr j;
          incr k
        done;
        if !k = n + m then out else Array.sub out 0 !k
      end

let find t p =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = Prefix.compare p t.(mid).rt_prefix in
      if c = 0 then Some t.(mid) else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length t)

let lookup t addr =
  (* Longest-prefix match by direct probing: the /len prefix containing
     [addr] is a single canonical key, so try each length from most to
     least specific. 33 logarithmic probes beat a linear scan on any
     realistically sized FIB. *)
  let rec go len =
    if len < 0 then None
    else
      match find t (Prefix.v addr len) with
      | Some r -> Some r
      | None -> go (len - 1)
  in
  go 32

(* ---- probe accelerator ----

   Hot extraction paths answer thousands of point lookups against the
   same FIB. A probe condenses each slot's prefix to the same int key
   [of_candidates] sorts by, so a probe search is a binary search over
   unboxed ints — no [Prefix.compare] calls — and [probe_lens] restricts
   the LPM sweep to the lengths actually present. *)
type probe = { pb_keys : int array; pb_routes : t; pb_lens : int list }

let probe t =
  let n = Array.length t in
  let keys = Array.make n 0 in
  let seen = Array.make 33 false in
  for i = 0 to n - 1 do
    let p = t.(i).rt_prefix in
    let len = Prefix.length p in
    keys.(i) <- (Ipv4.to_int (Prefix.network p) * 33) + len;
    seen.(len) <- true
  done;
  let lens = ref [] in
  for l = 0 to 32 do
    if seen.(l) then lens := l :: !lens
  done;
  { pb_keys = keys; pb_routes = t; pb_lens = !lens }

let probe_lens pb = pb.pb_lens

let probe_find pb p =
  let k = (Ipv4.to_int (Prefix.network p) * 33) + Prefix.length p in
  let keys = pb.pb_keys in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let km = Array.unsafe_get keys mid in
      if km = k then Some pb.pb_routes.(mid)
      else if k < km then go lo mid
      else go (mid + 1) hi
  in
  go 0 (Array.length keys)

(* ---- compiled longest-prefix match ----

   A path-compressed binary trie over destination-address bits: one
   root-to-leaf walk per lookup instead of the 33 probes above. The
   trie is a separate compiled artifact — [t] itself stays the plain
   sorted array, which the engine marshals to its disk cache and
   compares structurally — built per FIB by the data-plane extractor and
   shared across every lookup against it. *)

type lpm =
  | Lnil
  | Lnode of {
      lskip : int;  (* chain bits to match before this node applies *)
      lbits : int;  (* their values, first-consumed bit highest *)
      lroute : route option;  (* route whose prefix ends exactly here *)
      lzero : lpm;
      lone : lpm;
    }

(* Mutable nodes for the build phase only — path-compressed from the
   start (PATRICIA-style insertion with node splits), so the build
   allocates O(routes) nodes rather than one node per prefix bit. *)
type lbuild = {
  mutable bskip : int;
  mutable bbits : int;
  mutable br : route option;
  mutable bz : lbuild option;
  mutable bo : lbuild option;
}

let compile t =
  let node skip bits r z o =
    { bskip = skip; bbits = bits; br = r; bz = z; bo = o }
  in
  (* The [s] prefix bits starting at depth [d], first-consumed highest. *)
  let seg addr d s =
    if s = 0 then 0 else (addr lsr (32 - d - s)) land ((1 lsl s) - 1)
  in
  (* Leading bits equal between the [s]-bit segments [x] and [y]. *)
  let common s x y =
    let rec go i =
      if i >= s || (x lsr (s - 1 - i)) land 1 <> (y lsr (s - 1 - i)) land 1
      then i
      else go (i + 1)
    in
    go 0
  in
  let root = ref None in
  let insert p r =
    let addr = Ipv4.to_int (Prefix.network p) in
    let len = Prefix.length p in
    match !root with
    | None -> root := Some (node len (seg addr 0 len) (Some r) None None)
    | Some n0 ->
        let rec go n d =
          let skip = n.bskip and bits = n.bbits in
          let k = len - d in
          let s = min skip k in
          let m =
            common s (seg addr d s)
              (if s = skip then bits else bits lsr (skip - s))
          in
          if m = skip then begin
            (* Whole chain matched; the prefix ends here or branches on. *)
            let d = d + skip in
            if d = len then n.br <- Some r
            else
              let b = (addr lsr (31 - d)) land 1 in
              match (if b = 0 then n.bz else n.bo) with
              | Some c -> go c (d + 1)
              | None ->
                  let leaf =
                    node (len - d - 1)
                      (seg addr (d + 1) (len - d - 1))
                      (Some r) None None
                  in
                  if b = 0 then n.bz <- Some leaf else n.bo <- Some leaf
          end
          else begin
            (* The prefix diverges (or ends) inside [n]'s chain: split it
               at bit [m]. The tail keeps the old route and children; bit
               [m] of the old chain becomes the branch selecting it. *)
            let cb = (bits lsr (skip - 1 - m)) land 1 in
            let tail =
              node (skip - m - 1)
                (bits land ((1 lsl (skip - m - 1)) - 1))
                n.br n.bz n.bo
            in
            n.bskip <- m;
            n.bbits <- bits lsr (skip - m);
            if m = k then begin
              (* The prefix ends exactly at the split point. *)
              n.br <- Some r;
              if cb = 0 then begin
                n.bz <- Some tail;
                n.bo <- None
              end
              else begin
                n.bz <- None;
                n.bo <- Some tail
              end
            end
            else begin
              (* Bit mismatch: the old chain continues one way, the new
                 prefix's remainder the other. *)
              n.br <- None;
              let d' = d + m + 1 in
              let leaf =
                node (len - d') (seg addr d' (len - d')) (Some r) None None
              in
              if cb = 0 then begin
                n.bz <- Some tail;
                n.bo <- Some leaf
              end
              else begin
                n.bz <- Some leaf;
                n.bo <- Some tail
              end
            end
          end
        in
        go n0 0
  in
  (* Ascending prefix order, same as the map iteration it replaced. *)
  Array.iter (fun r -> insert r.rt_prefix r) t;
  let rec conv n =
    Lnode
      {
        lskip = n.bskip;
        lbits = n.bbits;
        lroute = n.br;
        lzero = conv_opt n.bz;
        lone = conv_opt n.bo;
      }
  and conv_opt = function None -> Lnil | Some c -> conv c in
  match !root with None -> Lnil | Some n -> conv n

let lookup_lpm lpm addr =
  let a = Ipv4.to_int addr in
  let rec go node depth best =
    match node with
    | Lnil -> best
    | Lnode { lskip; lbits; lroute; lzero; lone } ->
        if
          depth + lskip > 32
          || (lskip > 0
             && (a lsr (32 - depth - lskip)) land ((1 lsl lskip) - 1) <> lbits)
        then best
        else
          let depth = depth + lskip in
          let best = match lroute with Some _ -> lroute | None -> best in
          if depth >= 32 then best
          else
            go
              (if (a lsr (31 - depth)) land 1 = 0 then lzero else lone)
              (depth + 1) best
  in
  go lpm 0 None

let routes t = Array.to_list t

let nexthop_names r =
  List.sort_uniq String.compare (List.map (fun nh -> nh.nh_router) r.rt_nexthops)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%s [%s/%d] via %s@,"
        (Prefix.to_string r.rt_prefix)
        (proto_to_string r.rt_proto) r.rt_metric
        (String.concat ", " (nexthop_names r)))
    (routes t);
  Format.fprintf ppf "@]"
