open Netcore

type proto = Connected | Static | Ospf | Rip | Eigrp | Ebgp | Ibgp

let admin_distance = function
  | Connected -> 0
  | Static -> 1
  | Ebgp -> 20
  | Eigrp -> 90
  | Ospf -> 110
  | Rip -> 120
  | Ibgp -> 200

let proto_to_string = function
  | Connected -> "connected"
  | Static -> "static"
  | Ospf -> "ospf"
  | Rip -> "rip"
  | Eigrp -> "eigrp"
  | Ebgp -> "ebgp"
  | Ibgp -> "ibgp"

type nexthop = { nh_router : string; nh_iface : string }

type route = {
  rt_prefix : Prefix.t;
  rt_proto : proto;
  rt_metric : int;
  rt_nexthops : nexthop list;
}

type t = route Prefix.Map.t

let empty = Prefix.Map.empty

let merge_nexthops a b =
  List.sort_uniq
    (fun x y ->
      match String.compare x.nh_router y.nh_router with
      | 0 -> String.compare x.nh_iface y.nh_iface
      | c -> c)
    (a @ b)

let better a b =
  (* Lower administrative distance wins; within a protocol, lower metric. *)
  match Int.compare (admin_distance a.rt_proto) (admin_distance b.rt_proto) with
  | 0 -> Int.compare a.rt_metric b.rt_metric
  | c -> c

let add_candidate r t =
  Prefix.Map.update r.rt_prefix
    (function
      | None -> Some r
      | Some existing -> (
          match better r existing with
          | c when c < 0 -> Some r
          | 0 ->
              Some
                { existing with rt_nexthops = merge_nexthops existing.rt_nexthops r.rt_nexthops }
          | _ -> Some existing))
    t

let find t p = Prefix.Map.find_opt p t

let lookup t addr =
  (* Longest-prefix match by direct probing: the /len prefix containing
     [addr] is a single canonical key, so try each length from most to
     least specific. 33 logarithmic lookups beat a linear scan on any
     realistically sized FIB. *)
  let rec go len =
    if len < 0 then None
    else
      match Prefix.Map.find_opt (Prefix.v addr len) t with
      | Some r -> Some r
      | None -> go (len - 1)
  in
  go 32

(* ---- compiled longest-prefix match ----

   A path-compressed binary trie over destination-address bits: one
   root-to-leaf walk per lookup instead of the 33 map probes above. The
   trie is a separate compiled artifact — [t] itself stays a plain
   [Prefix.Map], which the engine marshals to its disk cache and
   compares structurally — built per FIB by the data-plane extractor and
   shared across every lookup against it. *)

type lpm =
  | Lnil
  | Lnode of {
      lskip : int;  (* chain bits to match before this node applies *)
      lbits : int;  (* their values, first-consumed bit highest *)
      lroute : route option;  (* route whose prefix ends exactly here *)
      lzero : lpm;
      lone : lpm;
    }

(* Mutable nodes for the build phase only — path-compressed from the
   start (PATRICIA-style insertion with node splits), so the build
   allocates O(routes) nodes rather than one node per prefix bit. *)
type lbuild = {
  mutable bskip : int;
  mutable bbits : int;
  mutable br : route option;
  mutable bz : lbuild option;
  mutable bo : lbuild option;
}

let compile t =
  let node skip bits r z o =
    { bskip = skip; bbits = bits; br = r; bz = z; bo = o }
  in
  (* The [s] prefix bits starting at depth [d], first-consumed highest. *)
  let seg addr d s =
    if s = 0 then 0 else (addr lsr (32 - d - s)) land ((1 lsl s) - 1)
  in
  (* Leading bits equal between the [s]-bit segments [x] and [y]. *)
  let common s x y =
    let rec go i =
      if i >= s || (x lsr (s - 1 - i)) land 1 <> (y lsr (s - 1 - i)) land 1
      then i
      else go (i + 1)
    in
    go 0
  in
  let root = ref None in
  let insert p r =
    let addr = Ipv4.to_int (Prefix.network p) in
    let len = Prefix.length p in
    match !root with
    | None -> root := Some (node len (seg addr 0 len) (Some r) None None)
    | Some n0 ->
        let rec go n d =
          let skip = n.bskip and bits = n.bbits in
          let k = len - d in
          let s = min skip k in
          let m =
            common s (seg addr d s)
              (if s = skip then bits else bits lsr (skip - s))
          in
          if m = skip then begin
            (* Whole chain matched; the prefix ends here or branches on. *)
            let d = d + skip in
            if d = len then n.br <- Some r
            else
              let b = (addr lsr (31 - d)) land 1 in
              match (if b = 0 then n.bz else n.bo) with
              | Some c -> go c (d + 1)
              | None ->
                  let leaf =
                    node (len - d - 1)
                      (seg addr (d + 1) (len - d - 1))
                      (Some r) None None
                  in
                  if b = 0 then n.bz <- Some leaf else n.bo <- Some leaf
          end
          else begin
            (* The prefix diverges (or ends) inside [n]'s chain: split it
               at bit [m]. The tail keeps the old route and children; bit
               [m] of the old chain becomes the branch selecting it. *)
            let cb = (bits lsr (skip - 1 - m)) land 1 in
            let tail =
              node (skip - m - 1)
                (bits land ((1 lsl (skip - m - 1)) - 1))
                n.br n.bz n.bo
            in
            n.bskip <- m;
            n.bbits <- bits lsr (skip - m);
            if m = k then begin
              (* The prefix ends exactly at the split point. *)
              n.br <- Some r;
              if cb = 0 then begin
                n.bz <- Some tail;
                n.bo <- None
              end
              else begin
                n.bz <- None;
                n.bo <- Some tail
              end
            end
            else begin
              (* Bit mismatch: the old chain continues one way, the new
                 prefix's remainder the other. *)
              n.br <- None;
              let d' = d + m + 1 in
              let leaf =
                node (len - d') (seg addr d' (len - d')) (Some r) None None
              in
              if cb = 0 then begin
                n.bz <- Some tail;
                n.bo <- Some leaf
              end
              else begin
                n.bz <- Some leaf;
                n.bo <- Some tail
              end
            end
          end
        in
        go n0 0
  in
  Prefix.Map.iter insert t;
  let rec conv n =
    Lnode
      {
        lskip = n.bskip;
        lbits = n.bbits;
        lroute = n.br;
        lzero = conv_opt n.bz;
        lone = conv_opt n.bo;
      }
  and conv_opt = function None -> Lnil | Some c -> conv c in
  match !root with None -> Lnil | Some n -> conv n

let lookup_lpm lpm addr =
  let a = Ipv4.to_int addr in
  let rec go node depth best =
    match node with
    | Lnil -> best
    | Lnode { lskip; lbits; lroute; lzero; lone } ->
        if
          depth + lskip > 32
          || (lskip > 0
             && (a lsr (32 - depth - lskip)) land ((1 lsl lskip) - 1) <> lbits)
        then best
        else
          let depth = depth + lskip in
          let best = match lroute with Some _ -> lroute | None -> best in
          if depth >= 32 then best
          else
            go
              (if (a lsr (31 - depth)) land 1 = 0 then lzero else lone)
              (depth + 1) best
  in
  go lpm 0 None

let routes t = List.map snd (Prefix.Map.bindings t)

let nexthop_names r =
  List.sort_uniq String.compare (List.map (fun nh -> nh.nh_router) r.rt_nexthops)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%s [%s/%d] via %s@,"
        (Prefix.to_string r.rt_prefix)
        (proto_to_string r.rt_proto) r.rt_metric
        (String.concat ", " (nexthop_names r)))
    (routes t);
  Format.fprintf ppf "@]"
