open Netcore

type proto = Connected | Static | Ospf | Rip | Eigrp | Ebgp | Ibgp

let admin_distance = function
  | Connected -> 0
  | Static -> 1
  | Ebgp -> 20
  | Eigrp -> 90
  | Ospf -> 110
  | Rip -> 120
  | Ibgp -> 200

let proto_to_string = function
  | Connected -> "connected"
  | Static -> "static"
  | Ospf -> "ospf"
  | Rip -> "rip"
  | Eigrp -> "eigrp"
  | Ebgp -> "ebgp"
  | Ibgp -> "ibgp"

type nexthop = { nh_router : string; nh_iface : string }

type route = {
  rt_prefix : Prefix.t;
  rt_proto : proto;
  rt_metric : int;
  rt_nexthops : nexthop list;
}

type t = route Prefix.Map.t

let empty = Prefix.Map.empty

let merge_nexthops a b =
  List.sort_uniq
    (fun x y ->
      match String.compare x.nh_router y.nh_router with
      | 0 -> String.compare x.nh_iface y.nh_iface
      | c -> c)
    (a @ b)

let better a b =
  (* Lower administrative distance wins; within a protocol, lower metric. *)
  match Int.compare (admin_distance a.rt_proto) (admin_distance b.rt_proto) with
  | 0 -> Int.compare a.rt_metric b.rt_metric
  | c -> c

let add_candidate r t =
  Prefix.Map.update r.rt_prefix
    (function
      | None -> Some r
      | Some existing -> (
          match better r existing with
          | c when c < 0 -> Some r
          | 0 ->
              Some
                { existing with rt_nexthops = merge_nexthops existing.rt_nexthops r.rt_nexthops }
          | _ -> Some existing))
    t

let find t p = Prefix.Map.find_opt p t

let lookup t addr =
  (* Longest-prefix match by direct probing: the /len prefix containing
     [addr] is a single canonical key, so try each length from most to
     least specific. 33 logarithmic lookups beat a linear scan on any
     realistically sized FIB. *)
  let rec go len =
    if len < 0 then None
    else
      match Prefix.Map.find_opt (Prefix.v addr len) t with
      | Some r -> Some r
      | None -> go (len - 1)
  in
  go 32

let routes t = List.map snd (Prefix.Map.bindings t)

let nexthop_names r =
  List.sort_uniq String.compare (List.map (fun nh -> nh.nh_router) r.rt_nexthops)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "%s [%s/%d] via %s@,"
        (Prefix.to_string r.rt_prefix)
        (proto_to_string r.rt_proto) r.rt_metric
        (String.concat ", " (nexthop_names r)))
    (routes t);
  Format.fprintf ppf "@]"
