(** Data-plane extraction: host-to-host paths by hop-by-hop FIB walks.

    The data plane [DP] of ConfMask §3.1 is the collection of all
    host-to-host routing paths. We enumerate them by walking the FIBs
    (ECMP produces a branching DAG), enforcing interface packet filters
    (access groups) at every hop, and reporting delivered paths plus any
    dropped (no route), filtered (ACL deny — a black hole in the Appendix
    B sense), or looping walks. *)

module Smap = Device.Smap

type path = string list
(** [ [h_s; r_1; ...; r_n; h_d] ] *)

type trace = {
  delivered : path list;  (** sorted, deduplicated *)
  dropped : path list;  (** partial walks ending where no route exists *)
  filtered : path list;  (** partial walks stopped by an access list *)
  looped : path list;  (** partial walks that revisited a router *)
  truncated : bool;  (** enumeration hit the path cap *)
}

val max_paths_default : int

val traceroute :
  ?max_paths:int ->
  Device.network ->
  Fib.t Smap.t ->
  src:string ->
  dst:string ->
  trace
(** All forwarding paths from host [src] to host [dst], for packets with
    the hosts' addresses. Raises [Invalid_argument] if either host is
    unknown. Builds its per-router interface/adjacency index once per
    call; callers tracing many pairs should use {!extract}, which shares
    the index (and, given [?compiled], the compiled tables and
    per-router LPM tries) across all pairs. *)

type t = (string * string, trace) Hashtbl.t
(** The full data plane, keyed by (source host, destination host). *)

val extract :
  ?max_paths:int -> ?compiled:Compiled.t -> Device.network -> Fib.t Smap.t -> t
(** Traces for every ordered pair of distinct hosts. When [compiled] is
    given and the compiled kernels are enabled
    ({!Compiled.use_compiled}), hops run on the precompiled
    interface/arrival tables and per-router LPM tries; traces are
    identical either way. *)

val paths : t -> src:string -> dst:string -> path list

val all_delivered : t -> ((string * string) * path list) list
(** Pairs sorted lexicographically; only pairs with at least one path. *)

val equal_on :
  hosts:string list -> t -> t -> bool
(** Whether two data planes have identical delivered path sets for every
    ordered pair of the given hosts — the route-equivalence check of
    Definition 3.3 restricted to real hosts. *)
