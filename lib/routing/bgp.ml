open Netcore
module Ast = Configlang.Ast
module Smap = Device.Smap

type session = {
  s_from : string;
  s_to : string;
  s_via : Ipv4.t;
  s_ebgp : bool;
  s_filter : Ast.prefix_list option;
  s_route_map : Ast.route_map option;
}

let default_local_pref = 100

(* A candidate route as seen by one router. *)
type broute = {
  br_as_path : int list;
  br_from : string;  (* advertising peer; self for locally originated *)
  br_via : Ipv4.t option;  (* None for locally originated *)
  br_ebgp : bool;  (* learned over an eBGP session *)
  br_local_pref : int;  (* highest wins; carried unchanged over iBGP *)
}

let local_route =
  {
    br_as_path = [];
    br_from = "";
    br_via = None;
    br_ebgp = false;
    br_local_pref = default_local_pref;
  }
let is_local r = r.br_via = None

let sessions (net : Device.network) =
  let neighbor_entry (r : Device.router) ~peer_owned_by =
    match r.r_bgp with
    | None -> None
    | Some bp ->
        List.find_opt
          (fun (n : Device.bgp_neighbor) ->
            match Device.owner_of_addr net n.bn_addr with
            | Some owner -> String.equal owner peer_owned_by
            | None -> false)
          bp.bp_neighbors
  in
  Smap.fold
    (fun to_name (to_router : Device.router) acc ->
      match to_router.r_bgp with
      | None -> acc
      | Some to_bp ->
          List.fold_left
            (fun acc (n : Device.bgp_neighbor) ->
              match Device.owner_of_addr net n.bn_addr with
              | None -> acc
              | Some from_name -> (
                  match Smap.find_opt from_name net.routers with
                  | None -> acc
                  | Some from_router -> (
                      match from_router.r_bgp with
                      | Some from_bp
                        when from_bp.bp_as = n.bn_remote_as
                             && neighbor_entry from_router ~peer_owned_by:to_name
                                <> None ->
                          {
                            s_from = from_name;
                            s_to = to_name;
                            s_via = n.bn_addr;
                            s_ebgp = from_bp.bp_as <> to_bp.bp_as;
                            s_filter = n.bn_filter;
                            s_route_map = n.bn_route_map;
                          }
                          :: acc
                      | Some _ | None -> acc)))
            acc to_bp.bp_neighbors)
    net.routers []

let filter_denies filter p =
  match filter with
  | None -> false
  | Some pl -> (
      match Ast.prefix_list_matches pl p with
      | Some Ast.Permit -> false
      | Some Ast.Deny | None -> true)

(* Best-path order: highest local preference, then shortest AS path, then
   locally-originated, then eBGP-learned, then lowest neighbor (session)
   address — the standard BGP final tie-breaker. Deciding ties by address
   rather than peer name also makes selection invariant under router
   renaming, since addresses depend only on declaration order. *)
let preference r =
  ( -r.br_local_pref,
    List.length r.br_as_path,
    (if is_local r then 0 else 1),
    (if r.br_ebgp then 0 else 1),
    Option.map Ipv4.to_int r.br_via )

let better a b = compare (preference a) (preference b) < 0

let compute (net : Device.network) ~igp_fibs =
  let sess = sessions net in
  let sessions_to =
    List.fold_left
      (fun acc s ->
        Smap.update s.s_to
          (function None -> Some [ s ] | Some l -> Some (s :: l))
          acc)
      Smap.empty sess
  in
  let asn_of name =
    match Smap.find_opt name net.routers with
    | Some r -> Device.as_of_router r
    | None -> None
  in
  (* State: per router, per prefix, the current best route. *)
  let best_of_candidates cands =
    List.fold_left
      (fun best c ->
        match best with
        | None -> Some c
        | Some b -> if better c b then Some c else best)
      None cands
  in
  let originated =
    Smap.filter_map
      (fun _ (r : Device.router) ->
        match r.r_bgp with
        | Some bp when bp.bp_networks <> [] ->
            Some
              (List.fold_left
                 (fun m p -> Prefix.Map.add p local_route m)
                 Prefix.Map.empty bp.bp_networks)
        | Some _ | None -> None)
      net.routers
  in
  let get state name =
    Option.value ~default:Prefix.Map.empty (Smap.find_opt name state)
  in
  (* Next-hop resolution for a learned route at [name]: either the session
     address is on a directly connected subnet, or the IGP can reach it
     (minus interfaces whose inbound distribute-list denies [p]). Used both
     to invalidate candidates during best-path selection — a route whose
     next hop is unreachable must not win (or be re-advertised), matching
     real BGP next-hop validation — and to build the final FIB entries. *)
  let resolve_nexthops name p ~from ~via =
    match Smap.find_opt name net.routers with
    | None -> []
    | Some router -> (
        let direct =
          List.find_opt
            (fun i -> Prefix.mem via (Device.ifc_prefix i))
            router.r_ifaces
        in
        match direct with
        | Some i -> [ { Fib.nh_router = from; nh_iface = i.Device.ifc_name } ]
        | None -> (
            match Smap.find_opt name igp_fibs with
            | None -> []
            | Some fib -> (
                match Fib.lookup fib via with
                | Some igp_route ->
                    let igp_filters =
                      Device.igp_filters (Smap.find name net.routers)
                    in
                    List.filter
                      (fun (nh : Fib.nexthop) ->
                        not (Device.iface_filter_denies igp_filters nh.nh_iface p))
                      igp_route.rt_nexthops
                | None -> [])))
  in
  let step state =
    (* Compute what each router would now select, given advertisements of
       the current state along every session. *)
    let next =
      Smap.fold
        (fun name (r : Device.router) acc ->
          if r.r_bgp = None then acc
          else
            let own_as = Option.get (Device.as_of_router r) in
            let local = get originated name in
            let incoming = Option.value ~default:[] (Smap.find_opt name sessions_to) in
            (* Gather candidates per prefix. *)
            let candidates = Hashtbl.create 16 in
            let add p c =
              Hashtbl.replace candidates p
                (c :: Option.value ~default:[] (Hashtbl.find_opt candidates p))
            in
            Prefix.Map.iter (fun p c -> add p c) local;
            List.iter
              (fun s ->
                let sender_best = get state s.s_from in
                Prefix.Map.iter
                  (fun p (b : broute) ->
                    let advertise =
                      if s.s_ebgp then true
                      else
                        (* iBGP rule: only eBGP-learned or locally
                           originated routes are re-advertised. *)
                        is_local b || b.br_ebgp
                    in
                    if advertise then begin
                      let as_path =
                        if s.s_ebgp then
                          match asn_of s.s_from with
                          | Some sender_as -> sender_as :: b.br_as_path
                          | None -> b.br_as_path
                        else b.br_as_path
                      in
                      let looped = s.s_ebgp && List.mem own_as as_path in
                      (* Inbound route-map: the first clause decides — deny
                         rejects the route, permit may set local-pref.
                         Attributes set at the AS edge are carried over
                         iBGP unchanged. *)
                      let policy =
                        match s.s_route_map with
                        | None -> Some b.br_local_pref
                        | Some rm -> (
                            match rm.Ast.rm_clauses with
                            | { Ast.rm_action = Ast.Deny; _ } :: _ -> None
                            | { Ast.rm_action = Ast.Permit; rm_set_local_pref; _ } :: _
                              ->
                                Some
                                  (Option.value rm_set_local_pref
                                     ~default:b.br_local_pref)
                            | [] -> Some b.br_local_pref)
                      in
                      let local_pref =
                        match policy with
                        | Some lp when not s.s_ebgp ->
                            (* iBGP carries the sender's attribute. *)
                            ignore lp;
                            Some b.br_local_pref
                        | other -> other
                      in
                      match local_pref with
                      | Some br_local_pref
                        when (not looped)
                             && (not (filter_denies s.s_filter p))
                             && resolve_nexthops name p ~from:s.s_from
                                  ~via:s.s_via
                                <> [] ->
                          add p
                            {
                              br_as_path = as_path;
                              br_from = s.s_from;
                              br_via = Some s.s_via;
                              br_ebgp = s.s_ebgp;
                              br_local_pref;
                            }
                      | Some _ | None -> ()
                    end)
                  sender_best)
              incoming;
            let table =
              Hashtbl.fold
                (fun p cands table ->
                  match best_of_candidates cands with
                  | Some b -> Prefix.Map.add p b table
                  | None -> table)
                candidates Prefix.Map.empty
            in
            Smap.add name table acc)
        net.routers Smap.empty
    in
    let equal =
      Smap.equal
        (Prefix.Map.equal (fun (a : broute) b -> a = b))
        (Smap.filter (fun _ t -> not (Prefix.Map.is_empty t)) next)
        (Smap.filter (fun _ t -> not (Prefix.Map.is_empty t)) state)
    in
    (next, equal)
  in
  let rec converge state round =
    if round > 4 * Smap.cardinal net.routers + 16 then state
    else
      let next, equal = step state in
      if equal then state else converge next (round + 1)
  in
  let final = converge originated 0 in
  (* Turn the selected routes into FIB candidates, resolving iBGP next
     hops through the IGP. *)
  Smap.mapi
    (fun name table ->
      (* Inbound IGP distribute-lists for [p] also prune the recursive
         resolution of BGP next hops: a next hop installed through an
         interface whose filter denies [p] is rejected. This is what makes
         the route-equivalence filters able to steer iBGP traffic off fake
         equal-cost IGP branches (ConfMask Algorithm 1). *)
      Prefix.Map.fold
        (fun p (b : broute) acc ->
          match b.br_via with
          | None -> acc (* locally originated: connected/IGP covers it *)
          | Some via ->
              let nexthops = resolve_nexthops name p ~from:b.br_from ~via in
              if nexthops = [] then acc
              else
                {
                  Fib.rt_prefix = p;
                  rt_proto = (if b.br_ebgp then Fib.Ebgp else Fib.Ibgp);
                  rt_metric = List.length b.br_as_path;
                  rt_nexthops = nexthops;
                }
                :: acc)
        table [])
    final
