(** Switch for the forwarding-equivalence-class fast paths.

    Governs the FEC data-plane collapse ({!Dataplane.extract}), the
    per-advertiser Dijkstra dedup and batched selection ({!Ospf}), and
    their sharded parallel folds. All of them produce results identical
    to the baseline execution; the switch exists so differential tests
    and benchmarks can run both sides of that claim in one process.

    Defaults to on; the environment variable [CONFMASK_FEC=off] disables
    it process-wide (the escape hatch mirroring [CONFMASK_KERNELS]). *)

val on : unit -> bool

val set_enabled : bool -> unit

val with_mode : [ `On | `Off ] -> (unit -> 'a) -> 'a
(** Runs the thunk with the switch forced to the given mode, restoring
    the previous setting afterwards (also on exceptions). Affects the
    whole process, not just the calling domain — like
    {!Compiled.with_kernels}, callers serialize differential runs. *)
