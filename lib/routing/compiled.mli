(** Compiled network core: interned router ids, CSR adjacency, and the
    precomputed interface tables the hot kernels run on.

    [Device.network] keeps everything string-keyed and list-shaped, which
    is the right representation for compilation and editing but a poor
    one for the inner loops: OSPF's per-prefix Dijkstras, FIB
    longest-prefix matches and data-plane walks together dominate a full
    simulation. This module compiles a network once into flat int arrays
    and hash tables; the kernels ([Ospf], [Fib], [Dataplane]) consume it
    behind unchanged string-level APIs, and [Engine] caches it alongside
    its fingerprints so topology-preserving edits (the anonymization
    fixpoints' deny filters) never rebuild it.

    Everything here is a pure acceleration structure: results are
    bit-identical to the legacy map-based kernels, which remain available
    behind {!set_use_compiled} for benchmarking and differential
    testing. *)

open Netcore

(** Compressed-sparse-row directed graph over dense int vertices, with an
    array-Dijkstra kernel (int distance array + {!Netcore.Heap}). *)
module Csr : sig
  type t = private {
    n : int;  (** vertex count; valid ids are [0 .. n-1] *)
    off : int array;  (** length [n+1]; row [v] is [off.(v) .. off.(v+1)-1] *)
    head : int array;  (** per-edge target vertex *)
    cost : int array;  (** per-edge weight, non-negative *)
  }

  val of_edges : n:int -> (int * int * int) list -> t
  (** [of_edges ~n edges] with [(src, dst, cost)] edges. Within a row,
      edges keep the order they appear in [edges]. *)

  val dijkstra : t -> seeds:(int * int) list -> int array
  (** Multi-source shortest distances: entry [v] is the least
      [seed cost + path cost] over seeds and paths, or [max_int] when
      unreachable. Seeds outside [0 .. n-1] are ignored. *)
end

type t
(** The compiled form of one [Device.network]: a router-name interner,
    forward CSR adjacency, and per-(router, interface-name) /
    per-(router, out-interface, neighbor) lookup tables mirroring the
    first-match semantics of the list scans they replace. *)

val build : Device.network -> t
(** Compile unconditionally (ticks the [compiled.build] counter). *)

val get : ?prev:t -> Device.network -> t
(** Compile, or reuse [prev] when the network's interface-level topology
    is unchanged — the compiled form depends only on each router's
    interface records (adjacency derives from them), so filter-only
    edits reuse. Reuse ticks [compiled.reuse], a rebuild
    [compiled.build]. *)

val routers : t -> Interner.t
(** Router names, interned in [Device.Smap] key (= sorted) order. *)

val csr : t -> Csr.t
(** Forward router adjacency; edge cost is the out-interface OSPF cost. *)

val find_iface : t -> string -> string -> Device.iface option
(** [find_iface t router name]: the first interface of [router] named
    [name], as [List.find_opt] over [r_ifaces] would return. *)

val arrival_iface : t -> string -> string -> string -> Device.iface option
(** [arrival_iface t router out_name nh]: the interface the packet
    enters [nh] on when [router] forwards out of [out_name], matching
    the first such adjacency in [router]'s adjacency list. *)

(** {1 Kernel switch}

    Selects between the compiled and the legacy map-based kernels in
    [Ospf], [Fib] and [Dataplane]. Global and atomic so one binary can
    benchmark and differentially test both sides; defaults to compiled
    unless the environment sets [CONFMASK_KERNELS=legacy]. *)

val use_compiled : unit -> bool
val set_use_compiled : bool -> unit

val with_kernels : [ `Compiled | `Legacy ] -> (unit -> 'a) -> 'a
(** Runs the thunk under the given kernel selection, restoring the
    previous selection on exit (including exceptional exit). *)
