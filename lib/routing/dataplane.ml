module Smap = Device.Smap
module Sset = Netcore.Graph.Sset

type path = string list

type trace = {
  delivered : path list;
  dropped : path list;
  filtered : path list;
  looped : path list;
  truncated : bool;
}

let max_paths_default = 4096

let acl_permits acl ~src ~dst =
  match acl with
  | None -> true
  | Some a -> Configlang.Ast.acl_permits a ~src ~dst

(* The per-hop lookups a walk runs on. Two implementations with
   identical first-match semantics: [legacy_lookups] hashes the network
   on the spot (replacing the per-hop list scans the walk used to do),
   [compiled_lookups] reuses the tables of a [Compiled.t] and answers
   route lookups from per-router LPM tries. *)
type lookups = {
  lk_iface : string -> string -> Device.iface option;
      (* router -> out-interface name -> interface *)
  lk_arrival : string -> string -> string -> Device.iface option;
      (* router -> out-interface name -> next hop -> its arrival iface *)
  lk_route : string -> Netcore.Ipv4.t -> Fib.route option;
      (* router -> destination address -> FIB longest-prefix match *)
}

let add_if_absent tbl key v =
  if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v

let legacy_lookups (net : Device.network) fibs =
  let ifaces = Hashtbl.create 256 in
  Smap.iter
    (fun name (r : Device.router) ->
      List.iter
        (fun (i : Device.iface) -> add_if_absent ifaces (name, i.ifc_name) i)
        r.r_ifaces)
    net.routers;
  let arrivals = Hashtbl.create 256 in
  Smap.iter
    (fun name adjs ->
      List.iter
        (fun (a : Device.adj) ->
          add_if_absent arrivals
            (name, a.a_out_iface.ifc_name, a.a_to)
            a.a_in_iface)
        adjs)
    net.adjs;
  {
    lk_iface = (fun r n -> Hashtbl.find_opt ifaces (r, n));
    lk_arrival = (fun r o nh -> Hashtbl.find_opt arrivals (r, o, nh));
    lk_route =
      (fun r addr ->
        match Smap.find_opt r fibs with
        | None -> None
        | Some fib -> Fib.lookup fib addr);
  }

let compiled_lookups c fibs =
  let fib_tbl = Hashtbl.create 256 in
  Smap.iter (fun name fib -> Hashtbl.replace fib_tbl name fib) fibs;
  (* One trie per router, compiled on first lookup and shared by every
     later packet of this extraction. *)
  let lpms = Hashtbl.create 256 in
  let lk_route r addr =
    match Hashtbl.find_opt fib_tbl r with
    | None -> None
    | Some fib ->
        let lpm =
          match Hashtbl.find_opt lpms r with
          | Some l -> l
          | None ->
              let l = Fib.compile fib in
              Hashtbl.add lpms r l;
              l
        in
        Fib.lookup_lpm lpm addr
  in
  {
    lk_iface = Compiled.find_iface c;
    lk_arrival = Compiled.arrival_iface c;
    lk_route;
  }

(* The walk itself, identical on both lookup implementations: a DFS over
   the ECMP branching in next-hop list order, so truncation at
   [max_paths] cuts the same paths either way. [lk] is lazy so the
   same-subnet short-circuit never pays for table construction. *)
let trace_core ?(max_paths = max_paths_default) (lk : lookups Lazy.t)
    (net : Device.network) ~src ~dst =
  let src_host =
    match Smap.find_opt src net.hosts with
    | Some h -> h
    | None -> invalid_arg ("Dataplane.traceroute: unknown host " ^ src)
  in
  let dst_host =
    match Smap.find_opt dst net.hosts with
    | Some h -> h
    | None -> invalid_arg ("Dataplane.traceroute: unknown host " ^ dst)
  in
  let src_addr = src_host.h_addr and dst_addr = dst_host.h_addr in
  let permits acl = acl_permits acl ~src:src_addr ~dst:dst_addr in
  if
    Netcore.Prefix.equal (Device.host_prefix src_host)
      (Device.host_prefix dst_host)
  then
    {
      delivered = [ [ src; dst ] ];
      dropped = [];
      filtered = [];
      looped = [];
      truncated = false;
    }
  else begin
    let lk = Lazy.force lk in
    let dst_attachments =
      Option.value ~default:[] (Smap.find_opt dst net.attachments)
    in
    let dst_routers = List.map fst dst_attachments in
    let delivered = ref [] and dropped = ref [] and filtered = ref [] in
    let looped = ref [] in
    let count = ref 0 in
    let truncated = ref false in
    (* DFS over the ECMP branching; [rev] accumulates routers in reverse.
       [arrival] is the interface the packet arrived on at [router]. *)
    let rec walk router arrival visited rev =
      if !count >= max_paths then truncated := true
      else if
        not (permits (Option.bind arrival (fun i -> i.Device.ifc_acl_in)))
      then filtered := (src :: List.rev (router :: rev)) :: !filtered
      else if List.mem router dst_routers then begin
        (* Delivery: the outbound filter of the host-facing interface. *)
        let out_acl =
          List.assoc_opt router dst_attachments
          |> fun o -> Option.bind o (fun i -> i.Device.ifc_acl_out)
        in
        if permits out_acl then begin
          incr count;
          delivered :=
            ((src :: List.rev (router :: rev)) @ [ dst ]) :: !delivered
        end
        else filtered := (src :: List.rev (router :: rev)) :: !filtered
      end
      else if Sset.mem router visited then
        looped := (src :: List.rev (router :: rev)) :: !looped
      else
        let visited = Sset.add router visited in
        let rev = router :: rev in
        match lk.lk_route router dst_addr with
        | None -> dropped := (src :: List.rev rev) :: !dropped
        | Some route when route.rt_nexthops = [] ->
            (* Connected route but the destination host is not attached
               here: the address does not answer. *)
            dropped := (src :: List.rev rev) :: !dropped
        | Some route ->
            List.iter
              (fun (nh : Fib.nexthop) ->
                match lk.lk_iface router nh.nh_iface with
                | Some out_iface when not (permits out_iface.ifc_acl_out) ->
                    filtered := (src :: List.rev rev) :: !filtered
                | out ->
                    ignore out;
                    walk nh.nh_router
                      (lk.lk_arrival router nh.nh_iface nh.nh_router)
                      visited rev)
              route.rt_nexthops
    in
    let start_attachments =
      Option.value ~default:[] (Smap.find_opt src net.attachments)
    in
    List.iter
      (fun (r, iface) -> walk r (Some iface) Sset.empty [])
      (List.sort_uniq compare start_attachments);
    {
      delivered = List.sort_uniq compare !delivered;
      dropped = List.sort_uniq compare !dropped;
      filtered = List.sort_uniq compare !filtered;
      looped = List.sort_uniq compare !looped;
      truncated = !truncated;
    }
  end

let traceroute ?max_paths (net : Device.network) fibs ~src ~dst =
  trace_core ?max_paths (lazy (legacy_lookups net fibs)) net ~src ~dst

type t = (string * string, trace) Hashtbl.t

let extract ?max_paths ?compiled (net : Device.network) fibs =
  let lk =
    match compiled with
    | Some c when Compiled.use_compiled () ->
        lazy (compiled_lookups c fibs)
    | _ -> lazy (legacy_lookups net fibs)
  in
  let hosts = List.map fst (Smap.bindings net.hosts) in
  let dp = Hashtbl.create (List.length hosts * List.length hosts) in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (String.equal src dst) then
            Hashtbl.replace dp (src, dst)
              (trace_core ?max_paths lk net ~src ~dst))
        hosts)
    hosts;
  dp

let paths dp ~src ~dst =
  match Hashtbl.find_opt dp (src, dst) with
  | Some t -> t.delivered
  | None -> []

let all_delivered dp =
  Hashtbl.fold
    (fun key t acc -> if t.delivered = [] then acc else (key, t.delivered) :: acc)
    dp []
  |> List.sort compare

let equal_on ~hosts a b =
  List.for_all
    (fun src ->
      List.for_all
        (fun dst ->
          String.equal src dst
          || List.equal (List.equal String.equal)
               (paths a ~src ~dst) (paths b ~src ~dst))
        hosts)
    hosts
