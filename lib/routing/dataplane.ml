module Smap = Device.Smap
module Sset = Netcore.Graph.Sset

type path = string list

type trace = {
  delivered : path list;
  dropped : path list;
  filtered : path list;
  looped : path list;
  truncated : bool;
}

let max_paths_default = 4096

let c_classes = Netcore.Telemetry.counter "fec.classes"
let c_collapsed = Netcore.Telemetry.counter "fec.collapsed"
let c_traced = Netcore.Telemetry.counter "fec.traced"

let acl_permits acl ~src ~dst =
  match acl with
  | None -> true
  | Some a -> Configlang.Ast.acl_permits a ~src ~dst

(* The per-hop lookups a walk runs on. Two implementations with
   identical first-match semantics: [legacy_lookups] hashes the network
   on the spot (replacing the per-hop list scans the walk used to do),
   [compiled_lookups] reuses the tables of a [Compiled.t] and answers
   route lookups from per-router LPM tries. *)
type lookups = {
  lk_iface : string -> string -> Device.iface option;
      (* router -> out-interface name -> interface *)
  lk_arrival : string -> string -> string -> Device.iface option;
      (* router -> out-interface name -> next hop -> its arrival iface *)
  lk_route : string -> Netcore.Ipv4.t -> Fib.route option;
      (* router -> destination address -> FIB longest-prefix match *)
}

let add_if_absent tbl key v =
  if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v

let legacy_lookups (net : Device.network) fibs =
  let ifaces = Hashtbl.create 256 in
  Smap.iter
    (fun name (r : Device.router) ->
      List.iter
        (fun (i : Device.iface) -> add_if_absent ifaces (name, i.ifc_name) i)
        r.r_ifaces)
    net.routers;
  let arrivals = Hashtbl.create 256 in
  Smap.iter
    (fun name adjs ->
      List.iter
        (fun (a : Device.adj) ->
          add_if_absent arrivals
            (name, a.a_out_iface.ifc_name, a.a_to)
            a.a_in_iface)
        adjs)
    net.adjs;
  {
    lk_iface = (fun r n -> Hashtbl.find_opt ifaces (r, n));
    lk_arrival = (fun r o nh -> Hashtbl.find_opt arrivals (r, o, nh));
    lk_route =
      (fun r addr ->
        match Smap.find_opt r fibs with
        | None -> None
        | Some fib -> Fib.lookup fib addr);
  }

let compiled_lookups c fibs =
  let fib_tbl = Hashtbl.create 256 in
  Smap.iter (fun name fib -> Hashtbl.replace fib_tbl name fib) fibs;
  (* One trie per router, compiled on first lookup and shared by every
     later packet of this extraction. *)
  let lpms = Hashtbl.create 256 in
  let lk_route r addr =
    match Hashtbl.find_opt fib_tbl r with
    | None -> None
    | Some fib ->
        let lpm =
          match Hashtbl.find_opt lpms r with
          | Some l -> l
          | None ->
              let l = Fib.compile fib in
              Hashtbl.add lpms r l;
              l
        in
        Fib.lookup_lpm lpm addr
  in
  {
    lk_iface = Compiled.find_iface c;
    lk_arrival = Compiled.arrival_iface c;
    lk_route;
  }

(* Compiled interface/arrival tables with direct (un-compiled) FIB
   probing. The FEC + suffix-memo extraction performs O(routers) route
   lookups per destination instead of O(pairs × hops), too few to
   amortize compiling a trie per router; [Fib.lookup] answers the same
   longest-prefix match from the maps. *)
(* Probe keys per address, cached: the extractor asks about the same few
   host addresses thousands of times. *)
let prefix_probes () =
  let pfx_cache : (int, Netcore.Prefix.t array) Hashtbl.t = Hashtbl.create 64 in
  fun addr ->
    let key = Netcore.Ipv4.to_int addr in
    match Hashtbl.find_opt pfx_cache key with
    | Some a -> a
    | None ->
        let a = Array.init 33 (Netcore.Prefix.v addr) in
        Hashtbl.add pfx_cache key a;
        a

(* Longest-prefix match against one probed FIB: try only the prefix
   lengths the FIB actually contains (usually two or three), most
   specific first — same result as [Fib.lookup]'s 33-length sweep. *)
let probe_lpm pb pa =
  let rec go = function
    | [] -> None
    | l :: tl -> (
        match Fib.probe_find pb (Array.unsafe_get pa l) with
        | Some r -> Some r
        | None -> go tl)
  in
  go (Fib.probe_lens pb)

let probe_table fibs =
  let fib_tbl = Hashtbl.create 256 in
  Smap.iter (fun name fib -> Hashtbl.replace fib_tbl name (Fib.probe fib)) fibs;
  fib_tbl

let probe_lookups c fib_tbl =
  let probes = prefix_probes () in
  {
    lk_iface = Compiled.find_iface c;
    lk_arrival = Compiled.arrival_iface c;
    lk_route =
      (fun r addr ->
        match Hashtbl.find_opt fib_tbl r with
        | None -> None
        | Some pb -> probe_lpm pb (probes addr));
  }

(* Per-host walk inputs, hoisted so an extraction resolves each host's
   maps once instead of once per pair. [hi_starts] carries the exact
   sorted order the walk visits attachments in; [hi_datts] keeps the raw
   attachment order the delivery check scans. *)
type host_info = {
  hi_name : string;
  hi_host : Device.host;
  hi_prefix : Netcore.Prefix.t;
  hi_starts : (string * Device.iface) list;
  hi_datts : (string * Device.iface) list;
  hi_drouters : string list;
}

let host_info (net : Device.network) name =
  match Smap.find_opt name net.hosts with
  | None -> invalid_arg ("Dataplane.traceroute: unknown host " ^ name)
  | Some h ->
      let atts =
        Option.value ~default:[] (Smap.find_opt name net.attachments)
      in
      {
        hi_name = name;
        hi_host = h;
        hi_prefix = Device.host_prefix h;
        hi_starts = List.sort_uniq compare atts;
        hi_datts = atts;
        hi_drouters = List.map fst atts;
      }

(* The walk itself, identical on both lookup implementations: a DFS over
   the ECMP branching in next-hop list order, so truncation at
   [max_paths] cuts the same paths either way. [lk] is lazy so the
   same-subnet short-circuit never pays for table construction. *)
let trace_hosts ?(max_paths = max_paths_default) (lk : lookups Lazy.t)
    ~(si : host_info) ~(di : host_info) =
  let src = si.hi_name and dst = di.hi_name in
  let src_addr = si.hi_host.h_addr and dst_addr = di.hi_host.h_addr in
  let permits acl = acl_permits acl ~src:src_addr ~dst:dst_addr in
  if Netcore.Prefix.equal si.hi_prefix di.hi_prefix then
    {
      delivered = [ [ src; dst ] ];
      dropped = [];
      filtered = [];
      looped = [];
      truncated = false;
    }
  else begin
    let lk = Lazy.force lk in
    let dst_attachments = di.hi_datts in
    let dst_routers = di.hi_drouters in
    let delivered = ref [] and dropped = ref [] and filtered = ref [] in
    let looped = ref [] in
    let count = ref 0 in
    let truncated = ref false in
    (* DFS over the ECMP branching; [rev] accumulates routers in reverse.
       [arrival] is the interface the packet arrived on at [router]. *)
    let rec walk router arrival visited rev =
      if !count >= max_paths then truncated := true
      else if
        not (permits (Option.bind arrival (fun i -> i.Device.ifc_acl_in)))
      then filtered := (src :: List.rev (router :: rev)) :: !filtered
      else if List.mem router dst_routers then begin
        (* Delivery: the outbound filter of the host-facing interface. *)
        let out_acl =
          List.assoc_opt router dst_attachments
          |> fun o -> Option.bind o (fun i -> i.Device.ifc_acl_out)
        in
        if permits out_acl then begin
          incr count;
          delivered :=
            ((src :: List.rev (router :: rev)) @ [ dst ]) :: !delivered
        end
        else filtered := (src :: List.rev (router :: rev)) :: !filtered
      end
      else if Sset.mem router visited then
        looped := (src :: List.rev (router :: rev)) :: !looped
      else
        let visited = Sset.add router visited in
        let rev = router :: rev in
        match lk.lk_route router dst_addr with
        | None -> dropped := (src :: List.rev rev) :: !dropped
        | Some route when route.rt_nexthops = [] ->
            (* Connected route but the destination host is not attached
               here: the address does not answer. *)
            dropped := (src :: List.rev rev) :: !dropped
        | Some route ->
            List.iter
              (fun (nh : Fib.nexthop) ->
                match lk.lk_iface router nh.nh_iface with
                | Some out_iface when not (permits out_iface.ifc_acl_out) ->
                    filtered := (src :: List.rev rev) :: !filtered
                | out ->
                    ignore out;
                    walk nh.nh_router
                      (lk.lk_arrival router nh.nh_iface nh.nh_router)
                      visited rev)
              route.rt_nexthops
    in
    List.iter (fun (r, iface) -> walk r (Some iface) Sset.empty []) si.hi_starts;
    {
      delivered = List.sort_uniq compare !delivered;
      dropped = List.sort_uniq compare !dropped;
      filtered = List.sort_uniq compare !filtered;
      looped = List.sort_uniq compare !looped;
      truncated = !truncated;
    }
  end

let trace_core ?max_paths lk (net : Device.network) ~src ~dst =
  trace_hosts ?max_paths lk ~si:(host_info net src) ~di:(host_info net dst)

let traceroute ?max_paths (net : Device.network) fibs ~src ~dst =
  trace_core ?max_paths (lazy (legacy_lookups net fibs)) net ~src ~dst

type t = (string * string, trace) Hashtbl.t

(* ---- forwarding-equivalence classes ----

   Two hosts are forwarding-equivalent when every walk either of them
   takes part in — as source or destination, against any fixed other
   endpoint — behaves identically hop for hop. The walk consults a host
   only through:

   - its sorted start attachments, and of each start interface only the
     inbound ACL (projected per rule to how it treats this host's
     address as source);
   - its raw destination attachments — the delivery routers and each
     interface's outbound ACL projected per rule against this host's
     address as destination;
   - per-rule membership of the host's address in every ACL the network
     can evaluate mid-path (source- and destination-side);
   - the FIB answer of every router for the host's address, projected to
     the next-hop list (prefix and metric are never read by a walk).

   Hosts with equal signatures are interchangeable modulo the host names
   at a path's endpoints, so one representative trace per ordered class
   pair plus head/tail renaming reproduces the full extraction exactly.
   The host's own prefix is deliberately not part of the signature: the
   same-subnet short-circuit is evaluated per pair, and representatives
   are chosen among pairs that do not short-circuit. *)

let proj_acl addr side (acl : Configlang.Ast.acl option) =
  Option.map
    (fun (a : Configlang.Ast.acl) ->
      List.map
        (fun (r : Configlang.Ast.acl_rule) ->
          let mem p =
            match p with
            | None -> true
            | Some p -> Netcore.Prefix.mem addr p
          in
          match side with
          | `Src -> (mem r.acl_src, r.acl_dst, r.acl_action)
          | `Dst -> (mem r.acl_dst, r.acl_src, r.acl_action))
        a.acl_rules)
    acl

(* Every ACL the walks can evaluate, in a canonical order (router ifaces
   in map order, inbound then outbound, then attachment ifaces). *)
let enumerate_acls (net : Device.network) =
  let of_iface (i : Device.iface) acc =
    let acc = match i.ifc_acl_out with Some a -> a :: acc | None -> acc in
    match i.ifc_acl_in with Some a -> a :: acc | None -> acc
  in
  let acc =
    Smap.fold
      (fun _ (r : Device.router) acc ->
        List.fold_left (fun acc i -> of_iface i acc) acc r.r_ifaces)
      net.routers []
  in
  Smap.fold
    (fun _ atts acc ->
      List.fold_left (fun acc (_, i) -> of_iface i acc) acc atts)
    net.attachments acc
  |> List.rev

(* Signatures are compared structurally as hash-table keys; the
   per-router route projections are interned to small ints first (shared
   across the extraction's hosts), so comparing and hashing a signature
   never walks next-hop records. *)
let route_interner () =
  let tbl : (Fib.nexthop list option, int) Hashtbl.t = Hashtbl.create 256 in
  fun proj ->
    match Hashtbl.find_opt tbl proj with
    | Some i -> i
    | None ->
        let i = Hashtbl.length tbl in
        Hashtbl.add tbl proj i;
        i

let host_signature acls ~routes (hi : host_info) =
  let addr = hi.hi_host.h_addr in
  let starts =
    List.map (fun (r, i) -> (r, proj_acl addr `Src i.Device.ifc_acl_in)) hi.hi_starts
  in
  let datts =
    List.map (fun (r, i) -> (r, proj_acl addr `Dst i.Device.ifc_acl_out)) hi.hi_datts
  in
  let memberships =
    List.map
      (fun (a : Configlang.Ast.acl) ->
        List.map
          (fun (r : Configlang.Ast.acl_rule) ->
            ( (match r.acl_src with
              | None -> true
              | Some p -> Netcore.Prefix.mem addr p),
              match r.acl_dst with
              | None -> true
              | Some p -> Netcore.Prefix.mem addr p ))
          a.acl_rules)
      acls
  in
  (starts, datts, memberships, routes)

(* ---- per-destination memoized suffix walks ----

   When the network carries no packet filters at all, every [permits]
   check of a walk is vacuous and the walk's behavior below a router
   depends only on the destination: the trace from a start router is the
   set of forwarding paths of the destination's FIB DAG. Those suffixes
   are computed once per destination and shared by every source — tail
   sharing included, which is safe because traces are only ever read
   structurally. A FIB cycle or a path count at the truncation limit
   makes the memo unusable for that destination or pair; callers fall
   back to the exact DFS. *)

let no_acls (net : Device.network) =
  let iface_clear (i : Device.iface) =
    i.ifc_acl_in = None && i.ifc_acl_out = None
  in
  Smap.for_all
    (fun _ (r : Device.router) -> List.for_all iface_clear r.r_ifaces)
    net.routers
  && Smap.for_all
       (fun _ atts -> List.for_all (fun (_, i) -> iface_clear i) atts)
       net.attachments

exception Cyclic

type memo_node = {
  mn_deliv : int;  (* delivered-path count, saturated at cap + 1 *)
  mn_drop : int;   (* dropped-path count, saturated at cap + 1 *)
  mn_deliv_paths : path list Lazy.t;
      (* sorted, deduplicated suffixes ending in the dst host *)
  mn_drop_paths : path list Lazy.t;  (* sorted, deduplicated *)
}

(* Merge two sorted duplicate-free lists, dropping duplicates — the same
   order [List.sort_uniq compare] produces. *)
let rec merge_uniq a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c < 0 then x :: merge_uniq xs b
      else if c > 0 then y :: merge_uniq a ys
      else x :: merge_uniq xs ys

(* Balanced pairwise merging — a left fold over high-ECMP fan-in is
   quadratic. [merge_uniq] is associative and commutative up to the
   dedup, so the pairing order cannot change the result. *)
let merge_lists ls =
  let rec pairs = function
    | a :: b :: tl -> merge_uniq a b :: pairs tl
    | l -> l
  in
  let rec go = function [] -> [] | [ x ] -> x | ls -> go (pairs ls) in
  go ls

(* Lazy per-router suffix table toward one destination. The counts are
   computed eagerly on first touch (detecting cycles on the way); the
   path lists only materialize for routers whose counts stay under the
   cap, so ECMP blow-ups cost integers, not lists. Each list is kept
   sorted and duplicate-free: merging children preserves that, and so
   does prepending the router (or later the source host) to every
   element, so assembling a pair's trace needs no sorting at all. *)
let dest_memo (lk : lookups) (di : host_info) ~cap =
  let dst = di.hi_name and dst_addr = di.hi_host.h_addr in
  let tbl : (string, memo_node) Hashtbl.t = Hashtbl.create 64 in
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let sat a b = if a + b > cap then cap + 1 else a + b in
  let rec node r =
    match Hashtbl.find_opt tbl r with
    | Some n -> n
    | None ->
        if Hashtbl.mem visiting r then raise Cyclic;
        Hashtbl.add visiting r ();
        let n =
          if List.mem r di.hi_drouters then
            {
              mn_deliv = 1;
              mn_drop = 0;
              mn_deliv_paths = lazy [ [ r; dst ] ];
              mn_drop_paths = lazy [];
            }
          else
            match lk.lk_route r dst_addr with
            | None | Some { Fib.rt_nexthops = []; _ } ->
                {
                  mn_deliv = 0;
                  mn_drop = 1;
                  mn_deliv_paths = lazy [];
                  mn_drop_paths = lazy [ [ r ] ];
                }
            | Some route ->
                let children =
                  List.map
                    (fun (nh : Fib.nexthop) -> node nh.nh_router)
                    route.rt_nexthops
                in
                let extend f =
                  lazy
                    (List.map
                       (fun p -> r :: p)
                       (merge_lists
                          (List.map (fun c -> Lazy.force (f c)) children)))
                in
                {
                  mn_deliv =
                    List.fold_left (fun a c -> sat a c.mn_deliv) 0 children;
                  mn_drop =
                    List.fold_left (fun a c -> sat a c.mn_drop) 0 children;
                  mn_deliv_paths = extend (fun c -> c.mn_deliv_paths);
                  mn_drop_paths = extend (fun c -> c.mn_drop_paths);
                }
        in
        Hashtbl.remove visiting r;
        Hashtbl.add tbl r n;
        n
  in
  node

(* Assemble one pair's trace from the destination memo, or [None] when
   the DFS must run instead (cycle below a start router, or enough paths
   that the DFS would truncate). Exactness: with no filters, [filtered]
   and (acyclic) [looped] are empty, the DFS never truncates below the
   cap, and its final [sort_uniq] makes traversal order irrelevant. *)
let memo_trace node ~cap ~(si : host_info) =
  match
    List.fold_left
      (fun acc (r, _) ->
        match acc with
        | None -> None
        | Some (nodes, d, x) ->
            let n = node r in
            Some (n :: nodes, d + n.mn_deliv, x + n.mn_drop))
      (Some ([], 0, 0))
      si.hi_starts
  with
  | exception Cyclic -> None
  | None -> None
  | Some (_, deliv, _) when deliv >= cap -> None
  | Some (nodes, _, _) ->
      let src = si.hi_name in
      let assemble f =
        List.map
          (fun sfx -> src :: sfx)
          (merge_lists (List.map (fun n -> Lazy.force (f n)) nodes))
      in
      Some
        {
          delivered = assemble (fun n -> n.mn_deliv_paths);
          dropped = assemble (fun n -> n.mn_drop_paths);
          filtered = [];
          looped = [];
          truncated = false;
        }

(* Rename a representative trace onto another member pair of the same
   ordered class pair: heads become the new source, and delivered paths
   additionally end in the new destination. Renaming can reorder a
   sorted list (paths differ only past the renamed cells), hence the
   re-[sort_uniq]; it cannot merge two paths, since equal renamed paths
   would already have been equal. *)
let rename_trace ~src ~dst (t : trace) =
  let head = function [] -> [] | _ :: tl -> src :: tl in
  let rec tail = function
    | [] -> []
    | [ _ ] -> [ dst ]
    | x :: tl -> x :: tail tl
  in
  let both = function [] -> [] | _ :: tl -> src :: tail tl in
  {
    delivered = List.sort_uniq compare (List.map both t.delivered);
    dropped = List.sort_uniq compare (List.map head t.dropped);
    filtered = List.sort_uniq compare (List.map head t.filtered);
    looped = List.sort_uniq compare (List.map head t.looped);
    truncated = t.truncated;
  }

let shortcut_trace src dst =
  {
    delivered = [ [ src; dst ] ];
    dropped = [];
    filtered = [];
    looped = [];
    truncated = false;
  }

(* FEC-collapsed extraction: classify hosts, trace one representative
   member pair per ordered class pair, rename onto the other members.
   The table is populated in the same source-major canonical order as
   the full extraction, with the same keys, so every [Hashtbl.fold]
   consumer sees an identical iteration sequence. *)
let extract_fec ~max_paths c (net : Device.network) fibs =
  let memo_ok = no_acls net in
  (* One probe accelerator per FIB, shared by classification and (on
     filter-free networks) the walks: with the suffix memo in play route
     lookups are scarce, so probing the FIB arrays directly beats
     compiling tries. ACL-bearing networks walk pair by pair and
     amortize per-router tries instead. *)
  let probe_tbl = probe_table fibs in
  let lk =
    lazy
      (if memo_ok then probe_lookups c probe_tbl else compiled_lookups c fibs)
  in
  let infos = List.map (fun (n, _) -> host_info net n) (Smap.bindings net.hosts) in
  let lkf = Lazy.force lk in
  let acls = enumerate_acls net in
  (* Class index per host, in first-seen (canonical host) order. *)
  let class_of = Hashtbl.create 64 in
  let sig_class = Hashtbl.create 64 in
  let n_classes = ref 0 in
  let route_id = route_interner () in
  (* The per-router FIB projections of every host, computed
     router-outer so each FIB is resolved and probed once for all
     hosts (instead of one string-keyed lookup per (host, router)
     cell). Consing in ascending router order leaves each host's
     list in descending order — any fixed order works, signatures
     are only compared against each other. *)
  let infos_arr = Array.of_list infos in
  let nh = Array.length infos_arr in
  let pfx = prefix_probes () in
  let host_pfx = Array.map (fun hi -> pfx hi.hi_host.h_addr) infos_arr in
  let route_lists = Array.make nh [] in
  Smap.iter
    (fun name _ ->
      let pb = Hashtbl.find_opt probe_tbl name in
      for h = 0 to nh - 1 do
        let proj =
          match pb with
          | None -> None
          | Some pb -> (
              match probe_lpm pb host_pfx.(h) with
              | None -> None
              | Some route -> Some route.Fib.rt_nexthops)
        in
        route_lists.(h) <- route_id proj :: route_lists.(h)
      done)
    net.routers;
  Array.iteri
    (fun h hi ->
      let s = host_signature acls ~routes:route_lists.(h) hi in
      let cls =
        match Hashtbl.find_opt sig_class s with
        | Some i -> i
        | None ->
            let i = !n_classes in
            incr n_classes;
            Hashtbl.add sig_class s i;
            i
      in
      Hashtbl.replace class_of hi.hi_name cls)
    infos_arr;
  Netcore.Telemetry.add c_classes !n_classes;
  (* One representative member pair per ordered class pair: the first
     pair in canonical order that does not same-subnet short-circuit. *)
  let reps = Hashtbl.create 64 in
  let rep_order = ref [] in
  let differing = ref 0 in
  List.iter
    (fun si ->
      List.iter
        (fun di ->
          if
            (not (String.equal si.hi_name di.hi_name))
            && not (Netcore.Prefix.equal si.hi_prefix di.hi_prefix)
          then begin
            incr differing;
            let key =
              (Hashtbl.find class_of si.hi_name, Hashtbl.find class_of di.hi_name)
            in
            if not (Hashtbl.mem reps key) then begin
              Hashtbl.add reps key (si, di);
              rep_order := (key, si, di) :: !rep_order
            end
          end)
        infos)
    infos;
  let rep_list = List.rev !rep_order in
  Netcore.Telemetry.add c_traced (List.length rep_list);
  Netcore.Telemetry.add c_collapsed (!differing - List.length rep_list);
  (* Trace the representatives destination-major so each destination's
     suffix memo (when eligible) is built once and shared. *)
  let by_dst = Hashtbl.create 64 in
  let dst_order = ref [] in
  List.iter
    (fun (key, si, di) ->
      match Hashtbl.find_opt by_dst di.hi_name with
      | Some l -> l := (key, si, di) :: !l
      | None ->
          let l = ref [ (key, si, di) ] in
          Hashtbl.add by_dst di.hi_name l;
          dst_order := di.hi_name :: !dst_order)
    rep_list;
  let groups =
    List.rev_map (fun d -> List.rev !(Hashtbl.find by_dst d)) !dst_order
  in
  (* Per-destination suffix memos, shared between representative tracing
     and pair population. Creating a memo only allocates its tables —
     the suffix walk happens on use — so pre-creating one per group
     destination here keeps the parallel phase read-only on [memos]
     (each destination belongs to exactly one group, so its node table
     is touched by one worker only). *)
  let memos : (string, string -> memo_node) Hashtbl.t = Hashtbl.create 64 in
  let memo_for di =
    match Hashtbl.find_opt memos di.hi_name with
    | Some m -> m
    | None ->
        let m = dest_memo lkf di ~cap:max_paths in
        Hashtbl.add memos di.hi_name m;
        m
  in
  if memo_ok then
    List.iter (fun group ->
        match group with
        | (_, _, di) :: _ ->
            let (_ : string -> memo_node) = memo_for di in
            ()
        | [] -> ())
      groups;
  let traced_groups =
    Netcore.Pool.chunked_map
      (fun group ->
        let memo =
          match group with
          | (_, _, di) :: _ when memo_ok ->
              Some (Hashtbl.find memos di.hi_name)
          | _ -> None
        in
        List.map
          (fun (key, si, di) ->
            let t =
              match
                Option.bind memo (fun node ->
                    memo_trace node ~cap:max_paths ~si)
              with
              | Some t -> t
              | None -> trace_hosts ~max_paths lk ~si ~di
            in
            (key, t))
          group)
      groups
  in
  let rep_traces = Hashtbl.create 256 in
  List.iter
    (List.iter (fun (key, t) -> Hashtbl.replace rep_traces key t))
    traced_groups;
  (* Canonical source-major population, byte-compatible with the full
     double loop. *)
  let n = List.length infos in
  let dp = Hashtbl.create (n * n) in
  List.iter
    (fun si ->
      List.iter
        (fun di ->
          if not (String.equal si.hi_name di.hi_name) then
            let t =
              if Netcore.Prefix.equal si.hi_prefix di.hi_prefix then
                shortcut_trace si.hi_name di.hi_name
              else
                let key =
                  ( Hashtbl.find class_of si.hi_name,
                    Hashtbl.find class_of di.hi_name )
                in
                let rsi, rdi = Hashtbl.find reps key in
                if
                  String.equal rsi.hi_name si.hi_name
                  && String.equal rdi.hi_name di.hi_name
                then Hashtbl.find rep_traces key
                else
                  let direct =
                    (* Non-representative memo-eligible pairs assemble
                       their own trace from the destination's shared
                       suffix lists — one cons per path, no sorting —
                       instead of renaming the representative's. Both
                       routes produce the exact trace the full DFS
                       would. *)
                    if memo_ok then
                      memo_trace (memo_for di) ~cap:max_paths ~si
                    else None
                  in
                  match direct with
                  | Some t -> t
                  | None ->
                      rename_trace ~src:si.hi_name ~dst:di.hi_name
                        (Hashtbl.find rep_traces key)
            in
            Hashtbl.replace dp (si.hi_name, di.hi_name) t)
        infos)
    infos;
  dp

let extract ?(max_paths = max_paths_default) ?compiled (net : Device.network)
    fibs =
  match compiled with
  | Some c when Compiled.use_compiled () && Fec.on () ->
      extract_fec ~max_paths c net fibs
  | _ ->
      let lk =
        match compiled with
        | Some c when Compiled.use_compiled () ->
            lazy (compiled_lookups c fibs)
        | _ -> lazy (legacy_lookups net fibs)
      in
      let hosts = List.map fst (Smap.bindings net.hosts) in
      let dp = Hashtbl.create (List.length hosts * List.length hosts) in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if not (String.equal src dst) then
                Hashtbl.replace dp (src, dst)
                  (trace_core ~max_paths lk net ~src ~dst))
            hosts)
        hosts;
      dp

let paths dp ~src ~dst =
  match Hashtbl.find_opt dp (src, dst) with
  | Some t -> t.delivered
  | None -> []

let all_delivered dp =
  Hashtbl.fold
    (fun key t acc -> if t.delivered = [] then acc else (key, t.delivered) :: acc)
    dp []
  |> List.sort compare

let equal_on ~hosts a b =
  List.for_all
    (fun src ->
      List.for_all
        (fun dst ->
          String.equal src dst
          || List.equal (List.equal String.equal)
               (paths a ~src ~dst) (paths b ~src ~dst))
        hosts)
    hosts
