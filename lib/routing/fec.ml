(* The process-wide switch for the scale fast paths introduced together
   with forwarding-equivalence-class collapse: FEC data-plane extraction
   (Dataplane), per-advertiser Dijkstra dedup and batched route selection
   (Ospf), and the chunk-sharded parallel folds built on them. One switch
   governs them all so that turning it off reproduces the previous
   sequential per-pair / per-prefix execution exactly — the lever the
   differential fuzz oracles and the scale benchmark's baseline use,
   mirroring CONFMASK_KERNELS for the compiled kernels. *)

let enabled = Atomic.make (Sys.getenv_opt "CONFMASK_FEC" <> Some "off")

let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

let with_mode m f =
  let saved = Atomic.get enabled in
  Atomic.set enabled (m = `On);
  Fun.protect ~finally:(fun () -> Atomic.set enabled saved) f
