(* merged candidate routes per protocol *)
module Smap = Device.Smap
module Imap = Map.Make (Int)

type snapshot = {
  net : Device.network;
  fibs : Fib.t Smap.t;
  compiled : Compiled.t;
}

(* A static route is usable when its next hop lies on one of the router's
   connected subnets; the adjacency identifies the neighbor device. *)
let static_routes (net : Device.network) (r : Device.router) =
  List.filter_map
    (fun (st : Configlang.Ast.static_route) ->
      let via =
        List.find_opt
          (fun i -> Netcore.Prefix.mem st.st_next_hop (Device.ifc_prefix i))
          r.r_ifaces
      in
      match via with
      | None -> None
      | Some i ->
          Option.map
            (fun owner ->
              {
                Fib.rt_prefix = st.st_prefix;
                rt_proto = Fib.Static;
                rt_metric = 0;
                rt_nexthops = [ { Fib.nh_router = owner; nh_iface = i.ifc_name } ];
              })
            (Device.owner_of_addr net st.st_next_hop))
    r.r_statics

let connected_routes (r : Device.router) =
  List.map
    (fun i ->
      {
        Fib.rt_prefix = Device.ifc_prefix i;
        rt_proto = Fib.Connected;
        rt_metric = 0;
        rt_nexthops = [];
      })
    r.r_ifaces

type igp_domain = {
  dom_key : [ `As of int | `Residual | `Global ];
  dom_members : string list;
  dom_scope : string -> bool;
}

(* One IGP domain per AS when BGP is present (BGP-less routers form a
   residual domain), a single global domain otherwise. Membership lookups
   are Map-based; scopes are only ever evaluated on router names. *)
let igp_domains (net : Device.network) =
  let has_bgp =
    Smap.exists (fun _ (r : Device.router) -> r.r_bgp <> None) net.routers
  in
  if not has_bgp then
    [
      {
        dom_key = `Global;
        dom_members = List.map fst (Smap.bindings net.routers);
        dom_scope = (fun _ -> true);
      };
    ]
  else
    let member_as =
      Smap.filter_map (fun _ r -> Device.as_of_router r) net.routers
    in
    let groups =
      Smap.fold
        (fun name asn acc ->
          Imap.update asn
            (function None -> Some [ name ] | Some l -> Some (name :: l))
            acc)
        member_as Imap.empty
    in
    let as_domains =
      Imap.fold
        (fun asn members acc ->
          {
            dom_key = `As asn;
            dom_members = List.rev members;
            dom_scope = (fun n -> Smap.find_opt n member_as = Some asn);
          }
          :: acc)
        groups []
      |> List.rev
    in
    let residual =
      Smap.fold
        (fun name _ acc -> if Smap.mem name member_as then acc else name :: acc)
        net.routers []
      |> List.rev
    in
    as_domains
    @ [
        {
          dom_key = `Residual;
          dom_members = residual;
          dom_scope = (fun n -> not (Smap.mem n member_as));
        };
      ]

let merge_candidates a b = Smap.union (fun _ x y -> Some (x @ y)) a b

(* OSPF, RIP and EIGRP candidates of one domain, merged per router in
   administrative order (ospf @ rip @ eigrp). Protocols none of the
   members run are skipped. *)
let domain_candidates ?pool (net : Device.network) d =
  let member_runs f =
    List.exists
      (fun m ->
        match Smap.find_opt m net.routers with
        | Some r -> f r
        | None -> false)
      d.dom_members
  in
  let scope = d.dom_scope in
  let ospf =
    if member_runs (fun r -> r.Device.r_ospf <> None) then
      Ospf.compute ~scope ?pool net
    else Smap.empty
  in
  let rip =
    if member_runs (fun r -> r.Device.r_rip <> None) then Rip.compute ~scope net
    else Smap.empty
  in
  let eigrp =
    if member_runs (fun r -> r.Device.r_eigrp <> None) then
      Eigrp.compute ~scope net
    else Smap.empty
  in
  merge_candidates (merge_candidates ospf rip) eigrp

let base_fibs_of_candidates (net : Device.network) igp_candidates =
  Smap.mapi
    (fun name (r : Device.router) ->
      (* IGP candidates arrive in the descending-prefix order batched
         selection emits, so after the handful of connected and static
         routes they merge in linearly; [add_sorted_desc] falls back to
         per-candidate inserts if a protocol mix breaks the order. *)
      Fib.add_sorted_desc
        (Fib.of_candidates (connected_routes r @ static_routes net r))
        (Option.value ~default:[] (Smap.find_opt name igp_candidates)))
    net.routers

let run_net ?pool (net : Device.network) =
  let has_bgp =
    Smap.exists (fun _ (r : Device.router) -> r.r_bgp <> None) net.routers
  in
  let igp_candidates =
    (* Domains are disjoint, so each is an independent parallel task. *)
    Netcore.Pool.parallel_map ?pool
      (fun d -> domain_candidates ?pool net d)
      (igp_domains net)
    |> List.fold_left merge_candidates Smap.empty
  in
  let base_fibs = base_fibs_of_candidates net igp_candidates in
  if not has_bgp then base_fibs
  else
    let bgp_candidates = Bgp.compute net ~igp_fibs:base_fibs in
    Smap.mapi
      (fun name fib ->
        List.fold_left
          (fun fib c -> Fib.add_candidate c fib)
          fib
          (Option.value ~default:[] (Smap.find_opt name bgp_candidates)))
      base_fibs

let run ?pool configs =
  match Device.compile configs with
  | Error _ as e -> e
  | Ok net -> Ok { net; fibs = run_net ?pool net; compiled = Compiled.build net }

let run_exn ?pool configs =
  match run ?pool configs with Ok s -> s | Error m -> failwith m

let dataplane ?max_paths s =
  Dataplane.extract ?max_paths ~compiled:s.compiled s.net s.fibs

let host_prefixes (net : Device.network) =
  Smap.fold
    (fun name h acc -> (Device.host_prefix h, name) :: acc)
    net.hosts []
  |> List.sort compare

let host_routes s =
  let hps = host_prefixes s.net in
  Smap.fold
    (fun rname fib acc ->
      List.fold_left
        (fun acc (hp, _) ->
          match Fib.find fib hp with
          | Some route when route.rt_nexthops <> [] ->
              (rname, hp, Fib.nexthop_names route) :: acc
          | Some _ | None -> acc)
        acc hps)
    s.fibs []
  |> List.sort compare
