(** OSPF (link-state) route computation.

    Single-area model: every router in scope that runs an OSPF process and
    has OSPF-enabled interfaces participates in one shortest-path domain.
    For each advertised prefix we run a multi-source Dijkstra seeded at the
    advertising routers (at their stub costs) over the reversed adjacency,
    then derive ECMP next hops from the distance field. Inbound
    distribute-lists suppress the *installation* of a next hop without
    affecting the SPF computation — exactly the Cisco semantics ConfMask's
    route-equivalence filters rely on (§5.2).

    The computation is split in two phases so the incremental engine can
    cache the expensive one: {!prepare} runs every per-prefix Dijkstra
    (depends on interfaces, costs and [network] statements only), and
    {!routes_for} selects one router's routes against a prepared state
    (depends additionally on that router's distribute-lists). *)

module Smap = Device.Smap

type state
(** SPF state of one domain: scoped adjacencies plus, per advertised
    prefix, its connected routers and the distance of every scoped router
    toward it. Valid as long as no in-scope router changes its interfaces,
    costs or IGP [network] statements. *)

val prepare :
  ?scope:(string -> bool) -> ?pool:Netcore.Pool.t -> Device.network -> state
(** Runs the per-prefix Dijkstras, in parallel through [pool] (defaults to
    the shared pool). *)

val prepare_update :
  ?scope:(string -> bool) ->
  ?pool:Netcore.Pool.t ->
  prev:state ->
  Device.network ->
  (state * Netcore.Prefix.t list) option
(** [prepare_update ~prev net] refreshes [prev] after an edit that kept
    every router-to-router OSPF adjacency intact (e.g. attaching stub
    networks): only prefixes whose advertising seeds changed get new
    Dijkstras, everything else is carried over. Returns the new state and
    the prefixes whose distances changed (including ones no longer
    advertised), or [None] when the adjacencies differ and a full
    {!prepare} is needed. *)

val rescope : ?scope:(string -> bool) -> Device.network -> state -> state
(** [rescope net st] replaces [st]'s embedded adjacencies with the ones
    of [net] (under [scope]), keeping the distance fields. Used when a
    state is restored from the persistent cache: the distances are valid
    whenever the SPF-relevant inputs match, but the stored adjacencies
    embed interface fields outside that fingerprint (delays, ACLs) that
    must be refreshed for the restored state to be structurally
    identical to a fresh {!prepare}. *)

val routes_for : state -> Device.network -> string -> Fib.route list
(** [routes_for st net r] is router [r]'s OSPF candidate routes under
    state [st]. *)

val select_all :
  ?pool:Netcore.Pool.t -> state -> Device.network -> Fib.route list Smap.t
(** Batched {!routes_for} over every scoped router at once:
    [Smap.find_opt r (select_all st net) |> Option.value ~default:[]]
    equals [routes_for st net r] for every router [r] in the state's
    scope (routers with no routes have no binding). One dense sweep per
    prefix, sharded across [pool] — much cheaper than per-router map
    probing when most routers need selection. *)

val changed_filter_prefixes :
  (string * Configlang.Ast.prefix_list) list ->
  (string * Configlang.Ast.prefix_list) list ->
  Netcore.Prefix.t list option
(** [changed_filter_prefixes old new_] bounds the set of prefixes whose
    inbound-filter decision can differ between the two distribute-list
    configurations: [Some ps] when every list involved in a changed
    interface binding has the [Edits.deny_on_iface] shape (exact-match
    rules then a catch-all permit), [None] when the lists are too general
    to bound cheaply. *)

val routes_for_update :
  state ->
  Device.network ->
  string ->
  prev:Fib.route list ->
  affected:Netcore.Prefix.t list ->
  Fib.route list
(** [routes_for_update st net r ~prev ~affected] patches a previous
    [routes_for] result after a filter-only change: selection is redone
    for the [affected] prefixes only and spliced into [prev]. Produces
    exactly what [routes_for st net r] would, provided [st] is unchanged
    and every prefix outside [affected] kept its filter decision (as
    guaranteed by {!changed_filter_prefixes}). *)

val compute :
  ?scope:(string -> bool) ->
  ?pool:Netcore.Pool.t ->
  Device.network ->
  Fib.route list Smap.t
(** OSPF candidate routes per router ([prepare] + [routes_for] for every
    scoped router). [scope] restricts the domain (used to run one OSPF
    instance per AS in BGP networks); it defaults to all routers. *)

val min_cost :
  ?scope:(string -> bool) -> Device.network -> string -> int Smap.t
(** [min_cost net u] is the OSPF shortest-path distance from router [u] to
    every other reachable router in the domain — the [min_cost(u, v)] of
    the link-state SFE conditions (§5.1). *)

type cost_state
(** One scope's prepared forward-distance machinery (scoped adjacencies
    plus, under the compiled kernels, the interner and forward CSR).
    Preparing it once and querying many sources avoids the per-call
    graph rebuild that dominates {!min_cost} on large networks. *)

val min_cost_state :
  ?scope:(string -> bool) -> Device.network -> cost_state
(** Prepare a scope for repeated single-source queries. *)

val min_cost_from : cost_state -> string -> int Smap.t
(** [min_cost_from st u] equals [min_cost ~scope net u] for the [scope]
    and [net] that built [st]. *)
