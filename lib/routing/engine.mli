(** Incremental control-plane simulation engine.

    Wraps {!Simulate}'s building blocks with per-IGP-domain caches keyed
    by structural fingerprints of each router's compiled config, so the
    anonymization fixpoints (deny-filter edits in [Route_equiv.fix], the
    k_H repair loop in [Route_anon]) pay only for what an edit actually
    invalidates instead of a full re-simulation per iteration.

    Invalidation granularity, coarse to fine:
    - a router whose full fingerprint is unchanged keeps its FIB when its
      inputs (base FIB, BGP candidates) are also unchanged;
    - per domain, the OSPF SPF state (per-prefix Dijkstras) is reused as
      long as no member changed interfaces, costs or [network] statements
      — distribute-list edits, the only edit the fixpoints issue, never
      invalidate it; per-router OSPF route selection is recomputed only
      for members whose filters changed;
    - RIP/EIGRP propagate filters, so a DV-relevant change at any member
      recomputes that domain's DV routes;
    - BGP is a global fixpoint and is redone whenever anything changed.

    Results are bit-identical to [Simulate.run] on the same configs: the
    property tests in [test/test_routing.ml] compare FIBs structurally
    after random edit sequences.

    Cache reuse is observable through [Netcore.Telemetry] counters
    ([engine.spf_reuse]/[engine.spf_full], [engine.sel_patch],
    [engine.dv_recompute], [engine.bgp_skip]/[engine.bgp_compute],
    [engine.fib_reuse]/[engine.fib_build], [engine.edits]) and spans
    ([engine.build], [engine.domains], [engine.bgp]). When the telemetry
    self-check period is positive ([CONFMASK_SELFCHECK], [--selfcheck]),
    every Nth {!apply_edit} additionally shadows the incremental result
    with a from-scratch [Simulate.run] and raises [Failure] naming the
    divergent routers if the FIBs differ semantically. *)

module Smap = Device.Smap

type t

val of_configs :
  ?incremental:bool ->
  ?pool:Netcore.Pool.t ->
  Configlang.Ast.config list ->
  (t, string) result
(** Compile and simulate from scratch. [incremental:false] disables all
    cache reuse in subsequent {!apply_edit} calls — every edit then costs
    a full re-simulation, which is the pre-engine cost model used as the
    benchmark baseline. Default [true]. *)

val of_configs_exn :
  ?incremental:bool ->
  ?pool:Netcore.Pool.t ->
  Configlang.Ast.config list ->
  t

val apply_edit : t -> Configlang.Ast.config list -> (t, string) result
(** [apply_edit t configs] re-simulates under the (full) edited config
    list, reusing every cache the edit does not invalidate. *)

val apply_edit_exn : t -> Configlang.Ast.config list -> t

val snapshot : t -> Simulate.snapshot

val configs : t -> Configlang.Ast.config list

val network : t -> Device.network

val fibs : t -> Fib.t Smap.t

val is_incremental : t -> bool
