(** Incremental control-plane simulation engine.

    Wraps {!Simulate}'s building blocks with per-IGP-domain caches keyed
    by structural fingerprints of each router's compiled config, so the
    anonymization fixpoints (deny-filter edits in [Route_equiv.fix], the
    k_H repair loop in [Route_anon]) pay only for what an edit actually
    invalidates instead of a full re-simulation per iteration.

    Invalidation granularity, coarse to fine:
    - a router whose full fingerprint is unchanged keeps its FIB when its
      inputs (base FIB, BGP candidates) are also unchanged;
    - per domain, the OSPF SPF state (per-prefix Dijkstras) is reused as
      long as no member changed interfaces, costs or [network] statements
      — distribute-list edits, the only edit the fixpoints issue, never
      invalidate it; per-router OSPF route selection is recomputed only
      for members whose filters changed;
    - RIP/EIGRP propagate filters, so a DV-relevant change at any member
      recomputes that domain's DV routes;
    - BGP is a global fixpoint and is redone whenever anything changed.

    Results are bit-identical to [Simulate.run] on the same configs: the
    property tests in [test/test_routing.ml] compare FIBs structurally
    after random edit sequences.

    On top of the in-memory caches, an optional {e persistent} cache
    (a {!Netcore.Diskcache.t}, see {!open_cache}) carries results across
    processes: whole from-scratch builds, per-domain SPF states, per-domain
    DV results and global BGP fixpoints are stored under keys derived from
    the same structural fingerprints, so a warm rerun of an identical (or
    partially identical) workload skips the matching recomputations
    entirely. Disk reuse is correctness-neutral by the same argument as
    in-memory reuse — every key covers every input of the computation it
    stores — and is additionally guarded by the warm-equals-cold property
    tests and the [--selfcheck] shadow path.

    Cache reuse is observable through [Netcore.Telemetry] counters
    ([engine.spf_reuse]/[engine.spf_full], [engine.sel_patch],
    [engine.dv_recompute], [engine.bgp_skip]/[engine.bgp_compute],
    [engine.fib_reuse]/[engine.fib_build], [engine.edits], and the disk
    hits [engine.state_disk], [engine.spf_disk], [engine.dv_disk],
    [engine.bgp_disk]) and spans
    ([engine.build], [engine.domains], [engine.bgp]). When the telemetry
    self-check period is positive ([CONFMASK_SELFCHECK], [--selfcheck]),
    every Nth {!apply_edit} additionally shadows the incremental result
    with a from-scratch [Simulate.run] and raises [Failure] naming the
    divergent routers if the FIBs differ semantically. *)

module Smap = Device.Smap

type t

val cache_version : string
(** Version tag of the engine's persistent-cache entry format. Bumped
    whenever a marshaled type or a fingerprint definition changes, which
    invalidates every existing cache directory wholesale (see
    {!Netcore.Diskcache.open_dir}). *)

val open_cache : string -> Netcore.Diskcache.t
(** [open_cache dir] opens (creating if needed) a persistent simulation
    cache at [dir], versioned with {!cache_version}. The handle is meant
    to be passed to {!of_configs}; a corrupted or version-mismatched
    directory is treated as empty, never trusted. *)

val of_configs :
  ?incremental:bool ->
  ?pool:Netcore.Pool.t ->
  ?cache:Netcore.Diskcache.t ->
  Configlang.Ast.config list ->
  (t, string) result
(** Compile and simulate from scratch. [incremental:false] disables all
    cache reuse in subsequent {!apply_edit} calls — every edit then costs
    a full re-simulation, which is the pre-engine cost model used as the
    benchmark baseline; the persistent [cache] is ignored too, for the
    same reason. Default [true].

    [cache] plugs in a persistent cross-process cache (see {!open_cache}):
    matching SPF / DV / BGP / whole-state entries are restored instead of
    recomputed, and missing ones are stored after computation. The engine
    result is bit-identical with and without it. *)

val of_configs_exn :
  ?incremental:bool ->
  ?pool:Netcore.Pool.t ->
  ?cache:Netcore.Diskcache.t ->
  Configlang.Ast.config list ->
  t

val apply_edit : t -> Configlang.Ast.config list -> (t, string) result
(** [apply_edit t configs] re-simulates under the (full) edited config
    list, reusing every cache the edit does not invalidate. A persistent
    cache passed at {!of_configs} time is carried along. *)

val apply_edit_exn : t -> Configlang.Ast.config list -> t

val snapshot : t -> Simulate.snapshot

val configs : t -> Configlang.Ast.config list

val network : t -> Device.network

val compiled : t -> Compiled.t
(** The network's compiled form (interned ids, CSR adjacency, interface
    tables). Cached alongside the fingerprints: {!apply_edit} reuses it
    whenever the edit preserves interface-level topology — observable as
    [compiled.reuse] vs [compiled.build] telemetry. *)

val fibs : t -> Fib.t Smap.t

val is_incremental : t -> bool

val cache : t -> Netcore.Diskcache.t option
(** The persistent cache this engine reads and writes, if any. *)

val pool : t -> Netcore.Pool.t option
(** The worker pool this engine fans out on, if one was pinned at
    {!of_configs} time ([None] means the process-wide shared pool). The
    anonymization fixpoints reuse it so their own sharded scans run on
    the same parallelism budget as the engine rebuilds they interleave
    with. *)

val delta : t -> string list option
(** The routers whose final FIB changed in the build that produced [t],
    relative to the engine state the edit was applied to — the
    invalidation frontier consumers of {!apply_edit} can restrict their
    own per-router analyses to. Sorted by name. [None] after a
    from-scratch build ({!of_configs}, a whole-state disk restore, or any
    build with [incremental:false]): there is no previous state to diff
    against, so callers must treat every router as changed. The change
    test is structural equality of the canonical FIB representation, so
    a reported delta of [[]] really is a no-op edit. *)
