open Netcore
module Smap = Device.Smap
module Ast = Configlang.Ast

let all _ = true

let c_dijkstras = Telemetry.counter "ospf.dijkstras"
let c_sssp_saved = Telemetry.counter "ospf.sssp_saved"

(* Directed adjacencies usable by OSPF: both interface ends enabled and
   both routers in scope. *)
let ospf_adjs ?(scope = all) (net : Device.network) =
  Smap.filter_map
    (fun name adjs ->
      if not (scope name) then None
      else
        match Smap.find_opt name net.routers with
        | None -> None
        | Some r when r.Device.r_ospf = None -> None
        | Some r ->
            Some
              (List.filter
                 (fun (a : Device.adj) ->
                   scope a.a_to
                   && Device.ospf_enabled r a.a_out_iface
                   &&
                   match Smap.find_opt a.a_to net.routers with
                   | Some peer -> Device.ospf_enabled peer a.a_in_iface
                   | None -> false)
                 adjs))
    net.adjs

(* Incoming adjacencies indexed by head node, for the reverse Dijkstra. *)
let reverse_index adjs =
  Smap.fold
    (fun _ outs acc ->
      List.fold_left
        (fun acc (a : Device.adj) ->
          Smap.update a.a_to
            (function None -> Some [ a ] | Some l -> Some (a :: l))
            acc)
        acc outs)
    adjs Smap.empty

(* Multi-source Dijkstra toward a destination: [seeds] are (router, cost)
   pairs; the result maps each router to its distance to the destination. *)
let distances_to ~rev seeds =
  Telemetry.incr c_dijkstras;
  let rec loop dist pq =
    match Pqueue.pop pq with
    | None -> dist
    | Some (d, v, pq) ->
        if Smap.mem v dist then loop dist pq
        else
          let dist = Smap.add v d dist in
          let pq =
            List.fold_left
              (fun pq (a : Device.adj) ->
                if Smap.mem a.a_from dist then pq
                else Pqueue.insert (d + a.a_out_iface.ifc_cost) a.a_from pq)
              pq
              (Option.value ~default:[] (Smap.find_opt v rev))
          in
          loop dist pq
  in
  let pq =
    List.fold_left (fun pq (r, c) -> Pqueue.insert c r pq) Pqueue.empty seeds
  in
  loop Smap.empty pq

(* ---- compiled Dijkstra kernel ----

   The scoped subgraph re-expressed on dense int ids: vertices are the
   keys of an [ospf_adjs] map (every scoped OSPF router — adjacency
   targets are always keys too, since [ospf_adjs] only keeps an edge
   when its peer is a scoped OSPF router), edges a CSR built once per
   [prepare] and shared by every per-prefix Dijkstra, including the
   parallel ones: after construction the interner and CSR are only ever
   read. *)

let scoped_interner adjs =
  let it = Interner.create ~capacity:(Smap.cardinal adjs + 1) () in
  Smap.iter (fun name _ -> ignore (Interner.intern it name)) adjs;
  it

let scoped_csr ~rev it adjs =
  let edges =
    Smap.fold
      (fun name outs acc ->
        let u = Interner.intern it name in
        List.fold_left
          (fun acc (a : Device.adj) ->
            let v = Interner.intern it a.a_to in
            let c = a.a_out_iface.ifc_cost in
            (if rev then (v, u, c) else (u, v, c)) :: acc)
          acc outs)
      adjs []
  in
  Compiled.Csr.of_edges ~n:(Interner.length it) edges

(* Fold a distance array back into the canonical [Smap] the callers (and
   the disk-cached [state] type) expect — same keys, same values as the
   legacy [distances_to], whatever order either side visited them in. *)
let distances_of_array it dist =
  let out = ref Smap.empty in
  for i = 0 to Interner.length it - 1 do
    if dist.(i) < max_int then out := Smap.add (Interner.name it i) dist.(i) !out
  done;
  !out

(* Compiled replacement for [distances_to]. A seed outside the scoped
   graph has no incident edges, so its distance is its least seed cost —
   exactly what the legacy queue produces for it. *)
let distances_csr it csr seeds =
  let ids, extras =
    List.partition_map
      (fun (r, c) ->
        match Interner.find it r with
        | Some v -> Either.Left (v, c)
        | None -> Either.Right (r, c))
      seeds
  in
  let out = distances_of_array it (Compiled.Csr.dijkstra csr ~seeds:ids) in
  List.fold_left
    (fun out (r, c) ->
      Smap.update r
        (function Some d -> Some (min d c) | None -> Some c)
        out)
    out extras

(* The per-seed-set distance function of one prepared scope: compiled
   (interner + reverse CSR, array Dijkstra) or legacy (reverse index,
   pairing heap), selected by the global kernel switch. *)
let distances_fn adjs =
  if Compiled.use_compiled () then begin
    let it = scoped_interner adjs in
    let rcsr = scoped_csr ~rev:true it adjs in
    fun seeds ->
      Telemetry.incr c_dijkstras;
      distances_csr it rcsr seeds
  end
  else
    let rev = reverse_index adjs in
    fun seeds -> distances_to ~rev seeds

(* ---- sharded SPF with per-advertiser dedup ----

   The per-prefix reverse Dijkstras of a scope overlap heavily: many
   prefixes are advertised by the same routers (every router contributes
   one prefix per OSPF interface). The multi-source distance field of a
   prefix seeded at [(s1,c1); ...; (sk,ck)] is exactly the pointwise
   minimum over i of [c_i + dist(s_i, -)] — so one single-source Dijkstra
   per *distinct advertising router* suffices, and each per-prefix field
   is a cheap min-combine of the shared per-advertiser fields. Integer
   arithmetic throughout: the combine is exact, not an approximation.

   Both the per-advertiser Dijkstras and the per-prefix combines are
   sharded across the pool in contiguous chunks ([Pool.chunked_map]),
   whose boundaries cannot affect results. *)

(* Distinct advertising router ids, in first-appearance order over the
   ascending-prefix bindings. *)
let distinct_seed_ids it bindings =
  let seen = Array.make (max 1 (Interner.length it)) false in
  let order = ref [] in
  List.iter
    (fun (_, seeds) ->
      List.iter
        (fun (r, _) ->
          match Interner.find it r with
          | Some v when not seen.(v) ->
              seen.(v) <- true;
              order := v :: !order
          | Some _ | None -> ())
        seeds)
    bindings;
  List.rev !order

(* Per-prefix distance arrays over the interner ids (non-interned seeds
   are not represented — [materialize_dists] folds them back in). Uses
   the per-advertiser dedup unless the scope has more distinct
   advertisers than prefixes, where per-prefix multi-source runs are
   strictly fewer Dijkstras. *)
let dist_arrays ?pool it rcsr bindings =
  let seed_ids = distinct_seed_ids it bindings in
  if List.length seed_ids <= List.length bindings then begin
    let dist_of = Array.make (max 1 (Interner.length it)) [||] in
    List.iter
      (fun (v, d) -> dist_of.(v) <- d)
      (Pool.chunked_map ?pool
         (fun v ->
           Telemetry.incr c_dijkstras;
           (v, Compiled.Csr.dijkstra rcsr ~seeds:[ (v, 0) ]))
         seed_ids);
    Telemetry.add c_sssp_saved
      (max 0 (List.length bindings - List.length seed_ids));
    let n = Interner.length it in
    Pool.chunked_map ?pool
      (fun (p, seeds) ->
        let dist = Array.make (max 1 n) max_int in
        List.iter
          (fun (r, c) ->
            match Interner.find it r with
            | None -> ()
            | Some v ->
                let dv = dist_of.(v) in
                for i = 0 to n - 1 do
                  let d = Array.unsafe_get dv i in
                  if d < max_int && d + c < Array.unsafe_get dist i then
                    Array.unsafe_set dist i (d + c)
                done)
          seeds;
        (p, seeds, dist))
      bindings
  end
  else
    Pool.chunked_map ?pool
      (fun (p, seeds) ->
        Telemetry.incr c_dijkstras;
        let ids =
          List.filter_map
            (fun (r, c) -> Option.map (fun v -> (v, c)) (Interner.find it r))
            seeds
        in
        (p, seeds, Compiled.Csr.dijkstra rcsr ~seeds:ids))
      bindings

(* Fold one per-prefix array back into the canonical Smap binding the
   [state] type stores — the same keys, values and insertion sequence as
   [distances_csr], so marshalled states stay byte-identical. *)
let materialize_dists it (p, seeds, dist) =
  let out = distances_of_array it dist in
  let out =
    List.fold_left
      (fun out (r, c) ->
        if Interner.find it r <> None then out
        else
          Smap.update r
            (function Some d -> Some (min d c) | None -> Some c)
            out)
      out seeds
  in
  (p, (seeds, out))

(* The per-prefix distance bindings of a scope, through whichever path
   the switches select: sharded compiled arrays, plain compiled, or the
   legacy pairing heap. All three produce identical bindings. *)
let scope_dists ?pool adjs bindings =
  match bindings with
  | [] -> []
  | _ when Fec.on () && Compiled.use_compiled () ->
      let it = scoped_interner adjs in
      let rcsr = scoped_csr ~rev:true it adjs in
      Pool.chunked_map ?pool (materialize_dists it)
        (dist_arrays ?pool it rcsr bindings)
  | _ ->
      let distances = distances_fn adjs in
      Pool.parallel_map ?pool
        (fun (p, seeds) -> (p, (seeds, distances seeds)))
        bindings

let advertised_prefixes ?(scope = all) (net : Device.network) =
  Smap.fold
    (fun name (r : Device.router) acc ->
      if not (scope name) then acc
      else
        List.fold_left
          (fun acc i ->
            if Device.ospf_enabled r i then
              let p = Device.ifc_prefix i in
              Prefix.Map.update p
                (function
                  | None -> Some [ (name, i.Device.ifc_cost) ]
                  | Some l -> Some ((name, i.Device.ifc_cost) :: l))
                acc
            else acc)
          acc r.r_ifaces)
    net.routers Prefix.Map.empty

(* The SPF state of one IGP domain: the scoped adjacencies and, per
   advertised prefix, the routers it is connected to and the reverse
   shortest-path distance of every scoped router toward it. This is the
   expensive part of OSPF — it depends only on interfaces, costs and
   [network] statements, never on distribute-list filters, so the
   incremental engine reuses it across filter-only edits. *)
type state = {
  st_adjs : Device.adj list Smap.t;
  st_dists : ((string * int) list * int Smap.t) Prefix.Map.t;
}

let prepare ?(scope = all) ?pool (net : Device.network) =
  Telemetry.with_span "ospf.prepare" @@ fun () ->
  let adjs = ospf_adjs ~scope net in
  let prefixes = advertised_prefixes ~scope net in
  (* One reverse Dijkstra per advertised prefix (deduped per advertiser
     on the sharded path), embarrassingly parallel. *)
  let dists = scope_dists ?pool adjs (Prefix.Map.bindings prefixes) in
  {
    st_adjs = adjs;
    st_dists =
      List.fold_left
        (fun m (p, v) -> Prefix.Map.add p v m)
        Prefix.Map.empty dists;
  }

(* Refresh a state after an edit that kept every router-to-router OSPF
   adjacency intact (e.g. attaching stub networks for fake hosts): only
   prefixes whose advertising seeds changed need new Dijkstras, every
   other distance field is carried over. Returns the new state plus the
   prefixes whose distances changed (including removed ones) so selection
   can be patched, or None when the adjacencies differ and a full
   [prepare] is required. *)
let prepare_update ?(scope = all) ?pool ~(prev : state) (net : Device.network) =
  Telemetry.with_span "ospf.prepare_update" @@ fun () ->
  let adjs = ospf_adjs ~scope net in
  if not (Smap.equal ( = ) adjs prev.st_adjs) then None
  else
    let prefixes = advertised_prefixes ~scope net in
    let fresh =
      Prefix.Map.fold
        (fun p seeds acc ->
          match Prefix.Map.find_opt p prev.st_dists with
          | Some (seeds', _) when seeds = seeds' -> acc
          | _ -> (p, seeds) :: acc)
        prefixes []
    in
    let removed =
      Prefix.Map.fold
        (fun p _ acc -> if Prefix.Map.mem p prefixes then acc else p :: acc)
        prev.st_dists []
    in
    (* The scoped graph is only compiled when something actually needs a
       new Dijkstra ([scope_dists] short-circuits on []). *)
    let recomputed = scope_dists ?pool adjs fresh in
    let dists =
      List.fold_left
        (fun m (p, v) -> Prefix.Map.add p v m)
        (Prefix.Map.filter
           (fun p _ -> Prefix.Map.mem p prefixes)
           prev.st_dists)
        recomputed
    in
    let changed = removed @ List.map fst recomputed in
    Some ({ st_adjs = prev.st_adjs; st_dists = dists }, changed)

(* Rebind a state's adjacencies to the current network. The distance
   fields of a state are a function of SPF-relevant inputs only (the
   engine's spf fingerprints), but [st_adjs] embeds whole interface
   records — delays, ACLs, descriptions — that those fingerprints
   deliberately exclude. A state restored from the disk cache therefore
   recomputes its adjacencies here, so it is structurally identical to a
   fresh [prepare] and later [prepare_update] equality checks see no
   phantom change. *)
let rescope ?(scope = all) (net : Device.network) (st : state) =
  { st with st_adjs = ospf_adjs ~scope net }

(* Route selection for one (router, prefix) pair against a prepared
   state: a function of the router's own filters and scoped adjacencies
   only. *)
let select_one ~filters ~adjs r p (seeds, dist) =
  match Smap.find_opt r dist with
  | None -> None
  | Some dr ->
      if List.mem_assoc r seeds then None
      else
        let nexthops =
          List.filter_map
            (fun (a : Device.adj) ->
              match Smap.find_opt a.a_to dist with
              | Some dn when a.a_out_iface.ifc_cost + dn = dr ->
                  if Device.iface_filter_denies filters a.a_out_iface.ifc_name p
                  then None
                  else
                    Some
                      { Fib.nh_router = a.a_to; nh_iface = a.a_out_iface.ifc_name }
              | Some _ | None -> None)
            adjs
        in
        if nexthops = [] then None
        else
          Some
            {
              Fib.rt_prefix = p;
              rt_proto = Fib.Ospf;
              rt_metric = dr;
              rt_nexthops = nexthops;
            }

let router_filters (net : Device.network) r =
  match Smap.find_opt r net.routers with
  | None -> []
  | Some router -> (
      match router.Device.r_ospf with Some o -> o.op_filters | None -> [])

(* Route selection for one router against a prepared state: cheap, and a
   function of the router's own filters and scoped adjacencies only. *)
let routes_for st (net : Device.network) r =
  let filters = router_filters net r in
  let adjs = Option.value ~default:[] (Smap.find_opt r st.st_adjs) in
  Prefix.Map.fold
    (fun p v acc ->
      match select_one ~filters ~adjs r p v with
      | None -> acc
      | Some route -> route :: acc)
    st.st_dists []

(* ---- filter-delta selection ----

   The anonymization loops only ever touch distribute-lists of the shape
   produced by [Edits.deny_on_iface]: exact-match rules followed by a
   catch-all permit. Under that shape a prefix not named by any rule is
   permitted no matter what, so the set of prefixes whose import decision
   can differ between two filter configurations is bounded by the rules'
   own prefixes — and route selection can be patched instead of redone. *)

let exact_rule (r : Ast.prefix_rule) = r.le = None

let permit_all_rule (r : Ast.prefix_rule) =
  r.action = Ast.Permit && Prefix.length r.rule_prefix = 0
  &&
  match r.le with Some le -> le >= 32 | None -> false

(* A list where only explicitly named prefixes can be denied: exact rules
   in front, one catch-all permit at the end (the [Edits.list_deny]
   shape). Returns the named prefixes, or None if the shape is more
   general than that. *)
let bounded_list (pl : Ast.prefix_list) =
  match List.rev pl.pl_rules with
  | last :: earlier when permit_all_rule last ->
      if List.for_all exact_rule earlier then
        Some (List.map (fun (r : Ast.prefix_rule) -> r.rule_prefix) earlier)
      else None
  | _ -> None

(* Prefixes whose inbound decision at a router can differ between filter
   configurations [old_f] and [new_f]; None when the lists are too
   general to bound cheaply (callers then fall back to [routes_for]). *)
let changed_filter_prefixes old_f new_f =
  let ifaces =
    List.sort_uniq String.compare (List.map fst old_f @ List.map fst new_f)
  in
  let rec per_iface acc = function
    | [] -> Some (List.sort_uniq Prefix.compare acc)
    | ifc :: rest ->
        let bound f = List.filter_map
            (fun (i, pl) -> if String.equal i ifc then Some pl else None) f
        in
        let o = bound old_f and n = bound new_f in
        if o = n then per_iface acc rest
        else
          let collect pls =
            List.fold_left
              (fun acc pl ->
                match (acc, bounded_list pl) with
                | Some acc, Some ps -> Some (ps @ acc)
                | _ -> None)
              (Some []) pls
          in
          (match collect (o @ n) with
          | Some ps -> per_iface (ps @ acc) rest
          | None -> None)
  in
  per_iface [] ifaces

(* Patch a previous [routes_for] result after a filter-only change:
   recompute selection for the [affected] prefixes and splice the results
   into [prev], preserving the descending-prefix order [routes_for]
   produces. Correct only when the SPF state is unchanged and every
   prefix outside [affected] keeps its filter decision. *)
let routes_for_update st (net : Device.network) r ~prev ~affected =
  let filters = router_filters net r in
  let adjs = Option.value ~default:[] (Smap.find_opt r st.st_adjs) in
  let news =
    (* A prefix no longer advertised still needs a [None] entry so the
       merge drops its previous route. *)
    List.map
      (fun p ->
        ( p,
          Option.bind
            (Prefix.Map.find_opt p st.st_dists)
            (fun v -> select_one ~filters ~adjs r p v) ))
      affected
    |> List.sort_uniq (fun (a, _) (b, _) -> Prefix.compare b a)
  in
  let rec merge prev news =
    match news with
    | [] -> prev
    | (p, ro) :: ntl -> (
        match prev with
        | (r : Fib.route) :: ptl when Prefix.compare r.rt_prefix p > 0 ->
            r :: merge ptl news
        | _ ->
            let prev =
              match prev with
              | (r : Fib.route) :: ptl when Prefix.compare r.rt_prefix p = 0 ->
                  ptl
              | _ -> prev
            in
            (match ro with
            | Some route -> route :: merge prev ntl
            | None -> merge prev ntl))
  in
  merge prev news

(* ---- batched selection ----

   Route selection for every scoped router in one sweep. [routes_for]
   performs P×V [Smap.find_opt] probes (one per (router, prefix) pair,
   plus one per adjacency); here each per-prefix distance field is
   splatted into a dense array once and every router's pre-resolved
   adjacency row is scanned against it. Produces, per router, exactly
   the route list [routes_for] builds — same routes, same
   descending-prefix order, same nexthop order — because per prefix it
   evaluates the very conditions of [select_one] on the same adjacency
   sequence.

   The per-prefix sweeps are sharded in contiguous ascending-prefix
   chunks; each chunk accumulates per-router route lists, and chunks are
   stitched as [later @ earlier] so the final per-router list is the
   descending-prefix order of the sequential fold. *)
let select_core ?pool it (net : Device.network) adjs dists =
  let n = Interner.length it in
  (* Flattened adjacency in CSR form with one prebuilt next-hop record
     per edge: next hops are identical for every prefix the edge serves,
     so sharing the records saves an allocation per (router, prefix,
     edge) hit without changing anything structural equality sees. *)
  let filt_rows = Array.make (max 1 n) [] in
  let rows = Array.make (max 1 n) [] in
  let n_edges = ref 0 in
  Interner.iter it (fun v name ->
      let row = Option.value ~default:[] (Smap.find_opt name adjs) in
      rows.(v) <- row;
      n_edges := !n_edges + List.length row;
      filt_rows.(v) <- router_filters net name);
  let off = Array.make (max 1 (n + 1)) 0 in
  let e_to = Array.make (max 1 !n_edges) 0 in
  let e_cost = Array.make (max 1 !n_edges) 0 in
  let e_iface = Array.make (max 1 !n_edges) "" in
  let e_nh =
    Array.make (max 1 !n_edges) { Fib.nh_router = ""; nh_iface = "" }
  in
  let e_nh1 : Fib.nexthop list array = Array.make (max 1 !n_edges) [] in
  let pos = ref 0 in
  for v = 0 to n - 1 do
    off.(v) <- !pos;
    List.iter
      (fun (a : Device.adj) ->
        let e = !pos in
        incr pos;
        e_to.(e) <- Interner.find_exn it a.a_to;
        e_cost.(e) <- a.a_out_iface.ifc_cost;
        e_iface.(e) <- a.a_out_iface.ifc_name;
        e_nh.(e) <-
          { Fib.nh_router = a.a_to; nh_iface = a.a_out_iface.ifc_name };
        e_nh1.(e) <- [ e_nh.(e) ])
      rows.(v)
  done;
  off.(n) <- !pos;
  let process chunk =
    let acc = Array.make (max 1 n) [] in
    (* Seed membership per prefix, generation-stamped to avoid clearing. *)
    let seedgen = Array.make (max 1 n) (-1) in
    let gen = ref (-1) in
    List.iter
      (fun (p, seeds, dist) ->
        incr gen;
        List.iter
          (fun (r, _) ->
            match Interner.find it r with
            | Some v -> seedgen.(v) <- !gen
            | None -> ())
          seeds;
        for v = 0 to n - 1 do
          let dr = Array.unsafe_get dist v in
          if dr < max_int && seedgen.(v) <> !gen then begin
            let filters = filt_rows.(v) in
            let no_filters = filters == [] in
            (* The hit test appears twice, hand-inlined: a [hit e]
               closure here costs an allocation per (prefix, router). *)
            (* Count first: a single next hop — the common case — reuses
               the edge's preallocated singleton list. *)
            let count = ref 0 and last = ref 0 in
            for e = off.(v) to off.(v + 1) - 1 do
              let dn = Array.unsafe_get dist (Array.unsafe_get e_to e) in
              if
                dn < max_int
                && Array.unsafe_get e_cost e + dn = dr
                && (no_filters
                   || not
                        (Device.iface_filter_denies filters
                           (Array.unsafe_get e_iface e) p))
              then begin
                incr count;
                last := e
              end
            done;
            if !count > 0 then begin
              let nexthops =
                if !count = 1 then Array.unsafe_get e_nh1 !last
                else begin
                  let nhs = ref [] in
                  for e = off.(v + 1) - 1 downto off.(v) do
                    let dn = Array.unsafe_get dist (Array.unsafe_get e_to e) in
                    if
                      dn < max_int
                      && Array.unsafe_get e_cost e + dn = dr
                      && (no_filters
                         || not
                              (Device.iface_filter_denies filters
                                 (Array.unsafe_get e_iface e) p))
                    then nhs := Array.unsafe_get e_nh e :: !nhs
                  done;
                  !nhs
                end
              in
              acc.(v) <-
                {
                  Fib.rt_prefix = p;
                  rt_proto = Fib.Ospf;
                  rt_metric = dr;
                  rt_nexthops = nexthops;
                }
                :: acc.(v)
            end
          end
        done)
      chunk;
    acc
  in
  let into = Pool.effective_jobs ?pool () * 4 in
  let accs = Pool.parallel_map ?pool process (Pool.chunks ~into dists) in
  let result = Array.make (max 1 n) [] in
  List.iter
    (fun acc ->
      for v = 0 to n - 1 do
        if acc.(v) <> [] then result.(v) <- acc.(v) @ result.(v)
      done)
    accs;
  let out = ref Smap.empty in
  Interner.iter it (fun v name ->
      if result.(v) <> [] then out := Smap.add name result.(v) !out);
  !out

(* [routes_for] over every scoped router at once, from a prepared state:
   [Smap.find_opt m (select_all st net) |> Option.value ~default:[]]
   equals [routes_for st net m] for every scoped router [m]. *)
let select_all ?pool (st : state) (net : Device.network) =
  Telemetry.with_span "ospf.select_all" @@ fun () ->
  let it = scoped_interner st.st_adjs in
  let n = Interner.length it in
  let dists =
    Pool.chunked_map ?pool
      (fun (p, (seeds, dmap)) ->
        let dist = Array.make (max 1 n) max_int in
        Smap.iter
          (fun r d ->
            match Interner.find it r with
            | Some v -> dist.(v) <- d
            | None -> ())
          dmap;
        (p, seeds, dist))
      (Prefix.Map.bindings st.st_dists)
  in
  select_core ?pool it net st.st_adjs dists

let compute ?(scope = all) ?pool (net : Device.network) =
  if Fec.on () && Compiled.use_compiled () then
    (* Scratch fast path: the per-prefix distance arrays feed batched
       selection directly — the canonical per-prefix [Smap]s of a
       [state] are never materialized here (only [prepare], whose states
       the engine caches and persists to disk, pays for them). Routers
       outside the scoped OSPF graph select no routes on either path, so
       sweeping interner ids instead of [net.routers] yields the same
       map. *)
    let adjs = ospf_adjs ~scope net in
    let bindings = Prefix.Map.bindings (advertised_prefixes ~scope net) in
    let it = scoped_interner adjs in
    let rcsr = scoped_csr ~rev:true it adjs in
    let da = dist_arrays ?pool it rcsr bindings in
    select_core ?pool it net adjs da
  else
    let st = prepare ~scope ?pool net in
    Smap.fold
      (fun name _ acc ->
        if not (scope name) then acc
        else
          match routes_for st net name with
          | [] -> acc
          | routes -> Smap.add name routes acc)
      net.routers Smap.empty

(* One scope's forward-distance machinery, prepared once and reused
   across sources: the scoped adjacency map and (under the compiled
   kernels) the interner + forward CSR, whose construction dominates a
   single-source query on large networks. *)
type cost_state = {
  cs_adjs : Device.adj list Smap.t;
  cs_csr : (Interner.t * Compiled.Csr.t) option;
}

let min_cost_state ?(scope = all) (net : Device.network) =
  let adjs = ospf_adjs ~scope net in
  let cs_csr =
    if Compiled.use_compiled () then
      let it = scoped_interner adjs in
      Some (it, scoped_csr ~rev:false it adjs)
    else None
  in
  { cs_adjs = adjs; cs_csr }

let min_cost_from st u =
  (* Distance from [u] to each router v: Dijkstra on forward adjacencies. *)
  match st.cs_csr with
  | Some (it, fcsr) -> distances_csr it fcsr [ (u, 0) ]
  | None ->
      let adjs = st.cs_adjs in
      let rec loop dist pq =
        match Pqueue.pop pq with
        | None -> dist
        | Some (d, v, pq) ->
            if Smap.mem v dist then loop dist pq
            else
              let dist = Smap.add v d dist in
              let pq =
                List.fold_left
                  (fun pq (a : Device.adj) ->
                    if Smap.mem a.a_to dist then pq
                    else Pqueue.insert (d + a.a_out_iface.ifc_cost) a.a_to pq)
                  pq
                  (Option.value ~default:[] (Smap.find_opt v adjs))
              in
              loop dist pq
      in
      loop Smap.empty (Pqueue.insert 0 u Pqueue.empty)

let min_cost ?scope (net : Device.network) u =
  min_cost_from (min_cost_state ?scope net) u
