open Netcore
module Smap = Device.Smap
module Ast = Configlang.Ast

module Dmap = Map.Make (struct
  type t = [ `As of int | `Residual | `Global ]

  let compare = compare
end)

(* Structural fingerprints over the *compiled* router, so textually
   different but semantically identical configs (resolved ACLs, defaulted
   costs) hash equal. Everything in [Device.router] is immutable data, so
   Marshal is a sound structural serializer. *)
let digest v = Digest.string (Marshal.to_string v [])

(* Cache-layer hit/miss counters. Reuse counters and their recompute
   denominators come in pairs so reports can form hit rates. *)
let c_spf_reuse = Telemetry.counter "engine.spf_reuse"
let c_spf_full = Telemetry.counter "engine.spf_full"
let c_sel_patch = Telemetry.counter "engine.sel_patch"
let c_dv_recompute = Telemetry.counter "engine.dv_recompute"
let c_bgp_skip = Telemetry.counter "engine.bgp_skip"
let c_bgp_compute = Telemetry.counter "engine.bgp_compute"
let c_fib_reuse = Telemetry.counter "engine.fib_reuse"
let c_fib_build = Telemetry.counter "engine.fib_build"
let c_edits = Telemetry.counter "engine.edits"

(* Persistent-cache hits, one counter per entry kind. Each is the disk
   sibling of an in-memory recompute counter: state_disk vs a whole
   from-scratch build, spf_disk vs spf_full, dv_disk vs dv_recompute,
   bgp_disk vs bgp_compute. *)
let c_state_disk = Telemetry.counter "engine.state_disk"
let c_spf_disk = Telemetry.counter "engine.spf_disk"
let c_dv_disk = Telemetry.counter "engine.dv_disk"
let c_bgp_disk = Telemetry.counter "engine.bgp_disk"

(* ---- persistent cross-run cache ----

   Content-addressed entries in a [Netcore.Diskcache] directory. Keys are
   derived from the same structural fingerprints the in-memory reuse
   gates compare, so an entry is valid whenever the gate would have
   fired: a key collision implies input equality, which implies output
   equality (every computation keyed here is a deterministic function of
   the fingerprinted inputs). Four entry kinds, distinguished by a key
   namespace tag so their [Marshal]ed payload types can never mix:

   - ["state:"] — the whole engine state (domains, candidates, base and
     final FIBs, BGP routes) of a from-scratch build, keyed by every
     router's full fingerprint. Only written for [prev = None] builds:
     keying one entry per fixpoint iteration would balloon the store
     with megabyte-scale states that in-memory reuse already covers.
   - ["spf:"] — one IGP domain's OSPF SPF state, keyed by the domain and
     its members' spf fingerprints. Written once per full [Ospf.prepare];
     restored states are {!Ospf.rescope}d because the stored adjacencies
     embed interface fields the spf fingerprint deliberately excludes.
   - ["dv:"] — one domain's RIP/EIGRP routes, keyed by the dv
     fingerprints.
   - ["bgp:"] — the global BGP fixpoint result, keyed like ["state:"]
     (full fingerprints: BGP depends on the IGP-resolved base FIBs,
     which equal fingerprints imply).

   Bump [cache_version] whenever any marshaled type or fingerprint
   definition changes — the versioned index then invalidates the whole
   directory. *)

(* The disk store's envelope is portable ({!Netcore.Codec}), but every
   payload the engine persists is still [Marshal]ed, so the engine —
   not the store — must pin the compiler version until the payloads get
   a portable codec of their own. *)
let cache_version = "confmask-engine-2/ocaml-" ^ Sys.ocaml_version
let open_cache dir = Diskcache.open_dir ~version:cache_version dir

let disk_get : type a. Diskcache.t option -> string -> a option =
 fun cache key ->
  match cache with
  | None -> None
  | Some c -> (
      match Diskcache.find c key with
      | None -> None
      | Some s -> ( try Some (Marshal.from_string s 0 : a) with _ -> None))

let disk_put cache key v =
  match cache with
  | None -> ()
  | Some c -> Diskcache.add c ~key (Marshal.to_string v [])

let full_fp (r : Device.router) = digest r

(* What the SPF state of a domain depends on: presence of an OSPF process,
   its [network] statements, and every interface's name/address/cost.
   Distribute-lists are deliberately excluded — they only affect route
   selection, not the Dijkstras. *)
let spf_fp (r : Device.router) =
  digest
    ( Option.map (fun (o : Device.ospf_proc) -> o.op_networks) r.r_ospf,
      List.map
        (fun (i : Device.iface) -> (i.ifc_name, i.ifc_addr, i.ifc_plen, i.ifc_cost))
        r.r_ifaces )

(* What one router's OSPF route selection depends on beyond the SPF state. *)
let sel_fp (r : Device.router) =
  digest (Option.map (fun (o : Device.ospf_proc) -> o.op_filters) r.r_ospf)

(* Distance-vector protocols propagate filters, so any DV-relevant change
   at one member invalidates the whole domain. *)
let dv_fp (r : Device.router) =
  digest
    ( r.r_rip,
      r.r_eigrp,
      List.map
        (fun (i : Device.iface) ->
          (i.ifc_name, i.ifc_addr, i.ifc_plen, i.ifc_delay))
        r.r_ifaces )

type dom_cache = {
  dc_members : string list;
  dc_spf : string;  (* combined members' spf_fp *)
  dc_state : Ospf.state option;  (* None when no member runs OSPF *)
  (* member -> sel_fp, distribute-list filters, selected routes *)
  dc_sel :
    (string * (string * Ast.prefix_list) list * Fib.route list) Smap.t;
  dc_dv : string;  (* combined members' dv_fp *)
  dc_rip : Fib.route list Smap.t;
  dc_eigrp : Fib.route list Smap.t;
}

type t = {
  incremental : bool;
  pool : Pool.t option;
  cache : Diskcache.t option;
  configs : Ast.config list;
  net : Device.network;
  compiled : Compiled.t;  (* reused across topology-preserving edits *)
  fps : string Smap.t;  (* full fingerprint per router *)
  doms : dom_cache Dmap.t;
  cands : Fib.route list Smap.t;  (* per-router non-BGP candidates *)
  base : Fib.t Smap.t;
  bgp : Fib.route list Smap.t;
  fibs : Fib.t Smap.t;
  (* Routers whose final FIB changed relative to the previous engine
     state; [None] for from-scratch builds (no previous state to diff
     against — consumers must treat every router as changed). *)
  delta : string list option;
}

let snapshot t = { Simulate.net = t.net; fibs = t.fibs; compiled = t.compiled }
let configs t = t.configs
let network t = t.net
let compiled t = t.compiled
let fibs t = t.fibs
let is_incremental t = t.incremental
let cache t = t.cache
let pool t = t.pool
let delta t = t.delta

(* ---- per-domain computation with cache reuse ---- *)

let compute_domain ?pool ?cache ~prev (net : Device.network)
    (d : Simulate.igp_domain) =
  let routers =
    List.filter_map
      (fun m -> Option.map (fun r -> (m, r)) (Smap.find_opt m net.routers))
      d.dom_members
  in
  let spf = digest (List.map (fun (m, r) -> (m, spf_fp r)) routers) in
  let dv = digest (List.map (fun (m, r) -> (m, dv_fp r)) routers) in
  let prev =
    match prev with
    | Some c when c.dc_members = d.dom_members -> Some c
    | _ -> None
  in
  let has f = List.exists (fun (_, r) -> f r) routers in
  let state, sel =
    if not (has (fun r -> r.Device.r_ospf <> None)) then (None, Smap.empty)
    else
      let filters_of (r : Device.router) =
        match r.r_ospf with Some o -> o.op_filters | None -> []
      in
      let select st reuse =
        (* Recompute selection only for members whose filters changed. *)
        let pre =
          Pool.parallel_map ?pool
            (fun (m, r) ->
              let fp = sel_fp r in
              (m, r, fp, reuse st m r fp))
            routers
        in
        let misses =
          List.fold_left
            (fun n (_, _, _, o) -> if o = None then n + 1 else n)
            0 pre
        in
        if
          Fec.on ()
          && Compiled.use_compiled ()
          && 4 * misses > List.length routers
        then
          (* Most members need full selection (a cold run): one dense
             [select_all] sweep answers every miss at once, far cheaper
             than a per-router [routes_for] probe each. Scattered misses
             — the incremental-edit case — stay on the per-router path
             below; the sweep's cost is all-prefix × all-router no
             matter how few routers ask. The batch is exact —
             [Smap.find_opt m batch] with a [[]] default equals
             [routes_for st net m] for every scoped member, so the
             threshold cannot change results. *)
          let batch = Ospf.select_all ?pool st net in
          List.fold_left
            (fun acc (m, r, fp, o) ->
              let routes =
                match o with
                | Some routes -> routes
                | None -> Option.value ~default:[] (Smap.find_opt m batch)
              in
              Smap.add m (fp, filters_of r, routes) acc)
            Smap.empty pre
        else
          Pool.parallel_map ?pool
            (fun (m, r, fp, o) ->
              match o with
              | Some routes -> (m, (fp, filters_of r, routes))
              | None -> (m, (fp, filters_of r, Ospf.routes_for st net m)))
            pre
          |> List.fold_left (fun acc (m, v) -> Smap.add m v acc) Smap.empty
      in
      (* Patch one member's previous selection given the prefixes whose
         SPF distances changed; gives up (full recompute) when the
         member's filter change cannot be bounded. *)
      let reuse_with c spf_changed st m (r : Device.router) fp =
        match Smap.find_opt m c.dc_sel with
        | Some (fp', _, routes)
          when String.equal fp fp' && spf_changed = [] -> Some routes
        | Some (fp', old_filters, routes) -> (
            let filter_affected =
              if String.equal fp fp' then Some []
              else Ospf.changed_filter_prefixes old_filters (filters_of r)
            in
            match filter_affected with
            | Some affected ->
                Telemetry.incr c_sel_patch;
                Some
                  (Ospf.routes_for_update st net m ~prev:routes
                     ~affected:(spf_changed @ affected))
            | None -> None)
        | None -> None
      in
      let full () =
        let key =
          "spf:" ^ Digest.to_hex (digest (d.dom_key, d.dom_members, spf))
        in
        match (disk_get cache key : Ospf.state option) with
        | Some st ->
            Telemetry.incr c_spf_disk;
            let st = Ospf.rescope ~scope:d.dom_scope net st in
            (Some st, select st (fun _ _ _ _ -> None))
        | None ->
            Telemetry.incr c_spf_full;
            let st = Ospf.prepare ~scope:d.dom_scope ?pool net in
            disk_put cache key st;
            (Some st, select st (fun _ _ _ _ -> None))
      in
      match prev with
      | Some c when String.equal c.dc_spf spf && c.dc_state <> None ->
          Telemetry.incr c_spf_reuse;
          let st = Option.get c.dc_state in
          (Some st, select st (reuse_with c []))
      | Some c when c.dc_state <> None -> (
          (* SPF inputs changed; when no router-to-router adjacency moved
             (stub attachments only) the old distance fields survive. *)
          match
            Ospf.prepare_update ~scope:d.dom_scope ?pool
              ~prev:(Option.get c.dc_state) net
          with
          | Some (st, changed) ->
              Telemetry.incr c_spf_reuse;
              (Some st, select st (reuse_with c changed))
          | None -> full ())
      | _ -> full ()
  in
  let rip, eigrp =
    match prev with
    | Some c when String.equal c.dc_dv dv -> (c.dc_rip, c.dc_eigrp)
    | _ ->
        if not (has (fun r -> (r.Device.r_rip <> None) || r.r_eigrp <> None))
        then (Smap.empty, Smap.empty)
        else
          let key =
            "dv:" ^ Digest.to_hex (digest (d.dom_key, d.dom_members, dv))
          in
          let found :
              (Fib.route list Smap.t * Fib.route list Smap.t) option =
            disk_get cache key
          in
          (match found with
          | Some pair ->
              Telemetry.incr c_dv_disk;
              pair
          | None ->
              Telemetry.incr c_dv_recompute;
              let pair =
                ( (if has (fun r -> r.Device.r_rip <> None) then
                     Rip.compute ~scope:d.dom_scope net
                   else Smap.empty),
                  if has (fun r -> r.Device.r_eigrp <> None) then
                    Eigrp.compute ~scope:d.dom_scope net
                  else Smap.empty )
              in
              disk_put cache key pair;
              pair)
  in
  {
    dc_members = d.dom_members;
    dc_spf = spf;
    dc_state = state;
    dc_sel = sel;
    dc_dv = dv;
    dc_rip = rip;
    dc_eigrp = eigrp;
  }

(* Per-router candidates of a domain, in the ospf @ rip @ eigrp order the
   from-scratch path produces. *)
let domain_cache_candidates dc =
  List.fold_left
    (fun acc m ->
      let ospf =
        match Smap.find_opt m dc.dc_sel with Some (_, _, rs) -> rs | None -> []
      in
      let rip = Option.value ~default:[] (Smap.find_opt m dc.dc_rip) in
      let eigrp = Option.value ~default:[] (Smap.find_opt m dc.dc_eigrp) in
      match ospf @ rip @ eigrp with
      | [] -> acc
      | routes -> Smap.add m routes acc)
    Smap.empty dc.dc_members

(* The whole-state payload of a from-scratch build. [net] is recompiled
   from the configs on restore (cheap, deterministic) and [fps] is what
   the key was derived from, so neither is stored. *)
type persisted_state = {
  ps_doms : dom_cache Dmap.t;
  ps_cands : Fib.route list Smap.t;
  ps_base : Fib.t Smap.t;
  ps_bgp : Fib.route list Smap.t;
  ps_fibs : Fib.t Smap.t;
}

let state_key fps = "state:" ^ Digest.to_hex (digest (Smap.bindings fps))
let bgp_key fps = "bgp:" ^ Digest.to_hex (digest (Smap.bindings fps))

let build ?(incremental = true) ?pool ?cache ?prev configs =
  Telemetry.with_span "engine.build" @@ fun () ->
  match Device.compile configs with
  | Error m -> Error m
  | Ok net ->
      let prev = if incremental then prev else None in
      (* [incremental:false] is the pre-engine cost model used as the
         benchmark baseline; letting it hit the disk would corrupt that
         baseline, so the cache is ignored along with [prev]. *)
      let cache = if incremental then cache else None in
      (* The compiled form depends on interface-level topology only, so
         the filter edits the fixpoints issue reuse it wholesale; it is
         never persisted (cheap to rebuild, and full of closures-free but
         large hash tables the structural caches don't need). *)
      let compiled =
        Compiled.get ?prev:(Option.map (fun p -> p.compiled) prev) net
      in
      let fps = Smap.map full_fp net.routers in
      let restored =
        (* Whole-state restore is only sound (and only worth storing) for
           from-scratch builds: with a [prev] the in-memory deltas are
           cheaper than deserializing megabytes of state. *)
        match prev with
        | None -> (disk_get cache (state_key fps) : persisted_state option)
        | Some _ -> None
      in
      match restored with
      | Some ps ->
          Telemetry.incr c_state_disk;
          Ok
            {
              incremental;
              pool;
              cache;
              configs;
              net;
              compiled;
              fps;
              doms = ps.ps_doms;
              cands = ps.ps_cands;
              base = ps.ps_base;
              bgp = ps.ps_bgp;
              fibs = ps.ps_fibs;
              delta = None;
            }
      | None ->
      let unchanged =
        (* Routers whose whole config (hence statics, ACLs, everything
           entering a FIB) is identical to the previous engine state. *)
        match prev with
        | None -> fun _ -> false
        | Some p -> (
            fun name ->
              match (Smap.find_opt name fps, Smap.find_opt name p.fps) with
              | Some a, Some b -> String.equal a b
              | _ -> false)
      in
      let prev_doms = match prev with Some p -> p.doms | None -> Dmap.empty in
      let doms =
        Telemetry.with_span "engine.domains" @@ fun () ->
        Pool.parallel_map ?pool
          (fun (d : Simulate.igp_domain) ->
            ( d.dom_key,
              compute_domain ?pool ?cache
                ~prev:(Dmap.find_opt d.dom_key prev_doms)
                net d ))
          (Simulate.igp_domains net)
        |> List.fold_left (fun acc (k, v) -> Dmap.add k v acc) Dmap.empty
      in
      let igp =
        Dmap.fold
          (fun _ dc acc -> Simulate.merge_candidates acc (domain_cache_candidates dc))
          doms Smap.empty
      in
      let cands =
        Smap.mapi
          (fun name r ->
            Simulate.connected_routes r
            @ Simulate.static_routes net r
            @ Option.value ~default:[] (Smap.find_opt name igp))
          net.routers
      in
      let base =
        Smap.mapi
          (fun name c ->
            let reusable =
              match prev with
              | Some p -> (
                  match Smap.find_opt name p.cands with
                  | Some c' when c = c' -> Smap.find_opt name p.base
                  | _ -> None)
              | None -> None
            in
            match reusable with
            | Some fib ->
                Telemetry.incr c_fib_reuse;
                fib
            | None ->
                Telemetry.incr c_fib_build;
                Fib.of_candidates c)
          cands
      in
      (* A router's base FIB equals the previous engine's, physically (the
         reuse above) or structurally (the FIB representation is
         canonical, so equal candidates give equal values). Both gates
         below reduce to this one predicate — the old physical-only [==]
         test silently degraded to a recompute whenever a structurally
         identical FIB arrived through a fresh build. *)
      let base_same =
        match prev with
        | None -> fun _ _ -> false
        | Some p -> (
            fun name fib ->
              match Smap.find_opt name p.base with
              | Some f -> f == fib || f = fib
              | None -> false)
      in
      let has_bgp =
        Smap.exists (fun _ (r : Device.router) -> r.r_bgp <> None) net.routers
      in
      let bgp, fibs =
        if not has_bgp then (Smap.empty, base)
        else
          let bgp =
            (* BGP is a global fixpoint over the IGP-resolved base FIBs:
               it is redone whenever any router changed at all, and only
               skipped on a no-op edit. Equal full fingerprints already
               imply equal compiled routers, hence equal base FIBs — no
               fragile physical-identity conjunct needed. *)
            match prev with
            | Some p when Smap.equal String.equal fps p.fps ->
                Telemetry.incr c_bgp_skip;
                p.bgp
            | _ -> (
                (* Equal full fingerprints imply equal compiled routers,
                   hence equal base FIBs — the same argument that makes the
                   in-memory skip above sound makes [fps] a complete key
                   for the persisted result. *)
                match
                  (disk_get cache (bgp_key fps) : Fib.route list Smap.t option)
                with
                | Some b ->
                    Telemetry.incr c_bgp_disk;
                    b
                | None ->
                    Telemetry.incr c_bgp_compute;
                    let b =
                      Telemetry.with_span "engine.bgp" (fun () ->
                          Bgp.compute net ~igp_fibs:base)
                    in
                    disk_put cache (bgp_key fps) b;
                    b)
          in
          let fibs =
            Smap.mapi
              (fun name fib ->
                let bc = Option.value ~default:[] (Smap.find_opt name bgp) in
                let reusable =
                  match prev with
                  | Some p
                    when unchanged name && base_same name fib
                         && Option.value ~default:[] (Smap.find_opt name p.bgp)
                            = bc -> Smap.find_opt name p.fibs
                  | _ -> None
                in
                match reusable with
                | Some final ->
                    Telemetry.incr c_fib_reuse;
                    final
                | None ->
                    Telemetry.incr c_fib_build;
                    List.fold_left (fun fib c -> Fib.add_candidate c fib) fib bc)
              base
          in
          (bgp, fibs)
      in
      (match prev with
      | None ->
          disk_put cache (state_key fps)
            {
              ps_doms = doms;
              ps_cands = cands;
              ps_base = base;
              ps_bgp = bgp;
              ps_fibs = fibs;
            }
      | Some _ -> ());
      (* The FIB delta of this build. The final-FIB representation is
         canonical (a sorted route array), so structural equality is a
         sound change test whatever path produced the value; the physical
         check first makes the common reuse case O(1). *)
      let delta =
        match prev with
        | None -> None
        | Some p ->
            let changed =
              Smap.merge
                (fun name f f' ->
                  match (f, f') with
                  | Some a, Some b when a == b || a = b -> None
                  | None, None -> None
                  | _ -> Some name)
                p.fibs fibs
            in
            Some (List.map fst (Smap.bindings changed))
      in
      Ok
        {
          incremental;
          pool;
          cache;
          configs;
          net;
          compiled;
          fps;
          doms;
          cands;
          base;
          bgp;
          fibs;
          delta;
        }

let of_configs ?(incremental = true) ?pool ?cache configs =
  build ~incremental ?pool ?cache configs

(* ---- shadow self-check ---- *)

(* Process-wide edit sequence. Deliberately a plain atomic rather than a
   telemetry counter: the self-check must fire even when telemetry is
   disabled ([CONFMASK_SELFCHECK=1] alone enables it). *)
let edit_seq = Atomic.make 0

(* Compare semantically, not structurally: an incrementally patched route
   selection may list equal routes in a different order than the scratch
   path, and merged next-hop sets can arrive in different orders. *)
let canon_fib fib =
  List.map
    (fun (r : Fib.route) ->
      (r.rt_prefix, r.rt_proto, r.rt_metric, Fib.nexthop_names r))
    (Fib.routes fib)

let selfcheck_divergence t =
  match Simulate.run ?pool:t.pool t.configs with
  | Error m -> Some (Printf.sprintf "reference simulation failed: %s" m)
  | Ok reference ->
      let divergent =
        Smap.merge
          (fun name inc ref_ ->
            match (inc, ref_) with
            | Some a, Some b when canon_fib a = canon_fib b -> None
            | None, None -> None
            | _ -> Some name)
          t.fibs reference.fibs
      in
      if Smap.is_empty divergent then None
      else
        Some
          ("FIB divergence at "
          ^ String.concat ", " (List.map fst (Smap.bindings divergent)))

let apply_edit t configs =
  Telemetry.incr c_edits;
  match
    build ~incremental:t.incremental ?pool:t.pool ?cache:t.cache ~prev:t configs
  with
  | Error _ as e -> e
  | Ok t' as ok ->
      let period = Telemetry.selfcheck_period () in
      let seq = if period > 0 then Atomic.fetch_and_add edit_seq 1 + 1 else 0 in
      if period > 0 && seq mod period = 0 then
        Telemetry.with_span "engine.selfcheck" (fun () ->
            match selfcheck_divergence t' with
            | None -> ()
            | Some msg ->
                failwith
                  (Printf.sprintf
                     "Engine.apply_edit self-check failed at edit %d: \
                      incremental result diverges from Simulate.run — %s"
                     seq msg));
      ok

let of_configs_exn ?incremental ?pool ?cache configs =
  match of_configs ?incremental ?pool ?cache configs with
  | Ok t -> t
  | Error m -> failwith m

let apply_edit_exn t configs =
  match apply_edit t configs with Ok t -> t | Error m -> failwith m
