open Netcore
module Smap = Device.Smap
module Ast = Configlang.Ast

module Dmap = Map.Make (struct
  type t = [ `As of int | `Residual | `Global ]

  let compare = compare
end)

(* Structural fingerprints over the *compiled* router, so textually
   different but semantically identical configs (resolved ACLs, defaulted
   costs) hash equal. Everything in [Device.router] is immutable data, so
   Marshal is a sound structural serializer. *)
let digest v = Digest.string (Marshal.to_string v [])

let full_fp (r : Device.router) = digest r

(* What the SPF state of a domain depends on: presence of an OSPF process,
   its [network] statements, and every interface's name/address/cost.
   Distribute-lists are deliberately excluded — they only affect route
   selection, not the Dijkstras. *)
let spf_fp (r : Device.router) =
  digest
    ( Option.map (fun (o : Device.ospf_proc) -> o.op_networks) r.r_ospf,
      List.map
        (fun (i : Device.iface) -> (i.ifc_name, i.ifc_addr, i.ifc_plen, i.ifc_cost))
        r.r_ifaces )

(* What one router's OSPF route selection depends on beyond the SPF state. *)
let sel_fp (r : Device.router) =
  digest (Option.map (fun (o : Device.ospf_proc) -> o.op_filters) r.r_ospf)

(* Distance-vector protocols propagate filters, so any DV-relevant change
   at one member invalidates the whole domain. *)
let dv_fp (r : Device.router) =
  digest
    ( r.r_rip,
      r.r_eigrp,
      List.map
        (fun (i : Device.iface) ->
          (i.ifc_name, i.ifc_addr, i.ifc_plen, i.ifc_delay))
        r.r_ifaces )

type dom_cache = {
  dc_members : string list;
  dc_spf : string;  (* combined members' spf_fp *)
  dc_state : Ospf.state option;  (* None when no member runs OSPF *)
  (* member -> sel_fp, distribute-list filters, selected routes *)
  dc_sel :
    (string * (string * Ast.prefix_list) list * Fib.route list) Smap.t;
  dc_dv : string;  (* combined members' dv_fp *)
  dc_rip : Fib.route list Smap.t;
  dc_eigrp : Fib.route list Smap.t;
}

type t = {
  incremental : bool;
  pool : Pool.t option;
  configs : Ast.config list;
  net : Device.network;
  fps : string Smap.t;  (* full fingerprint per router *)
  doms : dom_cache Dmap.t;
  cands : Fib.route list Smap.t;  (* per-router non-BGP candidates *)
  base : Fib.t Smap.t;
  bgp : Fib.route list Smap.t;
  fibs : Fib.t Smap.t;
}

let snapshot t = { Simulate.net = t.net; fibs = t.fibs }
let configs t = t.configs
let network t = t.net
let fibs t = t.fibs
let is_incremental t = t.incremental

(* ---- per-domain computation with cache reuse ---- *)

let compute_domain ?pool ~prev (net : Device.network)
    (d : Simulate.igp_domain) =
  let routers =
    List.filter_map
      (fun m -> Option.map (fun r -> (m, r)) (Smap.find_opt m net.routers))
      d.dom_members
  in
  let spf = digest (List.map (fun (m, r) -> (m, spf_fp r)) routers) in
  let dv = digest (List.map (fun (m, r) -> (m, dv_fp r)) routers) in
  let prev =
    match prev with
    | Some c when c.dc_members = d.dom_members -> Some c
    | _ -> None
  in
  let has f = List.exists (fun (_, r) -> f r) routers in
  let state, sel =
    if not (has (fun r -> r.Device.r_ospf <> None)) then (None, Smap.empty)
    else
      let filters_of (r : Device.router) =
        match r.r_ospf with Some o -> o.op_filters | None -> []
      in
      let select st reuse =
        (* Recompute selection only for members whose filters changed. *)
        Pool.parallel_map ?pool
          (fun (m, r) ->
            let fp = sel_fp r in
            match reuse st m r fp with
            | Some routes -> (m, (fp, filters_of r, routes))
            | None -> (m, (fp, filters_of r, Ospf.routes_for st net m)))
          routers
        |> List.fold_left (fun acc (m, v) -> Smap.add m v acc) Smap.empty
      in
      (* Patch one member's previous selection given the prefixes whose
         SPF distances changed; gives up (full recompute) when the
         member's filter change cannot be bounded. *)
      let reuse_with c spf_changed st m (r : Device.router) fp =
        match Smap.find_opt m c.dc_sel with
        | Some (fp', _, routes)
          when String.equal fp fp' && spf_changed = [] -> Some routes
        | Some (fp', old_filters, routes) -> (
            let filter_affected =
              if String.equal fp fp' then Some []
              else Ospf.changed_filter_prefixes old_filters (filters_of r)
            in
            match filter_affected with
            | Some affected ->
                Some
                  (Ospf.routes_for_update st net m ~prev:routes
                     ~affected:(spf_changed @ affected))
            | None -> None)
        | None -> None
      in
      let full () =
        let st = Ospf.prepare ~scope:d.dom_scope ?pool net in
        (Some st, select st (fun _ _ _ _ -> None))
      in
      match prev with
      | Some c when String.equal c.dc_spf spf && c.dc_state <> None ->
          let st = Option.get c.dc_state in
          (Some st, select st (reuse_with c []))
      | Some c when c.dc_state <> None -> (
          (* SPF inputs changed; when no router-to-router adjacency moved
             (stub attachments only) the old distance fields survive. *)
          match
            Ospf.prepare_update ~scope:d.dom_scope ?pool
              ~prev:(Option.get c.dc_state) net
          with
          | Some (st, changed) -> (Some st, select st (reuse_with c changed))
          | None -> full ())
      | _ -> full ()
  in
  let rip, eigrp =
    match prev with
    | Some c when String.equal c.dc_dv dv -> (c.dc_rip, c.dc_eigrp)
    | _ ->
        ( (if has (fun r -> r.Device.r_rip <> None) then
             Rip.compute ~scope:d.dom_scope net
           else Smap.empty),
          if has (fun r -> r.Device.r_eigrp <> None) then
            Eigrp.compute ~scope:d.dom_scope net
          else Smap.empty )
  in
  {
    dc_members = d.dom_members;
    dc_spf = spf;
    dc_state = state;
    dc_sel = sel;
    dc_dv = dv;
    dc_rip = rip;
    dc_eigrp = eigrp;
  }

(* Per-router candidates of a domain, in the ospf @ rip @ eigrp order the
   from-scratch path produces. *)
let domain_cache_candidates dc =
  List.fold_left
    (fun acc m ->
      let ospf =
        match Smap.find_opt m dc.dc_sel with Some (_, _, rs) -> rs | None -> []
      in
      let rip = Option.value ~default:[] (Smap.find_opt m dc.dc_rip) in
      let eigrp = Option.value ~default:[] (Smap.find_opt m dc.dc_eigrp) in
      match ospf @ rip @ eigrp with
      | [] -> acc
      | routes -> Smap.add m routes acc)
    Smap.empty dc.dc_members

let build ?(incremental = true) ?pool ?prev configs =
  match Device.compile configs with
  | Error m -> Error m
  | Ok net ->
      let prev = if incremental then prev else None in
      let fps = Smap.map full_fp net.routers in
      let unchanged =
        (* Routers whose whole config (hence statics, ACLs, everything
           entering a FIB) is identical to the previous engine state. *)
        match prev with
        | None -> fun _ -> false
        | Some p -> (
            fun name ->
              match (Smap.find_opt name fps, Smap.find_opt name p.fps) with
              | Some a, Some b -> String.equal a b
              | _ -> false)
      in
      let prev_doms = match prev with Some p -> p.doms | None -> Dmap.empty in
      let doms =
        Pool.parallel_map ?pool
          (fun (d : Simulate.igp_domain) ->
            ( d.dom_key,
              compute_domain ?pool ~prev:(Dmap.find_opt d.dom_key prev_doms) net
                d ))
          (Simulate.igp_domains net)
        |> List.fold_left (fun acc (k, v) -> Dmap.add k v acc) Dmap.empty
      in
      let igp =
        Dmap.fold
          (fun _ dc acc -> Simulate.merge_candidates acc (domain_cache_candidates dc))
          doms Smap.empty
      in
      let cands =
        Smap.mapi
          (fun name r ->
            Simulate.connected_routes r
            @ Simulate.static_routes net r
            @ Option.value ~default:[] (Smap.find_opt name igp))
          net.routers
      in
      let base =
        Smap.mapi
          (fun name c ->
            let reusable =
              match prev with
              | Some p -> (
                  match Smap.find_opt name p.cands with
                  | Some c' when c = c' -> Smap.find_opt name p.base
                  | _ -> None)
              | None -> None
            in
            match reusable with
            | Some fib -> fib
            | None ->
                List.fold_left (fun fib r -> Fib.add_candidate r fib) Fib.empty c)
          cands
      in
      let has_bgp =
        Smap.exists (fun _ (r : Device.router) -> r.r_bgp <> None) net.routers
      in
      let bgp, fibs =
        if not has_bgp then (Smap.empty, base)
        else
          let bgp =
            (* BGP is a global fixpoint over the IGP-resolved base FIBs:
               it is redone whenever any router changed at all, and only
               skipped on a no-op edit. *)
            match prev with
            | Some p
              when Smap.equal String.equal fps p.fps
                   && Smap.for_all
                        (fun name fib ->
                          match Smap.find_opt name p.base with
                          | Some f -> f == fib
                          | None -> false)
                        base -> p.bgp
            | _ -> Bgp.compute net ~igp_fibs:base
          in
          let fibs =
            Smap.mapi
              (fun name fib ->
                let bc = Option.value ~default:[] (Smap.find_opt name bgp) in
                let base_reused =
                  match prev with
                  | Some p -> (
                      match Smap.find_opt name p.base with
                      | Some f -> f == fib
                      | None -> false)
                  | None -> false
                in
                let reusable =
                  match prev with
                  | Some p
                    when unchanged name && base_reused
                         && Option.value ~default:[] (Smap.find_opt name p.bgp)
                            = bc -> Smap.find_opt name p.fibs
                  | _ -> None
                in
                match reusable with
                | Some final -> final
                | None ->
                    List.fold_left (fun fib c -> Fib.add_candidate c fib) fib bc)
              base
          in
          (bgp, fibs)
      in
      Ok { incremental; pool; configs; net; fps; doms; cands; base; bgp; fibs }

let of_configs ?(incremental = true) ?pool configs =
  build ~incremental ?pool configs

let apply_edit t configs =
  build ~incremental:t.incremental ?pool:t.pool ~prev:t configs

let of_configs_exn ?incremental ?pool configs =
  match of_configs ?incremental ?pool configs with
  | Ok t -> t
  | Error m -> failwith m

let apply_edit_exn t configs =
  match apply_edit t configs with Ok t -> t | Error m -> failwith m
