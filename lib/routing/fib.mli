(** Forwarding information base.

    One FIB per router, mapping destination prefixes to next-hop sets.
    Routes from different protocols compete by administrative distance,
    then by metric; equal-cost routes of the winning protocol merge their
    next hops (ECMP). *)

open Netcore

type proto = Connected | Static | Ospf | Rip | Eigrp | Ebgp | Ibgp

val admin_distance : proto -> int
(** Cisco defaults: connected 0, static 1, eBGP 20, EIGRP 90, OSPF 110, RIP 120, iBGP 200. *)

val proto_to_string : proto -> string

type nexthop = {
  nh_router : string;  (** adjacent router the packet is forwarded to *)
  nh_iface : string;  (** outgoing interface name on this router *)
}

type route = {
  rt_prefix : Prefix.t;
  rt_proto : proto;
  rt_metric : int;
  rt_nexthops : nexthop list;
      (** empty for connected routes: deliver locally *)
}

type t

val empty : t

val add_candidate : route -> t -> t
(** Inserts a candidate route, resolving conflicts for the same prefix by
    administrative distance and metric; exact ties merge next hops. *)

val find : t -> Prefix.t -> route option
(** Exact-prefix lookup. *)

val lookup : t -> Ipv4.t -> route option
(** Longest-prefix-match lookup by direct probing: one map probe per
    prefix length, 33 in the worst case. *)

type lpm
(** A FIB compiled into a path-compressed binary trie: one root-to-leaf
    walk per lookup. Purely an acceleration structure — [t] itself is
    unchanged (it is marshaled and compared structurally elsewhere). *)

val compile : t -> lpm

val lookup_lpm : lpm -> Ipv4.t -> route option
(** Same result as {!lookup} on the FIB the trie was compiled from. *)

val routes : t -> route list
(** All routes, sorted by prefix. *)

val nexthop_names : route -> string list
(** Sorted, deduplicated next-hop router names. *)

val pp : Format.formatter -> t -> unit
