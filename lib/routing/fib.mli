(** Forwarding information base.

    One FIB per router, mapping destination prefixes to next-hop sets.
    Routes from different protocols compete by administrative distance,
    then by metric; equal-cost routes of the winning protocol merge their
    next hops (ECMP). *)

open Netcore

type proto = Connected | Static | Ospf | Rip | Eigrp | Ebgp | Ibgp

val admin_distance : proto -> int
(** Cisco defaults: connected 0, static 1, eBGP 20, EIGRP 90, OSPF 110, RIP 120, iBGP 200. *)

val proto_to_string : proto -> string

type nexthop = {
  nh_router : string;  (** adjacent router the packet is forwarded to *)
  nh_iface : string;  (** outgoing interface name on this router *)
}

type route = {
  rt_prefix : Prefix.t;
  rt_proto : proto;
  rt_metric : int;
  rt_nexthops : nexthop list;
      (** empty for connected routes: deliver locally *)
}

type t
(** A FIB, represented canonically: two FIBs holding the same routes are
    structurally equal (and hash, marshal and compare identically) no
    matter what sequence of operations built them. *)

val empty : t

val add_candidate : route -> t -> t
(** Inserts a candidate route, resolving conflicts for the same prefix by
    administrative distance and metric; exact ties merge next hops.
    Persistent: the argument FIB is unchanged. *)

val of_candidates : route list -> t
(** Bulk construction:
    [of_candidates cs = List.fold_left (fun t r -> add_candidate r t) empty cs],
    in one sort-and-merge pass instead of a persistent insert per
    candidate. *)

val add_sorted_desc : t -> route list -> t
(** [add_sorted_desc t cs] equals
    [List.fold_left (fun t r -> add_candidate r t) t cs] for any [cs].
    When [cs] is strictly descending by prefix — the order batched OSPF
    selection emits per router — it runs as one linear merge; any other
    order falls back to the fold. *)

val find : t -> Prefix.t -> route option
(** Exact-prefix lookup. *)

type probe
(** A point-lookup accelerator over one FIB: prefixes condensed to int
    keys so searches compare unboxed ints. Like {!lpm}, purely an
    acceleration structure — the FIB itself is unchanged. *)

val probe : t -> probe

val probe_find : probe -> Prefix.t -> route option
(** Same result as {!find} on the probed FIB. *)

val probe_lens : probe -> int list
(** The distinct prefix lengths present, most specific first — the only
    lengths a longest-prefix-match sweep needs to try. *)

val lookup : t -> Ipv4.t -> route option
(** Longest-prefix-match lookup by direct probing: one map probe per
    prefix length, 33 in the worst case. *)

type lpm
(** A FIB compiled into a path-compressed binary trie: one root-to-leaf
    walk per lookup. Purely an acceleration structure — [t] itself is
    unchanged (it is marshaled and compared structurally elsewhere). *)

val compile : t -> lpm

val lookup_lpm : lpm -> Ipv4.t -> route option
(** Same result as {!lookup} on the FIB the trie was compiled from. *)

val routes : t -> route list
(** All routes, sorted by prefix. *)

val nexthop_names : route -> string list
(** Sorted, deduplicated next-hop router names. *)

val pp : Format.formatter -> t -> unit
