open Netcore
module Smap = Device.Smap

let c_build = Telemetry.counter "compiled.build"
let c_reuse = Telemetry.counter "compiled.reuse"

module Csr = struct
  type t = { n : int; off : int array; head : int array; cost : int array }

  let of_edges ~n edges =
    let off = Array.make (n + 1) 0 in
    let m =
      List.fold_left
        (fun m (u, _, _) ->
          off.(u + 1) <- off.(u + 1) + 1;
          m + 1)
        0 edges
    in
    for v = 1 to n do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    let head = Array.make m 0 and cost = Array.make m 0 in
    (* Fill each row at its running cursor so input order is preserved. *)
    let cursor = Array.copy off in
    List.iter
      (fun (u, v, c) ->
        let e = cursor.(u) in
        cursor.(u) <- e + 1;
        head.(e) <- v;
        cost.(e) <- c)
      edges;
    { n; off; head; cost }

  let dijkstra t ~seeds =
    let dist = Array.make t.n max_int in
    let heap = Heap.create ~capacity:(t.n + 1) () in
    List.iter
      (fun (v, c) ->
        if v >= 0 && v < t.n && c < dist.(v) then begin
          dist.(v) <- c;
          Heap.push heap ~prio:c v
        end)
      seeds;
    let rec drain () =
      match Heap.pop heap with
      | None -> ()
      | Some (d, v) ->
          (* Stale queue entries (superseded by a shorter path) have
             [d > dist.(v)] and are skipped — lazy decrease-key. *)
          if d = dist.(v) then
            for e = t.off.(v) to t.off.(v + 1) - 1 do
              let u = t.head.(e) in
              let nd = d + t.cost.(e) in
              if nd < dist.(u) then begin
                dist.(u) <- nd;
                Heap.push heap ~prio:nd u
              end
            done;
          drain ()
    in
    drain ();
    dist
end

type t = {
  names : Interner.t;
  graph : Csr.t;
  ifaces : (string * string, Device.iface) Hashtbl.t;
  arrivals : (string * string * string, Device.iface) Hashtbl.t;
  topo_sig : string;
}

let routers t = t.names
let csr t = t.graph
let find_iface t router name = Hashtbl.find_opt t.ifaces (router, name)

let arrival_iface t router out_name nh =
  Hashtbl.find_opt t.arrivals (router, out_name, nh)

(* Everything compiled here is a function of the routers' interface
   records alone: the interner and tables read them directly, and
   [Device.compile] derives the adjacency lists from interface subnets.
   Marshal is a sound structural serializer for the same reason it is in
   [Engine]: compiled routers are immutable data. *)
let signature (net : Device.network) =
  Digest.string
    (Marshal.to_string
       (Smap.fold
          (fun name (r : Device.router) acc -> (name, r.r_ifaces) :: acc)
          net.routers [])
       [])

(* First-wins insertion: the tables must return what the first match of
   the legacy [List.find_opt] scans returned, and [Hashtbl.find] returns
   the most recently added binding. *)
let add_if_absent tbl key v =
  if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v

let build_with net topo_sig =
  let names = Interner.create ~capacity:(Smap.cardinal net.Device.routers) () in
  Smap.iter (fun name _ -> ignore (Interner.intern names name)) net.routers;
  let ifaces = Hashtbl.create 256 in
  Smap.iter
    (fun name (r : Device.router) ->
      List.iter
        (fun (i : Device.iface) -> add_if_absent ifaces (name, i.ifc_name) i)
        r.r_ifaces)
    net.routers;
  let arrivals = Hashtbl.create 256 in
  let edges =
    Smap.fold
      (fun name adjs acc ->
        let u = Interner.find_exn names name in
        List.fold_left
          (fun acc (a : Device.adj) ->
            add_if_absent arrivals
              (name, a.a_out_iface.ifc_name, a.a_to)
              a.a_in_iface;
            (u, Interner.find_exn names a.a_to, a.a_out_iface.ifc_cost) :: acc)
          acc adjs)
      net.adjs []
    (* Undo the cons order so each CSR row lists its edges in
       adjacency-list order. *)
    |> List.rev
  in
  let graph = Csr.of_edges ~n:(Interner.length names) edges in
  { names; graph; ifaces; arrivals; topo_sig }

let build net =
  Telemetry.incr c_build;
  build_with net (signature net)

let get ?prev net =
  let s = signature net in
  match prev with
  | Some c when String.equal c.topo_sig s ->
      Telemetry.incr c_reuse;
      c
  | _ ->
      Telemetry.incr c_build;
      build_with net s

let compiled_kernels =
  (* CONFMASK_KERNELS=legacy forces the map-based kernels process-wide —
     the lever for bit-identical output comparisons from the CLI. *)
  Atomic.make (Sys.getenv_opt "CONFMASK_KERNELS" <> Some "legacy")

let use_compiled () = Atomic.get compiled_kernels
let set_use_compiled b = Atomic.set compiled_kernels b

let with_kernels k f =
  let saved = Atomic.get compiled_kernels in
  Atomic.set compiled_kernels (k = `Compiled);
  Fun.protect ~finally:(fun () -> Atomic.set compiled_kernels saved) f
