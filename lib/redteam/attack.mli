(** Common interface for de-anonymization attacks.

    A red-team attack is handed a [target] — the adversary's view (the
    anonymized snapshot and configurations) plus whatever ground truth
    the harness knows for scoring — and returns a standard [score].
    Ground-truth fields are options: when the harness pairs an original
    network with its anonymized output (batch cells, the CLI on
    un-renamed directories) they are populated and scores are grounded;
    when they are unknown the attack still runs but its hit count stays
    0 and it reports [("grounded", 0.)] in [detail]. *)

type target = {
  orig_snapshot : Routing.Simulate.snapshot;
  orig_configs : Configlang.Ast.config list;
  anon_snapshot : Routing.Simulate.snapshot;
  anon_configs : Configlang.Ast.config list;
  fake_edges : (string * string) list option;
      (** injected router-router edges, when known *)
  correspondence : (string * string) list option;
      (** (original, anonymized) device-name pairs, when known; [Some []]
          means names are shared unchanged (identity) *)
  planted_key : Pii.Pan.key option;
      (** the PII scrub key, when the harness planted it *)
  key_range : int;  (** seed-space bound for key brute-force *)
}

val default_key_range : int
(** 2^16 — covers every legacy small-int key used by tests and seeds. *)

type score = {
  attack : string;
  claims : int;  (** identifications the adversary commits to *)
  hits : int;  (** claims confirmed against ground truth *)
  relevant : int;  (** ground-truth items there were to find *)
  precision : float;  (** 1.0 when nothing is claimed *)
  recall : float;  (** 1.0 when there was nothing to find *)
  detail : (string * float) list;
      (** attack-specific extras (e.g. [top5_rate]), name-sorted *)
}

type t = { name : string; doc : string; run : target -> score }

val score :
  attack:string ->
  claims:int ->
  hits:int ->
  relevant:int ->
  ?detail:(string * float) list ->
  unit ->
  score
(** Fills in precision/recall with the empty-list conventions above. *)

val canonical_edge : string * string -> string * string
(** Undirected edge with endpoints sorted. *)

val edge_hits :
  truth:(string * string) list -> claimed:(string * string) list -> int
(** Size of the intersection after canonicalizing and dedup-sorting both
    sides; linear merge, not quadratic [List.mem]. *)
