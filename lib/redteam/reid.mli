(** Degree-sequence re-identification against k-degree anonymity.

    The adversary knows the original topology (or part of it) and tries
    to match anonymized routers back to originals by structural
    signature: own degree plus the sorted degrees of the neighborhood.
    k-degree anonymity (Graphanon.Degree_anon) guarantees at least k
    routers share each degree, but neighborhood profiles can still
    single a router out — this attack measures how often. [recall] is
    the top-1 re-identification rate over routers with known ground
    truth; [detail] carries [top5_rate]. *)

open Netcore

val signature : Graph.t -> string -> int * int list
(** (degree, neighbor degrees sorted descending). *)

val distance : int * int list -> int * int list -> int
(** Weighted L1 distance between signatures; own-degree differences are
    weighted 8x. *)

val attack : Attack.t
