let all =
  [
    Reid.attack;
    Links.filter_pattern;
    Links.no_traffic;
    Addrs.prefix_structure;
    Addrs.key_bruteforce;
  ]

let find name =
  List.find_opt (fun (a : Attack.t) -> String.equal a.Attack.name name) all

let names = List.map (fun (a : Attack.t) -> a.Attack.name) all

let run_all ?attacks target =
  let selected =
    match attacks with
    | None -> all
    | Some wanted ->
        List.filter
          (fun (a : Attack.t) -> List.mem a.Attack.name wanted)
          all
  in
  List.map (fun (a : Attack.t) -> a.Attack.run target) selected
