(** Link-level attacks: identify injected (fake) router-router links in
    the shared network.

    [no_traffic_links] is the §3.2 strawman tell — links that carry no
    delivered forwarding path. [filter_links] generalizes the uniform
    deny-set fingerprint of Strawman 1 (Listing 3) with the pattern
    thresholds exposed instead of hardcoded. *)

val no_traffic_links : Routing.Simulate.snapshot -> (string * string) list
(** Router links no delivered host-to-host path crosses. Canonical,
    sorted, deduplicated. *)

val filter_links :
  ?min_prefixes:int ->
  ?min_routers:int ->
  Routing.Simulate.snapshot ->
  Configlang.Ast.config list ->
  (string * string) list
(** Links whose attachment-point deny set (IGP distribute-list or BGP
    neighbor filter) has at least [min_prefixes] prefixes (default 3) and
    occurs verbatim on at least [min_routers] distinct routers (default
    2, i.e. recurs beyond its owner). *)

val no_traffic : Attack.t
val filter_pattern : Attack.t
