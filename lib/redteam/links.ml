open Netcore
module Ast = Configlang.Ast
module Smap = Routing.Device.Smap

let canonical = Attack.canonical_edge

let no_traffic_links (snap : Routing.Simulate.snapshot) =
  let dp = Routing.Simulate.dataplane snap in
  let used = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (t : Routing.Dataplane.trace) ->
      List.iter
        (fun path ->
          let rec edges = function
            | u :: (v :: _ as rest) ->
                Hashtbl.replace used (canonical (u, v)) ();
                edges rest
            | _ -> ()
          in
          edges path)
        t.delivered)
    dp;
  let g = Routing.Device.router_graph snap.net in
  List.filter (fun e -> not (Hashtbl.mem used e)) (Graph.edges g)

(* Deny sets per attachment point, as printable prefix strings so sets can
   be compared across routers. *)
let deny_sets (c : Ast.config) =
  let set_of name =
    match Ast.find_prefix_list c name with
    | None -> []
    | Some pl ->
        List.filter_map
          (fun (r : Ast.prefix_rule) ->
            if r.action = Ast.Deny then Some (Prefix.to_string r.rule_prefix)
            else None)
          pl.pl_rules
        |> List.sort String.compare
  in
  let igp =
    (match c.ospf with Some o -> o.ospf_distribute_in | None -> [])
    @ (match c.rip with Some r -> r.rip_distribute_in | None -> [])
  in
  List.map (fun (d : Ast.distribute) -> (`Iface d.dl_iface, set_of d.dl_list)) igp
  @
  match c.bgp with
  | None -> []
  | Some b ->
      List.filter_map
        (fun (n : Ast.neighbor) ->
          Option.map
            (fun name -> (`Neighbor n.nb_addr, set_of name))
            n.nb_distribute_in)
        b.bgp_neighbors

(* Resolve an attachment point back to the router-router link it guards. *)
let link_of_attachment (snap : Routing.Simulate.snapshot) router = function
  | `Iface iface_name -> (
      match Smap.find_opt router snap.net.adjs with
      | None -> None
      | Some adjs ->
          List.find_opt
            (fun (a : Routing.Device.adj) ->
              String.equal a.a_out_iface.ifc_name iface_name)
            adjs
          |> Option.map (fun (a : Routing.Device.adj) -> canonical (router, a.a_to)))
  | `Neighbor addr ->
      Option.map
        (fun owner -> canonical (router, owner))
        (Routing.Device.owner_of_addr snap.net addr)

let filter_links ?(min_prefixes = 3) ?(min_routers = 2)
    (snap : Routing.Simulate.snapshot) configs =
  let attachments =
    List.concat_map
      (fun (c : Ast.config) ->
        List.filter_map
          (fun (attach, set) ->
            if List.length set >= min_prefixes then
              Option.map
                (fun link -> (c.Ast.hostname, link, set))
                (link_of_attachment snap c.Ast.hostname attach)
            else None)
          (deny_sets c))
      configs
  in
  (* A deny set shared verbatim by attachments on >= min_routers distinct
     routers is the uniform pattern (Listing 3's Strawman 1 tell). *)
  List.filter_map
    (fun (_router, link, set) ->
      let holders =
        List.sort_uniq String.compare
          (List.filter_map
             (fun (router', _, set') ->
               if set' = set then Some router' else None)
             attachments)
      in
      if List.length holders >= min_routers then Some link else None)
    attachments
  |> List.sort_uniq compare

let score_links ~attack ~flagged (t : Attack.target) =
  match t.Attack.fake_edges with
  | Some truth ->
      let hits = Attack.edge_hits ~truth ~claimed:flagged in
      let relevant =
        List.length (List.sort_uniq compare (List.map canonical truth))
      in
      Attack.score ~attack ~claims:(List.length flagged) ~hits ~relevant
        ~detail:[ ("grounded", 1.0) ]
        ()
  | None ->
      Attack.score ~attack ~claims:(List.length flagged) ~hits:0 ~relevant:0
        ~detail:[ ("grounded", 0.0) ]
        ()

let filter_pattern =
  {
    Attack.name = "filter_pattern";
    doc =
      "flag links whose attachment-point deny set recurs verbatim across \
       routers (uniform-filter fingerprint)";
    run =
      (fun t ->
        let flagged =
          filter_links t.Attack.anon_snapshot t.Attack.anon_configs
        in
        score_links ~attack:"filter_pattern" ~flagged t);
  }

let no_traffic =
  {
    Attack.name = "no_traffic";
    doc =
      "simulate the shared network and flag router links no delivered \
       host-to-host path crosses";
    run =
      (fun t ->
        let flagged = no_traffic_links t.Attack.anon_snapshot in
        score_links ~attack:"no_traffic" ~flagged t);
  }
