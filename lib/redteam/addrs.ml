open Netcore
module Ast = Configlang.Ast

(* The device-owned addresses of a configuration set, as raw ints,
   sorted and deduplicated. Interface addresses are the symmetric choice:
   every device contributes them on both sides of the anonymization. *)
let addresses configs =
  List.concat_map
    (fun (c : Ast.config) ->
      List.filter_map
        (fun (i : Ast.interface) ->
          Option.map (fun (a, _len) -> Ipv4.to_int a) i.if_address)
        c.Ast.interfaces)
    configs
  |> List.sort_uniq compare

(* Length of the shared leading prefix of two 32-bit values. *)
let common_prefix_len a b =
  let x = a lxor b in
  if x = 0 then 32
  else
    let rec scan i = if x lsr (31 - i) <> 0 then i else scan (i + 1) in
    scan 0

(* The multiset of adjacent common-prefix lengths of the sorted address
   set equals the multiset of branch depths of its binary trie — and a
   prefix-preserving bijection maps the trie to an isomorphic one, so
   Crypto-PAn carries this fingerprint over exactly. *)
let branch_depths addrs =
  let h = Array.make 33 0 in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        let d = common_prefix_len a b in
        h.(d) <- h.(d) + 1;
        walk rest
    | _ -> ()
  in
  walk addrs;
  h

let prefix_structure =
  {
    Attack.name = "prefix_structure";
    doc =
      "rebuild the shared-prefix tree of anonymized addresses and score \
       how much of the original subnet hierarchy survives (Crypto-PAn \
       preserves it by design)";
    run =
      (fun t ->
        let orig = addresses t.Attack.orig_configs in
        let anon = addresses t.Attack.anon_configs in
        let ho = branch_depths orig and ha = branch_depths anon in
        let hits = ref 0 and claims = ref 0 and relevant = ref 0 in
        for d = 0 to 32 do
          hits := !hits + min ho.(d) ha.(d);
          claims := !claims + ha.(d);
          relevant := !relevant + ho.(d)
        done;
        Attack.score ~attack:"prefix_structure" ~claims:!claims ~hits:!hits
          ~relevant:!relevant
          ~detail:[ ("grounded", 1.0) ]
          ());
  }

(* Replay Pan.addr over the legacy small-int seed space and accept a seed
   whose induced map sends every original address into the anonymized
   set. One probe address gates the full check, so the scan costs one
   Pan.addr per seed plus |orig| for the rare survivors. *)
let bruteforce ~key_range ~orig ~anon_tbl =
  match orig with
  | [] -> None
  | probe :: _ ->
      let consistent key =
        List.for_all
          (fun a ->
            Hashtbl.mem anon_tbl
              (Ipv4.to_int (Pii.Pan.addr key (Ipv4.of_int a))))
          orig
      in
      let rec scan k =
        if k >= key_range then None
        else
          let key = Pii.Pan.key_of_int k in
          if
            Hashtbl.mem anon_tbl
              (Ipv4.to_int (Pii.Pan.addr key (Ipv4.of_int probe)))
            && consistent key
          then Some (k, key)
          else scan (k + 1)
      in
      scan 0

let key_bruteforce =
  {
    Attack.name = "key_bruteforce";
    doc =
      "recover a small-int PII key by replaying Pan.addr over the seed \
       range and checking every original address maps into the shared set";
    run =
      (fun t ->
        let orig = addresses t.Attack.orig_configs in
        let anon = addresses t.Attack.anon_configs in
        let anon_tbl = Hashtbl.create (List.length anon * 2 + 1) in
        List.iter (fun a -> Hashtbl.replace anon_tbl a ()) anon;
        let identity =
          orig <> [] && List.for_all (fun a -> Hashtbl.mem anon_tbl a) orig
        in
        if orig = [] || identity then
          (* No PII map in play (addresses shared verbatim, or nothing to
             probe): the attack has nothing to claim and nothing to find. *)
          Attack.score ~attack:"key_bruteforce" ~claims:0 ~hits:0 ~relevant:0
            ~detail:[ ("identity", (if identity then 1.0 else 0.0)) ]
            ()
        else
          match bruteforce ~key_range:t.Attack.key_range ~orig ~anon_tbl with
          | Some (seed, key) ->
              let hit =
                match t.Attack.planted_key with
                | Some planted -> Pii.Pan.key_equal planted key
                | None -> true (* full-set consistency is the evidence *)
              in
              Attack.score ~attack:"key_bruteforce" ~claims:1
                ~hits:(if hit then 1 else 0)
                ~relevant:1
                ~detail:
                  [ ("identity", 0.0); ("recovered_seed", float_of_int seed) ]
                ()
          | None ->
              Attack.score ~attack:"key_bruteforce" ~claims:0 ~hits:0
                ~relevant:1
                ~detail:[ ("identity", 0.0) ]
                ());
  }
