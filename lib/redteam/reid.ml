open Netcore

(* Structural signature: own degree plus the sorted-descending degrees of
   the neighborhood. Degree anonymization equalizes the degree sequence
   (k routers per degree class), but the neighborhood profile often stays
   distinctive enough to separate members of a class. *)
let signature g r =
  let nbrs = Graph.Sset.elements (Graph.neighbors r g) in
  let nd =
    List.sort
      (fun a b -> compare b a)
      (List.map (fun n -> Graph.degree n g) nbrs)
  in
  (Graph.degree r g, nd)

(* Own-degree mismatches dominate: a degree-anonymized graph only ever
   raises degrees, so weighting the own-degree term keeps the candidate
   ranking stable against neighborhood noise. *)
let distance (d0, nd0) (d1, nd1) =
  let rec l1 acc = function
    | [], [] -> acc
    | x :: xs, y :: ys -> l1 (acc + abs (x - y)) (xs, ys)
    | x :: xs, [] -> l1 (acc + x) (xs, [])
    | [], y :: ys -> l1 (acc + y) ([], ys)
  in
  (8 * abs (d0 - d1)) + l1 0 (nd0, nd1)

let candidates ~anon_sigs sig0 =
  List.sort
    (fun (da, na) (db, nb) -> compare (da, na) (db, nb))
    (List.map (fun (name, s) -> (distance sig0 s, name)) anon_sigs)
  |> List.map snd

let counterpart correspondence orig =
  match correspondence with
  | [] -> Some orig (* identity: names shared unchanged *)
  | map -> List.assoc_opt orig map

let run (t : Attack.target) =
  let orig_g = Routing.Device.router_graph t.Attack.orig_snapshot.net in
  let anon_g = Routing.Device.router_graph t.Attack.anon_snapshot.net in
  let orig_routers = Graph.nodes orig_g in
  let anon_sigs =
    List.map (fun r -> (r, signature anon_g r)) (Graph.nodes anon_g)
  in
  let guesses =
    if anon_sigs = [] then []
    else
      List.map
        (fun r ->
          let ranked = candidates ~anon_sigs (signature orig_g r) in
          (r, ranked))
        orig_routers
  in
  let claims = List.length guesses in
  match t.Attack.correspondence with
  | None ->
      Attack.score ~attack:"degree_reid" ~claims ~hits:0 ~relevant:0
        ~detail:[ ("grounded", 0.0); ("top5_rate", 0.0) ]
        ()
  | Some map ->
      let scored =
        List.filter_map
          (fun (r, ranked) ->
            match counterpart map r with
            | None -> None
            | Some truth ->
                let top1 =
                  match ranked with
                  | best :: _ -> String.equal best truth
                  | [] -> false
                in
                let rec take n = function
                  | x :: xs when n > 0 -> x :: take (n - 1) xs
                  | _ -> []
                in
                let top5 = List.mem truth (take 5 ranked) in
                Some (top1, top5))
          guesses
      in
      let relevant = List.length scored in
      let hits = List.length (List.filter fst scored) in
      let top5 = List.length (List.filter snd scored) in
      let top5_rate =
        if relevant = 0 then 1.0
        else float_of_int top5 /. float_of_int relevant
      in
      Attack.score ~attack:"degree_reid" ~claims ~hits ~relevant
        ~detail:[ ("grounded", 1.0); ("top5_rate", top5_rate) ]
        ()

let attack =
  {
    Attack.name = "degree_reid";
    doc =
      "re-identify anonymized routers by degree / neighborhood-degree \
       signature; recall is the top-1 re-identification rate";
    run;
  }
