(** Address-level attacks against the PII add-on (Pii.Pan).

    [prefix_structure] exploits the defining property of prefix-preserving
    anonymization: the shared-prefix tree of the address set survives the
    map exactly, so subnet hierarchy (how many subnets branch at each
    depth) leaks even though address values change. The score compares
    the branch-depth histograms of the original and anonymized address
    sets; [recall] is the fraction of original hierarchy visible in the
    shared set — 1.0 against Pan by design.

    [key_bruteforce] recovers legacy small-int keys ([Pan.key_of_int]) by
    replaying [Pan.addr] over the seed range [0, key_range) and accepting
    a seed whose map sends every original address into the shared set.
    Against a full 64-bit key ([Pan.key_of_string]) the scan finds
    nothing and recall is 0 — the measured argument for the key-width
    fix. *)

val addresses : Configlang.Ast.config list -> int list
(** Interface addresses as raw ints, sorted, deduplicated. *)

val branch_depths : int list -> int array
(** Histogram (length 33, indices 0..32) of adjacent common-prefix
    lengths of a sorted address list — the branch-depth multiset of the
    set's binary trie. Invariant under any prefix-preserving bijection. *)

val prefix_structure : Attack.t
val key_bruteforce : Attack.t
