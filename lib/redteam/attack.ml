type target = {
  orig_snapshot : Routing.Simulate.snapshot;
  orig_configs : Configlang.Ast.config list;
  anon_snapshot : Routing.Simulate.snapshot;
  anon_configs : Configlang.Ast.config list;
  fake_edges : (string * string) list option;
  correspondence : (string * string) list option;
  planted_key : Pii.Pan.key option;
  key_range : int;
}

let default_key_range = 1 lsl 16

type score = {
  attack : string;
  claims : int;
  hits : int;
  relevant : int;
  precision : float;
  recall : float;
  detail : (string * float) list;
}

type t = { name : string; doc : string; run : target -> score }

(* Precision/recall keep Deanon's empty-list conventions: an adversary
   that claims nothing is vacuously precise, and with nothing to find
   any attack has vacuously full recall. *)
let score ~attack ~claims ~hits ~relevant ?(detail = []) () =
  let precision =
    if claims = 0 then 1.0 else float_of_int hits /. float_of_int claims
  in
  let recall =
    if relevant = 0 then 1.0 else float_of_int hits /. float_of_int relevant
  in
  { attack; claims; hits; relevant; precision; recall; detail }

let canonical_edge (u, v) = if String.compare u v <= 0 then (u, v) else (v, u)

(* Linear sorted-merge intersection size; both inputs are canonicalized
   and sort_uniq-ed first so the merge is O(F + P) after the sorts. *)
let edge_hits ~truth ~claimed =
  let truth = List.sort_uniq compare (List.map canonical_edge truth) in
  let claimed = List.sort_uniq compare (List.map canonical_edge claimed) in
  let rec merge acc = function
    | [], _ | _, [] -> acc
    | (t :: ts as l), (c :: cs as r) ->
        let cmp = compare t c in
        if cmp = 0 then merge (acc + 1) (ts, cs)
        else if cmp < 0 then merge acc (ts, r)
        else merge acc (l, cs)
  in
  merge 0 (truth, claimed)
