(** Attack registry.

    [all] is the fixed suite in report order: degree_reid,
    filter_pattern, no_traffic, prefix_structure, key_bruteforce.
    [run_all] runs a subset (by name, preserving registry order) or the
    whole suite; every attack is deterministic, so a given target always
    produces byte-identical scores. *)

val all : Attack.t list
val names : string list
val find : string -> Attack.t option

val run_all : ?attacks:string list -> Attack.target -> Attack.score list
(** Unknown names in [attacks] are ignored; order follows [all], not the
    request. *)
