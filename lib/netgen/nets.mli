(** The Table 2 evaluation catalog: networks A-H plus the CCNP lab. *)

type entry = {
  id : string;  (** "A" .. "H", or "CCNP" *)
  label : string;  (** e.g. "Enterprise" *)
  spec : Netspec.t;
  network_type : string;  (** "BGP+OSPF" or "OSPF" *)
}

val all : unit -> entry list
(** A-H in Table 2 order. Deterministic (fixed generator seeds). *)

val scale : unit -> entry list
(** Scale-benchmark networks (FT16, W500, W1000), roughly 10x the
    Table 2 sizes. Deterministic; not included in [all]. *)

val find : string -> entry
(** Lookup by [id] or by [label] (case-insensitive). Raises [Not_found]. *)

val configs : entry -> Configlang.Ast.config list

val small : unit -> entry list
(** The subset cheap enough for quick tests: A, B, C, CCNP, G. *)
