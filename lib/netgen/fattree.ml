let make ~pods ~core ~agg_per_pod ~edge_per_pod ~hosts_per_edge ~core_per_agg =
  let cores = List.init core (Printf.sprintf "core%d") in
  let aggs p = List.init agg_per_pod (fun j -> Printf.sprintf "agg%d-%d" p j) in
  let edges p = List.init edge_per_pod (fun j -> Printf.sprintf "edge%d-%d" p j) in
  let pod_ids = List.init pods Fun.id in
  let routers =
    cores @ List.concat_map (fun p -> aggs p @ edges p) pod_ids
  in
  let default_cost = 10 in
  let links =
    List.concat_map
      (fun p ->
        (* aggregation <-> edge: full bipartite within the pod *)
        List.concat_map
          (fun a -> List.map (fun e -> (a, e, default_cost)) (edges p))
          (aggs p)
        (* aggregation <-> core uplinks *)
        @ List.concat
            (List.mapi
               (fun j a ->
                 List.init core_per_agg (fun x ->
                     let c = ((j * core_per_agg) + x) mod core in
                     (List.nth cores c, a, default_cost)))
               (aggs p)))
      pod_ids
  in
  let hosts =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun e ->
            List.init hosts_per_edge (fun n -> (Printf.sprintf "h-%s-%d" e n, e)))
          (edges p))
      pod_ids
  in
  Netspec.v
    ~name:(Printf.sprintf "fattree%02d" pods)
    ~routers ~links ~hosts ()

let fattree04 () =
  make ~pods:4 ~core:4 ~agg_per_pod:2 ~edge_per_pod:2 ~hosts_per_edge:2
    ~core_per_agg:2

let fattree08 () =
  make ~pods:8 ~core:8 ~agg_per_pod:4 ~edge_per_pod:4 ~hosts_per_edge:2
    ~core_per_agg:4

let fattree16 () =
  make ~pods:16 ~core:16 ~agg_per_pod:8 ~edge_per_pod:8 ~hosts_per_edge:2
    ~core_per_agg:4
