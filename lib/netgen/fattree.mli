(** Generalized fat-tree generator (Table 2 networks G and H).

    The parameters are factored so the generator reproduces the paper's
    FatTree-04 (R = 20, H = 16, E = 48) and FatTree-08 (R = 72, H = 64,
    E = 320) exactly; see DESIGN.md. All links have the default OSPF cost,
    which yields the usual ECMP fan between pods. *)

val make :
  pods:int ->
  core:int ->
  agg_per_pod:int ->
  edge_per_pod:int ->
  hosts_per_edge:int ->
  core_per_agg:int ->
  Netspec.t
(** Aggregation router [j] of every pod uplinks to cores
    [(j * core_per_agg + x) mod core] for [x < core_per_agg]; every
    aggregation router connects to every edge router of its pod. *)

val fattree04 : unit -> Netspec.t
val fattree08 : unit -> Netspec.t

val fattree16 : unit -> Netspec.t
(** Scale-benchmark topology, roughly 10x FatTree-04 by router count:
    16 pods of 8 + 8 give R = 272, H = 256, E = 1536. Not part of the
    paper's Table 2; used by the [scale] bench experiment. *)
