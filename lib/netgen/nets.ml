type entry = {
  id : string;
  label : string;
  spec : Netspec.t;
  network_type : string;
}

let all () =
  [
    { id = "A"; label = "Enterprise"; spec = Smallnets.enterprise (); network_type = "BGP+OSPF" };
    { id = "B"; label = "University"; spec = Smallnets.university (); network_type = "BGP+OSPF" };
    { id = "C"; label = "Backbone"; spec = Smallnets.backbone (); network_type = "BGP+OSPF" };
    {
      id = "D";
      label = "Bics";
      spec = Wan.waxman ~seed:20240804 ~name:"bics" ~routers:49 ~router_links:64 ~hosts:98;
      network_type = "OSPF";
    };
    {
      id = "E";
      label = "Columbus";
      spec =
        Wan.waxman ~seed:20240805 ~name:"columbus" ~routers:86 ~router_links:101 ~hosts:68;
      network_type = "OSPF";
    };
    {
      id = "F";
      label = "USCarrier";
      spec =
        Wan.waxman ~seed:20240806 ~name:"uscarrier" ~routers:161 ~router_links:320
          ~hosts:58;
      network_type = "OSPF";
    };
    { id = "G"; label = "FatTree04"; spec = Fattree.fattree04 (); network_type = "OSPF" };
    { id = "H"; label = "FatTree08"; spec = Fattree.fattree08 (); network_type = "OSPF" };
  ]

(* Scale-benchmark networks, roughly 10x the Table 2 sizes. Kept out of
   [all ()] so the paper-faithful A-H catalog (and everything keyed to
   it, like figure pipelines iterating the catalog) is unchanged. *)
let scale () =
  [
    { id = "FT16"; label = "FatTree16"; spec = Fattree.fattree16 (); network_type = "OSPF" };
    {
      id = "W500";
      label = "Waxman500";
      spec =
        Wan.waxman ~seed:20260807 ~name:"waxman500" ~routers:500
          ~router_links:650 ~hosts:96;
      network_type = "OSPF";
    };
    {
      id = "W1000";
      label = "Waxman1000";
      spec =
        Wan.waxman ~seed:20260808 ~name:"waxman1000" ~routers:1000
          ~router_links:1300 ~hosts:128;
      network_type = "OSPF";
    };
  ]

let ccnp_entry () =
  { id = "CCNP"; label = "CCNP"; spec = Smallnets.ccnp (); network_type = "BGP+OSPF" }

let find key =
  let k = String.lowercase_ascii key in
  let matches e =
    String.lowercase_ascii e.id = k || String.lowercase_ascii e.label = k
  in
  (* Catalogs are generated on demand, cheapest first: building the
     scale presets means running the 1000-router Waxman generator, far
     too slow to pay on a lookup for net "A". *)
  let catalogs = [ all; (fun () -> [ ccnp_entry () ]); scale ] in
  let rec search = function
    | [] -> raise Not_found
    | c :: rest -> (
        match List.find_opt matches (c ()) with
        | Some e -> e
        | None -> search rest)
  in
  search catalogs

let configs e = Emit.emit e.spec

let small () =
  [ find "A"; find "B"; find "C"; ccnp_entry (); find "G" ]
