(** De-anonymization adversary (the threat model of §2.2 / §4.3).

    The adversary holds the shared (anonymized) configurations and any
    analysis tooling — here, the simulator — and tries to identify the
    fake links. Two attacks from the paper's discussion:

    - {!no_traffic_links}: simulate and flag router links that no
      host-to-host forwarding path ever crosses (the §3.2 strawman's
      "large cost" tell);
    - {!uniform_filter_links}: flag links whose inbound filter denies the
      same large prefix set as filters on other routers — the "unified
      pattern" that makes Strawman 1 trivially identifiable (Listing 3).

    [assess] scores an attack against the ground-truth fake edge set.

    This module is now a façade over the full red-team suite in
    [Redteam] (lib/redteam): {!no_traffic_links} and
    {!uniform_filter_links} delegate to [Redteam.Links], and the wider
    attack set (re-identification, prefix-structure inference, key
    brute-force) is reachable through [Audit] / [Redteam.Suite]. *)

type score = {
  flagged : (string * string) list;  (** links the adversary accuses *)
  true_positives : int;
  precision : float;  (** 1.0 when nothing is flagged *)
  recall : float;  (** 1.0 when there are no fake edges *)
}

val no_traffic_links : Routing.Simulate.snapshot -> (string * string) list

val uniform_filter_links :
  Routing.Simulate.snapshot -> Configlang.Ast.config list -> (string * string) list
(** Links whose attachment-point deny set (IGP distribute-list or BGP
    neighbor filter) has at least 3 prefixes and recurs verbatim on at
    least one other router. *)

val assess :
  fake_edges:(string * string) list ->
  flagged:(string * string) list ->
  score
