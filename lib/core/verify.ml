open Netcore
module Smap = Routing.Device.Smap
module Query = Spec.Query

type result = {
  entries : Query.entry list;
  summary : Query.summary;
}

let c_policies = Telemetry.counter "verify.policies"
let c_lost = Telemetry.counter "verify.lost"

let known_in (snap : Routing.Simulate.snapshot) name =
  Smap.mem name snap.net.routers || Smap.mem name snap.net.hosts

let check ?policies ?rename ~(orig : Routing.Simulate.snapshot)
    ~(anon : Routing.Simulate.snapshot) () =
  Telemetry.with_span "verify.check" @@ fun () ->
  let dp_orig = Routing.Simulate.dataplane orig in
  let dp_anon = Routing.Simulate.dataplane anon in
  let policies =
    match policies with
    | Some ps -> ps
    | None -> List.map Spec.to_query (Spec.mine dp_orig)
  in
  let entries =
    Query.differential ?rename ~orig:dp_orig ~anon:dp_anon
      ~known:(known_in orig) policies
  in
  let summary = Query.summarize entries in
  Telemetry.add c_policies summary.total;
  Telemetry.add c_lost summary.lost;
  { entries; summary }

let of_report ?policies (r : Workflow.report) =
  let rename =
    match r.name_map with
    | [] -> None
    | map -> Some (fun n -> Option.value ~default:n (List.assoc_opt n map))
  in
  check ?policies ?rename ~orig:r.orig_snapshot ~anon:r.anon_snapshot ()

(* ---- JSON rendering ---- *)

let path_json p = Json.Arr (List.map (fun hop -> Json.Str hop) p)

let outcome_json (o : Query.outcome) =
  Json.Obj
    [
      ("holds", Json.Bool o.holds);
      ("witness", Json.Arr (List.map path_json o.witness));
      ("counterexample", Json.Arr (List.map path_json o.counterexample));
    ]

let entry_json (e : Query.entry) =
  Json.Obj
    [
      ("policy", Json.Str (Query.to_string e.e_policy));
      ("verdict", Json.Str (Query.verdict_to_string e.e_verdict));
      ("orig", (match e.e_orig with Some o -> outcome_json o | None -> Json.Null));
      ("anon", outcome_json e.e_anon);
    ]

let json_fields ?(entries = true) v =
  let s = v.summary in
  let num n = Json.Num (float_of_int n) in
  [
    ("policies", num s.total);
    ("holds_both", num s.holds_both);
    ("lost", num s.lost);
    ("introduced", num s.introduced);
    ("holds_neither", num s.holds_neither);
    ("fake_only", num s.fake_only);
    ("kept_fraction", Json.Num s.kept_fraction);
  ]
  @
  if entries then [ ("entries", Json.Arr (List.map entry_json v.entries)) ]
  else []

let to_json ?entries v = Json.Obj (json_fields ?entries v)

let record_json v =
  let s = v.summary in
  Printf.sprintf
    "{\"policies\": %d, \"holds_both\": %d, \"lost\": %d, \
     \"introduced\": %d, \"holds_neither\": %d, \"fake_only\": %d, \
     \"kept_fraction\": %.3f}"
    s.total s.holds_both s.lost s.introduced s.holds_neither s.fake_only
    s.kept_fraction
