(** Step 2.1: the route equivalence algorithm (Algorithm 1, §5.2).

    Iteratively re-simulates the intermediate network and, for every
    router's FIB entry toward a (real) host destination, rejects next hops
    that (a) were not next hops in the original network and (b) are
    reached over a fake link — by adding inbound distribute-list filters
    on the fake attachment point. Terminates when every FIB matches the
    original on all host destinations, which (together with the cost rule
    applied during topology anonymization) establishes the SFE conditions
    and hence functional equivalence (Theorem A.4). *)

type outcome = {
  configs : Configlang.Ast.config list;
  iterations : int;  (** simulations performed *)
  filters_added : int;
  engine : Routing.Engine.t;
      (** engine state at convergence, for downstream reuse *)
}

val fix :
  ?max_iters:int ->
  ?engine:Routing.Engine.t ->
  ?cache:Netcore.Diskcache.t ->
  orig:Routing.Simulate.snapshot ->
  fake_edges:(string * string) list ->
  Configlang.Ast.config list ->
  (outcome, string) result
(** [fix ~orig ~fake_edges configs]: [configs] is the network after
    topology anonymization; [orig] the pre-anonymization snapshot.
    [max_iters] defaults to [2 * |fake_edges| + 8] (the paper bounds the
    iteration count by the number of added edges). The loop simulates
    through an incremental {!Routing.Engine} — pass [engine] to reuse
    caches from an earlier stage, or [cache] to let a freshly created
    engine read/write a persistent cross-run cache. Errors if the loop
    cannot restore the original FIBs. *)

val fib_equal_on_hosts :
  orig:Routing.Simulate.snapshot -> Routing.Simulate.snapshot -> bool
(** Whether the two snapshots agree on every router's next hops for every
    original-host destination prefix — the SFE-condition check. *)
