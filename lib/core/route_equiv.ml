open Netcore
module Smap = Routing.Device.Smap

type outcome = {
  configs : Configlang.Ast.config list;
  iterations : int;
  filters_added : int;
  engine : Routing.Engine.t;
}

module Key = struct
  type t = string * Prefix.t

  let compare (r1, p1) (r2, p2) =
    match String.compare r1 r2 with 0 -> Prefix.compare p1 p2 | c -> c
end

module Kmap = Map.Make (Key)

module Pset = Set.Make (struct
  type t = string * string

  let compare = compare
end)

let c_iterations = Telemetry.counter "equiv.iterations"
let c_filters = Telemetry.counter "equiv.filters_added"
let c_delta = Telemetry.counter "equiv.delta_routers"

let nexthop_map snap =
  List.fold_left
    (fun acc (r, hp, nxts) -> Kmap.add (r, hp) nxts acc)
    Kmap.empty
    (Routing.Simulate.host_routes snap)

let restrict_to host_prefixes m =
  let s = Prefix.Set.of_list host_prefixes in
  Kmap.filter (fun (_, p) _ -> Prefix.Set.mem p s) m

let fib_equal_on_hosts ~orig snap =
  let hps = List.map fst (Routing.Simulate.host_prefixes orig.Routing.Simulate.net) in
  let a = restrict_to hps (nexthop_map orig) in
  let b = restrict_to hps (nexthop_map snap) in
  Kmap.equal (List.equal String.equal) a b

(* Apply one deny filter at router [r] against destination [hp], on the
   fake attachment toward [nxt]: an IGP distribute-list when the fake link
   runs the IGP, a BGP neighbor filter when it is a fake eBGP adjacency. *)
let apply_filter net configs r nxt hp =
  Attach.deny configs net ~router:r ~toward:nxt hp

(* One router's rows of the [host_routes] relation, in host-prefix order —
   exactly the rows [Routing.Simulate.host_routes] would sort together
   under this router's name, so concatenating per-router results in name
   order reproduces the full sorted relation. *)
let router_row hps fibs r =
  match Smap.find_opt r fibs with
  | None -> []
  | Some fib ->
      List.filter_map
        (fun (hp, _) ->
          match Routing.Fib.find fib hp with
          | Some (route : Routing.Fib.route) when route.rt_nexthops <> [] ->
              Some (hp, Routing.Fib.nexthop_names route)
          | Some _ | None -> None)
        hps

let fix ?max_iters ?engine ?cache ~orig ~fake_edges configs =
  Telemetry.with_span "equiv.fix" @@ fun () ->
  let max_iters =
    match max_iters with Some m -> m | None -> (2 * List.length fake_edges) + 8
  in
  let fake_set =
    List.fold_left
      (fun s (u, v) ->
        Pset.add (if String.compare u v <= 0 then (u, v) else (v, u)) s)
      Pset.empty fake_edges
  in
  let fake u v =
    Pset.mem (if String.compare u v <= 0 then (u, v) else (v, u)) fake_set
  in
  let orig_nexthops = nexthop_map orig in
  let orig_set r hp =
    Option.value ~default:[] (Kmap.find_opt (r, hp) orig_nexthops)
  in
  let initial =
    match engine with
    | Some e -> Routing.Engine.apply_edit e configs
    | None -> Routing.Engine.of_configs ?cache configs
  in
  (* The legacy fixpoint: rescan every router's host routes from scratch
     on every iteration, apply each filter with its own pass over the
     config list. Kept verbatim behind [Anonfix] as the differential-
     fuzzing baseline for the incremental path below. *)
  let fix_legacy eng0 configs =
    let rec loop eng configs iter filters =
      Telemetry.incr c_iterations;
      let snap = Routing.Engine.snapshot eng in
      let wrong =
        Telemetry.with_span "equiv.scan" @@ fun () ->
        List.concat_map
          (fun (r, hp, nxts) ->
            let ok = orig_set r hp in
            List.filter_map
              (fun nxt ->
                if (not (List.mem nxt ok)) && fake r nxt then Some (r, hp, nxt)
                else None)
              nxts)
          (Routing.Simulate.host_routes snap)
      in
      if wrong = [] then
        if fib_equal_on_hosts ~orig snap then
          Ok { configs; iterations = iter; filters_added = filters; engine = eng }
        else
          Error
            "route_equiv: FIBs differ from the original but no fake-edge \
             next hop is left to filter"
      else if iter >= max_iters then
        Error
          (Printf.sprintf "route_equiv: no convergence after %d iterations" iter)
      else
        let configs =
          List.fold_left
            (fun configs (r, hp, nxt) ->
              apply_filter snap.net configs r nxt hp)
            configs wrong
        in
        Telemetry.add c_filters (List.length wrong);
        match Routing.Engine.apply_edit eng configs with
        | Error m -> Error ("route_equiv: simulation failed: " ^ m)
        | Ok eng -> loop eng configs (iter + 1) (filters + List.length wrong)
    in
    loop eng0 configs 1 0
  in
  (* The incremental fixpoint. The per-router rows and wrong-set entries
     are persistent maps; after the first full scan, each iteration only
     recomputes the routers in the engine's FIB delta — a row is a pure
     function of the router's FIB and the (loop-invariant) host-prefix
     list, so an unchanged FIB means an unchanged row. The scan is
     sharded over contiguous router chunks ([Pool.chunked_map], the
     [Ospf.select_all] convention), whose order-preserving fold-back
     keeps the result independent of the job count. *)
  let fix_incremental eng0 configs =
    let pool = Routing.Engine.pool eng0 in
    let snap0 = Routing.Engine.snapshot eng0 in
    let hps = Routing.Simulate.host_prefixes snap0.net in
    let wrong_of r row =
      List.concat_map
        (fun (hp, nxts) ->
          let ok = orig_set r hp in
          List.filter_map
            (fun nxt ->
              if (not (List.mem nxt ok)) && fake r nxt then Some (r, hp, nxt)
              else None)
            nxts)
        row
    in
    let scan fibs names =
      Telemetry.with_span "equiv.scan" @@ fun () ->
      Telemetry.add c_delta (List.length names);
      Pool.chunked_map ?pool
        (fun r ->
          let row = router_row hps fibs r in
          (r, row, wrong_of r row))
        names
    in
    (* [rows]/[wrongs]/[anon] are threaded incrementally: a rescanned
       router's old row keys leave the anon-side next-hop map and its new
       row's enter it, so convergence never reassembles the full
       relation. *)
    let merge (rows, wrongs, anon) scanned =
      List.fold_left
        (fun (rows, wrongs, anon) (r, row, w) ->
          let anon =
            match Smap.find_opt r rows with
            | None -> anon
            | Some old ->
                List.fold_left (fun m (hp, _) -> Kmap.remove (r, hp) m) anon old
          in
          let anon =
            List.fold_left (fun m (hp, nxts) -> Kmap.add (r, hp) nxts m) anon row
          in
          (Smap.add r row rows, Smap.add r w wrongs, anon))
        (rows, wrongs, anon) scanned
    in
    let all_names fibs = List.map fst (Smap.bindings fibs) in
    (* The convergence predicate of [fib_equal_on_hosts], with the orig
       side reused from the map built once above and the anon side the
       incrementally maintained map. *)
    let converged anon =
      let hps_orig =
        List.map fst (Routing.Simulate.host_prefixes orig.Routing.Simulate.net)
      in
      Kmap.equal (List.equal String.equal)
        (restrict_to hps_orig orig_nexthops)
        (restrict_to hps_orig anon)
    in
    let rec loop eng configs rows wrongs anon iter filters =
      Telemetry.incr c_iterations;
      let wrong = List.concat_map snd (Smap.bindings wrongs) in
      if wrong = [] then
        if converged anon then
          Ok { configs; iterations = iter; filters_added = filters; engine = eng }
        else
          Error
            "route_equiv: FIBs differ from the original but no fake-edge \
             next hop is left to filter"
      else if iter >= max_iters then
        Error
          (Printf.sprintf "route_equiv: no convergence after %d iterations" iter)
      else
        let net = (Routing.Engine.snapshot eng).Routing.Simulate.net in
        let configs =
          Edits.update_all configs
            (List.filter_map
               (fun (r, hp, nxt) -> Attach.deny_edit net ~router:r ~toward:nxt hp)
               wrong)
        in
        Telemetry.add c_filters (List.length wrong);
        match Routing.Engine.apply_edit eng configs with
        | Error m -> Error ("route_equiv: simulation failed: " ^ m)
        | Ok eng ->
            let fibs = Routing.Engine.fibs eng in
            let names =
              match Routing.Engine.delta eng with
              | Some d -> d
              | None -> all_names fibs
            in
            let rows, wrongs, anon =
              merge (rows, wrongs, anon) (scan fibs names)
            in
            loop eng configs rows wrongs anon (iter + 1)
              (filters + List.length wrong)
    in
    let rows, wrongs, anon =
      merge
        (Smap.empty, Smap.empty, Kmap.empty)
        (scan snap0.fibs (all_names snap0.fibs))
    in
    loop eng0 configs rows wrongs anon 1 0
  in
  match initial with
  | Error m -> Error ("route_equiv: simulation failed: " ^ m)
  | Ok eng0 ->
      if Anonfix.incremental () then fix_incremental eng0 configs
      else fix_legacy eng0 configs
