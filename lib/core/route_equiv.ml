open Netcore
module Smap = Routing.Device.Smap

type outcome = {
  configs : Configlang.Ast.config list;
  iterations : int;
  filters_added : int;
  engine : Routing.Engine.t;
}

module Key = struct
  type t = string * Prefix.t

  let compare (r1, p1) (r2, p2) =
    match String.compare r1 r2 with 0 -> Prefix.compare p1 p2 | c -> c
end

module Kmap = Map.Make (Key)

module Pset = Set.Make (struct
  type t = string * string

  let compare = compare
end)

let c_iterations = Telemetry.counter "equiv.iterations"
let c_filters = Telemetry.counter "equiv.filters_added"

let nexthop_map snap =
  List.fold_left
    (fun acc (r, hp, nxts) -> Kmap.add (r, hp) nxts acc)
    Kmap.empty
    (Routing.Simulate.host_routes snap)

let restrict_to host_prefixes m =
  Kmap.filter (fun (_, p) _ -> List.exists (Prefix.equal p) host_prefixes) m

let fib_equal_on_hosts ~orig snap =
  let hps = List.map fst (Routing.Simulate.host_prefixes orig.Routing.Simulate.net) in
  let a = restrict_to hps (nexthop_map orig) in
  let b = restrict_to hps (nexthop_map snap) in
  Kmap.equal (List.equal String.equal) a b

(* Apply one deny filter at router [r] against destination [hp], on the
   fake attachment toward [nxt]: an IGP distribute-list when the fake link
   runs the IGP, a BGP neighbor filter when it is a fake eBGP adjacency. *)
let apply_filter net configs r nxt hp =
  Attach.deny configs net ~router:r ~toward:nxt hp

let fix ?max_iters ?engine ?cache ~orig ~fake_edges configs =
  Telemetry.with_span "equiv.fix" @@ fun () ->
  let max_iters =
    match max_iters with Some m -> m | None -> (2 * List.length fake_edges) + 8
  in
  let fake_set =
    List.fold_left
      (fun s (u, v) ->
        Pset.add (if String.compare u v <= 0 then (u, v) else (v, u)) s)
      Pset.empty fake_edges
  in
  let fake u v =
    Pset.mem (if String.compare u v <= 0 then (u, v) else (v, u)) fake_set
  in
  let orig_nexthops = nexthop_map orig in
  let orig_set r hp =
    Option.value ~default:[] (Kmap.find_opt (r, hp) orig_nexthops)
  in
  let initial =
    match engine with
    | Some e -> Routing.Engine.apply_edit e configs
    | None -> Routing.Engine.of_configs ?cache configs
  in
  let rec loop eng configs iter filters =
    Telemetry.incr c_iterations;
    let snap = Routing.Engine.snapshot eng in
    let wrong =
      List.concat_map
        (fun (r, hp, nxts) ->
          let ok = orig_set r hp in
          List.filter_map
            (fun nxt ->
              if (not (List.mem nxt ok)) && fake r nxt then Some (r, hp, nxt)
              else None)
            nxts)
        (Routing.Simulate.host_routes snap)
    in
    if wrong = [] then
      if fib_equal_on_hosts ~orig snap then
        Ok { configs; iterations = iter; filters_added = filters; engine = eng }
      else
        Error
          "route_equiv: FIBs differ from the original but no fake-edge \
           next hop is left to filter"
    else if iter >= max_iters then
      Error
        (Printf.sprintf "route_equiv: no convergence after %d iterations" iter)
    else
      let configs =
        List.fold_left
          (fun configs (r, hp, nxt) ->
            apply_filter snap.net configs r nxt hp)
          configs wrong
      in
      Telemetry.add c_filters (List.length wrong);
      match Routing.Engine.apply_edit eng configs with
      | Error m -> Error ("route_equiv: simulation failed: " ^ m)
      | Ok eng -> loop eng configs (iter + 1) (filters + List.length wrong)
  in
  match initial with
  | Error m -> Error ("route_equiv: simulation failed: " ^ m)
  | Ok eng -> loop eng configs 1 0
