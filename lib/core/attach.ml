open Netcore
module Smap = Routing.Device.Smap

type t = Iface of string | Neighbor of Ipv4.t

let point (net : Routing.Device.network) r nxt =
  match Routing.Device.find_adj net r nxt with
  | None -> None
  | Some adj ->
      let router = Smap.find r net.routers in
      if
        Routing.Device.ospf_enabled router adj.a_out_iface
        || Routing.Device.rip_enabled router adj.a_out_iface
        || Routing.Device.eigrp_enabled router adj.a_out_iface
      then Some (Iface adj.a_out_iface.ifc_name)
      else Some (Neighbor adj.a_in_iface.ifc_addr)

let deny_at c attach p =
  match attach with
  | Iface iface -> Edits.deny_on_iface c ~iface p
  | Neighbor addr -> Edits.deny_on_bgp_neighbor c ~neighbor:addr p

let undeny_at c attach p =
  match attach with
  | Iface iface -> Edits.undeny_on_iface c ~iface p
  | Neighbor addr -> Edits.undeny_on_bgp_neighbor c ~neighbor:addr p

let deny configs net ~router ~toward p =
  match point net router toward with
  | None -> configs
  | Some attach -> Edits.update configs router (fun c -> deny_at c attach p)

let deny_edit net ~router ~toward p =
  match point net router toward with
  | None -> None
  | Some attach -> Some (router, fun c -> deny_at c attach p)
