(** Step 2.2: the route anonymity algorithm (Algorithm 2, §5.3).

    Adds [k_h - 1] fake hosts per real host on the same ingress router —
    each a copy of the real host's configuration with a fresh name and an
    IP from a prefix disjoint from everything in the original network —
    then randomly (with the noise coefficient [p]) adds deny filters on
    FIB entries toward fake-host destinations, rolling back any filter
    that breaks a fake host's reachability. Real-host forwarding is
    untouched: the filters only ever name fake prefixes, which no real
    route resolves through. *)

type outcome = {
  configs : Configlang.Ast.config list;
  fake_hosts : (string * string) list;  (** (fake host, real host) *)
  filters_added : int;
  filters_removed : int;  (** rolled back by the reachability check *)
  engine : Routing.Engine.t;
      (** engine state after the final repair simulation *)
}

val default_noise : float
(** 0.1, the paper's evaluation setting. *)

val anonymize :
  rng:Netcore.Rng.t ->
  k_h:int ->
  ?p:float ->
  ?engine:Routing.Engine.t ->
  Configlang.Ast.config list ->
  (outcome, string) result
(** [anonymize ~rng ~k_h configs]: [configs] is the network after route
    equivalence. [k_h = 1] adds no fake hosts and no filters. The noise
    and repair loops simulate through an incremental {!Routing.Engine} —
    pass [engine] (e.g. from [Route_equiv.fix]) to reuse its caches. *)
