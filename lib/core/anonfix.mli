(** Switch between the incremental (delta-driven, pool-sharded)
    anonymization fixpoint and the legacy full-recompute-per-iteration
    path.

    Both modes produce byte-identical outputs — the incremental path
    only restricts each iteration's analyses to the routers the
    {!Routing.Engine} reports as changed and shards / caches what it
    still has to compute — so the switch exists for differential
    testing (the crucible's [anonfix] oracle runs every generated
    network both ways) and for benchmarking the speedup (the [anonfix]
    bench experiment), not for behavior.

    Initialized from the [CONFMASK_ANONFIX] environment variable at
    startup: [legacy] selects the full-recompute path, anything else
    (including unset) the incremental one. *)

val incremental : unit -> bool
(** Whether the incremental fixpoint paths are active. *)

val set_incremental : bool -> unit

val with_mode : [ `Incremental | `Legacy ] -> (unit -> 'a) -> 'a
(** [with_mode m f] runs [f] under mode [m], restoring the previous mode
    on exit (including exceptional exit). Not scoped per domain: the
    switch is process-global, so don't race it against a concurrent
    pipeline in another mode. *)
