(** The two strawman route-fixing baselines of §4.3, used in the
    comparisons of Figures 10 and 16.

    Both consume a network after topology anonymization (the same input as
    {!Route_equiv.fix}) and try to restore the original data plane. *)

type outcome = {
  configs : Configlang.Ast.config list;
  iterations : int;  (** simulations performed *)
  filters_added : int;
}

val strawman1 :
  ?engine:Routing.Engine.t ->
  orig:Routing.Simulate.snapshot ->
  fake_edges:(string * string) list ->
  Configlang.Ast.config list ->
  (outcome, string) result
(** Strawman 1: deny *every* real host prefix on *every* fake interface
    (Listing 3). One simulation to verify; a uniform, easily
    de-anonymizable pattern, and the largest filter footprint. Errors when
    the blanket filters do not restore the original FIBs. *)

val strawman2 :
  ?max_iters:int ->
  ?engine:Routing.Engine.t ->
  orig:Routing.Simulate.snapshot ->
  fake_edges:(string * string) list ->
  Configlang.Ast.config list ->
  (outcome, string) result
(** Strawman 2: traceroute-driven repair. Each iteration compares each
    host pair's current paths with the original, locates the first
    deviating hop closest to the destination, and filters that single
    (router, destination) pair; then re-simulates. Converges to exactly
    the original data plane with a minimal filter set, at the cost of many
    more simulations than Algorithm 1. *)
