type score = {
  flagged : (string * string) list;
  true_positives : int;
  precision : float;
  recall : float;
}

let canonical = Redteam.Attack.canonical_edge

(* The attacks themselves live in lib/redteam now; this module keeps the
   original two-attack surface (and its tests) as a thin façade. *)
let no_traffic_links = Redteam.Links.no_traffic_links

let uniform_filter_links snap configs =
  Redteam.Links.filter_links ~min_prefixes:3 ~min_routers:2 snap configs

let assess ~fake_edges ~flagged =
  let fake_edges = List.sort_uniq compare (List.map canonical fake_edges) in
  let flagged = List.sort_uniq compare (List.map canonical flagged) in
  (* Both lists are sorted and deduplicated, so the intersection is a
     linear merge — the old [List.mem] filter was O(F * P) and dominated
     on grid-scale networks with thousands of flagged edges. *)
  let true_positives =
    Redteam.Attack.edge_hits ~truth:fake_edges ~claimed:flagged
  in
  let precision =
    if flagged = [] then 1.0
    else float_of_int true_positives /. float_of_int (List.length flagged)
  in
  let recall =
    if fake_edges = [] then 1.0
    else float_of_int true_positives /. float_of_int (List.length fake_edges)
  in
  { flagged; true_positives; precision; recall }
