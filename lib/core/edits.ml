open Netcore
open Configlang
open Ast

let used_prefixes configs =
  let add acc p = p :: acc in
  List.fold_left
    (fun acc c ->
      let acc =
        List.fold_left
          (fun acc i ->
            match interface_prefix i with Some p -> add acc p | None -> acc)
          acc c.interfaces
      in
      let acc =
        match c.ospf with
        | Some o -> List.fold_left (fun acc (p, _) -> add acc p) acc o.ospf_networks
        | None -> acc
      in
      let acc =
        match c.rip with
        | Some r -> List.fold_left add acc r.rip_networks
        | None -> acc
      in
      let acc =
        match c.eigrp with
        | Some e -> List.fold_left add acc e.eigrp_networks
        | None -> acc
      in
      let acc =
        match c.bgp with
        | Some b ->
            let acc = List.fold_left add acc b.bgp_networks in
            List.fold_left (fun acc n -> add acc (Prefix.v n.nb_addr 32)) acc b.bgp_neighbors
        | None -> acc
      in
      let acc =
        List.fold_left
          (fun acc pl ->
            List.fold_left
              (fun acc r ->
                (* The catch-all 0/0 must not poison the allocator. *)
                if Prefix.length r.rule_prefix = 0 then acc else add acc r.rule_prefix)
              acc pl.pl_rules)
          acc c.prefix_lists
      in
      let acc =
        List.fold_left
          (fun acc a ->
            List.fold_left
              (fun acc r ->
                let add_ep acc = function
                  | Some p when Prefix.length p > 0 -> add acc p
                  | Some _ | None -> acc
                in
                add_ep (add_ep acc r.acl_src) r.acl_dst)
              acc a.acl_rules)
          acc c.acls
      in
      let acc =
        List.fold_left
          (fun acc st ->
            add (add acc st.st_prefix) (Prefix.v st.st_next_hop 32))
          acc c.statics
      in
      match c.default_gateway with
      | Some gw -> add acc (Prefix.v gw 32)
      | None -> acc)
    [] configs

let update configs hostname f =
  let found = ref false in
  let configs =
    List.map
      (fun c ->
        if String.equal c.hostname hostname then begin
          found := true;
          f c
        end
        else c)
      configs
  in
  if !found then configs else raise Not_found

module Smap = Map.Make (String)

let update_all configs edits =
  match edits with
  | [] -> configs
  | [ (hostname, f) ] -> update configs hostname f
  | _ ->
      (* One pass over the list instead of one full [update] fold per
         edit: the edits are grouped per hostname first, preserving their
         relative order within each device, which is all that sequential
         application could observe — an edit closure only ever reads and
         rewrites its own device's config. *)
      let grouped =
        List.fold_left
          (fun m (hostname, f) ->
            Smap.update hostname
              (function None -> Some [ f ] | Some fs -> Some (f :: fs))
              m)
          Smap.empty edits
      in
      let unseen = ref grouped in
      let configs =
        List.map
          (fun c ->
            match Smap.find_opt c.hostname grouped with
            | None -> c
            | Some rev_fs ->
                unseen := Smap.remove c.hostname !unseen;
                List.fold_left (fun c f -> f c) c (List.rev rev_fs))
          configs
      in
      if Smap.is_empty !unseen then configs else raise Not_found

module Indexed = struct
  type nonrec t = {
    rev_names : string list;  (* insertion order, newest first *)
    by_name : Ast.config Smap.t;
  }

  let of_configs configs =
    List.fold_left
      (fun t c ->
        if Smap.mem c.hostname t.by_name then
          invalid_arg ("Edits.Indexed.of_configs: duplicate hostname " ^ c.hostname)
        else
          {
            rev_names = c.hostname :: t.rev_names;
            by_name = Smap.add c.hostname c t.by_name;
          })
      { rev_names = []; by_name = Smap.empty }
      configs

  let to_configs t =
    List.rev_map (fun n -> Smap.find n t.by_name) t.rev_names

  let find t hostname =
    match Smap.find_opt hostname t.by_name with
    | Some c -> c
    | None -> raise Not_found

  let update t hostname f =
    { t with by_name = Smap.add hostname (f (find t hostname)) t.by_name }

  let append t (c : Ast.config) =
    if Smap.mem c.hostname t.by_name then
      invalid_arg ("Edits.Indexed.append: duplicate hostname " ^ c.hostname)
    else
      {
        rev_names = c.hostname :: t.rev_names;
        by_name = Smap.add c.hostname c t.by_name;
      }
end

let fresh_iface_name c =
  let taken n = List.exists (fun i -> String.equal i.if_name n) c.interfaces in
  let rec search k =
    let candidate = Printf.sprintf "Eth%d" k in
    if taken candidate then search (k + 1) else candidate
  in
  search (List.length c.interfaces)

let add_interface c ~name ~addr ~plen ?cost ?desc () =
  let i =
    {
      (empty_interface name) with
      if_address = Some (addr, plen);
      if_cost = cost;
      if_description = desc;
    }
  in
  { c with interfaces = c.interfaces @ [ i ] }

let covered_by_networks p nets =
  List.exists (fun net -> Prefix.subset ~sub:p ~super:net) nets

let add_igp_network c p =
  match (c.ospf, c.rip, c.eigrp) with
  | Some o, _, _ ->
      if covered_by_networks p (List.map fst o.ospf_networks) then c
      else
        { c with ospf = Some { o with ospf_networks = o.ospf_networks @ [ (p, 0) ] } }
  | None, Some r, _ ->
      if covered_by_networks p r.rip_networks then c
      else { c with rip = Some { r with rip_networks = r.rip_networks @ [ p ] } }
  | None, None, Some e ->
      if covered_by_networks p e.eigrp_networks then c
      else
        { c with eigrp = Some { e with eigrp_networks = e.eigrp_networks @ [ p ] } }
  | None, None, None -> c

let add_bgp_network c p =
  match c.bgp with
  | None -> c
  | Some b ->
      if List.exists (Prefix.equal p) b.bgp_networks then c
      else { c with bgp = Some { b with bgp_networks = b.bgp_networks @ [ p ] } }

let add_bgp_neighbor c ~addr ~remote_as =
  match c.bgp with
  | None -> invalid_arg (c.hostname ^ ": add_bgp_neighbor on non-BGP device")
  | Some b ->
      if List.exists (fun n -> Ipv4.equal n.nb_addr addr) b.bgp_neighbors then c
      else
        let n = { nb_addr = addr; nb_remote_as = remote_as; nb_distribute_in = None; nb_route_map_in = None } in
        { c with bgp = Some { b with bgp_neighbors = b.bgp_neighbors @ [ n ] } }

(* ---- deny lists ---- *)

let catchall_seq = 10000

let catchall =
  {
    seq = catchall_seq;
    action = Permit;
    rule_prefix = Prefix.of_string_exn "0.0.0.0/0";
    le = Some 32;
  }

(* Add a deny rule (before the catch-all permit) to the named list,
   creating the list if needed. Idempotent per (list, prefix). *)
let list_deny c name p =
  match find_prefix_list c name with
  | None ->
      let pl =
        {
          pl_name = name;
          pl_rules = [ { seq = 5; action = Deny; rule_prefix = p; le = None }; catchall ];
        }
      in
      { c with prefix_lists = c.prefix_lists @ [ pl ] }
  | Some pl ->
      if
        List.exists
          (fun r -> r.action = Deny && Prefix.equal r.rule_prefix p)
          pl.pl_rules
      then c
      else
        let max_deny_seq =
          List.fold_left
            (fun m r -> if r.seq < catchall_seq then max m r.seq else m)
            0 pl.pl_rules
        in
        let rule = { seq = max_deny_seq + 5; action = Deny; rule_prefix = p; le = None } in
        let denies = List.filter (fun r -> r.seq < catchall_seq) pl.pl_rules in
        let pl = { pl with pl_rules = denies @ [ rule; catchall ] } in
        {
          c with
          prefix_lists =
            List.map (fun q -> if q.pl_name = name then pl else q) c.prefix_lists;
        }

let list_undeny c name p =
  match find_prefix_list c name with
  | None -> (c, false)
  | Some pl ->
      let denies =
        List.filter
          (fun r -> r.seq < catchall_seq && not (Prefix.equal r.rule_prefix p))
          pl.pl_rules
      in
      if List.length denies = List.length pl.pl_rules - 1 then
        (* nothing matched the prefix *)
        (c, denies <> [])
      else if denies = [] then
        ( { c with prefix_lists = List.filter (fun q -> q.pl_name <> name) c.prefix_lists },
          false )
      else
        let pl = { pl with pl_rules = denies @ [ catchall ] } in
        ( {
            c with
            prefix_lists =
              List.map (fun q -> if q.pl_name = name then pl else q) c.prefix_lists;
          },
          true )

let iface_list_name iface = "DL-" ^ iface

let bind_iface_filter c name iface =
  let d = { dl_list = name; dl_iface = iface } in
  let bound ds = List.exists (fun x -> x.dl_list = name && x.dl_iface = iface) ds in
  match (c.ospf, c.rip, c.eigrp) with
  | Some o, _, _ ->
      if bound o.ospf_distribute_in then c
      else
        { c with ospf = Some { o with ospf_distribute_in = o.ospf_distribute_in @ [ d ] } }
  | None, Some r, _ ->
      if bound r.rip_distribute_in then c
      else { c with rip = Some { r with rip_distribute_in = r.rip_distribute_in @ [ d ] } }
  | None, None, Some e ->
      if bound e.eigrp_distribute_in then c
      else
        { c with
          eigrp = Some { e with eigrp_distribute_in = e.eigrp_distribute_in @ [ d ] } }
  | None, None, None ->
      invalid_arg (c.hostname ^ ": deny_on_iface on a device with no IGP")

let unbind_iface_filter c name iface =
  let drop ds = List.filter (fun x -> not (x.dl_list = name && x.dl_iface = iface)) ds in
  let c =
    match c.ospf with
    | Some o -> { c with ospf = Some { o with ospf_distribute_in = drop o.ospf_distribute_in } }
    | None -> c
  in
  let c =
    match c.rip with
    | Some r ->
        { c with rip = Some { r with rip_distribute_in = drop r.rip_distribute_in } }
    | None -> c
  in
  match c.eigrp with
  | Some e ->
      { c with eigrp = Some { e with eigrp_distribute_in = drop e.eigrp_distribute_in } }
  | None -> c

let deny_on_iface c ~iface p =
  let name = iface_list_name iface in
  bind_iface_filter (list_deny c name p) name iface

let undeny_on_iface c ~iface p =
  let name = iface_list_name iface in
  let c, still_has_denies = list_undeny c name p in
  if still_has_denies then c else unbind_iface_filter c name iface

let neighbor_list_name c addr =
  (* Reuse the neighbor's existing list; otherwise mint RejPfxs-<n>. *)
  match c.bgp with
  | Some b -> (
      match
        List.find_opt (fun n -> Ipv4.equal n.nb_addr addr) b.bgp_neighbors
      with
      | Some { nb_distribute_in = Some name; _ } -> name
      | Some _ | None ->
          let rec fresh k =
            let candidate = Printf.sprintf "RejPfxs-%d" k in
            if find_prefix_list c candidate = None then candidate else fresh (k + 1)
          in
          fresh 1)
  | None -> invalid_arg (c.hostname ^ ": deny_on_bgp_neighbor on non-BGP device")

let set_neighbor_filter c addr name =
  match c.bgp with
  | None -> c
  | Some b ->
      {
        c with
        bgp =
          Some
            {
              b with
              bgp_neighbors =
                List.map
                  (fun n ->
                    if Ipv4.equal n.nb_addr addr then { n with nb_distribute_in = name }
                    else n)
                  b.bgp_neighbors;
            };
      }

let deny_on_bgp_neighbor c ~neighbor p =
  let name = neighbor_list_name c neighbor in
  set_neighbor_filter (list_deny c name p) neighbor (Some name)

let undeny_on_bgp_neighbor c ~neighbor p =
  match c.bgp with
  | None -> c
  | Some b -> (
      match
        List.find_opt (fun n -> Ipv4.equal n.nb_addr neighbor) b.bgp_neighbors
      with
      | Some { nb_distribute_in = Some name; _ } ->
          let c, still_has_denies = list_undeny c name p in
          if still_has_denies then c else set_neighbor_filter c neighbor None
      | Some _ | None -> c)
