(** Sharded batch driver for anonymization runs ([confmask batch]).

    A batch is an ordered list of jobs — one {!Workflow.run} each — built
    either from the evaluation catalog (network × k_r × k_h grid) or from
    directories of configuration files. Jobs are sharded across the
    domain worker pool; each failure is isolated into an error record
    instead of killing the run. Every job writes its anonymized
    configurations and a one-line [result.json] under [out/<job id>/],
    and the run ends by assembling [out/manifest.json] from the per-job
    records in job order.

    Resume semantics: with [resume:true], a job whose [result.json]
    already reports ["status": "ok"] is not re-run — its record is reused
    {e verbatim}, so resuming a finished batch reproduces a byte-identical
    manifest. Failed jobs are always retried.

    Error classification (shared with the CLI's exit codes): an
    {!Input_error} — missing directory, unparsable file, unknown network,
    infeasible parameters, address-pool exhaustion — is the user's to fix
    (exit 1); any other exception is an internal invariant violation
    (exit 2); cmdliner reports usage errors itself (exit 124). *)

exception Input_error of string
(** A problem with the user's input (as opposed to a bug): bad paths,
    unparsable configurations, unknown catalog ids, infeasible
    anonymization parameters. *)

val input_error : ('a, unit, string, 'b) format4 -> 'a
(** [input_error fmt ...] raises {!Input_error} with the formatted
    message. *)

val classify : exn -> string * string
(** [classify e] is [(cls, message)] where [cls] is ["input"] for
    {!Input_error}, [Sys_error], address-pool exhaustion and other
    input-determined failures, and ["internal"] otherwise. *)

val exit_code : string -> int
(** Exit code of a classification: ["input"] is 1, anything else 2. *)

val read_config_dir : string -> Configlang.Ast.config list
(** Reads and parses every [.cfg] file of a directory, in sorted filename
    order, auto-detecting the vendor per file. Raises {!Input_error} when
    the directory is missing, holds no [.cfg] file, or a file fails to
    parse. *)

type source =
  | Catalog of string  (** a {!Netgen.Nets} catalog id *)
  | Dir of string  (** a directory of [.cfg] files *)
(** Where a job's configurations come from. A name rather than a
    closure, so a job can be shipped to a serve daemon and
    re-materialized there; loading happens inside the job either way,
    so load failures stay isolated. *)

val load_source : source -> Configlang.Ast.config list
(** Raises {!Input_error} for unknown catalog ids / unusable dirs. *)

type job = {
  job_id : string;  (** unique within the batch; used as directory name *)
  job_source : source;
  job_params : Workflow.params;
}

val grid_jobs :
  ?seed:int ->
  ?noise:float ->
  nets:string list ->
  k_rs:int list ->
  k_hs:int list ->
  unit ->
  job list
(** The evaluation grid: one job per [net × k_r × k_h] combination, in
    that nesting order, with ids like ["A-kr6-kh2"]. Networks come from
    the {!Netgen.Nets} catalog; an unknown id fails as an input error
    when the job runs, not when the manifest is built. *)

val dir_jobs :
  ?seed:int ->
  ?noise:float ->
  dirs:string list ->
  k_rs:int list ->
  k_hs:int list ->
  unit ->
  job list
(** Like {!grid_jobs} over directories of [.cfg] files; job ids are
    [basename-krK-khK]. *)

type outcome = {
  records : (string * string) list;
      (** (job id, one-line JSON record), in job order *)
  ok : int;
  errors : int;
  pending : int;  (** jobs not processed because of [limit] *)
  reused : int;  (** subset of [ok] restored from a previous run *)
  exit_code : int;  (** worst over the processed jobs; pending is 0 *)
}

val execute :
  out:string ->
  cache:Netcore.Diskcache.t option ->
  format:Configlang.Vendor.t ->
  job ->
  string
(** Runs one job in-process: loads the source, runs the workflow,
    writes [out/<id>/configs/] and [out/<id>/result.json], and returns
    the one-line record. Never raises — failures become error records.
    This is the {e same} code path whether called by {!run} or by the
    serve daemon on behalf of a remote client, which is what makes the
    two modes byte-compatible.

    Each ok record embeds a ["verification"] object ({!Verify.record_json}):
    the per-verdict policy counts and kept fraction of checking the
    original network's mined specification against the cell's
    anonymized output — so every grid cell carries a machine-readable
    proof of how much of the specification transferred. *)

val run :
  ?pool:Netcore.Pool.t ->
  ?cache:Netcore.Diskcache.t ->
  ?server:Netcore.Server.addr ->
  ?tenant:string ->
  ?resume:bool ->
  ?limit:int ->
  ?format:Configlang.Vendor.t ->
  out:string ->
  job list ->
  outcome
(** Runs the batch, sharding jobs across [pool] (default: the shared
    pool). [cache] is handed to every job's {!Workflow.run}, so the grid
    shares one persistent simulation cache. [limit] bounds the number of
    jobs {e executed} this run (reused jobs are free); the rest are
    recorded as pending — the deterministic way to interrupt a batch.
    Enables telemetry (the per-job records embed counter deltas).
    Duplicate job ids are an {!Input_error}.

    With [server], the driver becomes a {e client} of a live
    [confmask serve] daemon: each job is sent as one request (with
    [out] and any [Dir] sources made absolute, since the daemon
    executes them), the daemon runs {!execute} with {e its} resident
    caches and writes the per-job outputs, and the returned record is
    assembled into the local manifest. Queue-full rejections are
    retried with backoff (the admission-control pushback); an
    unreachable daemon turns into per-job input-class error records.
    [cache] is ignored in this mode — the daemon's cache is the point.
    [tenant] names the daemon-side PII key to scrub with. *)

val manifest_path : string -> string
(** [manifest_path out] is the path of the results manifest under the
    batch output directory [out]. *)
