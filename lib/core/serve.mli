(** The [confmask serve] daemon: the anonymization pipeline behind a
    resident line-delimited JSON protocol.

    One process holds everything that is expensive to warm — the
    {!Netcore.Pool} worker domains, the engine's compiled-network reuse,
    and the persistent {!Netcore.Diskcache} — and answers requests over
    a Unix or TCP socket ({!Netcore.Server} supplies the transport,
    bounded queue, admission control and graceful drain). The batch
    driver runs as a client of this daemon ([confmask batch --server]),
    executing the {e same} {!Batch.execute} per job, so a served grid is
    byte-compatible with a one-shot one.

    Protocol: one JSON object per line in, one per line out. Every
    response carries ["ok": true|false]; failures carry a typed
    ["error"] — ["queue_full"] (admission control), ["draining"]
    (shutdown in progress), ["bad_request"], ["unknown_tenant"],
    ["internal"] — plus a human ["detail"] where useful. Operations:

    - [{"op": "ping"}] — liveness.
    - [{"op": "stats"}] — queue/served/rejected gauges, uptime, plus
      every telemetry counter and span of the daemon process (the
      [diskcache.*] and [engine.*] hit counters live here, since the
      daemon is where the caches are).
    - [{"op": "job", "id", "source": {"catalog": ID | "dir": PATH},
       "kr", "kh", "seed", "noise", "pii", "pii_key", "fake_routers",
       "tenant", "out", "format"}] — run one anonymization job with the
      resident caches; writes [out/<id>/] exactly like the local batch
      driver and answers [{"ok": true, "record": "<result.json line>"}].
      [tenant] selects a daemon-configured PII key. [pii_key] is either
      a legacy small int (derived via {!Pii.Pan.key_of_int}) or a full
      64-bit hex string ({!Pii.Pan.key_of_string}).
    - [{"op": "verify", "orig_dir": DIR, "anon_dir": DIR,
       "policies": TEXT?, "policies_file": PATH?, "entries": BOOL?}] —
      differential policy verification ({!Verify.check}) of two config
      directories: simulate both, evaluate the given policies (inline
      policy text/JSON, a daemon-readable file, or — default — the
      mined specification of [orig_dir]) on each side, and answer the
      per-verdict summary counts plus, with ["entries": true], the full
      per-policy verdict/witness list.
    - [{"op": "redteam", "orig_dir": DIR, "anon_dir": DIR,
       "attacks": [NAME...]?, "key_range": N?, "tenant"?, "pii_key"?}] —
      red-team audit ({!Audit.check}) of two config directories: run the
      de-anonymization attack suite against the pair and answer the
      per-attack precision/recall scores. [tenant]/[pii_key] optionally
      plant the scrub key so the brute-force attack's recovery is
      verified against it.
    - [{"op": "sleep", "seconds": S}] — occupy a worker (diagnostics /
      admission-control testing only; capped at 10 s).
    - [{"op": "shutdown"}] — acknowledge, then drain in-flight requests
      and exit {!run}.

    Trust boundary: whoever can reach the socket can make the daemon
    read config dirs and write result dirs with its privileges — bind
    Unix sockets in protected directories and TCP on loopback. *)

type config = {
  addr : Netcore.Server.addr;
  queue_cap : int;  (** bound on queued requests (admission control) *)
  workers : int;  (** concurrent request executors *)
  cache : Netcore.Diskcache.t option;  (** resident simulation cache *)
  tenants : (string * Pii.Pan.key) list;  (** tenant name -> PII key *)
}

val default_queue_cap : int
val default_workers : int

val create : config -> Netcore.Server.t
(** Binds the socket and wires the dispatcher; enables telemetry (the
    [stats] op reports it). Run with {!Netcore.Server.run}; stop with a
    [shutdown] request or {!Netcore.Server.initiate_shutdown} (e.g.
    from a SIGINT/SIGTERM handler). *)

val handle :
  server:Netcore.Server.t option ref ->
  cache:Netcore.Diskcache.t option ->
  tenants:(string * Pii.Pan.key) list ->
  string ->
  string
(** The bare dispatcher ([create] wires it to a transport): one request
    line to one response line. Exposed for tests. *)
