open Netcore
module Ast = Configlang.Ast
module Smap = Routing.Device.Smap

type result = {
  configs : Ast.config list;
  fake_edges : (string * string) list;
}

type cost_policy = Min_cost | Default_cost | Large_cost

let large_cost = 60000 (* below the OSPF metric ceiling of 65535 *)

let as_map (net : Routing.Device.network) =
  Smap.filter_map (fun _ r -> Routing.Device.as_of_router r) net.routers

(* AS-level supergraph: one node per AS number, an edge when any pair of
   border routers is adjacent. *)
let as_graph (net : Routing.Device.network) asns =
  let g =
    Smap.fold
      (fun _ asn g -> Graph.add_node (string_of_int asn) g)
      asns Graph.empty
  in
  Smap.fold
    (fun r adjs g ->
      List.fold_left
        (fun g (a : Routing.Device.adj) ->
          match (Smap.find_opt r asns, Smap.find_opt a.a_to asns) with
          | Some x, Some y when x <> y ->
              Graph.add_edge (string_of_int x) (string_of_int y) g
          | _ -> g)
        g adjs)
    net.adjs g

(* New AS-AS adjacencies become router-level fake edges between randomly
   chosen routers of the two ASes that are not already adjacent. *)
let realize_as_edges ~rng net asns as_fake_edges =
  let members asn =
    Smap.fold (fun r a acc -> if a = asn then r :: acc else acc) asns []
    |> List.sort String.compare
  in
  List.filter_map
    (fun (x, y) ->
      let xs = members (int_of_string x) and ys = members (int_of_string y) in
      let candidates =
        List.concat_map
          (fun u ->
            List.filter_map
              (fun v ->
                if Routing.Device.find_adj net u v = None then Some (u, v) else None)
              ys)
          xs
      in
      match candidates with
      | [] -> None
      | _ -> Some (Rng.pick rng candidates))
    as_fake_edges

let c_fake_edges = Telemetry.counter "topo.fake_edges"

let anonymize ?(cost_policy = Min_cost) ~rng ~k ~orig:(snap : Routing.Simulate.snapshot)
    configs =
  Telemetry.with_span "topo.anonymize" @@ fun () ->
  let net = snap.net in
  let g = Routing.Device.router_graph net in
  let asns = as_map net in
  let is_bgp = not (Smap.is_empty asns) in
  (* Decide the fake edge set at the graph level. k-degree anonymity
     beyond the number of routers is unattainable (the maximum is the
     regular graph), so k is clamped. *)
  let k = min k (max 1 (Graph.num_nodes g)) in
  let fake_edges =
    Telemetry.with_span "topo.realize" @@ fun () ->
    if not is_bgp then snd (Graphanon.Realize.add_edges ~rng ~k g)
    else begin
      let ag = as_graph net asns in
      let k_as = min k (Graph.num_nodes ag) in
      let _, as_new = Graphanon.Realize.add_edges ~rng ~k:k_as ag in
      let inter_edges = realize_as_edges ~rng net asns as_new in
      let g_with_inter =
        List.fold_left (fun g (u, v) -> Graph.add_edge u v g) g inter_edges
      in
      let same_as u v = Smap.find_opt u asns = Smap.find_opt v asns in
      let _, intra_new =
        Graphanon.Realize.add_edges ~allowed:same_as ~rng ~k g_with_inter
      in
      inter_edges @ intra_new
    end
  in
  let fake_edges =
    List.map (fun (u, v) -> if String.compare u v <= 0 then (u, v) else (v, u)) fake_edges
    |> List.sort_uniq compare
  in
  Telemetry.add c_fake_edges (List.length fake_edges);
  (* Per-direction IGP shortest-path distances, for the OSPF cost rule.
     Scoped per AS in BGP networks. *)
  let scope_of u =
    match Smap.find_opt u asns with
    | None -> fun _ -> true
    | Some a -> fun r -> Smap.find_opt r asns = Some a
  in
  (* The SFE cost rule queries one source per fake-edge endpoint; prepare
     each scope (the whole IGP, or one AS) once and memoize per-source
     distance maps — endpoints repeat across fake edges, and the scoped
     CSR build dominates a single Dijkstra on large networks. *)
  let cost_states = Hashtbl.create 4 in
  let state_for u =
    let key = Smap.find_opt u asns in
    match Hashtbl.find_opt cost_states key with
    | Some st -> st
    | None ->
        let st = Routing.Ospf.min_cost_state ~scope:(scope_of u) net in
        Hashtbl.add cost_states key st;
        st
  in
  let dist_cache = Hashtbl.create 16 in
  let min_cost u v =
    let d =
      match Hashtbl.find_opt dist_cache u with
      | Some d -> d
      | None ->
          let d = Routing.Ospf.min_cost_from (state_for u) u in
          Hashtbl.add dist_cache u d;
          d
    in
    Smap.find_opt v d
  in
  let alloc = Prefix.alloc_create ~avoid:(Edits.used_prefixes configs) () in
  let runs_ospf name =
    match Smap.find_opt name net.routers with
    | Some r -> r.Routing.Device.r_ospf <> None
    | None -> false
  in
  (* Decide every edge's addresses and costs first (the allocator and the
     cost Dijkstras run in edge order, as before), then apply the whole
     batch of per-router rewrites in one pass over the config list —
     [Edits.update_all] preserves each router's edit order, which is all
     the closures (notably [fresh_iface_name]) can observe. *)
  let edits =
    Telemetry.with_span "topo.edits" @@ fun () ->
    List.fold_left
      (fun edits (u, v) ->
        let subnet = Prefix.alloc_fresh alloc ~len:30 in
        let ua = Prefix.host subnet 1 and va = Prefix.host subnet 2 in
        let inter_as =
          is_bgp && Smap.find_opt u asns <> Smap.find_opt v asns
        in
        if inter_as then begin
          let as_u = Smap.find u asns and as_v = Smap.find v asns in
          let eu c =
            let name = Edits.fresh_iface_name c in
            let c = Edits.add_interface c ~name ~addr:ua ~plen:30 ~desc:("to-" ^ v) () in
            Edits.add_bgp_neighbor c ~addr:va ~remote_as:as_v
          in
          let ev c =
            let name = Edits.fresh_iface_name c in
            let c = Edits.add_interface c ~name ~addr:va ~plen:30 ~desc:("to-" ^ u) () in
            Edits.add_bgp_neighbor c ~addr:ua ~remote_as:as_u
          in
          (v, ev) :: (u, eu) :: edits
        end
        else begin
          (* Intra-AS / IGP-only: SFE cost rule for link-state, plain link
             for distance-vector. Disconnected components fall back to the
             default cost (they cannot create shortcuts anyway). *)
          let policy_cost r_to other =
            if not (runs_ospf r_to) then None
            else
              match cost_policy with
              | Min_cost -> min_cost r_to other
              | Default_cost -> None
              | Large_cost -> Some large_cost
          in
          let cost_uv = policy_cost u v in
          let cost_vu = policy_cost v u in
          let eu c =
            let name = Edits.fresh_iface_name c in
            let c =
              Edits.add_interface c ~name ~addr:ua ~plen:30 ?cost:cost_uv
                ~desc:("to-" ^ v) ()
            in
            Edits.add_igp_network c subnet
          in
          let ev c =
            let name = Edits.fresh_iface_name c in
            let c =
              Edits.add_interface c ~name ~addr:va ~plen:30 ?cost:cost_vu
                ~desc:("to-" ^ u) ()
            in
            Edits.add_igp_network c subnet
          in
          (v, ev) :: (u, eu) :: edits
        end)
      [] fake_edges
  in
  let configs =
    Telemetry.with_span "topo.apply" @@ fun () ->
    Edits.update_all configs (List.rev edits)
  in
  { configs; fake_edges }
