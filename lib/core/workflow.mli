(** The end-to-end ConfMask workflow (Figure 3): preprocess (simulate the
    original), anonymize the topology, fix route equivalence (Algorithm
    1), anonymize routes (Algorithm 2), and optionally run the PII
    scrubbing add-on. *)

type params = {
  k_r : int;  (** topology anonymity parameter (paper default 6) *)
  k_h : int;  (** route anonymity parameter (paper default 2) *)
  noise : float;  (** Algorithm 2 noise coefficient (paper default 0.1) *)
  seed : int;  (** all randomness derives from this seed *)
  pii : bool;  (** run the PII add-on as a final stage *)
  pii_key : Pii.Pan.key option;
      (** key of the prefix-preserving IP map; [None] derives it from
          [seed] via {!Pii.Pan.key_of_int} (the legacy, brute-forceable
          default — fine for tests, not for sharing). Real deployments
          should supply a full 64-bit key ({!Pii.Pan.key_of_string}). The
          serve daemon pins it per tenant so one tenant's address mapping
          is stable across runs and distinct from every other tenant's. *)
  fake_routers : int;
      (** §9 extension: fake routers to add before topology anonymization
          (IGP-only networks; 0 disables) *)
}

val default_params : params
(** [k_r = 6; k_h = 2; noise = 0.1; seed = 42; pii = false;
    pii_key = None; fake_routers = 0] — the paper's default evaluation
    setting. *)

type report = {
  params : params;
  orig_configs : Configlang.Ast.config list;
  anon_configs : Configlang.Ast.config list;
  orig_snapshot : Routing.Simulate.snapshot;
  anon_snapshot : Routing.Simulate.snapshot;
  fake_edges : (string * string) list;
  fake_hosts : (string * string) list;  (** (fake, real) *)
  fake_router_names : string list;  (** §9 extension; empty by default *)
  name_map : (string * string) list;
      (** node correspondence [(original, anonymized)] for every shared
          device. Empty (meaning the identity: the pipeline proper never
          renames) unless the PII add-on ran, in which case it records
          the scrub's device renaming so report consumers — the policy
          verifier above all — can map original-name queries into the
          shared namespace. Hosts whose configs were rewritten appear
          too; fake devices have no original name and are absent. *)
  equiv_iterations : int;
  equiv_filters : int;
  anon_filters_added : int;
  anon_filters_removed : int;
}

val run :
  ?params:params ->
  ?cache:Netcore.Diskcache.t ->
  Configlang.Ast.config list ->
  (report, string) result
(** [cache] plugs a persistent cross-run simulation cache (see
    {!Routing.Engine.open_cache}) into every simulation of the workflow:
    the baseline runs through {!Routing.Engine.of_configs} (bit-identical
    to [Simulate.run], but restorable from disk) and the route-equivalence
    and route-anonymity fixpoints reuse SPF/DV/BGP entries written by
    previous processes. Results are identical with and without it. *)

val run_exn :
  ?params:params ->
  ?cache:Netcore.Diskcache.t ->
  Configlang.Ast.config list ->
  report

val functional_equivalence : report -> bool
(** Definition 3.3 restricted to real hosts: identical delivered path sets
    for every ordered pair of original hosts, all original routers, hosts
    and links still present. *)

val real_hosts : report -> string list
val anon_texts : report -> (string * string) list
(** [(hostname, printed configuration)] for every anonymized device. *)
