(* The process-wide switch for the incremental anonymization fixpoint:
   delta-driven wrong-set scans in Route_equiv.fix, cached and
   pool-parallel reachability walks in Route_anon's repair loop, and the
   grouped one-pass filter application built on Edits.update_all. One
   switch governs them all so that turning it off reproduces the
   previous full-recompute-per-iteration execution exactly — the lever
   the differential fuzz oracle and the anonfix benchmark's baseline
   use, mirroring CONFMASK_KERNELS for the compiled kernels and
   CONFMASK_FEC for the data-plane collapse. *)

let enabled = Atomic.make (Sys.getenv_opt "CONFMASK_ANONFIX" <> Some "legacy")

let incremental () = Atomic.get enabled
let set_incremental b = Atomic.set enabled b

let with_mode m f =
  let saved = Atomic.get enabled in
  Atomic.set enabled (m = `Incremental);
  Fun.protect ~finally:(fun () -> Atomic.set enabled saved) f
