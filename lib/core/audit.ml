open Netcore
module Attack = Redteam.Attack
module Smap = Routing.Device.Smap

type result = Attack.score list

let c_attacks = Telemetry.counter "redteam.attacks"
let c_claims = Telemetry.counter "redteam.claims"
let c_hits = Telemetry.counter "redteam.hits"

let run ?attacks target =
  Telemetry.with_span "redteam.run" @@ fun () ->
  let scores = Redteam.Suite.run_all ?attacks target in
  List.iter
    (fun (s : Attack.score) ->
      Telemetry.incr c_attacks;
      Telemetry.add c_claims s.claims;
      Telemetry.add c_hits s.hits)
    scores;
  scores

(* Ground truth for two bare config directories: when every original
   router name survives into the shared set, the correspondence is the
   identity and the fake edges are exactly the edges the shared topology
   has beyond the original. Renamed (PII-scrubbed) directories carry no
   usable correspondence — attacks still run, ungrounded. *)
let infer_truth ~(orig : Routing.Simulate.snapshot)
    ~(anon : Routing.Simulate.snapshot) =
  let og = Routing.Device.router_graph orig.net in
  let ag = Routing.Device.router_graph anon.net in
  let shared_names =
    List.for_all (fun n -> Graph.mem_node n ag) (Graph.nodes og)
  in
  if shared_names then
    let fake =
      List.filter
        (fun (u, v) -> not (Graph.mem_edge u v og))
        (Graph.edges ag)
    in
    (Some fake, Some [])
  else (None, None)

let check ?attacks ?(key_range = Attack.default_key_range) ?planted_key
    ~orig_configs ~(orig : Routing.Simulate.snapshot) ~anon_configs
    ~(anon : Routing.Simulate.snapshot) () =
  let fake_edges, correspondence = infer_truth ~orig ~anon in
  run ?attacks
    {
      Attack.orig_snapshot = orig;
      orig_configs;
      anon_snapshot = anon;
      anon_configs;
      fake_edges;
      correspondence;
      planted_key;
      key_range;
    }

let of_report ?attacks ?(key_range = Attack.default_key_range)
    (r : Workflow.report) =
  (* From a workflow report the ground truth is exact: the injected edge
     list, the scrub's recorded renaming (empty = identity), and — when
     the PII stage ran — the very key it used. *)
  let planted_key =
    if r.params.pii then
      Some
        (match r.params.pii_key with
        | Some k -> k
        | None -> Pii.Pan.key_of_int r.params.seed)
    else None
  in
  run ?attacks
    {
      Attack.orig_snapshot = r.orig_snapshot;
      orig_configs = r.orig_configs;
      anon_snapshot = r.anon_snapshot;
      anon_configs = r.anon_configs;
      fake_edges = Some r.fake_edges;
      correspondence = Some r.name_map;
      planted_key;
      key_range;
    }

(* ---- JSON rendering ---- *)

let score_json (s : Attack.score) =
  Json.Obj
    [
      ("attack", Json.Str s.attack);
      ("claims", Json.Num (float_of_int s.claims));
      ("hits", Json.Num (float_of_int s.hits));
      ("relevant", Json.Num (float_of_int s.relevant));
      ("precision", Json.Num s.precision);
      ("recall", Json.Num s.recall);
      ("detail", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.detail));
    ]

let json_fields scores = [ ("attacks", Json.Arr (List.map score_json scores)) ]
let to_json scores = Json.Obj (json_fields scores)

(* Fixed field order and %.3f formatting, like [Verify.record_json]: the
   batch resume path compares records byte-for-byte, and every attack is
   deterministic, so re-execution reproduces this string exactly. *)
let record_json scores =
  let one (s : Attack.score) =
    Printf.sprintf
      "{\"attack\": \"%s\", \"claims\": %d, \"hits\": %d, \"relevant\": %d, \
       \"precision\": %.3f, \"recall\": %.3f}"
      s.attack s.claims s.hits s.relevant s.precision s.recall
  in
  "[" ^ String.concat ", " (List.map one scores) ^ "]"
