(** Filter attachment points.

    A deny filter against a destination prefix is attached where the
    offending route enters the router: the inbound IGP distribute-list of
    the interface toward the next hop when the link runs OSPF/RIP, or the
    BGP neighbor's inbound filter when the link is an eBGP adjacency.
    Shared by Algorithm 1, Algorithm 2, and the strawman baselines. *)

open Netcore

type t = Iface of string | Neighbor of Ipv4.t

val point : Routing.Device.network -> string -> string -> t option
(** [point net r nxt]: the attachment on router [r] for routes arriving
    from adjacent router [nxt]; [None] if they are not adjacent. *)

val deny :
  Configlang.Ast.config list ->
  Routing.Device.network ->
  router:string ->
  toward:string ->
  Prefix.t ->
  Configlang.Ast.config list
(** Adds the deny filter for the prefix at [point net router toward]; a
    no-op when the routers are not adjacent. *)

val deny_edit :
  Routing.Device.network ->
  router:string ->
  toward:string ->
  Prefix.t ->
  (string * (Configlang.Ast.config -> Configlang.Ast.config)) option
(** The same filter as {!deny} but as an [(hostname, rewrite)] pair for
    {!Edits.update_all}, so a whole iteration's filters are applied in
    one pass over the config list; [None] when the routers are not
    adjacent (where {!deny} would be a no-op). *)

val deny_at : Configlang.Ast.config -> t -> Prefix.t -> Configlang.Ast.config
val undeny_at : Configlang.Ast.config -> t -> Prefix.t -> Configlang.Ast.config
