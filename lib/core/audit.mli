(** Red-team audit: run the de-anonymization attack suite
    ([Redteam.Suite]) against an original/anonymized network pair and
    report the measured security budget.

    Two entry points mirror {!Verify}: {!check} pairs two simulated
    config sets (the CLI / serve surface — ground truth is inferred, see
    below), {!of_report} scores a {!Workflow.report} (the batch surface —
    ground truth is exact: recorded fake edges, the scrub renaming, and
    the planted PII key). Attacks are deterministic, so the same pair
    always yields byte-identical scores — the batch resume path relies on
    that via {!record_json}. *)

type result = Redteam.Attack.score list

val run :
  ?attacks:string list -> Redteam.Attack.target -> result
(** Run the suite (or a named subset) and bump [redteam.*] telemetry. *)

val check :
  ?attacks:string list ->
  ?key_range:int ->
  ?planted_key:Pii.Pan.key ->
  orig_configs:Configlang.Ast.config list ->
  orig:Routing.Simulate.snapshot ->
  anon_configs:Configlang.Ast.config list ->
  anon:Routing.Simulate.snapshot ->
  unit ->
  result
(** Ground truth is inferred from the pair: when every original router
    name survives into the shared set, the correspondence is the identity
    and fake edges are the shared topology's surplus edges; renamed
    (PII-scrubbed) pairs run ungrounded (scores carry
    [("grounded", 0.)]). *)

val of_report :
  ?attacks:string list -> ?key_range:int -> Workflow.report -> result

val json_fields : result -> (string * Netcore.Json.t) list
val to_json : result -> Netcore.Json.t

val record_json : result -> string
(** Compact fixed-format rendering for batch records ([%.3f] floats,
    fixed field order) — byte-identical across re-executions. *)
