(** Differential policy verification of an anonymization (the Seagull
    consumer, ROADMAP item 2): which operator policies — or, by
    default, the whole mined specification of the original network —
    transfer to the anonymized network.

    Thin glue over {!Spec.Query}: extracts both data planes once
    (through the compiled kernels and the FEC collapse, so the cost is
    O(forwarding classes), not O(host-pairs × policies)), mines the
    default policy set, maps names through the workflow's node
    correspondence, and renders machine-readable reports for the CLI
    ([confmask verify --json]), the serve daemon ([{"op": "verify"}])
    and the per-cell [verification] record of the batch manifest. *)

module Query = Spec.Query

type result = {
  entries : Query.entry list;  (** one per policy, input order *)
  summary : Query.summary;
}

val check :
  ?policies:Query.policy list ->
  ?rename:(string -> string) ->
  orig:Routing.Simulate.snapshot ->
  anon:Routing.Simulate.snapshot ->
  unit ->
  result
(** [policies] defaults to the mined specification of [orig] (every
    policy of which references real nodes only); [rename] (default:
    identity) carries original names into the anonymized namespace.
    Emits a [verify.check] telemetry span and bumps [verify.policies] /
    [verify.lost] counters. *)

val of_report : ?policies:Query.policy list -> Workflow.report -> result
(** {!check} on a workflow report's own snapshots, renaming through its
    [name_map] — for the paper pipeline (no PII) that map is the
    identity; for PII runs it is the scrub's device renaming. *)

val json_fields : ?entries:bool -> result -> (string * Netcore.Json.t) list
(** Summary counts (and with [entries], the full per-policy entry list
    under ["policies"]) as JSON object fields — shared by the CLI's
    [--json] output and the serve [verify] response. *)

val to_json : ?entries:bool -> result -> Netcore.Json.t

val record_json : result -> string
(** The compact summary object embedded as the ["verification"] field
    of a batch cell's [result.json] (fixed field order and float
    formatting, so resumed manifests stay byte-identical). *)
