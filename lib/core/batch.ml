open Netcore

exception Input_error of string

let input_error fmt = Printf.ksprintf (fun m -> raise (Input_error m)) fmt

let classify = function
  | Input_error m -> ("input", m)
  | Sys_error m -> ("input", m)
  | Prefix.Pool_exhausted _ as e -> ("input", Printexc.to_string e)
  | Not_found -> ("input", "not found")
  | e -> ("internal", Printexc.to_string e)

let exit_code = function "input" -> 1 | _ -> 2

let read_config_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    input_error "%s: no such directory" dir;
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cfg")
    |> List.sort String.compare
  in
  if files = [] then input_error "no .cfg files in %s" dir;
  List.map
    (fun f ->
      let path = Filename.concat dir f in
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      match Configlang.Vendor.parse text with
      | Ok c -> c
      | Error m -> input_error "%s: %s" path m)
    files

(* A job's input is named, not a closure, so a job can be shipped over
   the serve wire and re-materialized by the daemon. Loading happens
   inside the job either way, so load failures stay isolated. *)
type source = Catalog of string | Dir of string

let load_source = function
  | Catalog net -> (
      match Netgen.Nets.find net with
      | entry -> Netgen.Nets.configs entry
      | exception Not_found -> input_error "unknown network '%s'" net)
  | Dir dir -> read_config_dir dir

type job = {
  job_id : string;
  job_source : source;
  job_params : Workflow.params;
}

let params_of ~seed ~noise ~k_r ~k_h =
  { Workflow.default_params with k_r; k_h; seed; noise }

let combos ~ids ~k_rs ~k_hs =
  List.concat_map
    (fun id ->
      List.concat_map
        (fun k_r -> List.map (fun k_h -> (id, k_r, k_h)) k_hs)
        k_rs)
    ids

let grid_jobs ?(seed = 42) ?(noise = 0.1) ~nets ~k_rs ~k_hs () =
  List.map
    (fun (net, k_r, k_h) ->
      {
        job_id = Printf.sprintf "%s-kr%d-kh%d" net k_r k_h;
        job_source = Catalog net;
        job_params = params_of ~seed ~noise ~k_r ~k_h;
      })
    (combos ~ids:nets ~k_rs ~k_hs)

let dir_jobs ?(seed = 42) ?(noise = 0.1) ~dirs ~k_rs ~k_hs () =
  List.map
    (fun (dir, k_r, k_h) ->
      {
        job_id =
          Printf.sprintf "%s-kr%d-kh%d" (Filename.basename dir) k_r k_h;
        job_source = Dir dir;
        job_params = params_of ~seed ~noise ~k_r ~k_h;
      })
    (combos ~ids:dirs ~k_rs ~k_hs)

(* ---- JSON plumbing (same dialect as Telemetry.report_json) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ---- filesystem plumbing ---- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let manifest_path out = Filename.concat out "manifest.json"
let result_path out id = Filename.concat (Filename.concat out id) "result.json"

(* ---- per-job execution ---- *)

(* Counter deltas around one job. The counters are process-global, so
   with concurrent jobs a delta also picks up overlapping work; it is
   exact under [--jobs 1] and directionally useful otherwise (the
   manifest's purpose — showing that a warm cache skips simulations —
   survives the attribution blur). *)
let counter_delta before after =
  let base = List.to_seq before |> Hashtbl.of_seq in
  List.filter_map
    (fun (name, v) ->
      let d = v - Option.value ~default:0 (Hashtbl.find_opt base name) in
      if d <> 0 then Some (name, d) else None)
    after

let ok_record ~id ~seconds ~digest ~deltas (r : Workflow.report) =
  let telemetry =
    deltas
    |> List.map (fun (n, v) -> Printf.sprintf "\"%s\": %d" (json_escape n) v)
    |> String.concat ", "
  in
  (* The per-cell verification record: how much of the original
     network's mined specification transfers to this cell's anonymized
     output. Deterministic given the seeded workflow, so resumed
     manifests reproduce it byte for byte. *)
  let verification = Verify.record_json (Verify.of_report r) in
  (* And the red-team record: the measured security budget of this cell
     — what each de-anonymization attack recovered. Attacks are
     deterministic, so this too is byte-stable under --resume. *)
  let redteam = Audit.record_json (Audit.of_report r) in
  Printf.sprintf
    "{\"id\": \"%s\", \"status\": \"ok\", \"seconds\": %.3f, \
     \"fake_links\": %d, \"fake_hosts\": %d, \"fake_routers\": %d, \
     \"equiv_iterations\": %d, \"filters_added\": %d, \
     \"filters_removed\": %d, \"functional_equivalence\": %b, \
     \"verification\": %s, \"redteam\": %s, \"digest\": \"%s\", \
     \"telemetry\": {%s}}"
    (json_escape id) seconds
    (List.length r.fake_edges)
    (List.length r.fake_hosts)
    (List.length r.fake_router_names)
    r.equiv_iterations
    (r.equiv_filters + r.anon_filters_added)
    r.anon_filters_removed
    (Workflow.functional_equivalence r)
    verification redteam digest telemetry

let error_record ~id ~seconds ~cls ~msg =
  Printf.sprintf
    "{\"id\": \"%s\", \"status\": \"error\", \"class\": \"%s\", \
     \"error\": \"%s\", \"seconds\": %.3f}"
    (json_escape id) cls (json_escape msg) seconds

let pending_record ~id =
  Printf.sprintf "{\"id\": \"%s\", \"status\": \"pending\"}" (json_escape id)

(* A substring check is all record inspection needs: every record was
   written by this program, and anything unrecognizable must be treated
   as "not done". *)
let has_marker record marker =
  let lm = String.length marker and lr = String.length record in
  let rec scan i =
    i + lm <= lr && (String.sub record i lm = marker || scan (i + 1))
  in
  scan 0

let reusable_record out id =
  let path = result_path out id in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | record when has_marker record "\"status\": \"ok\"" -> Some record
    | _ -> None
    | exception Sys_error _ -> None

let write_anon_configs ~format dir (r : Workflow.report) =
  mkdir_p dir;
  let printer = Configlang.Vendor.print format in
  List.iter
    (fun (c : Configlang.Ast.config) ->
      write_file (Filename.concat dir (c.hostname ^ ".cfg")) (printer c))
    r.anon_configs

let execute ~out ~cache ~format job =
  let dir = Filename.concat out job.job_id in
  mkdir_p dir;
  let before = Telemetry.counters () in
  let t0 = Clock.now () in
  let record =
    match
      let configs = load_source job.job_source in
      Workflow.run ~params:job.job_params ?cache configs
    with
    | Ok r ->
        let seconds = Clock.elapsed t0 in
        let deltas = counter_delta before (Telemetry.counters ()) in
        write_anon_configs ~format (Filename.concat dir "configs") r;
        let digest =
          Digest.to_hex
            (Digest.string (String.concat "\x00" (List.map snd (Workflow.anon_texts r))))
        in
        ok_record ~id:job.job_id ~seconds ~digest ~deltas r
    | Error msg ->
        let seconds = Clock.elapsed t0 in
        error_record ~id:job.job_id ~seconds ~cls:"input" ~msg
    | exception e ->
        let seconds = Clock.elapsed t0 in
        let cls, msg = classify e in
        error_record ~id:job.job_id ~seconds ~cls ~msg
  in
  write_file (result_path out job.job_id) record;
  record

(* ---- running a job through a live serve daemon ---- *)

let format_name = function
  | Configlang.Vendor.Cisco -> "cisco"
  | Configlang.Vendor.Junos -> "junos"

let job_request ?tenant ~out ~format job =
  let p = job.job_params in
  let source =
    match job.job_source with
    | Catalog net -> Json.Obj [ ("catalog", Json.Str net) ]
    | Dir dir -> Json.Obj [ ("dir", Json.Str dir) ]
  in
  let fields =
    [
      ("op", Json.Str "job");
      ("id", Json.Str job.job_id);
      ("source", source);
      ("kr", Json.Num (float_of_int p.k_r));
      ("kh", Json.Num (float_of_int p.k_h));
      ("seed", Json.Num (float_of_int p.seed));
      ("noise", Json.Num p.noise);
      ("pii", Json.Bool p.pii);
      ("fake_routers", Json.Num (float_of_int p.fake_routers));
      ("out", Json.Str out);
      ("format", Json.Str (format_name format));
    ]
    @ (match p.pii_key with
      (* Full 64-bit keys do not survive a JSON number (53 mantissa
         bits), so the wire form is the canonical hex string. *)
      | Some k -> [ ("pii_key", Json.Str (Pii.Pan.key_to_string k)) ]
      | None -> [])
    @ match tenant with Some t -> [ ("tenant", Json.Str t) ] | None -> []
  in
  Json.to_string (Json.Obj fields)

(* Admission-control pushback: a queue-full rejection is the daemon
   telling us to slow down, so back off briefly and retry; anything
   else is final for this job. *)
let remote_attempts = 240
let remote_backoff_s = 0.25

let execute_remote ~server ?tenant ~out ~format job =
  let req = job_request ?tenant ~out ~format job in
  let rec attempt n =
    let resp =
      try Server.request server req
      with Unix.Unix_error (e, _, _) ->
        input_error "serve daemon at %s unreachable: %s"
          (Server.addr_to_string server) (Unix.error_message e)
      | End_of_file | Sys_error _ ->
        input_error "serve daemon at %s hung up mid-request"
          (Server.addr_to_string server)
    in
    match Json.parse resp with
    | Error m -> input_error "unparsable serve response: %s" m
    | Ok v -> (
        let err = Option.bind (Json.member "error" v) Json.str in
        match (Option.bind (Json.member "ok" v) Json.bool, err) with
        | Some true, _ -> (
            match Option.bind (Json.member "record" v) Json.str with
            | Some record -> record
            | None -> input_error "serve response carries no record")
        | _, Some "queue_full" when n < remote_attempts ->
            Unix.sleepf remote_backoff_s;
            attempt (n + 1)
        | _, Some e ->
            let detail =
              match Option.bind (Json.member "detail" v) Json.str with
              | Some d -> ": " ^ d
              | None -> ""
            in
            input_error "serve daemon rejected job %s: %s%s" job.job_id e detail
        | _, None -> input_error "malformed serve response: %s" resp)
  in
  attempt 0

(* The daemon writes result.json and the configs itself (same [execute]
   code path, same bytes); the client still isolates failures into an
   error record so one dead job cannot kill the grid. *)
let process_remote ~server ?tenant ~out ~format job =
  let t0 = Clock.now () in
  match execute_remote ~server ?tenant ~out ~format job with
  | record -> record
  | exception e ->
      let cls, msg = classify e in
      let record =
        error_record ~id:job.job_id ~seconds:(Clock.elapsed t0) ~cls ~msg
      in
      mkdir_p (Filename.concat out job.job_id);
      write_file (result_path out job.job_id) record;
      record

(* ---- the driver ---- *)

type outcome = {
  records : (string * string) list;
  ok : int;
  errors : int;
  pending : int;
  reused : int;
  exit_code : int;
}

let status_of record =
  if has_marker record "\"status\": \"ok\"" then `Ok
  else if has_marker record "\"status\": \"pending\"" then `Pending
  else `Error

let record_exit_code record =
  match status_of record with
  | `Ok | `Pending -> 0
  | `Error -> if has_marker record "\"class\": \"input\"" then 1 else 2

let run ?pool ?cache ?server ?tenant ?(resume = false) ?limit
    ?(format = Configlang.Vendor.Cisco) ~out jobs =
  (* The per-job records embed counter deltas; without telemetry they
     would all read empty, which defeats the manifest's purpose. *)
  Telemetry.set_enabled true;
  let ids = List.map (fun j -> j.job_id) jobs in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then input_error "duplicate job id '%s'" id;
      Hashtbl.add seen id ())
    ids;
  mkdir_p out;
  (* The daemon re-materializes sources and writes results relative to
     its own cwd; absolute paths make the request location-independent. *)
  let absolutize p =
    if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
  in
  let out = if server = None then out else absolutize out in
  let jobs =
    if server = None then jobs
    else
      List.map
        (fun j ->
          match j.job_source with
          | Dir d -> { j with job_source = Dir (absolutize d) }
          | Catalog _ -> j)
        jobs
  in
  let executed = Atomic.make 0 in
  let reused = Atomic.make 0 in
  let process job =
    match if resume then reusable_record out job.job_id else None with
    | Some record ->
        Atomic.incr reused;
        (job.job_id, record)
    | None -> (
        let slot = Atomic.fetch_and_add executed 1 in
        if match limit with Some l -> slot >= l | None -> false then
          (job.job_id, pending_record ~id:job.job_id)
        else
          match server with
          | Some server ->
              (job.job_id, process_remote ~server ?tenant ~out ~format job)
          | None -> (job.job_id, execute ~out ~cache ~format job))
  in
  let records = Pool.parallel_map ?pool process jobs in
  let count f = List.length (List.filter f records) in
  let ok = count (fun (_, r) -> status_of r = `Ok) in
  let pending = count (fun (_, r) -> status_of r = `Pending) in
  let errors = List.length records - ok - pending in
  let exit_code =
    List.fold_left (fun acc (_, r) -> max acc (record_exit_code r)) 0 records
  in
  let manifest =
    Printf.sprintf
      "{\n\"jobs\": [\n%s\n],\n\"ok\": %d,\n\"errors\": %d,\n\"pending\": %d\n}\n"
      (String.concat ",\n" (List.map snd records))
      ok errors pending
  in
  write_file (manifest_path out) manifest;
  { records; ok; errors; pending; reused = Atomic.get reused; exit_code }
