open Netcore

exception Input_error of string

let input_error fmt = Printf.ksprintf (fun m -> raise (Input_error m)) fmt

let classify = function
  | Input_error m -> ("input", m)
  | Sys_error m -> ("input", m)
  | Prefix.Pool_exhausted _ as e -> ("input", Printexc.to_string e)
  | Not_found -> ("input", "not found")
  | e -> ("internal", Printexc.to_string e)

let exit_code = function "input" -> 1 | _ -> 2

let read_config_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    input_error "%s: no such directory" dir;
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cfg")
    |> List.sort String.compare
  in
  if files = [] then input_error "no .cfg files in %s" dir;
  List.map
    (fun f ->
      let path = Filename.concat dir f in
      let ic = open_in path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      match Configlang.Vendor.parse text with
      | Ok c -> c
      | Error m -> input_error "%s: %s" path m)
    files

type job = {
  job_id : string;
  job_load : unit -> Configlang.Ast.config list;
  job_params : Workflow.params;
}

let params_of ~seed ~noise ~k_r ~k_h =
  { Workflow.default_params with k_r; k_h; seed; noise }

let combos ~ids ~k_rs ~k_hs =
  List.concat_map
    (fun id ->
      List.concat_map
        (fun k_r -> List.map (fun k_h -> (id, k_r, k_h)) k_hs)
        k_rs)
    ids

let grid_jobs ?(seed = 42) ?(noise = 0.1) ~nets ~k_rs ~k_hs () =
  List.map
    (fun (net, k_r, k_h) ->
      {
        job_id = Printf.sprintf "%s-kr%d-kh%d" net k_r k_h;
        job_load =
          (fun () ->
            match Netgen.Nets.find net with
            | entry -> Netgen.Nets.configs entry
            | exception Not_found -> input_error "unknown network '%s'" net);
        job_params = params_of ~seed ~noise ~k_r ~k_h;
      })
    (combos ~ids:nets ~k_rs ~k_hs)

let dir_jobs ?(seed = 42) ?(noise = 0.1) ~dirs ~k_rs ~k_hs () =
  List.map
    (fun (dir, k_r, k_h) ->
      {
        job_id =
          Printf.sprintf "%s-kr%d-kh%d" (Filename.basename dir) k_r k_h;
        job_load = (fun () -> read_config_dir dir);
        job_params = params_of ~seed ~noise ~k_r ~k_h;
      })
    (combos ~ids:dirs ~k_rs ~k_hs)

(* ---- JSON plumbing (same dialect as Telemetry.report_json) ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ---- filesystem plumbing ---- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let manifest_path out = Filename.concat out "manifest.json"
let result_path out id = Filename.concat (Filename.concat out id) "result.json"

(* ---- per-job execution ---- *)

(* Counter deltas around one job. The counters are process-global, so
   with concurrent jobs a delta also picks up overlapping work; it is
   exact under [--jobs 1] and directionally useful otherwise (the
   manifest's purpose — showing that a warm cache skips simulations —
   survives the attribution blur). *)
let counter_delta before after =
  let base = List.to_seq before |> Hashtbl.of_seq in
  List.filter_map
    (fun (name, v) ->
      let d = v - Option.value ~default:0 (Hashtbl.find_opt base name) in
      if d <> 0 then Some (name, d) else None)
    after

let ok_record ~id ~seconds ~digest ~deltas (r : Workflow.report) =
  let telemetry =
    deltas
    |> List.map (fun (n, v) -> Printf.sprintf "\"%s\": %d" (json_escape n) v)
    |> String.concat ", "
  in
  Printf.sprintf
    "{\"id\": \"%s\", \"status\": \"ok\", \"seconds\": %.3f, \
     \"fake_links\": %d, \"fake_hosts\": %d, \"fake_routers\": %d, \
     \"equiv_iterations\": %d, \"filters_added\": %d, \
     \"filters_removed\": %d, \"functional_equivalence\": %b, \
     \"digest\": \"%s\", \"telemetry\": {%s}}"
    (json_escape id) seconds
    (List.length r.fake_edges)
    (List.length r.fake_hosts)
    (List.length r.fake_router_names)
    r.equiv_iterations
    (r.equiv_filters + r.anon_filters_added)
    r.anon_filters_removed
    (Workflow.functional_equivalence r)
    digest telemetry

let error_record ~id ~seconds ~cls ~msg =
  Printf.sprintf
    "{\"id\": \"%s\", \"status\": \"error\", \"class\": \"%s\", \
     \"error\": \"%s\", \"seconds\": %.3f}"
    (json_escape id) cls (json_escape msg) seconds

let pending_record ~id =
  Printf.sprintf "{\"id\": \"%s\", \"status\": \"pending\"}" (json_escape id)

(* A substring check is all record inspection needs: every record was
   written by this program, and anything unrecognizable must be treated
   as "not done". *)
let has_marker record marker =
  let lm = String.length marker and lr = String.length record in
  let rec scan i =
    i + lm <= lr && (String.sub record i lm = marker || scan (i + 1))
  in
  scan 0

let reusable_record out id =
  let path = result_path out id in
  if not (Sys.file_exists path) then None
  else
    match read_file path with
    | record when has_marker record "\"status\": \"ok\"" -> Some record
    | _ -> None
    | exception Sys_error _ -> None

let write_anon_configs ~format dir (r : Workflow.report) =
  mkdir_p dir;
  let printer = Configlang.Vendor.print format in
  List.iter
    (fun (c : Configlang.Ast.config) ->
      write_file (Filename.concat dir (c.hostname ^ ".cfg")) (printer c))
    r.anon_configs

let execute ~out ~cache ~format job =
  let dir = Filename.concat out job.job_id in
  mkdir_p dir;
  let before = Telemetry.counters () in
  let t0 = Unix.gettimeofday () in
  let record =
    match
      let configs = job.job_load () in
      Workflow.run ~params:job.job_params ?cache configs
    with
    | Ok r ->
        let seconds = Unix.gettimeofday () -. t0 in
        let deltas = counter_delta before (Telemetry.counters ()) in
        write_anon_configs ~format (Filename.concat dir "configs") r;
        let digest =
          Digest.to_hex
            (Digest.string (String.concat "\x00" (List.map snd (Workflow.anon_texts r))))
        in
        ok_record ~id:job.job_id ~seconds ~digest ~deltas r
    | Error msg ->
        let seconds = Unix.gettimeofday () -. t0 in
        error_record ~id:job.job_id ~seconds ~cls:"input" ~msg
    | exception e ->
        let seconds = Unix.gettimeofday () -. t0 in
        let cls, msg = classify e in
        error_record ~id:job.job_id ~seconds ~cls ~msg
  in
  write_file (result_path out job.job_id) record;
  record

(* ---- the driver ---- *)

type outcome = {
  records : (string * string) list;
  ok : int;
  errors : int;
  pending : int;
  reused : int;
  exit_code : int;
}

let status_of record =
  if has_marker record "\"status\": \"ok\"" then `Ok
  else if has_marker record "\"status\": \"pending\"" then `Pending
  else `Error

let record_exit_code record =
  match status_of record with
  | `Ok | `Pending -> 0
  | `Error -> if has_marker record "\"class\": \"input\"" then 1 else 2

let run ?pool ?cache ?(resume = false) ?limit ?(format = Configlang.Vendor.Cisco)
    ~out jobs =
  (* The per-job records embed counter deltas; without telemetry they
     would all read empty, which defeats the manifest's purpose. *)
  Telemetry.set_enabled true;
  let ids = List.map (fun j -> j.job_id) jobs in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then input_error "duplicate job id '%s'" id;
      Hashtbl.add seen id ())
    ids;
  mkdir_p out;
  let executed = Atomic.make 0 in
  let reused = Atomic.make 0 in
  let process job =
    match if resume then reusable_record out job.job_id else None with
    | Some record ->
        Atomic.incr reused;
        (job.job_id, record)
    | None ->
        let slot = Atomic.fetch_and_add executed 1 in
        if match limit with Some l -> slot >= l | None -> false then
          (job.job_id, pending_record ~id:job.job_id)
        else (job.job_id, execute ~out ~cache ~format job)
  in
  let records = Pool.parallel_map ?pool process jobs in
  let count f = List.length (List.filter f records) in
  let ok = count (fun (_, r) -> status_of r = `Ok) in
  let pending = count (fun (_, r) -> status_of r = `Pending) in
  let errors = List.length records - ok - pending in
  let exit_code =
    List.fold_left (fun acc (_, r) -> max acc (record_exit_code r)) 0 records
  in
  let manifest =
    Printf.sprintf
      "{\n\"jobs\": [\n%s\n],\n\"ok\": %d,\n\"errors\": %d,\n\"pending\": %d\n}\n"
      (String.concat ",\n" (List.map snd records))
      ok errors pending
  in
  write_file (manifest_path out) manifest;
  { records; ok; errors; pending; reused = Atomic.get reused; exit_code }
