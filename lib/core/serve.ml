open Netcore

type config = {
  addr : Server.addr;
  queue_cap : int;
  workers : int;
  cache : Diskcache.t option;
  tenants : (string * Pii.Pan.key) list;
}

let default_queue_cap = 64
let default_workers = 1

let c_jobs = Telemetry.counter "serve.jobs"

(* ---- response builders ---- *)

let ok fields = Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))

let error ?detail kind =
  Json.to_string
    (Json.Obj
       ([ ("ok", Json.Bool false); ("error", Json.Str kind) ]
       @ match detail with Some d -> [ ("detail", Json.Str d) ] | None -> []))

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

(* ---- request field access ---- *)

let field req name = Json.member name req
let str_field req name = Option.bind (field req name) Json.str
let int_field req name = Option.bind (field req name) Json.int
let num_field req name = Option.bind (field req name) Json.num
let bool_field req name = Option.bind (field req name) Json.bool

let require what = function Some v -> v | None -> bad "missing field '%s'" what

(* A PII key arrives either as a legacy small integer (derived via
   [Pan.key_of_int] — brute-forceable, kept for compatibility and tests)
   or as a full 64-bit hex string ("0xdeadbeefcafef00d"). *)
let key_field req name =
  match field req name with
  | None -> None
  | Some (Json.Num f) when Float.is_integer f ->
      Some (Pii.Pan.key_of_int (int_of_float f))
  | Some (Json.Str s) -> (
      match Pii.Pan.key_of_string s with
      | Ok k -> Some k
      | Error m -> bad "field '%s': %s" name m)
  | Some _ -> bad "field '%s' must be an int or a hex-string key" name

(* ---- ops ---- *)

let stats_response server =
  let gauges =
    match server with
    | Some s ->
        let st = Server.stats s in
        [
          ("uptime_s", Json.Num st.Server.uptime_s);
          ("accepted", Json.Num (float_of_int st.accepted));
          ("served", Json.Num (float_of_int st.served));
          ("rejected_full", Json.Num (float_of_int st.rejected_full));
          ("rejected_draining", Json.Num (float_of_int st.rejected_draining));
          ("queue_depth", Json.Num (float_of_int st.queue_depth));
          ("in_flight", Json.Num (float_of_int st.in_flight));
          ("queue_cap", Json.Num (float_of_int st.queue_cap));
          ("workers", Json.Num (float_of_int st.workers));
          ("connections", Json.Num (float_of_int st.connections));
        ]
    | None -> []
  in
  let counters =
    Json.Obj
      (List.map
         (fun (name, v) -> (name, Json.Num (float_of_int v)))
         (Telemetry.counters ()))
  in
  let spans =
    Json.Arr
      (List.map
         (fun (path, count, seconds) ->
           Json.Obj
             [
               ("path", Json.Str path);
               ("count", Json.Num (float_of_int count));
               ("seconds", Json.Num seconds);
             ])
         (Telemetry.spans ()))
  in
  ok
    ([ ("op", Json.Str "stats") ]
    @ gauges
    @ [ ("counters", counters); ("spans", spans) ])

let source_of req =
  match field req "source" with
  | None -> bad "missing field 'source'"
  | Some s -> (
      match
        (Option.bind (Json.member "catalog" s) Json.str,
         Option.bind (Json.member "dir" s) Json.str)
      with
      | Some net, None -> Batch.Catalog net
      | None, Some dir -> Batch.Dir dir
      | _ -> bad "source must be {\"catalog\": ID} or {\"dir\": PATH}")

let format_of req =
  match str_field req "format" with
  | None | Some "cisco" -> Configlang.Vendor.Cisco
  | Some "junos" -> Configlang.Vendor.Junos
  | Some f -> bad "unknown format '%s'" f

let job_response ~cache ~tenants req =
  let d = Workflow.default_params in
  let id = require "id" (str_field req "id") in
  let out = require "out" (str_field req "out") in
  let pii_key =
    (* A tenant name pins the prefix-preserving scrub key daemon-side;
       an explicit pii_key (tests, single-tenant setups) also works.
       Tenant wins when both are given. *)
    match str_field req "tenant" with
    | Some t -> (
        match List.assoc_opt t tenants with
        | Some key -> Some key
        | None -> raise (Bad_request (Printf.sprintf "unknown tenant '%s'" t)))
    | None -> key_field req "pii_key"
  in
  let job =
    {
      Batch.job_id = id;
      job_source = source_of req;
      job_params =
        {
          Workflow.k_r = Option.value ~default:d.k_r (int_field req "kr");
          k_h = Option.value ~default:d.k_h (int_field req "kh");
          seed = Option.value ~default:d.seed (int_field req "seed");
          noise = Option.value ~default:d.noise (num_field req "noise");
          pii = Option.value ~default:d.pii (bool_field req "pii");
          pii_key;
          fake_routers =
            Option.value ~default:d.fake_routers (int_field req "fake_routers");
        };
    }
  in
  Telemetry.incr c_jobs;
  (* Same code path as the local batch driver — that, plus the seeded
     determinism of the workflow, is the byte-compatibility argument. *)
  let record = Batch.execute ~out ~cache ~format:(format_of req) job in
  ok [ ("op", Json.Str "job"); ("id", Json.Str id); ("record", Json.Str record) ]

let read_file path =
  let ic = try open_in_bin path with Sys_error m -> bad "%s" m in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Differential policy verification of two shared config directories —
   the recipient-side consumer of an anonymized network. Policies come
   inline (["policies"]: the text/JSON policy format as a string), from
   a daemon-readable file (["policies_file"]), or default to the mined
   specification of the original directory. *)
let verify_response req =
  let orig_dir = require "orig_dir" (str_field req "orig_dir") in
  let anon_dir = require "anon_dir" (str_field req "anon_dir") in
  let policies =
    let parsed ~what text =
      match Spec.Query.parse text with
      | Ok ps -> Some ps
      | Error m -> bad "%s: %s" what m
    in
    match (str_field req "policies", str_field req "policies_file") with
    | Some text, _ -> parsed ~what:"policies" text
    | None, Some file -> parsed ~what:file (read_file file)
    | None, None -> None
  in
  let entries = Option.value ~default:false (bool_field req "entries") in
  let load dir =
    match
      try Routing.Simulate.run (Batch.read_config_dir dir)
      with Batch.Input_error m -> bad "%s" m
    with
    | Ok snap -> snap
    | Error m -> bad "%s: simulation failed: %s" dir m
  in
  let orig = load orig_dir and anon = load anon_dir in
  let v = Verify.check ?policies ~orig ~anon () in
  ok (("op", Json.Str "verify") :: Verify.json_fields ~entries v)

(* Red-team audit of two shared config directories: run the
   de-anonymization attack suite against the pair and report the
   measured security budget. Ground truth (fake edges, identity
   correspondence) is inferred when device names are shared; a planted
   key for grounding the brute-force attack may come from the tenant
   table or an explicit field. *)
let redteam_response ~tenants req =
  let orig_dir = require "orig_dir" (str_field req "orig_dir") in
  let anon_dir = require "anon_dir" (str_field req "anon_dir") in
  let attacks =
    match field req "attacks" with
    | None -> None
    | Some (Json.Arr l) ->
        Some
          (List.map
             (function Json.Str s -> s | _ -> bad "attacks must be strings")
             l)
    | Some _ -> bad "field 'attacks' must be an array of attack names"
  in
  let key_range = int_field req "key_range" in
  let planted_key =
    match str_field req "tenant" with
    | Some t -> (
        match List.assoc_opt t tenants with
        | Some key -> Some key
        | None -> raise (Bad_request (Printf.sprintf "unknown tenant '%s'" t)))
    | None -> key_field req "pii_key"
  in
  let load dir =
    match
      let configs = try Batch.read_config_dir dir
        with Batch.Input_error m -> bad "%s" m
      in
      (configs, Routing.Simulate.run configs)
    with
    | configs, Ok snap -> (configs, snap)
    | _, Error m -> bad "%s: simulation failed: %s" dir m
  in
  let orig_configs, orig = load orig_dir in
  let anon_configs, anon = load anon_dir in
  let scores =
    Audit.check ?attacks ?key_range ?planted_key ~orig_configs ~orig
      ~anon_configs ~anon ()
  in
  ok (("op", Json.Str "redteam") :: Audit.json_fields scores)

let handle ~server ~cache ~tenants line =
  match Json.parse line with
  | Error m -> error ~detail:m "bad_request"
  | Ok req -> (
      match
        match str_field req "op" with
        | None -> bad "missing field 'op'"
        | Some "ping" -> ok [ ("op", Json.Str "ping") ]
        | Some "stats" -> stats_response !server
        | Some "job" -> job_response ~cache ~tenants req
        | Some "verify" -> verify_response req
        | Some "redteam" -> redteam_response ~tenants req
        | Some "sleep" ->
            let s =
              Float.min 10.0
                (Float.max 0.0
                   (Option.value ~default:0.1 (num_field req "seconds")))
            in
            Thread.delay s;
            ok [ ("op", Json.Str "sleep"); ("seconds", Json.Num s) ]
        | Some "shutdown" ->
            (match !server with
            | Some s -> Server.initiate_shutdown s
            | None -> ());
            ok [ ("op", Json.Str "shutdown"); ("draining", Json.Bool true) ]
        | Some op -> bad "unknown op '%s'" op
      with
      | resp -> resp
      | exception Bad_request m -> (
          match m with
          | _ when String.length m >= 15
                   && String.equal (String.sub m 0 15) "unknown tenant " ->
              error ~detail:m "unknown_tenant"
          | _ -> error ~detail:m "bad_request"))

let rejected = function
  | Server.Queue_full -> error "queue_full"
  | Server.Draining -> error "draining"

let on_error e = error ~detail:(Printexc.to_string e) "internal"

let create cfg =
  (* The stats op must see populated counters and spans. *)
  Telemetry.set_enabled true;
  let server = ref None in
  let t =
    Server.create
      {
        Server.addr = cfg.addr;
        queue_cap = cfg.queue_cap;
        workers = cfg.workers;
        handler =
          (fun line ->
            handle ~server ~cache:cfg.cache ~tenants:cfg.tenants line);
        rejected;
        on_error;
      }
  in
  server := Some t;
  t
