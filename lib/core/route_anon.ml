open Netcore
module Ast = Configlang.Ast
module Smap = Routing.Device.Smap

type outcome = {
  configs : Ast.config list;
  fake_hosts : (string * string) list;
  filters_added : int;
  filters_removed : int;
  engine : Routing.Engine.t;
}

let default_noise = 0.1

let c_iterations = Telemetry.counter "anon.iterations"
let c_fake_hosts = Telemetry.counter "anon.fake_hosts"
let c_filters_added = Telemetry.counter "anon.filters_added"
let c_filters_removed = Telemetry.counter "anon.filters_removed"

(* A filter planned/applied by this algorithm, remembered for rollback. *)
type filter = {
  f_router : string;
  f_prefix : Prefix.t;
  f_attach : Attach.t;
}

let fresh_host_name existing =
  let taken = List.map (fun (c : Ast.config) -> c.hostname) existing in
  let rec search k =
    let candidate = Printf.sprintf "fh%d" k in
    if List.mem candidate taken then search (k + 1) else candidate
  in
  search 1

let add_fake_hosts ~k_h configs (snap : Routing.Simulate.snapshot) =
  let alloc = Prefix.alloc_create ~avoid:(Edits.used_prefixes configs) () in
  let hosts = Smap.bindings snap.net.hosts in
  List.fold_left
    (fun (configs, fakes) (hname, _) ->
      let ingress, _ = List.hd (Smap.find hname snap.net.attachments) in
      let real_config =
        List.find (fun (c : Ast.config) -> c.hostname = hname) configs
      in
      let rec copies configs fakes i =
        if i >= k_h then (configs, fakes)
        else begin
          let subnet = Prefix.alloc_fresh alloc ~len:24 in
          let gw = Prefix.host subnet 1 and ha = Prefix.host subnet 10 in
          let fake_name = fresh_host_name configs in
          (* Same configuration as the original host except hostname and
             addresses (§5.3). *)
          let fake_config =
            {
              real_config with
              Ast.hostname = fake_name;
              interfaces =
                List.map
                  (fun (i : Ast.interface) ->
                    match i.if_address with
                    | Some (_, _) -> { i with if_address = Some (ha, 24) }
                    | None -> i)
                  real_config.interfaces;
              default_gateway = Some gw;
            }
          in
          let configs =
            Edits.update configs ingress (fun c ->
                let name = Edits.fresh_iface_name c in
                let c =
                  Edits.add_interface c ~name ~addr:gw ~plen:24
                    ~desc:("to-" ^ fake_name) ()
                in
                let c = Edits.add_igp_network c subnet in
                Edits.add_bgp_network c subnet)
          in
          copies (configs @ [ fake_config ]) ((fake_name, hname) :: fakes) (i + 1)
        end
      in
      copies configs fakes 1)
    (configs, []) hosts

let apply_one configs f =
  Edits.update configs f.f_router (fun c -> Attach.deny_at c f.f_attach f.f_prefix)

let remove_one configs f =
  Edits.update configs f.f_router (fun c -> Attach.undeny_at c f.f_attach f.f_prefix)

module Sset = Set.Make (String)

(* Routers that can deliver traffic for [fp]: walk every router's FIB and
   check that all ECMP branches reach a router owning the prefix. Walks
   share a memo table — on loop-free FIBs (the common case; IGP metrics
   strictly decrease along next hops) every router is explored once
   instead of once per ECMP branch per start router. A result is
   memoized only when its computation never hit the cycle check, i.e.
   never depended on the path taken to reach it. *)
let reachable_routers (snap : Routing.Simulate.snapshot) fp =
  let owners =
    Smap.fold
      (fun rname (r : Routing.Device.router) acc ->
        if List.exists (fun i -> Prefix.equal (Routing.Device.ifc_prefix i) fp) r.r_ifaces
        then Sset.add rname acc
        else acc)
      snap.net.routers Sset.empty
  in
  let probe = Prefix.host fp 10 in
  let memo : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  (* Returns (delivers, pure); [pure] marks a result independent of the
     [visiting] path, hence safe to memoize. *)
  let rec delivers r visiting =
    match Hashtbl.find_opt memo r with
    | Some b -> (b, true)
    | None ->
        if Sset.mem r owners then begin
          Hashtbl.replace memo r true;
          (true, true)
        end
        else if Sset.mem r visiting then (false, false)
        else begin
          let b, pure =
            match Smap.find_opt r snap.fibs with
            | None -> (false, true)
            | Some fib -> (
                match Routing.Fib.lookup fib probe with
                | None -> (false, true)
                | Some route when route.rt_nexthops = [] -> (false, true)
                | Some route ->
                    let visiting = Sset.add r visiting in
                    List.fold_left
                      (fun (ok, pure) (nh : Routing.Fib.nexthop) ->
                        if not ok then (ok, pure)
                        else
                          let b, p = delivers nh.nh_router visiting in
                          (b, pure && p))
                      (true, true) route.rt_nexthops)
          in
          if pure then Hashtbl.replace memo r b;
          (b, pure)
        end
  in
  Smap.fold
    (fun rname _ acc ->
      if fst (delivers rname Sset.empty) then rname :: acc else acc)
    snap.net.routers []
  |> List.sort String.compare

let anonymize ~rng ~k_h ?(p = default_noise) ?engine configs =
  Telemetry.with_span "anon.anonymize" @@ fun () ->
  let initial =
    match engine with
    | Some e -> Routing.Engine.apply_edit e configs
    | None -> Routing.Engine.of_configs configs
  in
  match initial with
  | Error m -> Error ("route_anon: baseline simulation failed: " ^ m)
  | Ok eng0 -> (
      let snap0 = Routing.Engine.snapshot eng0 in
      let configs, fake_hosts = add_fake_hosts ~k_h configs snap0 in
      Telemetry.add c_fake_hosts (List.length fake_hosts);
      if fake_hosts = [] then
        Ok
          {
            configs;
            fake_hosts = [];
            filters_added = 0;
            filters_removed = 0;
            engine = eng0;
          }
      else
        match Routing.Engine.apply_edit eng0 configs with
        | Error m -> Error ("route_anon: fake-host simulation failed: " ^ m)
        | Ok eng ->
            let snap = Routing.Engine.snapshot eng in
            let fake_prefixes =
              List.filter_map
                (fun (fh, _) ->
                  Option.map Routing.Device.host_prefix
                    (Smap.find_opt fh snap.net.hosts))
                fake_hosts
            in
            (* Baseline reachability per fake prefix (before any noise). *)
            let baseline =
              List.map (fun fp -> (fp, reachable_routers snap fp)) fake_prefixes
            in
            (* Plan filters: per (router, fake prefix, next hop), with
               probability p. *)
            let planned =
              List.concat_map
                (fun (r, hp, nxts) ->
                  if not (List.exists (Prefix.equal hp) fake_prefixes) then []
                  else
                    List.filter_map
                      (fun nxt ->
                        if Rng.bool rng ~p then
                          Option.map
                            (fun attach ->
                              { f_router = r; f_prefix = hp; f_attach = attach })
                            (Attach.point snap.net r nxt)
                        else None)
                      nxts)
                (Routing.Simulate.host_routes snap)
            in
            let configs =
              List.fold_left apply_one configs planned
            in
            (* Reachability repair: any fake prefix that lost a router must
               shed the filters on the routers where walks now dead-end. *)
            (* [suspect] is the subset of [baseline] whose routing may have
               changed since it was last checked clean: the added filters
               are per-prefix denies on disjoint fake /24s, so rolling one
               back can only move its own prefix's routes. *)
            let rec repair eng configs active removed guard suspect =
              Telemetry.incr c_iterations;
              match Routing.Engine.apply_edit eng configs with
              | Error m -> Error ("route_anon: repair simulation failed: " ^ m)
              | Ok eng ->
                  let snap' = Routing.Engine.snapshot eng in
                  let broken =
                    List.filter_map
                      (fun (fp, routers0) ->
                        let now = reachable_routers snap' fp in
                        let lost = List.filter (fun r -> not (List.mem r now)) routers0 in
                        if lost = [] then None else Some (fp, lost))
                      suspect
                  in
                  if broken = [] then Ok (eng, configs, active, removed)
                  else if guard <= 0 then
                    Error "route_anon: reachability repair did not converge"
                  else begin
                    let to_remove, keep =
                      List.partition
                        (fun f ->
                          List.exists
                            (fun (fp, lost) ->
                              Prefix.equal f.f_prefix fp && List.mem f.f_router lost)
                            broken)
                        active
                    in
                    (* No filter sits on a lost router: fall back to
                       removing every filter of the broken prefixes. *)
                    let to_remove, keep =
                      if to_remove <> [] then (to_remove, keep)
                      else
                        List.partition
                          (fun f ->
                            List.exists
                              (fun (fp, _) -> Prefix.equal f.f_prefix fp)
                              broken)
                          active
                    in
                    if to_remove = [] then
                      Error
                        "route_anon: fake host unreachable with no filter to \
                         roll back"
                    else
                      let configs = List.fold_left remove_one configs to_remove in
                      let suspect =
                        List.filter
                          (fun (fp, _) ->
                            List.exists
                              (fun f -> Prefix.equal f.f_prefix fp)
                              to_remove)
                          baseline
                      in
                      repair eng configs keep (removed + List.length to_remove)
                        (guard - 1) suspect
                  end
            in
            Result.map
              (fun (eng, configs, active, removed) ->
                Telemetry.add c_filters_added (List.length active);
                Telemetry.add c_filters_removed removed;
                {
                  configs;
                  fake_hosts = List.rev fake_hosts;
                  filters_added = List.length active;
                  filters_removed = removed;
                  engine = eng;
                })
              (repair eng configs planned 0 (List.length planned + 4) baseline))
