open Netcore
module Ast = Configlang.Ast
module Smap = Routing.Device.Smap
module Sset = Set.Make (String)

type outcome = {
  configs : Ast.config list;
  fake_hosts : (string * string) list;
  filters_added : int;
  filters_removed : int;
  engine : Routing.Engine.t;
}

let default_noise = 0.1

let c_iterations = Telemetry.counter "anon.iterations"
let c_fake_hosts = Telemetry.counter "anon.fake_hosts"
let c_filters_added = Telemetry.counter "anon.filters_added"
let c_filters_removed = Telemetry.counter "anon.filters_removed"
let c_walks_skipped = Telemetry.counter "anon.walks_skipped"

(* A filter planned/applied by this algorithm, remembered for rollback. *)
type filter = {
  f_router : string;
  f_prefix : Prefix.t;
  f_attach : Attach.t;
}

(* The smallest free "fh<k>" at or above [k] — names are only ever added,
   so the smallest free index never decreases and one monotonic counter
   threads through the whole [add_fake_hosts] run instead of a fresh
   O(configs) scan per fake host. Returns the name and the next counter. *)
let fresh_host_name taken k =
  let rec search k =
    let candidate = Printf.sprintf "fh%d" k in
    if Sset.mem candidate taken then search (k + 1) else (candidate, k + 1)
  in
  search k

let add_fake_hosts ~k_h configs (snap : Routing.Simulate.snapshot) =
  let alloc = Prefix.alloc_create ~avoid:(Edits.used_prefixes configs) () in
  let hosts = Smap.bindings snap.net.hosts in
  let taken =
    List.fold_left
      (fun s (c : Ast.config) -> Sset.add c.hostname s)
      Sset.empty configs
  in
  (* Hostname-indexed view: one O(log n) find plus one O(log n) update per
     fake host instead of a full config-list scan each. *)
  let idx = Edits.Indexed.of_configs configs in
  let idx, fakes, _, _ =
    List.fold_left
      (fun (idx, fakes, taken, next) (hname, _) ->
        let ingress, _ = List.hd (Smap.find hname snap.net.attachments) in
        let real_config = Edits.Indexed.find idx hname in
        let rec copies idx fakes taken next i =
          if i >= k_h then (idx, fakes, taken, next)
          else begin
            let subnet = Prefix.alloc_fresh alloc ~len:24 in
            let gw = Prefix.host subnet 1 and ha = Prefix.host subnet 10 in
            let fake_name, next = fresh_host_name taken next in
            (* Same configuration as the original host except hostname and
               addresses (§5.3). *)
            let fake_config =
              {
                real_config with
                Ast.hostname = fake_name;
                interfaces =
                  List.map
                    (fun (i : Ast.interface) ->
                      match i.if_address with
                      | Some (_, _) -> { i with if_address = Some (ha, 24) }
                      | None -> i)
                    real_config.interfaces;
                default_gateway = Some gw;
              }
            in
            let idx =
              Edits.Indexed.update idx ingress (fun c ->
                  let name = Edits.fresh_iface_name c in
                  let c =
                    Edits.add_interface c ~name ~addr:gw ~plen:24
                      ~desc:("to-" ^ fake_name) ()
                  in
                  let c = Edits.add_igp_network c subnet in
                  Edits.add_bgp_network c subnet)
            in
            copies
              (Edits.Indexed.append idx fake_config)
              ((fake_name, hname) :: fakes)
              (Sset.add fake_name taken)
              next (i + 1)
          end
        in
        copies idx fakes taken next 1)
      (idx, [], taken, 1)
      hosts
  in
  (Edits.Indexed.to_configs idx, fakes)

let apply_one configs f =
  Edits.update configs f.f_router (fun c -> Attach.deny_at c f.f_attach f.f_prefix)

let remove_one configs f =
  Edits.update configs f.f_router (fun c -> Attach.undeny_at c f.f_attach f.f_prefix)

(* Routers that can deliver traffic for [fp]: walk every router's FIB and
   check that all ECMP branches reach a router owning the prefix. Walks
   share a memo table — on loop-free FIBs (the common case; IGP metrics
   strictly decrease along next hops) every router is explored once
   instead of once per ECMP branch per start router. A result is
   memoized only when its computation never hit the cycle check, i.e.
   never depended on the path taken to reach it. *)
let reachable_routers ?owners (snap : Routing.Simulate.snapshot) fp =
  let owners =
    match owners with
    | Some m -> Option.value ~default:Sset.empty (Prefix.Map.find_opt fp m)
    | None ->
        Smap.fold
          (fun rname (r : Routing.Device.router) acc ->
            if
              List.exists
                (fun i -> Prefix.equal (Routing.Device.ifc_prefix i) fp)
                r.r_ifaces
            then Sset.add rname acc
            else acc)
          snap.net.routers Sset.empty
  in
  let probe = Prefix.host fp 10 in
  let memo : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  (* Returns (delivers, pure); [pure] marks a result independent of the
     [visiting] path, hence safe to memoize. *)
  let rec delivers r visiting =
    match Hashtbl.find_opt memo r with
    | Some b -> (b, true)
    | None ->
        if Sset.mem r owners then begin
          Hashtbl.replace memo r true;
          (true, true)
        end
        else if Sset.mem r visiting then (false, false)
        else begin
          let b, pure =
            match Smap.find_opt r snap.fibs with
            | None -> (false, true)
            | Some fib -> (
                match Routing.Fib.lookup fib probe with
                | None -> (false, true)
                | Some route when route.rt_nexthops = [] -> (false, true)
                | Some route ->
                    let visiting = Sset.add r visiting in
                    List.fold_left
                      (fun (ok, pure) (nh : Routing.Fib.nexthop) ->
                        if not ok then (ok, pure)
                        else
                          let b, p = delivers nh.nh_router visiting in
                          (b, pure && p))
                      (true, true) route.rt_nexthops)
          in
          if pure then Hashtbl.replace memo r b;
          (b, pure)
        end
  in
  Smap.fold
    (fun rname _ acc ->
      if fst (delivers rname Sset.empty) then rname :: acc else acc)
    snap.net.routers []
  |> List.sort String.compare

(* Interface prefix -> owning routers, for the whole network: one pass
   over every interface instead of one full scan per walked prefix. The
   incremental paths build this once per simulation state and share it
   across all of that state's walks; the per-prefix set is identical to
   the scan [reachable_routers] does on its own. *)
let owners_map (net : Routing.Device.network) =
  Smap.fold
    (fun rname (r : Routing.Device.router) acc ->
      List.fold_left
        (fun acc i ->
          let p = Routing.Device.ifc_prefix i in
          let cur =
            Option.value ~default:Sset.empty (Prefix.Map.find_opt p acc)
          in
          Prefix.Map.add p (Sset.add rname cur) acc)
        acc r.r_ifaces)
    net.routers Prefix.Map.empty

(* The routers [routers0] that the current reachable set [now] lost. *)
let lost_routers routers0 now =
  let now_set = Sset.of_list now in
  List.filter (fun r -> not (Sset.mem r now_set)) routers0

let anonymize ~rng ~k_h ?(p = default_noise) ?engine configs =
  Telemetry.with_span "anon.anonymize" @@ fun () ->
  let initial =
    match engine with
    | Some e -> Routing.Engine.apply_edit e configs
    | None -> Routing.Engine.of_configs configs
  in
  match initial with
  | Error m -> Error ("route_anon: baseline simulation failed: " ^ m)
  | Ok eng0 -> (
      let snap0 = Routing.Engine.snapshot eng0 in
      let configs, fake_hosts =
        Telemetry.with_span "anon.fake_hosts_gen" @@ fun () ->
        add_fake_hosts ~k_h configs snap0
      in
      Telemetry.add c_fake_hosts (List.length fake_hosts);
      if fake_hosts = [] then
        Ok
          {
            configs;
            fake_hosts = [];
            filters_added = 0;
            filters_removed = 0;
            engine = eng0;
          }
      else
        match Routing.Engine.apply_edit eng0 configs with
        | Error m -> Error ("route_anon: fake-host simulation failed: " ^ m)
        | Ok eng ->
            let incremental = Anonfix.incremental () in
            let pool = Routing.Engine.pool eng in
            let snap = Routing.Engine.snapshot eng in
            let fake_prefixes =
              List.filter_map
                (fun (fh, _) ->
                  Option.map Routing.Device.host_prefix
                    (Smap.find_opt fh snap.net.hosts))
                fake_hosts
            in
            (* Baseline reachability per fake prefix (before any noise).
               Each walk's memo table is local to its prefix, so the walks
               are independent and run in parallel. *)
            let baseline =
              Telemetry.with_span "anon.baseline_walks" @@ fun () ->
              if incremental then
                let owners = owners_map snap.net in
                Pool.parallel_map ?pool
                  (fun fp -> (fp, reachable_routers ~owners snap fp))
                  fake_prefixes
              else List.map (fun fp -> (fp, reachable_routers snap fp)) fake_prefixes
            in
            (* Plan filters: per (router, fake prefix, next hop), with
               probability p. The row scan stays in [host_routes] order —
               it drives the RNG draw sequence. *)
            let fake_pset =
              List.fold_left
                (fun s fp -> Prefix.Set.add fp s)
                Prefix.Set.empty fake_prefixes
            in
            let plan_row r hp nxts =
              List.filter_map
                (fun nxt ->
                  if Rng.bool rng ~p then
                    Option.map
                      (fun attach ->
                        { f_router = r; f_prefix = hp; f_attach = attach })
                      (Attach.point snap.net r nxt)
                  else None)
                nxts
            in
            let planned =
              Telemetry.with_span "anon.plan" @@ fun () ->
              if incremental then
                (* Only fake-prefix rows ever draw from the RNG, and
                   [host_routes] orders its rows by (router, prefix) — so
                   walking the FIB map in name order against the sorted
                   fake prefixes visits exactly that subsequence, in the
                   same order, without materializing (or sorting) the
                   full real+fake relation. *)
                let fake_sorted = List.sort Prefix.compare fake_prefixes in
                List.concat_map
                  (fun (r, fib) ->
                    List.concat_map
                      (fun hp ->
                        match Routing.Fib.find fib hp with
                        | Some (route : Routing.Fib.route)
                          when route.rt_nexthops <> [] ->
                            plan_row r hp (Routing.Fib.nexthop_names route)
                        | Some _ | None -> [])
                      fake_sorted)
                  (Smap.bindings snap.fibs)
              else
                List.concat_map
                  (fun (r, hp, nxts) ->
                    if not (Prefix.Set.mem hp fake_pset) then []
                    else plan_row r hp nxts)
                  (Routing.Simulate.host_routes snap)
            in
            let configs =
              if incremental then
                Edits.update_all configs
                  (List.map
                     (fun f ->
                       (f.f_router, fun c -> Attach.deny_at c f.f_attach f.f_prefix))
                     planned)
              else List.fold_left apply_one configs planned
            in
            (* Reachability repair: any fake prefix that lost a router must
               shed the filters on the routers where walks now dead-end. *)
            (* [suspect] is the subset of [baseline] whose routing may have
               changed since it was last checked clean: the added filters
               are per-prefix denies on disjoint fake /24s, so rolling one
               back can only move its own prefix's routes. *)
            (* Legacy repair: recompute every suspect's walk sequentially
               each round. Kept verbatim behind [Anonfix] as the
               differential baseline for the cached parallel path below. *)
            let rec repair_legacy eng configs active removed guard suspect =
              Telemetry.incr c_iterations;
              match Routing.Engine.apply_edit eng configs with
              | Error m -> Error ("route_anon: repair simulation failed: " ^ m)
              | Ok eng ->
                  let snap' = Routing.Engine.snapshot eng in
                  let broken =
                    Telemetry.with_span "anon.repair_walks" @@ fun () ->
                    List.filter_map
                      (fun (fp, routers0) ->
                        let now = reachable_routers snap' fp in
                        let lost = lost_routers routers0 now in
                        if lost = [] then None else Some (fp, lost))
                      suspect
                  in
                  if broken = [] then Ok (eng, configs, active, removed)
                  else if guard <= 0 then
                    Error "route_anon: reachability repair did not converge"
                  else begin
                    let to_remove, keep =
                      List.partition
                        (fun f ->
                          List.exists
                            (fun (fp, lost) ->
                              Prefix.equal f.f_prefix fp && List.mem f.f_router lost)
                            broken)
                        active
                    in
                    (* No filter sits on a lost router: fall back to
                       removing every filter of the broken prefixes. *)
                    let to_remove, keep =
                      if to_remove <> [] then (to_remove, keep)
                      else
                        List.partition
                          (fun f ->
                            List.exists
                              (fun (fp, _) -> Prefix.equal f.f_prefix fp)
                              broken)
                          active
                    in
                    if to_remove = [] then
                      Error
                        "route_anon: fake host unreachable with no filter to \
                         roll back"
                    else
                      let configs = List.fold_left remove_one configs to_remove in
                      let suspect =
                        List.filter
                          (fun (fp, _) ->
                            List.exists
                              (fun f -> Prefix.equal f.f_prefix fp)
                              to_remove)
                          baseline
                      in
                      repair_legacy eng configs keep
                        (removed + List.length to_remove)
                        (guard - 1) suspect
                  end
            in
            (* Incremental repair. [walks] caches each fake prefix's last
               reachable set; an entry stays valid across an edit as long
               as no delta router's FIB lookup for the prefix's probe
               changed — the walk reads nothing else (owners come from
               interface prefixes, which cannot change without a connected
               route, hence a FIB, change). [prev_fibs] is the state every
               cache entry was last validated against, so validity only
               ever needs the one-step delta. Invalidation runs over the
               whole cache each round, keeping the invariant for entries
               outside [suspect] too. Fresh walks run in parallel; results
               fold back in suspect order, so the job count is
               unobservable. *)
            let rec repair_incr eng prev_fibs walks configs active removed
                guard suspect =
              Telemetry.incr c_iterations;
              match Routing.Engine.apply_edit eng configs with
              | Error m -> Error ("route_anon: repair simulation failed: " ^ m)
              | Ok eng ->
                  let snap' = Routing.Engine.snapshot eng in
                  let walks =
                    Telemetry.with_span "anon.invalidate" @@ fun () ->
                    match Routing.Engine.delta eng with
                    | None -> Prefix.Map.empty
                    | Some [] -> walks
                    | Some d ->
                        Prefix.Map.filter
                          (fun fp _ ->
                            let probe = Prefix.host fp 10 in
                            let look fibs r =
                              match Smap.find_opt r fibs with
                              | None -> None
                              | Some fib -> Routing.Fib.lookup fib probe
                            in
                            not
                              (List.exists
                                 (fun r ->
                                   look prev_fibs r <> look snap'.fibs r)
                                 d))
                          walks
                  in
                  let results =
                    Telemetry.with_span "anon.repair_walks" @@ fun () ->
                    let owners = owners_map snap'.net in
                    Pool.parallel_map ?pool
                      (fun (fp, routers0) ->
                        match Prefix.Map.find_opt fp walks with
                        | Some now -> (fp, routers0, now, false)
                        | None ->
                            (fp, routers0, reachable_routers ~owners snap' fp, true))
                      suspect
                  in
                  let walks =
                    List.fold_left
                      (fun w (fp, _, now, fresh) ->
                        if fresh then Prefix.Map.add fp now w else w)
                      walks results
                  in
                  Telemetry.add c_walks_skipped
                    (List.length
                       (List.filter (fun (_, _, _, fresh) -> not fresh) results));
                  let broken =
                    List.filter_map
                      (fun (fp, routers0, now, _) ->
                        let lost = lost_routers routers0 now in
                        if lost = [] then None else Some (fp, lost))
                      results
                  in
                  if broken = [] then Ok (eng, configs, active, removed)
                  else if guard <= 0 then
                    Error "route_anon: reachability repair did not converge"
                  else begin
                    let to_remove, keep =
                      List.partition
                        (fun f ->
                          List.exists
                            (fun (fp, lost) ->
                              Prefix.equal f.f_prefix fp && List.mem f.f_router lost)
                            broken)
                        active
                    in
                    let to_remove, keep =
                      if to_remove <> [] then (to_remove, keep)
                      else
                        List.partition
                          (fun f ->
                            List.exists
                              (fun (fp, _) -> Prefix.equal f.f_prefix fp)
                              broken)
                          active
                    in
                    if to_remove = [] then
                      Error
                        "route_anon: fake host unreachable with no filter to \
                         roll back"
                    else
                      let configs =
                        Edits.update_all configs
                          (List.map
                             (fun f ->
                               ( f.f_router,
                                 fun c -> Attach.undeny_at c f.f_attach f.f_prefix ))
                             to_remove)
                      in
                      let suspect =
                        List.filter
                          (fun (fp, _) ->
                            List.exists
                              (fun f -> Prefix.equal f.f_prefix fp)
                              to_remove)
                          baseline
                      in
                      repair_incr eng snap'.fibs walks configs keep
                        (removed + List.length to_remove)
                        (guard - 1) suspect
                  end
            in
            let repaired =
              if incremental then
                let walks0 =
                  List.fold_left
                    (fun w (fp, now) -> Prefix.Map.add fp now w)
                    Prefix.Map.empty baseline
                in
                repair_incr eng snap.fibs walks0 configs planned 0
                  (List.length planned + 4)
                  baseline
              else
                repair_legacy eng configs planned 0
                  (List.length planned + 4)
                  baseline
            in
            Result.map
              (fun (eng, configs, active, removed) ->
                Telemetry.add c_filters_added (List.length active);
                Telemetry.add c_filters_removed removed;
                {
                  configs;
                  fake_hosts = List.rev fake_hosts;
                  filters_added = List.length active;
                  filters_removed = removed;
                  engine = eng;
                })
              repaired)
