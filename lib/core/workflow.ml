open Netcore
module Smap = Routing.Device.Smap

type params = {
  k_r : int;
  k_h : int;
  noise : float;
  seed : int;
  pii : bool;
  pii_key : Pii.Pan.key option;
  fake_routers : int;
}

let default_params =
  {
    k_r = 6;
    k_h = 2;
    noise = 0.1;
    seed = 42;
    pii = false;
    pii_key = None;
    fake_routers = 0;
  }

type report = {
  params : params;
  orig_configs : Configlang.Ast.config list;
  anon_configs : Configlang.Ast.config list;
  orig_snapshot : Routing.Simulate.snapshot;
  anon_snapshot : Routing.Simulate.snapshot;
  fake_edges : (string * string) list;
  fake_hosts : (string * string) list;
  fake_router_names : string list;
  name_map : (string * string) list;
  equiv_iterations : int;
  equiv_filters : int;
  anon_filters_added : int;
  anon_filters_removed : int;
}

let ( let* ) = Result.bind

let run ?(params = default_params) ?cache orig_configs =
  Telemetry.with_span "workflow.run" @@ fun () ->
  if params.k_r < 1 || params.k_h < 1 then Error "workflow: k_r and k_h must be >= 1"
  else
    let rng = Rng.create params.seed in
    (* With a persistent cache the baseline goes through the engine, whose
       from-scratch result is bit-identical to [Simulate.run] but can be
       restored from a previous process's whole-state entry. *)
    let simulate configs =
      match cache with
      | None -> Routing.Simulate.run configs
      | Some _ ->
          Result.map Routing.Engine.snapshot
            (Routing.Engine.of_configs ?cache configs)
    in
    (* Preprocess: the original topology and routes are the baseline. *)
    let* orig_snapshot =
      Telemetry.with_span "workflow.baseline" @@ fun () ->
      Result.map_error (fun m -> "workflow: original network: " ^ m)
        (simulate orig_configs)
    in
    (* §9 extension (optional): grow the router set first, so the k-degree
       guarantee also covers the fake routers. The extended network keeps
       the original data plane by construction, so it serves as the
       baseline for the route-equivalence stage. *)
    let* base_configs, base_snapshot, fake_router_names =
      if params.fake_routers = 0 then Ok (orig_configs, orig_snapshot, [])
      else
        let* n =
          Node_anon.add ~rng ~count:params.fake_routers ~orig:orig_snapshot
            orig_configs
        in
        let* snap =
          Result.map_error (fun m -> "workflow: extended network: " ^ m)
            (simulate n.configs)
        in
        Ok (n.configs, snap, n.fake_routers)
    in
    (* Step 1: topology anonymization. The [workflow.*] phase spans mirror
       [workflow.baseline]/[workflow.pii] so the bench harness reads one
       uniform per-phase breakdown. *)
    let topo =
      Telemetry.with_span "workflow.topo" @@ fun () ->
      Topo_anon.anonymize ~rng ~k:params.k_r ~orig:base_snapshot base_configs
    in
    (* Step 2.1: route equivalence. *)
    let* equiv =
      Telemetry.with_span "workflow.equiv" @@ fun () ->
      Route_equiv.fix ?cache ~orig:base_snapshot ~fake_edges:topo.fake_edges
        topo.configs
    in
    (* Step 2.2: route anonymity, reusing the engine state route
       equivalence converged with. *)
    let* anon =
      Telemetry.with_span "workflow.anon" @@ fun () ->
      Route_anon.anonymize ~rng ~k_h:params.k_h ~p:params.noise
        ~engine:equiv.engine equiv.configs
    in
    (* Optional add-on: PII scrubbing. *)
    let anon_configs, name_map =
      if params.pii then
        (* The scrub key is per-tenant state, not workflow randomness:
           a tenant-pinned key (the serve daemon's tenant table) keeps
           one tenant's address mapping stable across runs and distinct
           from every other tenant's, whatever seeds they pick. *)
        let key =
          match params.pii_key with
          | Some k -> k
          | None -> Pii.Pan.key_of_int params.seed
        in
        Telemetry.with_span "workflow.pii" (fun () ->
            (* The rename is the node correspondence consumers of the
               report (the verifier) need to carry original-name
               policies into the shared namespace; record it per device
               rather than forcing them to re-derive it. *)
            let rename = Pii.Scrub.default_rename anon.configs in
            ( Pii.Scrub.scrub ~rename ~key anon.configs,
              List.map
                (fun (c : Configlang.Ast.config) -> (c.hostname, rename c.hostname))
                anon.configs ))
      else (anon.configs, [])
    in
    let* anon_snapshot =
      (* Without PII scrubbing, [anon.engine] already holds the final
         simulation; scrubbing rewrites names/addresses, so re-simulate. *)
      if params.pii then
        Result.map_error (fun m -> "workflow: anonymized network: " ^ m)
          (Routing.Simulate.run anon_configs)
      else Ok (Routing.Engine.snapshot anon.engine)
    in
    Ok
      {
        params;
        orig_configs;
        anon_configs;
        orig_snapshot;
        anon_snapshot;
        fake_edges = topo.fake_edges;
        fake_hosts = anon.fake_hosts;
        fake_router_names;
        name_map;
        equiv_iterations = equiv.iterations;
        equiv_filters = equiv.filters_added;
        anon_filters_added = anon.filters_added;
        anon_filters_removed = anon.filters_removed;
      }

let run_exn ?params ?cache configs =
  match run ?params ?cache configs with Ok r -> r | Error m -> failwith m

let real_hosts r =
  List.map fst (Smap.bindings r.orig_snapshot.net.hosts)

let functional_equivalence r =
  if r.params.pii then
    (* Names and addresses were rewritten; equivalence is only meaningful
       up to the renaming, which the PII test suite checks separately. *)
    true
  else begin
    let topo_preserved =
      let g0 = Routing.Device.router_graph r.orig_snapshot.net in
      let g1 = Routing.Device.router_graph r.anon_snapshot.net in
      List.for_all (fun n -> Netcore.Graph.mem_node n g1) (Netcore.Graph.nodes g0)
      && List.for_all
           (fun (u, v) -> Netcore.Graph.mem_edge u v g1)
           (Netcore.Graph.edges g0)
      && Smap.for_all (fun h _ -> Smap.mem h r.anon_snapshot.net.hosts)
           r.orig_snapshot.net.hosts
    in
    topo_preserved
    && Routing.Dataplane.equal_on ~hosts:(real_hosts r)
         (Routing.Simulate.dataplane r.orig_snapshot)
         (Routing.Simulate.dataplane r.anon_snapshot)
  end

let anon_texts r =
  List.map
    (fun (c : Configlang.Ast.config) -> (c.hostname, Configlang.Printer.to_string c))
    r.anon_configs
