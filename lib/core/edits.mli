(** Append-only configuration edits.

    Every transformation ConfMask performs on configuration files goes
    through this module, which enforces the paper's core structural
    invariant (§4.2, §5.2): existing lines are never modified or deleted —
    interfaces, network statements, neighbors and filters are only added.
    (The only exception is the explicit rollback of the route-anonymity
    algorithm's own filters, Algorithm 2 lines 6-7.) *)

open Netcore
open Configlang

val used_prefixes : Ast.config list -> Prefix.t list
(** Every prefix mentioned anywhere: interface subnets, network
    statements, prefix-list rules, gateways — the avoid set for the fresh
    prefix allocator. *)

val update : Ast.config list -> string -> (Ast.config -> Ast.config) -> Ast.config list
(** [update configs hostname f] maps [f] over the named device. Raises
    [Not_found] if absent. *)

val update_all :
  Ast.config list -> (string * (Ast.config -> Ast.config)) list -> Ast.config list
(** [update_all configs edits] applies every [(hostname, f)] edit in one
    pass over the config list: the edits are grouped per hostname
    (preserving their relative order; a device's edits compose left to
    right) and each config is rewritten once. Equal to folding {!update}
    over [edits] — an edit only touches its own device — but O(configs +
    edits) instead of O(configs × edits), which is what the anonymization
    fixpoints apply per-iteration filter batches through. Raises
    [Not_found] if any named device is absent. *)

(** A hostname-indexed view of a config list, for edit loops that issue
    many point lookups and rewrites ([Route_anon.add_fake_hosts] issues
    one find plus one update per fake host): O(log n) per operation
    instead of a full-list scan, while {!Indexed.to_configs} restores
    the exact original order with appends at the end. Hostnames must be
    unique — guaranteed for any list [Routing.Device.compile]
    accepted. *)
module Indexed : sig
  type t

  val of_configs : Ast.config list -> t
  (** Raises [Invalid_argument] on a duplicate hostname. *)

  val to_configs : t -> Ast.config list
  (** The devices in their original list order, appended ones last in
      append order. *)

  val find : t -> string -> Ast.config
  (** Raises [Not_found] if absent. *)

  val update : t -> string -> (Ast.config -> Ast.config) -> t
  (** Raises [Not_found] if absent. *)

  val append : t -> Ast.config -> t
  (** Raises [Invalid_argument] if the hostname is already present. *)
end

val fresh_iface_name : Ast.config -> string
(** Next unused [Eth<n>] name, continuing the device's numbering so fake
    interfaces are indistinguishable from real ones by name. *)

val add_interface :
  Ast.config ->
  name:string ->
  addr:Ipv4.t ->
  plen:int ->
  ?cost:int ->
  ?desc:string ->
  unit ->
  Ast.config

val add_igp_network : Ast.config -> Prefix.t -> Ast.config
(** Adds a [network] statement for the prefix to the device's OSPF (area
    0) or RIP process, whichever it runs; no-op if neither or if already
    covered by an existing statement. *)

val add_bgp_network : Ast.config -> Prefix.t -> Ast.config

val add_bgp_neighbor : Ast.config -> addr:Ipv4.t -> remote_as:int -> Ast.config

(** {1 Route filters}

    Deny filters are kept in per-attachment-point prefix lists: list
    [DL-<iface>] for IGP distribute-lists, [RejPfxs-<n>] for BGP neighbor
    lists (after Listing 3 of the paper). Each list holds the deny rules
    followed by a catch-all [permit 0.0.0.0/0 le 32], so an attached
    filter only rejects the listed destinations. *)

val deny_on_iface : Ast.config -> iface:string -> Prefix.t -> Ast.config
(** Ensure the IGP inbound distribute-list on [iface] denies the prefix.
    Idempotent. Raises [Invalid_argument] if the device runs no IGP. *)

val deny_on_bgp_neighbor : Ast.config -> neighbor:Ipv4.t -> Prefix.t -> Ast.config
(** Same for a BGP neighbor's inbound filter. *)

val undeny_on_iface : Ast.config -> iface:string -> Prefix.t -> Ast.config
(** Rollback for Algorithm 2: removes the deny rule; drops the list and
    its binding entirely when no denies remain. *)

val undeny_on_bgp_neighbor : Ast.config -> neighbor:Ipv4.t -> Prefix.t -> Ast.config
