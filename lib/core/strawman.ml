open Netcore
module Smap = Routing.Device.Smap

type outcome = {
  configs : Configlang.Ast.config list;
  iterations : int;
  filters_added : int;
}

let c_iterations = Telemetry.counter "strawman.iterations"
let c_filters = Telemetry.counter "strawman.filters_added"

let strawman1 ?engine ~orig ~fake_edges configs =
  Telemetry.with_span "strawman.strawman1" @@ fun () ->
  let initial =
    match engine with
    | Some e -> Routing.Engine.apply_edit e configs
    | None -> Routing.Engine.of_configs configs
  in
  match initial with
  | Error m -> Error ("strawman1: simulation failed: " ^ m)
  | Ok eng ->
      let snap = Routing.Engine.snapshot eng in
      let host_prefixes =
        List.map fst (Routing.Simulate.host_prefixes orig.Routing.Simulate.net)
      in
      let filters = ref 0 in
      (* One config rewrite per fake interface, installing the whole host
         prefix list at once. *)
      let configs =
        List.fold_left
          (fun configs (u, v) ->
            List.fold_left
              (fun configs (r, nxt) ->
                match Attach.point snap.net r nxt with
                | None -> configs
                | Some attach ->
                    Edits.update configs r (fun c ->
                        List.fold_left
                          (fun c hp ->
                            incr filters;
                            Attach.deny_at c attach hp)
                          c host_prefixes))
              configs
              [ (u, v); (v, u) ])
          configs fake_edges
      in
      (* One verification simulation. *)
      (match Routing.Engine.apply_edit eng configs with
      | Error m -> Error ("strawman1: verification failed: " ^ m)
      | Ok eng' ->
          if Route_equiv.fib_equal_on_hosts ~orig (Routing.Engine.snapshot eng')
          then begin
            Telemetry.add c_iterations 2;
            Telemetry.add c_filters !filters;
            Ok { configs; iterations = 2; filters_added = !filters }
          end
          else Error "strawman1: blanket filters did not restore the FIBs")

let orig_paths_table orig_dp =
  let table = Hashtbl.create 256 in
  List.iter
    (fun (pair, paths) -> Hashtbl.replace table pair paths)
    (Routing.Dataplane.all_delivered orig_dp);
  table

let strawman2 ?(max_iters = 64) ?engine ~orig ~fake_edges:_ configs =
  Telemetry.with_span "strawman.strawman2" @@ fun () ->
  let orig_dp = Routing.Simulate.dataplane orig in
  let orig_table = orig_paths_table orig_dp in
  let orig_fibs = Routing.Simulate.host_routes orig in
  let orig_nexthops r hp =
    List.concat_map
      (fun (r', hp', nxts) ->
        if String.equal r r' && Prefix.equal hp hp' then nxts else [])
      orig_fibs
  in
  let hosts (snap : Routing.Simulate.snapshot) =
    List.map fst (Smap.bindings snap.net.hosts)
  in
  (* For one deviating path, the filter location: the hop closest to the
     destination whose next hop was not an original FIB next hop for the
     destination prefix — filter that prefix at that router toward that
     next hop (§4.3, Figure 4c: one hop fixed per pair per iteration). *)
  let locate_fix (snap : Routing.Simulate.snapshot) path =
    let routers = List.filteri (fun i _ -> i > 0 && i < List.length path - 1) path in
    let dst = List.nth path (List.length path - 1) in
    let hp = Routing.Device.host_prefix (Smap.find dst snap.net.hosts) in
    let rec scan = function
      | r_i :: (r_next :: _ as rest) ->
          (* Deeper deviations are closer to the destination; prefer them. *)
          let deeper = scan rest in
          if deeper <> None then deeper
          else if List.mem r_next (orig_nexthops r_i hp) then None
          else Some (r_i, r_next, hp)
      | [ _ ] | [] -> None
    in
    scan routers
  in
  let initial =
    match engine with
    | Some e -> Routing.Engine.apply_edit e configs
    | None -> Routing.Engine.of_configs configs
  in
  let rec loop eng configs iter filters =
    Telemetry.incr c_iterations;
    let snap = Routing.Engine.snapshot eng in
    let dp = Routing.Simulate.dataplane snap in
    let pairs =
      List.concat_map
        (fun s ->
          List.filter_map
            (fun d -> if String.equal s d then None else Some (s, d))
            (hosts snap))
        (hosts snap)
    in
    let deviating =
      List.filter_map
        (fun pair ->
          let current = Routing.Dataplane.paths dp ~src:(fst pair) ~dst:(snd pair) in
          let original =
            Option.value ~default:[] (Hashtbl.find_opt orig_table pair)
          in
          if List.equal (List.equal String.equal) current original then None
          else Some (pair, current, original))
        pairs
    in
    let fixes =
      List.concat_map
        (fun (_, current, original) ->
          List.filter_map
            (fun p -> if List.mem p original then None else locate_fix snap p)
            current)
        deviating
      |> List.sort_uniq compare
    in
    if deviating = [] then
      Ok { configs; iterations = iter; filters_added = filters }
    else if fixes = [] then
      Error "strawman2: deviating paths remain but no hop is fixable"
    else if iter >= max_iters then
      Error (Printf.sprintf "strawman2: no convergence after %d iterations" iter)
    else
      let configs =
        List.fold_left
          (fun configs (r, nxt, hp) ->
            Attach.deny configs snap.net ~router:r ~toward:nxt hp)
          configs fixes
      in
      Telemetry.add c_filters (List.length fixes);
      match Routing.Engine.apply_edit eng configs with
      | Error m -> Error ("strawman2: simulation failed: " ^ m)
      | Ok eng -> loop eng configs (iter + 1) (filters + List.length fixes)
  in
  match initial with
  | Error m -> Error ("strawman2: simulation failed: " ^ m)
  | Ok eng -> loop eng configs 1 0
