bin/scratch.ml: Array Confmask List Netgen Printf Routing Sys Unix
