bin/scratch.mli:
