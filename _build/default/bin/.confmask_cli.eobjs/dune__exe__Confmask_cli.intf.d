bin/confmask_cli.mli:
