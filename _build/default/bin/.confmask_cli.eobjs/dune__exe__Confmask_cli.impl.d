bin/confmask_cli.ml: Arg Array Cmd Cmdliner Configlang Confmask Filename List Netcore Netgen Printf Routing Spec String Sys Term
