(* Throwaway measurement probe used during development. *)
let () =
  let entry = Netgen.Nets.find Sys.argv.(1) in
  let k_r = int_of_string Sys.argv.(2) in
  let k_h = int_of_string Sys.argv.(3) in
  let params = { Confmask.Workflow.default_params with k_r; k_h } in
  let t0 = Unix.gettimeofday () in
  match Confmask.Workflow.run ~params (Netgen.Nets.configs entry) with
  | Error m -> Printf.printf "ERROR: %s\n" m
  | Ok r ->
      let t1 = Unix.gettimeofday () in
      let nr0 =
        Confmask.Metrics.route_anonymity
          (Routing.Simulate.dataplane r.orig_snapshot)
      in
      let nr1 =
        Confmask.Metrics.route_anonymity
          (Routing.Simulate.dataplane r.anon_snapshot)
      in
      let topo0 = Confmask.Metrics.topology_of_snapshot r.orig_snapshot in
      let topo1 = Confmask.Metrics.topology_of_snapshot r.anon_snapshot in
      let uc =
        Confmask.Metrics.config_utility ~orig:r.orig_configs ~anon:r.anon_configs
      in
      Printf.printf
        "net=%s kr=%d kh=%d | fake_edges=%d fake_hosts=%d | equiv_iters=%d \
         equiv_filters=%d | anon_filters=%d(-%d) | Nr %.2f -> %.2f (min %d -> %d) | \
         kmin %d -> %d | CC %.3f -> %.3f | UC=%.3f | FE=%b | %.2fs\n"
        entry.id k_r k_h
        (List.length r.fake_edges)
        (List.length r.fake_hosts)
        r.equiv_iterations r.equiv_filters r.anon_filters_added
        r.anon_filters_removed nr0.nr_avg nr1.nr_avg nr0.nr_min nr1.nr_min
        topo0.min_degree_group topo1.min_degree_group topo0.clustering
        topo1.clustering uc
        (Confmask.Workflow.functional_equivalence r)
        (t1 -. t0)
