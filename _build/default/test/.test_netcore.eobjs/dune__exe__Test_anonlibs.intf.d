test/test_anonlibs.mli:
