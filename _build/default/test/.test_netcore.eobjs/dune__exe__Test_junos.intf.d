test/test_junos.mli:
