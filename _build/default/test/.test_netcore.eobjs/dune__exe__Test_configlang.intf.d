test/test_configlang.mli:
