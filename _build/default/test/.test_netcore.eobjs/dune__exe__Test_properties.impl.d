test/test_properties.ml: Alcotest Configlang Confmask Dataplane Device List Netgen Option Printf QCheck2 QCheck_alcotest Routing Simulate String
