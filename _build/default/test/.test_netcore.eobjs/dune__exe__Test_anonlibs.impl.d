test/test_anonlibs.ml: Alcotest Configlang Gmetrics Graph Graphanon Hashtbl Ipv4 List Netcore Netgen Nethide Pii Printf QCheck2 QCheck_alcotest Rng Routing Spec String
