test/test_netgen.ml: Alcotest Configlang Emit Hashtbl List Netcore Netgen Nets Netspec Printf Routing Smallnets
