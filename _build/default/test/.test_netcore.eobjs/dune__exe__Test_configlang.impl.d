test/test_configlang.ml: Alcotest Ast Configlang Count Ipv4 List Masks Netcore Option Parser Prefix Printer Printf QCheck2 QCheck_alcotest String Vendor
