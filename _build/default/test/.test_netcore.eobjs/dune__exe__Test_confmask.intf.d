test/test_confmask.mli:
