test/test_junos.ml: Alcotest Ast Configlang Confmask Junos List Netcore Netgen Option Parser Printer Printf QCheck2 QCheck_alcotest String
