test/test_netcore.ml: Alcotest Float Fun Gmetrics Graph Int Ipv4 List Netcore Prefix QCheck2 QCheck_alcotest Rng
