test/test_routing.ml: Alcotest Bgp Configlang Confmask Dataplane Device Fib Hashtbl Ipv4 List Netcore Netgen Option Ospf Prefix Printf QCheck2 QCheck_alcotest Routing Simulate String
