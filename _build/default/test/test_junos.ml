(* JunosLite, the second vendor dialect: round trips, cross-vendor
   equivalence with CiscoLite, and end-to-end anonymization of a network
   written in Junos syntax. *)

open Configlang

let check = Alcotest.check

let sample =
  String.concat "\n"
    [
      "system {";
      "    host-name r1;";
      "}";
      "interfaces {";
      "    Eth0 {";
      "        description \"to-r2\";";
      "        address 10.0.1.1/24;";
      "        metric 5;";
      "    }";
      "}";
      "protocols {";
      "    ospf 1 {";
      "        network 10.0.0.0/8 area 0;";
      "        import DL-Eth0 interface Eth0;";
      "    }";
      "    bgp {";
      "        local-as 100;";
      "        neighbor 172.16.0.2 {";
      "            peer-as 200;";
      "            import-list RejPfxs-1;";
      "        }";
      "    }";
      "}";
      "policy-options {";
      "    prefix-list DL-Eth0 {";
      "        seq 5 deny 10.4.4.0/24;";
      "        seq 10000 permit 0.0.0.0/0 le 32;";
      "    }";
      "    prefix-list RejPfxs-1 {";
      "        seq 5 deny 10.5.5.0/24;";
      "        seq 10000 permit 0.0.0.0/0 le 32;";
      "    }";
      "}";
      "routing-options {";
      "    static {";
      "        route 10.9.9.0/24 next-hop 10.0.1.2;";
      "    }";
      "}";
    ]

let test_parse_sample () =
  let c = Junos.parse_exn sample in
  check Alcotest.string "hostname" "r1" c.hostname;
  check Alcotest.int "interfaces" 1 (List.length c.interfaces);
  let e0 = Option.get (Ast.find_interface c "Eth0") in
  check Alcotest.(option int) "metric" (Some 5) e0.if_cost;
  check Alcotest.(option string) "description" (Some "to-r2") e0.if_description;
  check Alcotest.bool "ospf import" true
    ((Option.get c.ospf).ospf_distribute_in
    = [ { Ast.dl_list = "DL-Eth0"; dl_iface = "Eth0" } ]);
  check Alcotest.int "bgp neighbors" 1 (List.length (Option.get c.bgp).bgp_neighbors);
  check Alcotest.int "statics" 1 (List.length c.statics);
  check Alcotest.int "prefix lists" 2 (List.length c.prefix_lists)

let test_roundtrip_sample () =
  let c = Junos.parse_exn sample in
  check Alcotest.bool "roundtrip" true (Junos.parse_exn (Junos.to_string c) = c)

let test_cross_vendor_catalog () =
  (* Every device of every catalog network survives Cisco -> AST -> Junos
     -> AST unchanged. *)
  List.iter
    (fun (e : Netgen.Nets.entry) ->
      List.iter
        (fun c ->
          let via_cisco = Parser.parse_exn (Printer.to_string c) in
          let via_junos = Junos.parse_exn (Junos.to_string c) in
          if via_cisco <> via_junos then
            Alcotest.failf "net %s: %s differs across vendors" e.id
              c.Ast.hostname)
        (Netgen.Nets.configs e))
    (Netgen.Nets.small ())

let test_sniffing () =
  check Alcotest.bool "junos detected" true (Junos.looks_like_junos sample);
  check Alcotest.bool "cisco not junos" false
    (Junos.looks_like_junos "hostname r1\ninterface Eth0\n");
  check Alcotest.bool "comment skipped" true
    (Junos.looks_like_junos "# generated\nsystem {\n}")

let test_parse_errors () =
  List.iter
    (fun text ->
      match Junos.parse text with
      | Ok _ -> Alcotest.failf "expected error for %S" text
      | Error m ->
          check Alcotest.bool "line number" true
            (String.length m >= 5 && String.sub m 0 5 = "line "))
    [
      "system {";                          (* unclosed block *)
      "system { host-name r1 }";           (* missing ';' *)
      "}";                                 (* unmatched brace *)
      "system { bananas 1; }";             (* unsupported statement *)
      "protocols { bgp { neighbor 10.0.0.1 { } } }"; (* no peer-as / local-as *)
    ]

let test_anonymize_junos_network () =
  (* Author net CCNP in Junos syntax, parse it back, anonymize, and emit
     Junos again: the vendor never mattered to the pipeline. *)
  let cisco_configs = Netgen.Nets.configs (Netgen.Nets.find "CCNP") in
  let junos_texts = List.map Junos.to_string cisco_configs in
  let configs = List.map Junos.parse_exn junos_texts in
  let params = { Confmask.Workflow.default_params with k_r = 4; k_h = 2 } in
  let r = Confmask.Workflow.run_exn ~params configs in
  check Alcotest.bool "functional equivalence" true
    (Confmask.Workflow.functional_equivalence r);
  (* The anonymized configs print as Junos and still parse. *)
  List.iter
    (fun c ->
      let text = Junos.to_string c in
      if Junos.parse_exn text <> c then
        Alcotest.failf "anonymized %s does not round-trip in Junos"
          c.Ast.hostname)
    r.anon_configs

(* qcheck: Junos round trip over generated configs (reusing the CiscoLite
   generator through the printer). *)
let gen_config =
  let open QCheck2.Gen in
  let gen_prefix =
    map2
      (fun a len -> Netcore.Prefix.v (Netcore.Ipv4.of_int a) len)
      (int_bound 0xFFFFFF) (int_range 8 30)
  in
  let gen_iface i =
    map2
      (fun addr cost ->
        {
          (Ast.empty_interface (Printf.sprintf "Eth%d" i)) with
          if_address = Some (Netcore.Ipv4.of_int addr, 24);
          if_cost = (if cost = 0 then None else Some cost);
        })
      (int_bound 0xFFFFFF) (int_bound 3)
  in
  let gen_ifaces = List.init 3 gen_iface |> flatten_l in
  let gen_ospf =
    map
      (fun nets ->
        { (Ast.empty_ospf 1) with ospf_networks = List.map (fun p -> (p, 0)) nets })
      (small_list gen_prefix)
  in
  let gen_statics =
    small_list
      (map2
         (fun p nh -> { Ast.st_prefix = p; st_next_hop = Netcore.Ipv4.of_int nh })
         gen_prefix (int_bound 0xFFFFFF))
  in
  QCheck2.Gen.map3
    (fun ifaces ospf statics ->
      {
        (Ast.empty_config "rq") with
        interfaces = ifaces;
        ospf = Some ospf;
        statics;
      })
    gen_ifaces gen_ospf gen_statics

let prop_junos_roundtrip =
  QCheck2.Test.make ~name:"junos: parse (print c) = c" ~count:300 gen_config
    (fun c -> Junos.parse_exn (Junos.to_string c) = c)

let prop_cross_vendor =
  QCheck2.Test.make ~name:"cisco and junos agree on every config" ~count:300
    gen_config (fun c ->
      Parser.parse_exn (Printer.to_string c) = Junos.parse_exn (Junos.to_string c))

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_junos_roundtrip; prop_cross_vendor ]

let () =
  Alcotest.run "junos"
    [
      ( "dialect",
        [
          Alcotest.test_case "parse sample" `Quick test_parse_sample;
          Alcotest.test_case "roundtrip sample" `Quick test_roundtrip_sample;
          Alcotest.test_case "cross-vendor catalog" `Quick test_cross_vendor_catalog;
          Alcotest.test_case "vendor sniffing" `Quick test_sniffing;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "anonymize a junos network" `Quick
            test_anonymize_junos_network;
        ] );
      ("properties", qsuite);
    ]
