(* Generators must produce networks that match Table 2's shape and are
   fully routable: every host pair has at least one forwarding path and
   no walk drops or loops. *)

open Netgen

let check = Alcotest.check

let counts spec =
  let g = Netspec.router_graph spec in
  ( List.length spec.Netspec.routers,
    List.length spec.Netspec.hosts,
    Netcore.Graph.num_edges g + List.length spec.Netspec.hosts )

let test_table2_shapes () =
  let expected =
    [ ("A", (10, 8, 26)); ("B", (13, 8, 25)); ("C", (11, 9, 22));
      ("D", (49, 98, 162)); ("E", (86, 68, 169)); ("F", (161, 58, 378));
      ("G", (20, 16, 48)); ("H", (72, 64, 320)) ]
  in
  List.iter
    (fun (e : Nets.entry) ->
      let r, h, edges = counts e.spec in
      let er, eh, ee = List.assoc e.id expected in
      check Alcotest.(triple int int int)
        (Printf.sprintf "net %s (R, H, E)" e.id)
        (er, eh, ee) (r, h, edges))
    (Nets.all ())

let test_specs_connected () =
  List.iter
    (fun (e : Nets.entry) ->
      check Alcotest.bool
        (Printf.sprintf "net %s connected" e.id)
        true
        (Netcore.Gmetrics.connected (Netspec.router_graph e.spec)))
    (Nets.all ())

let full_reachability ?(expect_hosts = None) configs name =
  let snap = Routing.Simulate.run_exn configs in
  let dp = Routing.Simulate.dataplane snap in
  let hosts = List.map fst (Routing.Device.Smap.bindings snap.net.hosts) in
  (match expect_hosts with
  | Some n -> check Alcotest.int (name ^ " host count") n (List.length hosts)
  | None -> ());
  let bad = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          if s <> d then begin
            let t = Hashtbl.find dp (s, d) in
            if t.Routing.Dataplane.delivered = [] || t.looped <> [] then
              bad := (s, d) :: !bad
          end)
        hosts)
    hosts;
  check
    Alcotest.(list (pair string string))
    (name ^ " all pairs routable") [] !bad

let test_small_nets_routable () =
  List.iter
    (fun (e : Nets.entry) ->
      full_reachability (Nets.configs e) (Printf.sprintf "net %s" e.id))
    (Nets.small ())

let test_wan_routable () =
  full_reachability (Nets.configs (Nets.find "D")) "net D (Bics)"

let test_fattree08_routable () =
  full_reachability (Nets.configs (Nets.find "H")) "net H (FatTree08)"

let test_riplab_routable () =
  full_reachability (Emit.emit (Smallnets.rip_lab ())) "rip lab"

let test_fattree_ecmp () =
  (* Cross-pod pairs in a fat tree must be load-balanced over several
     equal-cost paths. *)
  let snap = Routing.Simulate.run_exn (Nets.configs (Nets.find "G")) in
  let dp = Routing.Simulate.dataplane snap in
  let paths =
    Routing.Dataplane.paths dp ~src:"h-edge0-0-0" ~dst:"h-edge1-0-0"
  in
  check Alcotest.bool "cross-pod ECMP" true (List.length paths >= 4)

let test_emit_deterministic () =
  let e = Nets.find "D" in
  let a = List.map Configlang.Printer.to_string (Nets.configs e) in
  let b = List.map Configlang.Printer.to_string (Nets.configs (Nets.find "D")) in
  check Alcotest.bool "deterministic emission" true (a = b)

let test_emit_parses_back () =
  List.iter
    (fun (e : Nets.entry) ->
      List.iter
        (fun c ->
          let text = Configlang.Printer.to_string c in
          let c' = Configlang.Parser.parse_exn text in
          if c <> c' then
            Alcotest.failf "net %s: %s does not round-trip" e.id
              c.Configlang.Ast.hostname)
        (Nets.configs e))
    (Nets.small ())

let test_bgp_sessions_established () =
  (* Every inter-AS link must carry a bidirectional eBGP session. *)
  List.iter
    (fun (e : Nets.entry) ->
      if Netspec.is_bgp e.spec then begin
        let snap = Routing.Simulate.run_exn (Nets.configs e) in
        let sessions = Routing.Bgp.sessions snap.net in
        let inter_links =
          List.filter
            (fun (u, v, _) -> Netspec.as_of e.spec u <> Netspec.as_of e.spec v)
            e.spec.Netspec.links
        in
        let ebgp = List.filter (fun s -> s.Routing.Bgp.s_ebgp) sessions in
        check Alcotest.int
          (Printf.sprintf "net %s eBGP sessions" e.id)
          (2 * List.length inter_links)
          (List.length ebgp)
      end)
    (Nets.small ())

let () =
  Alcotest.run "netgen"
    [
      ( "table2",
        [
          Alcotest.test_case "shapes match Table 2" `Quick test_table2_shapes;
          Alcotest.test_case "topologies connected" `Quick test_specs_connected;
        ] );
      ( "routability",
        [
          Alcotest.test_case "small nets" `Quick test_small_nets_routable;
          Alcotest.test_case "wan (Bics)" `Slow test_wan_routable;
          Alcotest.test_case "fattree08" `Slow test_fattree08_routable;
          Alcotest.test_case "rip lab" `Quick test_riplab_routable;
          Alcotest.test_case "fattree ECMP" `Quick test_fattree_ecmp;
        ] );
      ( "emit",
        [
          Alcotest.test_case "deterministic" `Quick test_emit_deterministic;
          Alcotest.test_case "round-trips" `Quick test_emit_parses_back;
          Alcotest.test_case "bgp sessions" `Quick test_bgp_sessions_established;
        ] );
    ]
