(** k-anonymization of degree sequences (Liu & Terzi, SIGMOD 2008).

    Given a degree sequence, compute a k-anonymous target sequence that
    only *increases* degrees — the variant ConfMask needs, because its
    topology anonymization may only add links, never remove them (§4.2).
    The dynamic program minimizes the total degree increase subject to
    every degree value being shared by at least [k] nodes. *)

val anonymize_sequence : k:int -> int list -> int list
(** [anonymize_sequence ~k degrees] returns the target degree for each
    input position (same order as the input). Every target is >= the
    corresponding input degree, and the multiset of targets is
    k-anonymous, provided the input has at least [k] elements; shorter
    inputs collapse to a single group. Raises [Invalid_argument] if
    [k <= 0]. *)

val is_k_anonymous : k:int -> int list -> bool
(** Whether every distinct value occurs at least [k] times (vacuously true
    for the empty list). *)

val total_increase : orig:int list -> target:int list -> int
