open Netcore

let one_attempt ?(allowed = fun _ _ -> true) ~rng ~k g =
  let n = Graph.num_nodes g in
  let added = ref [] in
  let add u v g =
    added := (u, v) :: !added;
    Graph.add_edge u v g
  in
  (* One matching pass: pair up deficient nodes greedily, largest
     deficiency first, random choice among allowed non-adjacent partners. *)
  let matching_pass ~respect_allowed g targets =
    let deficiency = Hashtbl.create 16 in
    List.iter
      (fun (v, t) ->
        let d = t - Graph.degree v g in
        if d > 0 then Hashtbl.replace deficiency v d)
      targets;
    let get v = Option.value ~default:0 (Hashtbl.find_opt deficiency v) in
    let dec v =
      let d = get v - 1 in
      if d <= 0 then Hashtbl.remove deficiency v else Hashtbl.replace deficiency v d
    in
    let rec loop g =
      let deficient =
        Hashtbl.fold (fun v d acc -> (v, d) :: acc) deficiency []
        |> List.sort (fun (a, da) (b, db) ->
               match Int.compare db da with 0 -> String.compare a b | c -> c)
      in
      match deficient with
      | [] | [ _ ] -> g
      | (v, _) :: rest ->
          let candidates =
            List.filter
              (fun (u, _) ->
                (not (Graph.mem_edge u v g))
                && ((not respect_allowed) || allowed u v))
              rest
          in
          if candidates = [] then begin
            (* No partner for the hardest node: drop it for this pass. *)
            Hashtbl.remove deficiency v;
            loop g
          end
          else begin
            let u, _ = Rng.pick rng candidates in
            dec u;
            dec v;
            loop (add u v g)
          end
    in
    loop g
  in
  (* Outer relaxation: recompute targets on current degrees until the
     graph is k-anonymous. Degrees are monotonically non-decreasing and
     bounded by n-1, so this terminates; the guard is belt and braces. *)
  let rec outer g round =
    if Gmetrics.is_k_degree_anonymous k g then g
    else if round > 4 * n + 8 then g
    else begin
      let nodes = Graph.nodes g in
      let degrees = List.map (fun v -> Graph.degree v g) nodes in
      let targets = Degree_anon.anonymize_sequence ~k degrees in
      let node_targets = List.combine nodes targets in
      let g' = matching_pass ~respect_allowed:true g node_targets in
      let g' =
        if Gmetrics.is_k_degree_anonymous k g' then g'
        else matching_pass ~respect_allowed:false g' node_targets
      in
      if Graph.num_edges g' = Graph.num_edges g then begin
        (* Stuck: the remaining deficient nodes are pairwise adjacent.
           Connect the most deficient node to any non-adjacent node to
           shake the histogram, then retry. *)
        let nodes = Graph.nodes g' in
        let candidates =
          List.concat_map
            (fun u ->
              List.filter_map
                (fun v ->
                  if String.compare u v < 0 && not (Graph.mem_edge u v g') then
                    Some (u, v)
                  else None)
                nodes)
            nodes
        in
        match candidates with
        | [] -> g' (* complete graph: trivially anonymous *)
        | _ ->
            let u, v = Rng.pick rng candidates in
            outer (add u v g') (round + 1)
      end
      else outer g' (round + 1)
    end
  in
  let g' = outer g 0 in
  (g', List.rev !added)

let add_edges ?allowed ?(attempts = 3) ~rng ~k g =
  let n = Graph.num_nodes g in
  if n > 0 && k > n then
    invalid_arg
      (Printf.sprintf "Realize.add_edges: k = %d exceeds %d nodes" k n);
  (* The greedy matching is randomized and its edge count varies; keep the
     cheapest of a few attempts (the paper's utility metric counts every
     injected line). *)
  let rec best acc remaining =
    if remaining = 0 then acc
    else
      let candidate = one_attempt ?allowed ~rng:(Rng.split rng) ~k g in
      let acc =
        match acc with
        | Some (_, edges) when List.length edges <= List.length (snd candidate) -> acc
        | _ -> Some candidate
      in
      best acc (remaining - 1)
  in
  match best None (max 1 attempts) with
  | Some result -> result
  | None -> (g, [])
