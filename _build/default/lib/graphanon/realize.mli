(** Realization of a k-anonymous degree sequence by edge additions only.

    Greedy matching of degree-deficient node pairs, with a relaxation loop:
    if the deficiencies cannot be realized exactly (odd total, adjacency
    conflicts), the remaining deficient nodes are connected to arbitrary
    non-adjacent nodes and the target sequence is recomputed on the new
    degrees — degrees only grow, so the loop terminates. Constrained
    variants restrict which node pairs may be linked (ConfMask restricts
    fake intra-AS links to routers of the same AS, §4.2). *)

open Netcore

val add_edges :
  ?allowed:(string -> string -> bool) ->
  ?attempts:int ->
  rng:Rng.t ->
  k:int ->
  Graph.t ->
  Graph.t * (string * string) list
(** [add_edges ~rng ~k g] returns a supergraph of [g] whose degree
    sequence is k-anonymous, together with the added edges. [allowed]
    restricts candidate pairs (default: everything); when the constraint
    makes k-anonymity unreachable the constraint is dropped for the
    remaining deficiencies rather than failing. The randomized realization
    is repeated [attempts] times (default 3) and the result with the
    fewest added edges kept. Raises [Invalid_argument] when [k] exceeds
    the number of nodes. *)
