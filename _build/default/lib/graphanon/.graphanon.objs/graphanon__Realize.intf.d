lib/graphanon/realize.mli: Graph Netcore Rng
