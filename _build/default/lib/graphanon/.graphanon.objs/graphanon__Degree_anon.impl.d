lib/graphanon/degree_anon.ml: Array Int List Map
