lib/graphanon/degree_anon.mli:
