lib/graphanon/realize.ml: Degree_anon Gmetrics Graph Hashtbl Int List Netcore Option Printf Rng String
