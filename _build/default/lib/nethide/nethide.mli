(** Simplified NetHide baseline (Meier et al., USENIX Security 2018).

    NetHide obfuscates a network topology against link-flooding attacks:
    it publishes a *virtual* topology [T'] whose per-flow forwarding trees
    bound how much an attacker learns, while keeping the virtual paths
    similar enough to the physical ones to stay usable. The original
    solves an ILP; this reproduction uses the greedy link-perturbation
    heuristic described in DESIGN.md — it keeps the node set, adds and
    rewires links to flatten link utilization (the security objective)
    subject to a path-similarity budget (the utility constraint), and
    answers forwarding queries with deterministic shortest paths in [T'].

    What the ConfMask comparison needs from the baseline (Figures 8-9) is
    that NetHide does not preserve host-to-host paths exactly — which this
    heuristic exhibits by construction whenever it accepts a
    perturbation. *)

open Netcore

type params = {
  similarity_budget : float;
      (** minimum acceptable average path similarity in [0, 1] *)
  candidates : int;  (** how many perturbations to try *)
}

val default_params : params

val obfuscate :
  ?params:params ->
  rng:Rng.t ->
  Graph.t ->
  flows:(string * string) list ->
  Graph.t
(** [obfuscate ~rng g ~flows] returns the virtual topology. [flows] are
    the (ingress, egress) router pairs whose forwarding paths matter for
    the utility constraint. *)

val forwarding_path : Graph.t -> string -> string -> string list option
(** Deterministic shortest path in the (virtual) topology: BFS with
    lexicographic tie-breaking, as published topologies answer traceroute
    in NetHide. [None] when unreachable; the path includes both
    endpoints. *)

val path_similarity : string list -> string list -> float
(** Jaccard similarity of the edge sets of two paths (1 when identical,
    0 when disjoint). *)
