open Netcore

type params = { similarity_budget : float; candidates : int }

let default_params = { similarity_budget = 0.5; candidates = 64 }

(* BFS shortest path with lexicographic next-hop tie-breaking, so the
   virtual topology answers queries deterministically. *)
let forwarding_path g src dst =
  if not (Graph.mem_node src g && Graph.mem_node dst g) then None
  else if String.equal src dst then Some [ src ]
  else begin
    let dist = Gmetrics.bfs_distances g dst in
    match Graph.Smap.find_opt src dist with
    | None -> None
    | Some _ ->
        let rec walk v acc =
          if String.equal v dst then List.rev (dst :: acc)
          else
            let dv = Graph.Smap.find v dist in
            let next =
              Graph.Sset.fold
                (fun u best ->
                  match Graph.Smap.find_opt u dist with
                  | Some du when du = dv - 1 -> (
                      match best with
                      | Some b when String.compare b u <= 0 -> best
                      | _ -> Some u)
                  | Some _ | None -> best)
                (Graph.neighbors v g) None
            in
            match next with
            | Some u -> walk u (v :: acc)
            | None -> List.rev (v :: acc) (* unreachable: cannot happen *)
        in
        Some (walk src [])
  end

let path_edges p =
  let rec edges = function
    | u :: (v :: _ as rest) ->
        (if String.compare u v < 0 then (u, v) else (v, u)) :: edges rest
    | [ _ ] | [] -> []
  in
  List.sort_uniq compare (edges p)

let path_similarity a b =
  let ea = path_edges a and eb = path_edges b in
  let inter = List.length (List.filter (fun e -> List.mem e eb) ea) in
  let union = List.length (List.sort_uniq compare (ea @ eb)) in
  if union = 0 then 1.0 else float_of_int inter /. float_of_int union

(* Security objective: the maximum number of flows crossing a single link
   (the link a flooding attacker would target). Lower is better. *)
let max_link_load g flows =
  let load = Hashtbl.create 64 in
  List.iter
    (fun (s, d) ->
      match forwarding_path g s d with
      | Some p ->
          List.iter
            (fun e ->
              Hashtbl.replace load e (1 + Option.value ~default:0 (Hashtbl.find_opt load e)))
            (path_edges p)
      | None -> ())
    flows;
  Hashtbl.fold (fun _ n acc -> max n acc) load 0

let avg_similarity ~reference g flows =
  let total, count =
    List.fold_left
      (fun (total, count) (s, d) ->
        match (List.assoc_opt (s, d) reference, forwarding_path g s d) with
        | Some p0, Some p -> (total +. path_similarity p0 p, count + 1)
        | Some _, None -> (total, count + 1) (* disconnected: similarity 0 *)
        | None, _ -> (total, count))
      (0.0, 0) flows
  in
  if count = 0 then 1.0 else total /. float_of_int count

let obfuscate ?(params = default_params) ~rng g ~flows =
  let reference =
    List.filter_map
      (fun (s, d) ->
        Option.map (fun p -> ((s, d), p)) (forwarding_path g s d))
      flows
  in
  let nodes = Graph.nodes g in
  let random_node () = Rng.pick rng nodes in
  let propose current =
    (* A perturbation: add a random absent link, or rewire — remove a
       random present link (keeping connectivity) and add another. *)
    let u = random_node () and v = random_node () in
    if String.equal u v then current
    else if not (Graph.mem_edge u v current) then Graph.add_edge u v current
    else
      let removed = Graph.remove_edge u v current in
      if not (Gmetrics.connected removed) then current
      else
        let a = random_node () and b = random_node () in
        if String.equal a b || Graph.mem_edge a b removed then current
        else Graph.add_edge a b removed
  in
  let rec search current best_load remaining =
    if remaining = 0 then current
    else
      let candidate = propose current in
      if candidate == current then search current best_load (remaining - 1)
      else
        let load = max_link_load candidate flows in
        let sim = avg_similarity ~reference candidate flows in
        if load <= best_load && sim >= params.similarity_budget then
          search candidate load (remaining - 1)
        else search current best_load (remaining - 1)
  in
  search g (max_link_load g flows) params.candidates
