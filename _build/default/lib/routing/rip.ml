let infinity_metric = 16

module Smap = Device.Smap

let protocol =
  {
    Dv.proto = Fib.Rip;
    infinity = infinity_metric;
    enabled = Device.rip_enabled;
    filters =
      (fun r -> match r.Device.r_rip with Some rp -> rp.rp_filters | None -> []);
    link_metric = (fun _ -> 1);
  }

let compute ?scope net = Dv.compute ?scope protocol net
