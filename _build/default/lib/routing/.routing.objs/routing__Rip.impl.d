lib/routing/rip.ml: Device Dv Fib
