lib/routing/eigrp.mli: Device Fib
