lib/routing/eigrp.ml: Device Dv Fib
