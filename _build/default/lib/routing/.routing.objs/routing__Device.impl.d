lib/routing/device.ml: Configlang Graph Hashtbl Int Ipv4 List Map Netcore Option Prefix Printf String
