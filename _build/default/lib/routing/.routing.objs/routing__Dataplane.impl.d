lib/routing/dataplane.ml: Configlang Device Fib Hashtbl List Netcore Option String
