lib/routing/ospf.ml: Device Fib List Netcore Option Pqueue Prefix
