lib/routing/simulate.ml: Bgp Configlang Dataplane Device Eigrp Fib List Netcore Option Ospf Rip
