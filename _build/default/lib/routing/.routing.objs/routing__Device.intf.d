lib/routing/device.mli: Configlang Graph Ipv4 Map Netcore Prefix
