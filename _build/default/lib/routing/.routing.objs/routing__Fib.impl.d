lib/routing/fib.ml: Format Int List Netcore Prefix String
