lib/routing/dataplane.mli: Device Fib Hashtbl
