lib/routing/simulate.mli: Configlang Dataplane Device Fib Netcore
