lib/routing/dv.ml: Configlang Device Fib List Netcore Option Prefix String
