lib/routing/dv.mli: Configlang Device Fib
