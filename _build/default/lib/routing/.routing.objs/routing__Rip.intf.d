lib/routing/rip.mli: Device Fib
