lib/routing/bgp.mli: Configlang Device Fib Netcore
