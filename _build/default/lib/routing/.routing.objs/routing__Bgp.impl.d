lib/routing/bgp.ml: Configlang Device Fib Hashtbl Ipv4 List Netcore Option Prefix String
