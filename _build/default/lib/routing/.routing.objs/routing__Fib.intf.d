lib/routing/fib.mli: Format Ipv4 Netcore Prefix
