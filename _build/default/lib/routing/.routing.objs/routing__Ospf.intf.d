lib/routing/ospf.mli: Device Fib
