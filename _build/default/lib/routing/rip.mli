(** RIP (distance-vector) route computation.

    Synchronous Bellman-Ford to a fixpoint: each round every router offers
    its table to its RIP neighbors; receivers add one hop, apply inbound
    distribute-lists, and keep equal-metric next hops (ECMP). Metric 16 is
    infinity. The fixpoint — not the convergence dynamics — is what the
    anonymizer's functional-equivalence conditions are stated over, so
    split horizon and triggered updates are deliberately not modeled. *)

module Smap = Device.Smap

val infinity_metric : int

val compute :
  ?scope:(string -> bool) -> Device.network -> Fib.route list Smap.t
(** RIP candidate routes per router; [scope] as in {!Ospf.compute}. *)
