open Netcore
module Ast = Configlang.Ast
module Smap = Map.Make (String)

type iface = {
  ifc_name : string;
  ifc_addr : Ipv4.t;
  ifc_plen : int;
  ifc_cost : int;
  ifc_delay : int;
  ifc_acl_in : Ast.acl option;
  ifc_acl_out : Ast.acl option;
}

let ifc_prefix i = Prefix.v i.ifc_addr i.ifc_plen

type ospf_proc = {
  op_networks : (Prefix.t * int) list;
  op_filters : (string * Ast.prefix_list) list;
}

type rip_proc = {
  rp_networks : Prefix.t list;
  rp_filters : (string * Ast.prefix_list) list;
}

type eigrp_proc = {
  ep_as : int;
  ep_networks : Prefix.t list;
  ep_filters : (string * Ast.prefix_list) list;
}

type bgp_neighbor = {
  bn_addr : Ipv4.t;
  bn_remote_as : int;
  bn_filter : Ast.prefix_list option;
  bn_route_map : Ast.route_map option;
}

type bgp_proc = {
  bp_as : int;
  bp_router_id : Ipv4.t option;
  bp_networks : Prefix.t list;
  bp_neighbors : bgp_neighbor list;
}

type router = {
  r_name : string;
  r_ifaces : iface list;
  r_ospf : ospf_proc option;
  r_rip : rip_proc option;
  r_eigrp : eigrp_proc option;
  r_bgp : bgp_proc option;
  r_statics : Configlang.Ast.static_route list;
}

type host = {
  h_name : string;
  h_addr : Ipv4.t;
  h_plen : int;
  h_gateway : Ipv4.t option;
}

let host_prefix h = Prefix.v h.h_addr h.h_plen

type adj = {
  a_from : string;
  a_out_iface : iface;
  a_to : string;
  a_in_iface : iface;
}

type network = {
  routers : router Smap.t;
  hosts : host Smap.t;
  adjs : adj list Smap.t;
  attachments : (string * iface) list Smap.t;
  addr_owner : string Prefix.Map.t;
}

exception Compile_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Compile_error m)) fmt

let default_ospf_cost = 10
let default_delay = 10

let compile_iface (c : Ast.config) (i : Ast.interface) =
  let resolve_acl name =
    match Ast.find_acl c name with
    | Some a -> a
    | None -> err "%s: undefined access-list %s" c.hostname name
  in
  match i.if_address with
  | None -> None
  | Some _ when i.if_shutdown -> None
  | Some (addr, plen) ->
      Some
        {
          ifc_name = i.if_name;
          ifc_addr = addr;
          ifc_plen = plen;
          ifc_cost = Option.value i.if_cost ~default:default_ospf_cost;
          ifc_delay = Option.value i.if_delay ~default:default_delay;
          ifc_acl_in = Option.map resolve_acl i.if_acl_in;
          ifc_acl_out = Option.map resolve_acl i.if_acl_out;
        }

let resolve_filter (c : Ast.config) name =
  match Ast.find_prefix_list c name with
  | Some pl -> pl
  | None -> err "%s: undefined prefix-list %s" c.hostname name

let compile_router (c : Ast.config) =
  let ifaces = List.filter_map (compile_iface c) c.interfaces in
  let distributes ds =
    List.map
      (fun (d : Ast.distribute) -> (d.dl_iface, resolve_filter c d.dl_list))
      ds
  in
  let ospf =
    Option.map
      (fun (o : Ast.ospf) ->
        {
          op_networks = o.ospf_networks;
          op_filters = distributes o.ospf_distribute_in;
        })
      c.ospf
  in
  let rip =
    Option.map
      (fun (r : Ast.rip) ->
        { rp_networks = r.rip_networks; rp_filters = distributes r.rip_distribute_in })
      c.rip
  in
  let eigrp =
    Option.map
      (fun (e : Ast.eigrp) ->
        {
          ep_as = e.eigrp_as;
          ep_networks = e.eigrp_networks;
          ep_filters = distributes e.eigrp_distribute_in;
        })
      c.eigrp
  in
  let bgp =
    Option.map
      (fun (b : Ast.bgp) ->
        {
          bp_as = b.bgp_as;
          bp_router_id = b.bgp_router_id;
          bp_networks = b.bgp_networks;
          bp_neighbors =
            List.map
              (fun (n : Ast.neighbor) ->
                let resolve_rm name =
                  match Ast.find_route_map c name with
                  | Some rm -> rm
                  | None -> err "%s: undefined route-map %s" c.hostname name
                in
                {
                  bn_addr = n.nb_addr;
                  bn_remote_as = n.nb_remote_as;
                  bn_filter = Option.map (resolve_filter c) n.nb_distribute_in;
                  bn_route_map = Option.map resolve_rm n.nb_route_map_in;
                })
              b.bgp_neighbors;
        })
      c.bgp
  in
  {
    r_name = c.hostname;
    r_ifaces = ifaces;
    r_ospf = ospf;
    r_rip = rip;
    r_eigrp = eigrp;
    r_bgp = bgp;
    r_statics = c.statics;
  }

let compile_host (c : Ast.config) =
  match List.filter_map (compile_iface c) c.interfaces with
  | [ i ] ->
      {
        h_name = c.hostname;
        h_addr = i.ifc_addr;
        h_plen = i.ifc_plen;
        h_gateway = c.default_gateway;
      }
  | [] -> err "host %s has no addressed interface" c.hostname
  | _ -> err "host %s has more than one addressed interface" c.hostname

let compile configs =
  try
    let seen = Hashtbl.create 16 in
    List.iter
      (fun (c : Ast.config) ->
        if Hashtbl.mem seen c.hostname then err "duplicate hostname %s" c.hostname;
        Hashtbl.add seen c.hostname ())
      configs;
    let routers, hosts =
      List.fold_left
        (fun (rs, hs) (c : Ast.config) ->
          match c.kind with
          | Ast.Router -> (Smap.add c.hostname (compile_router c) rs, hs)
          | Ast.Host -> (rs, Smap.add c.hostname (compile_host c) hs))
        (Smap.empty, Smap.empty) configs
    in
    (* Index router interfaces by connected subnet and detect duplicate
       addresses. *)
    let by_subnet = Hashtbl.create 64 in
    let addr_owner = ref Prefix.Map.empty in
    Smap.iter
      (fun name r ->
        List.iter
          (fun i ->
            let a32 = Prefix.v i.ifc_addr 32 in
            (match Prefix.Map.find_opt a32 !addr_owner with
            | Some other ->
                err "address %s assigned to both %s and %s"
                  (Ipv4.to_string i.ifc_addr) other name
            | None -> ());
            addr_owner := Prefix.Map.add a32 name !addr_owner;
            let p = ifc_prefix i in
            let existing = Option.value ~default:[] (Hashtbl.find_opt by_subnet p) in
            Hashtbl.replace by_subnet p ((name, i) :: existing))
          r.r_ifaces)
      routers;
    let adjs = ref Smap.empty in
    let push_adj a =
      adjs :=
        Smap.update a.a_from
          (function None -> Some [ a ] | Some l -> Some (a :: l))
          !adjs
    in
    Hashtbl.iter
      (fun _p members ->
        List.iter
          (fun (u, ui) ->
            List.iter
              (fun (v, vi) ->
                if not (String.equal u v) then
                  push_adj { a_from = u; a_out_iface = ui; a_to = v; a_in_iface = vi })
              members)
          members)
      by_subnet;
    let adjs =
      Smap.fold (fun name _ acc -> if Smap.mem name acc then acc else Smap.add name [] acc)
        routers !adjs
    in
    (* Attach each host to the routers on its subnet; a configured gateway
       narrows the attachment to the router owning that address. *)
    let attachments =
      Smap.map
        (fun h ->
          let hp = host_prefix h in
          let candidates =
            Option.value ~default:[] (Hashtbl.find_opt by_subnet hp)
          in
          let selected =
            match h.h_gateway with
            | None -> candidates
            | Some gw -> (
                match
                  List.filter (fun (_, i) -> Ipv4.equal i.ifc_addr gw) candidates
                with
                | [] -> candidates
                | narrowed -> narrowed)
          in
          if selected = [] then err "host %s is not attached to any router" h.h_name;
          List.sort (fun (a, _) (b, _) -> String.compare a b) selected)
        hosts
    in
    Ok { routers; hosts; adjs; attachments; addr_owner = !addr_owner }
  with Compile_error m -> Error m

let compile_exn configs =
  match compile configs with Ok n -> n | Error m -> failwith m

let router_graph net =
  let g = Smap.fold (fun name _ g -> Graph.add_node name g) net.routers Graph.empty in
  Smap.fold
    (fun _ adjs g ->
      List.fold_left (fun g a -> Graph.add_edge a.a_from a.a_to g) g adjs)
    net.adjs g

let full_graph net =
  let g = router_graph net in
  Smap.fold
    (fun hname atts g ->
      List.fold_left (fun g (rname, _) -> Graph.add_edge hname rname g) g atts)
    net.attachments g

let find_adj net u v =
  match Smap.find_opt u net.adjs with
  | None -> None
  | Some adjs ->
      List.filter (fun a -> String.equal a.a_to v) adjs
      |> List.sort (fun a b -> Int.compare a.a_out_iface.ifc_cost b.a_out_iface.ifc_cost)
      |> function
      | [] -> None
      | a :: _ -> Some a

let owner_of_addr net addr =
  Prefix.Map.find_opt (Prefix.v addr 32) net.addr_owner

let ospf_enabled r i =
  match r.r_ospf with
  | None -> false
  | Some o -> List.exists (fun (net, _) -> Prefix.mem i.ifc_addr net) o.op_networks

let rip_enabled r i =
  match r.r_rip with
  | None -> false
  | Some rp -> List.exists (fun net -> Prefix.mem i.ifc_addr net) rp.rp_networks

let eigrp_enabled r i =
  match r.r_eigrp with
  | None -> false
  | Some ep -> List.exists (fun net -> Prefix.mem i.ifc_addr net) ep.ep_networks

let igp_filters r =
  (match r.r_ospf with Some o -> o.op_filters | None -> [])
  @ (match r.r_rip with Some rp -> rp.rp_filters | None -> [])
  @ match r.r_eigrp with Some ep -> ep.ep_filters | None -> []

let as_of_router r = Option.map (fun b -> b.bp_as) r.r_bgp

let iface_filter_denies filters iface p =
  match List.filter (fun (name, _) -> String.equal name iface) filters with
  | [] -> false
  | bound ->
      (* All lists bound to the interface must permit; an unmatched prefix
         hits the implicit deny. *)
      List.exists
        (fun (_, pl) ->
          match Ast.prefix_list_matches pl p with
          | Some Ast.Permit -> false
          | Some Ast.Deny | None -> true)
        bound
