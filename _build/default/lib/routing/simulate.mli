(** End-to-end control-plane simulation (the Batfish substitute).

    Compiles configurations, runs the protocol engines — one IGP domain
    per AS when BGP is present, a single domain otherwise — merges
    candidate routes into per-router FIBs by administrative distance, and
    exposes the data plane. *)

module Smap = Device.Smap

type snapshot = {
  net : Device.network;
  fibs : Fib.t Smap.t;
}

val run : Configlang.Ast.config list -> (snapshot, string) result
val run_exn : Configlang.Ast.config list -> snapshot

val run_net : Device.network -> Fib.t Smap.t
(** Protocol computation only, for callers that already compiled. *)

val dataplane : ?max_paths:int -> snapshot -> Dataplane.t

val host_routes : snapshot -> (string * Netcore.Prefix.t * string list) list
(** Flattened FIB view [(router, host prefix, sorted next-hop routers)],
    restricted to destinations that are host subnets — the
    [⟨r, h_d, nxt⟩ ∈ DP] triples iterated by Algorithm 1. *)

val host_prefixes : Device.network -> (Netcore.Prefix.t * string) list
(** [(subnet, host name)] for every host. *)
