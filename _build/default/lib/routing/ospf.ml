open Netcore
module Smap = Device.Smap

let all _ = true

(* Directed adjacencies usable by OSPF: both interface ends enabled and
   both routers in scope. *)
let ospf_adjs ?(scope = all) (net : Device.network) =
  Smap.filter_map
    (fun name adjs ->
      if not (scope name) then None
      else
        match Smap.find_opt name net.routers with
        | None -> None
        | Some r when r.Device.r_ospf = None -> None
        | Some r ->
            Some
              (List.filter
                 (fun (a : Device.adj) ->
                   scope a.a_to
                   && Device.ospf_enabled r a.a_out_iface
                   &&
                   match Smap.find_opt a.a_to net.routers with
                   | Some peer -> Device.ospf_enabled peer a.a_in_iface
                   | None -> false)
                 adjs))
    net.adjs

(* Incoming adjacencies indexed by head node, for the reverse Dijkstra. *)
let reverse_index adjs =
  Smap.fold
    (fun _ outs acc ->
      List.fold_left
        (fun acc (a : Device.adj) ->
          Smap.update a.a_to
            (function None -> Some [ a ] | Some l -> Some (a :: l))
            acc)
        acc outs)
    adjs Smap.empty

(* Multi-source Dijkstra toward a destination: [seeds] are (router, cost)
   pairs; the result maps each router to its distance to the destination. *)
let distances_to ~rev seeds =
  let rec loop dist pq =
    match Pqueue.pop pq with
    | None -> dist
    | Some (d, v, pq) ->
        if Smap.mem v dist then loop dist pq
        else
          let dist = Smap.add v d dist in
          let pq =
            List.fold_left
              (fun pq (a : Device.adj) ->
                if Smap.mem a.a_from dist then pq
                else Pqueue.insert (d + a.a_out_iface.ifc_cost) a.a_from pq)
              pq
              (Option.value ~default:[] (Smap.find_opt v rev))
          in
          loop dist pq
  in
  let pq =
    List.fold_left (fun pq (r, c) -> Pqueue.insert c r pq) Pqueue.empty seeds
  in
  loop Smap.empty pq

let advertised_prefixes ?(scope = all) (net : Device.network) =
  Smap.fold
    (fun name (r : Device.router) acc ->
      if not (scope name) then acc
      else
        List.fold_left
          (fun acc i ->
            if Device.ospf_enabled r i then
              let p = Device.ifc_prefix i in
              Prefix.Map.update p
                (function
                  | None -> Some [ (name, i.Device.ifc_cost) ]
                  | Some l -> Some ((name, i.Device.ifc_cost) :: l))
                acc
            else acc)
          acc r.r_ifaces)
    net.routers Prefix.Map.empty

let compute ?(scope = all) (net : Device.network) =
  let adjs = ospf_adjs ~scope net in
  let rev = reverse_index adjs in
  let prefixes = advertised_prefixes ~scope net in
  Prefix.Map.fold
    (fun p seeds acc ->
      let dist = distances_to ~rev seeds in
      let connected = List.map fst seeds in
      Smap.fold
        (fun r dr acc ->
          if List.mem r connected then acc
          else
            let router = Smap.find r net.routers in
            let filters =
              match router.Device.r_ospf with
              | Some o -> o.op_filters
              | None -> []
            in
            let nexthops =
              List.filter_map
                (fun (a : Device.adj) ->
                  match Smap.find_opt a.a_to dist with
                  | Some dn when a.a_out_iface.ifc_cost + dn = dr ->
                      if Device.iface_filter_denies filters a.a_out_iface.ifc_name p
                      then None
                      else
                        Some
                          {
                            Fib.nh_router = a.a_to;
                            nh_iface = a.a_out_iface.ifc_name;
                          }
                  | Some _ | None -> None)
                (Option.value ~default:[] (Smap.find_opt r adjs))
            in
            if nexthops = [] then acc
            else
              let route =
                {
                  Fib.rt_prefix = p;
                  rt_proto = Fib.Ospf;
                  rt_metric = dr;
                  rt_nexthops = nexthops;
                }
              in
              Smap.update r
                (function None -> Some [ route ] | Some l -> Some (route :: l))
                acc)
        dist acc)
    prefixes Smap.empty

let min_cost ?(scope = all) (net : Device.network) u =
  (* Distance from [u] to each router v: Dijkstra on forward adjacencies. *)
  let adjs = ospf_adjs ~scope net in
  let rec loop dist pq =
    match Pqueue.pop pq with
    | None -> dist
    | Some (d, v, pq) ->
        if Smap.mem v dist then loop dist pq
        else
          let dist = Smap.add v d dist in
          let pq =
            List.fold_left
              (fun pq (a : Device.adj) ->
                if Smap.mem a.a_to dist then pq
                else Pqueue.insert (d + a.a_out_iface.ifc_cost) a.a_to pq)
              pq
              (Option.value ~default:[] (Smap.find_opt v adjs))
          in
          loop dist pq
  in
  loop Smap.empty (Pqueue.insert 0 u Pqueue.empty)
