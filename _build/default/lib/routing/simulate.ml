(* merged candidate routes per protocol *)
module Smap = Device.Smap

type snapshot = {
  net : Device.network;
  fibs : Fib.t Smap.t;
}

(* A static route is usable when its next hop lies on one of the router's
   connected subnets; the adjacency identifies the neighbor device. *)
let static_routes (net : Device.network) (r : Device.router) =
  List.filter_map
    (fun (st : Configlang.Ast.static_route) ->
      let via =
        List.find_opt
          (fun i -> Netcore.Prefix.mem st.st_next_hop (Device.ifc_prefix i))
          r.r_ifaces
      in
      match via with
      | None -> None
      | Some i ->
          Option.map
            (fun owner ->
              {
                Fib.rt_prefix = st.st_prefix;
                rt_proto = Fib.Static;
                rt_metric = 0;
                rt_nexthops = [ { Fib.nh_router = owner; nh_iface = i.ifc_name } ];
              })
            (Device.owner_of_addr net st.st_next_hop))
    r.r_statics

let connected_routes (r : Device.router) =
  List.map
    (fun i ->
      {
        Fib.rt_prefix = Device.ifc_prefix i;
        rt_proto = Fib.Connected;
        rt_metric = 0;
        rt_nexthops = [];
      })
    r.r_ifaces

let as_groups (net : Device.network) =
  Smap.fold
    (fun name r acc ->
      match Device.as_of_router r with
      | Some asn ->
          let members = Option.value ~default:[] (List.assoc_opt asn acc) in
          (asn, name :: members) :: List.remove_assoc asn acc
      | None -> acc)
    net.routers []

let run_net (net : Device.network) =
  let has_bgp =
    Smap.exists (fun _ (r : Device.router) -> r.r_bgp <> None) net.routers
  in
  let igp_candidates =
    if has_bgp then
      (* One IGP domain per AS; BGP-less routers form a residual domain. *)
      let groups = as_groups net in
      let member_as name =
        List.find_opt (fun (_, members) -> List.mem name members) groups
        |> Option.map fst
      in
      let domains =
        List.map (fun (asn, _) -> fun name -> member_as name = Some asn) groups
        @ [ (fun name -> member_as name = None) ]
      in
      List.fold_left
        (fun acc scope ->
          let merge computed =
            Smap.union (fun _ a b -> Some (a @ b)) acc computed
          in
          merge (Ospf.compute ~scope net)
          |> fun acc' ->
          Smap.union (fun _ a b -> Some (a @ b)) acc' (Rip.compute ~scope net)
          |> fun acc'' ->
          Smap.union (fun _ a b -> Some (a @ b)) acc'' (Eigrp.compute ~scope net))
        Smap.empty domains
    else
      Smap.union
        (fun _ a b -> Some (a @ b))
        (Smap.union (fun _ a b -> Some (a @ b)) (Ospf.compute net) (Rip.compute net))
        (Eigrp.compute net)
  in
  let base_fibs =
    Smap.mapi
      (fun name (r : Device.router) ->
        let candidates =
          connected_routes r @ static_routes net r
          @ Option.value ~default:[] (Smap.find_opt name igp_candidates)
        in
        List.fold_left (fun fib c -> Fib.add_candidate c fib) Fib.empty candidates)
      net.routers
  in
  if not has_bgp then base_fibs
  else
    let bgp_candidates = Bgp.compute net ~igp_fibs:base_fibs in
    Smap.mapi
      (fun name fib ->
        List.fold_left
          (fun fib c -> Fib.add_candidate c fib)
          fib
          (Option.value ~default:[] (Smap.find_opt name bgp_candidates)))
      base_fibs

let run configs =
  match Device.compile configs with
  | Error _ as e -> e
  | Ok net -> Ok { net; fibs = run_net net }

let run_exn configs =
  match run configs with Ok s -> s | Error m -> failwith m

let dataplane ?max_paths s = Dataplane.extract ?max_paths s.net s.fibs

let host_prefixes (net : Device.network) =
  Smap.fold
    (fun name h acc -> (Device.host_prefix h, name) :: acc)
    net.hosts []
  |> List.sort compare

let host_routes s =
  let hps = host_prefixes s.net in
  Smap.fold
    (fun rname fib acc ->
      List.fold_left
        (fun acc (hp, _) ->
          match Fib.find fib hp with
          | Some route when route.rt_nexthops <> [] ->
              (rname, hp, Fib.nexthop_names route) :: acc
          | Some _ | None -> acc)
        acc hps)
    s.fibs []
  |> List.sort compare
