(** EIGRP route computation (the paper's second distance-vector family).

    Simplified composite metric: the sum of the receiving interfaces'
    [delay] values along the path (the bandwidth term of the real
    composite is constant in CiscoLite and therefore omitted; see
    DESIGN.md). Semantics otherwise identical to {!Rip} via the shared
    {!Dv} engine; administrative distance 90 as on Cisco. *)

module Smap = Device.Smap

val infinity_metric : int

val compute :
  ?scope:(string -> bool) -> Device.network -> Fib.route list Smap.t
