open Netcore
module Smap = Device.Smap

type protocol = {
  proto : Fib.proto;
  infinity : int;
  enabled : Device.router -> Device.iface -> bool;
  filters : Device.router -> (string * Configlang.Ast.prefix_list) list;
  link_metric : Device.adj -> int;
}

type entry = { metric : int; nexthops : Fib.nexthop list }

let all _ = true

(* Adjacencies over which the protocol speaks: both interface ends enabled
   and both routers in scope. *)
let dv_adjs ~scope p (net : Device.network) =
  Smap.filter_map
    (fun name adjs ->
      if not (scope name) then None
      else
        match Smap.find_opt name net.routers with
        | None -> None
        | Some r ->
            Some
              (List.filter
                 (fun (a : Device.adj) ->
                   scope a.a_to
                   && p.enabled r a.a_out_iface
                   &&
                   match Smap.find_opt a.a_to net.routers with
                   | Some peer -> p.enabled peer a.a_in_iface
                   | None -> false)
                 adjs))
    net.adjs

let compute ?(scope = all) p (net : Device.network) =
  let adjs = dv_adjs ~scope p net in
  (* tables : router -> prefix -> entry. Connected prefixes start at 0. *)
  let init =
    Smap.fold
      (fun name (r : Device.router) acc ->
        if not (scope name) then acc
        else
          let table =
            List.fold_left
              (fun t i ->
                if p.enabled r i then
                  Prefix.Map.add (Device.ifc_prefix i) { metric = 0; nexthops = [] } t
                else t)
              Prefix.Map.empty r.r_ifaces
          in
          if Prefix.Map.is_empty table then acc else Smap.add name table acc)
      net.routers Smap.empty
  in
  let step tables =
    let changed = ref false in
    let tables' =
      Smap.mapi
        (fun name table ->
          let router = Smap.find name net.routers in
          let filters = p.filters router in
          List.fold_left
            (fun table (a : Device.adj) ->
              let neighbor_table =
                Option.value ~default:Prefix.Map.empty (Smap.find_opt a.a_to tables)
              in
              Prefix.Map.fold
                (fun pfx (e : entry) table ->
                  let metric = min (e.metric + p.link_metric a) p.infinity in
                  if metric >= p.infinity then table
                  else if
                    Device.iface_filter_denies filters a.a_out_iface.ifc_name pfx
                  then table
                  else
                    let nh =
                      { Fib.nh_router = a.a_to; nh_iface = a.a_out_iface.ifc_name }
                    in
                    Prefix.Map.update pfx
                      (function
                        | None ->
                            changed := true;
                            Some { metric; nexthops = [ nh ] }
                        | Some cur when metric < cur.metric ->
                            changed := true;
                            Some { metric; nexthops = [ nh ] }
                        | Some cur
                          when metric = cur.metric && cur.metric > 0
                               && not (List.mem nh cur.nexthops) ->
                            changed := true;
                            Some { cur with nexthops = nh :: cur.nexthops }
                        | Some cur -> Some cur)
                      table)
                neighbor_table table)
            table
            (Option.value ~default:[] (Smap.find_opt name adjs)))
        tables
    in
    (tables', !changed)
  in
  (* The metric space is finite (bounded by infinity) and metrics only
     decrease / next-hop sets only grow per (router, prefix), so the
     fixpoint exists; the round guard is belt and braces. *)
  let max_rounds = 4 * (Smap.cardinal net.routers + 16) in
  let rec converge tables round =
    if round > max_rounds then tables
    else
      let tables', changed = step tables in
      if changed then converge tables' (round + 1) else tables'
  in
  let final = converge init 0 in
  Smap.map
    (fun table ->
      Prefix.Map.fold
        (fun pfx e acc ->
          if e.metric = 0 then acc (* connected; covered by connected routes *)
          else
            {
              Fib.rt_prefix = pfx;
              rt_proto = p.proto;
              rt_metric = e.metric;
              rt_nexthops =
                List.sort_uniq
                  (fun (x : Fib.nexthop) y -> String.compare x.nh_router y.nh_router)
                  e.nexthops;
            }
            :: acc)
        table [])
    final
