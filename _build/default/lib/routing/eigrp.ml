let infinity_metric = 1 lsl 40

module Smap = Device.Smap

let protocol =
  {
    Dv.proto = Fib.Eigrp;
    infinity = infinity_metric;
    enabled = Device.eigrp_enabled;
    filters =
      (fun r -> match r.Device.r_eigrp with Some ep -> ep.ep_filters | None -> []);
    link_metric = (fun (a : Device.adj) -> a.a_out_iface.ifc_delay);
  }

let compute ?scope net = Dv.compute ?scope protocol net
