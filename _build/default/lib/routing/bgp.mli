(** BGP (path-vector) route computation.

    Model: eBGP sessions between directly-connected border routers of
    different ASes, iBGP sessions (full mesh, configured explicitly)
    inside each AS with next-hop-self. Best-path selection is shortest
    AS path, then eBGP-over-iBGP, then lowest advertising-peer name —
    deterministic, loop-free policies, so synchronous rounds reach a
    fixpoint. Inbound per-neighbor distribute-lists filter received
    prefixes, which is how ConfMask disables fake eBGP adjacencies while
    keeping them plausible (§4.3, Listing 3).

    The resulting routes carry next hops already resolved through the
    per-AS IGP: an iBGP route toward a remote border router forwards along
    the IGP shortest path, so hop-by-hop FIB walks reproduce the intra-AS
    transit the paper's data plane contains. *)

module Smap = Device.Smap

type session = {
  s_from : string;  (** advertising router *)
  s_to : string;  (** receiving router *)
  s_via : Netcore.Ipv4.t;  (** [s_from]'s address as configured on [s_to] *)
  s_ebgp : bool;
  s_filter : Configlang.Ast.prefix_list option;  (** receiver's inbound filter *)
  s_route_map : Configlang.Ast.route_map option;
      (** receiver's inbound policy (local-preference) *)
}

val sessions : Device.network -> session list
(** Established directed sessions: both sides must have matching neighbor
    statements with correct remote-as values. *)

val compute :
  Device.network -> igp_fibs:Fib.t Smap.t -> Fib.route list Smap.t
(** BGP candidate routes per router. [igp_fibs] (connected + IGP routes,
    already merged) resolve iBGP next hops. *)
