(** Compiled device and network model.

    [compile] turns a set of parsed CiscoLite configurations into the
    semantic model the protocol engines run on: routers with resolved
    protocol processes and filters, hosts, the derived layer-3 adjacency
    (interfaces sharing a subnet), and host attachment points. This is the
    Batfish-equivalent "vendor-independent model" of the reproduction. *)

open Netcore

type iface = {
  ifc_name : string;
  ifc_addr : Ipv4.t;
  ifc_plen : int;
  ifc_cost : int;  (** OSPF cost; CiscoLite default is 10 *)
  ifc_delay : int;  (** EIGRP delay metric component; default 10 *)
  ifc_acl_in : Configlang.Ast.acl option;  (** packet filter, inbound *)
  ifc_acl_out : Configlang.Ast.acl option;  (** packet filter, outbound *)
}

val ifc_prefix : iface -> Prefix.t

type ospf_proc = {
  op_networks : (Prefix.t * int) list;
  op_filters : (string * Configlang.Ast.prefix_list) list;
      (** inbound distribute lists, keyed by interface name *)
}

type rip_proc = {
  rp_networks : Prefix.t list;
  rp_filters : (string * Configlang.Ast.prefix_list) list;
}

type eigrp_proc = {
  ep_as : int;
  ep_networks : Prefix.t list;
  ep_filters : (string * Configlang.Ast.prefix_list) list;
}

type bgp_neighbor = {
  bn_addr : Ipv4.t;
  bn_remote_as : int;
  bn_filter : Configlang.Ast.prefix_list option;
  bn_route_map : Configlang.Ast.route_map option;  (** inbound policy *)
}

type bgp_proc = {
  bp_as : int;
  bp_router_id : Ipv4.t option;
  bp_networks : Prefix.t list;
  bp_neighbors : bgp_neighbor list;
}

type router = {
  r_name : string;
  r_ifaces : iface list;
  r_ospf : ospf_proc option;
  r_rip : rip_proc option;
  r_eigrp : eigrp_proc option;
  r_bgp : bgp_proc option;
  r_statics : Configlang.Ast.static_route list;
}

type host = {
  h_name : string;
  h_addr : Ipv4.t;
  h_plen : int;
  h_gateway : Ipv4.t option;
}

val host_prefix : host -> Prefix.t

(** One directed router-router adjacency: [a_from] can forward out of
    [a_out_iface] directly to [a_to] (whose receiving interface is
    [a_in_iface]). Subnets with more than two routers yield a clique. *)
type adj = {
  a_from : string;
  a_out_iface : iface;
  a_to : string;
  a_in_iface : iface;
}

module Smap : Map.S with type key = string

type network = {
  routers : router Smap.t;
  hosts : host Smap.t;
  adjs : adj list Smap.t;  (** outgoing adjacencies per router *)
  attachments : (string * iface) list Smap.t;
      (** host name -> (gateway router, router-side interface) *)
  addr_owner : string Prefix.Map.t;
      (** /32 of every router interface address -> router name *)
}

val compile : Configlang.Ast.config list -> (network, string) result
(** Validates and links the configurations. Errors include duplicate
    hostnames, hosts without an addressed interface, references to
    undefined prefix lists, and duplicate interface addresses. *)

val compile_exn : Configlang.Ast.config list -> network

val router_graph : network -> Graph.t
(** The router-level topology as a simple graph (hosts excluded), i.e. the
    [G = (R, E_R)] view of ConfMask §4.2. *)

val full_graph : network -> Graph.t
(** Routers and hosts. *)

val find_adj : network -> string -> string -> adj option
(** [find_adj net u v] is the (lowest-cost) directed adjacency from router
    [u] to router [v], if they share a subnet. *)

val owner_of_addr : network -> Ipv4.t -> string option
(** The router owning an interface address. *)

val ospf_enabled : router -> iface -> bool
(** Whether the interface address falls under an OSPF network statement. *)

val rip_enabled : router -> iface -> bool
val eigrp_enabled : router -> iface -> bool

val igp_filters : router -> (string * Configlang.Ast.prefix_list) list
(** All inbound IGP distribute-lists of the router (OSPF + RIP + EIGRP). *)

val as_of_router : router -> int option
(** The BGP AS number, when the router runs BGP. *)

val iface_filter_denies :
  (string * Configlang.Ast.prefix_list) list -> string -> Prefix.t -> bool
(** [iface_filter_denies filters iface p]: whether an inbound
    distribute-list bound to [iface] denies routes for [p]. Prefix lists
    use first-match semantics with an implicit trailing deny, so an
    attached filter with no matching rule denies. Interfaces with no
    attached filter accept everything. *)
