module Smap = Device.Smap
module Sset = Netcore.Graph.Sset

type path = string list

type trace = {
  delivered : path list;
  dropped : path list;
  filtered : path list;
  looped : path list;
  truncated : bool;
}

let max_paths_default = 4096

let acl_permits acl ~src ~dst =
  match acl with
  | None -> true
  | Some a -> Configlang.Ast.acl_permits a ~src ~dst

let traceroute ?(max_paths = max_paths_default) (net : Device.network) fibs ~src
    ~dst =
  let src_host =
    match Smap.find_opt src net.hosts with
    | Some h -> h
    | None -> invalid_arg ("Dataplane.traceroute: unknown host " ^ src)
  in
  let dst_host =
    match Smap.find_opt dst net.hosts with
    | Some h -> h
    | None -> invalid_arg ("Dataplane.traceroute: unknown host " ^ dst)
  in
  let src_addr = src_host.h_addr and dst_addr = dst_host.h_addr in
  let permits acl = acl_permits acl ~src:src_addr ~dst:dst_addr in
  let dst_attachments =
    Option.value ~default:[] (Smap.find_opt dst net.attachments)
  in
  let dst_routers = List.map fst dst_attachments in
  let delivered = ref [] and dropped = ref [] and filtered = ref [] in
  let looped = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  let find_iface router name =
    match Smap.find_opt router net.routers with
    | None -> None
    | Some r ->
        List.find_opt (fun i -> String.equal i.Device.ifc_name name) r.r_ifaces
  in
  (* The interface the packet enters [a.a_to] on, when [a.a_from] forwards
     out of interface [out_name]. *)
  let arrival_iface router out_name nh_router =
    match Smap.find_opt router net.adjs with
    | None -> None
    | Some adjs ->
        List.find_opt
          (fun (a : Device.adj) ->
            String.equal a.a_to nh_router
            && String.equal a.a_out_iface.ifc_name out_name)
          adjs
        |> Option.map (fun (a : Device.adj) -> a.a_in_iface)
  in
  (* DFS over the ECMP branching; [rev] accumulates routers in reverse.
     [arrival] is the interface the packet arrived on at [router]. *)
  let rec walk router arrival visited rev =
    if !count >= max_paths then truncated := true
    else if
      not
        (permits (Option.bind arrival (fun i -> i.Device.ifc_acl_in)))
    then filtered := (src :: List.rev (router :: rev)) :: !filtered
    else if List.mem router dst_routers then begin
      (* Delivery: the outbound filter of the host-facing interface. *)
      let out_acl =
        List.assoc_opt router dst_attachments
        |> fun o -> Option.bind o (fun i -> i.Device.ifc_acl_out)
      in
      if permits out_acl then begin
        incr count;
        delivered := ((src :: List.rev (router :: rev)) @ [ dst ]) :: !delivered
      end
      else filtered := (src :: List.rev (router :: rev)) :: !filtered
    end
    else if Sset.mem router visited then
      looped := (src :: List.rev (router :: rev)) :: !looped
    else
      let visited = Sset.add router visited in
      let rev = router :: rev in
      match Smap.find_opt router fibs with
      | None -> dropped := (src :: List.rev rev) :: !dropped
      | Some fib -> (
          match Fib.lookup fib dst_addr with
          | None -> dropped := (src :: List.rev rev) :: !dropped
          | Some route when route.rt_nexthops = [] ->
              (* Connected route but the destination host is not attached
                 here: the address does not answer. *)
              dropped := (src :: List.rev rev) :: !dropped
          | Some route ->
              List.iter
                (fun (nh : Fib.nexthop) ->
                  match find_iface router nh.nh_iface with
                  | Some out_iface when not (permits out_iface.ifc_acl_out) ->
                      filtered := (src :: List.rev rev) :: !filtered
                  | out ->
                      ignore out;
                      walk nh.nh_router
                        (arrival_iface router nh.nh_iface nh.nh_router)
                        visited rev)
                route.rt_nexthops)
  in
  if Netcore.Prefix.equal (Device.host_prefix src_host) (Device.host_prefix dst_host)
  then
    {
      delivered = [ [ src; dst ] ];
      dropped = [];
      filtered = [];
      looped = [];
      truncated = false;
    }
  else begin
    let start_attachments =
      Option.value ~default:[] (Smap.find_opt src net.attachments)
    in
    List.iter
      (fun (r, iface) -> walk r (Some iface) Sset.empty [])
      (List.sort_uniq compare start_attachments);
    {
      delivered = List.sort_uniq compare !delivered;
      dropped = List.sort_uniq compare !dropped;
      filtered = List.sort_uniq compare !filtered;
      looped = List.sort_uniq compare !looped;
      truncated = !truncated;
    }
  end

type t = (string * string, trace) Hashtbl.t

let extract ?max_paths (net : Device.network) fibs =
  let hosts = List.map fst (Smap.bindings net.hosts) in
  let dp = Hashtbl.create (List.length hosts * List.length hosts) in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (String.equal src dst) then
            Hashtbl.replace dp (src, dst) (traceroute ?max_paths net fibs ~src ~dst))
        hosts)
    hosts;
  dp

let paths dp ~src ~dst =
  match Hashtbl.find_opt dp (src, dst) with
  | Some t -> t.delivered
  | None -> []

let all_delivered dp =
  Hashtbl.fold
    (fun key t acc -> if t.delivered = [] then acc else (key, t.delivered) :: acc)
    dp []
  |> List.sort compare

let equal_on ~hosts a b =
  List.for_all
    (fun src ->
      List.for_all
        (fun dst ->
          String.equal src dst
          || List.equal (List.equal String.equal)
               (paths a ~src ~dst) (paths b ~src ~dst))
        hosts)
    hosts
