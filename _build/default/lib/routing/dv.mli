(** Generic distance-vector fixpoint, shared by RIP and EIGRP.

    Synchronous Bellman-Ford to a fixpoint: each round every router offers
    its table to its protocol neighbors; receivers add the link metric,
    apply inbound distribute-lists, and keep equal-metric next hops
    (ECMP). The fixpoint — not the convergence dynamics — is what the
    anonymizer's functional-equivalence conditions are stated over, so
    split horizon and triggered updates are deliberately not modeled. *)

module Smap = Device.Smap

type protocol = {
  proto : Fib.proto;  (** tag for the produced routes *)
  infinity : int;  (** metric treated as unreachable *)
  enabled : Device.router -> Device.iface -> bool;
  filters : Device.router -> (string * Configlang.Ast.prefix_list) list;
  link_metric : Device.adj -> int;
      (** added when importing over this adjacency (from the receiver's
          point of view; [a_out_iface] is the receiver's interface) *)
}

val compute :
  ?scope:(string -> bool) -> protocol -> Device.network -> Fib.route list Smap.t
