(** OSPF (link-state) route computation.

    Single-area model: every router in scope that runs an OSPF process and
    has OSPF-enabled interfaces participates in one shortest-path domain.
    For each advertised prefix we run a multi-source Dijkstra seeded at the
    advertising routers (at their stub costs) over the reversed adjacency,
    then derive ECMP next hops from the distance field. Inbound
    distribute-lists suppress the *installation* of a next hop without
    affecting the SPF computation — exactly the Cisco semantics ConfMask's
    route-equivalence filters rely on (§5.2). *)

module Smap = Device.Smap

val compute :
  ?scope:(string -> bool) -> Device.network -> Fib.route list Smap.t
(** OSPF candidate routes per router. [scope] restricts the domain (used
    to run one OSPF instance per AS in BGP networks); it defaults to all
    routers. *)

val min_cost :
  ?scope:(string -> bool) -> Device.network -> string -> int Smap.t
(** [min_cost net u] is the OSPF shortest-path distance from router [u] to
    every other reachable router in the domain — the [min_cost(u, v)] of
    the link-state SFE conditions (§5.1). *)
