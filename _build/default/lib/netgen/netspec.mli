(** Abstract network specifications, the input to the config emitter. *)

type igp = Ospf | Rip | Eigrp

type t = {
  name : string;
  routers : string list;
  links : (string * string * int) list;
      (** (router, router, IGP metric applied on both ends: OSPF cost or
          EIGRP delay; ignored by RIP) *)
  hosts : (string * string) list;  (** (host name, attached router) *)
  asn : (string * int) list;
      (** router -> AS number; empty for single-domain IGP networks *)
  igp : igp;
}

val v :
  ?asn:(string * int) list ->
  ?igp:igp ->
  name:string ->
  routers:string list ->
  links:(string * string * int) list ->
  hosts:(string * string) list ->
  unit ->
  t
(** Smart constructor; validates that link endpoints and host attachments
    reference declared routers, that there are no duplicate names, and
    that every router has an AS when [asn] is non-empty. Raises
    [Invalid_argument] otherwise. *)

val router_graph : t -> Netcore.Graph.t

val as_of : t -> string -> int option

val is_bgp : t -> bool
