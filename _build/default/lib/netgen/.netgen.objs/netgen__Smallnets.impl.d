lib/netgen/smallnets.ml: Array List Netspec Printf
