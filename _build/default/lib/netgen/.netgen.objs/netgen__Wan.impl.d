lib/netgen/wan.ml: Array Float Hashtbl List Netcore Netspec Printf Rng
