lib/netgen/nets.ml: Emit Fattree List Netspec Smallnets String Wan
