lib/netgen/netspec.ml: List Netcore Printf Set String
