lib/netgen/netspec.mli: Netcore
