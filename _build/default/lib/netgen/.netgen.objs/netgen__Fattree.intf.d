lib/netgen/fattree.mli: Netspec
