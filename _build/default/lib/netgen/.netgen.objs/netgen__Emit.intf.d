lib/netgen/emit.mli: Configlang Netspec
