lib/netgen/wan.mli: Netspec
