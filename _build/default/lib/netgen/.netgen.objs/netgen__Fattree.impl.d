lib/netgen/fattree.ml: Fun List Netspec Printf
