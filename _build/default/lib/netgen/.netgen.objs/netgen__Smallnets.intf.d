lib/netgen/smallnets.mli: Netspec
