lib/netgen/emit.ml: Configlang Hashtbl Ipv4 List Netcore Netspec Option Prefix Printf String
