lib/netgen/nets.mli: Configlang Netspec
