type igp = Ospf | Rip | Eigrp

type t = {
  name : string;
  routers : string list;
  links : (string * string * int) list;
  hosts : (string * string) list;
  asn : (string * int) list;
  igp : igp;
}

let v ?(asn = []) ?(igp = Ospf) ~name ~routers ~links ~hosts () =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let module Ss = Set.Make (String) in
  let router_set = Ss.of_list routers in
  if Ss.cardinal router_set <> List.length routers then
    fail "%s: duplicate router names" name;
  List.iter
    (fun (u, v, _) ->
      if not (Ss.mem u router_set && Ss.mem v router_set) then
        fail "%s: link %s-%s references undeclared router" name u v;
      if String.equal u v then fail "%s: self-link on %s" name u)
    links;
  let host_names = List.map fst hosts in
  let host_set = Ss.of_list host_names in
  if Ss.cardinal host_set <> List.length hosts then
    fail "%s: duplicate host names" name;
  List.iter
    (fun (h, r) ->
      if Ss.mem h router_set then fail "%s: host %s clashes with a router" name h;
      if not (Ss.mem r router_set) then
        fail "%s: host %s attached to undeclared router %s" name h r)
    hosts;
  if asn <> [] then
    List.iter
      (fun r ->
        if not (List.mem_assoc r asn) then fail "%s: router %s has no AS" name r)
      routers;
  { name; routers; links; hosts; asn; igp }

let router_graph t =
  let g =
    List.fold_left (fun g r -> Netcore.Graph.add_node r g) Netcore.Graph.empty t.routers
  in
  List.fold_left (fun g (u, v, _) -> Netcore.Graph.add_edge u v g) g t.links

let as_of t r = List.assoc_opt r t.asn
let is_bgp t = t.asn <> []
