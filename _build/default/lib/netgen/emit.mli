(** Configuration emitter: {!Netspec.t} -> CiscoLite configurations.

    Addressing plan:
    - intra-AS (and IGP-only) router links get /30 subnets from
      10.0.0.0/12, covered by the IGP's [network 10.0.0.0 0.255.255.255];
    - inter-AS links get /30 subnets from 172.16.0.0/16, deliberately
      outside the IGP so only the eBGP sessions run over them;
    - each host gets a /24 from 10.128.0.0/9 (also inside the IGP
      statement), router-side address .1, host .10.

    In BGP networks every router runs BGP: eBGP sessions on inter-AS
    links, an iBGP full mesh per AS (sessions addressed to the peer's
    lowest interface address), and each router originates the host
    subnets attached to it with [network ... mask ...] statements. *)

val emit : Netspec.t -> Configlang.Ast.config list
(** Deterministic: equal specs yield equal configurations. *)
