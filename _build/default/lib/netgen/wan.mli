(** Waxman-style synthetic WAN generator.

    Stands in for the TopologyZoo networks (Bics, Columbus, USCarrier)
    that the paper's evaluation scripts consume: the GraphML files are not
    available in this offline environment, so we generate seeded random
    geometric graphs with the same router/host/edge counts and a
    comparable degree spread (see DESIGN.md substitutions). *)

val waxman :
  seed:int ->
  name:string ->
  routers:int ->
  router_links:int ->
  hosts:int ->
  Netspec.t
(** Routers are placed uniformly in the unit square; link probability
    decays with distance (Waxman 1988). A random spanning tree guarantees
    connectivity, then the highest-scoring candidate links top up the edge
    count to [router_links]. Hosts are attached round-robin. A tenth of
    the links get a non-default OSPF cost so that cost-aware code paths
    are exercised. Deterministic in [seed]. *)
