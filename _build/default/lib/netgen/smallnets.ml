let c = 10 (* default link cost *)

let enterprise () =
  let routers = [ "a1"; "a2"; "a3"; "a4"; "b1"; "b2"; "b3"; "c1"; "c2"; "c3" ] in
  let asn =
    [ ("a1", 100); ("a2", 100); ("a3", 100); ("a4", 100);
      ("b1", 200); ("b2", 200); ("b3", 200);
      ("c1", 300); ("c2", 300); ("c3", 300) ]
  in
  let links =
    [
      (* AS 100: square with a diagonal *)
      ("a1", "a2", c); ("a2", "a3", 5); ("a3", "a4", c); ("a4", "a1", c); ("a1", "a3", c);
      (* AS 200: triangle *)
      ("b1", "b2", c); ("b2", "b3", c); ("b1", "b3", 5);
      (* AS 300: triangle *)
      ("c1", "c2", c); ("c2", "c3", c); ("c1", "c3", c);
      (* inter-AS *)
      ("a2", "b1", c); ("a3", "b2", c); ("a4", "c1", c); ("a1", "c3", c);
      ("b3", "c2", c); ("b2", "c3", c); ("a1", "b3", c);
    ]
  in
  let hosts =
    [
      ("ha1", "a2"); ("ha2", "a3"); ("ha3", "a4");
      ("hb1", "b2"); ("hb2", "b3");
      ("hc1", "c2"); ("hc2", "c3"); ("hc3", "c1");
    ]
  in
  Netspec.v ~name:"enterprise" ~asn ~routers ~links ~hosts ()

let university () =
  let us = List.init 7 (fun i -> Printf.sprintf "u%d" (i + 1)) in
  let vs = List.init 6 (fun i -> Printf.sprintf "v%d" (i + 1)) in
  let routers = us @ vs in
  let asn =
    List.map (fun r -> (r, 65001)) us @ List.map (fun r -> (r, 65002)) vs
  in
  let ring names =
    let arr = Array.of_list names in
    let n = Array.length arr in
    List.init n (fun i -> (arr.(i), arr.((i + 1) mod n), c))
  in
  let links =
    ring us @ ring vs
    @ [ ("u1", "v1", c); ("u4", "v4", c); ("u6", "v3", c); ("u3", "v5", c) ]
  in
  let hosts =
    [
      ("hu1", "u2"); ("hu2", "u3"); ("hu3", "u5"); ("hu4", "u7");
      ("hv1", "v2"); ("hv2", "v4"); ("hv3", "v5"); ("hv4", "v6");
    ]
  in
  Netspec.v ~name:"university" ~asn ~routers ~links ~hosts ()

let backbone () =
  let routers =
    [ "w1"; "w2"; "w3"; "w4"; "w5"; "x1"; "x2"; "x3"; "y1"; "y2"; "y3" ]
  in
  let asn =
    [ ("w1", 10); ("w2", 10); ("w3", 10); ("w4", 10); ("w5", 10);
      ("x1", 20); ("x2", 20); ("x3", 20);
      ("y1", 30); ("y2", 30); ("y3", 30) ]
  in
  let links =
    [
      ("w1", "w2", 5); ("w2", "w3", c); ("w3", "w4", c); ("w4", "w5", c); ("w5", "w1", c);
      ("x1", "x2", c); ("x2", "x3", c);
      ("y1", "y2", c); ("y2", "y3", c); ("y1", "y3", c);
      ("w2", "x1", c); ("w4", "y1", c); ("x3", "y2", c);
    ]
  in
  let hosts =
    [
      ("hw1", "w1"); ("hw2", "w2"); ("hw3", "w3");
      ("hx1", "x1"); ("hx2", "x2"); ("hx3", "x3");
      ("hy1", "y1"); ("hy2", "y2"); ("hy3", "y3");
    ]
  in
  Netspec.v ~name:"backbone" ~asn ~routers ~links ~hosts ()

let ccnp () =
  let routers = [ "p1"; "p2"; "p3"; "p4"; "q1"; "q2"; "q3" ] in
  let asn =
    [ ("p1", 64512); ("p2", 64512); ("p3", 64512); ("p4", 64512);
      ("q1", 64513); ("q2", 64513); ("q3", 64513) ]
  in
  let links =
    [
      ("p1", "p2", c); ("p2", "p3", c); ("p3", "p4", c); ("p4", "p1", c); ("p1", "p3", 5);
      ("q1", "q2", c); ("q2", "q3", c); ("q1", "q3", c);
      ("p2", "q1", c); ("p4", "q3", c);
    ]
  in
  let hosts = [ ("hp1", "p1"); ("hp2", "p3"); ("hq1", "q2"); ("hq2", "q3") ] in
  Netspec.v ~name:"ccnp" ~asn ~routers ~links ~hosts ()

let rip_lab () =
  let routers = List.init 6 (fun i -> Printf.sprintf "d%d" (i + 1)) in
  let links =
    [
      ("d1", "d2", c); ("d2", "d3", c); ("d3", "d4", c); ("d4", "d5", c);
      ("d5", "d6", c); ("d6", "d1", c); ("d2", "d5", c);
    ]
  in
  let hosts = [ ("hd1", "d1"); ("hd2", "d3"); ("hd3", "d4"); ("hd4", "d6") ] in
  Netspec.v ~name:"riplab" ~igp:Netspec.Rip ~routers ~links ~hosts ()

let eigrp_lab () =
  let routers = List.init 5 (fun i -> Printf.sprintf "e%d" (i + 1)) in
  (* e1-e5 direct link has a huge delay, so e1 -> e5 prefers the
     three-hop detour: a pure hop-count protocol would get this wrong. *)
  let links =
    [
      ("e1", "e2", 10); ("e2", "e3", 10); ("e3", "e5", 10);
      ("e1", "e5", 100); ("e2", "e4", 10); ("e4", "e5", 40);
    ]
  in
  let hosts = [ ("he1", "e1"); ("he4", "e4"); ("he5", "e5") ] in
  Netspec.v ~name:"eigrplab" ~igp:Netspec.Eigrp ~routers ~links ~hosts ()
