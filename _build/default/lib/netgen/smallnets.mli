(** Hand-built BGP+OSPF networks standing in for the paper's real-world
    configurations (Table 2 networks A, B, C — enterprise, university,
    backbone) plus the CCNP lab network of Appendix Table 3. The originals
    are proprietary; these match their router/host/edge counts and their
    multi-AS BGP+OSPF structure (see DESIGN.md substitutions). *)

val enterprise : unit -> Netspec.t
(** Net A: 10 routers in 3 ASes, 8 hosts, 18 router links. *)

val university : unit -> Netspec.t
(** Net B: 13 routers in 2 ASes, 8 hosts, 17 router links. *)

val backbone : unit -> Netspec.t
(** Net C: 11 routers in 3 ASes, 9 hosts, 13 router links. *)

val ccnp : unit -> Netspec.t
(** The CCNP-style lab network used in the Table 3 breakdown: 7 routers in
    2 ASes, 4 hosts. *)

val rip_lab : unit -> Netspec.t
(** A RIP-only network (not in Table 2) exercising the distance-vector
    code paths end to end: 6 routers, 4 hosts. *)

val eigrp_lab : unit -> Netspec.t
(** An EIGRP network (not in Table 2) with heterogeneous delays, so the
    composite-metric path selection differs from plain hop count:
    5 routers, 3 hosts. *)
