open Netcore
module Ast = Configlang.Ast

type iface_plan = {
  p_name : string;
  p_addr : Ipv4.t;
  p_plen : int;
  p_cost : int option;
  p_desc : string;
}

let emit (spec : Netspec.t) =
  let is_bgp = Netspec.is_bgp spec in
  let inter_as u v =
    is_bgp && Netspec.as_of spec u <> Netspec.as_of spec v
  in
  (* Address pools. Links are numbered in declaration order, hosts too,
     so emission is deterministic. *)
  let link_subnet i = Prefix.v (Ipv4.add (Ipv4.of_octets 10 0 0 0) (i * 4)) 30 in
  let inter_subnet i = Prefix.v (Ipv4.add (Ipv4.of_octets 172 16 0 0) (i * 4)) 30 in
  let host_subnet i = Prefix.v (Ipv4.add (Ipv4.of_octets 10 128 0 0) (i * 256)) 24 in
  (* Plan interfaces per router. *)
  let plans : (string, iface_plan list) Hashtbl.t = Hashtbl.create 64 in
  let next_index = Hashtbl.create 64 in
  let add_iface router addr plen cost desc =
    let idx = Option.value ~default:0 (Hashtbl.find_opt next_index router) in
    Hashtbl.replace next_index router (idx + 1);
    let plan =
      {
        p_name = Printf.sprintf "Eth%d" idx;
        p_addr = addr;
        p_plen = plen;
        p_cost = cost;
        p_desc = desc;
      }
    in
    Hashtbl.replace plans router
      (Option.value ~default:[] (Hashtbl.find_opt plans router) @ [ plan ])
  in
  let intra_count = ref 0 and inter_count = ref 0 in
  (* (u, v) -> u's address on the link, for eBGP neighbor statements. *)
  let link_addr = Hashtbl.create 64 in
  List.iter
    (fun (u, v, cost) ->
      let subnet =
        if inter_as u v then begin
          let s = inter_subnet !inter_count in
          incr inter_count;
          s
        end
        else begin
          let s = link_subnet !intra_count in
          incr intra_count;
          s
        end
      in
      let ua = Prefix.host subnet 1 and va = Prefix.host subnet 2 in
      Hashtbl.replace link_addr (u, v) ua;
      Hashtbl.replace link_addr (v, u) va;
      let cost_opt = if cost = 10 then None else Some cost in
      add_iface u ua 30 cost_opt ("to-" ^ v);
      add_iface v va 30 cost_opt ("to-" ^ u))
    spec.links;
  (* Host subnets: router side .1, host side .10. *)
  let host_plan = Hashtbl.create 64 in
  List.iteri
    (fun i (h, r) ->
      let subnet = host_subnet i in
      let gw = Prefix.host subnet 1 in
      Hashtbl.replace host_plan h (subnet, gw);
      add_iface r gw 24 None ("to-" ^ h))
    spec.hosts;
  let lowest_addr router =
    match Hashtbl.find_opt plans router with
    | Some (p :: ps) ->
        List.fold_left
          (fun acc q -> if Ipv4.compare q.p_addr acc < 0 then q.p_addr else acc)
          p.p_addr ps
    | Some [] | None ->
        invalid_arg (Printf.sprintf "Emit.emit: router %s has no interfaces" router)
  in
  let igp_network = Prefix.of_string_exn "10.0.0.0/8" in
  (* Management boilerplate comparable to real-world configurations (the
     paper's networks average ~60 lines per device). CiscoLite carries
     these verbatim; the PII add-on redacts the secrets. *)
  let boilerplate r =
    [
      "service timestamps debug datetime msec";
      "service timestamps log datetime msec";
      "service password-encryption";
      "enable secret 5 $1$mERr$hx5rVt7rPNoS4wqbXKX7m0";
      "no ip domain lookup";
      "ip cef";
      "logging buffered 64000";
      "logging host 10.255.0.9";
      "ntp server 10.255.0.10";
      "snmp-server community netops-" ^ r ^ " ro";
      "snmp-server location row-12";
      "snmp-server contact noc@example.net";
      "aaa new-model";
      "aaa authentication login default local";
      "username admin privilege 15 password 7 0822455D0A16";
      "clock timezone UTC 0 0";
      "spanning-tree mode rapid-pvst";
      "line con 0";
      " exec-timeout 5 0";
      " logging synchronous";
      "line vty 0 4";
      " exec-timeout 10 0";
      " transport input ssh";
      "banner motd ^C Authorized access only ^C";
    ]
  in
  let router_config r =
    let ifaces =
      List.map
        (fun p ->
          let cost, delay =
            match spec.igp with
            | Netspec.Eigrp -> (None, p.p_cost)
            | Netspec.Ospf | Netspec.Rip -> (p.p_cost, None)
          in
          {
            (Ast.empty_interface p.p_name) with
            Ast.if_address = Some (p.p_addr, p.p_plen);
            if_cost = cost;
            if_delay = delay;
            if_description = Some p.p_desc;
          })
        (Option.value ~default:[] (Hashtbl.find_opt plans r))
    in
    let ospf, rip, eigrp =
      match spec.igp with
      | Netspec.Ospf ->
          ( Some { (Ast.empty_ospf 1) with ospf_networks = [ (igp_network, 0) ] },
            None, None )
      | Netspec.Rip ->
          (None, Some { Ast.empty_rip with rip_networks = [ igp_network ] }, None)
      | Netspec.Eigrp ->
          ( None, None,
            Some { (Ast.empty_eigrp 64900) with Ast.eigrp_networks = [ igp_network ] } )
    in
    let bgp =
      if not is_bgp then None
      else
        let my_as = Option.get (Netspec.as_of spec r) in
        let networks =
          List.filter_map
            (fun (h, attach) ->
              if String.equal attach r then
                Option.map (fun (subnet, _) -> subnet) (Hashtbl.find_opt host_plan h)
              else None)
            spec.hosts
        in
        let ebgp_neighbors =
          List.filter_map
            (fun (u, v, _) ->
              if String.equal u r && inter_as u v then
                Some
                  {
                    Ast.nb_addr = Hashtbl.find link_addr (v, u);
                    nb_remote_as = Option.get (Netspec.as_of spec v);
                    nb_distribute_in = None;
                    nb_route_map_in = None;
                  }
              else if String.equal v r && inter_as u v then
                Some
                  {
                    Ast.nb_addr = Hashtbl.find link_addr (u, v);
                    nb_remote_as = Option.get (Netspec.as_of spec u);
                    nb_distribute_in = None;
                    nb_route_map_in = None;
                  }
              else None)
            spec.links
        in
        let ibgp_neighbors =
          List.filter_map
            (fun peer ->
              if
                (not (String.equal peer r))
                && Netspec.as_of spec peer = Some my_as
              then
                Some
                  {
                    Ast.nb_addr = lowest_addr peer;
                    nb_remote_as = my_as;
                    nb_distribute_in = None;
                    nb_route_map_in = None;
                  }
              else None)
            spec.routers
        in
        Some
          {
            (Ast.empty_bgp my_as) with
            Ast.bgp_networks = networks;
            bgp_neighbors = ibgp_neighbors @ ebgp_neighbors;
          }
    in
    {
      (Ast.empty_config r) with
      Ast.kind = Ast.Router;
      interfaces = ifaces;
      ospf;
      rip;
      eigrp;
      bgp;
      extra = boilerplate r;
    }
  in
  let host_config h =
    let subnet, gw = Hashtbl.find host_plan h in
    {
      (Ast.empty_config h) with
      Ast.kind = Ast.Host;
      interfaces =
        [
          {
            (Ast.empty_interface "eth0") with
            Ast.if_address = Some (Prefix.host subnet 10, 24);
          };
        ];
      default_gateway = Some gw;
    }
  in
  List.map router_config spec.routers @ List.map (fun (h, _) -> host_config h) spec.hosts
