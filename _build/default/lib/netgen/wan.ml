open Netcore

let waxman ~seed ~name ~routers:n ~router_links ~hosts:h =
  let rng = Rng.create seed in
  let router_name i = Printf.sprintf "%s-r%02d" name i in
  let names = List.init n router_name in
  let pos = Array.init n (fun _ -> (Rng.float rng, Rng.float rng)) in
  let dist i j =
    let xi, yi = pos.(i) and xj, yj = pos.(j) in
    sqrt (((xi -. xj) ** 2.0) +. ((yi -. yj) ** 2.0))
  in
  (* Random spanning tree: attach each node to a random earlier node. *)
  let tree =
    List.init (n - 1) (fun i ->
        let j = i + 1 in
        (Rng.int rng j, j))
  in
  let have = Hashtbl.create (4 * n) in
  List.iter
    (fun (i, j) -> Hashtbl.replace have (min i j, max i j) ())
    tree;
  (* Waxman score for the remaining candidate pairs; jitter breaks ties. *)
  let alpha = 0.9 and beta = 0.3 in
  let l = sqrt 2.0 in
  let candidates = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Hashtbl.mem have (i, j)) then begin
        let score =
          alpha *. exp (-.dist i j /. (beta *. l)) *. (0.75 +. (0.5 *. Rng.float rng))
        in
        candidates := (score, (i, j)) :: !candidates
      end
    done
  done;
  let extra_needed = max 0 (router_links - (n - 1)) in
  let extras =
    List.sort (fun (a, _) (b, _) -> Float.compare b a) !candidates
    |> List.filteri (fun idx _ -> idx < extra_needed)
    |> List.map snd
  in
  let cost () =
    (* Mostly default; occasionally cheaper or dearer links. *)
    if Rng.bool rng ~p:0.1 then if Rng.bool rng ~p:0.5 then 5 else 20 else 10
  in
  let links =
    List.map
      (fun (i, j) -> (router_name i, router_name j, cost ()))
      (tree @ extras)
  in
  let host_list =
    List.init h (fun k ->
        (Printf.sprintf "%s-h%02d" name k, router_name (k mod n)))
  in
  Netspec.v ~name ~routers:names ~links ~hosts:host_list ()
