lib/pii/pan.ml: Int64 Ipv4 Netcore Prefix Rng
