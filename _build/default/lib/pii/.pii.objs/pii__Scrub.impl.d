lib/pii/scrub.ml: Ast Configlang Hashtbl List Option Pan Printf String
