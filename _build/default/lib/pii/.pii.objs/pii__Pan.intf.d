lib/pii/pan.mli: Ipv4 Netcore Prefix
