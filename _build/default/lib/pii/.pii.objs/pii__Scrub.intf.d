lib/pii/scrub.mli: Ast Configlang Pan
