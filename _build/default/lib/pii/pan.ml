open Netcore

type key = int64

let key_of_int n =
  (* Pre-mix so small consecutive integers give unrelated keys. *)
  let r = Rng.create n in
  Rng.int64 r

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

(* The canonical prefix-preserving construction: output bit i is input bit
   i XOR f(key, input bits 0..i-1). Depending only on the preceding bits
   makes the map a bijection and prefix-preserving. *)
let addr key a =
  let v = Ipv4.to_int a in
  let out = ref 0 in
  for i = 0 to 31 do
    let bit = (v lsr (31 - i)) land 1 in
    let prefix_bits = if i = 0 then 0 else v lsr (32 - i) in
    let pad = Int64.add (Int64.of_int prefix_bits) (Int64.of_int (i lsl 40)) in
    let flip = Int64.to_int (mix (Int64.logxor key pad)) land 1 in
    out := (!out lsl 1) lor (bit lxor flip)
  done;
  Ipv4.of_int !out

let prefix key p =
  Prefix.v (addr key (Prefix.network p)) (Prefix.length p)
