(** Prefix-preserving IP address anonymization (Crypto-PAn style; Xu et
    al., ICNP 2002).

    Two addresses sharing a p-bit prefix map to addresses sharing exactly
    a p-bit prefix, so subnet structure survives anonymization while the
    actual address values do not. The bit-flip function is a keyed
    SplitMix-based PRF rather than AES — the functional property ConfMask's
    PII add-on needs is prefix preservation, not cryptographic strength
    (see DESIGN.md substitutions). *)

open Netcore

type key

val key_of_int : int -> key

val addr : key -> Ipv4.t -> Ipv4.t
(** Anonymize one address. Deterministic per key; a bijection on the
    address space. *)

val prefix : key -> Prefix.t -> Prefix.t
(** Anonymize a prefix: the network bits are mapped with {!addr} and the
    length kept, so [mem a p] implies [mem (addr k a) (prefix k p)]. *)
