type route_anonymity = {
  nr_avg : float;
  nr_min : int;
  nr_pairs : int;
}

module Pmap = Map.Make (struct
  type t = string * string

  let compare = compare
end)

let route_anonymity dp =
  (* Router sequence of each delivered path, grouped by (ingress, egress). *)
  let groups =
    List.fold_left
      (fun acc (_, paths) ->
        List.fold_left
          (fun acc path ->
            match path with
            | _ :: (_ :: _ as routers_and_dst) ->
                let routers =
                  List.filteri
                    (fun i _ -> i < List.length routers_and_dst - 1)
                    routers_and_dst
                in
                (match routers with
                | [] -> acc
                | first :: _ ->
                    let last = List.nth routers (List.length routers - 1) in
                    Pmap.update (first, last)
                      (fun existing ->
                        let set = Option.value ~default:[] existing in
                        if List.mem routers set then Some set
                        else Some (routers :: set))
                      acc)
            | _ -> acc)
          acc paths)
      Pmap.empty
      (Routing.Dataplane.all_delivered dp)
  in
  let counts = Pmap.fold (fun _ set acc -> List.length set :: acc) groups [] in
  match counts with
  | [] -> { nr_avg = 0.0; nr_min = 0; nr_pairs = 0 }
  | _ ->
      {
        nr_avg =
          float_of_int (List.fold_left ( + ) 0 counts) /. float_of_int (List.length counts);
        nr_min = List.fold_left min max_int counts;
        nr_pairs = List.length counts;
      }

let kept_paths_fraction_of_pairs ~orig ~anon =
  let anon_table = Hashtbl.create (List.length anon) in
  List.iter (fun (pair, paths) -> Hashtbl.replace anon_table pair paths) anon;
  let kept, total =
    List.fold_left
      (fun (kept, total) (pair, paths0) ->
        if paths0 = [] then (kept, total)
        else
          let paths1 =
            Option.value ~default:[] (Hashtbl.find_opt anon_table pair)
          in
          let eq =
            List.equal (List.equal String.equal)
              (List.sort compare paths0) (List.sort compare paths1)
          in
          ((if eq then kept + 1 else kept), total + 1))
      (0, 0) orig
  in
  if total = 0 then 1.0 else float_of_int kept /. float_of_int total

let kept_paths_fraction ~orig ~anon ~hosts =
  let pairs dp =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun d ->
            if String.equal s d then None
            else Some ((s, d), Routing.Dataplane.paths dp ~src:s ~dst:d))
          hosts)
      hosts
  in
  kept_paths_fraction_of_pairs ~orig:(pairs orig) ~anon:(pairs anon)

type topology = {
  min_degree_group : int;
  clustering : float;
  routers : int;
  router_edges : int;
}

let topology_of_snapshot (snap : Routing.Simulate.snapshot) =
  let g = Routing.Device.router_graph snap.net in
  {
    min_degree_group = Netcore.Gmetrics.min_degree_group g;
    clustering = Netcore.Gmetrics.clustering_coefficient g;
    routers = Netcore.Graph.num_nodes g;
    router_edges = Netcore.Graph.num_edges g;
  }

let config_utility = Configlang.Count.config_utility
let line_breakdown ~orig ~anon = Configlang.Count.added ~orig ~anon
let pearson = Netcore.Gmetrics.pearson
