open Netcore
module Ast = Configlang.Ast
module Smap = Routing.Device.Smap

type t = {
  configs : Ast.config list;
  fake_routers : string list;
  fake_router_edges : (string * string) list;
}

(* Fake routers should blend into the network's naming scheme: reuse the
   longest all-alphabetic prefix shared by the most router names and
   continue with unused numbers. *)
let name_scheme routers =
  let stem name =
    match String.rindex_opt name '-' with
    | Some i -> String.sub name 0 (i + 1)
    | None ->
        let rec digits i =
          if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then digits (i - 1)
          else i
        in
        String.sub name 0 (digits (String.length name))
  in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let s = stem r in
      if s <> "" then
        Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    routers;
  let best =
    Hashtbl.fold
      (fun s n acc ->
        match acc with Some (_, m) when m >= n -> acc | _ -> Some (s, n))
      counts None
  in
  match best with Some (s, _) -> s | None -> "node"

let fresh_names ~count existing scheme =
  let taken = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace taken n ()) existing;
  let rec collect acc k remaining =
    if remaining = 0 then List.rev acc
    else
      let candidate = Printf.sprintf "%s%d" scheme k in
      if Hashtbl.mem taken candidate then collect acc (k + 1) remaining
      else begin
        Hashtbl.replace taken candidate ();
        collect (candidate :: acc) (k + 1) (remaining - 1)
      end
  in
  collect [] 1 count

let add ~rng ~count ~orig:(snap : Routing.Simulate.snapshot) configs =
  let routers = List.map fst (Smap.bindings snap.net.routers) in
  let has_bgp =
    Smap.exists (fun _ (r : Routing.Device.router) -> r.r_bgp <> None) snap.net.routers
  in
  if has_bgp then
    Error "node_anon: fake routers in BGP networks are not supported"
  else if List.length routers < 2 then
    Error "node_anon: need at least two routers to anchor fake routers"
  else begin
    let alloc = Prefix.alloc_create ~avoid:(Edits.used_prefixes configs) () in
    let scheme = name_scheme routers in
    let names = fresh_names ~count routers scheme in
    let igp_network = Prefix.of_string_exn "10.0.0.0/8" in
    (* Clone an anchor's management boilerplate, rewriting any occurrence
       of the anchor's name (e.g. in SNMP community strings) so the fake
       router does not reference its donor. *)
    let template_extras anchor fname =
      let substitute line =
        let alen = String.length anchor in
        let b = Buffer.create (String.length line) in
        let rec go i =
          if i >= String.length line then Buffer.contents b
          else if
            i + alen <= String.length line && String.sub line i alen = anchor
          then begin
            Buffer.add_string b fname;
            go (i + alen)
          end
          else begin
            Buffer.add_char b line.[i];
            go (i + 1)
          end
        in
        go 0
      in
      match List.find_opt (fun (c : Ast.config) -> c.hostname = anchor) configs with
      | Some c -> List.map substitute c.extra
      | None -> []
    in
    let result =
      List.fold_left
        (fun (configs, edges) fname ->
          let n_anchors = 2 + Rng.int rng 2 in
          let anchors =
            List.filteri (fun i _ -> i < n_anchors) (Rng.shuffle rng routers)
          in
          (* cost(a, f): strictly longer than any anchor-to-anchor shortest
             path through f, so the original data plane is untouched. *)
          let cost_of a =
            let d = Routing.Ospf.min_cost snap.net a in
            List.fold_left
              (fun acc b ->
                match Smap.find_opt b d with Some c -> max acc c | None -> acc)
              10
              (List.filter (fun b -> b <> a) anchors)
          in
          let host_subnet = Prefix.alloc_fresh alloc ~len:24 in
          let fake_router =
            {
              (Ast.empty_config fname) with
              Ast.kind = Ast.Router;
              interfaces =
                [
                  {
                    (Ast.empty_interface "Eth0") with
                    Ast.if_address = Some (Prefix.host host_subnet 1, 24);
                    if_description = Some ("to-" ^ fname ^ "-lan");
                  };
                ];
              extra = template_extras (List.hd anchors) fname;
            }
          in
          (* Mirror the IGP of the anchors: CiscoLite networks are either
             all-OSPF or all-RIP per our generators. *)
          let anchor_runs_ospf =
            match Smap.find_opt (List.hd anchors) snap.net.routers with
            | Some r -> r.Routing.Device.r_ospf <> None
            | None -> true
          in
          let fake_router =
            if anchor_runs_ospf then
              {
                fake_router with
                Ast.ospf =
                  Some { (Ast.empty_ospf 1) with ospf_networks = [ (igp_network, 0) ] };
              }
            else
              { fake_router with Ast.rip = Some { Ast.empty_rip with rip_networks = [ igp_network ] } }
          in
          let fake_router = Edits.add_igp_network fake_router host_subnet in
          let fake_host =
            {
              (Ast.empty_config (fname ^ "-h1")) with
              Ast.kind = Ast.Host;
              interfaces =
                [
                  {
                    (Ast.empty_interface "eth0") with
                    Ast.if_address = Some (Prefix.host host_subnet 10, 24);
                  };
                ];
              default_gateway = Some (Prefix.host host_subnet 1);
            }
          in
          let configs, fake_router, edges =
            List.fold_left
              (fun (configs, fake_router, edges) anchor ->
                let subnet = Prefix.alloc_fresh alloc ~len:30 in
                let cost = cost_of anchor in
                let configs =
                  Edits.update configs anchor (fun c ->
                      let name = Edits.fresh_iface_name c in
                      let c =
                        Edits.add_interface c ~name ~addr:(Prefix.host subnet 1)
                          ~plen:30 ~cost ~desc:("to-" ^ fname) ()
                      in
                      Edits.add_igp_network c subnet)
                in
                let fr_iface = Edits.fresh_iface_name fake_router in
                let fake_router =
                  Edits.add_interface fake_router ~name:fr_iface
                    ~addr:(Prefix.host subnet 2) ~plen:30 ~cost
                    ~desc:("to-" ^ anchor) ()
                in
                let fake_router = Edits.add_igp_network fake_router subnet in
                (configs, fake_router, (anchor, fname) :: edges))
              (configs, fake_router, edges)
              anchors
          in
          (configs @ [ fake_router; fake_host ], edges))
        (configs, []) names
    in
    let configs, edges = result in
    Ok { configs; fake_routers = names; fake_router_edges = List.rev edges }
  end
