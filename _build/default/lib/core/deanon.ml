open Netcore
module Ast = Configlang.Ast
module Smap = Routing.Device.Smap

type score = {
  flagged : (string * string) list;
  true_positives : int;
  precision : float;
  recall : float;
}

let canonical (u, v) = if String.compare u v <= 0 then (u, v) else (v, u)

let no_traffic_links (snap : Routing.Simulate.snapshot) =
  let dp = Routing.Simulate.dataplane snap in
  let used = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (t : Routing.Dataplane.trace) ->
      List.iter
        (fun path ->
          let rec edges = function
            | u :: (v :: _ as rest) ->
                Hashtbl.replace used (canonical (u, v)) ();
                edges rest
            | _ -> ()
          in
          edges path)
        t.delivered)
    dp;
  let g = Routing.Device.router_graph snap.net in
  List.filter (fun e -> not (Hashtbl.mem used e)) (Graph.edges g)

(* Deny sets per attachment point, as printable prefix strings so sets can
   be compared across routers. *)
let deny_sets (c : Ast.config) =
  let set_of name =
    match Ast.find_prefix_list c name with
    | None -> []
    | Some pl ->
        List.filter_map
          (fun (r : Ast.prefix_rule) ->
            if r.action = Ast.Deny then Some (Prefix.to_string r.rule_prefix)
            else None)
          pl.pl_rules
        |> List.sort String.compare
  in
  let igp =
    (match c.ospf with Some o -> o.ospf_distribute_in | None -> [])
    @ (match c.rip with Some r -> r.rip_distribute_in | None -> [])
  in
  List.map (fun (d : Ast.distribute) -> (`Iface d.dl_iface, set_of d.dl_list)) igp
  @
  match c.bgp with
  | None -> []
  | Some b ->
      List.filter_map
        (fun (n : Ast.neighbor) ->
          Option.map
            (fun name -> (`Neighbor n.nb_addr, set_of name))
            n.nb_distribute_in)
        b.bgp_neighbors

(* Resolve an attachment point back to the router-router link it guards. *)
let link_of_attachment (snap : Routing.Simulate.snapshot) router = function
  | `Iface iface_name -> (
      match Smap.find_opt router snap.net.adjs with
      | None -> None
      | Some adjs ->
          List.find_opt
            (fun (a : Routing.Device.adj) ->
              String.equal a.a_out_iface.ifc_name iface_name)
            adjs
          |> Option.map (fun (a : Routing.Device.adj) -> canonical (router, a.a_to)))
  | `Neighbor addr ->
      Option.map
        (fun owner -> canonical (router, owner))
        (Routing.Device.owner_of_addr snap.net addr)

let uniform_filter_links (snap : Routing.Simulate.snapshot) configs =
  let attachments =
    List.concat_map
      (fun (c : Ast.config) ->
        List.filter_map
          (fun (attach, set) ->
            if List.length set >= 3 then
              Option.map
                (fun link -> (c.Ast.hostname, link, set))
                (link_of_attachment snap c.Ast.hostname attach)
            else None)
          (deny_sets c))
      configs
  in
  (* A deny set shared verbatim by attachments on >= 2 different routers is
     the uniform pattern. *)
  List.filter_map
    (fun (router, link, set) ->
      let recurs =
        List.exists
          (fun (router', _, set') -> router' <> router && set' = set)
          attachments
      in
      if recurs then Some link else None)
    attachments
  |> List.sort_uniq compare

let assess ~fake_edges ~flagged =
  let fake_edges = List.sort_uniq compare (List.map canonical fake_edges) in
  let flagged = List.sort_uniq compare (List.map canonical flagged) in
  let true_positives =
    List.length (List.filter (fun e -> List.mem e fake_edges) flagged)
  in
  let precision =
    if flagged = [] then 1.0
    else float_of_int true_positives /. float_of_int (List.length flagged)
  in
  let recall =
    if fake_edges = [] then 1.0
    else float_of_int true_positives /. float_of_int (List.length fake_edges)
  in
  { flagged; true_positives; precision; recall }
