(** The evaluation metrics of ConfMask §7.1.

    (a) route anonymity [N_r]: distinct routing paths between edge-router
    pairs; (b) route utility: fraction of exactly-kept host-to-host paths;
    (c) topology anonymity: minimum same-degree group size; (d) topology
    utility: clustering coefficient; (e) configuration utility [U_C]. *)

type route_anonymity = {
  nr_avg : float;
  nr_min : int;
  nr_pairs : int;  (** how many (ingress, egress) pairs were measured *)
}

val route_anonymity : Routing.Dataplane.t -> route_anonymity
(** Groups all delivered paths by (first router, last router) and counts
    distinct interior router sequences per group. *)

val kept_paths_fraction :
  orig:Routing.Dataplane.t -> anon:Routing.Dataplane.t -> hosts:string list -> float
(** Fraction of ordered host pairs (with at least one original path) whose
    delivered path *set* is preserved exactly — the [P_U] of Figure 8. *)

val kept_paths_fraction_of_pairs :
  orig:((string * string) * string list list) list ->
  anon:((string * string) * string list list) list ->
  float
(** Same metric over explicit path sets (for the NetHide baseline). *)

type topology = {
  min_degree_group : int;
  clustering : float;
  routers : int;
  router_edges : int;
}

val topology_of_snapshot : Routing.Simulate.snapshot -> topology

val config_utility :
  orig:Configlang.Ast.config list -> anon:Configlang.Ast.config list -> float
(** [U_C = 1 - N_l / P_l] (re-exported from {!Configlang.Count}). *)

val line_breakdown :
  orig:Configlang.Ast.config list ->
  anon:Configlang.Ast.config list ->
  Configlang.Count.breakdown
(** The Table 3 decomposition of injected lines. *)

val pearson : (float * float) list -> float
