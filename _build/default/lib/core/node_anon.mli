(** Network scale obfuscation: fake router addition (the §9 extension).

    The paper's workflow keeps the router set fixed but notes that the
    functional-equivalence proof never requires it — any graph
    anonymization that only *adds* nodes fits (Takbiri et al. 2019). This
    module implements that extension for IGP-only networks: each fake
    router connects to two or three real anchor routers with link costs
    [cost(n_i, f) = max_j min_cost(n_i, n_j)], which makes every path
    through the fake router strictly longer than the existing shortest
    path between any pair of anchors — so the original data plane is
    untouched by construction. Each fake router also hosts a fake subnet
    so that it originates plausible traffic and configuration.

    Run *before* topology anonymization so that the k-degree guarantee
    covers the fake routers too. *)

type t = {
  configs : Configlang.Ast.config list;
  fake_routers : string list;
  fake_router_edges : (string * string) list;
}

val add :
  rng:Netcore.Rng.t ->
  count:int ->
  orig:Routing.Simulate.snapshot ->
  Configlang.Ast.config list ->
  (t, string) Stdlib.result
(** Errors on BGP networks (fake routers would need AS placement and iBGP
    mesh updates — future work, as in the paper) and when the network has
    fewer than two routers. *)
