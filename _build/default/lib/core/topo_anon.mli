(** Step 1 of the ConfMask workflow: topology anonymization (§4.2).

    Runs k-degree graph anonymization over the router topology and
    implements each generated edge as configuration additions:

    - intra-AS (or IGP-only) fake links get a fresh /30 outside every
      original prefix, interfaces on both routers, IGP network statements,
      and — for OSPF — per-direction costs equal to [min_cost(u, v)], the
      link-state SFE condition that keeps original shortest paths optimal;
    - inter-AS fake links (BGP networks) get the fresh subnet plus
      matching eBGP neighbor statements on both border routers.

    For BGP networks the anonymization is two-level (§4.2): the AS-level
    supergraph is anonymized first (new AS adjacencies realized between
    random border-capable routers), then the router-level graph with new
    edges placed inside ASes where possible. *)

open Netcore

type result = {
  configs : Configlang.Ast.config list;
  fake_edges : (string * string) list;  (** sorted unordered pairs *)
}

(** OSPF cost assigned to fake intra-AS links. [Min_cost] is ConfMask's
    choice (the SFE condition); [Default_cost] and [Large_cost] are the
    §3.2 strawman options kept for the ablation benchmarks: the former
    migrates original paths onto fake links, the latter preserves paths
    but leaves the fake links traffic-free and trivially identifiable. *)
type cost_policy = Min_cost | Default_cost | Large_cost

val anonymize :
  ?cost_policy:cost_policy ->
  rng:Rng.t ->
  k:int ->
  orig:Routing.Simulate.snapshot ->
  Configlang.Ast.config list ->
  result
(** [anonymize ~rng ~k ~orig configs]: [orig] must be the simulation of
    [configs]. The result's router graph is k-degree-anonymous and is a
    supergraph of the original. *)
