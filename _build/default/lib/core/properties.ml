type t =
  | Reachable of string * string
  | Path_length of string * string * int
  | Black_hole of string * string
  | Multipath_inconsistent of string * string
  | Waypointed of string * string * string
  | Routing_loop of string * string

let to_string = function
  | Reachable (s, d) -> Printf.sprintf "reachable(%s, %s)" s d
  | Path_length (s, d, l) -> Printf.sprintf "path-length(%s, %s) = %d" s d l
  | Black_hole (s, d) -> Printf.sprintf "black-hole(%s, %s)" s d
  | Multipath_inconsistent (s, d) -> Printf.sprintf "multipath-inconsistent(%s, %s)" s d
  | Waypointed (s, d, w) -> Printf.sprintf "waypoint(%s, %s, %s)" s d w
  | Routing_loop (s, d) -> Printf.sprintf "routing-loop(%s, %s)" s d

let interior p =
  List.filteri (fun i _ -> i > 0 && i < List.length p - 1) p

let of_trace (s, d) (t : Routing.Dataplane.trace) =
  let lossy = t.dropped <> [] || t.filtered <> [] in
  let reach = if t.delivered <> [] then [ Reachable (s, d) ] else [] in
  let lengths =
    match List.sort_uniq compare (List.map List.length t.delivered) with
    | [ l ] -> [ Path_length (s, d, l - 2) (* count routers only *) ]
    | _ -> []
  in
  let black_hole = if lossy then [ Black_hole (s, d) ] else [] in
  let inconsistent =
    if t.delivered <> [] && lossy then [ Multipath_inconsistent (s, d) ] else []
  in
  let waypoints =
    match List.map interior t.delivered with
    | [] -> []
    | first :: others ->
        List.filter (fun w -> List.for_all (List.mem w) others) first
        |> List.sort_uniq String.compare
        |> List.map (fun w -> Waypointed (s, d, w))
  in
  let loops = if t.looped <> [] then [ Routing_loop (s, d) ] else [] in
  reach @ lengths @ black_hole @ inconsistent @ waypoints @ loops

let mine ?hosts dp =
  let keep =
    match hosts with
    | None -> fun _ -> true
    | Some hs -> fun (s, d) -> List.mem s hs && List.mem d hs
  in
  Hashtbl.fold
    (fun pair trace acc -> if keep pair then of_trace pair trace @ acc else acc)
    dp []
  |> List.sort_uniq compare

type diff = { kept : t list; lost : t list; gained : t list }

module Pset = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

let compare_properties ~hosts ~orig ~anon =
  let a = Pset.of_list (mine ~hosts orig) in
  let b = Pset.of_list (mine ~hosts anon) in
  {
    kept = Pset.elements (Pset.inter a b);
    lost = Pset.elements (Pset.diff a b);
    gained = Pset.elements (Pset.diff b a);
  }

let preserved d = d.lost = [] && d.gained = []
