(** The routing utility properties of ConfMask Appendix B.

    Theorem B.7 states that functional equivalence preserves reachability,
    path lengths, black holes, multipath consistency, waypointing, and
    routing loops. This module mines all six property families from a
    data plane so that the theorem can be checked *operationally* on any
    pipeline run (see the test suite and the troubleshooting example):
    the property sets of the original and anonymized networks, restricted
    to real hosts, must be identical. *)

type t =
  | Reachable of string * string
      (** at least one delivered forwarding path *)
  | Path_length of string * string * int
      (** every delivered path has exactly this hop count *)
  | Black_hole of string * string
      (** some walk is dropped or filtered before delivery (B.3) *)
  | Multipath_inconsistent of string * string
      (** delivered on some path, dropped/filtered on another (B.4) *)
  | Waypointed of string * string * string
      (** the router is on every delivered path (B.5) *)
  | Routing_loop of string * string
      (** some walk revisits a router (B.6) *)

val to_string : t -> string

val mine : ?hosts:string list -> Routing.Dataplane.t -> t list
(** All properties of the data plane, sorted; [hosts] restricts to pairs
    among the listed hosts (both endpoints). *)

type diff = { kept : t list; lost : t list; gained : t list }

val compare_properties :
  hosts:string list -> orig:Routing.Dataplane.t -> anon:Routing.Dataplane.t -> diff
(** Property sets over the given (real) hosts. Functional equivalence
    (Theorem B.7) holds exactly when [lost] and [gained] are empty. *)

val preserved : diff -> bool
