lib/core/deanon.ml: Configlang Graph Hashtbl List Netcore Option Prefix Routing String
