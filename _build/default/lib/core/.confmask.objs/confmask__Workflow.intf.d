lib/core/workflow.mli: Configlang Routing
