lib/core/edits.mli: Ast Configlang Ipv4 Netcore Prefix
