lib/core/workflow.ml: Configlang List Netcore Node_anon Pii Result Rng Route_anon Route_equiv Routing Topo_anon
