lib/core/route_equiv.mli: Configlang Routing
