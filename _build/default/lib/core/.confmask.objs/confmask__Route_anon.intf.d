lib/core/route_anon.mli: Configlang Netcore
