lib/core/node_anon.ml: Buffer Configlang Edits Hashtbl List Netcore Option Prefix Printf Rng Routing String
