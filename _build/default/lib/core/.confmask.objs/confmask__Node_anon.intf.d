lib/core/node_anon.mli: Configlang Netcore Routing Stdlib
