lib/core/topo_anon.ml: Configlang Edits Graph Graphanon List Netcore Prefix Rng Routing String
