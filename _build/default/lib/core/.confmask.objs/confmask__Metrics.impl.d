lib/core/metrics.ml: Configlang Hashtbl List Map Netcore Option Routing String
