lib/core/strawman.ml: Attach Configlang Edits Hashtbl List Netcore Option Prefix Printf Route_equiv Routing String
