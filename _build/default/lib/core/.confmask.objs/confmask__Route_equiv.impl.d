lib/core/route_equiv.ml: Attach Configlang List Map Netcore Option Prefix Printf Routing String
