lib/core/attach.mli: Configlang Ipv4 Netcore Prefix Routing
