lib/core/edits.ml: Ast Configlang Ipv4 List Netcore Prefix Printf String
