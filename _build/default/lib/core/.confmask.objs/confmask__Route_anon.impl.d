lib/core/route_anon.ml: Attach Configlang Edits List Netcore Option Prefix Printf Result Rng Routing String
