lib/core/strawman.mli: Configlang Routing
