lib/core/metrics.mli: Configlang Routing
