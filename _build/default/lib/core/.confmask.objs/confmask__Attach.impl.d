lib/core/attach.ml: Edits Ipv4 Netcore Routing
