lib/core/properties.mli: Routing
