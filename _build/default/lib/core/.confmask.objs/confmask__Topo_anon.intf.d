lib/core/topo_anon.mli: Configlang Netcore Rng Routing
