lib/core/deanon.mli: Configlang Routing
