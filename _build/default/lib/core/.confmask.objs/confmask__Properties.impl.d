lib/core/properties.ml: Hashtbl List Printf Routing Set String
