(** Vendor dispatch: parse and print configurations in any supported
    dialect. CiscoLite is the default; JunosLite files are recognized by
    their block syntax. *)

type t = Cisco | Junos

val of_string : string -> (t, string) result
val to_string : t -> string

val detect : string -> t
(** Sniff the dialect of a configuration text. *)

val parse : string -> (Ast.config, string) result
(** Parse with auto-detection. *)

val print : t -> Ast.config -> string
