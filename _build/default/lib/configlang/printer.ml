open Netcore
open Ast

let interface_lines i =
  let b = Buffer.create 64 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "interface %s" i.if_name;
  (match i.if_description with Some d -> line " description %s" d | None -> ());
  (match i.if_address with
  | Some (addr, len) ->
      line " ip address %s %s" (Ipv4.to_string addr)
        (Ipv4.to_string (Masks.netmask_of_len len))
  | None -> ());
  (match i.if_cost with Some c -> line " ip ospf cost %d" c | None -> ());
  (match i.if_delay with Some d -> line " delay %d" d | None -> ());
  (match i.if_acl_in with Some a -> line " ip access-group %s in" a | None -> ());
  (match i.if_acl_out with Some a -> line " ip access-group %s out" a | None -> ());
  if i.if_shutdown then line " shutdown";
  List.iter (fun e -> line " %s" e) i.if_extra;
  String.split_on_char '\n' (Buffer.contents b)
  |> List.filter (fun l -> l <> "")

let to_string c =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let bang () = line "!" in
  line "hostname %s" c.hostname;
  bang ();
  List.iter
    (fun i ->
      List.iter (fun l -> line "%s" l) (interface_lines i);
      bang ())
    c.interfaces;
  (match c.ospf with
  | Some o ->
      line "router ospf %d" o.ospf_process;
      List.iter
        (fun (p, area) ->
          line " network %s %s area %d"
            (Ipv4.to_string (Prefix.network p))
            (Ipv4.to_string (Masks.wildcard_of_len (Prefix.length p)))
            area)
        o.ospf_networks;
      List.iter
        (fun d -> line " distribute-list prefix %s in %s" d.dl_list d.dl_iface)
        o.ospf_distribute_in;
      List.iter (fun e -> line " %s" e) o.ospf_extra;
      bang ()
  | None -> ());
  (match c.rip with
  | Some r ->
      line "router rip";
      line " version 2";
      List.iter
        (fun p ->
          line " network %s %s"
            (Ipv4.to_string (Prefix.network p))
            (Ipv4.to_string (Masks.wildcard_of_len (Prefix.length p))))
        r.rip_networks;
      List.iter
        (fun d -> line " distribute-list prefix %s in %s" d.dl_list d.dl_iface)
        r.rip_distribute_in;
      List.iter (fun e -> line " %s" e) r.rip_extra;
      bang ()
  | None -> ());
  (match c.eigrp with
  | Some e ->
      line "router eigrp %d" e.eigrp_as;
      List.iter
        (fun p ->
          line " network %s %s"
            (Ipv4.to_string (Prefix.network p))
            (Ipv4.to_string (Masks.wildcard_of_len (Prefix.length p))))
        e.eigrp_networks;
      List.iter
        (fun d -> line " distribute-list prefix %s in %s" d.dl_list d.dl_iface)
        e.eigrp_distribute_in;
      List.iter (fun x -> line " %s" x) e.eigrp_extra;
      bang ()
  | None -> ());
  (match c.bgp with
  | Some g ->
      line "router bgp %d" g.bgp_as;
      (match g.bgp_router_id with
      | Some id -> line " bgp router-id %s" (Ipv4.to_string id)
      | None -> ());
      List.iter
        (fun p ->
          line " network %s mask %s"
            (Ipv4.to_string (Prefix.network p))
            (Ipv4.to_string (Masks.netmask_of_len (Prefix.length p))))
        g.bgp_networks;
      List.iter
        (fun n ->
          line " neighbor %s remote-as %d" (Ipv4.to_string n.nb_addr) n.nb_remote_as;
          (match n.nb_distribute_in with
          | Some name ->
              line " neighbor %s distribute-list %s in" (Ipv4.to_string n.nb_addr) name
          | None -> ());
          match n.nb_route_map_in with
          | Some name ->
              line " neighbor %s route-map %s in" (Ipv4.to_string n.nb_addr) name
          | None -> ())
        g.bgp_neighbors;
      List.iter (fun e -> line " %s" e) g.bgp_extra;
      bang ()
  | None -> ());
  List.iter
    (fun pl ->
      List.iter
        (fun r ->
          let action = match r.action with Permit -> "permit" | Deny -> "deny" in
          let le = match r.le with Some n -> Printf.sprintf " le %d" n | None -> "" in
          line "ip prefix-list %s seq %d %s %s%s" pl.pl_name r.seq action
            (Prefix.to_string r.rule_prefix) le)
        pl.pl_rules;
      bang ())
    c.prefix_lists;
  List.iter
    (fun a ->
      line "ip access-list extended %s" a.acl_name;
      List.iter
        (fun r ->
          let action = match r.acl_action with Permit -> "permit" | Deny -> "deny" in
          let endpoint = function
            | None -> "any"
            | Some p ->
                Printf.sprintf "%s %s"
                  (Ipv4.to_string (Prefix.network p))
                  (Ipv4.to_string (Masks.wildcard_of_len (Prefix.length p)))
          in
          line " %s ip %s %s" action (endpoint r.acl_src) (endpoint r.acl_dst))
        a.acl_rules;
      bang ())
    c.acls;
  List.iter
    (fun rm ->
      List.iter
        (fun cl ->
          let action = match cl.rm_action with Permit -> "permit" | Deny -> "deny" in
          line "route-map %s %s %d" rm.rm_name action cl.rm_seq;
          (match cl.rm_set_local_pref with
          | Some v -> line " set local-preference %d" v
          | None -> ());
          bang ())
        rm.rm_clauses)
    c.route_maps;
  List.iter
    (fun st ->
      line "ip route %s %s %s"
        (Ipv4.to_string (Prefix.network st.st_prefix))
        (Ipv4.to_string (Masks.netmask_of_len (Prefix.length st.st_prefix)))
        (Ipv4.to_string st.st_next_hop))
    c.statics;
  (match c.default_gateway with
  | Some gw ->
      line "ip default-gateway %s" (Ipv4.to_string gw);
      bang ()
  | None -> ());
  List.iter (fun e -> line "%s" e) c.extra;
  Buffer.contents b
