(** Abstract syntax of CiscoLite, the Cisco-IOS-style configuration dialect
    used throughout this reproduction.

    CiscoLite covers exactly the configuration surface ConfMask reads and
    writes: interfaces with addresses/costs, OSPF, RIP and BGP processes,
    prefix lists, and inbound distribute-list filters. Every other line is
    carried verbatim ([if_extra] / [extra] / [*_extra]) and survives
    parse-print round trips, mirroring the paper's implementation which
    "leaves the lines that do not fall within these categories unchanged"
    (§6). *)

open Netcore

type action = Permit | Deny

type prefix_rule = {
  seq : int;
  action : action;
  rule_prefix : Prefix.t;
  le : int option;  (** [le n]: also match more-specific prefixes up to /n *)
}

type prefix_list = { pl_name : string; pl_rules : prefix_rule list }

(** One rule of an extended access list; [None] endpoints mean [any]. *)
type acl_rule = {
  acl_action : action;
  acl_src : Prefix.t option;
  acl_dst : Prefix.t option;
}

type acl = { acl_name : string; acl_rules : acl_rule list }

type interface = {
  if_name : string;
  if_address : (Ipv4.t * int) option;  (** address and prefix length *)
  if_cost : int option;  (** [ip ospf cost] *)
  if_delay : int option;  (** [delay], the EIGRP metric component *)
  if_acl_in : string option;  (** [ip access-group <name> in] *)
  if_acl_out : string option;  (** [ip access-group <name> out] *)
  if_description : string option;
  if_shutdown : bool;
  if_extra : string list;  (** verbatim uninterpreted sub-lines *)
}

type distribute = {
  dl_list : string;  (** name of the prefix list applied *)
  dl_iface : string;  (** interface the inbound filter is attached to *)
}

type ospf = {
  ospf_process : int;
  ospf_networks : (Prefix.t * int) list;  (** network statement, area *)
  ospf_distribute_in : distribute list;
  ospf_extra : string list;
}

type rip = {
  rip_networks : Prefix.t list;
  rip_distribute_in : distribute list;
  rip_extra : string list;
}

type eigrp = {
  eigrp_as : int;
  eigrp_networks : Prefix.t list;
  eigrp_distribute_in : distribute list;
  eigrp_extra : string list;
}

(** Route-map clauses are unconditional in CiscoLite (no match terms):
    the supported use is setting BGP attributes on a neighbor's inbound
    routes. Deny clauses reject the route outright. *)
type route_map_clause = {
  rm_seq : int;
  rm_action : action;
  rm_set_local_pref : int option;
}

type route_map = { rm_name : string; rm_clauses : route_map_clause list }

type neighbor = {
  nb_addr : Ipv4.t;
  nb_remote_as : int;
  nb_distribute_in : string option;  (** prefix-list filtering inbound routes *)
  nb_route_map_in : string option;  (** route-map applied to inbound routes *)
}

type bgp = {
  bgp_as : int;
  bgp_router_id : Ipv4.t option;
  bgp_networks : Prefix.t list;
  bgp_neighbors : neighbor list;
  bgp_extra : string list;
}

(** [ip route <prefix> <mask> <next-hop-address>] *)
type static_route = { st_prefix : Prefix.t; st_next_hop : Ipv4.t }

type kind = Router | Host

type config = {
  hostname : string;
  kind : kind;
  interfaces : interface list;
  ospf : ospf option;
  rip : rip option;
  eigrp : eigrp option;
  bgp : bgp option;
  prefix_lists : prefix_list list;
  acls : acl list;
  route_maps : route_map list;
  statics : static_route list;
  default_gateway : Ipv4.t option;  (** hosts only *)
  extra : string list;  (** verbatim uninterpreted top-level lines *)
}

val empty_interface : string -> interface
val empty_ospf : int -> ospf
val empty_rip : rip
val empty_eigrp : int -> eigrp
val empty_bgp : int -> bgp
val empty_config : string -> config

val interface_prefix : interface -> Prefix.t option
(** The connected subnet of an addressed interface. *)

val find_interface : config -> string -> interface option

val find_prefix_list : config -> string -> prefix_list option

val find_acl : config -> string -> acl option
val find_route_map : config -> string -> route_map option

val acl_permits : acl -> src:Ipv4.t -> dst:Ipv4.t -> bool
(** First-match over the rules; Cisco's implicit trailing deny applies
    when nothing matches. *)

val prefix_list_matches : prefix_list -> Prefix.t -> action option
(** First-match semantics over the rules ordered by sequence number;
    [None] when no rule matches (Cisco's implicit deny is applied by the
    simulator, not here). A rule matches route prefix [p] when [p] is
    contained in the rule's prefix and, if [le] is absent, has exactly the
    rule's length, or otherwise has length at most [le]. *)

val add_prefix_list_rule : config -> string -> action -> Prefix.t -> config
(** Appends a rule (with the next free sequence number) to the named list,
    creating the list if needed. *)
