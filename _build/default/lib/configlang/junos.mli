(** JunosLite: a second vendor dialect for the same configuration model.

    The paper notes its implementation is "easily extendable to more
    protocols and vendors using the same logic" (§6); this module is that
    extension point exercised. JunosLite is a Juniper-flavored
    hierarchical curly-brace syntax covering exactly the CiscoLite model,
    so every anonymization stage works unchanged on Junos-style files:
    parse to the shared {!Ast.config}, anonymize, print back.

    [parse (to_string c)] equals [c] up to canonical form — the test suite
    checks the round trip and the cross-vendor equality
    [Parser.parse (Printer.to_string c) = parse (to_string c)]. *)

val to_string : Ast.config -> string

val parse : string -> (Ast.config, string) result
(** Error messages include the 1-based line of the offending token. *)

val parse_exn : string -> Ast.config

val looks_like_junos : string -> bool
(** Cheap syntax sniffing for vendor auto-detection: the first
    non-comment, non-blank line of a JunosLite file opens a block. *)
