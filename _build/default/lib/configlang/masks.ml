open Netcore

let mask32 = 0xFFFFFFFF

let netmask_of_len len =
  Ipv4.of_int (if len = 0 then 0 else mask32 lsl (32 - len) land mask32)

let wildcard_of_len len =
  Ipv4.of_int (lnot (Ipv4.to_int (netmask_of_len len)) land mask32)

let len_of_netmask m =
  let m = Ipv4.to_int m in
  let rec count len =
    if len > 32 then None
    else if Ipv4.to_int (netmask_of_len len) = m then Some len
    else count (len + 1)
  in
  count 0

let len_of_wildcard w =
  len_of_netmask (Ipv4.of_int (lnot (Ipv4.to_int w) land mask32))
