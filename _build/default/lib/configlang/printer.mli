(** Canonical printer for CiscoLite configurations.

    [Parser.parse_exn (Printer.to_string c)] is structurally equal to the
    canonical form of [c] — the round-trip property the test suite checks
    with qcheck. Anonymized configurations are emitted with this printer,
    so they follow the same syntax as the input files (ConfMask §9, "PII
    obfuscation"). *)

val to_string : Ast.config -> string

val interface_lines : Ast.interface -> string list
(** The lines an interface block contributes, without the trailing [!]. *)
