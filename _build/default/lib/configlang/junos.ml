open Netcore
open Ast

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let bprintf = Printf.bprintf

let quote s = "\"" ^ s ^ "\""

let print_block b indent name body =
  let pad = String.make indent ' ' in
  bprintf b "%s%s {\n" pad name;
  body (indent + 4);
  bprintf b "%s}\n" pad

let print_stmt b indent fmt =
  let pad = String.make indent ' ' in
  bprintf b "%s" pad;
  Printf.ksprintf (fun s -> bprintf b "%s;\n" s) fmt

let action_word = function Permit -> "permit" | Deny -> "deny"

let endpoint_word = function
  | None -> "any"
  | Some p -> Prefix.to_string p

let to_string (c : config) =
  let b = Buffer.create 2048 in
  print_block b 0 "system" (fun i ->
      print_stmt b i "host-name %s" c.hostname;
      match c.default_gateway with
      | Some gw -> print_stmt b i "default-gateway %s" (Ipv4.to_string gw)
      | None -> ());
  if c.interfaces <> [] then
    print_block b 0 "interfaces" (fun i ->
        List.iter
          (fun ifc ->
            print_block b i ifc.if_name (fun i ->
                (match ifc.if_description with
                | Some d -> print_stmt b i "description %s" (quote d)
                | None -> ());
                (match ifc.if_address with
                | Some (a, len) ->
                    print_stmt b i "address %s/%d" (Ipv4.to_string a) len
                | None -> ());
                (match ifc.if_cost with
                | Some cost -> print_stmt b i "metric %d" cost
                | None -> ());
                (match ifc.if_delay with
                | Some d -> print_stmt b i "delay %d" d
                | None -> ());
                (match ifc.if_acl_in with
                | Some a -> print_stmt b i "filter input %s" a
                | None -> ());
                (match ifc.if_acl_out with
                | Some a -> print_stmt b i "filter output %s" a
                | None -> ());
                if ifc.if_shutdown then print_stmt b i "disable";
                List.iter (fun e -> print_stmt b i "legacy %s" (quote e)) ifc.if_extra))
          c.interfaces);
  let protocols = c.ospf <> None || c.rip <> None || c.eigrp <> None || c.bgp <> None in
  if protocols then
    print_block b 0 "protocols" (fun i ->
        (match c.ospf with
        | Some o ->
            print_block b i (Printf.sprintf "ospf %d" o.ospf_process) (fun i ->
                List.iter
                  (fun (p, area) ->
                    print_stmt b i "network %s area %d" (Prefix.to_string p) area)
                  o.ospf_networks;
                List.iter
                  (fun d ->
                    print_stmt b i "import %s interface %s" d.dl_list d.dl_iface)
                  o.ospf_distribute_in;
                List.iter (fun e -> print_stmt b i "legacy %s" (quote e)) o.ospf_extra)
        | None -> ());
        (match c.rip with
        | Some r ->
            print_block b i "rip" (fun i ->
                List.iter
                  (fun p -> print_stmt b i "network %s" (Prefix.to_string p))
                  r.rip_networks;
                List.iter
                  (fun d ->
                    print_stmt b i "import %s interface %s" d.dl_list d.dl_iface)
                  r.rip_distribute_in;
                List.iter (fun e -> print_stmt b i "legacy %s" (quote e)) r.rip_extra)
        | None -> ());
        (match c.eigrp with
        | Some e ->
            print_block b i (Printf.sprintf "eigrp %d" e.eigrp_as) (fun i ->
                List.iter
                  (fun p -> print_stmt b i "network %s" (Prefix.to_string p))
                  e.eigrp_networks;
                List.iter
                  (fun d ->
                    print_stmt b i "import %s interface %s" d.dl_list d.dl_iface)
                  e.eigrp_distribute_in;
                List.iter (fun x -> print_stmt b i "legacy %s" (quote x)) e.eigrp_extra)
        | None -> ());
        match c.bgp with
        | Some g ->
            print_block b i "bgp" (fun i ->
                print_stmt b i "local-as %d" g.bgp_as;
                (match g.bgp_router_id with
                | Some id -> print_stmt b i "router-id %s" (Ipv4.to_string id)
                | None -> ());
                List.iter
                  (fun p -> print_stmt b i "network %s" (Prefix.to_string p))
                  g.bgp_networks;
                List.iter
                  (fun n ->
                    print_block b i
                      (Printf.sprintf "neighbor %s" (Ipv4.to_string n.nb_addr))
                      (fun i ->
                        print_stmt b i "peer-as %d" n.nb_remote_as;
                        (match n.nb_distribute_in with
                        | Some f -> print_stmt b i "import-list %s" f
                        | None -> ());
                        match n.nb_route_map_in with
                        | Some f -> print_stmt b i "import-policy %s" f
                        | None -> ()))
                  g.bgp_neighbors;
                List.iter (fun e -> print_stmt b i "legacy %s" (quote e)) g.bgp_extra)
        | None -> ());
  if c.prefix_lists <> [] || c.route_maps <> [] then
    print_block b 0 "policy-options" (fun i ->
        List.iter
          (fun pl ->
            print_block b i (Printf.sprintf "prefix-list %s" pl.pl_name) (fun i ->
                List.iter
                  (fun r ->
                    match r.le with
                    | Some le ->
                        print_stmt b i "seq %d %s %s le %d" r.seq
                          (action_word r.action)
                          (Prefix.to_string r.rule_prefix)
                          le
                    | None ->
                        print_stmt b i "seq %d %s %s" r.seq (action_word r.action)
                          (Prefix.to_string r.rule_prefix))
                  pl.pl_rules))
          c.prefix_lists;
        List.iter
          (fun rm ->
            print_block b i
              (Printf.sprintf "policy-statement %s" rm.rm_name)
              (fun i ->
                List.iter
                  (fun cl ->
                    print_block b i
                      (Printf.sprintf "term %d %s" cl.rm_seq (action_word cl.rm_action))
                      (fun i ->
                        match cl.rm_set_local_pref with
                        | Some v -> print_stmt b i "local-preference %d" v
                        | None -> ()))
                  rm.rm_clauses))
          c.route_maps);
  if c.acls <> [] then
    print_block b 0 "firewall" (fun i ->
        List.iter
          (fun a ->
            print_block b i (Printf.sprintf "filter %s" a.acl_name) (fun i ->
                List.iter
                  (fun r ->
                    print_stmt b i "%s from %s to %s" (action_word r.acl_action)
                      (endpoint_word r.acl_src) (endpoint_word r.acl_dst))
                  a.acl_rules))
          c.acls);
  if c.statics <> [] then
    print_block b 0 "routing-options" (fun i ->
        print_block b i "static" (fun i ->
            List.iter
              (fun st ->
                print_stmt b i "route %s next-hop %s"
                  (Prefix.to_string st.st_prefix)
                  (Ipv4.to_string st.st_next_hop))
              c.statics));
  if c.extra <> [] then
    print_block b 0 "legacy-extra" (fun i ->
        List.iter (fun e -> print_stmt b i "line %s" (quote e)) c.extra);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token = Word of string | Lbrace | Rbrace | Semi

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let tokenize text =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let buf = Buffer.create 32 in
  let flush_word () =
    if Buffer.length buf > 0 then begin
      tokens := (Word (Buffer.contents buf), !line) :: !tokens;
      Buffer.clear buf
    end
  in
  let rec go i =
    if i >= n then flush_word ()
    else
      match text.[i] with
      | '\n' ->
          flush_word ();
          incr line;
          go (i + 1)
      | ' ' | '\t' | '\r' ->
          flush_word ();
          go (i + 1)
      | '#' ->
          flush_word ();
          let rec skip i = if i < n && text.[i] <> '\n' then skip (i + 1) else i in
          go (skip i)
      | '{' ->
          flush_word ();
          tokens := (Lbrace, !line) :: !tokens;
          go (i + 1)
      | '}' ->
          flush_word ();
          tokens := (Rbrace, !line) :: !tokens;
          go (i + 1)
      | ';' ->
          flush_word ();
          tokens := (Semi, !line) :: !tokens;
          go (i + 1)
      | '"' ->
          flush_word ();
          let rec scan j =
            if j >= n then fail !line "unterminated string"
            else if text.[j] = '"' then j
            else scan (j + 1)
          in
          let close = scan (i + 1) in
          tokens := (Word (String.sub text (i + 1) (close - i - 1)), !line) :: !tokens;
          go (close + 1)
      | ch ->
          Buffer.add_char buf ch;
          go (i + 1)
  in
  go 0;
  List.rev !tokens

(* Generic statement tree. *)
type node = Stmt of int * string list | Block of int * string list * node list

let parse_tree tokens =
  (* returns nodes up to an unmatched Rbrace or end *)
  let rec nodes acc words wline = function
    | (Word w, l) :: rest ->
        let wline = if words = [] then l else wline in
        nodes acc (w :: words) wline rest
    | (Semi, l) :: rest ->
        if words = [] then fail l "empty statement";
        nodes (Stmt (wline, List.rev words) :: acc) [] 0 rest
    | (Lbrace, l) :: rest ->
        if words = [] then fail l "block without a name";
        let children, rest = block_body l rest in
        nodes (Block (wline, List.rev words, children) :: acc) [] 0 rest
    | ((Rbrace, _) :: _ | []) as rest ->
        if words <> [] then
          fail
            (match rest with (_, l') :: _ -> l' | [] -> wline)
            "dangling words without ';'";
        (List.rev acc, rest)
  and block_body open_line rest =
    let children, rest = nodes [] [] 0 rest in
    match rest with
    | (Rbrace, _) :: rest -> (children, rest)
    | _ -> fail open_line "unclosed block"
  in
  let top, rest = nodes [] [] 0 tokens in
  match rest with
  | (Rbrace, l) :: _ -> fail l "unmatched '}'"
  | _ -> top

let prefix_of line s =
  match Prefix.of_string s with Ok p -> p | Error m -> fail line "%s" m

let addr_of line s =
  match Ipv4.of_string s with Ok a -> a | Error m -> fail line "%s" m

let int_of line s =
  match int_of_string_opt s with Some n -> n | None -> fail line "expected integer, got %S" s

let action_of line = function
  | "permit" -> Permit
  | "deny" -> Deny
  | a -> fail line "expected permit/deny, got %S" a

let interpret_interface line name children =
  List.fold_left
    (fun ifc node ->
      match node with
      | Stmt (_, [ "description"; d ]) -> { ifc with if_description = Some d }
      | Stmt (l, [ "address"; cidr ]) ->
          let p = prefix_of l cidr in
          (* the statement carries the host address, not the canonical
             network, so re-split by hand *)
          let addr, len =
            match String.index_opt cidr '/' with
            | Some i ->
                ( addr_of l (String.sub cidr 0 i),
                  int_of l (String.sub cidr (i + 1) (String.length cidr - i - 1)) )
            | None -> (Prefix.network p, 32)
          in
          { ifc with if_address = Some (addr, len) }
      | Stmt (l, [ "metric"; m ]) -> { ifc with if_cost = Some (int_of l m) }
      | Stmt (l, [ "delay"; d ]) -> { ifc with if_delay = Some (int_of l d) }
      | Stmt (_, [ "filter"; "input"; a ]) -> { ifc with if_acl_in = Some a }
      | Stmt (_, [ "filter"; "output"; a ]) -> { ifc with if_acl_out = Some a }
      | Stmt (_, [ "disable" ]) -> { ifc with if_shutdown = true }
      | Stmt (_, [ "legacy"; e ]) -> { ifc with if_extra = ifc.if_extra @ [ e ] }
      | Stmt (l, _) | Block (l, _, _) ->
          fail l "unsupported statement under interface %s" name)
    (empty_interface name) children
  |> fun i ->
  ignore line;
  i

let distribute_of l = function
  | [ "import"; name; "interface"; iface ] -> Some { dl_list = name; dl_iface = iface }
  | _ -> ignore l; None

let interpret_protocols c children =
  List.fold_left
    (fun c node ->
      match node with
      | Block (l, [ "ospf"; process ], body) ->
          let o =
            List.fold_left
              (fun o node ->
                match node with
                | Stmt (l, [ "network"; p; "area"; area ]) ->
                    {
                      o with
                      ospf_networks =
                        o.ospf_networks @ [ (prefix_of l p, int_of l area) ];
                    }
                | Stmt (l, ([ "import"; _; "interface"; _ ] as w)) ->
                    { o with ospf_distribute_in = o.ospf_distribute_in
                             @ Option.to_list (distribute_of l w) }
                | Stmt (_, [ "legacy"; e ]) -> { o with ospf_extra = o.ospf_extra @ [ e ] }
                | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported ospf statement")
              (empty_ospf (int_of l process))
              body
          in
          { c with ospf = Some o }
      | Block (_, [ "rip" ], body) ->
          let r =
            List.fold_left
              (fun r node ->
                match node with
                | Stmt (l, [ "network"; p ]) ->
                    { r with rip_networks = r.rip_networks @ [ prefix_of l p ] }
                | Stmt (l, ([ "import"; _; "interface"; _ ] as w)) ->
                    { r with rip_distribute_in = r.rip_distribute_in
                             @ Option.to_list (distribute_of l w) }
                | Stmt (_, [ "legacy"; e ]) -> { r with rip_extra = r.rip_extra @ [ e ] }
                | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported rip statement")
              empty_rip body
          in
          { c with rip = Some r }
      | Block (l, [ "eigrp"; asn ], body) ->
          let e =
            List.fold_left
              (fun e node ->
                match node with
                | Stmt (l, [ "network"; p ]) ->
                    { e with eigrp_networks = e.eigrp_networks @ [ prefix_of l p ] }
                | Stmt (l, ([ "import"; _; "interface"; _ ] as w)) ->
                    { e with eigrp_distribute_in = e.eigrp_distribute_in
                             @ Option.to_list (distribute_of l w) }
                | Stmt (_, [ "legacy"; x ]) ->
                    { e with eigrp_extra = e.eigrp_extra @ [ x ] }
                | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported eigrp statement")
              (empty_eigrp (int_of l asn))
              body
          in
          { c with eigrp = Some e }
      | Block (l, [ "bgp" ], body) ->
          let g =
            List.fold_left
              (fun g node ->
                match node with
                | Stmt (l, [ "local-as"; asn ]) -> { g with bgp_as = int_of l asn }
                | Stmt (l, [ "router-id"; id ]) ->
                    { g with bgp_router_id = Some (addr_of l id) }
                | Stmt (l, [ "network"; p ]) ->
                    { g with bgp_networks = g.bgp_networks @ [ prefix_of l p ] }
                | Block (l, [ "neighbor"; addr ], nbody) ->
                    let n =
                      List.fold_left
                        (fun n node ->
                          match node with
                          | Stmt (l, [ "peer-as"; asn ]) ->
                              { n with nb_remote_as = int_of l asn }
                          | Stmt (_, [ "import-list"; f ]) ->
                              { n with nb_distribute_in = Some f }
                          | Stmt (_, [ "import-policy"; f ]) ->
                              { n with nb_route_map_in = Some f }
                          | Stmt (l, _) | Block (l, _, _) ->
                              fail l "unsupported neighbor statement")
                        {
                          nb_addr = addr_of l addr;
                          nb_remote_as = -1;
                          nb_distribute_in = None;
                          nb_route_map_in = None;
                        }
                        nbody
                    in
                    if n.nb_remote_as < 0 then fail l "neighbor without peer-as";
                    { g with bgp_neighbors = g.bgp_neighbors @ [ n ] }
                | Stmt (_, [ "legacy"; e ]) -> { g with bgp_extra = g.bgp_extra @ [ e ] }
                | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported bgp statement")
              (empty_bgp 0) body
          in
          if g.bgp_as = 0 then fail l "bgp without local-as";
          { c with bgp = Some g }
      | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported protocol")
    c children

let interpret_policy_options c children =
  List.fold_left
    (fun c node ->
      match node with
      | Block (_, [ "prefix-list"; name ], body) ->
          let rules =
            List.map
              (fun node ->
                match node with
                | Stmt (l, [ "seq"; seq; action; p ]) ->
                    {
                      seq = int_of l seq;
                      action = action_of l action;
                      rule_prefix = prefix_of l p;
                      le = None;
                    }
                | Stmt (l, [ "seq"; seq; action; p; "le"; le ]) ->
                    {
                      seq = int_of l seq;
                      action = action_of l action;
                      rule_prefix = prefix_of l p;
                      le = Some (int_of l le);
                    }
                | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported prefix-list rule")
              body
          in
          { c with prefix_lists = c.prefix_lists @ [ { pl_name = name; pl_rules = rules } ] }
      | Block (_, [ "policy-statement"; name ], body) ->
          let clauses =
            List.map
              (fun node ->
                match node with
                | Block (l, [ "term"; seq; action ], tbody) ->
                    List.fold_left
                      (fun cl node ->
                        match node with
                        | Stmt (l, [ "local-preference"; v ]) ->
                            { cl with rm_set_local_pref = Some (int_of l v) }
                        | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported term")
                      {
                        rm_seq = int_of l seq;
                        rm_action = action_of l action;
                        rm_set_local_pref = None;
                      }
                      tbody
                | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported policy statement")
              body
          in
          {
            c with
            route_maps = c.route_maps @ [ { rm_name = name; rm_clauses = clauses } ];
          }
      | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported policy-options entry")
    c children

let interpret_firewall c children =
  List.fold_left
    (fun c node ->
      match node with
      | Block (_, [ "filter"; name ], body) ->
          let rules =
            List.map
              (fun node ->
                match node with
                | Stmt (l, [ action; "from"; src; "to"; dst ]) ->
                    let ep = function
                      | "any" -> None
                      | s -> Some (prefix_of l s)
                    in
                    { acl_action = action_of l action; acl_src = ep src; acl_dst = ep dst }
                | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported filter rule")
              body
          in
          { c with acls = c.acls @ [ { acl_name = name; acl_rules = rules } ] }
      | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported firewall entry")
    c children

let parse text =
  try
    let tree = parse_tree (tokenize text) in
    let c =
      List.fold_left
        (fun c node ->
          match node with
          | Block (_, [ "system" ], body) ->
              List.fold_left
                (fun c node ->
                  match node with
                  | Stmt (_, [ "host-name"; h ]) -> { c with hostname = h }
                  | Stmt (l, [ "default-gateway"; gw ]) ->
                      { c with default_gateway = Some (addr_of l gw) }
                  | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported system entry")
                c body
          | Block (_, [ "interfaces" ], body) ->
              List.fold_left
                (fun c node ->
                  match node with
                  | Block (l, [ name ], children) ->
                      {
                        c with
                        interfaces =
                          c.interfaces @ [ interpret_interface l name children ];
                      }
                  | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported interface entry")
                c body
          | Block (_, [ "protocols" ], body) -> interpret_protocols c body
          | Block (_, [ "policy-options" ], body) -> interpret_policy_options c body
          | Block (_, [ "firewall" ], body) -> interpret_firewall c body
          | Block (_, [ "routing-options" ], body) ->
              List.fold_left
                (fun c node ->
                  match node with
                  | Block (_, [ "static" ], sbody) ->
                      List.fold_left
                        (fun c node ->
                          match node with
                          | Stmt (l, [ "route"; p; "next-hop"; nh ]) ->
                              {
                                c with
                                statics =
                                  c.statics
                                  @ [
                                      {
                                        st_prefix = prefix_of l p;
                                        st_next_hop = addr_of l nh;
                                      };
                                    ];
                              }
                          | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported route")
                        c sbody
                  | Stmt (l, _) | Block (l, _, _) ->
                      fail l "unsupported routing-options entry")
                c body
          | Block (_, [ "legacy-extra" ], body) ->
              List.fold_left
                (fun c node ->
                  match node with
                  | Stmt (_, [ "line"; e ]) -> { c with extra = c.extra @ [ e ] }
                  | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported legacy entry")
                c body
          | Stmt (l, _) | Block (l, _, _) -> fail l "unsupported top-level entry")
        (empty_config "unnamed") tree
    in
    let kind =
      if
        c.default_gateway <> None && c.ospf = None && c.rip = None && c.eigrp = None
        && c.bgp = None && c.statics = []
      then Host
      else Router
    in
    Ok { c with kind }
  with Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn text =
  match parse text with Ok c -> c | Error m -> failwith m

let looks_like_junos text =
  let lines = String.split_on_char '\n' text in
  let rec first = function
    | [] -> false
    | l :: rest ->
        let t = String.trim l in
        if t = "" || (String.length t > 0 && t.[0] = '#') then first rest
        else
          (* a block opener ends with '{' *)
          String.length t > 0 && t.[String.length t - 1] = '{'
  in
  first lines
