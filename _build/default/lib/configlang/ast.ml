open Netcore

type action = Permit | Deny

type prefix_rule = {
  seq : int;
  action : action;
  rule_prefix : Prefix.t;
  le : int option;
}

type prefix_list = { pl_name : string; pl_rules : prefix_rule list }

type acl_rule = {
  acl_action : action;
  acl_src : Prefix.t option;
  acl_dst : Prefix.t option;
}

type acl = { acl_name : string; acl_rules : acl_rule list }

type interface = {
  if_name : string;
  if_address : (Ipv4.t * int) option;
  if_cost : int option;
  if_delay : int option;
  if_acl_in : string option;
  if_acl_out : string option;
  if_description : string option;
  if_shutdown : bool;
  if_extra : string list;
}

type distribute = { dl_list : string; dl_iface : string }

type ospf = {
  ospf_process : int;
  ospf_networks : (Prefix.t * int) list;
  ospf_distribute_in : distribute list;
  ospf_extra : string list;
}

type rip = {
  rip_networks : Prefix.t list;
  rip_distribute_in : distribute list;
  rip_extra : string list;
}

type eigrp = {
  eigrp_as : int;
  eigrp_networks : Prefix.t list;
  eigrp_distribute_in : distribute list;
  eigrp_extra : string list;
}

type route_map_clause = {
  rm_seq : int;
  rm_action : action;
  rm_set_local_pref : int option;
}

type route_map = { rm_name : string; rm_clauses : route_map_clause list }

type neighbor = {
  nb_addr : Ipv4.t;
  nb_remote_as : int;
  nb_distribute_in : string option;
  nb_route_map_in : string option;
}

type bgp = {
  bgp_as : int;
  bgp_router_id : Ipv4.t option;
  bgp_networks : Prefix.t list;
  bgp_neighbors : neighbor list;
  bgp_extra : string list;
}

type static_route = { st_prefix : Prefix.t; st_next_hop : Ipv4.t }

type kind = Router | Host

type config = {
  hostname : string;
  kind : kind;
  interfaces : interface list;
  ospf : ospf option;
  rip : rip option;
  eigrp : eigrp option;
  bgp : bgp option;
  prefix_lists : prefix_list list;
  acls : acl list;
  route_maps : route_map list;
  statics : static_route list;
  default_gateway : Ipv4.t option;
  extra : string list;
}

let empty_interface name =
  {
    if_name = name;
    if_address = None;
    if_cost = None;
    if_delay = None;
    if_acl_in = None;
    if_acl_out = None;
    if_description = None;
    if_shutdown = false;
    if_extra = [];
  }

let empty_ospf process =
  { ospf_process = process; ospf_networks = []; ospf_distribute_in = []; ospf_extra = [] }

let empty_rip = { rip_networks = []; rip_distribute_in = []; rip_extra = [] }

let empty_eigrp asn =
  { eigrp_as = asn; eigrp_networks = []; eigrp_distribute_in = []; eigrp_extra = [] }

let empty_bgp asn =
  { bgp_as = asn; bgp_router_id = None; bgp_networks = []; bgp_neighbors = []; bgp_extra = [] }

let empty_config hostname =
  {
    hostname;
    kind = Router;
    interfaces = [];
    ospf = None;
    rip = None;
    eigrp = None;
    bgp = None;
    prefix_lists = [];
    acls = [];
    route_maps = [];
    statics = [];
    default_gateway = None;
    extra = [];
  }

let interface_prefix i =
  Option.map (fun (addr, len) -> Prefix.v addr len) i.if_address

let find_interface c name =
  List.find_opt (fun i -> String.equal i.if_name name) c.interfaces

let find_prefix_list c name =
  List.find_opt (fun pl -> String.equal pl.pl_name name) c.prefix_lists

let find_acl c name =
  List.find_opt (fun a -> String.equal a.acl_name name) c.acls

let find_route_map c name =
  List.find_opt (fun rm -> String.equal rm.rm_name name) c.route_maps

let acl_permits acl ~src ~dst =
  let matches r =
    (match r.acl_src with Some p -> Prefix.mem src p | None -> true)
    && match r.acl_dst with Some p -> Prefix.mem dst p | None -> true
  in
  match List.find_opt matches acl.acl_rules with
  | Some r -> r.acl_action = Permit
  | None -> false

let rule_matches rule p =
  let rp = rule.rule_prefix in
  Prefix.subset ~sub:p ~super:rp
  &&
  match rule.le with
  | None -> Prefix.length p = Prefix.length rp
  | Some le -> Prefix.length p <= le

let prefix_list_matches pl p =
  (* The rules are almost always stored in sequence order already (the
     parser and the anonymizer both append in order); only sort when they
     are not, since this runs on every route-import decision. *)
  let rec is_sorted = function
    | a :: (b :: _ as rest) -> a.seq <= b.seq && is_sorted rest
    | [ _ ] | [] -> true
  in
  let rules =
    if is_sorted pl.pl_rules then pl.pl_rules
    else List.sort (fun a b -> Int.compare a.seq b.seq) pl.pl_rules
  in
  List.find_opt (fun r -> rule_matches r p) rules
  |> Option.map (fun r -> r.action)

let add_prefix_list_rule c name action prefix =
  let rule seq = { seq; action; rule_prefix = prefix; le = None } in
  let updated, prefix_lists =
    List.fold_left
      (fun (updated, acc) pl ->
        if String.equal pl.pl_name name then
          let next_seq =
            5 + List.fold_left (fun m r -> max m r.seq) 0 pl.pl_rules
          in
          (true, { pl with pl_rules = pl.pl_rules @ [ rule next_seq ] } :: acc)
        else (updated, pl :: acc))
      (false, []) c.prefix_lists
  in
  let prefix_lists = List.rev prefix_lists in
  if updated then { c with prefix_lists }
  else
    { c with prefix_lists = c.prefix_lists @ [ { pl_name = name; pl_rules = [ rule 5 ] } ] }
