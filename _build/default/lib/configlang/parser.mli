(** Parser for CiscoLite configuration files.

    The grammar is line-oriented: top-level statements start in column 0,
    block sub-statements are indented by one space, and [!] lines separate
    blocks (and are ignored). Unrecognized lines are preserved verbatim so
    that parse-print round trips never lose information. *)

val parse : string -> (Ast.config, string) result
(** [parse text] parses one device configuration. The error message
    includes the 1-based line number of the first offending line. *)

val parse_exn : string -> Ast.config
(** Like {!parse} but raises [Failure]. *)
