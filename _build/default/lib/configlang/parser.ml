open Netcore
open Ast

type line = { num : int; text : string }

exception Parse_error of int * string

let fail num fmt = Printf.ksprintf (fun m -> raise (Parse_error (num, m))) fmt

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let is_sub l = String.length l.text > 0 && l.text.[0] = ' '

let parse_ip num s =
  match Ipv4.of_string s with
  | Ok a -> a
  | Error m -> fail num "%s" m

let parse_int num s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail num "expected integer, got %S" s

let parse_prefix num s =
  match Prefix.of_string s with
  | Ok p -> p
  | Error m -> fail num "%s" m

(* [interface <name>] block *)
let parse_interface name sub =
  List.fold_left
    (fun i l ->
      match words l.text with
      | [ "ip"; "address"; addr; mask ] -> (
          let addr = parse_ip l.num addr in
          match Masks.len_of_netmask (parse_ip l.num mask) with
          | Some len -> { i with if_address = Some (addr, len) }
          | None -> fail l.num "non-contiguous netmask %s" mask)
      | [ "ip"; "ospf"; "cost"; c ] ->
          { i with if_cost = Some (parse_int l.num c) }
      | [ "delay"; d ] -> { i with if_delay = Some (parse_int l.num d) }
      | [ "ip"; "access-group"; name; "in" ] -> { i with if_acl_in = Some name }
      | [ "ip"; "access-group"; name; "out" ] -> { i with if_acl_out = Some name }
      | "description" :: rest ->
          { i with if_description = Some (String.concat " " rest) }
      | [ "shutdown" ] -> { i with if_shutdown = true }
      | _ -> { i with if_extra = i.if_extra @ [ String.trim l.text ] })
    (empty_interface name) sub

(* [router ospf <process>] block *)
let parse_ospf process sub =
  List.fold_left
    (fun o l ->
      match words l.text with
      | [ "network"; addr; wildcard; "area"; area ] -> (
          let addr = parse_ip l.num addr in
          match Masks.len_of_wildcard (parse_ip l.num wildcard) with
          | Some len ->
              let net = (Prefix.v addr len, parse_int l.num area) in
              { o with ospf_networks = o.ospf_networks @ [ net ] }
          | None -> fail l.num "non-contiguous wildcard %s" wildcard)
      | [ "distribute-list"; "prefix"; name; "in"; iface ] ->
          let d = { dl_list = name; dl_iface = iface } in
          { o with ospf_distribute_in = o.ospf_distribute_in @ [ d ] }
      | _ -> { o with ospf_extra = o.ospf_extra @ [ String.trim l.text ] })
    (empty_ospf process) sub

(* [router rip] block *)
let parse_rip sub =
  List.fold_left
    (fun r l ->
      match words l.text with
      | [ "network"; addr; wildcard ] -> (
          let addr = parse_ip l.num addr in
          match Masks.len_of_wildcard (parse_ip l.num wildcard) with
          | Some len ->
              { r with rip_networks = r.rip_networks @ [ Prefix.v addr len ] }
          | None -> fail l.num "non-contiguous wildcard %s" wildcard)
      | [ "distribute-list"; "prefix"; name; "in"; iface ] ->
          let d = { dl_list = name; dl_iface = iface } in
          { r with rip_distribute_in = r.rip_distribute_in @ [ d ] }
      | [ "version"; _ ] -> r
      | _ -> { r with rip_extra = r.rip_extra @ [ String.trim l.text ] })
    empty_rip sub

(* [router eigrp <asn>] block *)
let parse_eigrp asn sub =
  List.fold_left
    (fun e l ->
      match words l.text with
      | [ "network"; addr; wildcard ] -> (
          let addr = parse_ip l.num addr in
          match Masks.len_of_wildcard (parse_ip l.num wildcard) with
          | Some len ->
              { e with eigrp_networks = e.eigrp_networks @ [ Prefix.v addr len ] }
          | None -> fail l.num "non-contiguous wildcard %s" wildcard)
      | [ "distribute-list"; "prefix"; name; "in"; iface ] ->
          let d = { dl_list = name; dl_iface = iface } in
          { e with eigrp_distribute_in = e.eigrp_distribute_in @ [ d ] }
      | _ -> { e with eigrp_extra = e.eigrp_extra @ [ String.trim l.text ] })
    (empty_eigrp asn) sub

(* [ip access-list extended <name>] block. Endpoints are written as
   <addr> <wildcard> pairs or the keyword [any]. *)
let parse_acl num name sub =
  let endpoint num = function
    | "any" :: rest -> (None, rest)
    | addr :: wildcard :: rest -> (
        let addr = parse_ip num addr in
        match Masks.len_of_wildcard (parse_ip num wildcard) with
        | Some len -> (Some (Prefix.v addr len), rest)
        | None -> fail num "non-contiguous wildcard %s" wildcard)
    | _ -> fail num "malformed access-list endpoint"
  in
  let rules =
    List.map
      (fun l ->
        match words l.text with
        | action :: "ip" :: rest ->
            let acl_action =
              match action with
              | "permit" -> Permit
              | "deny" -> Deny
              | a -> fail l.num "expected permit/deny, got %S" a
            in
            let acl_src, rest = endpoint l.num rest in
            let acl_dst, rest = endpoint l.num rest in
            if rest <> [] then fail l.num "trailing tokens in access-list rule";
            { acl_action; acl_src; acl_dst }
        | _ -> fail l.num "malformed access-list rule")
      sub
  in
  ignore num;
  { acl_name = name; acl_rules = rules }

(* [router bgp <asn>] block. Neighbor attributes may appear before the
   neighbor's [remote-as] line, as in real Cisco configs, so neighbors are
   accumulated in a map first. *)
let parse_bgp asn sub =
  let update_neighbor b addr f =
    let found = ref false in
    let neighbors =
      List.map
        (fun n ->
          if Ipv4.equal n.nb_addr addr then begin
            found := true;
            f n
          end
          else n)
        b.bgp_neighbors
    in
    let neighbors =
      if !found then neighbors
      else
        neighbors
        @ [
            f
              {
                nb_addr = addr;
                nb_remote_as = -1;
                nb_distribute_in = None;
                nb_route_map_in = None;
              };
          ]
    in
    { b with bgp_neighbors = neighbors }
  in
  let b =
    List.fold_left
      (fun b l ->
        match words l.text with
        | [ "bgp"; "router-id"; id ] ->
            { b with bgp_router_id = Some (parse_ip l.num id) }
        | [ "network"; addr; "mask"; mask ] -> (
            let addr = parse_ip l.num addr in
            match Masks.len_of_netmask (parse_ip l.num mask) with
            | Some len ->
                { b with bgp_networks = b.bgp_networks @ [ Prefix.v addr len ] }
            | None -> fail l.num "non-contiguous netmask %s" mask)
        | [ "neighbor"; addr; "remote-as"; asn ] ->
            let addr = parse_ip l.num addr and asn = parse_int l.num asn in
            update_neighbor b addr (fun n -> { n with nb_remote_as = asn })
        | [ "neighbor"; addr; "distribute-list"; name; "in" ] ->
            let addr = parse_ip l.num addr in
            update_neighbor b addr (fun n -> { n with nb_distribute_in = Some name })
        | [ "neighbor"; addr; "route-map"; name; "in" ] ->
            let addr = parse_ip l.num addr in
            update_neighbor b addr (fun n -> { n with nb_route_map_in = Some name })
        | _ -> { b with bgp_extra = b.bgp_extra @ [ String.trim l.text ] })
      (empty_bgp asn) sub
  in
  (match List.find_opt (fun n -> n.nb_remote_as < 0) b.bgp_neighbors with
  | Some n ->
      let num = match sub with l :: _ -> l.num | [] -> 0 in
      fail num "bgp neighbor %s has no remote-as" (Ipv4.to_string n.nb_addr)
  | None -> ());
  b

let parse_prefix_list_line c num rest =
  match rest with
  | name :: "seq" :: seq :: action :: prefix :: tail ->
      let seq = parse_int num seq in
      let action =
        match action with
        | "permit" -> Permit
        | "deny" -> Deny
        | a -> fail num "expected permit/deny, got %S" a
      in
      let rule_prefix = parse_prefix num prefix in
      let le =
        match tail with
        | [] -> None
        | [ "le"; n ] -> Some (parse_int num n)
        | _ -> fail num "malformed prefix-list tail"
      in
      let rule = { seq; action; rule_prefix; le } in
      let found = ref false in
      let prefix_lists =
        List.map
          (fun pl ->
            if String.equal pl.pl_name name then begin
              found := true;
              { pl with pl_rules = pl.pl_rules @ [ rule ] }
            end
            else pl)
          c.prefix_lists
      in
      let prefix_lists =
        if !found then prefix_lists
        else prefix_lists @ [ { pl_name = name; pl_rules = [ rule ] } ]
      in
      { c with prefix_lists }
  | _ -> fail num "malformed ip prefix-list line"

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i text -> { num = i + 1; text })
    |> List.filter (fun l ->
           let t = String.trim l.text in
           t <> "" && t <> "!")
  in
  let rec take_block acc = function
    | l :: rest when is_sub l -> take_block (l :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let rec top c = function
    | [] -> c
    | l :: rest -> (
        match words l.text with
        | [ "hostname"; h ] -> top { c with hostname = h } rest
        | [ "interface"; name ] ->
            let sub, rest = take_block [] rest in
            let i = parse_interface name sub in
            top { c with interfaces = c.interfaces @ [ i ] } rest
        | [ "router"; "ospf"; process ] ->
            let sub, rest = take_block [] rest in
            let o = parse_ospf (parse_int l.num process) sub in
            top { c with ospf = Some o } rest
        | [ "router"; "rip" ] ->
            let sub, rest = take_block [] rest in
            top { c with rip = Some (parse_rip sub) } rest
        | [ "router"; "eigrp"; asn ] ->
            let sub, rest = take_block [] rest in
            let e = parse_eigrp (parse_int l.num asn) sub in
            top { c with eigrp = Some e } rest
        | [ "router"; "bgp"; asn ] ->
            let sub, rest = take_block [] rest in
            let b = parse_bgp (parse_int l.num asn) sub in
            top { c with bgp = Some b } rest
        | "ip" :: "prefix-list" :: tail ->
            top (parse_prefix_list_line c l.num tail) rest
        | [ "ip"; "access-list"; "extended"; name ] ->
            let sub, rest = take_block [] rest in
            let a = parse_acl l.num name sub in
            top { c with acls = c.acls @ [ a ] } rest
        | [ "route-map"; name; action; seq ] ->
            let rm_action =
              match action with
              | "permit" -> Permit
              | "deny" -> Deny
              | a -> fail l.num "expected permit/deny, got %S" a
            in
            let sub, rest = take_block [] rest in
            let clause =
              List.fold_left
                (fun cl sl ->
                  match words sl.text with
                  | [ "set"; "local-preference"; v ] ->
                      { cl with rm_set_local_pref = Some (parse_int sl.num v) }
                  | _ -> fail sl.num "unsupported route-map line")
                { rm_seq = parse_int l.num seq; rm_action; rm_set_local_pref = None }
                sub
            in
            let route_maps =
              if List.exists (fun rm -> rm.rm_name = name) c.route_maps then
                List.map
                  (fun rm ->
                    if rm.rm_name = name then
                      { rm with rm_clauses = rm.rm_clauses @ [ clause ] }
                    else rm)
                  c.route_maps
              else c.route_maps @ [ { rm_name = name; rm_clauses = [ clause ] } ]
            in
            top { c with route_maps } rest
        | [ "ip"; "route"; addr; mask; nh ] -> (
            let addr = parse_ip l.num addr in
            match Masks.len_of_netmask (parse_ip l.num mask) with
            | Some len ->
                let st =
                  { st_prefix = Prefix.v addr len; st_next_hop = parse_ip l.num nh }
                in
                top { c with statics = c.statics @ [ st ] } rest
            | None -> fail l.num "non-contiguous netmask %s" mask)
        | [ "ip"; "default-gateway"; gw ] ->
            top { c with default_gateway = Some (parse_ip l.num gw) } rest
        | _ ->
            (* Unknown top-level line: keep it, and also swallow any indented
               continuation block below it verbatim. *)
            let sub, rest = take_block [] rest in
            let raw = l.text :: List.map (fun s -> s.text) sub in
            top { c with extra = c.extra @ raw } rest)
  in
  try
    let c = top (empty_config "unnamed") lines in
    let kind =
      if
        c.default_gateway <> None && c.ospf = None && c.rip = None
        && c.eigrp = None && c.bgp = None && c.statics = []
      then Host
      else Router
    in
    Ok { c with kind }
  with Parse_error (num, msg) -> Error (Printf.sprintf "line %d: %s" num msg)

let parse_exn text =
  match parse text with Ok c -> c | Error m -> failwith m
