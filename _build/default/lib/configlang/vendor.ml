type t = Cisco | Junos

let of_string = function
  | "cisco" -> Ok Cisco
  | "junos" -> Ok Junos
  | s -> Error (Printf.sprintf "unknown vendor %S (expected cisco or junos)" s)

let to_string = function Cisco -> "cisco" | Junos -> "junos"
let detect text = if Junos.looks_like_junos text then Junos else Cisco

let parse text =
  match detect text with Junos -> Junos.parse text | Cisco -> Parser.parse text

let print = function Cisco -> Printer.to_string | Junos -> Junos.to_string
