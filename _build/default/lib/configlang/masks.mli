(** Conversions between prefix lengths and Cisco netmask / wildcard forms. *)

open Netcore

val netmask_of_len : int -> Ipv4.t
val wildcard_of_len : int -> Ipv4.t

val len_of_netmask : Ipv4.t -> int option
(** [None] when the mask is not a contiguous run of leading ones. *)

val len_of_wildcard : Ipv4.t -> int option
(** [None] when the wildcard is not a contiguous run of trailing ones. *)
