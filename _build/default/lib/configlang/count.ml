open Ast

type breakdown = {
  protocol_lines : int;
  filter_lines : int;
  interface_lines : int;
  other_lines : int;
}

let total b = b.protocol_lines + b.filter_lines + b.interface_lines + b.other_lines

let zero = { protocol_lines = 0; filter_lines = 0; interface_lines = 0; other_lines = 0 }

let add a b =
  {
    protocol_lines = a.protocol_lines + b.protocol_lines;
    filter_lines = a.filter_lines + b.filter_lines;
    interface_lines = a.interface_lines + b.interface_lines;
    other_lines = a.other_lines + b.other_lines;
  }

let clamp n = max 0 n

let sub a b =
  {
    protocol_lines = clamp (a.protocol_lines - b.protocol_lines);
    filter_lines = clamp (a.filter_lines - b.filter_lines);
    interface_lines = clamp (a.interface_lines - b.interface_lines);
    other_lines = clamp (a.other_lines - b.other_lines);
  }

let ospf_counts o =
  (* header + networks + extras are protocol lines; distribute-lists are
     filter lines. *)
  ( 1 + List.length o.ospf_networks + List.length o.ospf_extra,
    List.length o.ospf_distribute_in )

let rip_counts r =
  ( 2 (* header + version *) + List.length r.rip_networks + List.length r.rip_extra,
    List.length r.rip_distribute_in )

let eigrp_counts e =
  ( 1 + List.length e.eigrp_networks + List.length e.eigrp_extra,
    List.length e.eigrp_distribute_in )

let bgp_counts g =
  let neighbor_protocol = List.length g.bgp_neighbors in
  let neighbor_filter =
    List.length (List.filter (fun n -> n.nb_distribute_in <> None) g.bgp_neighbors)
    + List.length (List.filter (fun n -> n.nb_route_map_in <> None) g.bgp_neighbors)
  in
  let router_id = if g.bgp_router_id = None then 0 else 1 in
  ( 1 + router_id + List.length g.bgp_networks + neighbor_protocol
    + List.length g.bgp_extra,
    neighbor_filter )

let of_config c =
  let proto_of f = function Some x -> f x | None -> (0, 0) in
  let po, fo = proto_of ospf_counts c.ospf in
  let pr, fr = proto_of rip_counts c.rip in
  let pe, fe = proto_of eigrp_counts c.eigrp in
  let pb, fb = proto_of bgp_counts c.bgp in
  let prefix_list_rules =
    List.fold_left (fun acc pl -> acc + List.length pl.pl_rules) 0 c.prefix_lists
  in
  let acl_lines =
    List.fold_left (fun acc a -> acc + 1 + List.length a.acl_rules) 0 c.acls
  in
  let route_map_lines =
    List.fold_left
      (fun acc rm ->
        List.fold_left
          (fun acc cl -> acc + 1 + (if cl.rm_set_local_pref = None then 0 else 1))
          acc rm.rm_clauses)
      0 c.route_maps
  in
  let interface_lines =
    List.fold_left
      (fun acc i -> acc + List.length (Printer.interface_lines i))
      0 c.interfaces
  in
  {
    protocol_lines = po + pr + pe + pb + List.length c.statics;
    filter_lines = fo + fr + fe + fb + prefix_list_rules + acl_lines + route_map_lines;
    interface_lines;
    other_lines =
      1 (* hostname *)
      + (if c.default_gateway = None then 0 else 1)
      + List.length c.extra;
  }

let of_configs cs = List.fold_left (fun acc c -> add acc (of_config c)) zero cs
let lines_of_config c = total (of_config c)

let added ~orig ~anon =
  let find cs name = List.find_opt (fun c -> String.equal c.hostname name) cs in
  List.fold_left
    (fun acc a ->
      let a_counts = of_config a in
      match find orig a.hostname with
      | None -> add acc a_counts
      | Some o -> add acc (sub a_counts (of_config o)))
    zero anon

let config_utility ~orig ~anon =
  let n_l = total (added ~orig ~anon) in
  let p_l = total (of_configs anon) in
  if p_l = 0 then 1.0 else 1.0 -. (float_of_int n_l /. float_of_int p_l)
