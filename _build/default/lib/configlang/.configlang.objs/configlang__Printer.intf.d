lib/configlang/printer.mli: Ast
