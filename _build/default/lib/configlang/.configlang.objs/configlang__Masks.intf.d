lib/configlang/masks.mli: Ipv4 Netcore
