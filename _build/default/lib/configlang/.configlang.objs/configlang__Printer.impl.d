lib/configlang/printer.ml: Ast Buffer Ipv4 List Masks Netcore Prefix Printf String
