lib/configlang/junos.ml: Ast Buffer Ipv4 List Netcore Option Prefix Printf String
