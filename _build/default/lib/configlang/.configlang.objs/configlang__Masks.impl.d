lib/configlang/masks.ml: Ipv4 Netcore
