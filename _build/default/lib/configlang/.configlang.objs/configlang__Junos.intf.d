lib/configlang/junos.mli: Ast
