lib/configlang/vendor.ml: Junos Parser Printer Printf
