lib/configlang/ast.mli: Ipv4 Netcore Prefix
