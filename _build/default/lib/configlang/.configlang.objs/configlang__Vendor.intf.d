lib/configlang/vendor.mli: Ast
