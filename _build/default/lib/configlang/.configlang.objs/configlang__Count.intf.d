lib/configlang/count.mli: Ast
