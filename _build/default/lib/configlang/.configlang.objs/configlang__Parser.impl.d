lib/configlang/parser.ml: Ast Ipv4 List Masks Netcore Prefix Printf String
