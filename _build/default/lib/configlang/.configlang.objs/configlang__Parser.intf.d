lib/configlang/parser.mli: Ast
