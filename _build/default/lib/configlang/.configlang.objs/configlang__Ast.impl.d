lib/configlang/ast.ml: Int Ipv4 List Netcore Option Prefix String
