lib/configlang/count.ml: Ast List Printer String
