(** Line accounting for configuration-utility metrics.

    The configuration utility of ConfMask §7.1 is
    [U_C = 1 - N_l / P_l], where [N_l] is the number of lines the
    anonymizer injected and [P_l] the total number of lines. Table 3
    additionally breaks the injected lines down into routing-protocol
    lines, filter lines, and interface lines. Lines are counted on the
    canonical printed form, excluding blank and [!] separator lines. *)

type breakdown = {
  protocol_lines : int;  (** router ospf/rip/bgp blocks minus filters *)
  filter_lines : int;  (** prefix-list rules and distribute-list bindings *)
  interface_lines : int;  (** interface blocks *)
  other_lines : int;  (** hostname, default gateway, verbatim extras *)
}

val total : breakdown -> int

val of_config : Ast.config -> breakdown
val of_configs : Ast.config list -> breakdown

val lines_of_config : Ast.config -> int
(** [total (of_config c)]. *)

val added : orig:Ast.config list -> anon:Ast.config list -> breakdown
(** Per-category lines present in [anon] but not in [orig], matching
    devices by hostname. Devices that only exist in [anon] (fake hosts)
    count entirely as added. Categories never go negative: the ConfMask
    pipeline is append-only. *)

val config_utility : orig:Ast.config list -> anon:Ast.config list -> float
(** [U_C = 1 - N_l / P_l] with [N_l = total (added ~orig ~anon)] and
    [P_l] the total line count of [anon]. *)
