(** Deterministic pseudo-random numbers (SplitMix64).

    All randomized stages of the anonymizer thread an explicit generator so
    that every experiment in the paper reproduction is bit-reproducible.
    The global [Stdlib.Random] state is never touched. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises on [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> p:float -> bool
(** [bool t ~p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice. Raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)
