(** IPv4 addresses.

    Addresses are represented as integers in the range [0, 2^32 - 1]. All
    conversion functions canonicalize their input, so two values denote the
    same address exactly when they are structurally equal. *)

type t = private int

val zero : t

val of_int : int -> t
(** [of_int n] is the address with numeric value [n land 0xFFFFFFFF]. *)

val to_int : t -> int

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is the address [a.b.c.d]. Octets are masked to
    [0, 255]. *)

val to_octets : t -> int * int * int * int

val of_string : string -> (t, string) result
(** [of_string s] parses dotted-quad notation, e.g. ["10.0.1.2"]. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on malformed input. *)

val to_string : t -> string

val add : t -> int -> t
(** [add a n] is the address [n] above [a] (wrapping modulo 2^32). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
