lib/netcore/rng.mli:
