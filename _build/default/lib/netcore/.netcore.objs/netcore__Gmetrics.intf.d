lib/netcore/gmetrics.mli: Graph
