lib/netcore/pqueue.ml:
