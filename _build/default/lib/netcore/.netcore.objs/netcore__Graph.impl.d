lib/netcore/graph.ml: Format List Map Option Set String
