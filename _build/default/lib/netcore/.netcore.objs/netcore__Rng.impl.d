lib/netcore/rng.ml: Array Int64 List
