lib/netcore/ipv4.ml: Format Int Printf String
