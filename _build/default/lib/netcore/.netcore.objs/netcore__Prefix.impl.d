lib/netcore/prefix.ml: Format Int Ipv4 List Map Printf Result Set String
