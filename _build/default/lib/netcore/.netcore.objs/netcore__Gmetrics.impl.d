lib/netcore/gmetrics.ml: Graph Int List Map Pqueue Queue String
