lib/netcore/pqueue.mli:
