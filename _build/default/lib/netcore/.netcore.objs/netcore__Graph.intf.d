lib/netcore/graph.mli: Format Map Set
