(** Minimal purely-functional min-priority queue (pairing heap) with
    integer priorities, shared by the shortest-path engines. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val insert : int -> 'a -> 'a t -> 'a t

val pop : 'a t -> (int * 'a * 'a t) option
(** Removes a minimum-priority element. *)
