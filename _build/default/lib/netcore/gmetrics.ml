module Sset = Graph.Sset
module Smap = Graph.Smap
module Imap = Map.Make (Int)

let degree_histogram g =
  Graph.fold_nodes
    (fun v acc ->
      let d = Graph.degree v g in
      Imap.update d (function None -> Some 1 | Some n -> Some (n + 1)) acc)
    g Imap.empty
  |> Imap.bindings

let min_degree_group g =
  match degree_histogram g with
  | [] -> 0
  | hist -> List.fold_left (fun acc (_, n) -> min acc n) max_int hist

let is_k_degree_anonymous k g =
  Graph.num_nodes g = 0 || min_degree_group g >= k

let local_clustering g v =
  let ns = Graph.neighbors v g in
  let d = Sset.cardinal ns in
  if d < 2 then 0.0
  else
    let linked =
      Sset.fold
        (fun u acc ->
          Sset.fold
            (fun w acc ->
              if String.compare u w < 0 && Graph.mem_edge u w g then acc + 1
              else acc)
            ns acc)
        ns 0
    in
    2.0 *. float_of_int linked /. float_of_int (d * (d - 1))

let clustering_coefficient g =
  let n = Graph.num_nodes g in
  if n = 0 then 0.0
  else
    let total =
      Graph.fold_nodes (fun v acc -> acc +. local_clustering g v) g 0.0
    in
    total /. float_of_int n

let bfs_distances g src =
  if not (Graph.mem_node src g) then Smap.empty
  else
    let dist = ref (Smap.singleton src 0) in
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let du = Smap.find u !dist in
      Sset.iter
        (fun v ->
          if not (Smap.mem v !dist) then begin
            dist := Smap.add v (du + 1) !dist;
            Queue.add v queue
          end)
        (Graph.neighbors u g)
    done;
    !dist

let components g =
  let seen = ref Sset.empty in
  let comps =
    Graph.fold_nodes
      (fun v acc ->
        if Sset.mem v !seen then acc
        else begin
          let comp = List.map fst (Smap.bindings (bfs_distances g v)) in
          List.iter (fun u -> seen := Sset.add u !seen) comp;
          List.sort String.compare comp :: acc
        end)
      g []
  in
  List.sort (fun a b -> compare (List.nth_opt a 0) (List.nth_opt b 0)) comps

let connected g = List.length (components g) <= 1

module Pq = Pqueue

let dijkstra g ~weight src =
  if not (Graph.mem_node src g) then Smap.empty
  else
    let rec loop dist pq =
      match Pq.pop pq with
      | None -> dist
      | Some (d, u, pq) ->
          if Smap.mem u dist then loop dist pq
          else
            let dist = Smap.add u d dist in
            let pq =
              Sset.fold
                (fun v pq ->
                  if Smap.mem v dist then pq
                  else Pq.insert (d + weight u v) v pq)
                (Graph.neighbors u g) pq
            in
            loop dist pq
    in
    loop Smap.empty (Pq.insert 0 src Pq.empty)

let pearson samples =
  let n = List.length samples in
  if n < 2 then nan
  else
    let nf = float_of_int n in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 samples in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 samples in
    let mx = sx /. nf and my = sy /. nf in
    let cov, vx, vy =
      List.fold_left
        (fun (c, vx, vy) (x, y) ->
          let dx = x -. mx and dy = y -. my in
          (c +. (dx *. dy), vx +. (dx *. dx), vy +. (dy *. dy)))
        (0.0, 0.0, 0.0) samples
    in
    if vx = 0.0 || vy = 0.0 then nan else cov /. sqrt (vx *. vy)
