(** Graph metrics and traversals used by the evaluation.

    These implement the topology-side measurements of ConfMask §7.1:
    k-degree anonymity (Definition 3.1) and the clustering coefficient
    (Figure 7), plus the traversal primitives shared by the generators and
    the anonymization algorithms. *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, how many nodes have it)], sorted by degree. *)

val min_degree_group : Graph.t -> int
(** Minimum number of nodes sharing the same degree — the k of Figure 6.
    0 for the empty graph. *)

val is_k_degree_anonymous : int -> Graph.t -> bool
(** Whether every degree class has at least [k] members (Definition 3.1). *)

val local_clustering : Graph.t -> string -> float
(** Fraction of a node's neighbor pairs that are themselves adjacent; 0 for
    nodes of degree < 2. *)

val clustering_coefficient : Graph.t -> float
(** Average local clustering coefficient over all nodes (Watts-Strogatz),
    the utility metric of Figure 7. 0 for the empty graph. *)

val bfs_distances : Graph.t -> string -> int Graph.Smap.t
(** Unweighted hop distances from a source; unreachable nodes are absent. *)

val connected : Graph.t -> bool
(** Whether the graph has at most one connected component. *)

val components : Graph.t -> string list list
(** Connected components, each sorted; components sorted by first member. *)

val dijkstra :
  Graph.t -> weight:(string -> string -> int) -> string -> int Graph.Smap.t
(** Single-source weighted shortest-path distances. [weight u v] is the
    cost of traversing the edge from [u] to [v] (may be asymmetric);
    unreachable nodes are absent from the result. *)

val pearson : (float * float) list -> float
(** Pearson correlation coefficient of a sample (Figure 15). [nan] when
    either marginal is constant or the sample has < 2 points. *)
