(** Undirected simple graphs over string-named nodes.

    This is the topology substrate shared by the anonymizer, the NetHide
    baseline, and the generators. Self-loops and parallel edges are
    rejected silently ([add_edge] is idempotent), matching the "simple
    graph" view of the topology in ConfMask §4.2. *)

module Sset : Set.S with type elt = string
module Smap : Map.S with type key = string

type t

val empty : t
val add_node : string -> t -> t
val add_edge : string -> string -> t -> t
(** Adds both endpoints as nodes if absent. Adding a self-loop is a no-op. *)

val remove_edge : string -> string -> t -> t
val of_edges : (string * string) list -> t
val mem_node : string -> t -> bool
val mem_edge : string -> string -> t -> bool
val nodes : t -> string list
val num_nodes : t -> int
val num_edges : t -> int

val edges : t -> (string * string) list
(** Each undirected edge appears once, with endpoints sorted. *)

val neighbors : string -> t -> Sset.t
(** Empty set for unknown nodes. *)

val degree : string -> t -> int
val fold_nodes : (string -> 'a -> 'a) -> t -> 'a -> 'a
val union : t -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
