type 'a t = Empty | Node of int * 'a * 'a t list

let empty = Empty
let is_empty t = t = Empty

let merge a b =
  match (a, b) with
  | Empty, t | t, Empty -> t
  | Node (ka, va, ca), Node (kb, vb, cb) ->
      if ka <= kb then Node (ka, va, b :: ca) else Node (kb, vb, a :: cb)

let insert k v t = merge (Node (k, v, [])) t

let rec merge_pairs = function
  | [] -> Empty
  | [ t ] -> t
  | a :: b :: rest -> merge (merge a b) (merge_pairs rest)

let pop = function
  | Empty -> None
  | Node (k, v, children) -> Some (k, v, merge_pairs children)
