module Sset = Set.Make (String)
module Smap = Map.Make (String)

type t = Sset.t Smap.t

let empty = Smap.empty

let add_node v g =
  if Smap.mem v g then g else Smap.add v Sset.empty g

let add_half u v g =
  Smap.update u
    (function None -> Some (Sset.singleton v) | Some s -> Some (Sset.add v s))
    g

let add_edge u v g =
  if String.equal u v then add_node u g
  else add_half u v (add_half v u g)

let remove_half u v g =
  Smap.update u (Option.map (fun s -> Sset.remove v s)) g

let remove_edge u v g = remove_half u v (remove_half v u g)
let of_edges es = List.fold_left (fun g (u, v) -> add_edge u v g) empty es
let mem_node v g = Smap.mem v g

let neighbors v g =
  match Smap.find_opt v g with Some s -> s | None -> Sset.empty

let mem_edge u v g = Sset.mem v (neighbors u g)
let nodes g = List.map fst (Smap.bindings g)
let num_nodes g = Smap.cardinal g
let degree v g = Sset.cardinal (neighbors v g)

let num_edges g =
  Smap.fold (fun _ s acc -> acc + Sset.cardinal s) g 0 / 2

let edges g =
  Smap.fold
    (fun u s acc ->
      Sset.fold (fun v acc -> if String.compare u v < 0 then (u, v) :: acc else acc) s acc)
    g []
  |> List.rev

let fold_nodes f g acc = Smap.fold (fun v _ acc -> f v acc) g acc

let union a b =
  Smap.union (fun _ s1 s2 -> Some (Sset.union s1 s2)) a b

let equal a b = Smap.equal Sset.equal a b

let pp ppf g =
  Format.fprintf ppf "@[<v>graph (%d nodes, %d edges)" (num_nodes g) (num_edges g);
  List.iter (fun (u, v) -> Format.fprintf ppf "@,  %s -- %s" u v) (edges g);
  Format.fprintf ppf "@]"
