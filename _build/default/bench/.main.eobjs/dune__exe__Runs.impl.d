bench/runs.ml: Configlang Confmask Hashtbl List Netcore Netgen Nethide Printf Result Routing String Unix
