bench/main.mli:
