bench/main.ml: Analyze Array Bechamel Benchmark Configlang Confmask Float Hashtbl List Netcore Netgen Printf Routing Runs Spec Staged String Sys Test Time Toolkit Unix
