(* Auditing routing utility properties across anonymization (Appendix B).

   Run with:  dune exec examples/properties_audit.exe

   A network with a deliberate ACL black hole and an ECMP inconsistency is
   anonymized; the audit mines all six Appendix-B property families —
   reachability, path lengths, black holes, multipath consistency,
   waypoints, routing loops — from both data planes and shows that the
   anonymized network satisfies exactly the same properties (Theorem B.7
   made operational). This is what makes the shared configurations safe to
   use for verification-style downstream tasks. *)

module Ast = Configlang.Ast

let config lines = Configlang.Parser.parse_exn (String.concat "\n" lines)

let host name addr gw =
  config
    [
      "hostname " ^ name;
      "interface eth0";
      Printf.sprintf " ip address %s 255.255.255.0" addr;
      "ip default-gateway " ^ gw;
    ]

(* Diamond a1 -> {a2, a4} -> a3 with a security ACL on a2: traffic from
   the guest subnet (hg) to the finance subnet (hf) is dropped on the a2
   branch only — a deliberate multipath inconsistency — and fully dropped
   from hg to the management host hm. *)
let network () =
  let router name addrs extras =
    config
      ([ "hostname " ^ name ]
      @ List.concat
          (List.mapi
             (fun i (a, extra_lines) ->
               [
                 Printf.sprintf "interface Eth%d" i;
                 Printf.sprintf " ip address %s 255.255.255.0" a;
               ]
               @ extra_lines @ [ "!" ])
             addrs)
      @ [ "router ospf 1"; " network 10.0.0.0 0.255.255.255 area 0"; "!" ]
      @ extras)
  in
  [
    router "a1"
      [ ("10.0.12.1", []); ("10.0.14.1", []); ("10.50.1.1", []) ]
      [];
    router "a2"
      [ ("10.0.12.2", [ " ip access-group SEC in" ]); ("10.0.23.2", []) ]
      [
        "ip access-list extended SEC";
        " deny ip 10.50.1.0 0.0.0.255 10.50.3.0 0.0.0.255";
        " deny ip 10.50.1.0 0.0.0.255 10.50.9.0 0.0.0.255";
        " permit ip any any";
      ];
    router "a3"
      [ ("10.0.23.3", []); ("10.0.34.3", []); ("10.0.35.3", []); ("10.50.3.1", []) ]
      [];
    router "a4"
      [ ("10.0.14.4", []); ("10.0.34.4", []); ("10.50.9.1", [ " ip access-group MGMT out" ]) ]
      [
        "ip access-list extended MGMT";
        " deny ip 10.50.1.0 0.0.0.255 any";
        " permit ip any any";
      ];
    (* A stub branch office: makes the degree sequence irregular, so the
       topology anonymization has real work to do. *)
    router "a5" [ ("10.0.35.5", []); ("10.50.5.1", []) ] [];
    host "hx" "10.50.5.10" "10.50.5.1";
    host "hg" "10.50.1.10" "10.50.1.1";
    host "hf" "10.50.3.10" "10.50.3.1";
    host "hm" "10.50.9.10" "10.50.9.1";
  ]

let print_props label props =
  Printf.printf "\n%s (%d properties)\n" label (List.length props);
  List.iter
    (fun p -> Printf.printf "  %s\n" (Confmask.Properties.to_string p))
    props

let () =
  let configs = network () in
  let params = { Confmask.Workflow.default_params with k_r = 4; k_h = 2 } in
  let r = Confmask.Workflow.run_exn ~params configs in
  let hosts = Confmask.Workflow.real_hosts r in
  let dp0 = Routing.Simulate.dataplane r.orig_snapshot in
  let dp1 = Routing.Simulate.dataplane r.anon_snapshot in
  print_props "Original network" (Confmask.Properties.mine ~hosts dp0);
  let diff = Confmask.Properties.compare_properties ~hosts ~orig:dp0 ~anon:dp1 in
  Printf.printf "\nAfter anonymization (%d fake links, %d fake hosts):\n"
    (List.length r.fake_edges) (List.length r.fake_hosts);
  Printf.printf "  kept:   %d properties\n" (List.length diff.kept);
  Printf.printf "  lost:   %d\n" (List.length diff.lost);
  Printf.printf "  gained: %d\n" (List.length diff.gained);
  List.iter
    (fun p -> Printf.printf "  LOST %s\n" (Confmask.Properties.to_string p))
    diff.lost;
  List.iter
    (fun p -> Printf.printf "  GAINED %s\n" (Confmask.Properties.to_string p))
    diff.gained;
  Printf.printf "\nTheorem B.7 holds on this run: %b\n"
    (Confmask.Properties.preserved diff);
  (* The ACL stanzas survive verbatim in the shared configs. *)
  let a2 = List.find (fun (c : Ast.config) -> c.hostname = "a2") r.anon_configs in
  Printf.printf "security ACL still in the shared a2.cfg: %b\n"
    (Ast.find_acl a2 "SEC" <> None)
