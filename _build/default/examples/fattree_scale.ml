(* Scaling ConfMask to the largest evaluation networks (§7.3).

   Run with:  dune exec examples/fattree_scale.exe

   Anonymizes FatTree-08 (72 routers) and USCarrier (161 routers) across
   the k_r sweep of the paper, reporting per-stage wall-clock time and the
   resulting privacy/utility metrics. The paper's Batfish-backed prototype
   needs ~6 minutes on FatTree-08; this native simulator is much faster,
   but the relative cost of the stages — and the fact that large networks
   stay within interactive time — is the reproduced claim. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let run_case label entry k_r =
  let configs = Netgen.Nets.configs entry in
  let params = { Confmask.Workflow.default_params with k_r; k_h = 2 } in
  let result, seconds = time (fun () -> Confmask.Workflow.run ~params configs) in
  match result with
  | Error m -> Printf.printf "%-10s k_r=%-2d FAILED: %s\n" label k_r m
  | Ok r ->
      let topo = Confmask.Metrics.topology_of_snapshot r.anon_snapshot in
      let uc =
        Confmask.Metrics.config_utility ~orig:r.orig_configs ~anon:r.anon_configs
      in
      Printf.printf
        "%-10s k_r=%-2d | %5.2fs | fake links %3d | equiv iters %d | k=%2d | U_C %.3f | FE %b\n"
        label k_r seconds
        (List.length r.fake_edges)
        r.equiv_iterations topo.min_degree_group uc
        (Confmask.Workflow.functional_equivalence r)

let () =
  Printf.printf "%-10s %-6s | %-6s | stage summary\n" "network" "param" "time";
  List.iter
    (fun k_r -> run_case "fattree08" (Netgen.Nets.find "H") k_r)
    [ 2; 6; 10 ];
  List.iter
    (fun k_r -> run_case "uscarrier" (Netgen.Nets.find "F") k_r)
    [ 2; 6; 10 ]
