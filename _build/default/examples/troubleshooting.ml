(* The collaborative-troubleshooting case study of ConfMask §2.3.

   Run with:  dune exec examples/troubleshooting.exe

   A FatTree-04 network suffers high delay between h_A (pod 3) and h_B
   (pod 1). The root cause is a QoS misconfiguration on a core router:
   traffic from agg3-1 is remarked to *low* priority and then starves in
   agg1-1's weighted-round-robin queue. An engineer can only find this if
   the shared (anonymized) configurations still show the real forwarding
   path h_A -> edge3-1 -> agg3-1 -> core -> agg1-1 -> edge1-0 -> h_B and
   still contain the QoS stanzas.

   ConfMask preserves both; a NetHide-style obfuscation reroutes the
   forwarding path and hides the root cause. *)

module Ast = Configlang.Ast

let ha = "h-edge3-1-0"
let hb = "h-edge1-0-0"

(* QoS stanzas, carried verbatim (CiscoLite does not interpret them, just
   like the real ConfMask leaves unknown lines untouched). *)
let buggy_core_qos =
  [
    "traffic classifier is_mgmt_traffic";
    "traffic behavior remark_mgmt_dscp";
    "traffic policy mark_agg31_low_priority"; (* BUG: should be high *)
  ]

let congested_agg_qos =
  [ "qos schedule-profile default"; "qos wrr 1 to 7"; "qos queue 2 wrr weight 10" ]

let inject_qos (c : Ast.config) =
  match c.hostname with
  | "core0" -> { c with extra = c.extra @ buggy_core_qos }
  | "agg1-1" -> { c with extra = c.extra @ congested_agg_qos }
  | _ -> c

let waypoints paths =
  List.concat_map (fun p -> List.filteri (fun i _ -> i > 0 && i < List.length p - 1) p) paths
  |> List.sort_uniq String.compare

let () =
  let configs = List.map inject_qos (Netgen.Nets.configs (Netgen.Nets.find "G")) in
  let orig = Routing.Simulate.run_exn configs in
  let dp0 = Routing.Simulate.dataplane orig in
  let paths0 = Routing.Dataplane.paths dp0 ~src:ha ~dst:hb in

  Printf.printf "=== Original forwarding, %s -> %s ===\n" ha hb;
  List.iter (fun p -> Printf.printf "  %s\n" (String.concat " " p)) paths0;
  Printf.printf "routers on the trace: %s\n"
    (String.concat ", " (waypoints paths0));

  (* --- ConfMask --- *)
  let params = { Confmask.Workflow.default_params with k_r = 10; k_h = 2 } in
  let r = Confmask.Workflow.run_exn ~params configs in
  let dp1 = Routing.Simulate.dataplane r.anon_snapshot in
  let paths1 = Routing.Dataplane.paths dp1 ~src:ha ~dst:hb in
  Printf.printf "\n=== ConfMask-anonymized forwarding (k_r = 10, k_h = 2) ===\n";
  List.iter (fun p -> Printf.printf "  %s\n" (String.concat " " p)) paths1;
  Printf.printf "paths preserved exactly: %b\n"
    (List.sort compare paths0 = List.sort compare paths1);
  let anon_core =
    List.find (fun (c : Ast.config) -> c.hostname = "core0") r.anon_configs
  in
  Printf.printf "buggy QoS stanza still visible on core0: %b\n"
    (List.mem "traffic policy mark_agg31_low_priority" anon_core.extra);
  Printf.printf
    "=> the engineer sees the real path through core0 and the bad policy.\n";

  (* --- NetHide baseline --- *)
  let g = Routing.Device.router_graph orig.net in
  let edge_pairs =
    (* flows between all edge routers, the granularity NetHide optimizes *)
    let edges =
      List.filter (fun n -> String.length n >= 4 && String.sub n 0 4 = "edge")
        (Netcore.Graph.nodes g)
    in
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None) edges)
      edges
  in
  let rng = Netcore.Rng.create 7 in
  let params = { Nethide.default_params with candidates = 256 } in
  let g' = Nethide.obfuscate ~params ~rng g ~flows:edge_pairs in
  Printf.printf "\n=== NetHide-style obfuscation ===\n";
  Printf.printf "links changed: %d added / %d of the original kept\n"
    (List.length
       (List.filter
          (fun (u, v) -> not (Netcore.Graph.mem_edge u v g))
          (Netcore.Graph.edges g')))
    (List.length
       (List.filter
          (fun (u, v) -> Netcore.Graph.mem_edge u v g')
          (Netcore.Graph.edges g)));
  (match Nethide.forwarding_path g' "edge3-1" "edge1-0" with
  | Some p ->
      Printf.printf "published trace edge3-1 -> edge1-0: %s\n" (String.concat " " p);
      let real = waypoints paths0 in
      let missing = List.filter (fun w -> not (List.mem w p)) real in
      Printf.printf "real-path routers missing from the published trace: %s\n"
        (if missing = [] then "(none)" else String.concat ", " missing);
      Printf.printf
        "=> the congested queue and the mis-marking router are off the trace;\n\
         the engineer would chase fake interfaces instead (cf. §2.3).\n"
  | None -> Printf.printf "published topology even disconnects the pair!\n")
