examples/fattree_scale.ml: Confmask List Netgen Printf Unix
