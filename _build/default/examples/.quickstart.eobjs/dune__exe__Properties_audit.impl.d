examples/properties_audit.ml: Configlang Confmask List Printf Routing String
