examples/bgp_enterprise.ml: Configlang Confmask List Netgen Printf Routing Spec String
