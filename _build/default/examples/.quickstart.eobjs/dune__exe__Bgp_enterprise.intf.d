examples/bgp_enterprise.mli:
