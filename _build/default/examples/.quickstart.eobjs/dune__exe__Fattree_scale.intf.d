examples/fattree_scale.mli:
