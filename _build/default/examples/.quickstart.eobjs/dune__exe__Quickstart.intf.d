examples/quickstart.mli:
