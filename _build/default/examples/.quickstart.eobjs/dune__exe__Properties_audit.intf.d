examples/properties_audit.mli:
