examples/troubleshooting.mli:
