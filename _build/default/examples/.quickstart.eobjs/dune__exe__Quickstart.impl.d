examples/quickstart.ml: Confmask List Netcore Netgen Printf Routing String
