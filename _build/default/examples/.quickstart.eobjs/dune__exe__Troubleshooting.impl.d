examples/troubleshooting.ml: Configlang Confmask List Netcore Netgen Nethide Printf Routing String
