(* Quickstart: anonymize the four-router example network of ConfMask §3.2.

   Run with:  dune exec examples/quickstart.exe

   The network: departments h1, h2, h4 hang off routers r1, r2, r4; the
   only path between h1 and h4 crosses r3 and r2 because the r1-r3 and
   r3-r2 links have OSPF cost 1. Anonymization must hide the topology and
   the routing paths while keeping that exact forwarding behavior. *)

let section title =
  Printf.printf "\n=== %s ===\n" title

let print_paths dp src dst =
  match Routing.Dataplane.paths dp ~src ~dst with
  | [] -> Printf.printf "  %s -> %s: unreachable\n" src dst
  | paths ->
      List.iter
        (fun p -> Printf.printf "  %s -> %s: %s\n" src dst (String.concat " " p))
        paths

let () =
  (* The §3.2 example as a network spec: three low-cost backbone links. *)
  let spec =
    Netgen.Netspec.v ~name:"example32"
      ~routers:[ "r1"; "r2"; "r3"; "r4" ]
      ~links:[ ("r1", "r3", 1); ("r3", "r2", 1); ("r2", "r4", 10) ]
      ~hosts:[ ("h1", "r1"); ("h2", "r2"); ("h4", "r4") ]
      ()
  in
  let configs = Netgen.Emit.emit spec in

  section "Original network";
  let orig = Routing.Simulate.run_exn configs in
  let dp0 = Routing.Simulate.dataplane orig in
  print_paths dp0 "h1" "h4";
  print_paths dp0 "h1" "h2";
  let g0 = Routing.Device.router_graph orig.net in
  Printf.printf "  topology: %d routers, %d links, min same-degree group %d\n"
    (Netcore.Graph.num_nodes g0) (Netcore.Graph.num_edges g0)
    (Netcore.Gmetrics.min_degree_group g0);

  section "Anonymizing (k_r = 4, k_h = 2)";
  let params = { Confmask.Workflow.default_params with k_r = 4; k_h = 2 } in
  let r = Confmask.Workflow.run_exn ~params configs in
  Printf.printf "  fake links added: %s\n"
    (String.concat ", "
       (List.map (fun (u, v) -> u ^ "-" ^ v) r.fake_edges));
  Printf.printf "  fake hosts added: %s\n"
    (String.concat ", " (List.map fst r.fake_hosts));
  Printf.printf "  route-equivalence filters: %d (in %d iterations)\n"
    r.equiv_filters r.equiv_iterations;

  section "Anonymized network";
  let dp1 = Routing.Simulate.dataplane r.anon_snapshot in
  print_paths dp1 "h1" "h4";
  print_paths dp1 "h1" "h2";
  let g1 = Routing.Device.router_graph r.anon_snapshot.net in
  Printf.printf "  topology: %d routers, %d links, min same-degree group %d\n"
    (Netcore.Graph.num_nodes g1) (Netcore.Graph.num_edges g1)
    (Netcore.Gmetrics.min_degree_group g1);
  Printf.printf "  functional equivalence: %b\n"
    (Confmask.Workflow.functional_equivalence r);

  section "One anonymized configuration (r1)";
  print_string (List.assoc "r1" (Confmask.Workflow.anon_texts r))
