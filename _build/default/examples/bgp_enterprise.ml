(* Anonymizing a multi-AS BGP+OSPF enterprise network (Table 2 net A).

   Run with:  dune exec examples/bgp_enterprise.exe

   Demonstrates the two-level topology anonymization (§4.2), the BGP
   neighbor distribute-lists produced by the route-equivalence algorithm
   (Listing 3), and specification preservation measured with the
   Config2Spec-style miner (Figure 9). *)

module Ast = Configlang.Ast

let () =
  let entry = Netgen.Nets.find "A" in
  let configs = Netgen.Nets.configs entry in
  Printf.printf "network: %s (%s)\n" entry.label entry.network_type;

  let params = { Confmask.Workflow.default_params with k_r = 6; k_h = 2 } in
  let r = Confmask.Workflow.run_exn ~params configs in

  (* AS structure of the fake links. *)
  let asn name =
    match
      List.find_opt (fun (c : Ast.config) -> c.hostname = name) configs
    with
    | Some { bgp = Some b; _ } -> b.bgp_as
    | _ -> 0
  in
  let intra, inter =
    List.partition (fun (u, v) -> asn u = asn v) r.fake_edges
  in
  Printf.printf "fake links: %d intra-AS, %d inter-AS (new eBGP sessions)\n"
    (List.length intra) (List.length inter);
  List.iter
    (fun (u, v) -> Printf.printf "  eBGP: %s (AS%d) -- %s (AS%d)\n" u (asn u) v (asn v))
    inter;

  (* Show the filters on one border router. *)
  let with_filters =
    List.filter
      (fun (c : Ast.config) ->
        match c.bgp with
        | Some b -> List.exists (fun n -> n.Ast.nb_distribute_in <> None) b.bgp_neighbors
        | None -> false)
      r.anon_configs
  in
  Printf.printf "routers with BGP inbound filters: %d\n" (List.length with_filters);
  (match with_filters with
  | c :: _ ->
      Printf.printf "\n--- %s (anonymized, excerpt) ---\n" c.hostname;
      let text = Configlang.Printer.to_string c in
      String.split_on_char '\n' text
      |> List.filter (fun l ->
             let has s =
               let rec search i =
                 i + String.length s <= String.length l
                 && (String.sub l i (String.length s) = s || search (i + 1))
               in
               search 0
             in
             has "router bgp" || has "neighbor" || has "prefix-list")
      |> List.iter (fun l -> Printf.printf "%s\n" l)
  | [] -> ());

  (* Specification preservation. *)
  let dp0 = Routing.Simulate.dataplane r.orig_snapshot in
  let dp1 = Routing.Simulate.dataplane r.anon_snapshot in
  let diff = Spec.compare_specs ~orig:(Spec.mine dp0) ~anon:(Spec.mine dp1) in
  let real = Confmask.Workflow.real_hosts r in
  let fake_only = Spec.introduced_involving diff ~hosts:real in
  Printf.printf
    "\nspecifications: %d kept, %d lost, %d introduced (%d involve fake hosts)\n"
    (List.length diff.kept) (List.length diff.lost)
    (List.length diff.introduced) (List.length fake_only);
  Printf.printf "kept fraction: %.1f%%\n" (100.0 *. Spec.kept_fraction diff);
  Printf.printf "functional equivalence: %b\n"
    (Confmask.Workflow.functional_equivalence r)
