.PHONY: all build test bench-smoke batch-smoke serve-smoke cache-upgrade-smoke \
  verify-smoke redteam-smoke anonfix-smoke fuzz-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Fast end-to-end smoke: the small-network slice of every experiment,
# then one self-checked anonymization run that must show engine cache
# reuse in its telemetry (pool counters are 0 on single-core runners,
# so the grep checks engine counters only). The compiled.reuse grep
# proves the compiled-network cache is live: filter-only edits must
# reuse the compiled core instead of rebuilding it.
bench-smoke:
	dune exec bench/main.exe -- --fast --only table2 --only fig5 --only fig6
	rm -rf /tmp/confmask-smoke && mkdir -p /tmp/confmask-smoke
	dune exec bin/confmask_cli.exe -- generate --net A --out /tmp/confmask-smoke/orig
	dune exec bin/confmask_cli.exe -- anonymize --in /tmp/confmask-smoke/orig \
	  --out /tmp/confmask-smoke/anon --selfcheck --metrics-out /tmp/confmask-smoke/metrics.json
	grep -Eq '"engine\.spf_reuse": *[1-9]' /tmp/confmask-smoke/metrics.json
	grep -Eq '"engine\.fib_reuse": *[1-9]' /tmp/confmask-smoke/metrics.json
	grep -Eq '"compiled\.reuse": *[1-9]' /tmp/confmask-smoke/metrics.json
	# Scale slice (F, H, FatTree16 under --fast): the FEC collapse must
	# actually collapse — at least one network with a nonzero
	# fec_collapsed in BENCH_PR6.json — and finish inside the timeout.
	timeout 600 dune exec bench/main.exe -- --fast --only scale --jobs 4 --repeat 1
	grep -Eq '"fec_collapsed": *[1-9]' BENCH_PR6.json

# Batch driver + persistent cache smoke: run a tiny grid with a job
# limit (leaving one job pending), resume it to completion with warm
# disk-cache hits in the telemetry, then resume again and require the
# two manifests to be byte-identical.
batch-smoke:
	rm -rf /tmp/confmask-batch-smoke
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 2,6 --kh 2 \
	  --limit 1 --out /tmp/confmask-batch-smoke
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 2,6 --kh 2 \
	  --resume --out /tmp/confmask-batch-smoke \
	  --metrics-out /tmp/confmask-batch-smoke/metrics.json
	grep -Eq '"diskcache\.hit": *[1-9]' /tmp/confmask-batch-smoke/metrics.json
	grep -q '"status": "ok"' /tmp/confmask-batch-smoke/manifest.json
	! grep -q '"status": "pending"' /tmp/confmask-batch-smoke/manifest.json
	cp /tmp/confmask-batch-smoke/manifest.json /tmp/confmask-batch-smoke/manifest.first.json
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 2,6 --kh 2 \
	  --resume --out /tmp/confmask-batch-smoke
	cmp /tmp/confmask-batch-smoke/manifest.first.json /tmp/confmask-batch-smoke/manifest.json

# Resident daemon smoke: a warm `confmask serve` answering the batch
# grid through the client driver must produce byte-identical anonymized
# configurations and result digests to the one-shot path, show
# persistent-cache hits and zero fresh SPF computations on a second
# pass, and drain cleanly on shutdown.
SERVE_SMOKE := /tmp/confmask-serve-smoke
serve-smoke:
	rm -rf $(SERVE_SMOKE) && mkdir -p $(SERVE_SMOKE)
	dune build bin/confmask_cli.exe
	./_build/default/bin/confmask_cli.exe serve --listen unix:$(SERVE_SMOKE)/s.sock \
	  --cache $(SERVE_SMOKE)/cache > $(SERVE_SMOKE)/serve.log 2>&1 & echo $$! > $(SERVE_SMOKE)/pid
	for i in $$(seq 1 50); do test -S $(SERVE_SMOKE)/s.sock && break; sleep 0.2; done
	./_build/default/bin/confmask_cli.exe batch --nets A,B --kr 2,6 --kh 2 \
	  --out $(SERVE_SMOKE)/served --server unix:$(SERVE_SMOKE)/s.sock
	./_build/default/bin/confmask_cli.exe batch --nets A,B --kr 2,6 --kh 2 \
	  --out $(SERVE_SMOKE)/oneshot --no-cache
	# Byte-identical anonymized configurations, job by job.
	for d in $(SERVE_SMOKE)/served/*/configs; do \
	  diff -r $$d $(SERVE_SMOKE)/oneshot/$$(basename $$(dirname $$d))/configs || exit 1; done
	# Identical result digests, in job order.
	grep -o '"digest": "[0-9a-f]*"' $(SERVE_SMOKE)/served/manifest.json > $(SERVE_SMOKE)/served.digests
	grep -o '"digest": "[0-9a-f]*"' $(SERVE_SMOKE)/oneshot/manifest.json > $(SERVE_SMOKE)/oneshot.digests
	test -s $(SERVE_SMOKE)/served.digests
	cmp $(SERVE_SMOKE)/served.digests $(SERVE_SMOKE)/oneshot.digests
	# Second served pass: every simulation must come from the resident
	# caches — the daemon's spf_full counter must not move, and the disk
	# cache must report hits.
	./_build/default/bin/confmask_cli.exe call --connect unix:$(SERVE_SMOKE)/s.sock \
	  '{"op": "stats"}' | grep -o '"engine.spf_full":[0-9]*' > $(SERVE_SMOKE)/spf.before
	./_build/default/bin/confmask_cli.exe batch --nets A,B --kr 2,6 --kh 2 \
	  --out $(SERVE_SMOKE)/served2 --server unix:$(SERVE_SMOKE)/s.sock
	./_build/default/bin/confmask_cli.exe call --connect unix:$(SERVE_SMOKE)/s.sock \
	  '{"op": "stats"}' > $(SERVE_SMOKE)/stats.json
	grep -o '"engine.spf_full":[0-9]*' $(SERVE_SMOKE)/stats.json > $(SERVE_SMOKE)/spf.after
	cmp $(SERVE_SMOKE)/spf.before $(SERVE_SMOKE)/spf.after
	grep -Eq '"diskcache.hit":[1-9]' $(SERVE_SMOKE)/stats.json
	# Graceful shutdown: drain, then exit.
	./_build/default/bin/confmask_cli.exe call --connect unix:$(SERVE_SMOKE)/s.sock '{"op": "shutdown"}'
	for i in $$(seq 1 50); do kill -0 $$(cat $(SERVE_SMOKE)/pid) 2>/dev/null || break; sleep 0.2; done
	! kill -0 $$(cat $(SERVE_SMOKE)/pid) 2>/dev/null
	grep -q 'drained, exiting' $(SERVE_SMOKE)/serve.log

# Cache-format upgrade: a directory written by the pre-codec
# (Marshal-envelope) disk cache must be detected by its INDEX magic and
# wiped wholesale — never read — and the run must still succeed and
# leave a usable new-format cache behind.
CACHE_UPGRADE := /tmp/confmask-cache-upgrade
cache-upgrade-smoke:
	rm -rf $(CACHE_UPGRADE) && mkdir -p $(CACHE_UPGRADE)/cache
	printf 'confmask-diskcache 1\nconfmask-1/ocaml-5.1.1\n' > $(CACHE_UPGRADE)/cache/INDEX
	printf 'stale marshal bytes' > $(CACHE_UPGRADE)/cache/00deadbeef00.v
	printf 'half-written entry' > $(CACHE_UPGRADE)/cache/.tmp-1234-leftover.v
	dune exec bin/confmask_cli.exe -- generate --net A --out $(CACHE_UPGRADE)/orig
	dune exec bin/confmask_cli.exe -- anonymize --in $(CACHE_UPGRADE)/orig \
	  --out $(CACHE_UPGRADE)/anon --cache $(CACHE_UPGRADE)/cache
	test ! -f $(CACHE_UPGRADE)/cache/00deadbeef00.v
	test ! -f $(CACHE_UPGRADE)/cache/.tmp-1234-leftover.v
	grep -q 'confmask-diskcache 2' $(CACHE_UPGRADE)/cache/INDEX
	# The wiped directory is live again: a second run hits it.
	dune exec bin/confmask_cli.exe -- anonymize --in $(CACHE_UPGRADE)/orig \
	  --out $(CACHE_UPGRADE)/anon2 --cache $(CACHE_UPGRADE)/cache \
	  --metrics-out $(CACHE_UPGRADE)/metrics.json
	grep -Eq '"diskcache\.hit": *[1-9]' $(CACHE_UPGRADE)/metrics.json

# Differential policy verification smoke: anonymize net A's fig-grid
# cell through the batch driver, verify the anonymized configs against
# the original with `confmask verify` — the mined specification must
# transfer (nonzero holds_both, nothing lost, so exit code 0) — and the
# per-cell result.json must embed the verification record that a
# resumed batch reproduces byte-identically.
VERIFY_SMOKE := /tmp/confmask-verify-smoke
verify-smoke:
	rm -rf $(VERIFY_SMOKE) && mkdir -p $(VERIFY_SMOKE)
	dune exec bin/confmask_cli.exe -- generate --net A --out $(VERIFY_SMOKE)/orig
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 6 --kh 2 \
	  --out $(VERIFY_SMOKE)/batch
	grep -q '"verification"' $(VERIFY_SMOKE)/batch/A-kr6-kh2/result.json
	dune exec bin/confmask_cli.exe -- verify --orig $(VERIFY_SMOKE)/orig \
	  --anon $(VERIFY_SMOKE)/batch/A-kr6-kh2/configs --json > $(VERIFY_SMOKE)/verify.json
	grep -Eq '"holds_both": *[1-9]' $(VERIFY_SMOKE)/verify.json
	! grep -q '"verdict": "lost"' $(VERIFY_SMOKE)/verify.json
	# Resuming the finished batch must reproduce the manifest —
	# verification record included — byte for byte.
	cp $(VERIFY_SMOKE)/batch/manifest.json $(VERIFY_SMOKE)/manifest.first.json
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 6 --kh 2 \
	  --resume --out $(VERIFY_SMOKE)/batch
	cmp $(VERIFY_SMOKE)/manifest.first.json $(VERIFY_SMOKE)/batch/manifest.json

# Red-team smoke: the brute force must recover a planted legacy
# small-int PII key and come up empty against a full-width 64-bit hex
# key; the per-cell batch record must embed the redteam audit, and a
# resumed batch must reproduce the manifest byte for byte.
REDTEAM_SMOKE := /tmp/confmask-redteam-smoke
redteam-smoke:
	rm -rf $(REDTEAM_SMOKE) && mkdir -p $(REDTEAM_SMOKE)
	dune exec bin/confmask_cli.exe -- generate --net A --out $(REDTEAM_SMOKE)/orig
	dune exec bin/confmask_cli.exe -- anonymize --in $(REDTEAM_SMOKE)/orig \
	  --out $(REDTEAM_SMOKE)/weak --pii --pii-key 7
	dune exec bin/confmask_cli.exe -- redteam --orig $(REDTEAM_SMOKE)/orig \
	  --anon $(REDTEAM_SMOKE)/weak --attacks key_bruteforce --key 7 \
	  --key-range 64 --json > $(REDTEAM_SMOKE)/weak.json
	grep -q '"attack":"key_bruteforce"' $(REDTEAM_SMOKE)/weak.json
	grep -q '"recall":1' $(REDTEAM_SMOKE)/weak.json
	grep -q '"recovered_seed":7' $(REDTEAM_SMOKE)/weak.json
	dune exec bin/confmask_cli.exe -- anonymize --in $(REDTEAM_SMOKE)/orig \
	  --out $(REDTEAM_SMOKE)/strong --pii --pii-key 0xdeadbeefcafef00d
	dune exec bin/confmask_cli.exe -- redteam --orig $(REDTEAM_SMOKE)/orig \
	  --anon $(REDTEAM_SMOKE)/strong --attacks key_bruteforce \
	  --key 0xdeadbeefcafef00d --key-range 4096 --json > $(REDTEAM_SMOKE)/strong.json
	grep -q '"recall":0' $(REDTEAM_SMOKE)/strong.json
	grep -q '"claims":0' $(REDTEAM_SMOKE)/strong.json
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 6 --kh 2 \
	  --out $(REDTEAM_SMOKE)/batch
	grep -q '"redteam"' $(REDTEAM_SMOKE)/batch/A-kr6-kh2/result.json
	cp $(REDTEAM_SMOKE)/batch/manifest.json $(REDTEAM_SMOKE)/manifest.first.json
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 6 --kh 2 \
	  --resume --out $(REDTEAM_SMOKE)/batch
	cmp $(REDTEAM_SMOKE)/manifest.first.json $(REDTEAM_SMOKE)/batch/manifest.json

# Incremental-fixpoint smoke: anonymizing net A under the legacy
# full-recompute fixpoint (CONFMASK_ANONFIX=legacy) and under the
# default incremental one must produce byte-identical configurations,
# and the incremental run's telemetry must prove the deltas are live —
# nonzero rescanned-router and skipped-walk counters.
ANONFIX_SMOKE := /tmp/confmask-anonfix-smoke
anonfix-smoke:
	rm -rf $(ANONFIX_SMOKE) && mkdir -p $(ANONFIX_SMOKE)
	dune exec bin/confmask_cli.exe -- generate --net A --out $(ANONFIX_SMOKE)/orig
	CONFMASK_ANONFIX=legacy dune exec bin/confmask_cli.exe -- anonymize \
	  --in $(ANONFIX_SMOKE)/orig --out $(ANONFIX_SMOKE)/legacy
	dune exec bin/confmask_cli.exe -- anonymize --in $(ANONFIX_SMOKE)/orig \
	  --out $(ANONFIX_SMOKE)/incr --metrics-out $(ANONFIX_SMOKE)/metrics.json
	diff -r $(ANONFIX_SMOKE)/legacy $(ANONFIX_SMOKE)/incr
	grep -Eq '"equiv\.delta_routers": *[1-9]' $(ANONFIX_SMOKE)/metrics.json
	grep -Eq '"anon\.walks_skipped": *[1-9]' $(ANONFIX_SMOKE)/metrics.json

# Randomized differential/metamorphic fuzz of the whole pipeline: 200
# generated networks against every crucible oracle; failures are shrunk
# and written to crucible-failures/ for adoption into test/corpus/.
fuzz-smoke:
	dune exec bin/crucible_cli.exe -- --seed 0 --cases 200 \
	  --minimize --corpus-dir crucible-failures

check: build test bench-smoke batch-smoke serve-smoke cache-upgrade-smoke \
  verify-smoke redteam-smoke anonfix-smoke fuzz-smoke

clean:
	dune clean
