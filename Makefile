.PHONY: all build test bench-smoke fuzz-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Fast end-to-end smoke: the small-network slice of every experiment,
# then one self-checked anonymization run that must show engine cache
# reuse in its telemetry (pool counters are 0 on single-core runners,
# so the grep checks engine counters only).
bench-smoke:
	dune exec bench/main.exe -- --fast --only table2 --only fig5 --only fig6
	rm -rf /tmp/confmask-smoke && mkdir -p /tmp/confmask-smoke
	dune exec bin/confmask_cli.exe -- generate --net A --out /tmp/confmask-smoke/orig
	dune exec bin/confmask_cli.exe -- anonymize --in /tmp/confmask-smoke/orig \
	  --out /tmp/confmask-smoke/anon --selfcheck --metrics-out /tmp/confmask-smoke/metrics.json
	grep -Eq '"engine\.spf_reuse": *[1-9]' /tmp/confmask-smoke/metrics.json
	grep -Eq '"engine\.fib_reuse": *[1-9]' /tmp/confmask-smoke/metrics.json

# Randomized differential/metamorphic fuzz of the whole pipeline: 200
# generated networks against every crucible oracle; failures are shrunk
# and written to crucible-failures/ for adoption into test/corpus/.
fuzz-smoke:
	dune exec bin/crucible_cli.exe -- --seed 0 --cases 200 \
	  --minimize --corpus-dir crucible-failures

check: build test bench-smoke fuzz-smoke

clean:
	dune clean
