.PHONY: all build test bench-smoke batch-smoke fuzz-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Fast end-to-end smoke: the small-network slice of every experiment,
# then one self-checked anonymization run that must show engine cache
# reuse in its telemetry (pool counters are 0 on single-core runners,
# so the grep checks engine counters only). The compiled.reuse grep
# proves the compiled-network cache is live: filter-only edits must
# reuse the compiled core instead of rebuilding it.
bench-smoke:
	dune exec bench/main.exe -- --fast --only table2 --only fig5 --only fig6
	rm -rf /tmp/confmask-smoke && mkdir -p /tmp/confmask-smoke
	dune exec bin/confmask_cli.exe -- generate --net A --out /tmp/confmask-smoke/orig
	dune exec bin/confmask_cli.exe -- anonymize --in /tmp/confmask-smoke/orig \
	  --out /tmp/confmask-smoke/anon --selfcheck --metrics-out /tmp/confmask-smoke/metrics.json
	grep -Eq '"engine\.spf_reuse": *[1-9]' /tmp/confmask-smoke/metrics.json
	grep -Eq '"engine\.fib_reuse": *[1-9]' /tmp/confmask-smoke/metrics.json
	grep -Eq '"compiled\.reuse": *[1-9]' /tmp/confmask-smoke/metrics.json
	# Scale slice (F, H, FatTree16 under --fast): the FEC collapse must
	# actually collapse — at least one network with a nonzero
	# fec_collapsed in BENCH_PR6.json — and finish inside the timeout.
	timeout 600 dune exec bench/main.exe -- --fast --only scale --jobs 4 --repeat 1
	grep -Eq '"fec_collapsed": *[1-9]' BENCH_PR6.json

# Batch driver + persistent cache smoke: run a tiny grid with a job
# limit (leaving one job pending), resume it to completion with warm
# disk-cache hits in the telemetry, then resume again and require the
# two manifests to be byte-identical.
batch-smoke:
	rm -rf /tmp/confmask-batch-smoke
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 2,6 --kh 2 \
	  --limit 1 --out /tmp/confmask-batch-smoke
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 2,6 --kh 2 \
	  --resume --out /tmp/confmask-batch-smoke \
	  --metrics-out /tmp/confmask-batch-smoke/metrics.json
	grep -Eq '"diskcache\.hit": *[1-9]' /tmp/confmask-batch-smoke/metrics.json
	grep -q '"status": "ok"' /tmp/confmask-batch-smoke/manifest.json
	! grep -q '"status": "pending"' /tmp/confmask-batch-smoke/manifest.json
	cp /tmp/confmask-batch-smoke/manifest.json /tmp/confmask-batch-smoke/manifest.first.json
	dune exec bin/confmask_cli.exe -- batch --nets A --kr 2,6 --kh 2 \
	  --resume --out /tmp/confmask-batch-smoke
	cmp /tmp/confmask-batch-smoke/manifest.first.json /tmp/confmask-batch-smoke/manifest.json

# Randomized differential/metamorphic fuzz of the whole pipeline: 200
# generated networks against every crucible oracle; failures are shrunk
# and written to crucible-failures/ for adoption into test/corpus/.
fuzz-smoke:
	dune exec bin/crucible_cli.exe -- --seed 0 --cases 200 \
	  --minimize --corpus-dir crucible-failures

check: build test bench-smoke batch-smoke fuzz-smoke

clean:
	dune clean
