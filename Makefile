.PHONY: all build test bench-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

# Fast end-to-end smoke: the small-network slice of every experiment.
bench-smoke:
	dune exec bench/main.exe -- --fast --only table2 --only fig5 --only fig6

check: build test bench-smoke

clean:
	dune clean
