(* The crucible driver: randomized differential & metamorphic testing of
   the full anonymization pipeline on generated networks, with greedy
   shrinking of failures into replayable corpus cases. *)

open Cmdliner

let pp_spec ppf (s : Netgen.Netspec.t) =
  Format.fprintf ppf "%d routers / %d links / %d hosts%s" (List.length s.routers)
    (List.length s.links) (List.length s.hosts)
    (if s.asn = [] then " (OSPF)" else " (BGP+OSPF)")

let report_failure (f : Crucible.Runner.failure) =
  Printf.eprintf "FAIL seed=%d oracle=%s: %s\n  spec: %s\n" f.f_seed f.f_oracle
    f.f_message
    (Format.asprintf "%a" pp_spec f.f_spec);
  match f.f_minimized with
  | Some m ->
      Printf.eprintf "  minimized (%d shrink steps): %s\n" f.f_shrink_steps
        (Format.asprintf "%a" pp_spec m)
  | None -> ()

let resolve_oracles names =
  match names with
  | [] -> Ok Crucible.Oracle.all
  | names ->
      List.fold_left
        (fun acc n ->
          match (acc, Crucible.Oracle.find n) with
          | Error m, _ -> Error m
          | _, Error m -> Error m
          | Ok os, Ok o -> Ok (os @ [ o ]))
        (Ok []) names

let run_main seed cases max_size max_hosts oracle_names minimize corpus_dir
    replays list_oracles jobs trace metrics_out =
  if list_oracles then begin
    List.iter
      (fun (o : Crucible.Oracle.t) -> Printf.printf "%-10s %s\n" o.name o.doc)
      Crucible.Oracle.all;
    0
  end
  else begin
    if jobs >= 1 then Netcore.Pool.set_default_jobs jobs;
    if trace || metrics_out <> None then Netcore.Telemetry.set_enabled true;
    match resolve_oracles oracle_names with
    | Error m ->
        Printf.eprintf "%s\n" m;
        2
    | Ok oracles ->
        let emit_telemetry () =
          if trace then Netcore.Telemetry.pp_report Format.err_formatter ();
          match metrics_out with
          | None -> ()
          | Some file ->
              let oc = open_out file in
              output_string oc (Netcore.Telemetry.report_json ());
              close_out oc
        in
        let failures =
          if replays <> [] then begin
            (* Replay mode: corpus files or directories instead of
               generated cases. *)
            let cases =
              List.concat_map
                (fun path ->
                  if Sys.is_directory path then Crucible.Corpus.load_dir path
                  else
                    match Crucible.Corpus.load_file path with
                    | Ok case -> [ (path, case) ]
                    | Error m -> failwith m)
                replays
            in
            List.concat_map
              (fun (path, case) ->
                let fs = Crucible.Runner.replay ~oracles case in
                List.iter
                  (fun (f : Crucible.Runner.failure) ->
                    Printf.eprintf "FAIL %s oracle=%s: %s\n" path f.f_oracle
                      f.f_message)
                  fs;
                fs)
              cases
          end
          else begin
            let gen =
              {
                Crucible.Gen.default with
                max_routers = max_size;
                max_hosts = (if max_hosts > 0 then max_hosts else max_size);
              }
            in
            let outcome =
              Crucible.Runner.run ~minimize_failures:minimize ?corpus_dir
                ~oracles ~gen ~seed ~cases ()
            in
            List.iter report_failure outcome.failures;
            Printf.printf "crucible: %d cases x %d oracles, %d failures\n"
              outcome.cases (List.length oracles)
              (List.length outcome.failures);
            outcome.failures
          end
        in
        emit_telemetry ();
        if failures = [] then 0 else 1
  end

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N"
         ~doc:"Base seed; case $(i,i) of the run uses seed N+i.")

let cases_arg =
  Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N"
         ~doc:"Number of generated networks to check.")

let max_size_arg =
  Arg.(value & opt int 12 & info [ "max-size" ] ~docv:"N"
         ~doc:"Maximum routers per generated network (minimum 3).")

let max_hosts_arg =
  Arg.(value & opt int 0 & info [ "max-hosts" ] ~docv:"N"
         ~doc:"Maximum hosts per generated network (default: --max-size).")

let oracle_arg =
  Arg.(value & opt_all string [] & info [ "oracle" ] ~docv:"NAME"
         ~doc:"Oracle to run (repeatable; default: all). See --list-oracles.")

let minimize_arg =
  Arg.(value & flag & info [ "minimize" ]
         ~doc:"Greedily shrink every failing network to a minimal repro.")

let corpus_dir_arg =
  Arg.(value & opt (some string) None & info [ "corpus-dir" ] ~docv:"DIR"
         ~doc:"Write each failure as a replayable .case file into $(docv).")

let replay_arg =
  Arg.(value & opt_all string [] & info [ "replay" ] ~docv:"PATH"
         ~doc:"Replay a corpus .case file or a directory of them instead \
               of generating networks (repeatable).")

let list_oracles_arg =
  Arg.(value & flag & info [ "list-oracles" ] ~doc:"List the oracle suite and exit.")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "jobs" ] ~docv:"N"
         ~doc:"Size of the simulation worker pool (default: available cores).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ]
         ~doc:"Print the span/counter telemetry report to stderr when done.")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write the telemetry report to $(docv) as JSON.")

let () =
  let info =
    Cmd.info "crucible" ~version:"1.0.0"
      ~doc:"Randomized differential and metamorphic testing of the ConfMask \
            anonymization pipeline on seeded generated networks"
  in
  let term =
    Term.(const run_main $ seed_arg $ cases_arg $ max_size_arg $ max_hosts_arg
          $ oracle_arg $ minimize_arg $ corpus_dir_arg $ replay_arg
          $ list_oracles_arg $ jobs_arg $ trace_arg $ metrics_out_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))
