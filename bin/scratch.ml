(* Throwaway measurement probe used during development: where does the
   anon phase spend its time on a given net, legacy vs incremental? *)
let () =
  Netcore.Telemetry.set_enabled true;
  let entry = Netgen.Nets.find Sys.argv.(1) in
  let jobs = int_of_string Sys.argv.(2) in
  Netcore.Pool.set_default_jobs jobs;
  let configs = Netgen.Nets.configs entry in
  let params = { Confmask.Workflow.default_params with k_r = 6; k_h = 2 } in
  let run mode name =
    Confmask.Anonfix.with_mode mode (fun () ->
        Gc.full_major ();
        let s0 = Netcore.Telemetry.spans () in
        let t0 = Unix.gettimeofday () in
        (match Confmask.Workflow.run ~params configs with
        | Error m -> Printf.printf "ERROR: %s\n" m
        | Ok _ -> ());
        let dt = Unix.gettimeofday () -. t0 in
        let s1 = Netcore.Telemetry.spans () in
        Printf.printf "== %s: %.3fs total\n" name dt;
        List.iter
          (fun (path, n, secs) ->
            let before =
              List.fold_left
                (fun acc (p, _, s) -> if p = path then acc +. s else acc)
                0.0 s0
            in
            let d = secs -. before in
            if d > 0.01 then Printf.printf "   %-50s %4d %8.3fs\n" path n d)
          s1)
  in
  run `Legacy "legacy";
  run `Incremental "incremental"
