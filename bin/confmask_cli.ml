(* The confmask command-line tool: generate evaluation networks, anonymize
   a directory of configurations, simulate, and compare metrics. *)

open Cmdliner

(* Exit-code discipline: cmdliner reports usage errors itself (124);
   everything a command body raises is classified here — problems with
   the user's input exit 1 with a plain message, anything else is an
   internal invariant violation and exits 2. No bare [failwith] ever
   reaches the user as an uncaught exception. *)
let guard f =
  try f ()
  with e ->
    let cls, msg = Confmask.Batch.classify e in
    if cls = "input" then begin
      Printf.eprintf "confmask: %s\n" msg;
      1
    end
    else begin
      Printf.eprintf "confmask: internal error: %s\n" msg;
      2
    end

let read_dir = Confmask.Batch.read_config_dir

let write_configs ?(format = Configlang.Vendor.Cisco) dir configs =
  let printer = Configlang.Vendor.print format in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (c : Configlang.Ast.config) ->
      let path = Filename.concat dir (c.hostname ^ ".cfg") in
      let oc = open_out path in
      output_string oc (printer c);
      close_out oc)
    configs;
  Printf.printf "wrote %d configurations to %s\n" (List.length configs) dir

(* ---- generate ---- *)

let generate net out format =
  guard @@ fun () ->
  let entry =
    try Netgen.Nets.find net
    with Not_found -> Confmask.Batch.input_error "unknown network '%s'" net
  in
  write_configs ~format out (Netgen.Nets.configs entry);
  0

let net_arg =
  let doc =
    "Network to generate: A-H from the evaluation catalog (Table 2), or a \
     label such as 'enterprise', 'fattree04', 'uscarrier', 'ccnp'."
  in
  Arg.(required & opt (some string) None & info [ "net" ] ~docv:"ID" ~doc)

let out_arg =
  Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR"
         ~doc:"Output directory for .cfg files.")

let format_arg =
  let vendors =
    [ ("cisco", Configlang.Vendor.Cisco); ("junos", Configlang.Vendor.Junos) ]
  in
  Arg.(value & opt (enum vendors) Configlang.Vendor.Cisco
       & info [ "format" ] ~docv:"VENDOR"
           ~doc:"Output dialect: 'cisco' (CiscoLite) or 'junos' (JunosLite). \
                 Input files are auto-detected per file.")

let generate_cmd =
  let info = Cmd.info "generate" ~doc:"Generate an evaluation network's configurations" in
  Cmd.v info Term.(const generate $ net_arg $ out_arg $ format_arg)

(* ---- telemetry flags (shared by anonymize and simulate) ---- *)

let setup_telemetry ~trace ~metrics_out ~selfcheck =
  if trace || metrics_out <> None then Netcore.Telemetry.set_enabled true;
  if selfcheck && Netcore.Telemetry.selfcheck_period () = 0 then
    Netcore.Telemetry.set_selfcheck 1

let emit_telemetry ~trace ~metrics_out =
  if trace then Netcore.Telemetry.pp_report Format.err_formatter ();
  match metrics_out with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Netcore.Telemetry.report_json ());
      close_out oc

let trace_arg =
  Arg.(value & flag & info [ "trace" ]
         ~doc:"Print a span/counter telemetry report to stderr when done.")

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write the span/counter telemetry report to $(docv) as JSON.")

let selfcheck_arg =
  Arg.(value & flag & info [ "selfcheck" ]
         ~doc:"Shadow every incremental simulation step with a from-scratch \
               one and abort on any FIB divergence (slow; for validation). \
               Equivalent to CONFMASK_SELFCHECK=1.")

(* ---- anonymize ---- *)

(* PII keys on the command line: a bare decimal is the legacy small-int
   form (Pan.key_of_int — brute-forceable, fine for tests), anything
   else must be a full 64-bit hex key ("0xdeadbeefcafef00d"). *)
let parse_key s =
  match int_of_string_opt s with
  | Some n when String.for_all (fun c -> c >= '0' && c <= '9') s ->
      Pii.Pan.key_of_int n
  | _ -> (
      match Pii.Pan.key_of_string s with
      | Ok k -> k
      | Error m -> Confmask.Batch.input_error "bad key '%s': %s" s m)

let set_jobs n = if n >= 1 then Netcore.Pool.set_default_jobs n

let jobs_arg =
  Arg.(value & opt int 0 & info [ "jobs" ] ~docv:"N"
         ~doc:"Size of the simulation worker pool (default: the number of \
               available cores).")

let anonymize in_dir out_dir format k_r k_h noise seed pii pii_key fake_routers
    jobs cache_dir trace metrics_out selfcheck =
  guard @@ fun () ->
  set_jobs jobs;
  setup_telemetry ~trace ~metrics_out ~selfcheck;
  let cache = Option.map Routing.Engine.open_cache cache_dir in
  let configs = read_dir in_dir in
  let params =
    { Confmask.Workflow.k_r; k_h; noise; seed; pii;
      pii_key = Option.map parse_key pii_key; fake_routers }
  in
  match Confmask.Workflow.run ~params ?cache configs with
  | Error m ->
      Printf.eprintf "anonymization failed: %s\n" m;
      1
  | Ok r ->
      emit_telemetry ~trace ~metrics_out;
      write_configs ~format out_dir r.anon_configs;
      (* The owner-side secret: which elements are fake. Needed to
         interpret answers coming back from collaborators; never share. *)
      let oc = open_out (Filename.concat out_dir "confmask-secrets.txt") in
      Printf.fprintf oc "# Private mapping - do NOT share with the configs\n";
      List.iter
        (fun (u, v) -> Printf.fprintf oc "fake-link %s %s\n" u v)
        r.fake_edges;
      List.iter
        (fun (fake, real) -> Printf.fprintf oc "fake-host %s (copy of %s)\n" fake real)
        r.fake_hosts;
      List.iter (fun fr -> Printf.fprintf oc "fake-router %s\n" fr) r.fake_router_names;
      close_out oc;
      let topo = Confmask.Metrics.topology_of_snapshot r.anon_snapshot in
      let uc = Confmask.Metrics.config_utility ~orig:r.orig_configs ~anon:r.anon_configs in
      Printf.printf
        "fake links: %d\nfake hosts: %d\nfake routers: %d\n\
         route-equivalence iterations: %d\n\
         filters (equivalence): %d\nfilters (anonymity): %d (+%d rolled back)\n\
         topology anonymity k: %d\nconfig utility U_C: %.3f\n\
         functional equivalence: %b\n"
        (List.length r.fake_edges)
        (List.length r.fake_hosts)
        (List.length r.fake_router_names)
        r.equiv_iterations r.equiv_filters r.anon_filters_added
        r.anon_filters_removed topo.min_degree_group uc
        (Confmask.Workflow.functional_equivalence r);
      0

let in_arg =
  Arg.(required & opt (some dir) None & info [ "in" ] ~docv:"DIR"
         ~doc:"Directory of original .cfg files.")

let kr_arg =
  Arg.(value & opt int 6 & info [ "kr" ] ~docv:"K"
         ~doc:"Topology anonymity parameter $(docv) (k-degree anonymity).")

let kh_arg =
  Arg.(value & opt int 2 & info [ "kh" ] ~docv:"K"
         ~doc:"Route anonymity parameter $(docv) (fake hosts per real host).")

let noise_arg =
  Arg.(value & opt float 0.1 & info [ "noise" ] ~docv:"P"
         ~doc:"Noise coefficient of the route anonymization algorithm.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let pii_arg =
  Arg.(value & flag & info [ "pii" ]
         ~doc:"Also run the PII add-on (prefix-preserving IP anonymization, \
               device renaming, secret redaction).")

let pii_key_arg =
  Arg.(value & opt (some string) None & info [ "pii-key" ] ~docv:"KEY"
         ~doc:"Key of the prefix-preserving IP map used by $(b,--pii): a \
               full 64-bit hex key ('0xdeadbeefcafef00d'; recommended) or a \
               legacy small decimal int (brute-forceable — see the redteam \
               key_bruteforce attack). Default: derived from $(b,--seed).")

let fake_routers_arg =
  Arg.(value & opt int 0 & info [ "fake-routers" ] ~docv:"N"
         ~doc:"Network-scale obfuscation: add $(docv) fake routers before \
               topology anonymization (IGP-only networks).")

let cache_arg =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
         ~doc:"Persistent simulation cache directory: SPF states, DV and BGP \
               fixpoints and whole simulations are reused across runs. \
               Results are identical with and without it.")

let anonymize_cmd =
  let info = Cmd.info "anonymize" ~doc:"Anonymize a directory of configurations" in
  Cmd.v info
    Term.(const anonymize $ in_arg $ out_arg $ format_arg $ kr_arg $ kh_arg $ noise_arg
          $ seed_arg $ pii_arg $ pii_key_arg $ fake_routers_arg $ jobs_arg
          $ cache_arg $ trace_arg $ metrics_out_arg $ selfcheck_arg)

(* ---- simulate ---- *)

let simulate in_dir show_paths jobs trace metrics_out =
  guard @@ fun () ->
  set_jobs jobs;
  setup_telemetry ~trace ~metrics_out ~selfcheck:false;
  let configs = read_dir in_dir in
  match Routing.Simulate.run configs with
  | Error m ->
      Printf.eprintf "simulation failed: %s\n" m;
      1
  | Ok snap ->
      emit_telemetry ~trace ~metrics_out;
      let g = Routing.Device.router_graph snap.net in
      Printf.printf "routers: %d\nhosts: %d\nrouter links: %d\n"
        (Netcore.Graph.num_nodes g)
        (Routing.Device.Smap.cardinal snap.net.hosts)
        (Netcore.Graph.num_edges g);
      let dp = Routing.Simulate.dataplane snap in
      let delivered = Routing.Dataplane.all_delivered dp in
      Printf.printf "host pairs with a route: %d\n" (List.length delivered);
      if show_paths then
        List.iter
          (fun ((s, d), paths) ->
            List.iter
              (fun p -> Printf.printf "%s -> %s: %s\n" s d (String.concat " " p))
              paths)
          delivered;
      0

let paths_arg =
  Arg.(value & flag & info [ "paths" ] ~doc:"Print every host-to-host path.")

let simulate_cmd =
  let info = Cmd.info "simulate" ~doc:"Simulate a directory of configurations" in
  Cmd.v info
    Term.(const simulate $ in_arg $ paths_arg $ jobs_arg $ trace_arg
          $ metrics_out_arg)

(* ---- metrics ---- *)

let metrics orig_dir anon_dir =
  guard @@ fun () ->
  let orig_configs = read_dir orig_dir in
  let anon_configs = read_dir anon_dir in
  match (Routing.Simulate.run orig_configs, Routing.Simulate.run anon_configs) with
  | Error m, _ | _, Error m ->
      Printf.eprintf "simulation failed: %s\n" m;
      1
  | Ok orig, Ok anon ->
      let dp0 = Routing.Simulate.dataplane orig in
      let dp1 = Routing.Simulate.dataplane anon in
      let hosts = List.map fst (Routing.Device.Smap.bindings orig.net.hosts) in
      let nr0 = Confmask.Metrics.route_anonymity dp0 in
      let nr1 = Confmask.Metrics.route_anonymity dp1 in
      let t0 = Confmask.Metrics.topology_of_snapshot orig in
      let t1 = Confmask.Metrics.topology_of_snapshot anon in
      let kept = Confmask.Metrics.kept_paths_fraction ~orig:dp0 ~anon:dp1 ~hosts in
      let uc = Confmask.Metrics.config_utility ~orig:orig_configs ~anon:anon_configs in
      let d =
        Spec.compare_specs ~orig:(Spec.mine dp0) ~anon:(Spec.mine dp1)
      in
      Printf.printf
        "route anonymity N_r: %.2f -> %.2f\nkept paths: %.1f%%\n\
         topology anonymity k: %d -> %d\nclustering coefficient: %.3f -> %.3f\n\
         config utility U_C: %.3f\nkept specifications: %.1f%%\n"
        nr0.nr_avg nr1.nr_avg (100.0 *. kept) t0.min_degree_group
        t1.min_degree_group t0.clustering t1.clustering uc
        (100.0 *. Spec.kept_fraction d);
      0

(* ---- deanon ---- *)

let deanon in_dir =
  guard @@ fun () ->
  let configs = read_dir in_dir in
  match Routing.Simulate.run configs with
  | Error m ->
      Printf.eprintf "simulation failed: %s\n" m;
      1
  | Ok snap ->
      let uniform = Confmask.Deanon.uniform_filter_links snap configs in
      let dead = Confmask.Deanon.no_traffic_links snap in
      Printf.printf "links flagged by the uniform-filter attack: %d\n"
        (List.length uniform);
      List.iter (fun (u, v) -> Printf.printf "  %s -- %s\n" u v) uniform;
      Printf.printf "links flagged by the no-traffic attack: %d\n"
        (List.length dead);
      List.iter (fun (u, v) -> Printf.printf "  %s -- %s\n" u v) dead;
      0

let deanon_cmd =
  let info =
    Cmd.info "deanon"
      ~doc:"Run the fake-link identification attacks against a (shared) \
            configuration directory - the adversary's view"
  in
  Cmd.v info Term.(const deanon $ in_arg)

let orig_arg =
  Arg.(required & opt (some dir) None & info [ "orig" ] ~docv:"DIR"
         ~doc:"Original configuration directory.")

let anon_arg =
  Arg.(required & opt (some dir) None & info [ "anon" ] ~docv:"DIR"
         ~doc:"Anonymized configuration directory.")

let metrics_cmd =
  let info = Cmd.info "metrics" ~doc:"Compare an original and an anonymized network" in
  Cmd.v info Term.(const metrics $ orig_arg $ anon_arg)

(* ---- redteam ---- *)

let redteam orig_dir anon_dir attacks key key_range json jobs trace metrics_out =
  guard @@ fun () ->
  set_jobs jobs;
  setup_telemetry ~trace ~metrics_out ~selfcheck:false;
  let orig_configs = read_dir orig_dir in
  let anon_configs = read_dir anon_dir in
  match (Routing.Simulate.run orig_configs, Routing.Simulate.run anon_configs) with
  | Error m, _ | _, Error m ->
      Printf.eprintf "simulation failed: %s\n" m;
      1
  | Ok orig, Ok anon ->
      let attacks = match attacks with [] -> None | l -> Some l in
      let planted_key = Option.map parse_key key in
      let scores =
        Confmask.Audit.check ?attacks ?key_range ?planted_key ~orig_configs
          ~orig ~anon_configs ~anon ()
      in
      emit_telemetry ~trace ~metrics_out;
      if json then
        print_endline (Netcore.Json.to_string (Confmask.Audit.to_json scores))
      else begin
        Printf.printf "%-18s %7s %6s %9s %10s %8s\n" "attack" "claims" "hits"
          "relevant" "precision" "recall";
        List.iter
          (fun (s : Redteam.Attack.score) ->
            Printf.printf "%-18s %7d %6d %9d %10.3f %8.3f" s.attack s.claims
              s.hits s.relevant s.precision s.recall;
            List.iter
              (fun (k, v) -> Printf.printf "  %s=%.3f" k v)
              s.detail;
            print_newline ())
          scores
      end;
      0

let attacks_arg =
  Arg.(value & opt (list string) [] & info [ "attacks" ] ~docv:"LIST"
         ~doc:"Comma-separated attack subset (degree_reid, filter_pattern, \
               no_traffic, prefix_structure, key_bruteforce). Default: all.")

let redteam_key_arg =
  Arg.(value & opt (some string) None & info [ "key" ] ~docv:"KEY"
         ~doc:"Plant the PII key the pair was scrubbed with, so the \
               key_bruteforce attack's recovery is verified against it \
               (decimal legacy int or 0x hex).")

let key_range_arg =
  Arg.(value & opt (some int) None & info [ "key-range" ] ~docv:"N"
         ~doc:"Seed range the key brute-force scans (default 65536).")

let redteam_json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Print the per-attack score report as JSON on stdout.")

let redteam_cmd =
  let info =
    Cmd.info "redteam"
      ~doc:"Run the de-anonymization attack suite against an original / \
            anonymized configuration pair and report each attack's \
            precision and recall (re-identification rate) — the measured \
            security budget of the anonymization parameters"
  in
  Cmd.v info
    Term.(const redteam $ orig_arg $ anon_arg $ attacks_arg $ redteam_key_arg
          $ key_range_arg $ redteam_json_arg $ jobs_arg $ trace_arg
          $ metrics_out_arg)

(* ---- verify ---- *)

let read_text_file path =
  let ic =
    try open_in_bin path
    with Sys_error m -> Confmask.Batch.input_error "%s" m
  in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let verify orig_dir anon_dir policies_file json jobs trace metrics_out =
  guard @@ fun () ->
  set_jobs jobs;
  setup_telemetry ~trace ~metrics_out ~selfcheck:false;
  let orig_configs = read_dir orig_dir in
  let anon_configs = read_dir anon_dir in
  let policies =
    match policies_file with
    | None -> None
    | Some file -> (
        match Spec.Query.parse (read_text_file file) with
        | Ok ps -> Some ps
        | Error m -> Confmask.Batch.input_error "%s: %s" file m)
  in
  match (Routing.Simulate.run orig_configs, Routing.Simulate.run anon_configs) with
  | Error m, _ | _, Error m ->
      Printf.eprintf "simulation failed: %s\n" m;
      1
  | Ok orig, Ok anon ->
      let v = Confmask.Verify.check ?policies ~orig ~anon () in
      emit_telemetry ~trace ~metrics_out;
      let s = v.Confmask.Verify.summary in
      if json then
        print_endline (Netcore.Json.to_string (Confmask.Verify.to_json v))
      else begin
        Printf.printf
          "policies: %d\nholds_both: %d\nlost: %d\nintroduced: %d\n\
           holds_neither: %d\nfake_only: %d\nkept: %.1f%%\n"
          s.total s.holds_both s.lost s.introduced s.holds_neither s.fake_only
          (100.0 *. s.kept_fraction);
        List.iter
          (fun (e : Spec.Query.entry) ->
            match e.e_verdict with
            | Spec.Query.Lost | Spec.Query.Introduced ->
                let evidence =
                  let o =
                    if e.e_verdict = Spec.Query.Lost then e.e_anon
                    else Option.value ~default:e.e_anon e.e_orig
                  in
                  match (o.witness, o.counterexample) with
                  | [], p :: _ | p :: _, [] -> "  e.g. " ^ String.concat " " p
                  | _ -> ""
                in
                Printf.printf "%s: %s%s\n"
                  (Spec.Query.verdict_to_string e.e_verdict)
                  (Spec.Query.to_string e.e_policy)
                  evidence
            | _ -> ())
          v.Confmask.Verify.entries
      end;
      (* Exit discipline: every policy that held on the original must
         still hold on the anonymized network; anything lost is a
         verification failure (input class — the shared configs do not
         honor the policies, nothing internal broke). *)
      if s.lost = 0 then 0 else 1

let policies_arg =
  Arg.(value & opt (some string) None & info [ "policies" ] ~docv:"FILE"
         ~doc:"Policy file to check: one policy per line — \
               $(b,reach(src, dst)), $(b,waypoint(src, dst, via)), \
               $(b,isolation(src, dst)), $(b,loadbalance(src, dst, n)) — \
               with '#' comments, or a JSON array of \
               {\"type\", \"src\", \"dst\", \"via\", \"paths\"} objects. \
               Default: the mined specification of the original network.")

let verify_json_arg =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Print the full machine-readable report (summary counts plus \
               one entry per policy with verdict and witness/counterexample \
               paths) as JSON on stdout.")

let verify_cmd =
  let info =
    Cmd.info "verify"
      ~doc:"Differentially verify policies on an original vs. anonymized \
            configuration pair: evaluate each policy (or the whole mined \
            specification) on both simulated data planes and report a \
            typed verdict — holds_both, lost, introduced, holds_neither, \
            fake_only — with witness and counterexample paths. Exits 0 \
            when no policy is lost, 1 otherwise."
  in
  Cmd.v info
    Term.(const verify $ orig_arg $ anon_arg $ policies_arg $ verify_json_arg
          $ jobs_arg $ trace_arg $ metrics_out_arg)


(* ---- diff ---- *)

let diff orig_dir anon_dir =
  guard @@ fun () ->
  let orig = read_dir orig_dir in
  let anon = read_dir anon_dir in
  Printf.printf "%-16s %10s %10s %10s %10s\n" "device" "protocol" "filter" "iface"
    "other";
  let find cs name =
    List.find_opt (fun (c : Configlang.Ast.config) -> c.hostname = name) cs
  in
  List.iter
    (fun (a : Configlang.Ast.config) ->
      let b =
        match find orig a.hostname with
        | Some o ->
            Confmask.Metrics.line_breakdown ~orig:[ o ] ~anon:[ a ]
        | None -> Confmask.Metrics.line_breakdown ~orig:[] ~anon:[ a ]
      in
      if Configlang.Count.total b > 0 then
        Printf.printf "%-16s %10d %10d %10d %10d%s\n" a.hostname b.protocol_lines
          b.filter_lines b.interface_lines b.other_lines
          (if find orig a.hostname = None then "  (new device)" else ""))
    anon;
  let total = Confmask.Metrics.line_breakdown ~orig ~anon in
  Printf.printf "%-16s %10d %10d %10d %10d\n" "TOTAL" total.protocol_lines
    total.filter_lines total.interface_lines total.other_lines;
  Printf.printf "config utility U_C = %.3f\n"
    (Confmask.Metrics.config_utility ~orig ~anon);
  0

let diff_cmd =
  let info =
    Cmd.info "diff"
      ~doc:"Summarize the lines an anonymization run injected, per device and \
            category (the Table 3 view)"
  in
  Cmd.v info Term.(const diff $ orig_arg $ anon_arg)

(* ---- batch ---- *)

let parse_addr s =
  match Netcore.Server.addr_of_string s with
  | Ok a -> a
  | Error m -> Confmask.Batch.input_error "%s" m

let batch nets in_dirs k_rs k_hs out format seed noise resume limit cache_dir
    no_cache jobs server tenant trace metrics_out =
  guard @@ fun () ->
  set_jobs jobs;
  setup_telemetry ~trace ~metrics_out ~selfcheck:false;
  if nets = [] && in_dirs = [] then
    Confmask.Batch.input_error "one of --nets or --in-dirs is required";
  let job_list =
    Confmask.Batch.grid_jobs ~seed ~noise ~nets ~k_rs ~k_hs ()
    @ Confmask.Batch.dir_jobs ~seed ~noise ~dirs:in_dirs ~k_rs ~k_hs ()
  in
  let server = Option.map parse_addr server in
  let cache =
    (* In client mode the daemon's resident cache does the caching. *)
    if no_cache || server <> None then None
    else
      Some
        (Routing.Engine.open_cache
           (Option.value cache_dir ~default:(Filename.concat out "cache")))
  in
  let o =
    Confmask.Batch.run ?cache ?server ?tenant ~resume ?limit ~format ~out
      job_list
  in
  emit_telemetry ~trace ~metrics_out;
  Printf.printf "jobs: %d ok (%d reused), %d errors, %d pending\nmanifest: %s\n"
    o.ok o.reused o.errors o.pending
    (Confmask.Batch.manifest_path out);
  o.exit_code

let nets_arg =
  Arg.(value & opt (list string) [] & info [ "nets" ] ~docv:"IDS"
         ~doc:"Comma-separated evaluation networks (A-H, CCNP, or labels) to \
               put on the grid.")

let in_dirs_arg =
  Arg.(value & opt (list string) [] & info [ "in-dirs" ] ~docv:"DIRS"
         ~doc:"Comma-separated directories of .cfg files to put on the grid.")

let krs_arg =
  Arg.(value & opt (list int) [ 6 ] & info [ "kr" ] ~docv:"KS"
         ~doc:"Comma-separated topology anonymity parameters of the grid.")

let khs_arg =
  Arg.(value & opt (list int) [ 2 ] & info [ "kh" ] ~docv:"KS"
         ~doc:"Comma-separated route anonymity parameters of the grid.")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Skip jobs whose result.json already reports success, reusing \
               their records verbatim; failed jobs are retried.")

let limit_arg =
  Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
         ~doc:"Execute at most $(docv) jobs this run (reused jobs are free); \
               the rest are recorded as pending. Deterministic way to \
               interrupt and later $(b,--resume) a batch.")

let batch_cache_arg =
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR"
         ~doc:"Persistent simulation cache shared by all jobs (default: \
               $(b,OUT)/cache).")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Disable the persistent simulation cache (force cold runs).")

let server_arg =
  Arg.(value & opt (some string) None & info [ "server" ] ~docv:"ADDR"
         ~doc:"Run as a client of a live $(b,confmask serve) daemon at \
               $(docv) ('unix:PATH', 'tcp:HOST:PORT', or a bare port): each \
               job becomes one request, the daemon executes it with its \
               resident caches and writes the per-job outputs, and the \
               manifest is assembled locally. Queue-full rejections are \
               retried with backoff.")

let batch_tenant_arg =
  Arg.(value & opt (some string) None & info [ "tenant" ] ~docv:"NAME"
         ~doc:"With $(b,--server): scrub PII under the daemon-configured key \
               of tenant $(docv).")

let batch_cmd =
  let info =
    Cmd.info "batch"
      ~doc:"Run an anonymization grid (networks x kr x kh), sharded across \
            the worker pool, with per-job fault isolation, a JSON results \
            manifest and resumable progress"
  in
  Cmd.v info
    Term.(const batch $ nets_arg $ in_dirs_arg $ krs_arg $ khs_arg $ out_arg
          $ format_arg $ seed_arg $ noise_arg $ resume_arg $ limit_arg
          $ batch_cache_arg $ no_cache_arg $ jobs_arg $ server_arg
          $ batch_tenant_arg $ trace_arg $ metrics_out_arg)

(* ---- serve ---- *)

let parse_tenant s =
  match String.index_opt s '=' with
  | Some i -> (
      let name = String.sub s 0 i in
      let key = String.sub s (i + 1) (String.length s - i - 1) in
      if name = "" || key = "" then
        Confmask.Batch.input_error "bad --tenant '%s' (want NAME=KEY)" s
      else (name, parse_key key))
  | None -> Confmask.Batch.input_error "bad --tenant '%s' (want NAME=KEY)" s

let serve listen queue_cap workers cache_dir jobs tenants trace =
  guard @@ fun () ->
  set_jobs jobs;
  let addr = parse_addr listen in
  let tenants = List.map parse_tenant tenants in
  let cache = Option.map Routing.Engine.open_cache cache_dir in
  let t =
    Confmask.Serve.create
      { Confmask.Serve.addr; queue_cap; workers; cache; tenants }
  in
  (* initiate_shutdown only flips an atomic, so it is safe here. *)
  let stop _ = Netcore.Server.initiate_shutdown t in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Printf.printf
    "confmask serve: listening on %s (queue %d, workers %d, cache %s)\n%!"
    (Netcore.Server.addr_to_string addr)
    queue_cap workers
    (Option.value cache_dir ~default:"off");
  Netcore.Server.run t;
  if trace then Netcore.Telemetry.pp_report Format.err_formatter ();
  Printf.printf "confmask serve: drained, exiting\n%!";
  0

let listen_arg =
  Arg.(value & opt string "unix:confmask.sock"
       & info [ "listen" ] ~docv:"ADDR"
           ~doc:"Address to serve on: 'unix:PATH', 'tcp:HOST:PORT', or a bare \
                 port number (TCP on 127.0.0.1).")

let queue_arg =
  Arg.(value & opt int Confmask.Serve.default_queue_cap
       & info [ "queue" ] ~docv:"N"
           ~doc:"Admission-control bound: requests beyond $(docv) already \
                 queued are rejected immediately with a 'queue_full' error.")

let workers_arg =
  Arg.(value & opt int Confmask.Serve.default_workers
       & info [ "workers" ] ~docv:"N"
           ~doc:"Concurrent request executors. Each job parallelizes its \
                 simulations internally across the domain pool, so 1 is \
                 usually right; raise it to overlap small jobs.")

let tenants_arg =
  Arg.(value & opt_all string [] & info [ "tenant" ] ~docv:"NAME=KEY"
         ~doc:"Register a tenant whose requests scrub PII under key \
               $(i,KEY) — a full 64-bit hex key ('0x...'; recommended) or \
               a legacy small decimal int (repeatable). Requests naming an \
               unregistered tenant are rejected.")

let serve_cmd =
  let info =
    Cmd.info "serve"
      ~doc:"Run the resident anonymization daemon: the worker pool, compiled \
            networks and the persistent simulation cache stay warm across \
            requests arriving as JSON lines over a Unix or TCP socket, with \
            a bounded queue, typed overload rejections and graceful \
            drain-on-shutdown"
  in
  Cmd.v info
    Term.(const serve $ listen_arg $ queue_arg $ workers_arg $ cache_arg
          $ jobs_arg $ tenants_arg $ trace_arg)

(* ---- call ---- *)

let call connect request =
  guard @@ fun () ->
  let addr = parse_addr connect in
  let req =
    match request with
    | Some r -> r
    | None -> ( try input_line stdin with End_of_file -> "")
  in
  match Netcore.Server.request addr req with
  | exception (Unix.Unix_error _ | Sys_error _ | End_of_file) ->
      Confmask.Batch.input_error "no confmask serve daemon reachable at %s"
        (Netcore.Server.addr_to_string addr)
  | resp ->
      print_endline resp;
      let ok =
        match Netcore.Json.parse resp with
        | Ok j -> Option.bind (Netcore.Json.member "ok" j) Netcore.Json.bool
                  = Some true
        | Error _ -> false
      in
      if ok then 0 else 1

let connect_arg =
  Arg.(value & opt string "unix:confmask.sock"
       & info [ "connect" ] ~docv:"ADDR"
           ~doc:"Daemon address: 'unix:PATH', 'tcp:HOST:PORT', or a bare \
                 port number (TCP on 127.0.0.1).")

let request_arg =
  Arg.(value & pos 0 (some string) None
       & info [] ~docv:"REQUEST"
           ~doc:"One JSON request line, e.g. '{\"op\": \"stats\"}' (default: \
                 read one line from stdin).")

let call_cmd =
  let info =
    Cmd.info "call"
      ~doc:"Send one JSON request line to a running confmask serve daemon \
            and print the response line (exit 0 when the response reports \
            \\\"ok\\\": true, 1 otherwise)"
  in
  Cmd.v info Term.(const call $ connect_arg $ request_arg)

let () =
  let info =
    Cmd.info "confmask" ~version:"1.0.0"
      ~doc:"Privacy-preserving network configuration sharing via anonymization"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ generate_cmd; anonymize_cmd; batch_cmd; serve_cmd; call_cmd;
            simulate_cmd; metrics_cmd; verify_cmd; diff_cmd; deanon_cmd;
            redteam_cmd ]))
