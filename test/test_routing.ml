(* Tests of the control-plane simulator against the paper's running
   examples: the §3.2 four-router OSPF network (including the strawman
   fake-edge behaviors the anonymizer relies on), RIP ECMP, and a small
   BGP+OSPF multi-AS network. *)

open Routing

let check = Alcotest.check
let path_t = Alcotest.(list string)
let paths_t = Alcotest.(list path_t)

let config lines = Configlang.Parser.parse_exn (String.concat "\n" lines)

(* ---- §3.2 example: h1 - r1 - r3 - r2 - r4 - h4, low costs on r1-r3-r2 ---- *)

let r1 ?(fake = []) () =
  config
    ([
       "hostname r1";
       "interface Eth0";
       " ip address 10.0.13.1 255.255.255.0";
       " ip ospf cost 1";
       "!";
       "interface Eth1";
       " ip address 10.1.1.1 255.255.255.0";
       "!";
     ]
    @ fake
    @ [ "router ospf 1"; " network 10.0.0.0 0.255.255.255 area 0";
        " network 100.64.0.0 0.63.255.255 area 0" ])

let r3 =
  config
    [
      "hostname r3";
      "interface Eth0";
      " ip address 10.0.13.3 255.255.255.0";
      " ip ospf cost 1";
      "!";
      "interface Eth1";
      " ip address 10.0.23.3 255.255.255.0";
      " ip ospf cost 1";
      "!";
      "router ospf 1";
      " network 10.0.0.0 0.255.255.255 area 0";
    ]

let r2 =
  config
    [
      "hostname r2";
      "interface Eth0";
      " ip address 10.0.23.2 255.255.255.0";
      " ip ospf cost 1";
      "!";
      "interface Eth1";
      " ip address 10.0.24.2 255.255.255.0";
      "!";
      "interface Eth2";
      " ip address 10.2.2.1 255.255.255.0";
      "!";
      "router ospf 1";
      " network 10.0.0.0 0.255.255.255 area 0";
    ]

let r4 ?(fake = []) () =
  config
    ([
       "hostname r4";
       "interface Eth0";
       " ip address 10.0.24.4 255.255.255.0";
       "!";
       "interface Eth1";
       " ip address 10.4.4.1 255.255.255.0";
       "!";
     ]
    @ fake
    @ [ "router ospf 1"; " network 10.0.0.0 0.255.255.255 area 0";
        " network 100.64.0.0 0.63.255.255 area 0" ])

let host name addr gw =
  config
    [
      "hostname " ^ name;
      "interface eth0";
      Printf.sprintf " ip address %s 255.255.255.0" addr;
      "ip default-gateway " ^ gw;
    ]

let h1 = host "h1" "10.1.1.10" "10.1.1.1"
let h2 = host "h2" "10.2.2.10" "10.2.2.1"
let h4 = host "h4" "10.4.4.10" "10.4.4.1"

let example_net ?(r1_fake = []) ?(r4_fake = []) () =
  [ r1 ~fake:r1_fake (); r2; r3; r4 ~fake:r4_fake (); h1; h2; h4 ]

let fake_iface addr cost =
  [
    "interface Eth9";
    Printf.sprintf " ip address %s 255.255.255.0" addr;
    Printf.sprintf " ip ospf cost %d" cost;
    "!";
  ]

let test_ospf_original_paths () =
  let s = Simulate.run_exn (example_net ()) in
  let dp = Simulate.dataplane s in
  check paths_t "h1 -> h4 single path"
    [ [ "h1"; "r1"; "r3"; "r2"; "r4"; "h4" ] ]
    (Dataplane.paths dp ~src:"h1" ~dst:"h4");
  check paths_t "h4 -> h1 reverse"
    [ [ "h4"; "r4"; "r2"; "r3"; "r1"; "h1" ] ]
    (Dataplane.paths dp ~src:"h4" ~dst:"h1");
  check paths_t "h1 -> h2"
    [ [ "h1"; "r1"; "r3"; "r2"; "h2" ] ]
    (Dataplane.paths dp ~src:"h1" ~dst:"h2")

(* Strawman step 2(i): fake edge with default cost migrates the path. *)
let test_fake_edge_default_cost_migrates () =
  let nets =
    example_net
      ~r1_fake:(fake_iface "100.64.0.1" 10)
      ~r4_fake:(fake_iface "100.64.0.2" 10)
      ()
  in
  let s = Simulate.run_exn nets in
  let dp = Simulate.dataplane s in
  check paths_t "migrated to fake edge"
    [ [ "h1"; "r1"; "r4"; "h4" ] ]
    (Dataplane.paths dp ~src:"h1" ~dst:"h4")

(* Strawman step 2(ii): a huge cost keeps paths but carries no traffic. *)
let test_fake_edge_large_cost_preserves () =
  let nets =
    example_net
      ~r1_fake:(fake_iface "100.64.0.1" 1000)
      ~r4_fake:(fake_iface "100.64.0.2" 1000)
      ()
  in
  let s = Simulate.run_exn nets in
  let dp = Simulate.dataplane s in
  check paths_t "original path preserved"
    [ [ "h1"; "r1"; "r3"; "r2"; "r4"; "h4" ] ]
    (Dataplane.paths dp ~src:"h1" ~dst:"h4")

(* Strawman step 2(iii): matching min_cost creates ECMP over the fake edge. *)
let test_fake_edge_matched_cost_multipath () =
  let nets =
    example_net
      ~r1_fake:(fake_iface "100.64.0.1" 12)
      ~r4_fake:(fake_iface "100.64.0.2" 12)
      ()
  in
  let s = Simulate.run_exn nets in
  let dp = Simulate.dataplane s in
  check paths_t "traffic split across fake and real"
    [ [ "h1"; "r1"; "r3"; "r2"; "r4"; "h4" ]; [ "h1"; "r1"; "r4"; "h4" ] ]
    (List.sort compare (Dataplane.paths dp ~src:"h1" ~dst:"h4"))

(* ConfMask's fix: a distribute-list rejecting the equal-cost fake next hop
   restores the original forwarding exactly. *)
let test_filter_restores_equivalence () =
  let r1_fake =
    fake_iface "100.64.0.1" 12
    @ [
        "ip prefix-list FIX1 seq 5 deny 10.4.4.0/24";
        "ip prefix-list FIX1 seq 100 permit 0.0.0.0/0 le 32";
      ]
  in
  let r4_fake =
    fake_iface "100.64.0.2" 12
    @ [
        "ip prefix-list FIX4 seq 5 deny 10.1.1.0/24";
        "ip prefix-list FIX4 seq 100 permit 0.0.0.0/0 le 32";
      ]
  in
  (* Rebuild r1/r4 with the distribute-list bound inside the OSPF block. *)
  let patch c name =
    let open Configlang.Ast in
    match c.ospf with
    | Some o ->
        {
          c with
          ospf =
            Some
              {
                o with
                ospf_distribute_in = [ { dl_list = name; dl_iface = "Eth9" } ];
              };
        }
    | None -> c
  in
  let nets =
    List.map
      (fun c ->
        let open Configlang.Ast in
        if c.hostname = "r1" then patch c "FIX1"
        else if c.hostname = "r4" then patch c "FIX4"
        else c)
      (example_net ~r1_fake ~r4_fake ())
  in
  let s = Simulate.run_exn nets in
  let dp = Simulate.dataplane s in
  check paths_t "h1 -> h4 restored"
    [ [ "h1"; "r1"; "r3"; "r2"; "r4"; "h4" ] ]
    (Dataplane.paths dp ~src:"h1" ~dst:"h4");
  check paths_t "h4 -> h1 restored"
    [ [ "h4"; "r4"; "r2"; "r3"; "r1"; "h1" ] ]
    (Dataplane.paths dp ~src:"h4" ~dst:"h1");
  (* The baseline data plane is fully restored. *)
  let base = Simulate.run_exn (example_net ()) in
  let dp0 = Simulate.dataplane base in
  check Alcotest.bool "route equivalence" true
    (Dataplane.equal_on ~hosts:[ "h1"; "h2"; "h4" ] dp0 dp)

let test_min_cost () =
  let s = Simulate.run_exn (example_net ()) in
  let d = Ospf.min_cost s.net "r1" in
  check Alcotest.(option int) "min cost r1->r4" (Some 12)
    (Device.Smap.find_opt "r4" d);
  check Alcotest.(option int) "min cost r1->r3" (Some 1)
    (Device.Smap.find_opt "r3" d)

let test_topology_graphs () =
  let s = Simulate.run_exn (example_net ()) in
  let g = Device.router_graph s.net in
  check Alcotest.int "router nodes" 4 (Netcore.Graph.num_nodes g);
  check Alcotest.int "router edges" 3 (Netcore.Graph.num_edges g);
  let fg = Device.full_graph s.net in
  check Alcotest.int "full nodes" 7 (Netcore.Graph.num_nodes fg);
  check Alcotest.int "full edges" 6 (Netcore.Graph.num_edges fg)

let test_compile_errors () =
  let dup = [ r3; r3 ] in
  (match Device.compile dup with
  | Error m ->
      check Alcotest.bool "duplicate hostname" true
        (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected duplicate hostname error");
  let orphan = [ host "h9" "172.31.0.10" "172.31.0.1" ] in
  (match Device.compile orphan with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unattached host error");
  let undefined_filter =
    [
      config
        [
          "hostname rx";
          "interface Eth0";
          " ip address 10.0.0.1 255.255.255.0";
          "router ospf 1";
          " network 10.0.0.0 0.255.255.255 area 0";
          " distribute-list prefix NOPE in Eth0";
        ];
    ]
  in
  match Device.compile undefined_filter with
  | Error m -> check Alcotest.bool "undefined prefix list" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected undefined prefix-list error"

let test_no_route_dropped () =
  (* h4's prefix removed from OSPF: destination unreachable from h1. *)
  let r4_no_adv =
    config
      [
        "hostname r4";
        "interface Eth0";
        " ip address 10.0.24.4 255.255.255.0";
        "!";
        "interface Eth1";
        " ip address 172.20.4.1 255.255.255.0";
        "!";
        "router ospf 1";
        " network 10.0.0.0 0.255.255.255 area 0";
      ]
  in
  let h4' = host "h4" "172.20.4.10" "172.20.4.1" in
  let s = Simulate.run_exn [ r1 (); r2; r3; r4_no_adv; h1; h2; h4' ] in
  let dp = Simulate.dataplane s in
  let t = Hashtbl.find dp ("h1", "h4") in
  check paths_t "no delivery" [] t.delivered;
  check Alcotest.bool "dropped recorded" true (t.dropped <> [])

(* ---------------- RIP ---------------- *)

let rip_router name addrs =
  config
    ([ "hostname " ^ name ]
    @ List.concat_map
        (fun (i, addr) ->
          [
            Printf.sprintf "interface Eth%d" i;
            Printf.sprintf " ip address %s 255.255.255.0" addr;
            "!";
          ])
        (List.mapi (fun i a -> (i, a)) addrs)
    @ [ "router rip"; " network 10.0.0.0 0.255.255.255" ])

(* Square: q1 - q2 - q3 - q4 - q1, host a on q1, host c on q3. *)
let rip_net () =
  [
    rip_router "q1" [ "10.0.12.1"; "10.0.41.1"; "10.10.1.1" ];
    rip_router "q2" [ "10.0.12.2"; "10.0.23.2" ];
    rip_router "q3" [ "10.0.23.3"; "10.0.34.3"; "10.10.3.1" ];
    rip_router "q4" [ "10.0.34.4"; "10.0.41.4" ];
    host "ha" "10.10.1.10" "10.10.1.1";
    host "hc" "10.10.3.10" "10.10.3.1";
  ]

let test_rip_ecmp () =
  let s = Simulate.run_exn (rip_net ()) in
  let dp = Simulate.dataplane s in
  check paths_t "two equal-hop paths"
    [ [ "ha"; "q1"; "q2"; "q3"; "hc" ]; [ "ha"; "q1"; "q4"; "q3"; "hc" ] ]
    (List.sort compare (Dataplane.paths dp ~src:"ha" ~dst:"hc"))

let test_rip_filter () =
  let nets =
    List.map
      (fun c ->
        let open Configlang.Ast in
        if c.hostname <> "q1" then c
        else
          let c =
            add_prefix_list_rule c "NOQ2" Deny
              (Netcore.Prefix.of_string_exn "10.10.3.0/24")
          in
          let c =
            add_prefix_list_rule c "NOQ2" Permit
              (Netcore.Prefix.of_string_exn "0.0.0.0/0")
          in
          (* Fix the catch-all to cover all lengths. *)
          let prefix_lists =
            List.map
              (fun pl ->
                if pl.pl_name = "NOQ2" then
                  { pl with
                    pl_rules =
                      List.map
                        (fun r ->
                          if r.action = Permit then { r with le = Some 32 } else r)
                        pl.pl_rules }
                else pl)
              c.prefix_lists
          in
          let rip =
            Option.map
              (fun r ->
                { r with rip_distribute_in = [ { dl_list = "NOQ2"; dl_iface = "Eth0" } ] })
              c.rip
          in
          { c with prefix_lists; rip })
      (rip_net ())
  in
  let s = Simulate.run_exn nets in
  let dp = Simulate.dataplane s in
  check paths_t "filtered down to one path"
    [ [ "ha"; "q1"; "q4"; "q3"; "hc" ] ]
    (Dataplane.paths dp ~src:"ha" ~dst:"hc")

let test_parallel_links () =
  (* Two subnets between p1 and p2: the lower-cost one wins; equal costs
     give two adjacencies but a single next-hop router. *)
  let p1 =
    config
      [
        "hostname p1";
        "interface Eth0";
        " ip address 10.0.1.1 255.255.255.0";
        " ip ospf cost 5";
        "!";
        "interface Eth1";
        " ip address 10.0.2.1 255.255.255.0";
        "!";
        "interface Eth2";
        " ip address 10.10.1.1 255.255.255.0";
        "!";
        "router ospf 1";
        " network 10.0.0.0 0.255.255.255 area 0";
      ]
  in
  let p2 =
    config
      [
        "hostname p2";
        "interface Eth0";
        " ip address 10.0.1.2 255.255.255.0";
        " ip ospf cost 5";
        "!";
        "interface Eth1";
        " ip address 10.0.2.2 255.255.255.0";
        "!";
        "interface Eth2";
        " ip address 10.10.2.1 255.255.255.0";
        "!";
        "router ospf 1";
        " network 10.0.0.0 0.255.255.255 area 0";
      ]
  in
  let nets =
    [ p1; p2; host "ha" "10.10.1.10" "10.10.1.1"; host "hb" "10.10.2.10" "10.10.2.1" ]
  in
  let s = Simulate.run_exn nets in
  let fib = Device.Smap.find "p1" s.fibs in
  match Fib.lookup fib (Netcore.Ipv4.of_string_exn "10.10.2.10") with
  | Some r ->
      check Alcotest.(list string) "single next-hop router" [ "p2" ]
        (Fib.nexthop_names r);
      (* The cheap (cost 5) parallel link is chosen. *)
      check Alcotest.int "metric uses cheap link" (5 + 10) r.rt_metric
  | None -> Alcotest.fail "expected route"

let test_asymmetric_costs () =
  (* r1 -> r3 is cheap in one direction only: forward and reverse paths
     differ, which the per-direction min_cost must reflect. *)
  let mk name addr_cost_list host_subnet =
    config
      ([ "hostname " ^ name ]
      @ List.concat_map
          (fun (i, addr, cost) ->
            [
              Printf.sprintf "interface Eth%d" i;
              Printf.sprintf " ip address %s 255.255.255.0" addr;
            ]
            @ (match cost with
              | Some c -> [ Printf.sprintf " ip ospf cost %d" c ]
              | None -> [])
            @ [ "!" ])
          addr_cost_list
      @ (match host_subnet with
        | Some a ->
            [ "interface Eth9"; Printf.sprintf " ip address %s 255.255.255.0" a; "!" ]
        | None -> [])
      @ [ "router ospf 1"; " network 10.0.0.0 0.255.255.255 area 0" ])
  in
  let a1 = mk "a1" [ (0, "10.0.12.1", Some 1); (1, "10.0.13.1", Some 30) ] (Some "10.20.1.1") in
  let a2 = mk "a2" [ (0, "10.0.12.2", Some 1); (1, "10.0.23.2", Some 1) ] None in
  let a3 = mk "a3" [ (0, "10.0.13.3", Some 1); (1, "10.0.23.3", Some 1) ] (Some "10.20.3.1") in
  let nets =
    [ a1; a2; a3; host "hx" "10.20.1.10" "10.20.1.1"; host "hy" "10.20.3.10" "10.20.3.1" ]
  in
  let s = Simulate.run_exn nets in
  let d13 = Ospf.min_cost s.net "a1" in
  let d31 = Ospf.min_cost s.net "a3" in
  (* a1 -> a3: direct costs 30, via a2 costs 1 + 1 = 2. *)
  check Alcotest.(option int) "a1 -> a3" (Some 2) (Device.Smap.find_opt "a3" d13);
  (* a3 -> a1: direct costs 1 (a3's side), via a2 costs 1 + 1 = 2. *)
  check Alcotest.(option int) "a3 -> a1" (Some 1) (Device.Smap.find_opt "a1" d31);
  let dp = Simulate.dataplane s in
  check paths_t "forward path detours"
    [ [ "hx"; "a1"; "a2"; "a3"; "hy" ] ]
    (Dataplane.paths dp ~src:"hx" ~dst:"hy");
  check paths_t "reverse path direct"
    [ [ "hy"; "a3"; "a1"; "hx" ] ]
    (Dataplane.paths dp ~src:"hy" ~dst:"hx")

let test_static_route_overrides_igp () =
  (* r1 has a static route for h4's subnet via r4's direct... there is no
     direct link, so use the example net: static at r1 pointing h4 via r3
     is redundant; instead point h2's prefix via the r1-r3 neighbor and
     check AD 1 wins over OSPF and that forwarding follows it. *)
  let nets =
    List.map
      (fun c ->
        let open Configlang.Ast in
        if c.hostname <> "r1" then c
        else
          {
            c with
            statics =
              [
                {
                  st_prefix = Netcore.Prefix.of_string_exn "10.2.2.0/24";
                  st_next_hop = Netcore.Ipv4.of_string_exn "10.0.13.3";
                };
              ];
          })
      (example_net ())
  in
  let s = Simulate.run_exn nets in
  let fib = Device.Smap.find "r1" s.fibs in
  (match Fib.lookup fib (Netcore.Ipv4.of_string_exn "10.2.2.10") with
  | Some r -> check Alcotest.string "static wins" "static" (Fib.proto_to_string r.rt_proto)
  | None -> Alcotest.fail "expected a route");
  let dp = Simulate.dataplane s in
  check paths_t "forwarding unchanged (same next hop)"
    [ [ "h1"; "r1"; "r3"; "r2"; "h2" ] ]
    (Dataplane.paths dp ~src:"h1" ~dst:"h2")

let test_static_route_detour () =
  (* Pointing h4's prefix at the r1-r3 link is the OSPF path anyway; a
     static via a *fake-looking* neighbor must actually move traffic:
     give r2 a static for h1 via r4 (the wrong direction) and watch the
     detour... which loops, demonstrating that statics are honored over
     the IGP and that the walker reports the loop. *)
  let nets =
    List.map
      (fun c ->
        let open Configlang.Ast in
        if c.hostname <> "r2" then c
        else
          {
            c with
            statics =
              [
                {
                  st_prefix = Netcore.Prefix.of_string_exn "10.1.1.0/24";
                  st_next_hop = Netcore.Ipv4.of_string_exn "10.0.24.4";
                };
              ];
          })
      (example_net ())
  in
  let s = Simulate.run_exn nets in
  let t = Dataplane.traceroute s.net s.fibs ~src:"h4" ~dst:"h1" in
  check paths_t "no delivery" [] t.delivered;
  check Alcotest.bool "loop detected" true (t.looped <> [])

let test_static_requires_connected_nexthop () =
  (* A static whose next hop is not on any connected subnet is ignored. *)
  let nets =
    List.map
      (fun c ->
        let open Configlang.Ast in
        if c.hostname <> "r1" then c
        else
          {
            c with
            statics =
              [
                {
                  st_prefix = Netcore.Prefix.of_string_exn "10.2.2.0/24";
                  st_next_hop = Netcore.Ipv4.of_string_exn "172.31.0.1";
                };
              ];
          })
      (example_net ())
  in
  let s = Simulate.run_exn nets in
  let fib = Device.Smap.find "r1" s.fibs in
  match Fib.lookup fib (Netcore.Ipv4.of_string_exn "10.2.2.10") with
  | Some r -> check Alcotest.string "falls back to ospf" "ospf" (Fib.proto_to_string r.rt_proto)
  | None -> Alcotest.fail "expected a route"

(* ---------------- EIGRP ---------------- *)

let test_eigrp_delay_metric () =
  (* The eigrp_lab's direct e1-e5 link has delay 100, so the composite
     metric prefers the three-hop detour — a hop-count protocol would
     take the direct link. *)
  let s = Simulate.run_exn (Netgen.Emit.emit (Netgen.Smallnets.eigrp_lab ())) in
  let dp = Simulate.dataplane s in
  check paths_t "delay-based path"
    [ [ "he1"; "e1"; "e2"; "e3"; "e5"; "he5" ] ]
    (Dataplane.paths dp ~src:"he1" ~dst:"he5");
  (* Confirm the routes really are EIGRP ones with AD 90. *)
  let fib = Device.Smap.find "e1" s.fibs in
  match Fib.lookup fib (Netcore.Ipv4.of_string_exn "10.128.2.10") with
  | Some r ->
      check Alcotest.string "protocol" "eigrp" (Fib.proto_to_string r.rt_proto)
  | None -> Alcotest.fail "expected a route"

let test_eigrp_filter () =
  (* Denying he5's prefix on e1's detour interface forces the direct link
     despite its worse metric. *)
  let nets =
    List.map
      (fun c ->
        let open Configlang.Ast in
        if c.hostname <> "e1" then c
        else
          let c =
            Confmask.Edits.deny_on_iface c ~iface:"Eth0"
              (Netcore.Prefix.of_string_exn "10.128.2.0/24")
          in
          c)
      (Netgen.Emit.emit (Netgen.Smallnets.eigrp_lab ()))
  in
  let s = Simulate.run_exn nets in
  let dp = Simulate.dataplane s in
  check paths_t "rerouted to direct link"
    [ [ "he1"; "e1"; "e5"; "he5" ] ]
    (Dataplane.paths dp ~src:"he1" ~dst:"he5")

(* ---------------- BGP ---------------- *)

(* AS100 {ra1, ra2 + host ha}, AS200 {rb1 + host hb}, AS300 {rc1 + host hc}.
   eBGP triangle AS100-AS200-AS300 plus direct AS100-AS300 link. *)
let bgp_nets ?(ra1_extra_bgp = []) () =
  [
    config
      ([
         "hostname ra1";
         "interface Eth0";
         " ip address 10.0.12.1 255.255.255.0";
         "!";
         "interface Eth1";
         " ip address 172.16.12.1 255.255.255.0";
         "!";
         "interface Eth2";
         " ip address 172.16.13.1 255.255.255.0";
         "!";
         "router ospf 1";
         " network 10.0.0.0 0.255.255.255 area 0";
         "!";
         "router bgp 100";
         " neighbor 10.0.12.2 remote-as 100";
         " neighbor 172.16.12.2 remote-as 200";
         " neighbor 172.16.13.3 remote-as 300";
       ]
      @ ra1_extra_bgp);
    config
      [
        "hostname ra2";
        "interface Eth0";
        " ip address 10.0.12.2 255.255.255.0";
        "!";
        "interface Eth1";
        " ip address 10.1.1.1 255.255.255.0";
        "!";
        "router ospf 1";
        " network 10.0.0.0 0.255.255.255 area 0";
        "!";
        "router bgp 100";
        " network 10.1.1.0 mask 255.255.255.0";
        " neighbor 10.0.12.1 remote-as 100";
      ];
    config
      [
        "hostname rb1";
        "interface Eth0";
        " ip address 172.16.12.2 255.255.255.0";
        "!";
        "interface Eth1";
        " ip address 172.16.23.2 255.255.255.0";
        "!";
        "interface Eth2";
        " ip address 10.9.9.1 255.255.255.0";
        "!";
        "router bgp 200";
        " network 10.9.9.0 mask 255.255.255.0";
        " neighbor 172.16.12.1 remote-as 100";
        " neighbor 172.16.23.3 remote-as 300";
      ];
    config
      [
        "hostname rc1";
        "interface Eth0";
        " ip address 172.16.13.3 255.255.255.0";
        "!";
        "interface Eth1";
        " ip address 172.16.23.3 255.255.255.0";
        "!";
        "interface Eth2";
        " ip address 10.7.7.1 255.255.255.0";
        "!";
        "router bgp 300";
        " network 10.7.7.0 mask 255.255.255.0";
        " neighbor 172.16.13.1 remote-as 100";
        " neighbor 172.16.23.2 remote-as 200";
      ];
    host "ha" "10.1.1.10" "10.1.1.1";
    host "hb" "10.9.9.10" "10.9.9.1";
    host "hc" "10.7.7.10" "10.7.7.1";
  ]

let test_bgp_shortest_as_path () =
  let s = Simulate.run_exn (bgp_nets ()) in
  let dp = Simulate.dataplane s in
  check paths_t "direct AS path preferred"
    [ [ "ha"; "ra2"; "ra1"; "rc1"; "hc" ] ]
    (Dataplane.paths dp ~src:"ha" ~dst:"hc");
  check paths_t "ibgp + ebgp return path"
    [ [ "hc"; "rc1"; "ra1"; "ra2"; "ha" ] ]
    (Dataplane.paths dp ~src:"hc" ~dst:"ha")

let test_bgp_filter_reroutes () =
  (* ra1 rejects hc's prefix from rc1: traffic detours through AS200. *)
  let extra =
    [
      " neighbor 172.16.13.3 distribute-list NOHC in";
      "!";
      "ip prefix-list NOHC seq 5 deny 10.7.7.0/24";
      "ip prefix-list NOHC seq 100 permit 0.0.0.0/0 le 32";
    ]
  in
  let s = Simulate.run_exn (bgp_nets ~ra1_extra_bgp:extra ()) in
  let dp = Simulate.dataplane s in
  check paths_t "detour via AS200"
    [ [ "ha"; "ra2"; "ra1"; "rb1"; "rc1"; "hc" ] ]
    (Dataplane.paths dp ~src:"ha" ~dst:"hc")

let test_bgp_local_preference () =
  (* ra1 prefers routes learned from AS200 (local-pref 200), overriding
     the shorter direct AS path to AS300. *)
  let extra =
    [
      " neighbor 172.16.12.2 route-map PREF200 in";
      "!";
      "route-map PREF200 permit 10";
      " set local-preference 200";
    ]
  in
  let s = Simulate.run_exn (bgp_nets ~ra1_extra_bgp:extra ()) in
  let dp = Simulate.dataplane s in
  check paths_t "local-pref overrides AS-path length"
    [ [ "ha"; "ra2"; "ra1"; "rb1"; "rc1"; "hc" ] ]
    (Dataplane.paths dp ~src:"ha" ~dst:"hc")

let test_bgp_route_map_deny () =
  (* A deny route-map on the direct AS300 session behaves like a filter:
     traffic detours via AS200. *)
  let extra =
    [
      " neighbor 172.16.13.3 route-map BLOCK in";
      "!";
      "route-map BLOCK deny 10";
    ]
  in
  let s = Simulate.run_exn (bgp_nets ~ra1_extra_bgp:extra ()) in
  let dp = Simulate.dataplane s in
  check paths_t "deny clause rejects the session's routes"
    [ [ "ha"; "ra2"; "ra1"; "rb1"; "rc1"; "hc" ] ]
    (Dataplane.paths dp ~src:"ha" ~dst:"hc")

let test_bgp_sessions () =
  let s = Simulate.run_exn (bgp_nets ()) in
  let sess = Bgp.sessions s.net in
  (* 4 bidirectional sessions = 8 directed ones. *)
  check Alcotest.int "directed sessions" 8 (List.length sess);
  let ebgp = List.filter (fun x -> x.Bgp.s_ebgp) sess in
  check Alcotest.int "ebgp directed sessions" 6 (List.length ebgp)

let test_loop_detection () =
  (* Hand-built FIBs that forward h1's return traffic in a circle: the
     walker must report the loop rather than diverge. *)
  let s = Simulate.run_exn (example_net ()) in
  let open Netcore in
  let dst = Prefix.of_string_exn "10.4.4.0/24" in
  let route nh =
    {
      Fib.rt_prefix = dst;
      rt_proto = Fib.Ospf;
      rt_metric = 1;
      rt_nexthops = [ { Fib.nh_router = nh; nh_iface = "Eth0" } ];
    }
  in
  let fibs =
    Device.Smap.empty
    |> Device.Smap.add "r1" (Fib.add_candidate (route "r3") Fib.empty)
    |> Device.Smap.add "r3" (Fib.add_candidate (route "r2") Fib.empty)
    |> Device.Smap.add "r2" (Fib.add_candidate (route "r3") Fib.empty)
  in
  let t = Dataplane.traceroute s.net fibs ~src:"h1" ~dst:"h4" in
  check paths_t "no delivery" [] t.delivered;
  check Alcotest.bool "loop recorded" true (t.looped <> []);
  (match t.looped with
  | walk :: _ ->
      check Alcotest.string "loop revisits r3" "r3"
        (List.nth walk (List.length walk - 1))
  | [] -> ())

let test_truncation () =
  (* A tiny path cap must mark the trace as truncated on an ECMP fan. *)
  let s = Simulate.run_exn (Netgen.Nets.configs (Netgen.Nets.find "G")) in
  let t =
    Dataplane.traceroute ~max_paths:2 s.net s.fibs ~src:"h-edge0-0-0"
      ~dst:"h-edge1-0-0"
  in
  check Alcotest.bool "truncated" true t.truncated;
  check Alcotest.bool "capped" true (List.length t.delivered <= 2)

let test_fib_lpm () =
  let open Netcore in
  let fib =
    Fib.empty
    |> Fib.add_candidate
         {
           Fib.rt_prefix = Prefix.of_string_exn "10.0.0.0/8";
           rt_proto = Fib.Ospf;
           rt_metric = 5;
           rt_nexthops = [ { Fib.nh_router = "a"; nh_iface = "e0" } ];
         }
    |> Fib.add_candidate
         {
           Fib.rt_prefix = Prefix.of_string_exn "10.4.0.0/16";
           rt_proto = Fib.Ospf;
           rt_metric = 9;
           rt_nexthops = [ { Fib.nh_router = "b"; nh_iface = "e1" } ];
         }
  in
  (match Fib.lookup fib (Ipv4.of_string_exn "10.4.4.4") with
  | Some r -> check Alcotest.(list string) "longest match" [ "b" ] (Fib.nexthop_names r)
  | None -> Alcotest.fail "expected route");
  match Fib.lookup fib (Ipv4.of_string_exn "10.5.0.1") with
  | Some r -> check Alcotest.(list string) "short match" [ "a" ] (Fib.nexthop_names r)
  | None -> Alcotest.fail "expected route"

let test_fib_admin_distance () =
  let open Netcore in
  let p = Prefix.of_string_exn "10.4.0.0/16" in
  let route proto metric nh =
    {
      Fib.rt_prefix = p;
      rt_proto = proto;
      rt_metric = metric;
      rt_nexthops = [ { Fib.nh_router = nh; nh_iface = "e" } ];
    }
  in
  let fib =
    Fib.empty
    |> Fib.add_candidate (route Fib.Rip 3 "via-rip")
    |> Fib.add_candidate (route Fib.Ospf 20 "via-ospf")
    |> Fib.add_candidate (route Fib.Ibgp 1 "via-ibgp")
  in
  (match Fib.find fib p with
  | Some r ->
      check Alcotest.(list string) "ospf beats rip and ibgp" [ "via-ospf" ]
        (Fib.nexthop_names r)
  | None -> Alcotest.fail "route missing");
  (* Equal proto+metric merges ECMP next hops. *)
  let fib = Fib.add_candidate (route Fib.Ospf 20 "via-ospf2") fib in
  match Fib.find fib p with
  | Some r ->
      check Alcotest.(list string) "ecmp merge" [ "via-ospf"; "via-ospf2" ]
        (Fib.nexthop_names r)
  | None -> Alcotest.fail "route missing"

(* ---------------- qcheck: simulator soundness on random nets ---------------- *)

let gen_wan =
  QCheck2.Gen.(
    map2
      (fun (n, extra) seed ->
        Netgen.Wan.waxman ~seed ~name:"rq" ~routers:n
          ~router_links:(n - 1 + extra)
          ~hosts:(min n 5))
      (pair (int_range 4 12) (int_range 0 8))
      (int_bound 100000))

let prop_metric_decreases =
  (* Bellman consistency: along every next hop of an IGP route, the
     neighbor's metric for the same prefix is strictly smaller (or the
     prefix is connected there). A violation would mean the shortest-path
     engines install inconsistent FIBs — the root of forwarding loops. *)
  QCheck2.Test.make ~name:"IGP metrics strictly decrease along next hops"
    ~count:30 gen_wan (fun spec ->
      let snap = Simulate.run_exn (Netgen.Emit.emit spec) in
      Device.Smap.for_all
        (fun _ fib ->
          List.for_all
            (fun (r : Fib.route) ->
              r.rt_proto = Fib.Connected
              || List.for_all
                   (fun (nh : Fib.nexthop) ->
                     match Device.Smap.find_opt nh.nh_router snap.fibs with
                     | None -> false
                     | Some nfib -> (
                         match Fib.find nfib r.rt_prefix with
                         | Some nr ->
                             nr.rt_proto = Fib.Connected
                             || nr.rt_metric < r.rt_metric
                         | None -> false))
                   r.rt_nexthops)
            (Fib.routes fib))
        snap.fibs)

let prop_all_pairs_routable =
  QCheck2.Test.make ~name:"random WANs are fully routable" ~count:30 gen_wan
    (fun spec ->
      let snap = Simulate.run_exn (Netgen.Emit.emit spec) in
      let dp = Simulate.dataplane snap in
      let hosts = List.map fst (Device.Smap.bindings snap.net.hosts) in
      List.for_all
        (fun s ->
          List.for_all
            (fun d ->
              String.equal s d
              ||
              let t = Hashtbl.find dp (s, d) in
              t.Dataplane.delivered <> [] && t.looped = [])
            hosts)
        hosts)

(* A 32-bit address with live high bits (int_bound alone never sets them). *)
let addr_gen =
  QCheck2.Gen.(
    map2 (fun hi lo -> (hi lsl 16) lxor lo) (int_bound 0xFFFF) (int_bound 0xFFFF))

let prop_lpm_equiv =
  (* The compiled trie must answer exactly like the 33-probe map lookup,
     including on prefix network addresses (match boundaries) and the
     empty-FIB / default-route corners small_list covers. *)
  QCheck2.Test.make ~name:"LPM trie = 33-probe lookup" ~count:300
    QCheck2.Gen.(
      pair (small_list (pair addr_gen (int_bound 32))) (small_list addr_gen))
    (fun (pres, addrs) ->
      let fib =
        List.fold_left
          (fun fib (a, len) ->
            let p = Netcore.Prefix.v (Netcore.Ipv4.of_int a) len in
            Fib.add_candidate
              {
                Fib.rt_prefix = p;
                rt_proto = Fib.Ospf;
                rt_metric = len;
                rt_nexthops =
                  [ { Fib.nh_router = Netcore.Prefix.to_string p; nh_iface = "e0" } ];
              }
              fib)
          Fib.empty pres
      in
      let lpm = Fib.compile fib in
      let probes =
        List.map (fun a -> Netcore.Ipv4.of_int a) addrs
        @ List.concat_map
            (fun (a, len) ->
              let p = Netcore.Prefix.v (Netcore.Ipv4.of_int a) len in
              [ Netcore.Ipv4.of_int a; Netcore.Prefix.network p ])
            pres
      in
      List.for_all (fun a -> Fib.lookup fib a = Fib.lookup_lpm lpm a) probes)

let prop_csr_dijkstra_equiv =
  (* The array Dijkstra on an interned CSR graph must produce the same
     distance map as the legacy persistent-queue Dijkstra over string
     maps, on arbitrary weighted digraphs and multi-source seeds. *)
  QCheck2.Test.make ~name:"compiled Dijkstra = Smap Dijkstra" ~count:300
    QCheck2.Gen.(
      pair
        (small_list (pair (pair (int_bound 15) (int_bound 15)) (int_range 1 20)))
        (small_list (pair (int_bound 15) (int_bound 10))))
    (fun (edges, seeds) ->
      let name i = "r" ^ string_of_int i in
      let adj =
        List.fold_left
          (fun m ((u, v), c) ->
            Device.Smap.update (name u)
              (function
                | None -> Some [ (name v, c) ] | Some l -> Some ((name v, c) :: l))
              m)
          Device.Smap.empty edges
      in
      let reference =
        let rec loop dist pq =
          match Netcore.Pqueue.pop pq with
          | None -> dist
          | Some (d, v, pq) ->
              if Device.Smap.mem v dist then loop dist pq
              else
                let dist = Device.Smap.add v d dist in
                let pq =
                  List.fold_left
                    (fun pq (u, c) ->
                      if Device.Smap.mem u dist then pq
                      else Netcore.Pqueue.insert (d + c) u pq)
                    pq
                    (Option.value ~default:[] (Device.Smap.find_opt v adj))
                in
                loop dist pq
        in
        loop Device.Smap.empty
          (List.fold_left
             (fun pq (s, c) -> Netcore.Pqueue.insert c (name s) pq)
             Netcore.Pqueue.empty seeds)
      in
      let it = Netcore.Interner.create () in
      let id i = Netcore.Interner.intern it (name i) in
      let iedges = List.map (fun ((u, v), c) -> (id u, id v, c)) edges in
      let iseeds = List.map (fun (s, c) -> (id s, c)) seeds in
      let csr = Compiled.Csr.of_edges ~n:(Netcore.Interner.length it) iedges in
      let dist = Compiled.Csr.dijkstra csr ~seeds:iseeds in
      let from_array = ref Device.Smap.empty in
      Netcore.Interner.iter it (fun i n ->
          if dist.(i) < max_int then
            from_array := Device.Smap.add n dist.(i) !from_array);
      Device.Smap.equal Int.equal reference !from_array)

let prop_kernels_equiv =
  QCheck2.Test.make ~name:"legacy and compiled kernels agree end to end"
    ~count:20 gen_wan (fun spec ->
      let configs = Netgen.Emit.emit spec in
      let sc = Compiled.with_kernels `Compiled (fun () -> Simulate.run_exn configs) in
      let sl = Compiled.with_kernels `Legacy (fun () -> Simulate.run_exn configs) in
      Device.Smap.equal ( = ) sc.fibs sl.fibs
      &&
      let dc = Compiled.with_kernels `Compiled (fun () -> Simulate.dataplane sc) in
      let dl = Compiled.with_kernels `Legacy (fun () -> Simulate.dataplane sl) in
      Hashtbl.length dc = Hashtbl.length dl
      && Hashtbl.fold
           (fun k (t : Dataplane.trace) acc ->
             acc && Hashtbl.find_opt dl k = Some t)
           dc true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_metric_decreases;
      prop_all_pairs_routable;
      prop_lpm_equiv;
      prop_csr_dijkstra_equiv;
      prop_kernels_equiv;
    ]

(* ---------------- worker pool ---------------- *)

let test_pool_map_matches () =
  let pool = Netcore.Pool.create ~jobs:4 () in
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  check Alcotest.(list int) "order and values" (List.map f xs)
    (Netcore.Pool.map pool f xs);
  (* Nested maps must not deadlock the helping scheduler. *)
  let ys = List.init 10 Fun.id in
  check
    Alcotest.(list (list int))
    "nested"
    (List.map (fun x -> List.map (fun y -> x + y) ys) ys)
    (Netcore.Pool.map pool (fun x -> Netcore.Pool.map pool (fun y -> x + y) ys) ys);
  Netcore.Pool.shutdown pool

let test_pool_sequential () =
  let pool = Netcore.Pool.create ~jobs:1 () in
  let xs = List.init 10 Fun.id in
  check Alcotest.(list int) "jobs=1" (List.map succ xs)
    (Netcore.Pool.map pool succ xs);
  Netcore.Pool.shutdown pool

(* Two domains racing the lazy init must observe the same shared pool —
   each used to build its own, one leaking its workers forever. *)
let test_pool_default_race () =
  Netcore.Pool.set_default_jobs 2;
  let spawners =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Netcore.Pool.default ()))
  in
  let pools = List.map Domain.join spawners in
  let p0 = Netcore.Pool.default () in
  List.iteri
    (fun i p ->
      if not (p == p0) then
        Alcotest.failf "domain %d saw a different shared pool" i)
    pools;
  (* Resizing while a map is in flight on the displaced pool: the batch
     must complete normally. *)
  let xs = List.init 200 Fun.id in
  let f x = List.fold_left ( + ) x (List.init 500 Fun.id) in
  let d = Domain.spawn (fun () -> Netcore.Pool.map p0 f xs) in
  Netcore.Pool.set_default_jobs 2;
  check Alcotest.(list int) "in-flight map completes" (List.map f xs)
    (Domain.join d);
  if Netcore.Pool.default () == p0 then
    Alcotest.fail "set_default_jobs did not replace the shared pool"

exception Boom

let test_pool_exception () =
  let pool = Netcore.Pool.create ~jobs:4 () in
  (try
     ignore
       (Netcore.Pool.map pool
          (fun x -> if x = 37 then raise Boom else x)
          (List.init 64 Fun.id));
     Alcotest.fail "expected Boom"
   with Boom -> ());
  (* The pool survives a batch that raised and remains usable. *)
  check Alcotest.(list int) "pool alive" [ 2; 3 ]
    (Netcore.Pool.map pool succ [ 1; 2 ]);
  Netcore.Pool.shutdown pool

(* ---------------- engine: incremental == from-scratch ---------------- *)

(* One step of the random edit walk the engine tests drive: deny filters
   (the fixpoints' edit), their rollback, and structural interface
   additions (fake hosts' edit). Returns the edited config list; may
   return the input unchanged when no edit point exists. *)
let random_edit ~rng ~denies ~structurals (net : Device.network) configs =
  let hps = List.map fst (Simulate.host_prefixes net) in
  let adj_routers =
    List.filter (fun (_, adjs) -> adjs <> []) (Device.Smap.bindings net.adjs)
  in
  let kind =
    let k = Netcore.Rng.int rng 10 in
    if k < 6 then `Deny
    else if k < 8 then if !denies = [] then `Deny else `Undeny
    else if !structurals >= 2 then `Deny
    else `Structural
  in
  match kind with
  | `Deny -> (
      match (adj_routers, hps) with
      | [], _ | _, [] -> configs
      | _ -> (
          let r, adjs = Netcore.Rng.pick rng adj_routers in
          let a = Netcore.Rng.pick rng adjs in
          let hp = Netcore.Rng.pick rng hps in
          match Confmask.Attach.point net r a.Device.a_to with
          | None -> configs
          | Some at ->
              denies := (r, at, hp) :: !denies;
              Confmask.Edits.update configs r (fun c ->
                  Confmask.Attach.deny_at c at hp)))
  | `Undeny ->
      let ((r, at, hp) as d) = Netcore.Rng.pick rng !denies in
      denies := List.filter (fun x -> x <> d) !denies;
      Confmask.Edits.update configs r (fun c ->
          Confmask.Attach.undeny_at c at hp)
  | `Structural ->
      incr structurals;
      let routers = List.map fst (Device.Smap.bindings net.routers) in
      let r = Netcore.Rng.pick rng routers in
      let alloc =
        Netcore.Prefix.alloc_create
          ~avoid:(Confmask.Edits.used_prefixes configs)
          ()
      in
      let subnet = Netcore.Prefix.alloc_fresh alloc ~len:24 in
      let addr = Netcore.Prefix.host subnet 1 in
      Confmask.Edits.update configs r (fun c ->
          let name = Confmask.Edits.fresh_iface_name c in
          let c =
            Confmask.Edits.add_interface c ~name ~addr ~plen:24
              ~desc:"prop-test" ()
          in
          Confmask.Edits.add_igp_network c subnet)

(* Drive the incremental engine through the random edit walk, asserting
   after every step that its FIBs equal a from-scratch [Simulate.run]. *)
let engine_equiv_case ~seed (entry : Netgen.Nets.entry) () =
  let rng = Netcore.Rng.create seed in
  let configs = ref (Netgen.Nets.configs entry) in
  let eng = ref (Engine.of_configs_exn !configs) in
  let denies = ref [] in
  let structurals = ref 0 in
  let agree step =
    let fresh = Simulate.run_exn !configs in
    if not (Device.Smap.equal ( = ) (Engine.fibs !eng) fresh.fibs) then
      Alcotest.failf "net %s seed %d: FIBs diverge from scratch after edit %d"
        entry.id seed step
  in
  agree 0;
  for step = 1 to 8 do
    configs :=
      random_edit ~rng ~denies ~structurals (Engine.network !eng) !configs;
    eng := Engine.apply_edit_exn !eng !configs;
    agree step
  done

(* A no-op edit must take the BGP-skip gate (the fingerprint-only test),
   not fall through to a recompute, and must leave the FIBs intact. Runs
   with the shadow self-check on, so the skipped result is also verified
   against a from-scratch simulation. *)
let test_engine_bgp_skip () =
  let configs = Netgen.Nets.configs (Netgen.Nets.find "A") in
  let skip = Netcore.Telemetry.counter "engine.bgp_skip" in
  let compute = Netcore.Telemetry.counter "engine.bgp_compute" in
  Netcore.Telemetry.set_enabled true;
  Netcore.Telemetry.set_selfcheck 1;
  Fun.protect ~finally:(fun () ->
      Netcore.Telemetry.set_enabled false;
      Netcore.Telemetry.set_selfcheck 0)
  @@ fun () ->
  let eng = Engine.of_configs_exn configs in
  let s0 = Netcore.Telemetry.value skip in
  let c0 = Netcore.Telemetry.value compute in
  let eng' = Engine.apply_edit_exn eng configs in
  check Alcotest.int "no-op edit skips the BGP fixpoint" (s0 + 1)
    (Netcore.Telemetry.value skip);
  check Alcotest.int "no BGP recompute on a no-op edit" c0
    (Netcore.Telemetry.value compute);
  check Alcotest.bool "FIBs preserved" true
    (Device.Smap.equal ( = ) (Engine.fibs eng) (Engine.fibs eng'))

(* ---------------- engine: persistent disk cache ---------------- *)

let temp_cache_dir () =
  let f = Filename.temp_file "confmask-engine-cache" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

(* Record the random edit walk as a list of config states (initial state
   first), so the exact same workload can be replayed under different
   cache regimes. *)
let record_walk ~seed ~steps (entry : Netgen.Nets.entry) =
  let rng = Netcore.Rng.create seed in
  let configs = ref (Netgen.Nets.configs entry) in
  let eng = ref (Engine.of_configs_exn !configs) in
  let denies = ref [] in
  let structurals = ref 0 in
  let states = ref [ !configs ] in
  for _ = 1 to steps do
    configs :=
      random_edit ~rng ~denies ~structurals (Engine.network !eng) !configs;
    eng := Engine.apply_edit_exn !eng !configs;
    states := !configs :: !states
  done;
  List.rev !states

let replay ?cache states =
  match states with
  | [] -> []
  | first :: rest ->
      let eng = ref (Engine.of_configs_exn ?cache first) in
      let fibs = ref [ Engine.fibs !eng ] in
      List.iter
        (fun cfgs ->
          eng := Engine.apply_edit_exn !eng cfgs;
          fibs := Engine.fibs !eng :: !fibs)
        rest;
      List.rev !fibs

let fibs_agree a b =
  List.length a = List.length b
  && List.for_all2 (Device.Smap.equal ( = )) a b

let test_engine_disk_cache_warm_equals_cold () =
  let states = record_walk ~seed:5 ~steps:6 (Netgen.Nets.find "A") in
  let dir = temp_cache_dir () in
  let cold = replay states in
  let warm1 = replay ~cache:(Engine.open_cache dir) states in
  check Alcotest.bool "populating run equals cold" true (fibs_agree cold warm1);
  (* A fresh handle on the now-populated directory stands in for a new
     process reusing the previous one's work. *)
  Netcore.Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Netcore.Telemetry.set_enabled false)
  @@ fun () ->
  let disk_counters =
    List.map Netcore.Telemetry.counter
      [ "engine.state_disk"; "engine.spf_disk"; "engine.dv_disk";
        "engine.bgp_disk" ]
  in
  let disk_hits () =
    List.fold_left (fun a c -> a + Netcore.Telemetry.value c) 0 disk_counters
  in
  let full = Netcore.Telemetry.counter "engine.spf_full" in
  let h0 = disk_hits () in
  let f0 = Netcore.Telemetry.value full in
  let warm2 = replay ~cache:(Engine.open_cache dir) states in
  check Alcotest.bool "warm run equals cold, bit for bit" true
    (fibs_agree cold warm2);
  check Alcotest.bool "warm run restored entries from disk" true
    (disk_hits () > h0);
  check Alcotest.int "warm run never ran a full SPF" f0
    (Netcore.Telemetry.value full)

let test_engine_disk_cache_corruption () =
  let states = record_walk ~seed:11 ~steps:4 (Netgen.Nets.find "CCNP") in
  let dir = temp_cache_dir () in
  let cold = replay states in
  let _populate = replay ~cache:(Engine.open_cache dir) states in
  (* Smash every stored entry; a poisoned cache must degrade to cold,
     never be trusted. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".v" then begin
        let oc = open_out_bin (Filename.concat dir f) in
        output_string oc "\x84\x95\xa6not-an-entry";
        close_out oc
      end)
    (Sys.readdir dir);
  let warm = replay ~cache:(Engine.open_cache dir) states in
  check Alcotest.bool "corrupted cache degrades to cold, same result" true
    (fibs_agree cold warm)

let prop_engine_disk_cache =
  QCheck2.Test.make
    ~name:"engine: warm disk-cache run = cold run, bit for bit" ~count:8
    QCheck2.Gen.(
      pair (int_bound 1000)
        (int_bound (List.length (Netgen.Nets.small ()) - 1)))
    (fun (seed, idx) ->
      let entry = List.nth (Netgen.Nets.small ()) idx in
      let states = record_walk ~seed ~steps:4 entry in
      let dir = temp_cache_dir () in
      let cold = replay states in
      let warm1 = replay ~cache:(Engine.open_cache dir) states in
      let warm2 = replay ~cache:(Engine.open_cache dir) states in
      fibs_agree cold warm1 && fibs_agree cold warm2)

let engine_suite =
  List.concat_map
    (fun (entry : Netgen.Nets.entry) ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "incremental = scratch (%s, seed %d)" entry.id seed)
            `Quick
            (engine_equiv_case ~seed entry))
        [ 7; 21 ])
    (Netgen.Nets.small ())

let () =
  Alcotest.run "routing"
    [
      ( "ospf",
        [
          Alcotest.test_case "original example paths" `Quick test_ospf_original_paths;
          Alcotest.test_case "fake edge default cost migrates" `Quick
            test_fake_edge_default_cost_migrates;
          Alcotest.test_case "fake edge large cost preserves" `Quick
            test_fake_edge_large_cost_preserves;
          Alcotest.test_case "fake edge matched cost splits" `Quick
            test_fake_edge_matched_cost_multipath;
          Alcotest.test_case "filter restores equivalence" `Quick
            test_filter_restores_equivalence;
          Alcotest.test_case "min_cost" `Quick test_min_cost;
          Alcotest.test_case "parallel links" `Quick test_parallel_links;
          Alcotest.test_case "asymmetric costs" `Quick test_asymmetric_costs;
        ] );
      ( "model",
        [
          Alcotest.test_case "topology graphs" `Quick test_topology_graphs;
          Alcotest.test_case "compile errors" `Quick test_compile_errors;
          Alcotest.test_case "unreachable destination drops" `Quick test_no_route_dropped;
        ] );
      ( "rip",
        [
          Alcotest.test_case "ecmp" `Quick test_rip_ecmp;
          Alcotest.test_case "filter" `Quick test_rip_filter;
        ] );
      ( "bgp",
        [
          Alcotest.test_case "shortest AS path" `Quick test_bgp_shortest_as_path;
          Alcotest.test_case "inbound filter reroutes" `Quick test_bgp_filter_reroutes;
          Alcotest.test_case "session establishment" `Quick test_bgp_sessions;
          Alcotest.test_case "local preference" `Quick test_bgp_local_preference;
          Alcotest.test_case "route-map deny" `Quick test_bgp_route_map_deny;
        ] );
      ( "fib",
        [
          Alcotest.test_case "longest prefix match" `Quick test_fib_lpm;
          Alcotest.test_case "admin distance and ecmp" `Quick test_fib_admin_distance;
        ] );
      ( "static",
        [
          Alcotest.test_case "overrides IGP by admin distance" `Quick
            test_static_route_overrides_igp;
          Alcotest.test_case "wrong static detours and loops" `Quick
            test_static_route_detour;
          Alcotest.test_case "unresolvable next hop ignored" `Quick
            test_static_requires_connected_nexthop;
        ] );
      ( "eigrp",
        [
          Alcotest.test_case "delay-based metric" `Quick test_eigrp_delay_metric;
          Alcotest.test_case "filter reroutes" `Quick test_eigrp_filter;
        ] );
      ( "dataplane",
        [
          Alcotest.test_case "loop detection" `Quick test_loop_detection;
          Alcotest.test_case "path cap truncation" `Quick test_truncation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map matches List.map" `Quick test_pool_map_matches;
          Alcotest.test_case "jobs=1 is sequential" `Quick test_pool_sequential;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "shared pool init race" `Quick test_pool_default_race;
        ] );
      ( "engine",
        engine_suite
        @ [
            Alcotest.test_case "no-op edit skips BGP" `Quick test_engine_bgp_skip;
            Alcotest.test_case "disk cache: warm equals cold" `Quick
              test_engine_disk_cache_warm_equals_cold;
            Alcotest.test_case "disk cache: corruption degrades to cold" `Quick
              test_engine_disk_cache_corruption;
          ] );
      ( "properties",
        qsuite @ [ QCheck_alcotest.to_alcotest prop_engine_disk_cache ] );
    ]
