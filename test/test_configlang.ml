open Netcore
open Configlang

let check = Alcotest.check
let pfx = Prefix.of_string_exn

let sample_router =
  String.concat "\n"
    [
      "hostname r1";
      "!";
      "interface Ethernet0/0";
      " description to-r2";
      " ip address 10.0.1.1 255.255.255.0";
      " ip ospf cost 5";
      "!";
      "interface Ethernet0/1";
      " ip address 10.0.2.1 255.255.255.252";
      " traffic-policy mark_high inbound";
      "!";
      "router ospf 1";
      " network 10.0.0.0 0.255.255.255 area 0";
      " distribute-list prefix DENY_H4 in Ethernet0/0";
      "!";
      "router bgp 100";
      " bgp router-id 1.1.1.1";
      " network 10.1.0.0 mask 255.255.0.0";
      " neighbor 10.0.2.2 remote-as 200";
      " neighbor 10.0.2.2 distribute-list RejPfxs in";
      "!";
      "ip prefix-list DENY_H4 seq 5 deny 10.4.4.0/24";
      "ip prefix-list DENY_H4 seq 100 permit 0.0.0.0/0 le 32";
      "ip prefix-list RejPfxs seq 5 deny 10.5.5.0/24";
      "ip prefix-list RejPfxs seq 100 permit 0.0.0.0/0 le 32";
      "!";
    ]

let sample_host =
  String.concat "\n"
    [
      "hostname h1";
      "!";
      "interface eth0";
      " ip address 10.1.1.10 255.255.255.0";
      "!";
      "ip default-gateway 10.1.1.1";
    ]

let test_parse_router () =
  let c = Parser.parse_exn sample_router in
  check Alcotest.string "hostname" "r1" c.hostname;
  check Alcotest.bool "router kind" true (c.kind = Ast.Router);
  check Alcotest.int "interfaces" 2 (List.length c.interfaces);
  let e0 = Option.get (Ast.find_interface c "Ethernet0/0") in
  check Alcotest.(option int) "cost" (Some 5) e0.if_cost;
  check Alcotest.(option string) "description" (Some "to-r2") e0.if_description;
  check Alcotest.bool "prefix" true
    (Option.get (Ast.interface_prefix e0) |> Prefix.equal (pfx "10.0.1.0/24"));
  let e1 = Option.get (Ast.find_interface c "Ethernet0/1") in
  check Alcotest.(list string) "extra verbatim" [ "traffic-policy mark_high inbound" ]
    e1.if_extra;
  let o = Option.get c.ospf in
  check Alcotest.int "ospf process" 1 o.ospf_process;
  check Alcotest.int "ospf networks" 1 (List.length o.ospf_networks);
  check Alcotest.int "ospf filters" 1 (List.length o.ospf_distribute_in);
  let b = Option.get c.bgp in
  check Alcotest.int "bgp as" 100 b.bgp_as;
  (match b.bgp_neighbors with
  | [ n ] ->
      check Alcotest.int "remote as" 200 n.nb_remote_as;
      check Alcotest.(option string) "neighbor filter" (Some "RejPfxs") n.nb_distribute_in
  | _ -> Alcotest.fail "expected one neighbor");
  check Alcotest.int "prefix lists" 2 (List.length c.prefix_lists)

let test_parse_host () =
  let c = Parser.parse_exn sample_host in
  check Alcotest.bool "host kind" true (c.kind = Ast.Host);
  check Alcotest.bool "gateway" true
    (Option.get c.default_gateway |> Ipv4.equal (Ipv4.of_string_exn "10.1.1.1"))

let test_roundtrip_fixed () =
  let c = Parser.parse_exn sample_router in
  let c' = Parser.parse_exn (Printer.to_string c) in
  check Alcotest.bool "roundtrip" true (c = c')

let test_parse_errors () =
  let expect_error text =
    match Parser.parse text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error msg ->
        check Alcotest.bool "mentions line" true
          (String.length msg > 5 && String.sub msg 0 5 = "line ")
  in
  expect_error "interface e0\n ip address 10.0.0.1 255.0.255.0";
  expect_error "router ospf 1\n network 10.0.0.0 0.255.0.255 area 0";
  expect_error "router bgp 65000\n neighbor 10.0.0.2 distribute-list X in";
  expect_error "interface e0\n ip address 299.0.0.1 255.0.0.0";
  expect_error "ip prefix-list X seq A deny 10.0.0.0/8"

let test_unknown_preserved () =
  let text = "hostname r9\nsnmp-server community public\n!\nbanner motd hello\n" in
  let c = Parser.parse_exn text in
  check Alcotest.(list string) "extras"
    [ "snmp-server community public"; "banner motd hello" ]
    c.extra;
  let printed = Printer.to_string c in
  check Alcotest.bool "extras printed" true
    (List.for_all
       (fun l ->
         List.mem l (String.split_on_char '\n' printed))
       c.extra)

let test_prefix_list_matching () =
  let pl =
    {
      Ast.pl_name = "X";
      pl_rules =
        [
          { Ast.seq = 5; action = Ast.Deny; rule_prefix = pfx "10.4.0.0/16"; le = Some 32 };
          { Ast.seq = 10; action = Ast.Permit; rule_prefix = pfx "0.0.0.0/0"; le = Some 32 };
        ];
    }
  in
  check Alcotest.bool "deny match" true
    (Ast.prefix_list_matches pl (pfx "10.4.4.0/24") = Some Ast.Deny);
  check Alcotest.bool "permit fallthrough" true
    (Ast.prefix_list_matches pl (pfx "10.5.0.0/24") = Some Ast.Permit);
  (* Exact-length rule without le *)
  let exact =
    { Ast.pl_name = "Y";
      pl_rules = [ { Ast.seq = 5; action = Ast.Deny; rule_prefix = pfx "10.4.4.0/24"; le = None } ] }
  in
  check Alcotest.bool "exact len match" true
    (Ast.prefix_list_matches exact (pfx "10.4.4.0/24") = Some Ast.Deny);
  check Alcotest.bool "longer no match" true
    (Ast.prefix_list_matches exact (pfx "10.4.4.0/25") = None)

let test_add_prefix_list_rule () =
  let c = Ast.empty_config "r1" in
  let c = Ast.add_prefix_list_rule c "F" Ast.Deny (pfx "10.4.4.0/24") in
  let c = Ast.add_prefix_list_rule c "F" Ast.Permit (pfx "0.0.0.0/0") in
  match Ast.find_prefix_list c "F" with
  | Some pl ->
      check Alcotest.int "two rules" 2 (List.length pl.pl_rules);
      check Alcotest.(list int) "sequence numbers" [ 5; 10 ]
        (List.map (fun r -> r.Ast.seq) pl.pl_rules)
  | None -> Alcotest.fail "list not created"

let test_masks () =
  check Alcotest.(option int) "contiguous" (Some 24)
    (Masks.len_of_netmask (Ipv4.of_string_exn "255.255.255.0"));
  check Alcotest.(option int) "non-contiguous" None
    (Masks.len_of_netmask (Ipv4.of_string_exn "255.0.255.0"));
  check Alcotest.(option int) "wildcard" (Some 24)
    (Masks.len_of_wildcard (Ipv4.of_string_exn "0.0.0.255"));
  check Alcotest.(option int) "zero mask" (Some 0)
    (Masks.len_of_netmask (Ipv4.of_string_exn "0.0.0.0"));
  check Alcotest.(option int) "full mask" (Some 32)
    (Masks.len_of_netmask (Ipv4.of_string_exn "255.255.255.255"))

let test_count_breakdown () =
  let c = Parser.parse_exn sample_router in
  let b = Count.of_config c in
  (* interfaces: (iface+desc+addr+cost) + (iface+addr+extra) = 4 + 3 *)
  check Alcotest.int "interface lines" 7 b.interface_lines;
  (* ospf header+network, bgp header+router-id+network+neighbor = 2+4 *)
  check Alcotest.int "protocol lines" 6 b.protocol_lines;
  (* 1 ospf distribute + 1 bgp neighbor filter + 4 prefix-list rules *)
  check Alcotest.int "filter lines" 6 b.filter_lines;
  check Alcotest.int "other lines" 1 b.other_lines

let test_count_added () =
  let orig = Parser.parse_exn sample_router in
  let anon =
    Ast.add_prefix_list_rule orig "NEW" Ast.Deny (pfx "10.9.9.0/24")
  in
  let fake_host = Parser.parse_exn sample_host in
  let b = Count.added ~orig:[ orig ] ~anon:[ anon; fake_host ] in
  check Alcotest.int "added filters" 1 b.filter_lines;
  check Alcotest.int "added interfaces (host)" 2 b.interface_lines;
  check Alcotest.int "added protocol" 0 b.protocol_lines;
  let uc = Count.config_utility ~orig:[ orig ] ~anon:[ anon; fake_host ] in
  check Alcotest.bool "utility in (0,1)" true (uc > 0.0 && uc < 1.0)

let test_count_new_categories () =
  let c =
    Parser.parse_exn
      (String.concat "\n"
         [
           "hostname r1";
           "interface Eth0";
           " ip address 10.0.0.1 255.255.255.0";
           " ip access-group F1 in";
           "!";
           "router bgp 100";
           " neighbor 10.0.0.2 remote-as 200";
           " neighbor 10.0.0.2 route-map RM in";
           "!";
           "route-map RM permit 10";
           " set local-preference 200";
           "!";
           "ip access-list extended F1";
           " deny ip any 10.9.9.0 0.0.0.255";
           " permit ip any any";
           "!";
           "ip route 10.8.0.0 255.255.0.0 10.0.0.2";
         ])
  in
  let b = Count.of_config c in
  (* bgp header + neighbor + static = 3 protocol lines *)
  check Alcotest.int "protocol incl. static" 3 b.protocol_lines;
  (* route-map binding 1 + route-map clause 2 + acl 3 = 6 filter lines *)
  check Alcotest.int "filters incl. acl and route-map" 6 b.filter_lines;
  (* iface + addr + access-group *)
  check Alcotest.int "interface lines" 3 b.interface_lines

let test_vendor_dispatch () =
  let c = Parser.parse_exn sample_router in
  let junos_text = Vendor.print Vendor.Junos c in
  check Alcotest.bool "detects junos" true (Vendor.detect junos_text = Vendor.Junos);
  check Alcotest.bool "detects cisco" true
    (Vendor.detect sample_router = Vendor.Cisco);
  (match Vendor.parse junos_text with
  | Ok c' -> check Alcotest.bool "junos auto-parse" true (c = c')
  | Error m -> Alcotest.fail m);
  match Vendor.of_string "frr" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown vendor error"

(* qcheck: parse-print round trip over generated configs *)

let gen_config =
  let open QCheck2.Gen in
  let gen_prefix =
    map2 (fun a len -> Prefix.v (Ipv4.of_int a) len) (int_bound 0xFFFFFF) (int_range 8 30)
  in
  let gen_iface i =
    map2
      (fun addr cost ->
        {
          (Ast.empty_interface (Printf.sprintf "Eth%d" i)) with
          if_address = Some (Ipv4.of_int addr, 24);
          if_cost = (if cost = 0 then None else Some cost);
        })
      (int_bound 0xFFFFFF) (int_bound 3)
  in
  let gen_ifaces = List.init 3 gen_iface |> flatten_l in
  let gen_ospf =
    map
      (fun nets -> { (Ast.empty_ospf 1) with ospf_networks = List.map (fun p -> (p, 0)) nets })
      (small_list gen_prefix)
  in
  map2
    (fun ifaces ospf ->
      { (Ast.empty_config "rq") with interfaces = ifaces; ospf = Some ospf })
    gen_ifaces gen_ospf

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse (print c) = c" ~count:300 gen_config (fun c ->
      Parser.parse_exn (Printer.to_string c) = c)

let prop_line_count_stable =
  QCheck2.Test.make ~name:"line counting stable under roundtrip" ~count:200
    gen_config (fun c ->
      let c' = Parser.parse_exn (Printer.to_string c) in
      Count.lines_of_config c = Count.lines_of_config c')

(* The same round-trip law over *realistic* configs: everything the
   emitter produces for crucible-generated random networks, which
   exercises OSPF/BGP processes, neighbors, hosts and secrets rather
   than the synthetic generator's vocabulary. *)
let prop_emitted_roundtrip =
  QCheck2.Test.make ~name:"parse (print c) = c on emitted crucible nets"
    ~count:30
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let configs = Netgen.Emit.emit (Crucible.Gen.spec ~seed ()) in
      List.for_all (fun c -> Parser.parse_exn (Printer.to_string c) = c) configs)

(* Deterministic sweep over the evaluation catalog's quick subset. *)
let test_catalog_roundtrip () =
  List.iter
    (fun (e : Netgen.Nets.entry) ->
      List.iter
        (fun c ->
          if Parser.parse_exn (Printer.to_string c) <> c then
            Alcotest.failf "catalog %s: config %s did not round-trip" e.id
              c.Ast.hostname)
        (Netgen.Nets.configs e))
    (Netgen.Nets.small ())

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_line_count_stable; prop_emitted_roundtrip ]

let () =
  Alcotest.run "configlang"
    [
      ( "parser",
        [
          Alcotest.test_case "router config" `Quick test_parse_router;
          Alcotest.test_case "host config" `Quick test_parse_host;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_fixed;
          Alcotest.test_case "catalog roundtrip" `Quick test_catalog_roundtrip;
          Alcotest.test_case "errors carry line numbers" `Quick test_parse_errors;
          Alcotest.test_case "unknown lines preserved" `Quick test_unknown_preserved;
        ] );
      ( "ast",
        [
          Alcotest.test_case "prefix-list matching" `Quick test_prefix_list_matching;
          Alcotest.test_case "append prefix-list rules" `Quick test_add_prefix_list_rule;
        ] );
      ("masks", [ Alcotest.test_case "mask conversions" `Quick test_masks ]);
      ( "count",
        [
          Alcotest.test_case "category breakdown" `Quick test_count_breakdown;
          Alcotest.test_case "added lines" `Quick test_count_added;
          Alcotest.test_case "acl/route-map/static categories" `Quick
            test_count_new_categories;
        ] );
      ("vendor", [ Alcotest.test_case "dispatch" `Quick test_vendor_dispatch ]);
      ("properties", qsuite);
    ]
