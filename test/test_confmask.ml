(* End-to-end tests of the ConfMask pipeline: the headline invariants are
   (1) functional equivalence — every original host-to-host path preserved
   exactly — and (2) k-degree topology anonymity, on OSPF, RIP, and
   BGP+OSPF networks alike. *)

open Confmask

let check = Alcotest.check

let params ?(k_r = 4) ?(k_h = 2) ?(seed = 42) () =
  { Workflow.default_params with k_r; k_h; seed }

let run_entry ?k_r ?k_h ?seed (e : Netgen.Nets.entry) =
  Workflow.run_exn
    ~params:(params ?k_r ?k_h ?seed ())
    (Netgen.Nets.configs e)

let assert_invariants ?(k_r = 4) name (r : Workflow.report) =
  check Alcotest.bool (name ^ ": functional equivalence") true
    (Workflow.functional_equivalence r);
  let topo = Metrics.topology_of_snapshot r.anon_snapshot in
  check Alcotest.bool
    (Printf.sprintf "%s: %d-degree anonymity (got group %d)" name k_r
       topo.min_degree_group)
    true
    (topo.min_degree_group >= k_r);
  (* Fake hosts were added, k_h - 1 per real host. *)
  let n_real =
    Routing.Device.Smap.cardinal r.orig_snapshot.net.hosts
  in
  check Alcotest.int (name ^ ": fake host count")
    ((r.params.k_h - 1) * n_real)
    (List.length r.fake_hosts);
  (* Fake hosts are reachable from every real host. *)
  let dp = Routing.Simulate.dataplane r.anon_snapshot in
  List.iter
    (fun (fh, _) ->
      List.iter
        (fun src ->
          let t = Hashtbl.find dp (src, fh) in
          if t.Routing.Dataplane.delivered = [] then
            Alcotest.failf "%s: fake host %s unreachable from %s" name fh src)
        (Workflow.real_hosts r))
    r.fake_hosts

let test_ospf_enterprise_like () =
  (* The G net (FatTree04) exercises OSPF + ECMP. *)
  let r = run_entry (Netgen.Nets.find "G") in
  assert_invariants "fattree04" r

let test_bgp_nets () =
  List.iter
    (fun id ->
      let r = run_entry (Netgen.Nets.find id) in
      assert_invariants id r)
    [ "A"; "B"; "C"; "CCNP" ]

let test_rip_net () =
  let configs = Netgen.Emit.emit (Netgen.Smallnets.rip_lab ()) in
  let r = Workflow.run_exn ~params:(params ()) configs in
  assert_invariants "rip lab" r

let test_eigrp_net () =
  let configs = Netgen.Emit.emit (Netgen.Smallnets.eigrp_lab ()) in
  let r = Workflow.run_exn ~params:(params ()) configs in
  assert_invariants "eigrp lab" r

let test_bgp_with_route_maps () =
  (* Inject an inbound local-preference policy into net C and check the
     pipeline still achieves functional equivalence around it. *)
  let configs =
    List.map
      (fun (c : Configlang.Ast.config) ->
        if c.hostname <> "w2" then c
        else
          let open Configlang.Ast in
          let rm =
            {
              rm_name = "PREFX";
              rm_clauses =
                [ { rm_seq = 10; rm_action = Permit; rm_set_local_pref = Some 150 } ];
            }
          in
          let bgp =
            Option.map
              (fun b ->
                {
                  b with
                  bgp_neighbors =
                    List.map
                      (fun n ->
                        if n.nb_remote_as <> b.bgp_as then
                          { n with nb_route_map_in = Some "PREFX" }
                        else n)
                      b.bgp_neighbors;
                })
              c.bgp
          in
          { c with bgp; route_maps = [ rm ] })
      (Netgen.Nets.configs (Netgen.Nets.find "C"))
  in
  let r = Workflow.run_exn ~params:(params ()) configs in
  assert_invariants "backbone + route-maps" r

let test_wan_net () =
  let r = run_entry (Netgen.Nets.find "D") in
  assert_invariants "bics" r

let test_kr6 () =
  let r = run_entry ~k_r:6 (Netgen.Nets.find "A") in
  assert_invariants ~k_r:6 "enterprise kr=6" r

let test_kh4 () =
  let r = run_entry ~k_h:4 (Netgen.Nets.find "C") in
  assert_invariants "backbone kh=4" r

let test_kh1_no_fake_hosts () =
  let r = run_entry ~k_h:1 (Netgen.Nets.find "C") in
  check Alcotest.int "no fake hosts" 0 (List.length r.fake_hosts);
  check Alcotest.int "no anonymity filters" 0 r.anon_filters_added;
  check Alcotest.bool "functional equivalence" true
    (Workflow.functional_equivalence r)

let test_fake_routers_with_pii () =
  let configs = Netgen.Nets.configs (Netgen.Nets.find "G") in
  let p =
    { (params ~k_r:4 ()) with Workflow.fake_routers = 2; pii = true }
  in
  let r = Workflow.run_exn ~params:p configs in
  (* Scrubbed + extended network still compiles and routes fully. *)
  let dp = Routing.Simulate.dataplane r.anon_snapshot in
  let hosts =
    List.map fst (Routing.Device.Smap.bindings r.anon_snapshot.net.hosts)
  in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          if s <> d && (Hashtbl.find dp (s, d)).Routing.Dataplane.delivered = []
          then Alcotest.failf "%s -> %s unreachable" s d)
        hosts)
    hosts

let test_deterministic () =
  let run () =
    let r = run_entry ~seed:7 (Netgen.Nets.find "A") in
    List.map snd (Workflow.anon_texts r)
  in
  check Alcotest.bool "same seed, same output" true (run () = run ())

let test_seed_changes_output () =
  let texts seed =
    List.map snd (Workflow.anon_texts (run_entry ~seed (Netgen.Nets.find "G")))
  in
  check Alcotest.bool "different seed, different anonymization" true
    (texts 1 <> texts 2)

let test_append_only () =
  (* Every original interface, network statement and neighbor must still
     be present, verbatim, in the anonymized config. *)
  let r = run_entry (Netgen.Nets.find "B") in
  List.iter
    (fun (o : Configlang.Ast.config) ->
      match
        List.find_opt
          (fun (a : Configlang.Ast.config) -> a.hostname = o.hostname)
          r.anon_configs
      with
      | None -> Alcotest.failf "device %s disappeared" o.hostname
      | Some a ->
          List.iter
            (fun (i : Configlang.Ast.interface) ->
              if not (List.mem i a.interfaces) then
                Alcotest.failf "%s: interface %s modified" o.hostname i.if_name)
            o.interfaces;
          (match (o.ospf, a.ospf) with
          | Some oo, Some ao ->
              List.iter
                (fun n ->
                  if not (List.mem n ao.ospf_networks) then
                    Alcotest.failf "%s: ospf network removed" o.hostname)
                oo.ospf_networks
          | None, _ -> ()
          | Some _, None -> Alcotest.failf "%s: ospf process removed" o.hostname);
          match (o.bgp, a.bgp) with
          | Some ob, Some ab ->
              List.iter
                (fun (n : Configlang.Ast.neighbor) ->
                  if
                    not
                      (List.exists
                         (fun (m : Configlang.Ast.neighbor) ->
                           Netcore.Ipv4.equal m.nb_addr n.nb_addr
                           && m.nb_remote_as = n.nb_remote_as)
                         ab.bgp_neighbors)
                  then Alcotest.failf "%s: bgp neighbor removed" o.hostname)
                ob.bgp_neighbors
          | None, _ -> ()
          | Some _, None -> Alcotest.failf "%s: bgp process removed" o.hostname)
    r.orig_configs

let test_fake_prefixes_disjoint () =
  let r = run_entry (Netgen.Nets.find "A") in
  let orig_prefixes = Edits.used_prefixes r.orig_configs in
  let dp_hosts = r.anon_snapshot.net.hosts in
  List.iter
    (fun (fh, _) ->
      let hp =
        Routing.Device.host_prefix (Routing.Device.Smap.find fh dp_hosts)
      in
      if List.exists (Netcore.Prefix.overlaps hp) orig_prefixes then
        Alcotest.failf "fake host %s prefix %s overlaps the original network" fh
          (Netcore.Prefix.to_string hp))
    r.fake_hosts

let test_route_anonymity_improves () =
  let r = run_entry ~k_r:6 ~k_h:2 (Netgen.Nets.find "C") in
  let nr_orig =
    Metrics.route_anonymity (Routing.Simulate.dataplane r.orig_snapshot)
  in
  let nr_anon =
    Metrics.route_anonymity (Routing.Simulate.dataplane r.anon_snapshot)
  in
  check Alcotest.bool
    (Printf.sprintf "anon N_r (%.2f) > orig N_r (%.2f)" nr_anon.nr_avg
       nr_orig.nr_avg)
    true
    (nr_anon.nr_avg > nr_orig.nr_avg)

let test_kept_paths_100_percent () =
  let r = run_entry (Netgen.Nets.find "G") in
  let frac =
    Metrics.kept_paths_fraction
      ~orig:(Routing.Simulate.dataplane r.orig_snapshot)
      ~anon:(Routing.Simulate.dataplane r.anon_snapshot)
      ~hosts:(Workflow.real_hosts r)
  in
  check (Alcotest.float 1e-9) "all paths kept exactly" 1.0 frac

let test_config_utility_bounds () =
  let r = run_entry (Netgen.Nets.find "B") in
  let uc = Metrics.config_utility ~orig:r.orig_configs ~anon:r.anon_configs in
  check Alcotest.bool (Printf.sprintf "U_C = %.3f in (0, 1)" uc) true
    (uc > 0.0 && uc < 1.0)

let test_pii_addon () =
  let r =
    Workflow.run_exn
      ~params:{ (params ()) with pii = true }
      (Netgen.Nets.configs (Netgen.Nets.find "A"))
  in
  (* Scrubbed configs still compile and give full reachability. *)
  let dp = Routing.Simulate.dataplane r.anon_snapshot in
  let hosts =
    List.map fst (Routing.Device.Smap.bindings r.anon_snapshot.net.hosts)
  in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          if s <> d && (Hashtbl.find dp (s, d)).Routing.Dataplane.delivered = []
          then Alcotest.failf "pii: %s -> %s unreachable" s d)
        hosts)
    hosts;
  (* No original hostname survives. *)
  let orig_names =
    List.map (fun (c : Configlang.Ast.config) -> c.hostname) r.orig_configs
  in
  List.iter
    (fun (c : Configlang.Ast.config) ->
      if List.mem c.hostname orig_names then
        Alcotest.failf "pii: hostname %s leaked" c.hostname)
    r.anon_configs

(* ---- §9 extension: network scale obfuscation ---- *)

let test_fake_routers () =
  let configs = Netgen.Nets.configs (Netgen.Nets.find "G") in
  let p = { (params ~k_r:4 ()) with Workflow.fake_routers = 3 } in
  let r = Workflow.run_exn ~params:p configs in
  check Alcotest.int "three fake routers" 3 (List.length r.fake_router_names);
  check Alcotest.bool "functional equivalence" true
    (Workflow.functional_equivalence r);
  (* Fake routers participate in the anonymized topology and carry k-degree
     anonymity like everyone else. *)
  let g = Routing.Device.router_graph r.anon_snapshot.net in
  List.iter
    (fun fr ->
      check Alcotest.bool (fr ^ " present") true (Netcore.Graph.mem_node fr g);
      check Alcotest.bool (fr ^ " connected") true (Netcore.Graph.degree fr g >= 2))
    r.fake_router_names;
  check Alcotest.bool "k-anonymous including fakes" true
    ((Metrics.topology_of_snapshot r.anon_snapshot).min_degree_group >= 4);
  (* Each fake router's own host is reachable from real hosts. *)
  let dp = Routing.Simulate.dataplane r.anon_snapshot in
  let src = List.hd (Workflow.real_hosts r) in
  List.iter
    (fun fr ->
      let t = Hashtbl.find dp (src, fr ^ "-h1") in
      check Alcotest.bool (fr ^ "-h1 reachable") true
        (t.Routing.Dataplane.delivered <> []))
    r.fake_router_names

let test_fake_routers_name_scheme () =
  let configs = Netgen.Nets.configs (Netgen.Nets.find "D") in
  let orig = Routing.Simulate.run_exn configs in
  match
    Node_anon.add ~rng:(Netcore.Rng.create 1) ~count:2 ~orig configs
  with
  | Error m -> Alcotest.fail m
  | Ok n ->
      List.iter
        (fun fr ->
          check Alcotest.bool (fr ^ " blends in") true
            (String.length fr > 5 && String.sub fr 0 5 = "bics-"))
        n.fake_routers

let test_fake_routers_rejected_on_bgp () =
  let configs = Netgen.Nets.configs (Netgen.Nets.find "A") in
  let orig = Routing.Simulate.run_exn configs in
  match Node_anon.add ~rng:(Netcore.Rng.create 1) ~count:1 ~orig configs with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected rejection on BGP networks"

(* ---- Strawman baselines ---- *)

let topo_stage entry k_r seed =
  let configs = Netgen.Nets.configs entry in
  let orig = Routing.Simulate.run_exn configs in
  let rng = Netcore.Rng.create seed in
  let t = Topo_anon.anonymize ~rng ~k:k_r ~orig configs in
  (orig, t)

let test_strawman1_restores () =
  let orig, t = topo_stage (Netgen.Nets.find "A") 4 42 in
  match Strawman.strawman1 ~orig ~fake_edges:t.fake_edges t.configs with
  | Ok o ->
      let snap = Routing.Simulate.run_exn o.configs in
      check Alcotest.bool "fibs restored" true
        (Route_equiv.fib_equal_on_hosts ~orig snap);
      check Alcotest.bool "many filters" true (o.filters_added > 0)
  | Error m -> Alcotest.fail m

let test_strawman2_restores () =
  let orig, t = topo_stage (Netgen.Nets.find "A") 4 42 in
  match Strawman.strawman2 ~orig ~fake_edges:t.fake_edges t.configs with
  | Ok o ->
      let snap = Routing.Simulate.run_exn o.configs in
      let dp0 = Routing.Simulate.dataplane orig in
      let dp1 = Routing.Simulate.dataplane snap in
      let hosts = List.map fst (Routing.Device.Smap.bindings orig.net.hosts) in
      check Alcotest.bool "paths restored" true
        (Routing.Dataplane.equal_on ~hosts dp0 dp1)
  | Error m -> Alcotest.fail m

let test_strawman_filter_counts () =
  (* Strawman 1 must inject more filters than Algorithm 1 (Figure 10
     right). *)
  let orig, t = topo_stage (Netgen.Nets.find "B") 6 42 in
  check Alcotest.bool "fake edges exist" true (t.fake_edges <> []);
  let s1 =
    match Strawman.strawman1 ~orig ~fake_edges:t.fake_edges t.configs with
    | Ok o -> o.filters_added
    | Error m -> Alcotest.fail m
  in
  let alg1 =
    match Route_equiv.fix ~orig ~fake_edges:t.fake_edges t.configs with
    | Ok o -> o.filters_added
    | Error m -> Alcotest.fail m
  in
  check Alcotest.bool
    (Printf.sprintf "strawman1 (%d) > algorithm 1 (%d)" s1 alg1)
    true (s1 > alg1)

(* ---- Edits unit behaviors ---- *)

let test_edits_deny_roundtrip () =
  let open Configlang in
  let c =
    Parser.parse_exn
      "hostname r1\ninterface Eth0\n ip address 10.0.0.1 255.255.255.0\nrouter ospf 1\n network 10.0.0.0 0.255.255.255 area 0"
  in
  let p = Netcore.Prefix.of_string_exn "10.4.4.0/24" in
  let p2 = Netcore.Prefix.of_string_exn "10.5.5.0/24" in
  let c1 = Edits.deny_on_iface c ~iface:"Eth0" p in
  let c1 = Edits.deny_on_iface c1 ~iface:"Eth0" p2 in
  let c1 = Edits.deny_on_iface c1 ~iface:"Eth0" p in
  (* idempotent *)
  (match Ast.find_prefix_list c1 "DL-Eth0" with
  | Some pl -> check Alcotest.int "two denies + catchall" 3 (List.length pl.pl_rules)
  | None -> Alcotest.fail "list missing");
  let c2 = Edits.undeny_on_iface c1 ~iface:"Eth0" p in
  (match Ast.find_prefix_list c2 "DL-Eth0" with
  | Some pl -> check Alcotest.int "one deny + catchall" 2 (List.length pl.pl_rules)
  | None -> Alcotest.fail "list should remain");
  let c3 = Edits.undeny_on_iface c2 ~iface:"Eth0" p2 in
  check Alcotest.bool "list dropped" true (Ast.find_prefix_list c3 "DL-Eth0" = None);
  match c3.ospf with
  | Some o -> check Alcotest.int "binding dropped" 0 (List.length o.ospf_distribute_in)
  | None -> Alcotest.fail "ospf vanished"

let test_fresh_iface_name () =
  let open Configlang in
  let c =
    Parser.parse_exn
      "hostname r1\ninterface Eth0\n ip address 10.0.0.1 255.255.255.0\n!\ninterface Eth3\n ip address 10.0.1.1 255.255.255.0"
  in
  let n = Edits.fresh_iface_name c in
  check Alcotest.bool "fresh name unused" true (Ast.find_interface c n = None)

(* ---- qcheck: pipeline invariant on random OSPF networks ---- *)

let gen_netspec =
  let open QCheck2.Gen in
  let* n = int_range 5 10 in
  let* extra = int_range 0 6 in
  let* hosts_n = int_range 2 4 in
  let* seed = int_bound 10000 in
  return (n, extra, hosts_n, seed)

let spec_of (n, extra, hosts_n, seed) =
  Netgen.Wan.waxman ~seed ~name:"rnd" ~routers:n
    ~router_links:(n - 1 + extra)
    ~hosts:hosts_n

let prop_strawman2_equivalence =
  QCheck2.Test.make ~name:"strawman 2 restores the data plane on random nets"
    ~count:8 gen_netspec (fun input ->
      let spec = spec_of input in
      let configs = Netgen.Emit.emit spec in
      let _, _, _, seed = input in
      let orig = Routing.Simulate.run_exn configs in
      let rng = Netcore.Rng.create seed in
      let t = Topo_anon.anonymize ~rng ~k:3 ~orig configs in
      match Strawman.strawman2 ~orig ~fake_edges:t.fake_edges t.configs with
      | Error m -> QCheck2.Test.fail_reportf "strawman2 failed: %s" m
      | Ok o ->
          let snap = Routing.Simulate.run_exn o.configs in
          let hosts =
            List.map fst (Routing.Device.Smap.bindings orig.net.hosts)
          in
          Routing.Dataplane.equal_on ~hosts
            (Routing.Simulate.dataplane orig)
            (Routing.Simulate.dataplane snap))

let prop_high_noise_safe =
  (* Even an absurd noise coefficient must not break real-host forwarding:
     Algorithm 2's filters only name fake prefixes. *)
  QCheck2.Test.make ~name:"p = 0.9 still preserves the real data plane" ~count:8
    gen_netspec (fun input ->
      let spec = spec_of input in
      let configs = Netgen.Emit.emit spec in
      let _, _, _, seed = input in
      match
        Workflow.run
          ~params:{ (params ~k_r:3 ~k_h:2 ~seed ()) with Workflow.noise = 0.9 }
          configs
      with
      | Error m -> QCheck2.Test.fail_reportf "pipeline failed: %s" m
      | Ok r -> Workflow.functional_equivalence r)

let prop_pipeline_equivalence =
  QCheck2.Test.make ~name:"pipeline preserves data plane on random nets"
    ~count:12 gen_netspec (fun input ->
      let spec = spec_of input in
      let configs = Netgen.Emit.emit spec in
      let _, _, _, seed = input in
      match
        Workflow.run ~params:(params ~k_r:3 ~k_h:2 ~seed ()) configs
      with
      | Error m -> QCheck2.Test.fail_reportf "pipeline failed: %s" m
      | Ok r ->
          Workflow.functional_equivalence r
          && (Metrics.topology_of_snapshot r.anon_snapshot).min_degree_group >= 3)

let prop_anonfix_modes_agree =
  (* The incremental fixpoint (engine-delta scans, cached parallel
     reachability walks, grouped filter application) must be bit-identical
     to the legacy full-recompute path, at every job count. Runs both
     stage-2 algorithms end to end and compares the printed configs plus
     every iteration/filter count. *)
  QCheck2.Test.make ~name:"incremental anonfix == legacy at jobs 1/2/4"
    ~count:6 gen_netspec (fun input ->
      let spec = spec_of input in
      let configs = Netgen.Emit.emit spec in
      let _, _, _, seed = input in
      let orig = Routing.Simulate.run_exn configs in
      let rng = Netcore.Rng.create seed in
      let topo = Topo_anon.anonymize ~rng ~k:3 ~orig configs in
      let stage mode jobs =
        let pool = Netcore.Pool.create ~jobs () in
        Fun.protect
          ~finally:(fun () -> Netcore.Pool.shutdown pool)
          (fun () ->
            Anonfix.with_mode mode @@ fun () ->
            let eng = Routing.Engine.of_configs_exn ~pool topo.configs in
            match
              Route_equiv.fix ~engine:eng ~orig ~fake_edges:topo.fake_edges
                topo.configs
            with
            | Error m -> Error ("equiv: " ^ m)
            | Ok e -> (
                let rng2 = Netcore.Rng.create (seed + 7) in
                match
                  Route_anon.anonymize ~rng:rng2 ~k_h:2 ~p:0.3
                    ~engine:e.engine e.configs
                with
                | Error m -> Error ("anon: " ^ m)
                | Ok a ->
                    Ok
                      ( List.map Configlang.Printer.to_string a.configs,
                        e.iterations,
                        e.filters_added,
                        a.filters_added,
                        a.filters_removed )))
      in
      let base = stage `Legacy 1 in
      List.for_all
        (fun (mode, jobs) ->
          let got = stage mode jobs in
          if got = base then true
          else
            QCheck2.Test.fail_reportf
              "anonfix mismatch at jobs=%d (%s vs legacy/1)" jobs
              (match mode with `Legacy -> "legacy" | `Incremental -> "incremental"))
        [ (`Legacy, 4); (`Incremental, 1); (`Incremental, 2); (`Incremental, 4) ])

(* ---- adversary scoring conventions ---- *)

(* Deanon.assess's degenerate-case conventions are load-bearing for the
   evaluation tables: an adversary that accuses nothing is perfectly
   precise, and a network with nothing to find is perfectly recalled.
   Pin them, plus the undirected-edge canonicalization and dedup. *)
let test_deanon_assess_conventions () =
  let s = Deanon.assess ~fake_edges:[ ("a", "b") ] ~flagged:[] in
  Alcotest.(check (float 0.0)) "flagged=[]: precision 1.0" 1.0 s.precision;
  Alcotest.(check (float 0.0)) "flagged=[]: recall 0.0" 0.0 s.recall;
  let s = Deanon.assess ~fake_edges:[] ~flagged:[ ("a", "b") ] in
  Alcotest.(check (float 0.0)) "no fake edges: recall 1.0" 1.0 s.recall;
  Alcotest.(check (float 0.0)) "no fake edges: precision 0.0" 0.0 s.precision;
  let s = Deanon.assess ~fake_edges:[] ~flagged:[] in
  Alcotest.(check (float 0.0)) "both empty: precision 1.0" 1.0 s.precision;
  Alcotest.(check (float 0.0)) "both empty: recall 1.0" 1.0 s.recall

let test_deanon_assess_canonicalization () =
  (* Links are undirected: the reversed accusation still counts, and a
     duplicated accusation is deduplicated rather than double-scored. *)
  let s = Deanon.assess ~fake_edges:[ ("a", "b") ] ~flagged:[ ("b", "a") ] in
  Alcotest.(check int) "reversed flag is a true positive" 1 s.true_positives;
  Alcotest.(check (float 0.0)) "precision" 1.0 s.precision;
  Alcotest.(check (float 0.0)) "recall" 1.0 s.recall;
  let s =
    Deanon.assess ~fake_edges:[ ("a", "b"); ("c", "d") ]
      ~flagged:[ ("a", "b"); ("b", "a"); ("a", "b") ]
  in
  Alcotest.(check int) "duplicates deduped" 1 (List.length s.flagged);
  Alcotest.(check (float 0.0)) "precision after dedup" 1.0 s.precision;
  Alcotest.(check (float 0.0)) "recall half" 0.5 s.recall

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pipeline_equivalence;
      prop_strawman2_equivalence;
      prop_high_noise_safe;
      prop_anonfix_modes_agree;
    ]

let () =
  Alcotest.run "confmask"
    [
      ( "pipeline",
        [
          Alcotest.test_case "fattree04 (ospf ecmp)" `Quick test_ospf_enterprise_like;
          Alcotest.test_case "bgp+ospf nets" `Quick test_bgp_nets;
          Alcotest.test_case "rip net" `Quick test_rip_net;
          Alcotest.test_case "eigrp net" `Quick test_eigrp_net;
          Alcotest.test_case "wan (bics)" `Slow test_wan_net;
          Alcotest.test_case "bgp with route-maps" `Quick test_bgp_with_route_maps;
          Alcotest.test_case "k_r = 6" `Quick test_kr6;
          Alcotest.test_case "k_h = 4" `Quick test_kh4;
          Alcotest.test_case "k_h = 1 disables fake hosts" `Quick test_kh1_no_fake_hosts;
          Alcotest.test_case "fake routers + pii" `Quick test_fake_routers_with_pii;
        ] );
      ( "properties-of-output",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
          Alcotest.test_case "seed-sensitive" `Quick test_seed_changes_output;
          Alcotest.test_case "append-only edits" `Quick test_append_only;
          Alcotest.test_case "fake prefixes disjoint" `Quick test_fake_prefixes_disjoint;
          Alcotest.test_case "route anonymity improves" `Quick test_route_anonymity_improves;
          Alcotest.test_case "100% kept paths" `Quick test_kept_paths_100_percent;
          Alcotest.test_case "config utility bounds" `Quick test_config_utility_bounds;
          Alcotest.test_case "pii add-on" `Quick test_pii_addon;
        ] );
      ( "scale-extension",
        [
          Alcotest.test_case "fake routers end to end" `Quick test_fake_routers;
          Alcotest.test_case "name scheme" `Quick test_fake_routers_name_scheme;
          Alcotest.test_case "rejected on BGP" `Quick test_fake_routers_rejected_on_bgp;
        ] );
      ( "strawmen",
        [
          Alcotest.test_case "strawman1 restores fibs" `Quick test_strawman1_restores;
          Alcotest.test_case "strawman2 restores paths" `Quick test_strawman2_restores;
          Alcotest.test_case "filter count ordering" `Quick test_strawman_filter_counts;
        ] );
      ( "edits",
        [
          Alcotest.test_case "deny/undeny roundtrip" `Quick test_edits_deny_roundtrip;
          Alcotest.test_case "fresh iface names" `Quick test_fresh_iface_name;
        ] );
      ( "deanon",
        [
          Alcotest.test_case "assess conventions" `Quick
            test_deanon_assess_conventions;
          Alcotest.test_case "assess canonicalization" `Quick
            test_deanon_assess_canonicalization;
        ] );
      ("qcheck", qsuite);
    ]
