(* ACL (packet filter) semantics in the data plane, and the operational
   check of Theorem B.7: the pipeline preserves all six routing utility
   properties of Appendix B — including black holes and multipath
   inconsistencies caused by access lists. *)

open Routing

let check = Alcotest.check
let paths_t = Alcotest.(list (list string))

let config lines = Configlang.Parser.parse_exn (String.concat "\n" lines)

let host name addr gw =
  config
    [
      "hostname " ^ name;
      "interface eth0";
      Printf.sprintf " ip address %s 255.255.255.0" addr;
      "ip default-gateway " ^ gw;
    ]

(* h1 - r1 - r2 - h2, with r2 dropping h1 -> h2 traffic inbound. *)
let line_net ?(acl = []) () =
  [
    config
      [
        "hostname r1";
        "interface Eth0";
        " ip address 10.0.12.1 255.255.255.0";
        "!";
        "interface Eth1";
        " ip address 10.1.1.1 255.255.255.0";
        "!";
        "router ospf 1";
        " network 10.0.0.0 0.255.255.255 area 0";
      ];
    config
      ([
         "hostname r2";
         "interface Eth0";
         " ip address 10.0.12.2 255.255.255.0";
       ]
      @ acl
      @ [
          "!";
          "interface Eth1";
          " ip address 10.2.2.1 255.255.255.0";
          "!";
          "router ospf 1";
          " network 10.0.0.0 0.255.255.255 area 0";
          "!";
          "ip access-list extended NO_H1_TO_H2";
          " deny ip 10.1.1.0 0.0.0.255 10.2.2.0 0.0.0.255";
          " permit ip any any";
        ]);
    host "h1" "10.1.1.10" "10.1.1.1";
    host "h2" "10.2.2.10" "10.2.2.1";
  ]

let acl_binding = [ " ip access-group NO_H1_TO_H2 in" ]

let test_acl_blocks_directionally () =
  let s = Simulate.run_exn (line_net ~acl:acl_binding ()) in
  let t = Dataplane.traceroute s.net s.fibs ~src:"h1" ~dst:"h2" in
  check paths_t "forward blocked" [] t.delivered;
  check Alcotest.bool "filtered recorded" true (t.filtered <> []);
  check Alcotest.bool "not a routing drop" true (t.dropped = []);
  let back = Dataplane.traceroute s.net s.fibs ~src:"h2" ~dst:"h1" in
  check paths_t "reverse delivered" [ [ "h2"; "r2"; "r1"; "h1" ] ] back.delivered

let test_acl_unbound_is_inert () =
  (* The ACL exists but is not attached to any interface. *)
  let s = Simulate.run_exn (line_net ()) in
  let t = Dataplane.traceroute s.net s.fibs ~src:"h1" ~dst:"h2" in
  check paths_t "delivered" [ [ "h1"; "r1"; "r2"; "h2" ] ] t.delivered

let test_acl_undefined_rejected () =
  let bad =
    config
      [
        "hostname rx";
        "interface Eth0";
        " ip address 10.0.0.1 255.255.255.0";
        " ip access-group NOPE in";
      ]
  in
  match Device.compile [ bad ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected undefined access-list error"

let test_acl_roundtrip () =
  let c = List.nth (line_net ~acl:acl_binding ()) 1 in
  let c' = Configlang.Parser.parse_exn (Configlang.Printer.to_string c) in
  check Alcotest.bool "parse-print roundtrip" true (c = c')

(* Square q1-q2-q3, q1-q4-q3 with ECMP; ACL kills only the q2 branch. *)
let square_net () =
  let r name addrs ?(acl_iface = None) () =
    config
      ([ "hostname " ^ name ]
      @ List.concat_map
          (fun (i, a) ->
            [
              Printf.sprintf "interface Eth%d" i;
              Printf.sprintf " ip address %s 255.255.255.0" a;
            ]
            @ (if acl_iface = Some i then [ " ip access-group KILL in" ] else [])
            @ [ "!" ])
          (List.mapi (fun i a -> (i, a)) addrs)
      @ [ "router ospf 1"; " network 10.0.0.0 0.255.255.255 area 0"; "!";
          "ip access-list extended KILL";
          " deny ip 10.10.1.0 0.0.0.255 10.10.3.0 0.0.0.255";
          " permit ip any any" ])
  in
  [
    r "q1" [ "10.0.12.1"; "10.0.41.1"; "10.10.1.1" ] ();
    r "q2" [ "10.0.12.2"; "10.0.23.2" ] ~acl_iface:(Some 0) ();
    r "q3" [ "10.0.23.3"; "10.0.34.3"; "10.10.3.1" ] ();
    r "q4" [ "10.0.34.4"; "10.0.41.4" ] ();
    host "ha" "10.10.1.10" "10.10.1.1";
    host "hc" "10.10.3.10" "10.10.3.1";
  ]

let test_multipath_inconsistency () =
  let s = Simulate.run_exn (square_net ()) in
  let t = Dataplane.traceroute s.net s.fibs ~src:"ha" ~dst:"hc" in
  check paths_t "only the q4 branch delivers"
    [ [ "ha"; "q1"; "q4"; "q3"; "hc" ] ]
    t.delivered;
  check Alcotest.bool "other branch filtered" true (t.filtered <> []);
  let dp = Simulate.dataplane s in
  let props = Confmask.Properties.mine dp in
  check Alcotest.bool "multipath inconsistency mined" true
    (List.mem (Confmask.Properties.Multipath_inconsistent ("ha", "hc")) props);
  check Alcotest.bool "black hole mined" true
    (List.mem (Confmask.Properties.Black_hole ("ha", "hc")) props);
  check Alcotest.bool "reverse consistent" false
    (List.mem (Confmask.Properties.Multipath_inconsistent ("hc", "ha")) props)

let test_properties_mining () =
  let s = Simulate.run_exn (line_net ~acl:acl_binding ()) in
  let dp = Simulate.dataplane s in
  let props = Confmask.Properties.mine dp in
  let has p = List.mem p props in
  check Alcotest.bool "h2 reaches h1" true (has (Confmask.Properties.Reachable ("h2", "h1")));
  check Alcotest.bool "h1 does not reach h2" false
    (has (Confmask.Properties.Reachable ("h1", "h2")));
  check Alcotest.bool "black hole" true (has (Confmask.Properties.Black_hole ("h1", "h2")));
  check Alcotest.bool "path length mined" true
    (has (Confmask.Properties.Path_length ("h2", "h1", 2)));
  check Alcotest.bool "waypoint mined" true
    (has (Confmask.Properties.Waypointed ("h2", "h1", "r1")))

(* Theorem B.7, operationally: anonymize a network containing an ACL black
   hole and check that every property — including the black hole and the
   multipath inconsistency — survives unchanged. *)
let theorem_b7 name configs =
  let params = { Confmask.Workflow.default_params with k_r = 4; k_h = 2 } in
  let r = Confmask.Workflow.run_exn ~params configs in
  let hosts = Confmask.Workflow.real_hosts r in
  let diff =
    Confmask.Properties.compare_properties ~hosts
      ~orig:(Routing.Simulate.dataplane r.orig_snapshot)
      ~anon:(Routing.Simulate.dataplane r.anon_snapshot)
  in
  if not (Confmask.Properties.preserved diff) then
    Alcotest.failf "%s: lost %s / gained %s" name
      (String.concat ", " (List.map Confmask.Properties.to_string diff.lost))
      (String.concat ", " (List.map Confmask.Properties.to_string diff.gained));
  check Alcotest.bool (name ^ ": some properties exist") true (diff.kept <> [])

let test_theorem_b7_blackhole () = theorem_b7 "line+acl" (line_net ~acl:acl_binding ())
let test_theorem_b7_multipath () = theorem_b7 "square+acl" (square_net ())

let test_theorem_b7_fattree () =
  (* A bigger run without ACLs: reachability, lengths, waypoints, ECMP. *)
  theorem_b7 "fattree04" (Netgen.Nets.configs (Netgen.Nets.find "G"))

(* qcheck: inject a random deny-ACL into a random WAN, then check that the
   pipeline preserves every Appendix-B property. *)
let prop_b7_random =
  QCheck2.Test.make ~name:"theorem B.7 on random nets with random ACLs" ~count:10
    QCheck2.Gen.(
      tup4 (int_range 4 9) (int_range 0 5) (int_bound 50000) (int_bound 1000))
    (fun (n, extra, seed, pick) ->
      let spec =
        Netgen.Wan.waxman ~seed ~name:"rb" ~routers:n ~router_links:(n - 1 + extra)
          ~hosts:(min n 4)
      in
      let configs = Netgen.Emit.emit spec in
      (* Drop one random host pair's traffic inbound at one random router
         interface. *)
      let hosts = List.map fst spec.Netgen.Netspec.hosts in
      let src_h = List.nth hosts (pick mod List.length hosts) in
      let dst_h = List.nth hosts ((pick / 7) mod List.length hosts) in
      let subnet_of h =
        let c = List.find (fun (c : Configlang.Ast.config) -> c.hostname = h) configs in
        Option.get (Configlang.Ast.interface_prefix (List.hd c.interfaces))
      in
      let routers = spec.Netgen.Netspec.routers in
      let victim = List.nth routers ((pick / 3) mod List.length routers) in
      let configs =
        List.map
          (fun (c : Configlang.Ast.config) ->
            if c.hostname <> victim then c
            else
              let acl =
                {
                  Configlang.Ast.acl_name = "RNDKILL";
                  acl_rules =
                    [
                      {
                        Configlang.Ast.acl_action = Configlang.Ast.Deny;
                        acl_src = Some (subnet_of src_h);
                        acl_dst = Some (subnet_of dst_h);
                      };
                      {
                        Configlang.Ast.acl_action = Configlang.Ast.Permit;
                        acl_src = None;
                        acl_dst = None;
                      };
                    ];
                }
              in
              let interfaces =
                match c.interfaces with
                | i :: rest -> { i with Configlang.Ast.if_acl_in = Some "RNDKILL" } :: rest
                | [] -> []
              in
              { c with interfaces; acls = [ acl ] })
          configs
      in
      let params =
        { Confmask.Workflow.default_params with k_r = 3; k_h = 2; seed }
      in
      match Confmask.Workflow.run ~params configs with
      | Error m -> QCheck2.Test.fail_reportf "pipeline failed: %s" m
      | Ok r ->
          let hosts = Confmask.Workflow.real_hosts r in
          Confmask.Properties.preserved
            (Confmask.Properties.compare_properties ~hosts
               ~orig:(Routing.Simulate.dataplane r.orig_snapshot)
               ~anon:(Routing.Simulate.dataplane r.anon_snapshot)))

(* qcheck: the FEC-collapsed data-plane extraction (trace one representative
   per ordered class pair, fan out to the whole class) must agree with the
   full H^2 extraction trace for trace. Two hosts per router so that host
   equivalence classes are nontrivial and the fan-out path actually runs. *)
let traces_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k (t : Dataplane.trace) acc -> acc && Hashtbl.find_opt b k = Some t)
       a true

let prop_fec_extraction =
  QCheck2.Test.make ~name:"FEC-collapsed extraction equals full extraction"
    ~count:12
    QCheck2.Gen.(tup3 (int_range 4 10) (int_range 0 4) (int_bound 50000))
    (fun (n, extra, seed) ->
      let spec =
        Netgen.Wan.waxman ~seed ~name:"fq" ~routers:n
          ~router_links:(n - 1 + extra) ~hosts:(2 * n)
      in
      let s = Simulate.run_exn (Netgen.Emit.emit spec) in
      let dp_fec = Fec.with_mode `On (fun () -> Simulate.dataplane s) in
      let dp_full = Fec.with_mode `Off (fun () -> Simulate.dataplane s) in
      traces_equal dp_fec dp_full)

(* qcheck: sharding the per-prefix reverse Dijkstras across a pool must be
   invisible — the FIBs are bit-identical to the sequential fold at every
   job count, not merely route-set equal. Marshal digests catch any
   representation drift that structural equality would mask. *)
let prop_sharded_spf =
  QCheck2.Test.make ~name:"sharded SPF bit-identical at jobs 1/2/4" ~count:8
    QCheck2.Gen.(tup3 (int_range 5 12) (int_range 0 6) (int_bound 50000))
    (fun (n, extra, seed) ->
      let spec =
        Netgen.Wan.waxman ~seed ~name:"sq" ~routers:n
          ~router_links:(n - 1 + extra) ~hosts:(min n 5)
      in
      let configs = Netgen.Emit.emit spec in
      let digest fibs = Digest.string (Marshal.to_string fibs []) in
      let seq = (Simulate.run_exn configs).fibs in
      List.for_all
        (fun jobs ->
          let pool = Netcore.Pool.create ~jobs () in
          let sharded = (Simulate.run_exn ~pool configs).fibs in
          Netcore.Pool.shutdown pool;
          Device.Smap.equal ( = ) seq sharded
          && Digest.equal (digest seq) (digest sharded))
        [ 1; 2; 4 ])

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_b7_random; prop_fec_extraction; prop_sharded_spf ]

let () =
  Alcotest.run "properties"
    [
      ( "acl",
        [
          Alcotest.test_case "directional blocking" `Quick test_acl_blocks_directionally;
          Alcotest.test_case "unbound ACL inert" `Quick test_acl_unbound_is_inert;
          Alcotest.test_case "undefined ACL rejected" `Quick test_acl_undefined_rejected;
          Alcotest.test_case "parse-print roundtrip" `Quick test_acl_roundtrip;
          Alcotest.test_case "multipath inconsistency" `Quick test_multipath_inconsistency;
        ] );
      ( "appendix-b",
        [
          Alcotest.test_case "mining" `Quick test_properties_mining;
          Alcotest.test_case "theorem B.7 with black hole" `Quick test_theorem_b7_blackhole;
          Alcotest.test_case "theorem B.7 with multipath" `Quick test_theorem_b7_multipath;
          Alcotest.test_case "theorem B.7 on fattree" `Quick test_theorem_b7_fattree;
        ] );
      ("qcheck", qsuite);
    ]
