(* The serve daemon: dispatcher correctness, concurrent clients answered
   byte-compatibly with the in-process batch path, admission control
   under overload, and graceful drain. *)

open Netcore

let check = Alcotest.check

let temp_dir () =
  let f = Filename.temp_file "confmask-serve" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error m -> Alcotest.failf "unparsable response %S: %s" s m

let get_str resp name = Option.bind (Json.member name (parse_exn resp)) Json.str
let get_bool resp name = Option.bind (Json.member name (parse_exn resp)) Json.bool

let expect_ok resp =
  check Alcotest.(option bool) "ok" (Some true) (get_bool resp "ok")

let expect_error resp kind =
  check Alcotest.(option bool) "not ok" (Some false) (get_bool resp "ok");
  check Alcotest.(option string) "typed error" (Some kind)
    (get_str resp "error")

(* ---- dispatcher, no transport ---- *)

let bare_handle = Confmask.Serve.handle ~server:(ref None) ~cache:None

let test_dispatch_ping () =
  let resp = bare_handle ~tenants:[] {|{"op": "ping"}|} in
  expect_ok resp;
  check Alcotest.(option string) "op echoed" (Some "ping") (get_str resp "op")

let test_dispatch_bad_requests () =
  List.iter
    (fun req -> expect_error (bare_handle ~tenants:[] req) "bad_request")
    [
      "not json at all";
      "{}";
      {|{"op": "no-such-op"}|};
      {|{"op": "job"}|};
      {|{"op": "job", "id": "x", "source": {"weird": 1}, "out": "o"}|};
      {|{"op": "job", "id": "x", "source": {"catalog": "A"}, "out": "o",
         "format": "wat"}|};
    ]

let test_dispatch_unknown_tenant () =
  expect_error
    (bare_handle ~tenants:[ ("acme", Pii.Pan.key_of_int 7) ]
       {|{"op": "job", "id": "x", "source": {"catalog": "A"},
          "out": "o", "tenant": "evil"}|})
    "unknown_tenant"

let test_dispatch_never_raises () =
  (* Whatever arrives on the wire, the dispatcher answers with a line. *)
  List.iter
    (fun req ->
      match bare_handle ~tenants:[] req with
      | resp -> expect_error resp "bad_request"
      | exception e ->
          Alcotest.failf "dispatcher raised %s on %S" (Printexc.to_string e)
            req)
    [ ""; "\x00\xff\xfe"; "{\"op\": 42}"; "[]"; "null"; String.make 10000 '{' ]

(* ---- the verify op ---- *)

let write_net_dir net =
  let dir = temp_dir () in
  List.iter
    (fun (c : Configlang.Ast.config) ->
      let oc = open_out (Filename.concat dir (c.hostname ^ ".cfg")) in
      output_string oc (Configlang.Printer.to_string c);
      close_out oc)
    (Netgen.Nets.configs (Netgen.Nets.find net));
  dir

let test_dispatch_verify_bad_requests () =
  List.iter
    (fun req -> expect_error (bare_handle ~tenants:[] req) "bad_request")
    [
      {|{"op": "verify"}|};
      {|{"op": "verify", "orig_dir": "/nonexistent-dir"}|};
      {|{"op": "verify", "orig_dir": "/nonexistent-dir", "anon_dir": "/also-missing"}|};
    ];
  (* Unparsable inline policies are the client's problem, not a crash. *)
  let dir = write_net_dir "A" in
  expect_error
    (bare_handle ~tenants:[]
       (Printf.sprintf
          {|{"op": "verify", "orig_dir": "%s", "anon_dir": "%s", "policies": "frob(a, b)"}|}
          dir dir))
    "bad_request"

let test_dispatch_verify_self () =
  (* Verifying a directory against itself: the mined specification
     holds on both sides by construction, nothing is lost. *)
  let dir = write_net_dir "A" in
  let resp =
    bare_handle ~tenants:[]
      (Printf.sprintf
         {|{"op": "verify", "orig_dir": "%s", "anon_dir": "%s"}|} dir dir)
  in
  expect_ok resp;
  let j = parse_exn resp in
  let num name = Option.bind (Json.member name j) Json.int in
  check Alcotest.(option string) "op echoed" (Some "verify") (get_str resp "op");
  check Alcotest.bool "mined a nonempty specification" true
    (num "policies" > Some 0);
  check Alcotest.(option int) "nothing lost" (Some 0) (num "lost");
  check Alcotest.bool "everything holds on both sides" true
    (num "holds_both" = num "policies");
  check Alcotest.bool "entries omitted by default" true
    (Json.member "entries" j = None);
  (* With entries requested, one per policy, all holds_both. *)
  let resp =
    bare_handle ~tenants:[]
      (Printf.sprintf
         {|{"op": "verify", "orig_dir": "%s", "anon_dir": "%s", "entries": true}|}
         dir dir)
  in
  expect_ok resp;
  match Json.member "entries" (parse_exn resp) with
  | Some (Json.Arr es) ->
      check Alcotest.(option int) "one entry per policy" (Some (List.length es))
        (Option.bind (Json.member "policies" (parse_exn resp)) Json.int);
      List.iter
        (fun e ->
          check Alcotest.(option string) "verdict" (Some "holds_both")
            (Option.bind (Json.member "verdict" e) Json.str))
        es
  | _ -> Alcotest.fail "entries array missing"

(* ---- a live server ---- *)

let with_server ?(queue_cap = 8) ?(workers = 2) ?(tenants = []) f =
  let dir = temp_dir () in
  let addr = Server.Unix_sock (Filename.concat dir "s.sock") in
  let t =
    Confmask.Serve.create
      { Confmask.Serve.addr; queue_cap; workers; cache = None; tenants }
  in
  let runner = Thread.create Server.run t in
  Fun.protect
    ~finally:(fun () ->
      Server.initiate_shutdown t;
      Thread.join runner)
    (fun () -> f addr t)

let test_live_ping_and_stats () =
  with_server @@ fun addr _ ->
  expect_ok (Server.request addr {|{"op": "ping"}|});
  let resp = Server.request addr {|{"op": "stats"}|} in
  expect_ok resp;
  let j = parse_exn resp in
  let gauge name = Option.bind (Json.member name j) Json.int in
  check Alcotest.bool "accepted counted" true (gauge "accepted" >= Some 2);
  check Alcotest.(option int) "queue_cap reported" (Some 8) (gauge "queue_cap");
  check Alcotest.bool "counters present" true
    (Json.member "counters" j <> None && Json.member "spans" j <> None)

let job_request ~id ~out =
  Printf.sprintf
    {|{"op": "job", "id": "%s", "source": {"catalog": "A"}, "kr": 6, "kh": 2, "seed": 42, "out": "%s"}|}
    id out

let digest_of_record record =
  match Option.bind (Json.member "digest" (parse_exn record)) Json.str with
  | Some d -> d
  | None -> Alcotest.failf "record without digest: %s" record

let test_live_concurrent_jobs_byte_compatible () =
  (* N concurrent clients run the same grid cell; every served record
     must carry the digest the in-process batch path computes — the
     served and one-shot modes are the same Batch.execute. *)
  let reference =
    let out = temp_dir () in
    Confmask.Batch.execute ~out ~cache:None ~format:Configlang.Vendor.Cisco
      {
        Confmask.Batch.job_id = "ref";
        job_source = Confmask.Batch.Catalog "A";
        job_params = { Confmask.Workflow.default_params with k_r = 6; k_h = 2 };
      }
  in
  let want = digest_of_record reference in
  with_server @@ fun addr _ ->
  let n = 4 in
  let out = temp_dir () in
  let responses = Array.make n "" in
  let clients =
    List.init n (fun i ->
        Thread.create
          (fun i ->
            let id = Printf.sprintf "c%d" i in
            responses.(i) <- Server.request addr (job_request ~id ~out))
          i)
  in
  List.iter Thread.join clients;
  Array.iteri
    (fun i resp ->
      expect_ok resp;
      match get_str resp "record" with
      | None -> Alcotest.failf "client %d: no record in %s" i resp
      | Some record ->
          check Alcotest.string "served digest = one-shot digest" want
            (digest_of_record record);
          (* The daemon wrote the same result line to disk. *)
          let ic =
            open_in (Filename.concat out (Printf.sprintf "c%d/result.json" i))
          in
          let on_disk = input_line ic in
          close_in ic;
          check Alcotest.string "record on disk" record on_disk)
    responses

let test_live_queue_full () =
  (* workers=1 and queue_cap=1: one request executing, one queued, the
     next is rejected immediately with the typed admission-control
     error instead of waiting. *)
  with_server ~workers:1 ~queue_cap:1 @@ fun addr _ ->
  let slow = {|{"op": "sleep", "seconds": 1.0}|} in
  let t1 = Thread.create (fun () -> expect_ok (Server.request addr slow)) () in
  Thread.delay 0.3;
  let t2 = Thread.create (fun () -> ignore (Server.request addr slow)) () in
  Thread.delay 0.3;
  let t0 = Clock.now () in
  let resp = Server.request addr {|{"op": "ping"}|} in
  let dt = Clock.elapsed t0 in
  expect_error resp "queue_full";
  check Alcotest.bool "rejected immediately, not queued" true (dt < 0.5);
  Thread.join t1;
  Thread.join t2;
  (* Load gone: admitted again. *)
  expect_ok (Server.request addr {|{"op": "ping"}|});
  let stats = Server.request addr {|{"op": "stats"}|} in
  check Alcotest.bool "rejection counted" true
    (Option.bind (Json.member "rejected_full" (parse_exn stats)) Json.int
     >= Some 1)

let test_live_tenant_keys () =
  (* The same job under two tenants scrubs PII under different keys, so
     the digests differ; an explicit pii_key equal to a tenant's key
     reproduces that tenant's digest. *)
  let tenants =
    [ ("acme", Pii.Pan.key_of_int 7); ("globex", Pii.Pan.key_of_int 1234) ]
  in
  with_server ~tenants @@ fun addr _ ->
  let req extra id =
    Printf.sprintf
      {|{"op": "job", "id": "%s", "source": {"catalog": "A"}, "pii": true, "out": "%s"%s}|}
      id (temp_dir ()) extra
  in
  let digest extra id =
    let resp = Server.request addr (req extra id) in
    expect_ok resp;
    digest_of_record (Option.get (get_str resp "record"))
  in
  let acme = digest {|, "tenant": "acme"|} "t1" in
  let globex = digest {|, "tenant": "globex"|} "t2" in
  let by_key = digest {|, "pii_key": 7|} "t3" in
  (* The hex-string wire form of the same key must land on the same
     mapping as the legacy int form. *)
  let by_hex =
    digest
      (Printf.sprintf {|, "pii_key": "%s"|}
         (Pii.Pan.key_to_string (Pii.Pan.key_of_int 7)))
      "t4"
  in
  check Alcotest.bool "tenant keys separate the outputs" true (acme <> globex);
  check Alcotest.string "tenant = explicit key" acme by_key;
  check Alcotest.string "hex form = int form" acme by_hex

let test_live_shutdown_drains () =
  let dir = temp_dir () in
  let sock = Filename.concat dir "s.sock" in
  let addr = Server.Unix_sock sock in
  let t =
    Confmask.Serve.create
      {
        Confmask.Serve.addr;
        queue_cap = 8;
        workers = 2;
        cache = None;
        tenants = [];
      }
  in
  let runner = Thread.create Server.run t in
  (* An in-flight slow request, then a shutdown request: the slow
     response must still be delivered before run() returns. *)
  let slow_resp = ref "" in
  let slow =
    Thread.create
      (fun () ->
        slow_resp := Server.request addr {|{"op": "sleep", "seconds": 0.8}|})
      ()
  in
  Thread.delay 0.2;
  let resp = Server.request addr {|{"op": "shutdown"}|} in
  expect_ok resp;
  check Alcotest.(option bool) "draining acknowledged" (Some true)
    (get_bool resp "draining");
  Thread.join slow;
  Thread.join runner;
  expect_ok !slow_resp;
  check Alcotest.bool "socket path unlinked" false (Sys.file_exists sock)

let () =
  Alcotest.run "serve"
    [
      ( "dispatch",
        [
          Alcotest.test_case "ping" `Quick test_dispatch_ping;
          Alcotest.test_case "bad requests are typed errors" `Quick
            test_dispatch_bad_requests;
          Alcotest.test_case "unknown tenant" `Quick test_dispatch_unknown_tenant;
          Alcotest.test_case "never raises" `Quick test_dispatch_never_raises;
          Alcotest.test_case "verify: bad requests" `Quick
            test_dispatch_verify_bad_requests;
          Alcotest.test_case "verify: self-comparison" `Quick
            test_dispatch_verify_self;
        ] );
      ( "live",
        [
          Alcotest.test_case "ping and stats" `Quick test_live_ping_and_stats;
          Alcotest.test_case "concurrent jobs byte-compatible" `Quick
            test_live_concurrent_jobs_byte_compatible;
          Alcotest.test_case "queue-full rejection" `Quick test_live_queue_full;
          Alcotest.test_case "per-tenant pii keys" `Quick test_live_tenant_keys;
          Alcotest.test_case "shutdown drains in-flight" `Quick
            test_live_shutdown_drains;
        ] );
    ]
