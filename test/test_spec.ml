(* Tests for the specification miner's edge cases and the policy query
   engine: parser round-trips (including on the miner's own printed
   form), evaluation against fabricated and simulated data planes, the
   differential verdicts, and mode invariance — FEC-collapsed vs full
   extraction and compiled vs legacy kernels must produce identical
   outcomes, witness paths and all. *)

module Q = Spec.Query
module Dataplane = Routing.Dataplane

let trace delivered =
  {
    Dataplane.delivered;
    dropped = [];
    filtered = [];
    looped = [];
    truncated = false;
  }

(* A hand-built data plane: exactly the given (src, dst) -> paths map. *)
let dp_of pairs =
  let dp : Dataplane.t = Hashtbl.create 8 in
  List.iter (fun (s, d, paths) -> Hashtbl.replace dp (s, d) (trace paths)) pairs;
  dp

(* ---- miner edge cases ---- *)

let mine_empty () =
  Alcotest.(check int)
    "empty data plane mines an empty specification" 0
    (List.length (Spec.mine (Hashtbl.create 0)))

let mine_single_host () =
  (* One host means no ordered host pair, hence no policy at all. *)
  let spec =
    Netgen.Netspec.v ~name:"solo" ~igp:Netgen.Netspec.Ospf
      ~routers:[ "r0"; "r1" ]
      ~links:[ ("r0", "r1", 10) ]
      ~hosts:[ ("h0", "r0") ]
      ()
  in
  let snap = Routing.Simulate.run_exn (Netgen.Emit.emit spec) in
  let dp = Routing.Simulate.dataplane snap in
  Alcotest.(check int) "no pairs" 0 (Hashtbl.length dp);
  Alcotest.(check int) "no policies" 0 (List.length (Spec.mine dp))

let mine_loadbalance_boundary () =
  let two =
    dp_of [ ("a", "b", [ [ "a"; "r1"; "b" ]; [ "a"; "r2"; "b" ] ]) ]
  in
  let mined = Spec.mine two in
  Alcotest.(check bool)
    "two paths mine loadbalance(a, b, 2)" true
    (List.mem (Spec.Loadbalance ("a", "b", 2)) mined);
  (* The mined count is exact: eval holds at n = count ... *)
  Alcotest.(check bool)
    "eval holds at the mined count" true
    (Q.eval two (Q.Loadbalance ("a", "b", 2))).Q.holds;
  (* ... and fails one past it, with the insufficient set as evidence. *)
  let above = Q.eval two (Q.Loadbalance ("a", "b", 3)) in
  Alcotest.(check bool) "eval fails at count + 1" false above.Q.holds;
  Alcotest.(check int) "counterexample = the path set" 2
    (List.length above.Q.counterexample);
  let one = dp_of [ ("a", "b", [ [ "a"; "r1"; "b" ] ]) ] in
  Alcotest.(check bool)
    "a single path mines no loadbalance policy" false
    (List.exists
       (function Spec.Loadbalance _ -> true | _ -> false)
       (Spec.mine one))

let introduced_one_fake_endpoint () =
  let d =
    Spec.compare_specs ~orig:[]
      ~anon:
        [
          Spec.Reachability ("h1", "fake9");
          Spec.Reachability ("fake9", "h1");
          Spec.Reachability ("h1", "h2");
        ]
  in
  let benign = Spec.introduced_involving d ~hosts:[ "h1"; "h2" ] in
  (* One fake endpoint is enough to make a policy benign-introduced;
     a both-real introduced policy stays out. *)
  Alcotest.(check int) "two fake-endpoint policies" 2 (List.length benign);
  Alcotest.(check bool)
    "both-real policy excluded" false
    (List.mem (Spec.Reachability ("h1", "h2")) benign)

(* ---- query parser ---- *)

let policy_cases =
  [
    Q.Reachability ("h1", "h2");
    Q.Waypoint ("h1", "h2", "r3");
    Q.Isolation ("dmz-h", "core-h");
    Q.Loadbalance ("h1", "h2", 3);
  ]

let parse_roundtrip () =
  List.iter
    (fun p ->
      match Q.parse_policy (Q.to_string p) with
      | Ok p' when p' = p -> ()
      | Ok p' ->
          Alcotest.failf "%s parsed to %s" (Q.to_string p) (Q.to_string p')
      | Error m -> Alcotest.failf "%s failed to parse: %s" (Q.to_string p) m)
    policy_cases

let parse_miner_output () =
  (* The miner's printed form is valid query syntax, and lifts to the
     same policy as Spec.to_query. *)
  List.iter
    (fun sp ->
      match Q.parse_policy (Spec.policy_to_string sp) with
      | Ok q when q = Spec.to_query sp -> ()
      | Ok q ->
          Alcotest.failf "%s lifted to %s" (Spec.policy_to_string sp)
            (Q.to_string q)
      | Error m ->
          Alcotest.failf "%s failed to parse: %s" (Spec.policy_to_string sp) m)
    [
      Spec.Reachability ("h1", "h2");
      Spec.Waypoint ("h1", "h2", "r3");
      Spec.Loadbalance ("h1", "h2", 4);
    ]

let parse_file_text () =
  let text =
    "# the operator's contract\n\
     reach(h1, h2)\n\
     \n\
     waypoint(h1, h2, fw)  # via the firewall\n\
     isolation(h3, h1)\n\
     loadbalance(h1, h2, 2)\n"
  in
  match Q.parse text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok ps ->
      Alcotest.(check (list string))
        "policies in file order"
        [
          "reach(h1, h2)"; "waypoint(h1, h2, fw)"; "isolation(h3, h1)";
          "loadbalance(h1, h2, 2)";
        ]
        (List.map Q.to_string ps)

let parse_file_json () =
  let text =
    {|[ {"type": "reachability", "src": "h1", "dst": "h2"},
       {"type": "waypoint", "src": "h1", "dst": "h2", "via": "fw"},
       {"type": "isolation", "src": "h3", "dst": "h1"},
       {"type": "loadbalance", "src": "h1", "dst": "h2", "paths": 2} ]|}
  in
  match Q.parse text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok ps ->
      Alcotest.(check (list string))
        "JSON array, auto-detected"
        [
          "reach(h1, h2)"; "waypoint(h1, h2, fw)"; "isolation(h3, h1)";
          "loadbalance(h1, h2, 2)";
        ]
        (List.map Q.to_string ps)

let parse_rejects () =
  let rejected input =
    match Q.parse_policy input with
    | Error _ -> ()
    | Ok p -> Alcotest.failf "%S parsed to %s" input (Q.to_string p)
  in
  List.iter rejected
    [
      "reach(a)";
      "waypoint(a, b)";
      "loadbalance(a, b, x)";
      "loadbalance(a, b, 0)";
      "frob(a, b)";
      "reach(a, b";
      "reach(a b, c)";
      "";
    ];
  (match Q.parse "reach(h1, h2)\nbogus line\n" with
  | Error m ->
      Alcotest.(check bool)
        "text error names the line" true
        (String.length m >= 7 && String.sub m 0 7 = "line 2:")
  | Ok _ -> Alcotest.fail "bogus line accepted");
  List.iter
    (fun text ->
      match Q.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad JSON %S accepted" text)
    [
      {|[{"type": "reachability"}]|};
      {|[{"src": "a", "dst": "b"}]|};
      {|[{"type": "waypoint", "src": "a", "dst": "b"}]|};
      {|[{"type": "loadbalance", "src": "a", "dst": "b", "paths": 0}]|};
      {|["reach(a, b)"]|};
    ]

(* ---- evaluation and verdicts on a fabricated pair ---- *)

let differential_verdicts () =
  let orig =
    dp_of
      [
        ("h1", "h2", [ [ "h1"; "r1"; "h2" ] ]);
        ("h2", "h1", [ [ "h2"; "r1"; "h1" ] ]);
      ]
  in
  let anon =
    dp_of
      [
        ("h1", "h2", [ [ "h1"; "r1"; "h2" ] ]);
        (* h2 -> h1 lost; h3 (a fake host) reaches h1 *)
        ("fh3", "h1", [ [ "fh3"; "r1"; "h1" ] ]);
      ]
  in
  let known n = List.mem n [ "h1"; "h2"; "r1" ] in
  let entries =
    Q.differential ~orig ~anon ~known
      [
        Q.Reachability ("h1", "h2");
        Q.Reachability ("h2", "h1");
        Q.Isolation ("h1", "h2");
        Q.Isolation ("h2", "h1");
        Q.Reachability ("fh3", "h1");
      ]
  in
  Alcotest.(check (list string))
    "verdicts in input order"
    [ "holds_both"; "lost"; "holds_neither"; "introduced"; "fake_only" ]
    (List.map (fun (e : Q.entry) -> Q.verdict_to_string e.e_verdict) entries);
  let s = Q.summarize entries in
  Alcotest.(check int) "total" 5 s.Q.total;
  Alcotest.(check int) "fake_only" 1 s.Q.fake_only;
  Alcotest.(check (float 1e-9)) "kept fraction" 0.5 s.Q.kept_fraction;
  (* Fake_only entries carry no original-side outcome. *)
  List.iter
    (fun (e : Q.entry) ->
      Alcotest.(check bool)
        "e_orig present iff not fake_only"
        (e.e_verdict <> Q.Fake_only)
        (e.e_orig <> None))
    entries;
  Alcotest.(check (float 1e-9))
    "empty summary keeps everything" 1.0 (Q.summarize []).Q.kept_fraction

let evidence_capped () =
  let paths =
    List.init 12 (fun i -> [ "a"; Printf.sprintf "r%02d" i; "b" ])
  in
  let dp = dp_of [ ("a", "b", paths) ] in
  let o = Q.eval dp (Q.Reachability ("a", "b")) in
  Alcotest.(check int) "witness capped" Q.max_evidence (List.length o.Q.witness);
  (* The verdict itself still sees all 12 paths. *)
  Alcotest.(check bool)
    "loadbalance(12) holds despite the cap" true
    (Q.eval dp (Q.Loadbalance ("a", "b", 12))).Q.holds

(* ---- qcheck properties ---- *)

let qcheck_parse_roundtrip =
  let open QCheck2 in
  let name_gen =
    Gen.map
      (fun (c, s) -> Printf.sprintf "%c%s" c s)
      (Gen.pair (Gen.char_range 'a' 'z')
         (Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.int_range 0 6)))
  in
  let policy_gen =
    Gen.oneof
      [
        Gen.map2 (fun s d -> Q.Reachability (s, d)) name_gen name_gen;
        Gen.map3 (fun s d w -> Q.Waypoint (s, d, w)) name_gen name_gen name_gen;
        Gen.map2 (fun s d -> Q.Isolation (s, d)) name_gen name_gen;
        Gen.map3
          (fun s d n -> Q.Loadbalance (s, d, n))
          name_gen name_gen (Gen.int_range 1 9);
      ]
  in
  Test.make ~name:"policy file = parse . print" ~count:100
    (Gen.list_size (Gen.int_range 0 12) policy_gen)
    (fun ps ->
      let text = String.concat "\n" (List.map Q.to_string ps) in
      match Q.parse text with
      | Ok ps' -> ps' = ps
      | Error m -> Test.fail_reportf "printed file failed to parse: %s" m)

let qcheck_mined_holds =
  (* The miner's output is sound by construction: every mined policy
     evaluates to holds on the very data plane it was mined from. *)
  let open QCheck2 in
  Test.make ~name:"mined policies hold on their own data plane" ~count:20
    (Gen.int_range 0 10_000)
    (fun seed ->
      let spec = Crucible.Gen.spec ~seed () in
      let snap = Routing.Simulate.run_exn (Netgen.Emit.emit spec) in
      let dp = Routing.Simulate.dataplane snap in
      List.for_all
        (fun sp ->
          let o = Q.eval dp (Spec.to_query sp) in
          o.Q.holds
          || Test.fail_reportf "seed %d: mined %s does not hold" seed
               (Spec.policy_to_string sp))
        (Spec.mine dp))

(* ---- mode invariance: FEC collapse and kernel choice ---- *)

(* Evaluation must be blind to how the data plane was extracted: the
   FEC-collapsed extraction vs the full per-pair one, and the compiled
   kernels vs the legacy ones, must agree on every outcome record —
   holds flag, witness paths and counterexample paths. Exercised on the
   four smallest catalog networks, over the mined specification plus an
   isolation probe per net (outcomes that hold and ones that do not). *)
let outcome_eq (a : Q.outcome) (b : Q.outcome) =
  a.Q.holds = b.Q.holds && a.Q.witness = b.Q.witness
  && a.Q.counterexample = b.Q.counterexample

let mode_invariance () =
  List.iter
    (fun net ->
      let configs = Netgen.Nets.configs (Netgen.Nets.find net) in
      let dp_of_mode f =
        f (fun () -> Routing.Simulate.dataplane (Routing.Simulate.run_exn configs))
      in
      let dp = dp_of_mode (fun k -> k ()) in
      let dp_nofec = dp_of_mode (Routing.Fec.with_mode `Off) in
      let dp_legacy = dp_of_mode (Routing.Compiled.with_kernels `Legacy) in
      let policies =
        List.map Spec.to_query (Spec.mine dp)
        @
        match Dataplane.all_delivered dp with
        | ((s, d), _) :: _ -> [ Q.Isolation (s, d); Q.Reachability (s, "no-such-host") ]
        | [] -> []
      in
      List.iter
        (fun p ->
          let o = Q.eval dp p in
          if not (outcome_eq o (Q.eval dp_nofec p)) then
            Alcotest.failf "net %s: %s differs with CONFMASK_FEC=off" net
              (Q.to_string p);
          if not (outcome_eq o (Q.eval dp_legacy p)) then
            Alcotest.failf "net %s: %s differs with legacy kernels" net
              (Q.to_string p))
        policies)
    [ "A"; "B"; "C"; "D" ]

let () =
  let case name f = Alcotest.test_case name `Quick f in
  Alcotest.run "spec"
    [
      ( "miner",
        [
          case "empty data plane" mine_empty;
          case "single host" mine_single_host;
          case "loadbalance boundary" mine_loadbalance_boundary;
          case "introduced with one fake endpoint" introduced_one_fake_endpoint;
        ] );
      ( "parser",
        [
          case "round-trip" parse_roundtrip;
          case "miner output parses" parse_miner_output;
          case "text policy file" parse_file_text;
          case "json policy file" parse_file_json;
          case "rejections" parse_rejects;
        ] );
      ( "differential",
        [
          case "verdicts and summary" differential_verdicts;
          case "evidence cap" evidence_capped;
        ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_parse_roundtrip; qcheck_mined_holds ] );
      ("modes", [ case "fec and kernel invariance" mode_invariance ]);
    ]
